/// \file twitter_pipeline.cpp
/// The paper's §III workflow end to end: harvest (here: synthesize) a tweet
/// stream, build the user-to-user mention graph, characterize it, strip the
/// one-way broadcast links with the mutual filter to expose conversations,
/// and rank the actors an analyst should look at first.
///
///   ./twitter_pipeline [--dataset h1n1|atlflood|sep1|tiny] [--scale 0.1]
///                      [--top 15] [--seed S]

#include <iostream>

#include "algs/degree.hpp"
#include "core/toolkit.hpp"
#include "twitter/conversation.hpp"
#include "twitter/corpus_gen.hpp"
#include "twitter/datasets.hpp"
#include "twitter/mention_graph.hpp"
#include "twitter/tweet_io.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace graphct;
  namespace tw = graphct::twitter;
  try {
    Cli cli(argc, argv,
            {{"dataset", "preset: h1n1, atlflood, sep1, tiny"},
             {"scale", "corpus scale factor in (0,1]"},
             {"top", "actors to rank"},
             {"seed", "override the preset corpus seed"},
             {"input", "tweet TSV file to analyze instead of a preset"},
             {"save-corpus", "write the generated corpus to this TSV file"}});

    auto preset = tw::dataset_preset(cli.get("dataset", std::string("atlflood")),
                                     cli.get("scale", 1.0));
    if (cli.has("seed")) {
      preset.corpus.seed =
          static_cast<std::uint64_t>(cli.get("seed", std::int64_t{1}));
    }
    const auto top_n = cli.get("top", std::int64_t{15});

    Timer t;
    std::vector<tw::Tweet> tweets;
    if (cli.has("input")) {
      const auto path = cli.get("input", std::string());
      std::cout << "Dataset: " << path << " (harvested stream)\n\n";
      tweets = tw::read_tweets(path);
    } else {
      std::cout << "Dataset: " << preset.name << " — " << preset.description
                << "\n\n";
      tweets = tw::generate_corpus(preset.corpus);
      if (cli.has("save-corpus")) {
        tw::write_tweets(tweets, cli.get("save-corpus", std::string()));
      }
    }
    std::cout << "1. Harvested " << with_commas(static_cast<long long>(tweets.size()))
              << " tweets (" << format_duration(t.seconds()) << ")\n";

    t.restart();
    tw::MentionGraphBuilder builder;
    for (const auto& tweet : tweets) builder.add(tweet);
    const auto mg = std::move(builder).build();
    std::cout << "2. Built mention graph (" << format_duration(t.seconds())
              << ")\n\n";

    TextTable stats({"metric", "value"});
    stats.add_row({"users", with_commas(mg.num_users)});
    stats.add_row({"unique user interactions", with_commas(mg.unique_interactions)});
    stats.add_row({"tweets with mentions", with_commas(mg.tweets_with_mentions)});
    stats.add_row({"tweets with responses", with_commas(mg.tweets_with_responses)});
    stats.add_row({"self-referring tweets", with_commas(mg.self_references)});
    stats.add_row({"retweets", with_commas(mg.retweets)});
    std::cout << stats.render() << "\n";

    t.restart();
    const auto sub = tw::subcommunity_filter(mg);
    std::cout << "3. Conversation (mutual-mention) filter ("
              << format_duration(t.seconds()) << ")\n\n";
    TextTable funnel({"stage", "vertices", "edges"});
    funnel.add_row({"full mention graph", with_commas(sub.original_vertices),
                    with_commas(sub.original_edges)});
    funnel.add_row({"largest component", with_commas(sub.lwcc_vertices),
                    with_commas(sub.lwcc_edges)});
    funnel.add_row({"mutual (conversations)", with_commas(sub.mutual_vertices),
                    with_commas(sub.mutual_edges)});
    funnel.add_row({"largest conversation", with_commas(sub.mutual_lwcc_vertices),
                    with_commas(sub.mutual_lwcc_edges)});
    std::cout << funnel.render()
              << strf("\nreduction factor: %.1fx (the paper observes up to "
                      "two orders of magnitude)\n\n",
                      sub.reduction_factor);

    std::cout << "4. Ranking actors by betweenness centrality...\n\n";
    const auto ranked = tw::rank_users_by_betweenness(mg, top_n);
    TextTable top({"rank", "user", "bc score"});
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      top.add_row({std::to_string(i + 1), "@" + ranked[i].name,
                   strf("%.4g", ranked[i].score)});
    }
    std::cout << top.render()
              << "\nHigh-degree media/government hubs dominating the top of "
                 "the list is the paper's\nTable IV observation; an analyst "
                 "drills into the mutual subgraph for the\nconversations "
                 "behind them.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
