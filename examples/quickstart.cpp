/// \file quickstart.cpp
/// GraphCT in 60 seconds: generate a scale-free R-MAT graph (the paper's
/// synthetic workload, §IV-C), load it into the toolkit — which estimates
/// the diameter on load — and run the characterization kernels.
///
///   ./quickstart [--scale N] [--edge-factor F] [--seed S]

#include <cstdio>
#include <iostream>

#include "algs/degree.hpp"
#include "core/toolkit.hpp"
#include "gen/rmat.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace graphct;
  try {
    Cli cli(argc, argv,
            {{"scale", "R-MAT scale (vertices = 2^scale)"},
             {"edge-factor", "edges per vertex"},
             {"seed", "generator seed"}});

    RmatOptions r;
    r.scale = cli.get("scale", std::int64_t{14});
    r.edge_factor = cli.get("edge-factor", std::int64_t{16});
    r.seed = static_cast<std::uint64_t>(cli.get("seed", std::int64_t{1}));

    std::cout << "Generating R-MAT scale " << r.scale << ", edge factor "
              << r.edge_factor << " (A=0.55 B=C=0.1 D=0.25, the paper's "
              << "parameters)...\n";
    Timer gen_timer;
    const CsrGraph g = rmat_graph(r);
    std::cout << "  " << with_commas(g.num_vertices()) << " vertices, "
              << with_commas(g.num_edges()) << " unique edges in "
              << format_duration(gen_timer.seconds()) << "\n\n";

    // Loading a graph estimates the diameter from 256 random BFS sweeps
    // (x4 safety factor), exactly as GraphCT does on ingest.
    Timer load_timer;
    Toolkit tk(g);
    std::cout << "Toolkit load (diameter estimation): "
              << format_duration(load_timer.seconds()) << "\n";
    const auto& d = tk.diameter();
    std::cout << "  estimated diameter " << d.estimate << " (longest BFS "
              << "distance " << d.longest_distance << ", " << d.samples_used
              << " samples)\n\n";

    TextTable table({"kernel", "result", "time"});

    {
      Timer t;
      const auto& s = tk.degree_stats();
      table.add_row({"degree stats",
                     strf("mean %.2f, var %.1f, max %lld", s.mean, s.variance,
                          static_cast<long long>(s.max)),
                     format_duration(t.seconds())});
    }
    {
      Timer t;
      const auto& c = tk.components_stats();
      table.add_row({"connected components",
                     strf("%lld components, largest %s",
                          static_cast<long long>(c.num_components),
                          with_commas(c.largest_size()).c_str()),
                     format_duration(t.seconds())});
    }
    {
      Timer t;
      const auto& cl = tk.clustering();
      table.add_row({"clustering coefficients",
                     strf("%s triangles, global %.4f",
                          with_commas(cl.total_triangles).c_str(),
                          cl.global_clustering),
                     format_duration(t.seconds())});
    }
    {
      Timer t;
      const auto& cores = tk.core_numbers();
      table.add_row({"k-core decomposition",
                     strf("degeneracy %lld",
                          static_cast<long long>(degeneracy(cores))),
                     format_duration(t.seconds())});
    }
    {
      BetweennessOptions o;
      o.num_sources = 256;  // the paper's massive-graph sample size
      o.seed = 42;
      const auto bc = tk.betweenness(o);
      double maxv = 0;
      vid argmax = 0;
      for (vid v = 0; v < g.num_vertices(); ++v) {
        if (bc.score[static_cast<std::size_t>(v)] > maxv) {
          maxv = bc.score[static_cast<std::size_t>(v)];
          argmax = v;
        }
      }
      table.add_row({"betweenness (256 sources)",
                     strf("top vertex %lld, score %.3g",
                          static_cast<long long>(argmax), maxv),
                     format_duration(bc.seconds)});
    }
    {
      KBetweennessOptions o;
      o.k = 1;
      o.num_sources = 64;
      const auto kbc = tk.k_betweenness(o);
      table.add_row({"k-betweenness (k=1, 64 src)", "done",
                     format_duration(kbc.seconds)});
    }

    std::cout << table.render() << "\nDegree distribution (log-binned):\n"
              << tk.degree_histogram().ascii_chart() << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
