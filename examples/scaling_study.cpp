/// \file scaling_study.cpp
/// A miniature of the paper's headline experiment: approximate betweenness
/// centrality with 256 sampled sources on growing R-MAT graphs, reporting
/// time against problem size V*E (the Fig. 6 axes). On the 128-processor
/// Cray XMT the scale-29 point took 55 minutes; here the scales are chosen
/// to finish on a workstation, and the observable is the near-linear slope.
///
///   ./scaling_study [--min-scale 10] [--max-scale 16] [--sources 256]

#include <cmath>
#include <iostream>

#include "core/betweenness.hpp"
#include "gen/rmat.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace graphct;
  try {
    Cli cli(argc, argv,
            {{"min-scale", "smallest R-MAT scale"},
             {"max-scale", "largest R-MAT scale"},
             {"sources", "BC sample size (paper: 256)"}});
    const auto lo = cli.get("min-scale", std::int64_t{10});
    const auto hi = cli.get("max-scale", std::int64_t{15});
    const auto sources = cli.get("sources", std::int64_t{256});

    TextTable table({"scale", "vertices", "edges", "V*E", "bc time", "ns per V*E^0.5"});
    for (std::int64_t s = lo; s <= hi; ++s) {
      RmatOptions r;
      r.scale = s;
      r.edge_factor = 16;
      r.seed = 7;
      const CsrGraph g = rmat_graph(r);

      BetweennessOptions o;
      o.num_sources = sources;
      o.seed = 99;
      const auto bc = betweenness_centrality(g, o);

      const double ve = static_cast<double>(g.num_vertices()) *
                        static_cast<double>(g.num_edges());
      table.add_row({std::to_string(s), with_commas(g.num_vertices()),
                     with_commas(g.num_edges()), strf("%.3g", ve),
                     format_duration(bc.seconds),
                     strf("%.2f", bc.seconds * 1e9 / std::sqrt(ve))});
      std::cout << "scale " << s << " done (" << format_duration(bc.seconds)
                << ")\n";
    }
    std::cout << "\n" << table.render()
              << "\nWith a fixed source count the kernel is O(sources * E), "
                 "so time grows ~sqrt(V*E)\nalong an R-MAT family — the "
                 "straight-line shape of the paper's Fig. 6.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
