/// \file crisis_monitor.cpp
/// The paper's motivating scenario, end to end: an analyst monitoring a
/// crisis hashtag (the 2009 Atlanta flood) needs to go from a hundred
/// thousand raw interactions to "a handful of conversations" (§I) with
/// confidence in the ranking. This example chains every stage:
///
///   1. harvest      — synthetic #atlflood stream (stands in for Spinn3r)
///   2. triage       — Table III-style graph characteristics
///   3. temporal     — is the event still growing? which hubs persist?
///   4. filter       — mutual-mention conversations + SCC rings (Fig. 3)
///   5. rank         — k-betweenness of the conversation cluster (Table IV)
///   6. confidence   — is the sampled ranking stable enough to act on? (§V)
///
///   ./crisis_monitor [--scale 1.0] [--seed S]

#include <iostream>

#include "algs/connected_components.hpp"
#include "algs/ranking.hpp"
#include "core/bc_confidence.hpp"
#include "core/kbetweenness.hpp"
#include "twitter/conversation.hpp"
#include "twitter/corpus_gen.hpp"
#include "twitter/datasets.hpp"
#include "twitter/mention_graph.hpp"
#include "twitter/temporal.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace graphct;
  namespace tw = graphct::twitter;
  try {
    Cli cli(argc, argv,
            {{"scale", "corpus scale factor"}, {"seed", "corpus seed"}});
    auto preset = tw::dataset_preset("atlflood", cli.get("scale", 1.0));
    if (cli.has("seed")) {
      preset.corpus.seed =
          static_cast<std::uint64_t>(cli.get("seed", std::int64_t{1}));
    }

    std::cout << "#atlflood crisis monitor — " << preset.description << "\n\n";

    // 1. Harvest.
    const auto tweets = tw::generate_corpus(preset.corpus);
    tw::MentionGraphBuilder builder;
    for (const auto& t : tweets) builder.add(t);
    const auto mg = std::move(builder).build();

    // 2. Triage: is this a broadcast storm or a conversation?
    std::cout << "== triage ==\n";
    TextTable triage({"signal", "value", "reading"});
    triage.add_row({"tweets", with_commas(mg.num_tweets), ""});
    triage.add_row({"users", with_commas(mg.num_users), ""});
    triage.add_row(
        {"unique interactions", with_commas(mg.unique_interactions),
         mg.unique_interactions < mg.num_users ? "tree-like (broadcast)"
                                               : "denser than a forest"});
    triage.add_row({"tweets with responses",
                    with_commas(mg.tweets_with_responses),
                    strf("%.1f%% of tweets",
                         100.0 * static_cast<double>(mg.tweets_with_responses) /
                             static_cast<double>(std::max<std::int64_t>(
                                 1, mg.num_tweets)))});
    triage.add_row({"self-references", with_commas(mg.self_references),
                    "echo chamber indicator"});
    std::cout << triage.render() << "\n";

    // 3. Temporal: event trajectory and hub persistence.
    std::cout << "== temporal ==\n";
    const auto span = tweets.back().timestamp - tweets.front().timestamp;
    tw::WindowOptions w;
    w.window_seconds = span / 6 + 1;
    const auto windows = tw::sliding_window_stats(tweets, w);
    TextTable tempo({"window", "tweets", "users", "responses", "top cited"});
    for (std::size_t i = 0; i < windows.size(); ++i) {
      tempo.add_row({std::to_string(i), with_commas(windows[i].tweets),
                     with_commas(windows[i].users),
                     with_commas(windows[i].tweets_with_responses),
                     "@" + windows[i].top_user});
    }
    std::cout << tempo.render();
    const auto hubs = tw::hub_persistence(tweets, w, 5);
    std::cout << "persistent hubs:";
    for (const auto& h : hubs) {
      std::cout << strf(" @%s (%.0f%%)", h.name.c_str(), h.presence * 100);
    }
    std::cout << "\n\n";

    // 4. Filter to conversations.
    std::cout << "== conversations ==\n";
    const auto sub = tw::subcommunity_filter(mg);
    std::cout << strf(
        "mutual filter: %s -> %s vertices (%.0fx reduction); largest "
        "conversation %s users\n",
        with_commas(sub.original_vertices).c_str(),
        with_commas(sub.mutual_vertices).c_str(), sub.reduction_factor,
        with_commas(sub.mutual_lwcc_vertices).c_str());
    const auto rings = tw::scc_conversations(mg);
    std::cout << "directed conversation rings (SCCs >= 2): " << rings.size()
              << "\n\n";

    // 5. Rank the actors of the biggest conversation cluster with k-BC
    //    (robust to single dropped edges, §II-A).
    std::cout << "== who matters ==\n";
    if (sub.mutual_lwcc_vertices > 2) {
      KBetweennessOptions ko;
      ko.k = 1;
      const auto kbc = k_betweenness_centrality(sub.mutual_lwcc.graph, ko);
      const auto top = top_k(
          std::span<const double>(kbc.score.data(), kbc.score.size()), 5);
      TextTable actors({"rank", "user", "k=1 betweenness"});
      for (std::size_t i = 0; i < top.size(); ++i) {
        const vid orig =
            sub.mutual_lwcc.orig_ids[static_cast<std::size_t>(top[i])];
        actors.add_row({std::to_string(i + 1),
                        "@" + mg.users[static_cast<std::size_t>(orig)],
                        strf("%.4g", kbc.score[static_cast<std::size_t>(
                                 top[i])])});
      }
      std::cout << actors.render() << "\n";
    }

    // 6. Confidence: can the analyst trust a sampled ranking here?
    std::cout << "== confidence ==\n";
    const auto lwcc = largest_component(mg.undirected());
    BcConfidenceOptions co;
    co.num_sources =
        std::max<std::int64_t>(16, lwcc.graph.num_vertices() / 10);
    co.replicates = 5;
    co.top_percent = 1.0;
    const auto conf = bc_confidence(lwcc.graph, co);
    std::int64_t certain = 0;
    for (double m : conf.top_membership) {
      if (m >= 0.999) ++certain;
    }
    std::cout << strf(
        "10%%-sampled BC on the LWCC: top-1%% list stability %.0f%%, "
        "%lld vertices\nunanimous across %lld replicates — "
        "%s\n",
        conf.top_list_stability * 100, static_cast<long long>(certain),
        static_cast<long long>(co.replicates),
        conf.top_list_stability > 0.7
            ? "act on the sampled ranking"
            : "increase the sample before acting");
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
