/// \file streaming_mentions.cpp
/// Live analysis of a tweet stream: maintain the mention graph of the
/// trailing window with incrementally-updated clustering coefficients
/// (the authors' streaming analytics, ref [10], applied to the paper's
/// Twitter pipeline). Prints a ticker of the live graph as the stream
/// plays: active conversations (triangles) rise and fall with the window.
///
///   ./streaming_mentions [--dataset tiny|atlflood|h1n1] [--scale 0.2]
///                        [--window 1200] [--ticks 12]

#include <iostream>
#include <unordered_map>

#include "stream/sliding_window.hpp"
#include "twitter/corpus_gen.hpp"
#include "twitter/datasets.hpp"
#include "twitter/tweet_parser.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace graphct;
  namespace tw = graphct::twitter;
  try {
    Cli cli(argc, argv,
            {{"dataset", "corpus preset"},
             {"scale", "corpus scale factor"},
             {"window", "trailing window in seconds"},
             {"ticks", "status lines to print"}});
    const auto preset = tw::dataset_preset(cli.get("dataset", std::string("tiny")),
                                           cli.get("scale", 1.0));
    const auto window = cli.get("window", std::int64_t{1200});
    const auto ticks = cli.get("ticks", std::int64_t{12});

    const auto tweets = tw::generate_corpus(preset.corpus);
    std::cout << "Streaming " << with_commas(static_cast<long long>(tweets.size()))
              << " tweets (" << preset.name << ") through a " << window
              << " s window...\n\n";

    // Intern users on the fly; the window graph needs a fixed vertex budget,
    // so reserve the whole pool.
    std::unordered_map<std::string, vid> ids;
    auto intern = [&](const std::string& name) {
      auto [it, fresh] = ids.try_emplace(name, static_cast<vid>(ids.size()));
      (void)fresh;
      return it->second;
    };

    SlidingWindowGraph live(preset.corpus.user_pool + 8, window);

    const std::int64_t t0 = tweets.front().timestamp;
    const std::int64_t t1 = tweets.back().timestamp;
    const std::int64_t tick_every = std::max<std::int64_t>(1, (t1 - t0) / ticks);
    std::int64_t next_tick = t0 + tick_every;

    TextTable ticker({"time (s)", "live edges", "live triangles",
                      "global clustering", "window observations"});
    for (const auto& t : tweets) {
      const auto p = tw::parse_tweet(t);
      const vid author = intern(p.author);
      for (const auto& m : p.mentions) {
        live.observe(author, intern(m), t.timestamp);
      }
      while (t.timestamp >= next_tick) {
        ticker.add_row({std::to_string(next_tick - t0),
                        with_commas(live.live().graph().num_edges()),
                        with_commas(live.live().total_triangles()),
                        strf("%.4f", live.live().global_clustering()),
                        with_commas(live.active_observations())});
        next_tick += tick_every;
      }
    }
    std::cout << ticker.render()
              << "\nThe live triangle count is the analyst's conversation "
                 "pulse: reciprocated\nclusters light up as threads ignite "
                 "and fade as the window slides past them —\nno snapshot "
                 "recomputation required.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
