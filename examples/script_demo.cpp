/// \file script_demo.cpp
/// The GraphCT analyst scripting interface (paper §IV-B).
///
/// With a file argument, behaves as the `graphct-script` CLI:
///   ./script_demo analysis.gct
/// Without arguments, runs the paper's example script against a generated
/// stand-in for `patents.txt` and shows the output.

#include <cstdio>
#include <filesystem>
#include <iostream>

#include "script/interpreter.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace graphct;
  try {
    Cli cli(argc, argv, {{"timings", "print per-command wall times!"}});
    script::InterpreterOptions opts;
    opts.timings = cli.has("timings");
    script::Interpreter interp(std::cout, opts);

    if (!cli.positional().empty()) {
      for (const auto& path : cli.positional()) {
        interp.run_file(path);
      }
      return 0;
    }

    // Demo mode: generate a stand-in dataset, then run the paper's script.
    const std::string dimacs =
        (std::filesystem::temp_directory_path() / "patents.txt").string();
    const std::string comp1 =
        (std::filesystem::temp_directory_path() / "comp1.bin").string();
    const std::string k1 =
        (std::filesystem::temp_directory_path() / "k1scores.txt").string();
    const std::string k2 =
        (std::filesystem::temp_directory_path() / "k2scores.txt").string();

    std::cout << "== preparing a stand-in for patents.txt ==\n";
    interp.run("generate rmat 12 8\nwrite dimacs " + dimacs + "\n");

    const std::string script =
        "read dimacs " + dimacs + "\n" +
        "print diameter 10\n"
        "save graph\n"
        "extract component 1 => " + comp1 + "\n" +
        "print degrees\n"
        "kcentrality 1 256 => " + k1 + "\n" +
        "kcentrality 2 256 => " + k2 + "\n" +
        "restore graph\n"
        "extract component 2\n"
        "print degrees\n";

    std::cout << "\n== the paper's example script ==\n" << script
              << "\n== execution ==\n";
    interp.run(script);

    std::cout << "\nPer-vertex outputs written to:\n  " << comp1 << "\n  "
              << k1 << "\n  " << k2 << "\n";
    for (const auto& p : {dimacs, comp1, k1, k2}) std::remove(p.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
