/// \file component_explorer.cpp
/// Interactive-style exploration of a graph's component and core structure:
/// the "finding all connected components, extracting components according
/// to their size, and analyzing those components" sequence the paper calls
/// a common workflow (§IV-A).
///
///   ./component_explorer [--generator rmat|er|chunglu|ws] [--scale N]
///                        [--components K] [--seed S]

#include <iostream>

#include "algs/degree.hpp"
#include "algs/kcore.hpp"
#include "core/toolkit.hpp"
#include "gen/random_graphs.hpp"
#include "gen/rmat.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/histogram.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace graphct;
  try {
    Cli cli(argc, argv,
            {{"generator", "rmat, er, chunglu, or ws"},
             {"scale", "log2 of vertex count"},
             {"components", "how many components to drill into"},
             {"seed", "generator seed"}});
    const auto gen = cli.get("generator", std::string("rmat"));
    const auto scale = cli.get("scale", std::int64_t{13});
    const auto drill = cli.get("components", std::int64_t{3});
    const auto seed = static_cast<std::uint64_t>(cli.get("seed", std::int64_t{1}));
    const vid n = vid{1} << scale;

    CsrGraph g;
    if (gen == "rmat") {
      RmatOptions r;
      r.scale = scale;
      r.edge_factor = 8;
      r.seed = seed;
      g = rmat_graph(r);
    } else if (gen == "er") {
      g = erdos_renyi(n, 4 * n, seed);
    } else if (gen == "chunglu") {
      g = chung_lu_power_law(n, 8 * n, 2.3, seed);
    } else if (gen == "ws") {
      g = watts_strogatz(n, 4, 0.1, seed);
    } else {
      throw Error("unknown generator: " + gen);
    }

    ToolkitOptions topts;
    topts.diameter_samples = 64;
    Toolkit tk(std::move(g));
    std::cout << gen << " graph: " << with_commas(tk.graph().num_vertices())
              << " vertices, " << with_commas(tk.graph().num_edges())
              << " edges\n\n";

    const auto& stats = tk.components_stats();
    std::cout << "components: " << with_commas(stats.num_components) << "\n\n";

    // Component-size distribution (log-binned) — the paper's "statistical
    // distributions of ... component sizes" kernel.
    LogHistogram size_hist;
    for (const auto& [label, size] : stats.sizes) size_hist.add(size);
    std::cout << "component size distribution:\n"
              << size_hist.ascii_chart() << "\n";

    TextTable table(
        {"component", "vertices", "edges", "degeneracy", "mean degree"});
    const auto k = std::min<std::int64_t>(drill, stats.num_components);
    for (std::int64_t i = 0; i < k; ++i) {
      Toolkit sub = tk.extract_component(i);
      const auto& ds = sub.degree_stats();
      const auto deg = degeneracy(sub.core_numbers());
      table.add_row({std::to_string(i + 1),
                     with_commas(sub.graph().num_vertices()),
                     with_commas(sub.graph().num_edges()),
                     std::to_string(deg), strf("%.2f", ds.mean)});
    }
    std::cout << table.render();

    // Peel the giant component's cores.
    Toolkit giant = tk.extract_component(0);
    std::cout << "\nk-core peeling of the largest component:\n";
    TextTable cores({"k", "vertices in k-core"});
    const auto& cn = giant.core_numbers();
    const auto dgn = degeneracy(cn);
    for (std::int64_t kk = 0; kk <= dgn; ++kk) {
      std::int64_t count = 0;
      for (auto c : cn) {
        if (c >= kk) ++count;
      }
      cores.add_row({std::to_string(kk), with_commas(count)});
    }
    std::cout << cores.render();
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
