/// \file ablation_kbc.cpp
/// Ablation: the cost and effect of the k in k-betweenness centrality.
/// GraphCT's scripting example runs kcentrality for k = 1 and k = 2; this
/// bench measures the slowdown per extra slack level and how much the
/// ranking actually moves (Spearman correlation and top-k overlap against
/// k = 0 = classic Brandes), on an R-MAT graph and on the H1N1 conversation
/// subgraph where robustness matters.
///
///   ./ablation_kbc [--scale 12] [--sources 32] [--quick]

#include <iostream>

#include "algs/ranking.hpp"
#include "bench_common.hpp"
#include "core/kbetweenness.hpp"
#include "gen/rmat.hpp"
#include "twitter/conversation.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

void run_family(const graphct::CsrGraph& g, const std::string& label,
                std::int64_t sources) {
  using namespace graphct;
  std::cout << "-- " << label << ": " << with_commas(g.num_vertices())
            << " vertices, " << with_commas(g.num_edges()) << " edges --\n";
  std::vector<double> k0_scores;
  double k0_time = 0;
  TextTable t({"k", "time", "vs k=0", "spearman vs k=0", "top-5% overlap"});
  for (std::int64_t k = 0; k <= 2; ++k) {
    KBetweennessOptions o;
    o.k = k;
    o.num_sources = std::min<std::int64_t>(sources, g.num_vertices());
    o.seed = 7;
    const auto r = k_betweenness_centrality(g, o);
    if (k == 0) {
      k0_scores = r.score;
      k0_time = r.seconds;
    }
    const double rho = spearman_correlation(
        std::span<const double>(k0_scores.data(), k0_scores.size()),
        std::span<const double>(r.score.data(), r.score.size()));
    const double ov = top_k_overlap(
        std::span<const double>(k0_scores.data(), k0_scores.size()),
        std::span<const double>(r.score.data(), r.score.size()), 5.0);
    t.add_row({std::to_string(k), format_duration(r.seconds),
               strf("%.2fx", r.seconds / k0_time), strf("%.3f", rho),
               strf("%.0f%%", ov * 100)});
  }
  std::cout << t.render() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace graphct;
  namespace tw = graphct::twitter;
  try {
    Cli cli(argc, argv,
            {{"scale", "R-MAT scale"},
             {"sources", "sampled sources"},
             {"quick", "small graphs!"}});
    const auto scale = cli.has("quick") ? std::int64_t{10}
                                        : cli.get("scale", std::int64_t{12});
    const auto sources = cli.get("sources", std::int64_t{32});

    std::cout << "== Ablation: k-betweenness centrality, k = 0, 1, 2 ==\n\n";

    RmatOptions r;
    r.scale = scale;
    r.edge_factor = 8;
    run_family(rmat_graph(r), strf("rmat scale %lld",
                                   static_cast<long long>(scale)),
               sources);

    const auto preset =
        tw::dataset_preset("h1n1", cli.has("quick") ? 0.05 : 0.2);
    const auto mg = bench::build_preset_graph(preset);
    const auto sub = tw::subcommunity_filter(mg);
    if (sub.mutual_lwcc.graph.num_vertices() > 2) {
      run_family(sub.mutual_lwcc.graph, "h1n1 largest conversation cluster",
                 kNoVertex);  // exact: the cluster is small
    }

    std::cout << "Each slack level costs roughly one extra sweep family "
                 "(O(k*m) per source); the\nranking stays highly correlated "
                 "but k >= 1 redistributes weight onto near-shortest\n"
                 "alternates — the robustness the paper wants against noisy "
                 "social graphs (§II-A).\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
