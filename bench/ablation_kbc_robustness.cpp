/// \file ablation_kbc_robustness.cpp
/// Quantifies the paper's §II-A motivation for k-betweenness centrality:
/// "Betweenness centrality is not robust against noise. Adding or removing
/// a single edge may drastically alter many vertices' betweenness
/// centrality scores. ... k-Betweenness centrality considers alternate
/// paths that may become important should the shortest path change."
///
/// Protocol: compute BC_k rankings on a graph, delete a random sample of
/// edges (the "noise"), recompute, and measure ranking stability
/// (Spearman over all vertices, top-5% overlap) per k. The claim holds if
/// stability rises with k.
///
///   ./ablation_kbc_robustness [--scale 11] [--drop 0.02] [--trials 5]
///                             [--quick]

#include <iostream>

#include "algs/ranking.hpp"
#include "core/kbetweenness.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace graphct;

// Rebuild `g` without a random `drop` fraction of its edges.
CsrGraph perturb(const CsrGraph& g, double drop, Rng& rng) {
  EdgeList el(g.num_vertices());
  for (vid u = 0; u < g.num_vertices(); ++u) {
    for (vid v : g.neighbors(u)) {
      if (u > v) continue;
      if (rng.next_bool(drop)) continue;
      el.add(u, v);
    }
  }
  BuildOptions b;
  b.symmetrize = true;
  b.dedup = false;
  return build_csr(el, b);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Cli cli(argc, argv,
            {{"scale", "R-MAT scale"},
             {"drop", "fraction of edges deleted per trial"},
             {"trials", "perturbation trials"},
             {"quick", "small run!"}});
    const auto scale = cli.has("quick") ? std::int64_t{9}
                                        : cli.get("scale", std::int64_t{11});
    const double drop = cli.get("drop", 0.02);
    const auto trials = cli.has("quick") ? std::int64_t{3}
                                         : cli.get("trials", std::int64_t{5});

    RmatOptions r;
    r.scale = scale;
    r.edge_factor = 8;
    r.seed = 3;
    const auto g = rmat_graph(r);

    std::cout << "== Ablation: k-BC robustness to edge noise (paper §II-A "
                 "claim) ==\n"
              << "graph: " << with_commas(g.num_vertices()) << " vertices, "
              << with_commas(g.num_edges()) << " edges; dropping "
              << strf("%.1f%%", drop * 100) << " of edges, " << trials
              << " trials\n\n";

    TextTable t({"k", "spearman (mean)", "top-5% overlap (mean)",
                 "overlap 90% ci"});
    for (std::int64_t k = 0; k <= 2; ++k) {
      KBetweennessOptions o;
      o.k = k;
      o.num_sources = std::min<vid>(512, g.num_vertices());
      o.seed = 11;
      const auto base = k_betweenness_centrality(g, o);
      const std::span<const double> base_s(base.score.data(),
                                           base.score.size());
      std::vector<double> rhos, overlaps;
      for (std::int64_t trial = 0; trial < trials; ++trial) {
        Rng rng(700 + static_cast<std::uint64_t>(trial));
        const auto g2 = perturb(g, drop, rng);
        const auto after = k_betweenness_centrality(g2, o);
        const std::span<const double> after_s(after.score.data(),
                                              after.score.size());
        rhos.push_back(spearman_correlation(base_s, after_s));
        overlaps.push_back(top_k_overlap(base_s, after_s, 5.0));
      }
      const auto rs = summarize(std::span<const double>(rhos.data(), rhos.size()));
      const auto os_ = summarize(
          std::span<const double>(overlaps.data(), overlaps.size()));
      t.add_row({std::to_string(k), strf("%.4f", rs.mean),
                 strf("%.1f%%", os_.mean * 100),
                 strf("+/- %.1f", confidence_half_width(os_, 0.90) * 100)});
    }
    std::cout << t.render()
              << "\nThe claim holds when stability (both columns) rises "
                 "with k: rankings that\nalready credit near-shortest "
                 "alternates move less when an edge disappears.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
