/// \file ablation_bfs.cpp
/// Ablation: top-down vs direction-optimizing BFS. GraphCT's kernels are
/// all top-down level-synchronous searches; direction-optimizing BFS
/// (bottom-up sweeps on huge frontiers) is the modern refinement for the
/// very scale-free graphs the paper targets. Both must agree exactly on
/// distances; the interesting output is traversal rate per strategy.
///
///   ./ablation_bfs [--scale 16] [--trials 16] [--quick]

#include <iostream>

#include "algs/bfs.hpp"
#include "gen/rmat.hpp"
#include "obs/trace.hpp"
#include "graph/transforms.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace graphct;
  try {
    Cli cli(argc, argv,
            {{"scale", "R-MAT scale"},
             {"trials", "BFS sources to average over"},
             {"quick", "small graph!"}});
    const auto scale = cli.has("quick") ? std::int64_t{12}
                                        : cli.get("scale", std::int64_t{16});
    const auto trials = cli.get("trials", std::int64_t{16});

    RmatOptions r;
    r.scale = scale;
    r.edge_factor = 16;
    const auto g = rmat_graph(r);
    std::cout << "== Ablation: top-down vs direction-optimizing BFS ==\n"
              << "graph: " << with_commas(g.num_vertices()) << " vertices, "
              << with_commas(g.num_edges()) << " edges; " << trials
              << " random sources\n\n";

    Rng rng(3);
    std::vector<vid> sources;
    for (std::int64_t i = 0; i < trials; ++i) {
      sources.push_back(static_cast<vid>(
          rng.next_below(static_cast<std::uint64_t>(g.num_vertices()))));
    }

    TextTable t({"strategy", "total time", "Medges/s", "mismatches"});
    std::vector<std::vector<vid>> td_dists;
    const double td_time = obs::timed("bench.bfs_topdown", [&] {
      for (vid s : sources) td_dists.push_back(bfs(g, s).distance);
    });
    {
      t.add_row({"top-down (GraphCT)", format_duration(td_time),
                 strf("%.0f", static_cast<double>(trials) *
                                  static_cast<double>(g.num_adjacency_entries()) /
                                  1e6 / td_time),
                 "0"});
    }
    {
      BfsOptions o;
      o.strategy = BfsStrategy::kDirectionOptimizing;
      std::int64_t mismatches = 0;
      const double dt = obs::timed("bench.bfs_diropt", [&] {
        for (std::size_t i = 0; i < sources.size(); ++i) {
          const auto d = bfs(g, sources[i], o).distance;
          if (d != td_dists[i]) ++mismatches;
        }
      });
      t.add_row({"direction-optimizing", format_duration(dt),
                 strf("%.0f", static_cast<double>(trials) *
                                  static_cast<double>(g.num_adjacency_entries()) /
                                  1e6 / dt),
                 std::to_string(mismatches)});
      std::cout << t.render()
                << strf("\nspeedup: %.2fx (direction-optimizing skips most "
                        "edge checks once the frontier\nis large — the "
                        "common case on scale-free graphs with tiny "
                        "diameters)\n",
                        td_time / dt);
    }

    // Second ablation: degree-ordered relabeling. Hubs packed first improve
    // cache locality for every CSR sweep on commodity CPUs (the cache-less
    // XMT hashed addresses on purpose; here locality pays).
    {
      const auto rl = relabel_by_degree(g);
      const double rt = obs::timed("bench.bfs_relabeled", [&] {
        for (vid s : sources) {
          (void)bfs(rl.graph, rl.graph.num_vertices() > s ? s : 0)
              .num_reached();
        }
      });
      std::cout << strf("\ndegree-relabeled top-down BFS: %s total "
                        "(%.2fx vs original labels)\n",
                        format_duration(rt).c_str(), td_time / rt);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
