/// \file micro_kernels.cpp
/// google-benchmark microbenchmarks for every GraphCT kernel and the ingest
/// path, parameterized by R-MAT scale. These are the per-kernel numbers
/// behind the table/figure harnesses.

#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "algs/bfs.hpp"
#include "algs/clustering.hpp"
#include "algs/connected_components.hpp"
#include "algs/degree.hpp"
#include "algs/diameter.hpp"
#include "algs/kcore.hpp"
#include "core/betweenness.hpp"
#include "core/kbetweenness.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "graph/io_dimacs.hpp"

namespace {

using namespace graphct;

const CsrGraph& cached_graph(std::int64_t scale) {
  static std::map<std::int64_t, CsrGraph> cache;
  auto it = cache.find(scale);
  if (it == cache.end()) {
    RmatOptions r;
    r.scale = scale;
    r.edge_factor = 8;
    r.seed = 12;
    it = cache.emplace(scale, rmat_graph(r)).first;
  }
  return it->second;
}

void BM_RmatGenerate(benchmark::State& state) {
  RmatOptions r;
  r.scale = state.range(0);
  r.edge_factor = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rmat_edges(r));
  }
  state.SetItemsProcessed(state.iterations() *
                          (r.edge_factor << r.scale));
}
BENCHMARK(BM_RmatGenerate)->Arg(10)->Arg(12)->Arg(14);

void BM_CsrBuild(benchmark::State& state) {
  RmatOptions r;
  r.scale = state.range(0);
  r.edge_factor = 8;
  const EdgeList el = rmat_edges(r);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_csr(el));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(el.size()));
}
BENCHMARK(BM_CsrBuild)->Arg(10)->Arg(12)->Arg(14);

void BM_DimacsParse(benchmark::State& state) {
  const std::string text = to_dimacs(cached_graph(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_dimacs(text));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_DimacsParse)->Arg(10)->Arg(12)->Arg(14);

void BM_Bfs(benchmark::State& state) {
  const auto& g = cached_graph(state.range(0));
  vid s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs(g, s));
    s = (s + 1) % g.num_vertices();
  }
  state.SetItemsProcessed(state.iterations() * g.num_adjacency_entries());
}
BENCHMARK(BM_Bfs)->Arg(10)->Arg(12)->Arg(14);

void BM_BfsDirectionOptimizing(benchmark::State& state) {
  const auto& g = cached_graph(state.range(0));
  BfsOptions o;
  o.strategy = BfsStrategy::kDirectionOptimizing;
  vid s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs(g, s, o));
    s = (s + 1) % g.num_vertices();
  }
  state.SetItemsProcessed(state.iterations() * g.num_adjacency_entries());
}
BENCHMARK(BM_BfsDirectionOptimizing)->Arg(10)->Arg(12)->Arg(14);

void BM_ConnectedComponents(benchmark::State& state) {
  const auto& g = cached_graph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(connected_components(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_adjacency_entries());
}
BENCHMARK(BM_ConnectedComponents)->Arg(10)->Arg(12)->Arg(14);

void BM_DegreeStats(benchmark::State& state) {
  const auto& g = cached_graph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(degree_summary(g));
  }
}
BENCHMARK(BM_DegreeStats)->Arg(12)->Arg(14);

void BM_KCore(benchmark::State& state) {
  const auto& g = cached_graph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core_numbers(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_adjacency_entries());
}
BENCHMARK(BM_KCore)->Arg(10)->Arg(12)->Arg(14);

void BM_Clustering(benchmark::State& state) {
  const auto& g = cached_graph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(clustering_coefficients(g));
  }
}
BENCHMARK(BM_Clustering)->Arg(10)->Arg(12);

void BM_DiameterEstimate(benchmark::State& state) {
  const auto& g = cached_graph(state.range(0));
  DiameterOptions o;
  o.num_samples = 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimate_diameter(g, o));
  }
}
BENCHMARK(BM_DiameterEstimate)->Arg(10)->Arg(12);

void BM_BetweennessPerSource(benchmark::State& state) {
  const auto& g = cached_graph(state.range(0));
  BetweennessOptions o;
  o.num_sources = 8;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    o.seed = seed++;
    benchmark::DoNotOptimize(betweenness_centrality(g, o));
  }
  state.SetItemsProcessed(state.iterations() * 8 * g.num_adjacency_entries());
}
BENCHMARK(BM_BetweennessPerSource)->Arg(10)->Arg(12)->Arg(14);

void BM_KBetweenness(benchmark::State& state) {
  const auto& g = cached_graph(12);
  KBetweennessOptions o;
  o.k = state.range(0);
  o.num_sources = 8;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    o.seed = seed++;
    benchmark::DoNotOptimize(k_betweenness_centrality(g, o));
  }
}
BENCHMARK(BM_KBetweenness)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
