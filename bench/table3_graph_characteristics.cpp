/// \file table3_graph_characteristics.cpp
/// Reproduces Table III: Twitter user-to-user graph characteristics —
/// users, unique user interactions, and tweets with responses — for the
/// full graph and its largest weakly connected component, over the three
/// September-2009 datasets (H1N1, #atlflood, all tweets of 1 Sep).
///
/// Corpora are synthesized by the calibrated presets (DESIGN.md §2); each
/// cell prints measured (paper). The observables: interactions below users
/// for H1N1 (tree-like fragmentation), a dominant but partial LWCC, and
/// responses a small fraction of tweets.
///
///   ./table3_graph_characteristics [--scale 1.0] [--quick]

#include <iostream>
#include <optional>

#include "algs/connected_components.hpp"
#include "bench_common.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace graphct;
  namespace tw = graphct::twitter;
  try {
    Cli cli(argc, argv,
            {{"scale", "corpus scale factor in (0,1]"},
             {"quick", "use a small corpus scale (0.05)!"}});
    const double scale = cli.has("quick") ? 0.05 : cli.get("scale", 1.0);

    std::cout << "== Table III: tweet graph characteristics, measured (paper) ==\n"
              << "corpus scale " << scale
              << (scale < 1.0 ? "  [paper numbers are full-scale]" : "")
              << "\n\n";

    TextTable t({"data set", "users", "unique user interactions",
                 "tweets with responses"});
    for (const auto& name : {"h1n1", "atlflood", "sep1"}) {
      const auto preset = tw::dataset_preset(name, scale);
      std::optional<tw::MentionGraph> mg_built;
      const double build_s = obs::timed("bench.mention_build", [&] {
        mg_built = bench::build_preset_graph(preset);
      });
      const auto& mg = *mg_built;

      t.add_row({preset.name,
                 bench::vs_paper(mg.num_users, preset.paper.users),
                 bench::vs_paper(mg.unique_interactions,
                                 preset.paper.unique_interactions),
                 bench::vs_paper(mg.tweets_with_responses,
                                 preset.paper.tweets_with_responses)});

      // LWCC row, as in the paper's parenthesized second lines.
      const auto und = mg.undirected();
      const auto labels = connected_components(und);
      const auto stats = component_stats(labels);
      const auto lwcc = extract_by_label(und, labels, stats.largest_label());

      // Count responses restricted to LWCC members.
      std::vector<char> in_lwcc(static_cast<std::size_t>(und.num_vertices()), 0);
      for (vid v : lwcc.orig_ids) in_lwcc[static_cast<std::size_t>(v)] = 1;

      t.add_row({"  (LWCC)",
                 bench::vs_paper(lwcc.graph.num_vertices(),
                                 preset.paper.lwcc_users),
                 bench::vs_paper(lwcc.graph.num_edges() -
                                     lwcc.graph.num_self_loops(),
                                 preset.paper.lwcc_interactions),
                 "-"});
      t.add_separator();
      std::cerr << preset.name << ": built in "
                << format_duration(build_s) << "\n";
    }
    std::cout << t.render()
              << "\nShape checks: H1N1 interactions < users (fragmented "
                 "broadcast forest); LWCC holds\na majority of interactions; "
                 "responses are a small fraction of tweets.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
