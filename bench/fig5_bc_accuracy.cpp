/// \file fig5_bc_accuracy.cpp
/// Reproduces Fig. 5: the accuracy trade-off between exact and approximate
/// betweenness centrality. For sampled fractions of 10%, 25%, 50%, compare
/// the top k = 1%, 5%, 10%, 20% of users (by approximate score) against the
/// exact ranking using the normalized top-k set overlap (1 - set Hamming
/// distance), averaged over realizations with 90% confidence.
///
/// Paper observables: accuracy stays above ~80% for the top 1%/5% at 10%
/// sampling and climbs over 90% at 25-50% sampling.
///
///   ./fig5_bc_accuracy [--scale 1.0] [--realizations 10] [--quick]

#include <iostream>

#include "algs/connected_components.hpp"
#include "algs/ranking.hpp"
#include "bench_common.hpp"
#include "core/betweenness.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace graphct;
  namespace tw = graphct::twitter;
  try {
    Cli cli(argc, argv,
            {{"scale", "corpus scale factor"},
             {"realizations", "runs per sampled setting (paper: 10)"},
             {"quick", "small corpora, 3 realizations!"}});
    const double scale = cli.has("quick") ? 0.1 : cli.get("scale", 1.0);
    const auto reps = cli.has("quick")
                          ? std::int64_t{3}
                          : cli.get("realizations", std::int64_t{10});

    const double fractions[] = {0.10, 0.25, 0.50};
    const double top_ks[] = {1.0, 5.0, 10.0, 20.0};

    std::cout << "== Fig. 5: accuracy of approximate BC (top-k overlap with "
                 "exact) ==\ncorpus scale " << scale << ", " << reps
              << " realizations, 90% confidence\n\n";

    TextTable t({"data set", "sampled %", "top 1%", "top 5%", "top 10%",
                 "top 20%"});
    for (const auto& name : {"atlflood", "h1n1"}) {
      const auto preset = tw::dataset_preset(name, scale);
      const auto mg = bench::build_preset_graph(preset);
      const auto lwcc = largest_component(mg.undirected());
      const auto& g = lwcc.graph;
      std::cerr << name << " LWCC: " << with_commas(g.num_vertices())
                << " vertices\n";

      const auto exact = betweenness_centrality(g);
      const std::span<const double> exact_scores(exact.score.data(),
                                                 exact.score.size());

      for (double frac : fractions) {
        // overlap[k][rep]
        std::vector<std::vector<double>> overlap(4);
        for (std::int64_t rep = 0; rep < reps; ++rep) {
          BetweennessOptions o;
          o.sample_fraction = frac;
          o.seed = 2000 + static_cast<std::uint64_t>(rep);
          const auto approx = betweenness_centrality(g, o);
          const std::span<const double> approx_scores(approx.score.data(),
                                                      approx.score.size());
          for (std::size_t k = 0; k < 4; ++k) {
            overlap[k].push_back(
                top_k_overlap(exact_scores, approx_scores, top_ks[k]));
          }
        }
        std::vector<std::string> row{name, strf("%.0f%%", frac * 100)};
        for (std::size_t k = 0; k < 4; ++k) {
          const auto s = summarize(
              std::span<const double>(overlap[k].data(), overlap[k].size()));
          const double ci = confidence_half_width(s, 0.90);
          row.push_back(strf("%.0f%% +/- %.0f", s.mean * 100, ci * 100));
        }
        t.add_row(row);
      }
      t.add_separator();
    }
    std::cout << t.render()
              << "\nShape check: top-1%/5% overlap >= ~80% at 10% sampling, "
                 "climbing above 90% at\n25-50% — the paper's Fig. 5 curves.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
