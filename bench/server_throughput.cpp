/// \file server_throughput.cpp
/// graphctd query throughput: cached vs uncached, across session counts —
/// plus a sustained TCP load mode exercising the epoll serving core.
///
/// **Classic mode** (default) measures the server's end-to-end query path
/// (protocol line -> job queue -> kernel -> response) on an R-MAT graph at
/// 1, 4, and 16 concurrent in-process sessions. Each session drives its
/// own registry graph so the per-graph serialization never blocks another
/// session; "cached" sessions are warmed first and every timed query is a
/// cache hit, "uncached" sessions invalidate their kernel cache before
/// every query, so each one pays full recomputation. The gap between the
/// two modes is the value of the shared kernel-result cache.
///
/// **Sustained mode** (--sustained) drives the real TCP transport:
/// hundreds of concurrent client connections (default 200) speak the
/// framed v1 protocol against one epoll event loop, half issuing cached
/// queries and half uncached ones, reporting p50/p99 latency per mode plus
/// dropped-connection counts. Three follow-up phases probe the server's
/// overload behavior: pipelining past the per-session backlog (must shed
/// with `busy`), connecting past the connection cap (must refuse), and
/// querying past the kernel-cache byte budget (resident bytes must stay
/// under budget while entries evict).
///
/// Output is one JSON object per line (machine-readable, as the other
/// bench binaries print paper-style rows):
///
///   {"bench":"server_throughput","scale":18,"sessions":4,"mode":"cached",
///    "queries":24,"seconds":0.0031,"qps":7741.9}
///   {"bench":"server_sustained","scale":12,"sessions":200,...,
///    "p50_ms":0.8,"p99_ms":14.1,"dropped":0}
///
///   ./server_throughput [--scale 18] [--queries 6] [--workers 16]
///                       [--sustained] [--sessions 200] [--requests 8]
///                       [--graphs 8] [--quick]

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gen/rmat.hpp"
#include "obs/metrics.hpp"
#include "server/server.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

using namespace graphct;

/// The analyst query mix cycled by every session.
const std::vector<std::string> kQueries = {
    "print components",
    "print degrees",
    "print kcores",
};

struct RunResult {
  double seconds = 0.0;
  std::int64_t queries = 0;
};

std::string graph_name(int i) {
  std::string s = "g";
  s += std::to_string(i);
  return s;
}

/// Drive `num_sessions` sessions for `rounds` passes over the query mix.
/// Each session uses its own registry graph named g<i>; `cached` controls
/// whether the kernel cache survives between queries.
RunResult run_mode(server::Server& srv, int num_sessions, int rounds,
                   bool cached) {
  std::vector<std::shared_ptr<server::Session>> sessions;
  for (int i = 0; i < num_sessions; ++i) {
    auto s = srv.open_session("bench" + std::to_string(i));
    s->handle_line("use graph " + graph_name(i));
    if (cached) {
      for (const auto& q : kQueries) s->handle_line(q);  // warm the cache
    } else {
      s->interpreter().current().invalidate();
    }
    sessions.push_back(std::move(s));
  }

  Timer timer;
  std::vector<std::thread> drivers;
  for (auto& s : sessions) {
    drivers.emplace_back([&s, rounds, cached] {
      for (int r = 0; r < rounds; ++r) {
        for (const auto& q : kQueries) {
          if (!cached) s->interpreter().current().invalidate();
          s->handle_line(q);
        }
      }
    });
  }
  for (auto& d : drivers) d.join();

  RunResult res;
  res.seconds = timer.seconds();
  res.queries = static_cast<std::int64_t>(num_sessions) * rounds *
                static_cast<std::int64_t>(kQueries.size());
  return res;
}

int run_classic(std::int64_t scale, int rounds, int workers) {
  RmatOptions r;
  r.scale = scale;
  r.edge_factor = 16;
  r.seed = 42;
  const CsrGraph graph = rmat_graph(r);

  server::ServerOptions sopts;
  sopts.workers = workers;
  sopts.interpreter.toolkit.estimate_diameter_on_load = false;
  server::Server srv(sopts);

  for (const int sessions : {1, 4, 16}) {
    // One registry graph per session so per-graph serialization does not
    // couple sessions; dropped after the run to bound peak memory.
    for (int i = 0; i < sessions; ++i) {
      srv.registry().add(graph_name(i), graph);
    }
    for (const bool cached : {false, true}) {
      const RunResult res = run_mode(srv, sessions, rounds, cached);
      std::printf(
          "{\"bench\":\"server_throughput\",\"scale\":%lld,"
          "\"sessions\":%d,\"mode\":\"%s\",\"queries\":%lld,"
          "\"seconds\":%.6f,\"qps\":%.1f}\n",
          static_cast<long long>(scale), sessions,
          cached ? "cached" : "uncached",
          static_cast<long long>(res.queries), res.seconds,
          res.seconds > 0 ? static_cast<double>(res.queries) / res.seconds
                          : 0.0);
      std::fflush(stdout);
    }
    for (int i = 0; i < sessions; ++i) {
      srv.registry().drop(graph_name(i));
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Sustained TCP mode
// ---------------------------------------------------------------------------

/// Distinct `bc` MiB budgets make distinct cache keys, so "uncached"
/// traffic pays a real kernel run per request even on a shared graph.
std::atomic<std::int64_t> g_bc_budget{1001};

std::string uncached_query() {
  return "bc 2 auto " + std::to_string(g_bc_budget.fetch_add(1));
}

/// Blocking line client speaking the framed v1 protocol.
struct Client {
  int fd = -1;
  std::string buf;

  ~Client() { disconnect(); }

  void disconnect() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }

  bool connect_to(int port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      disconnect();
      return false;
    }
    return true;
  }

  bool send_line(const std::string& line) {
    std::string data = line + "\n";
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool read_line(std::string& out) {
    std::size_t nl;
    while ((nl = buf.find('\n')) == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buf.append(chunk, static_cast<std::size_t>(n));
    }
    out = buf.substr(0, nl);
    buf.erase(0, nl + 1);
    if (!out.empty() && out.back() == '\r') out.pop_back();
    return true;
  }

  /// Read one compat-framed reply (lines until "ok"/"error" terminator).
  bool read_reply_compat(std::string& terminator) {
    std::string line;
    while (read_line(line)) {
      if (line.rfind("ok", 0) == 0 || line.rfind("error", 0) == 0) {
        terminator = line;
        return true;
      }
    }
    return false;
  }

  /// Read one framed-v1 reply; `status` gets "ok"/"error"/"busy".
  bool read_reply_v1(std::string& status) {
    std::string header;
    if (!read_line(header)) return false;
    if (header.rfind("gct/1 ", 0) != 0) return false;
    std::istringstream is(header.substr(6));
    is >> status;
    int lines = -1;
    std::string tok;
    while (is >> tok) {
      if (tok.rfind("lines=", 0) == 0) lines = std::atoi(tok.c_str() + 6);
    }
    if (lines < 0) return false;
    std::string payload;
    for (int i = 0; i < lines; ++i) {
      if (!read_line(payload)) return false;
    }
    return true;
  }
};

/// serve_tcp() on a background thread; joined (after request_stop) on
/// destruction.
struct TcpServer {
  server::Server srv;
  std::thread loop;

  explicit TcpServer(server::ServerOptions opts) : srv(std::move(opts)) {
    loop = std::thread([this] { srv.serve_tcp(0); });
    while (srv.port() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  ~TcpServer() {
    srv.request_stop();
    loop.join();
  }
};

double pct_ms(std::vector<double>& seconds, double p) {
  if (seconds.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      static_cast<double>(seconds.size() - 1) * p);
  std::nth_element(seconds.begin(),
                   seconds.begin() + static_cast<std::ptrdiff_t>(idx),
                   seconds.end());
  return seconds[idx] * 1e3;
}

int run_sustained(std::int64_t scale, int workers, int num_sessions,
                  int requests, int num_graphs) {
  RmatOptions r;
  r.scale = scale;
  r.edge_factor = 16;
  r.seed = 42;
  const CsrGraph graph = rmat_graph(r);

  // ---- Phase 1: sustained mixed load over TCP -------------------------
  {
    server::ServerOptions opts;
    opts.workers = workers;
    opts.interpreter.toolkit.estimate_diameter_on_load = false;
    opts.limits.max_connections = num_sessions + 32;
    opts.limits.max_queued_jobs = num_sessions + 64;
    server::Server* psrv = nullptr;
    TcpServer ts(opts);
    psrv = &ts.srv;
    for (int g = 0; g < num_graphs; ++g) {
      psrv->registry().add(graph_name(g), graph);
    }
    // Warm every graph's cache so "cached" sessions measure hits.
    {
      Client warm;
      if (!warm.connect_to(psrv->port())) return 1;
      std::string line;
      warm.read_line(line);  // banner
      for (int g = 0; g < num_graphs; ++g) {
        warm.send_line("use graph " + graph_name(g));
        warm.read_reply_compat(line);
        for (const auto& q : kQueries) {
          warm.send_line(q);
          warm.read_reply_compat(line);
        }
      }
    }

    std::mutex agg_mu;
    std::vector<double> lat_cached, lat_uncached;
    std::atomic<int> dropped{0}, busy{0};

    Timer wall;
    std::vector<std::thread> drivers;
    drivers.reserve(static_cast<std::size_t>(num_sessions));
    for (int s = 0; s < num_sessions; ++s) {
      drivers.emplace_back([&, s] {
        const bool cached = (s % 2) == 0;
        Client c;
        std::vector<double> local;
        local.reserve(static_cast<std::size_t>(requests));
        if (!c.connect_to(psrv->port())) {
          dropped.fetch_add(1);
          return;
        }
        std::string line, status;
        bool alive = c.read_line(line);  // banner
        alive = alive && c.send_line("proto v1") &&
                c.read_reply_compat(line);  // ack arrives in old framing
        alive = alive &&
                c.send_line("use graph " + graph_name(s % num_graphs)) &&
                c.read_reply_v1(status);
        if (!alive) {
          dropped.fetch_add(1);
          return;
        }
        for (int q = 0; q < requests; ++q) {
          const std::string query =
              cached ? kQueries[static_cast<std::size_t>(q) % kQueries.size()]
                     : uncached_query();
          Timer t;
          if (!c.send_line("@" + std::to_string(q) + " " + query) ||
              !c.read_reply_v1(status)) {
            dropped.fetch_add(1);
            return;
          }
          local.push_back(t.seconds());
          if (status == "busy") busy.fetch_add(1);
        }
        c.send_line("quit");
        std::lock_guard<std::mutex> lock(agg_mu);
        auto& sink = cached ? lat_cached : lat_uncached;
        sink.insert(sink.end(), local.begin(), local.end());
      });
    }
    for (auto& d : drivers) d.join();
    const double seconds = wall.seconds();

    for (const bool cached : {true, false}) {
      auto& lat = cached ? lat_cached : lat_uncached;
      std::printf(
          "{\"bench\":\"server_sustained\",\"scale\":%lld,\"sessions\":%d,"
          "\"graphs\":%d,\"mode\":\"%s\",\"requests\":%zu,"
          "\"seconds\":%.6f,\"qps\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,"
          "\"dropped\":%d,\"busy\":%d}\n",
          static_cast<long long>(scale), num_sessions, num_graphs,
          cached ? "cached" : "uncached", lat.size(), seconds,
          seconds > 0 ? static_cast<double>(lat.size()) / seconds : 0.0,
          pct_ms(lat, 0.50), pct_ms(lat, 0.99), dropped.load(), busy.load());
      std::fflush(stdout);
    }

    // ---- Phase 2: pipeline past the per-session backlog ---------------
    {
      const int cap = psrv->limits().max_queued_per_session;
      const int submitted = cap * 4;
      Client c;
      int n_busy = 0, n_ok = 0;
      if (c.connect_to(psrv->port())) {
        std::string line, status;
        c.read_line(line);  // banner
        c.send_line("proto v1");
        c.read_reply_compat(line);
        c.send_line("use graph " + graph_name(0));
        c.read_reply_v1(status);
        for (int i = 0; i < submitted; ++i) {
          c.send_line(uncached_query());  // all pipelined, nothing read yet
        }
        for (int i = 0; i < submitted; ++i) {
          if (!c.read_reply_v1(status)) break;
          if (status == "busy") {
            ++n_busy;
          } else if (status == "ok") {
            ++n_ok;
          }
        }
      }
      std::printf(
          "{\"bench\":\"server_sustained_admission\",\"backlog_cap\":%d,"
          "\"submitted\":%d,\"ok\":%d,\"busy\":%d}\n",
          cap, submitted, n_ok, n_busy);
      std::fflush(stdout);
    }
  }

  // ---- Phase 3: connect past the connection cap -----------------------
  {
    server::ServerOptions opts;
    opts.workers = 2;
    opts.limits.max_connections = 32;
    TcpServer ts(opts);
    const int attempted = opts.limits.max_connections + 8;
    std::vector<std::unique_ptr<Client>> held;
    int accepted = 0, refused = 0;
    for (int i = 0; i < attempted; ++i) {
      auto c = std::make_unique<Client>();
      if (!c->connect_to(ts.srv.port())) continue;
      std::string first;
      if (!c->read_line(first)) continue;
      if (first.rfind("graphctd ready", 0) == 0) {
        ++accepted;
        held.push_back(std::move(c));  // keep it open to hold the slot
      } else if (first.find("connection capacity") != std::string::npos) {
        ++refused;
      }
    }
    std::printf(
        "{\"bench\":\"server_sustained_capacity\",\"cap\":%d,"
        "\"attempted\":%d,\"accepted\":%d,\"refused\":%d}\n",
        opts.limits.max_connections, attempted, accepted, refused);
    std::fflush(stdout);
  }

  // ---- Phase 4: query past the kernel-cache byte budget ---------------
  {
    const std::uint64_t budget = 256 << 10;  // 256 KiB: forces eviction
    server::ServerOptions opts;
    opts.workers = 2;
    opts.interpreter.toolkit.estimate_diameter_on_load = false;
    opts.limits.cache_budget_bytes = budget;
    server::Server srv(opts);
    srv.registry().add("g", graph);

    // The resident-bytes gauge is process-global; all earlier servers are
    // destroyed by now, so growth beyond the baseline is this cache's.
    auto& resident =
        obs::registry().gauge("gct_result_cache_resident_bytes");
    auto& evictions =
        obs::registry().counter("gct_result_cache_evictions_total");
    const double baseline = resident.value();
    const std::int64_t ev0 = evictions.value();

    auto session = srv.open_session("cachebench");
    session->handle_line("use graph g");
    const int queries = 64;
    double resident_max = 0.0;
    for (int i = 0; i < queries; ++i) {
      session->handle_line(uncached_query());
      resident_max = std::max(resident_max, resident.value() - baseline);
    }
    std::printf(
        "{\"bench\":\"server_sustained_cache\",\"budget_bytes\":%llu,"
        "\"queries\":%d,\"resident_max_bytes\":%.0f,\"evictions\":%lld}\n",
        static_cast<unsigned long long>(budget), queries, resident_max,
        static_cast<long long>(evictions.value() - ev0));
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Cli cli(
        argc, argv,
        {{"scale", "R-MAT scale (default 18; 12 sustained)"},
         {"queries", "rounds of the 3-query mix per session (default 6)"},
         {"workers", "job-queue worker threads (default 16)"},
         {"sustained", "drive the TCP transport with --sessions clients!"},
         {"sessions", "sustained mode: concurrent connections (default 200)"},
         {"requests", "sustained mode: requests per connection (default 8)"},
         {"graphs", "sustained mode: distinct registry graphs (default 8)"},
         {"quick", "small scale, few rounds, for CI!"}});
    const auto workers =
        static_cast<int>(cli.get("workers", std::int64_t{16}));

    if (cli.has("sustained")) {
      const auto scale = cli.has("quick")
                             ? std::int64_t{11}
                             : cli.get("scale", std::int64_t{12});
      const auto sessions =
          static_cast<int>(cli.get("sessions", std::int64_t{200}));
      const auto requests = static_cast<int>(
          cli.has("quick") ? 4 : cli.get("requests", std::int64_t{8}));
      const auto graphs =
          static_cast<int>(cli.get("graphs", std::int64_t{8}));
      return run_sustained(scale, workers, sessions, requests, graphs);
    }

    const auto scale = cli.has("quick") ? std::int64_t{12}
                                        : cli.get("scale", std::int64_t{18});
    const auto rounds = static_cast<int>(
        cli.has("quick") ? 2 : cli.get("queries", std::int64_t{6}));
    return run_classic(scale, rounds, workers);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "server_throughput: %s\n", e.what());
    return 1;
  }
}
