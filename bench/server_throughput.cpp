/// \file server_throughput.cpp
/// graphctd query throughput: cached vs uncached, across session counts.
///
/// Measures the server's end-to-end query path (protocol line -> job queue
/// -> kernel -> response) on an R-MAT graph at 1, 4, and 16 concurrent
/// in-process sessions. Each session drives its own registry graph so the
/// per-graph serialization never blocks another session; "cached" sessions
/// are warmed first and every timed query is a cache hit, "uncached"
/// sessions invalidate their kernel cache before every query, so each one
/// pays full recomputation. The gap between the two modes is the value of
/// the shared kernel-result cache.
///
/// Output is one JSON object per line (machine-readable, as the other
/// bench binaries print paper-style rows):
///
///   {"bench":"server_throughput","scale":18,"sessions":4,"mode":"cached",
///    "queries":24,"seconds":0.0031,"qps":7741.9}
///
///   ./server_throughput [--scale 18] [--queries 6] [--workers 16] [--quick]

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gen/rmat.hpp"
#include "server/server.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

using namespace graphct;

/// The analyst query mix cycled by every session.
const std::vector<std::string> kQueries = {
    "print components",
    "print degrees",
    "print kcores",
};

struct RunResult {
  double seconds = 0.0;
  std::int64_t queries = 0;
};

std::string graph_name(int i) {
  std::string s = "g";
  s += std::to_string(i);
  return s;
}

/// Drive `num_sessions` sessions for `rounds` passes over the query mix.
/// Each session uses its own registry graph named g<i>; `cached` controls
/// whether the kernel cache survives between queries.
RunResult run_mode(server::Server& srv, int num_sessions, int rounds,
                   bool cached) {
  std::vector<std::shared_ptr<server::Session>> sessions;
  for (int i = 0; i < num_sessions; ++i) {
    auto s = srv.open_session("bench" + std::to_string(i));
    s->handle_line("use graph " + graph_name(i));
    if (cached) {
      for (const auto& q : kQueries) s->handle_line(q);  // warm the cache
    } else {
      s->interpreter().current().invalidate();
    }
    sessions.push_back(std::move(s));
  }

  Timer timer;
  std::vector<std::thread> drivers;
  for (auto& s : sessions) {
    drivers.emplace_back([&s, rounds, cached] {
      for (int r = 0; r < rounds; ++r) {
        for (const auto& q : kQueries) {
          if (!cached) s->interpreter().current().invalidate();
          s->handle_line(q);
        }
      }
    });
  }
  for (auto& d : drivers) d.join();

  RunResult res;
  res.seconds = timer.seconds();
  res.queries = static_cast<std::int64_t>(num_sessions) * rounds *
                static_cast<std::int64_t>(kQueries.size());
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Cli cli(argc, argv,
            {{"scale", "R-MAT scale (default 18)"},
             {"queries", "rounds of the 3-query mix per session (default 6)"},
             {"workers", "job-queue worker threads (default 16)"},
             {"quick", "scale 12, 2 rounds, for CI!"}});
    const auto scale = cli.has("quick") ? std::int64_t{12}
                                        : cli.get("scale", std::int64_t{18});
    const auto rounds = static_cast<int>(
        cli.has("quick") ? 2 : cli.get("queries", std::int64_t{6}));
    const auto workers =
        static_cast<int>(cli.get("workers", std::int64_t{16}));

    RmatOptions r;
    r.scale = scale;
    r.edge_factor = 16;
    r.seed = 42;
    const CsrGraph graph = rmat_graph(r);

    server::ServerOptions sopts;
    sopts.workers = workers;
    sopts.interpreter.toolkit.estimate_diameter_on_load = false;
    server::Server srv(sopts);

    for (const int sessions : {1, 4, 16}) {
      // One registry graph per session so per-graph serialization does not
      // couple sessions; dropped after the run to bound peak memory.
      for (int i = 0; i < sessions; ++i) {
        srv.registry().add(graph_name(i), graph);
      }
      for (const bool cached : {false, true}) {
        const RunResult res = run_mode(srv, sessions, rounds, cached);
        std::printf(
            "{\"bench\":\"server_throughput\",\"scale\":%lld,"
            "\"sessions\":%d,\"mode\":\"%s\",\"queries\":%lld,"
            "\"seconds\":%.6f,\"qps\":%.1f}\n",
            static_cast<long long>(scale), sessions,
            cached ? "cached" : "uncached",
            static_cast<long long>(res.queries), res.seconds,
            res.seconds > 0 ? static_cast<double>(res.queries) / res.seconds
                            : 0.0);
        std::fflush(stdout);
      }
      for (int i = 0; i < sessions; ++i) {
        srv.registry().drop(graph_name(i));
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "server_throughput: %s\n", e.what());
    return 1;
  }
}
