/// \file kernel_profile.cpp
/// Per-kernel profiling baselines: runs each analysis kernel once on an
/// internally generated R-MAT graph with phase profiling armed and emits
/// one JSON object per kernel per line (the KernelProfile::to_json()
/// format plus bench metadata). CI's bench-smoke step validates each line
/// against tools/validate_kernel_profile.py and the checked-in
/// BENCH_kernels.json holds a reference run.
///
///   ./kernel_profile [--scale 16] [--sources 256] [--threads N] [--quick]
///
/// Covers the single-process kernels only; the distributed betweenness
/// path has its own phase spans (dist.bc.forward / dist.bc.backward /
/// dist.bc.exchange / dist.bc.gather — see the phase table in
/// docs/PERFORMANCE.md) and is profiled by bench/dist_profile.
///
/// stdout carries only JSON lines; progress goes to stderr.

#include <iostream>
#include <string>
#include <thread>

#include "algs/bfs.hpp"
#include "algs/clustering.hpp"
#include "algs/connected_components.hpp"
#include "algs/kcore.hpp"
#include "core/betweenness.hpp"
#include "gen/rmat.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace graphct;

/// Run one kernel under profiling and print its profile as a JSON line,
/// with the bench metadata spliced in after the opening brace.
template <typename Fn>
void profile_one(const std::string& meta, Fn&& run) {
  obs::clear_profiles();
  run();
  const auto profiles = obs::drain_profiles();
  GCT_CHECK(!profiles.empty(), "kernel_profile: kernel produced no profile");
  // A runner may trigger several root kernels (bc's sampling runs
  // components); the last completed profile is the kernel we asked for.
  std::string line = profiles.back().to_json();
  line.insert(1, meta);
  std::cout << line << "\n" << std::flush;
  std::cerr << "  " << profiles.back().kernel << ": "
            << format_duration(profiles.back().seconds) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Cli cli(argc, argv,
            {{"scale", "R-MAT scale"},
             {"sources", "approximate-BC source sample"},
             {"threads", "OpenMP thread count (0 = runtime default)"},
             {"quick", "small graph for CI!"}});
    const auto scale = cli.has("quick") ? std::int64_t{12}
                                        : cli.get("scale", std::int64_t{16});
    const auto sources = cli.has("quick")
                             ? std::int64_t{32}
                             : cli.get("sources", std::int64_t{256});
    const auto threads = cli.get("threads", std::int64_t{0});
    if (threads > 0) set_num_threads(static_cast<int>(threads));

    RmatOptions r;
    r.scale = scale;
    r.edge_factor = 16;
    const auto g = rmat_graph(r);
    std::cerr << "kernel_profile: scale-" << scale << " R-MAT, "
              << with_commas(g.num_vertices()) << " vertices, "
              << with_commas(g.num_edges()) << " edges, "
              << obs::effective_threads() << " threads\n";

    // hw_concurrency records the machine the row came from, so downstream
    // checks can flag rows whose thread count oversubscribes the host
    // (thread-scaling numbers from such rows measure contention, not speedup).
    const std::string meta =
        "\"bench\":\"kernel_profile\",\"scale\":" + std::to_string(scale) +
        ",\"edge_factor\":" + std::to_string(r.edge_factor) +
        ",\"hw_concurrency\":" +
        std::to_string(std::thread::hardware_concurrency()) + ",";

    obs::set_profiling_enabled(true);

    Rng rng(42);
    const vid source = static_cast<vid>(
        rng.next_below(static_cast<std::uint64_t>(g.num_vertices())));

    profile_one(meta, [&] { (void)bfs(g, source); });
    profile_one(meta, [&] { (void)connected_components(g); });
    profile_one(meta, [&] { (void)core_numbers(g); });
    profile_one(meta, [&] { (void)clustering_coefficients(g); });
    profile_one(meta, [&] {
      BetweennessOptions o;
      o.num_sources = sources;
      o.seed = 5;
      (void)betweenness_centrality(g, o);
    });

    obs::set_profiling_enabled(false);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
