#pragma once

/// \file bench_common.hpp
/// Shared helpers for the table/figure benchmark binaries: building a
/// mention graph from a dataset preset and formatting paper-vs-measured
/// cells.

#include <string>

#include "twitter/corpus_gen.hpp"
#include "twitter/datasets.hpp"
#include "twitter/mention_graph.hpp"
#include "util/table.hpp"

namespace graphct::bench {

/// Generate a preset's corpus and build its mention graph.
inline twitter::MentionGraph build_preset_graph(
    const twitter::DatasetPreset& preset) {
  const auto tweets = twitter::generate_corpus(preset.corpus);
  twitter::MentionGraphBuilder builder;
  for (const auto& t : tweets) builder.add(t);
  return std::move(builder).build();
}

/// "measured (paper N)" cell, or just the measurement when the paper does
/// not report the quantity.
inline std::string vs_paper(std::int64_t measured, std::int64_t paper) {
  if (paper == 0) return with_commas(measured);
  return with_commas(measured) + " (" + with_commas(paper) + ")";
}

}  // namespace graphct::bench
