/// \file fig3_subcommunity_filter.cpp
/// Reproduces Fig. 3: sub-community filtering on the Twitter data sets.
/// The paper shows, per dataset, the original largest component shrinking
/// to a small mutual-mention ("conversation") subgraph — H1N1 ~17k -> 1,184
/// vertices, #atlflood ~1,164 -> 37 vertices — "reduction factors ... as
/// high as two orders of magnitude".
///
///   ./fig3_subcommunity_filter [--scale 1.0] [--quick]

#include <iostream>

#include "bench_common.hpp"
#include "obs/trace.hpp"
#include "twitter/conversation.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace graphct;
  namespace tw = graphct::twitter;
  try {
    Cli cli(argc, argv,
            {{"scale", "corpus scale factor"}, {"quick", "small corpora!"}});
    const double scale = cli.has("quick") ? 0.1 : cli.get("scale", 1.0);

    std::cout << "== Fig. 3: sub-community (mutual-mention) filtering ==\n"
              << "corpus scale " << scale
              << (scale < 1.0 ? "  [paper numbers are full-scale]" : "")
              << "\n\n";

    TextTable t({"data set", "original", "largest component",
                 "mutual subgraph", "largest conversation", "reduction"});
    for (const auto& name : {"h1n1", "atlflood", "sep1"}) {
      const auto preset = tw::dataset_preset(name, scale);
      tw::SubcommunityResult r;
      const double filter_s = obs::timed("bench.subcommunity_filter", [&] {
        const auto mg = bench::build_preset_graph(preset);
        r = tw::subcommunity_filter(mg);
      });

      t.add_row({preset.name, with_commas(r.original_vertices),
                 bench::vs_paper(r.lwcc_vertices,
                                 preset.paper.fig3_largest_component),
                 bench::vs_paper(r.mutual_vertices,
                                 preset.paper.fig3_subcommunity),
                 with_commas(r.mutual_lwcc_vertices),
                 strf("%.0fx", r.reduction_factor)});
      std::cerr << preset.name << ": filtered in "
                << format_duration(filter_s) << "\n";
    }
    std::cout << t.render()
              << "\n(vertex counts; cells show measured (paper) where the "
                 "paper reports a value)\n"
              << "\nShape check: the mutual filter removes the one-way "
                 "broadcast mass, shrinking each\ndataset by 1-2 orders of "
                 "magnitude and leaving small conversation clusters.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
