/// \file temporal_evolution.cpp
/// Extension study for the paper's §I-B note that "characteristics change
/// over time": slice the H1N1 stream into time windows, track the mention
/// graph's structural characteristics per window, and measure how
/// persistently the broadcast hubs dominate (hub persistence).
///
///   ./temporal_evolution [--scale 0.3] [--windows 10] [--quick]

#include <iostream>

#include "bench_common.hpp"
#include "twitter/temporal.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace graphct;
  namespace tw = graphct::twitter;
  try {
    Cli cli(argc, argv,
            {{"scale", "corpus scale factor"},
             {"windows", "number of windows across the stream"},
             {"quick", "small corpus!"}});
    const double scale = cli.has("quick") ? 0.05 : cli.get("scale", 0.3);
    const auto nwin = cli.get("windows", std::int64_t{10});

    const auto preset = tw::dataset_preset("h1n1", scale);
    const auto tweets = tw::generate_corpus(preset.corpus);
    const auto span = tweets.back().timestamp - tweets.front().timestamp;
    tw::WindowOptions w;
    w.window_seconds = span / nwin + 1;

    std::cout << "== Temporal evolution of the h1n1 mention graph (x" << scale
              << ") ==\n"
              << with_commas(static_cast<long long>(tweets.size()))
              << " tweets over " << span << " s, " << nwin << " windows\n\n";

    const auto stats = tw::sliding_window_stats(tweets, w);
    TextTable t({"window", "tweets", "users", "interactions", "responses",
                 "mutual pairs", "lwcc", "top user (mentions)"});
    for (std::size_t i = 0; i < stats.size(); ++i) {
      const auto& s = stats[i];
      t.add_row({std::to_string(i), with_commas(s.tweets),
                 with_commas(s.users), with_commas(s.unique_interactions),
                 with_commas(s.tweets_with_responses),
                 with_commas(s.mutual_pairs), with_commas(s.lwcc_users),
                 "@" + s.top_user + " (" +
                     std::to_string(s.top_user_mentions) + ")"});
    }
    std::cout << t.render() << "\n";

    const auto hubs = tw::hub_persistence(tweets, w, 10);
    TextTable h({"hub (global top-10 by citations)", "window presence"});
    for (const auto& hub : hubs) {
      h.add_row({"@" + hub.name, strf("%.0f%%", hub.presence * 100)});
    }
    std::cout << h.render()
              << "\nShape check: per-window characteristics stay "
                 "proportional to window volume and\nthe same media hubs "
                 "dominate nearly every window — the temporal stability "
                 "behind\nthe paper's single-snapshot analysis.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
