/// \file storage_profile.cpp
/// Packed-store decode overhead and parity bench: generates an R-MAT graph,
/// packs it with the varint block codec, reopens it as an mmap-backed
/// GraphStore under a block-cache budget well below the raw adjacency size,
/// and runs BFS, connected components, and betweenness over both backends.
///
/// Each kernel's results must be exactly identical across backends — any
/// mismatch exits non-zero, making this the CI gate for the storage
/// subsystem. stdout carries one JSON object per line ("bench":
/// "storage_profile"): a pack row with compression stats and one row per
/// kernel with in-memory vs store seconds, decode overhead, and the decode /
/// block-cache counter deltas. Progress goes to stderr.
///
///   ./storage_profile [--scale 18] [--sources 32] [--threads N] [--quick]

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>

#include "algs/bfs.hpp"
#include "algs/connected_components.hpp"
#include "core/betweenness.hpp"
#include "gen/rmat.hpp"
#include "storage/graph_store.hpp"
#include "storage/graph_view.hpp"
#include "storage/packed_writer.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace graphct;

struct KernelRow {
  std::string kernel;
  double seconds_mem = 0.0;
  double seconds_store = 0.0;
  bool parity = false;
  int threads = 1;
  storage::BlockCache::Stats cache;  ///< counter delta across the store run
};

std::string json_bool(bool b) { return b ? "true" : "false"; }

/// Time one kernel over both backends and verify exact result equality.
template <typename Fn>
KernelRow run_kernel(const std::string& name, const CsrGraph& mem,
                     const storage::GraphStore& store, Fn&& kernel) {
  KernelRow row;
  row.kernel = name;
  row.threads = effective_num_threads();

  Timer t;
  const auto expected = kernel(GraphView(mem));
  row.seconds_mem = t.seconds();

  const auto before = store.cache_stats();
  t.restart();
  const auto got = kernel(GraphView(store));
  row.seconds_store = t.seconds();
  const auto after = store.cache_stats();
  row.cache.hits = after.hits - before.hits;
  row.cache.misses = after.misses - before.misses;
  row.cache.evictions = after.evictions - before.evictions;
  row.cache.decoded_bytes = after.decoded_bytes - before.decoded_bytes;
  row.cache.resident_bytes = after.resident_bytes;

  row.parity = (expected == got);
  std::cerr << "  " << name << ": mem " << format_duration(row.seconds_mem)
            << ", store " << format_duration(row.seconds_store) << " ("
            << (row.parity ? "parity OK" : "PARITY FAILED") << ")\n";
  return row;
}

void print_kernel_row(const KernelRow& r, const std::string& meta) {
  const double overhead =
      r.seconds_mem > 0.0 ? r.seconds_store / r.seconds_mem : 0.0;
  std::printf(
      "{%s\"row\":\"kernel\",\"kernel\":\"%s\",\"threads\":%d,"
      "\"seconds_mem\":%.6f,\"seconds_store\":%.6f,\"overhead\":%.3f,"
      "\"parity\":%s,\"blocks_decoded\":%lld,\"decoded_bytes\":%llu,"
      "\"cache_hits\":%lld,\"cache_misses\":%lld,\"cache_evictions\":%lld}\n",
      meta.c_str(), r.kernel.c_str(), r.threads, r.seconds_mem,
      r.seconds_store, overhead, json_bool(r.parity).c_str(),
      static_cast<long long>(r.cache.misses),
      static_cast<unsigned long long>(r.cache.decoded_bytes),
      static_cast<long long>(r.cache.hits),
      static_cast<long long>(r.cache.misses),
      static_cast<long long>(r.cache.evictions));
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Cli cli(argc, argv,
            {{"scale", "R-MAT scale"},
             {"sources", "BC source sample"},
             {"threads", "OpenMP thread count (0 = runtime default)"},
             {"quick", "small graph for CI!"}});
    const auto scale = cli.has("quick") ? std::int64_t{12}
                                        : cli.get("scale", std::int64_t{18});
    const auto sources = cli.has("quick")
                             ? std::int64_t{16}
                             : cli.get("sources", std::int64_t{32});
    const auto threads = cli.get("threads", std::int64_t{0});
    set_num_threads(static_cast<int>(threads));

    RmatOptions r;
    r.scale = scale;
    r.edge_factor = 16;
    CsrGraph g = rmat_graph(r);
    g.sort_adjacency();  // varint delta-gap coding needs ascending lists

    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("gct_storage_profile_" + std::to_string(scale) + ".gctp"))
            .string();

    Timer t;
    const auto pack = storage::pack_graph(g, path, {});
    const double pack_seconds = t.seconds();

    // The point of the store is running kernels without the decoded
    // adjacency resident: budget the block cache at 1/8 of the raw
    // adjacency bytes (floor 64 KiB) so the run sustains eviction churn.
    storage::StoreOptions sopts;
    sopts.cache_budget_bytes =
        std::max<std::uint64_t>(pack.raw_adjacency_bytes / 8, 64ull << 10);
    storage::GraphStore store(path, sopts);

    std::cerr << "storage_profile: scale-" << scale << " R-MAT, "
              << with_commas(g.num_vertices()) << " vertices, "
              << with_commas(g.num_edges()) << " edges; " << pack.num_blocks
              << " blocks, ratio " << pack.compression_ratio << "x, cache "
              << (sopts.cache_budget_bytes >> 10) << " KiB/thread\n";

    const std::string meta =
        "\"bench\":\"storage_profile\",\"scale\":" + std::to_string(scale) +
        ",\"edge_factor\":" + std::to_string(r.edge_factor) +
        ",\"hw_concurrency\":" +
        std::to_string(std::thread::hardware_concurrency()) + ",";
    std::printf(
        "{%s\"row\":\"pack\",\"codec\":\"varint\",\"blocks\":%lld,"
        "\"payload_bytes\":%llu,\"raw_adjacency_bytes\":%llu,"
        "\"file_bytes\":%llu,\"compression_ratio\":%.4f,"
        "\"cache_budget_bytes\":%llu,\"pack_seconds\":%.6f}\n",
        meta.c_str(), static_cast<long long>(pack.num_blocks),
        static_cast<unsigned long long>(pack.payload_bytes),
        static_cast<unsigned long long>(pack.raw_adjacency_bytes),
        static_cast<unsigned long long>(pack.file_bytes),
        pack.compression_ratio,
        static_cast<unsigned long long>(sopts.cache_budget_bytes),
        pack_seconds);
    std::fflush(stdout);

    Rng rng(42);
    const vid source = static_cast<vid>(
        rng.next_below(static_cast<std::uint64_t>(g.num_vertices())));

    bool all_parity = true;
    {
      const auto row = run_kernel(
          "bfs", g, store,
          [&](const GraphView& view) { return bfs(view, source).distance; });
      print_kernel_row(row, meta);
      all_parity = all_parity && row.parity;
    }
    {
      const auto row = run_kernel("components", g, store,
                                  [&](const GraphView& view) {
                                    return connected_components(view);
                                  });
      print_kernel_row(row, meta);
      all_parity = all_parity && row.parity;
    }
    {
      // Byte-identical BC scores need one thread: fine-mode accumulation
      // uses atomic float adds whose order is scheduling-dependent.
      set_num_threads(1);
      const auto row = run_kernel("bc", g, store, [&](const GraphView& view) {
        BetweennessOptions o;
        o.num_sources = sources;
        o.seed = 5;
        return betweenness_centrality(view, o).score;
      });
      set_num_threads(static_cast<int>(threads));
      print_kernel_row(row, meta);
      all_parity = all_parity && row.parity;
    }

    std::remove(path.c_str());
    if (!all_parity) {
      std::cerr << "storage_profile: PARITY FAILURE — store-backed kernel "
                   "results differ from the in-memory CSR results\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
