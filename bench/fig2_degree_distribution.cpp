/// \file fig2_degree_distribution.cpp
/// Reproduces Fig. 2: the degree distribution of the Twitter user-user
/// graph on log-log axes — a heavy tail with "relatively few high-degree
/// vertices" (the scale-free / power-law observation of §III-C).
///
/// Prints the log-binned distribution for each dataset plus the MLE
/// power-law exponent; the observable is the straight-line decay over
/// several decades and max degree orders of magnitude above the mean.
///
///   ./fig2_degree_distribution [--scale 1.0] [--dataset all|h1n1|...]

#include <iostream>

#include "algs/assortativity.hpp"
#include "algs/degree.hpp"
#include "bench_common.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace graphct;
  namespace tw = graphct::twitter;
  try {
    Cli cli(argc, argv,
            {{"scale", "corpus scale factor"},
             {"dataset", "h1n1, atlflood, sep1, or all"},
             {"quick", "small corpora!"}});
    const double scale = cli.has("quick") ? 0.05 : cli.get("scale", 1.0);
    const auto which = cli.get("dataset", std::string("all"));

    std::vector<std::string> names;
    if (which == "all") {
      names = {"h1n1", "atlflood", "sep1"};
    } else {
      names = {which};
    }

    std::cout << "== Fig. 2: degree distribution of the Twitter user-user "
                 "graph ==\ncorpus scale " << scale << "\n";
    for (const auto& name : names) {
      const auto preset = tw::dataset_preset(name, scale);
      const auto mg = bench::build_preset_graph(preset);
      const auto und = mg.undirected();

      const auto summary = degree_summary(und);
      const double alpha = degree_power_law_alpha(und, 2);
      const double r = degree_assortativity(und);

      std::cout << "\n-- " << name << ": " << with_commas(und.num_vertices())
                << " vertices, " << with_commas(und.num_edges())
                << " edges --\n";
      std::cout << strf("mean degree %.2f, max %lld (%.0fx mean), "
                        "power-law alpha (MLE, x>=2): %.2f,\n"
                        "assortativity %.3f (broadcast graphs are strongly "
                        "disassortative)\n\n",
                        summary.mean, static_cast<long long>(summary.max),
                        summary.max / summary.mean, alpha, r);

      // The log-log series: (degree, count) for plotting...
      std::cout << "degree,count series (log-binned bar chart):\n"
                << degree_histogram(und).ascii_chart(48);

      // ...and the exact head/tail of the frequency table.
      const auto freq = degree_frequency(und);
      TextTable t({"degree", "#vertices"});
      const std::size_t head = std::min<std::size_t>(5, freq.size());
      for (std::size_t i = 0; i < head; ++i) {
        t.add_row({std::to_string(freq[i].first), with_commas(freq[i].second)});
      }
      if (freq.size() > head + 3) t.add_row({"...", "..."});
      for (std::size_t i = freq.size() - std::min<std::size_t>(3, freq.size());
           i < freq.size(); ++i) {
        t.add_row({std::to_string(freq[i].first), with_commas(freq[i].second)});
      }
      std::cout << "\n" << t.render();
    }
    std::cout << "\nShape check: counts fall roughly linearly on log-log "
                 "axes (power law), with a\nhandful of broadcast-hub "
                 "vertices orders of magnitude above the mean degree.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
