/// \file table4_top_users.cpp
/// Reproduces Table IV: the top 15 users by betweenness centrality in the
/// H1N1 and #atlflood graphs. In the paper those lists are dominated by
/// media and government hub accounts; the synthetic presets seed the same
/// hub names, so the reproduction's observable is that named broadcast hubs
/// fill the top of the ranking (measured rank vs the paper's list).
///
///   ./table4_top_users [--scale 1.0] [--sources 2048 | --exact] [--quick]

#include <iostream>
#include <set>

#include "bench_common.hpp"
#include "obs/trace.hpp"
#include "twitter/conversation.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace graphct;
  namespace tw = graphct::twitter;
  try {
    Cli cli(argc, argv,
            {{"scale", "corpus scale factor"},
             {"sources", "BC source sample size"},
             {"exact", "exact BC (all sources)!"},
             {"quick", "small corpora!"}});
    const double scale = cli.has("quick") ? 0.1 : cli.get("scale", 1.0);

    // The paper's Table IV, for side-by-side display.
    const std::vector<std::string> paper_h1n1 = {
        "CDCFlu",      "addthis",     "Official_PAX", "FluGov",
        "nytimes",     "tweetmeme",   "mercola",      "CNN",
        "backstreetboys", "EllieSmith_x", "TIME",     "CDCemergency",
        "CDC_eHealth", "perezhilton", "billmaher"};
    const std::vector<std::string> paper_atl = {
        "ajc",      "driveafastercar", "ATLCheap",      "TWCi",
        "HelloNorthGA", "11AliveNews", "WSB_TV",        "shaunking",
        "Carl",     "SpaceyG",         "ATLINtownPaper", "TJsDJs",
        "ATLien",   "MarshallRamsey",  "Kanye"};

    std::cout << "== Table IV: top 15 users by betweenness centrality ==\n"
              << "corpus scale " << scale << "\n\n";

    for (const auto& [name, paper_list] :
         {std::pair{std::string("h1n1"), &paper_h1n1},
          std::pair{std::string("atlflood"), &paper_atl}}) {
      const auto preset = tw::dataset_preset(name, scale);
      const auto mg = bench::build_preset_graph(preset);

      BetweennessOptions o;
      if (!cli.has("exact")) {
        const auto def = std::min<std::int64_t>(2048, mg.num_users);
        o.num_sources = cli.get("sources", def);
      }
      o.seed = 17;

      std::vector<tw::RankedUser> ranked;
      const double secs = obs::timed("bench.rank_users", [&] {
        ranked = tw::rank_users_by_betweenness(mg, 15, o);
      });

      std::set<std::string> hubs;
      for (const auto& h : preset.corpus.hub_names) hubs.insert(h);

      std::cout << "-- " << preset.name << " ("
                << (o.num_sources == kNoVertex
                        ? std::string("exact")
                        : std::to_string(o.num_sources) + " sources")
                << ", " << format_duration(secs) << ") --\n";
      TextTable table({"rank", "measured top user", "hub?", "paper top user"});
      int named_hubs = 0;
      for (std::size_t i = 0; i < ranked.size(); ++i) {
        const bool is_hub = hubs.count(ranked[i].name) ||
                            ranked[i].name.rfind("hub", 0) == 0;
        if (is_hub) ++named_hubs;
        table.add_row({std::to_string(i + 1), "@" + ranked[i].name,
                       is_hub ? "yes" : "",
                       i < paper_list->size() ? "@" + (*paper_list)[i] : ""});
      }
      std::cout << table.render()
                << strf("broadcast hubs in measured top 15: %d/15 "
                        "(paper: media/government accounts dominate)\n\n",
                        named_hubs);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
