/// \file table2_article_volume.cpp
/// Reproduces Table II: "Novel influenza H1N1/A English, non-spam articles
/// (not including micro-blogs) posted per week in 2009", weeks 17-24.
///
/// The paper reports counts harvested from the Spinn3r archive; we simulate
/// the article stream with an attention-burst model (quiet baseline, onset
/// explosion, geometric decay, a secondary wave) and print simulated vs
/// paper counts side by side. The observable is the *shape*: a >15x onset
/// burst, monotone-ish decay, and a rebound near week 22.

#include <iostream>

#include "twitter/corpus_gen.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace graphct;
  namespace tw = graphct::twitter;
  try {
    Cli cli(argc, argv, {{"seed", "simulation seed"}, {"quick", "no-op (kept for harness symmetry)!"}});

    // Paper Table II, weeks 17-24 of 2009.
    const std::int64_t paper[8] = {5591,  108038, 61341, 26256,
                                   19224, 37938,  14393, 27502};

    tw::ArticleVolumeOptions o;
    o.seed = static_cast<std::uint64_t>(cli.get("seed", std::int64_t{2009}));
    const auto rows = tw::simulate_weekly_articles(o);

    std::cout << "== Table II: weekly H1N1 article volume (simulated stream "
                 "vs paper) ==\n"
              << "seed " << o.seed << "\n\n";
    TextTable t({"week in 2009", "# articles (simulated)", "# articles (paper)"});
    for (std::size_t i = 0; i < rows.size(); ++i) {
      t.add_row({std::to_string(rows[i].first),
                 with_commas(rows[i].second),
                 i < 8 ? with_commas(paper[i]) : "-"});
    }
    std::cout << t.render();

    // Shape checks an analyst would eyeball.
    const double burst = static_cast<double>(rows[1].second) /
                         static_cast<double>(std::max<std::int64_t>(1, rows[0].second));
    std::cout << "\nonset burst factor (week 18 / week 17): "
              << strf("%.1fx (paper: %.1fx)\n", burst, 108038.0 / 5591.0);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
