/// \file io_parse.cpp
/// Quantifies the paper's §IV-C claim: "Loading massive datasets into
/// memory and unloading results often occupies a majority of computation
/// time", and GraphCT therefore parses DIMACS text in parallel in memory.
/// Measures text parse rate, CSR build rate, binary save/restore rate, and
/// compares one load against one analysis kernel.
///
///   ./io_parse [--scale 16] [--quick]

#include <cstdio>
#include <filesystem>
#include <iostream>

#include "algs/connected_components.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "graph/io_binary.hpp"
#include "graph/io_dimacs.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace graphct;
  try {
    Cli cli(argc, argv,
            {{"scale", "R-MAT scale of the test graph"},
             {"quick", "small graph!"}});
    const auto scale = cli.has("quick") ? std::int64_t{12}
                                        : cli.get("scale", std::int64_t{16});

    RmatOptions r;
    r.scale = scale;
    r.edge_factor = 16;
    const auto g = rmat_graph(r);
    std::cout << "== I/O and ingest rates (paper §IV-C) ==\n"
              << "graph: " << with_commas(g.num_vertices()) << " vertices, "
              << with_commas(g.num_edges()) << " edges\n\n";

    TextTable t({"stage", "time", "rate"});

    std::string text;
    const double ser_s =
        obs::timed("bench.dimacs_serialize", [&] { text = to_dimacs(g); });
    t.add_row({"serialize DIMACS text", format_duration(ser_s),
               strf("%.1f MB/s",
                    static_cast<double>(text.size()) / 1e6 / ser_s)});

    EdgeList el;
    const double parse_s =
        obs::timed("bench.dimacs_parse", [&] { el = parse_dimacs(text); });
    t.add_row({"parallel DIMACS parse", format_duration(parse_s),
               strf("%.1f MB/s, %.1f Medges/s",
                    static_cast<double>(text.size()) / 1e6 / parse_s,
                    static_cast<double>(el.size()) / 1e6 / parse_s)});

    CsrGraph built;
    const double build_s =
        obs::timed("bench.csr_build", [&] { built = build_csr(el); });
    t.add_row({"CSR build (count/scan/scatter/sort/dedup)",
               format_duration(build_s),
               strf("%.1f Medges/s",
                    static_cast<double>(el.size()) / 1e6 / build_s)});

    const std::string bin =
        (std::filesystem::temp_directory_path() / "gct_io_parse.bin").string();
    const double save_s =
        obs::timed("bench.binary_save", [&] { write_binary(built, bin); });
    t.add_row({"binary save", format_duration(save_s),
               strf("%.0f MB/s", static_cast<double>(built.memory_bytes()) /
                                     1e6 / save_s)});
    CsrGraph restored;
    const double restore_s =
        obs::timed("bench.binary_restore", [&] { restored = read_binary(bin); });
    t.add_row({"binary restore", format_duration(restore_s),
               strf("%.0f MB/s", static_cast<double>(restored.memory_bytes()) /
                                     1e6 / restore_s)});
    std::remove(bin.c_str());

    std::vector<vid> labels;
    const double cc_s = obs::timed(
        "bench.components", [&] { labels = connected_components(built); });
    t.add_row({"connected components (for comparison)", format_duration(cc_s),
               strf("%.1f Medges/s",
                    static_cast<double>(built.num_adjacency_entries()) / 1e6 /
                        cc_s)});

    std::cout << t.render()
              << strf("\nload (parse+build) / components kernel time: %.1fx "
                      "— loading rivals or exceeds\nanalysis cost, the "
                      "paper's motivation for in-memory parallel parsing and "
                      "the\nscripting interface's amortization of I/O over "
                      "multiple kernels.\n",
                      (parse_s + build_s) / cc_s);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
