/// \file bc_confidence_study.cpp
/// Extension study for the paper's §V open problem: "quantifying
/// significance and confidence of approximations over noisy graph data."
/// Runs repeated independent source samples of approximate BC on the H1N1
/// LWCC and reports, per sampling level, the stability of the analyst's
/// top-1% list and the mean relative confidence interval of the top
/// vertices' scores.
///
///   ./bc_confidence_study [--scale 0.3] [--replicates 10] [--quick]

#include <algorithm>
#include <iostream>

#include "algs/connected_components.hpp"
#include "algs/ranking.hpp"
#include "bench_common.hpp"
#include "core/bc_confidence.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace graphct;
  namespace tw = graphct::twitter;
  try {
    Cli cli(argc, argv,
            {{"scale", "corpus scale factor"},
             {"replicates", "independent source samples per setting"},
             {"quick", "small corpus, fewer replicates!"}});
    const double scale = cli.has("quick") ? 0.08 : cli.get("scale", 0.3);
    const auto reps = cli.has("quick")
                          ? std::int64_t{4}
                          : cli.get("replicates", std::int64_t{10});

    const auto preset = tw::dataset_preset("h1n1", scale);
    const auto mg = bench::build_preset_graph(preset);
    const auto lwcc = largest_component(mg.undirected());
    const auto& g = lwcc.graph;

    std::cout << "== Sampled-BC confidence (paper §V open problem) ==\n"
              << "h1n1 LWCC (x" << scale << "): "
              << with_commas(g.num_vertices()) << " vertices, "
              << with_commas(g.num_edges()) << " edges; " << reps
              << " replicates, 90% intervals\n\n";

    TextTable t({"sampled %", "top-1% list stability",
                 "vertices certain in top-1%", "median rel. CI (top 1%)"});
    for (double frac : {0.05, 0.10, 0.25, 0.50}) {
      BcConfidenceOptions o;
      o.num_sources = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(frac *
                                       static_cast<double>(g.num_vertices())));
      o.replicates = reps;
      o.top_percent = 1.0;
      o.seed = 77;
      const auto r = bc_confidence(g, o);

      std::int64_t certain = 0;
      std::vector<double> rel_ci;
      for (std::size_t v = 0; v < r.mean.size(); ++v) {
        if (r.top_membership[v] >= 0.999) ++certain;
        if (r.top_membership[v] > 0.5 && r.mean[v] > 0) {
          rel_ci.push_back(r.half_width[v] / r.mean[v]);
        }
      }
      double median_ci = 0;
      if (!rel_ci.empty()) {
        std::sort(rel_ci.begin(), rel_ci.end());
        median_ci = rel_ci[rel_ci.size() / 2];
      }
      t.add_row({strf("%.0f%%", frac * 100),
                 strf("%.0f%%", r.top_list_stability * 100),
                 with_commas(certain), strf("%.0f%%", median_ci * 100)});
    }
    std::cout << t.render()
              << "\nReading: 'stability' is the mean pairwise overlap of "
                 "independent top-1% lists;\n'certain' counts vertices every "
                 "replicate agrees on. Both rise with the sampled\nfraction, "
                 "giving the analyst a quantitative confidence knob the "
                 "paper asked for.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
