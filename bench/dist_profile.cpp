/// \file dist_profile.cpp
/// Distributed-substrate overhead and parity bench: forks loopback worker
/// sets (1, 2, and 4 processes), partitions an R-MAT graph across each,
/// and runs BFS, connected components, PageRank, and betweenness through
/// the coordinator against single-process baselines.
///
/// BFS, components, and betweenness must match the single-process kernels
/// exactly (betweenness bitwise, against fine mode over the same
/// sources), and PageRank within 1e-9 per vertex — any violation exits
/// non-zero, making this the CI gate for the dist subsystem
/// (tools/validate_dist_bench.py checks the emitted rows). stdout carries
/// one JSON object per line ("bench": "dist_profile"): a partition row
/// per worker count with cut/balance accounting, one row per (kernel,
/// workers) with wall time, superstep count, and traffic, and a
/// bc_overlap row comparing the overlapped exchange engine against the
/// lockstep baseline at each worker count. Progress goes to stderr.
///
/// Meta records hw_concurrency and worker_threads: on the single-core CI
/// host every worker count oversubscribes the machine, so dist rows
/// measure protocol overhead, not speedup (see docs/DISTRIBUTED.md).
///
///   ./dist_profile [--scale 16] [--threads N] [--quick]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "algs/bfs.hpp"
#include "algs/connected_components.hpp"
#include "algs/pagerank.hpp"
#include "core/betweenness.hpp"
#include "dist/coordinator.hpp"
#include "dist/local_worker_set.hpp"
#include "gen/rmat.hpp"
#include "storage/graph_view.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace graphct;

std::string json_bool(bool b) { return b ? "true" : "false"; }

struct KernelRow {
  std::string kernel;
  int workers = 0;
  double seconds = 0.0;
  double seconds_single = 0.0;
  std::int64_t steps = 0;
  std::int64_t messages_sent = 0;
  std::int64_t bytes_sent = 0;
  bool parity = false;
  double max_abs_diff = 0.0;
};

void print_kernel_row(const KernelRow& r, const std::string& meta) {
  std::printf(
      "{%s\"row\":\"kernel\",\"kernel\":\"%s\",\"workers\":%d,"
      "\"seconds\":%.6f,\"seconds_single\":%.6f,\"steps\":%lld,"
      "\"messages_sent\":%lld,\"bytes_sent\":%lld,\"parity\":%s,"
      "\"max_abs_diff\":%.3g}\n",
      meta.c_str(), r.kernel.c_str(), r.workers, r.seconds, r.seconds_single,
      static_cast<long long>(r.steps),
      static_cast<long long>(r.messages_sent),
      static_cast<long long>(r.bytes_sent), json_bool(r.parity).c_str(),
      r.max_abs_diff);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Cli cli(argc, argv,
            {{"scale", "R-MAT scale"},
             {"threads", "OpenMP thread count (0 = runtime default)"},
             {"quick", "small graph for CI!"}});
    const auto scale = cli.has("quick") ? std::int64_t{12}
                                        : cli.get("scale", std::int64_t{16});
    const std::vector<int> worker_counts = {1, 2, 4};

    // Fork every worker process before anything in this process spins up
    // OpenMP teams (fork() carries only the calling thread into the child;
    // see dist/local_worker_set.hpp) — the children receive their graph
    // blocks over the wire later, so they can be forked this early.
    std::vector<std::unique_ptr<dist::LocalWorkerSet>> sets;
    for (const int n : worker_counts) {
      dist::LocalWorkerSetOptions w;
      w.num_workers = n;
      w.fork_mode = true;
      sets.push_back(std::make_unique<dist::LocalWorkerSet>(w));
    }

    set_num_threads(static_cast<int>(cli.get("threads", std::int64_t{0})));

    RmatOptions r;
    r.scale = scale;
    r.edge_factor = 16;
    const CsrGraph g = rmat_graph(r);
    std::cerr << "dist_profile: scale-" << scale << " R-MAT, "
              << with_commas(g.num_vertices()) << " vertices, "
              << with_commas(g.num_edges()) << " edges\n";

    Rng rng(42);
    const vid source = static_cast<vid>(
        rng.next_below(static_cast<std::uint64_t>(g.num_vertices())));

    // Single-process baselines (times include the parallel kernels the
    // paper's workflow would run; parity is against exactly these).
    Timer t;
    const std::vector<vid> bfs_ref = bfs(GraphView(g), source).distance;
    const double bfs_single = t.seconds();
    t.restart();
    const std::vector<vid> cc_ref = weak_components(GraphView(g));
    const double cc_single = t.seconds();
    t.restart();
    const PageRankResult pr_ref = pagerank(GraphView(g));
    const double pr_single = t.seconds();

    // Betweenness baseline: fine mode over the sampled sources — the dist
    // engine replays exactly this accumulation, so parity is bitwise.
    BetweennessOptions bc_opts;
    bc_opts.num_sources = cli.has("quick") ? 16 : 64;
    bc_opts.parallelism = BcParallelism::kFine;
    const std::vector<vid> bc_sources = choose_sources(GraphView(g), bc_opts);
    t.restart();
    const std::vector<double> bc_ref =
        betweenness_centrality(GraphView(g), bc_opts).score;
    const double bc_single = t.seconds();

    // hw_concurrency + worker_threads record the host and the per-worker
    // OpenMP team, so downstream checks can flag rows whose worker count
    // oversubscribes the machine (those rows measure protocol overhead
    // and contention, not speedup).
    const std::string meta =
        "\"bench\":\"dist_profile\",\"scale\":" + std::to_string(scale) +
        ",\"edge_factor\":" + std::to_string(r.edge_factor) +
        ",\"hw_concurrency\":" +
        std::to_string(std::thread::hardware_concurrency()) +
        ",\"worker_threads\":1,";

    bool all_parity = true;
    for (std::size_t i = 0; i < sets.size(); ++i) {
      const int workers = worker_counts[i];
      dist::Coordinator coord;
      coord.connect(sets[i]->ports());
      coord.load_graph(g);

      const auto& p = coord.partition();
      std::printf(
          "{%s\"row\":\"partition\",\"workers\":%d,"
          "\"edge_cut_fraction\":%.6f,\"imbalance\":%.6f}\n",
          meta.c_str(), workers, p.edge_cut_fraction(), p.imbalance());
      std::fflush(stdout);

      const auto finish_row = [&](KernelRow& row, double elapsed) {
        const auto& ks = coord.last_kernel_stats();
        row.workers = workers;
        row.seconds = elapsed;
        row.steps = ks.steps;
        row.messages_sent = ks.messages_sent;
        row.bytes_sent = ks.bytes_sent;
      };

      {
        KernelRow row;
        row.kernel = "bfs";
        row.seconds_single = bfs_single;
        t.restart();
        const auto got = coord.bfs_distances(source);
        finish_row(row, t.seconds());
        row.parity = (got == bfs_ref);
        print_kernel_row(row, meta);
        all_parity = all_parity && row.parity;
      }
      {
        KernelRow row;
        row.kernel = "components";
        row.seconds_single = cc_single;
        t.restart();
        const auto got = coord.components();
        finish_row(row, t.seconds());
        row.parity = (got == cc_ref);
        print_kernel_row(row, meta);
        all_parity = all_parity && row.parity;
      }
      {
        KernelRow row;
        row.kernel = "pagerank";
        row.seconds_single = pr_single;
        t.restart();
        const auto got = coord.pagerank();
        finish_row(row, t.seconds());
        for (std::size_t v = 0; v < got.score.size(); ++v) {
          row.max_abs_diff = std::max(
              row.max_abs_diff, std::fabs(got.score[v] - pr_ref.score[v]));
        }
        row.parity = got.score.size() == pr_ref.score.size() &&
                     got.iterations == pr_ref.iterations &&
                     row.max_abs_diff <= 1e-9;
        print_kernel_row(row, meta);
        all_parity = all_parity && row.parity;
      }
      double bc_overlap_seconds = 0.0;
      {
        KernelRow row;
        row.kernel = "bc";
        row.seconds_single = bc_single;
        t.restart();
        const auto got = coord.betweenness(bc_sources);
        finish_row(row, t.seconds());
        bc_overlap_seconds = row.seconds;
        row.parity = got.size() == bc_ref.size();
        for (std::size_t v = 0; v < got.size() && v < bc_ref.size(); ++v) {
          if (got[v] != bc_ref[v]) {
            row.parity = false;  // bitwise: any difference is a failure
            row.max_abs_diff =
                std::max(row.max_abs_diff, std::fabs(got[v] - bc_ref[v]));
          }
        }
        print_kernel_row(row, meta);
        all_parity = all_parity && row.parity;
      }
      {
        // Overlap ablation: the same bc job through the lockstep
        // send-all-then-receive-in-order engine. On a single-core host the
        // two are expected to be close (nothing truly runs concurrently);
        // the row exists so multi-core runs can quantify the overlap win.
        coord.set_overlap(false);
        t.restart();
        const auto got = coord.betweenness(bc_sources);
        const double lockstep_seconds = t.seconds();
        coord.set_overlap(true);
        const bool parity = got == bc_ref;
        std::printf(
            "{%s\"row\":\"bc_overlap\",\"workers\":%d,"
            "\"seconds_overlap\":%.6f,\"seconds_lockstep\":%.6f,"
            "\"parity\":%s}\n",
            meta.c_str(), workers, bc_overlap_seconds, lockstep_seconds,
            json_bool(parity).c_str());
        std::fflush(stdout);
        all_parity = all_parity && parity;
      }

      std::cerr << "  workers=" << workers << ": done ("
                << (all_parity ? "parity OK" : "PARITY FAILED") << ")\n";
      coord.shutdown();
      sets[i]->stop();
    }

    if (!all_parity) {
      std::cerr << "dist_profile: PARITY FAILURE — distributed kernel "
                   "results differ from the single-process results\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
