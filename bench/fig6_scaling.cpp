/// \file fig6_scaling.cpp
/// Reproduces Fig. 6: time for GraphCT to estimate betweenness centrality
/// with 256 source vertices, plotted against graph size V*E. The paper's
/// points: the three tweet datasets, 1-9 Sep and all-Sep mention graphs,
/// the Kwak et al. follower graph (61.6M vertices / 1.47B edges, 105 min on
/// the 128-processor XMT), and a scale-29 R-MAT (537M/8.6B, 55 min).
///
/// Here the series is: tweet presets (atlflood, h1n1, sep1 at full scale,
/// sep1_9/sep_all scaled down) plus an R-MAT family with the paper's
/// parameters and an edge-factor-24 R-MAT standing in for the follower
/// graph. With 256 sources the kernel is O(256 * E); the observable is the
/// near-straight line on log-log time-vs-V*E axes.
///
///   ./fig6_scaling [--sources 256] [--max-rmat-scale 18] [--big-scale 0.08]
///                  [--quick]

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/betweenness.hpp"
#include "gen/rmat.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

struct Point {
  std::string label;
  long long vertices;
  long long edges;
  double seconds;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace graphct;
  namespace tw = graphct::twitter;
  try {
    Cli cli(argc, argv,
            {{"sources", "BC sample size (paper: 256)"},
             {"max-rmat-scale", "largest R-MAT scale in the family"},
             {"big-scale", "corpus scale for the sep1_9/sep_all points"},
             {"quick", "trim the series for CI!"}});
    const auto sources = cli.get("sources", std::int64_t{256});
    const auto max_rmat =
        cli.has("quick") ? std::int64_t{14} : cli.get("max-rmat-scale", std::int64_t{18});
    const double big_scale = cli.has("quick") ? 0.02 : cli.get("big-scale", 0.08);

    std::cout << "== Fig. 6: BC estimation time (" << sources
              << " sources) vs graph size V*E ==\n\n";

    std::vector<Point> points;
    auto run_bc = [&](const std::string& label, const CsrGraph& g) {
      BetweennessOptions o;
      o.num_sources = std::min<std::int64_t>(sources, g.num_vertices());
      o.seed = 31;
      const auto r = betweenness_centrality(g, o);
      points.push_back({label, static_cast<long long>(g.num_vertices()),
                        static_cast<long long>(g.num_edges()), r.seconds});
      std::cerr << label << ": " << format_duration(r.seconds) << "\n";
    };

    // Tweet-graph points.
    for (const auto& [name, s] :
         {std::pair{std::string("atlflood"), 1.0},
          std::pair{std::string("h1n1"), 1.0},
          std::pair{std::string("sep1"), cli.has("quick") ? 0.1 : 1.0},
          std::pair{std::string("sep1_9"), big_scale},
          std::pair{std::string("sep_all"), big_scale}}) {
      const auto preset = tw::dataset_preset(name, s);
      const auto mg = graphct::bench::build_preset_graph(preset);
      run_bc(name + (s < 1.0 ? strf(" (x%.2f)", s) : ""), mg.undirected());
    }

    // R-MAT family with the paper's parameters (scale-29 proxy).
    for (std::int64_t sc = 12; sc <= max_rmat; sc += 2) {
      RmatOptions r;
      r.scale = sc;
      r.edge_factor = 16;
      r.seed = 29;
      run_bc(strf("rmat scale %lld", static_cast<long long>(sc)),
             rmat_graph(r));
    }
    // Follower-graph proxy: denser edge factor, like Kwak et al.'s 24.
    {
      RmatOptions r;
      r.scale = std::min<std::int64_t>(max_rmat - 2, 16);
      r.edge_factor = 24;
      r.seed = 61;
      run_bc("follower proxy (ef=24)", rmat_graph(r));
    }

    TextTable t({"graph", "vertices", "edges", "V*E", "time (s)",
                 "log10(V*E)", "log10(t)"});
    for (const auto& p : points) {
      const double ve = static_cast<double>(p.vertices) *
                        static_cast<double>(p.edges);
      t.add_row({p.label, with_commas(p.vertices), with_commas(p.edges),
                 strf("%.2e", ve), strf("%.3f", p.seconds),
                 strf("%.2f", std::log10(ve)),
                 strf("%.2f", std::log10(std::max(p.seconds, 1e-6)))});
    }
    std::cout << t.render();

    // Least-squares slope of log t vs log(V*E) over the R-MAT family —
    // the paper's line has the same near-constant slope.
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    int n = 0;
    for (const auto& p : points) {
      if (p.label.rfind("rmat", 0) != 0) continue;
      const double x = std::log10(static_cast<double>(p.vertices) *
                                  static_cast<double>(p.edges));
      const double y = std::log10(std::max(p.seconds, 1e-6));
      sx += x;
      sy += y;
      sxx += x * x;
      sxy += x * y;
      ++n;
    }
    if (n >= 2) {
      const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
      std::cout << strf("\nlog-log slope over the R-MAT family: %.2f "
                        "(fixed sources => time ~ E ~ sqrt(V*E): slope ~0.5)\n",
                        slope);
    }
    std::cout << "\nPaper reference points (128-proc Cray XMT): 4.9-6303 s "
                 "over the same kind of\nseries; Kwak follower graph 105 "
                 "min; scale-29 R-MAT 55 min.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
