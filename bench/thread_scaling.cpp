/// \file thread_scaling.cpp
/// Parallel scalability sweep — the property GraphCT's published
/// experiments establish on the Cray XMT (§IV-C): kernel throughput as the
/// thread count grows. Runs BFS, connected components, and sampled BC at
/// 1, 2, 4, ... up to the hardware thread count and reports speedups.
/// (On a single-core container this prints the 1-thread row and the
/// speedup column stays 1.0x — run on a real machine for the curve.)
///
///   ./thread_scaling [--scale 15] [--sources 64] [--quick]

#include <omp.h>

#include <iostream>

#include "algs/bfs.hpp"
#include "algs/connected_components.hpp"
#include "core/betweenness.hpp"
#include "gen/rmat.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace graphct;
  try {
    Cli cli(argc, argv,
            {{"scale", "R-MAT scale"},
             {"sources", "BC sample size"},
             {"quick", "small graph!"}});
    const auto scale = cli.has("quick") ? std::int64_t{12}
                                        : cli.get("scale", std::int64_t{15});
    const auto sources = cli.get("sources", std::int64_t{64});

    const int max_threads = omp_get_num_procs();
    RmatOptions r;
    r.scale = scale;
    r.edge_factor = 16;
    const auto g = rmat_graph(r);

    std::cout << "== Thread scaling (paper §IV-C scalability regime) ==\n"
              << "graph: " << with_commas(g.num_vertices()) << " vertices, "
              << with_commas(g.num_edges()) << " edges; hardware threads: "
              << max_threads << "\n\n";

    TextTable t({"threads", "bfs (32 sources)", "components",
                 "bc (" + std::to_string(sources) + " src)", "bc speedup"});
    double bc_base = 0.0;
    for (int nt = 1; nt <= max_threads; nt *= 2) {
      set_num_threads(nt);

      BfsResult buf;
      BfsOptions bo;
      bo.compute_parents = false;
      bo.deterministic_order = false;
      const double bfs_s = obs::timed("bench.bfs_sweep", [&] {
        for (vid s = 0; s < 32; ++s) {
          bfs_into(g, s % g.num_vertices(), bo, buf);
        }
      });

      const double cc_s =
          obs::timed("bench.components", [&] { (void)connected_components(g); });

      BetweennessOptions o;
      o.num_sources = sources;
      o.seed = 5;
      const auto bc = betweenness_centrality(g, o);
      if (nt == 1) bc_base = bc.seconds;

      t.add_row({std::to_string(nt), format_duration(bfs_s),
                 format_duration(cc_s), format_duration(bc.seconds),
                 strf("%.2fx", bc_base / bc.seconds)});
    }
    set_num_threads(0);  // restore the default
    std::cout << t.render()
              << "\nThe XMT sustained near-linear scaling to 128 processors "
                 "by hiding latency in\nhardware thread contexts; on cached "
                 "CPUs the same decomposition scales until\nmemory bandwidth "
                 "saturates.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
