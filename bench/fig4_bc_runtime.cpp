/// \file fig4_bc_runtime.cpp
/// Reproduces Fig. 4: runtime of GraphCT simple betweenness centrality as a
/// function of the fraction of randomly sampled source vertices (10%, 25%,
/// 50%, and 100% = exact), averaged over realizations with 90% confidence,
/// on the real-world tweet graphs.
///
/// As in the paper's evaluation, the kernel runs on each dataset's largest
/// weakly connected component. The paper's absolute numbers come from a
/// 128-processor Cray XMT (30 s at 10% vs ~49 min exact on its largest
/// set); the preserved observable is runtime growing linearly in the
/// sampled fraction — a dramatic gap between 10% and 100%.
///
///   ./fig4_bc_runtime [--scale 1.0] [--realizations 10] [--quick]

#include <cmath>
#include <iostream>

#include "algs/connected_components.hpp"
#include "bench_common.hpp"
#include "core/betweenness.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace graphct;
  namespace tw = graphct::twitter;
  try {
    Cli cli(argc, argv,
            {{"scale", "corpus scale factor"},
             {"realizations", "runs per sampled setting (paper: 10)"},
             {"quick", "small corpora, 3 realizations!"}});
    const double scale = cli.has("quick") ? 0.1 : cli.get("scale", 1.0);
    const auto reps = cli.has("quick")
                          ? std::int64_t{3}
                          : cli.get("realizations", std::int64_t{10});

    std::cout << "== Fig. 4: approximate BC runtime vs sampled-source "
                 "fraction ==\ncorpus scale " << scale << ", " << reps
              << " realizations per setting, 90% confidence\n\n";

    const double fractions[] = {0.10, 0.25, 0.50, 1.00};

    TextTable t({"data set", "sampled %", "sources", "runtime (mean)",
                 "+/- 90% ci", "vs exact"});
    for (const auto& name : {"atlflood", "h1n1"}) {
      const auto preset = tw::dataset_preset(name, scale);
      const auto mg = bench::build_preset_graph(preset);
      const auto lwcc = largest_component(mg.undirected());
      const auto& g = lwcc.graph;
      std::cerr << name << " LWCC: " << with_commas(g.num_vertices())
                << " vertices, " << with_commas(g.num_edges()) << " edges\n";

      double exact_mean = 0.0;
      std::vector<std::vector<double>> all_times;
      for (double frac : fractions) {
        std::vector<double> times;
        const std::int64_t runs = frac < 1.0 ? reps : 1;  // exact is
                                                          // deterministic
        for (std::int64_t rep = 0; rep < runs; ++rep) {
          BetweennessOptions o;
          if (frac < 1.0) o.sample_fraction = frac;
          o.seed = 1000 + static_cast<std::uint64_t>(rep);
          const auto r = betweenness_centrality(g, o);
          times.push_back(r.seconds);
        }
        all_times.push_back(times);
        if (frac == 1.0) exact_mean = times[0];
      }
      for (std::size_t i = 0; i < 4; ++i) {
        const auto s = summarize(
            std::span<const double>(all_times[i].data(), all_times[i].size()));
        const double ci = confidence_half_width(s, 0.90);
        const double frac = fractions[i];
        const long long nsources =
            frac < 1.0 ? static_cast<long long>(std::ceil(
                             frac * static_cast<double>(g.num_vertices())))
                       : static_cast<long long>(g.num_vertices());
        t.add_row({std::string(name), strf("%.0f%%", frac * 100),
                   with_commas(nsources), format_duration(s.mean),
                   format_duration(ci),
                   strf("%.1f%%", 100.0 * s.mean / exact_mean)});
      }
      t.add_separator();
    }
    std::cout << t.render()
              << "\nShape check (log-linear as in the paper): runtime rises "
                 "~linearly with the\nsampled fraction; 10% sampling costs "
                 "~10% of exact — the paper's 30 s vs 49 min gap.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
