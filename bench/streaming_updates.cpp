/// \file streaming_updates.cpp
/// Extension bench (authors' ref [10] regime): sustained update rate of
/// incrementally-maintained clustering coefficients on an R-MAT edge
/// stream, against the cost of static recomputation at matching points.
/// The streaming win is the ratio — recomputing after every update is
/// quadratically worse, which is what makes live tweet analytics feasible.
///
///   ./streaming_updates [--scale 13] [--updates 200000] [--quick]

#include <iostream>

#include "algs/clustering.hpp"
#include "gen/rmat.hpp"
#include "obs/trace.hpp"
#include "stream/streaming_clustering.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace graphct;
  try {
    Cli cli(argc, argv,
            {{"scale", "R-MAT scale of the vertex set"},
             {"updates", "edge insertions/deletions to stream"},
             {"quick", "small run!"}});
    const auto scale = cli.has("quick") ? std::int64_t{11}
                                        : cli.get("scale", std::int64_t{13});
    const auto updates = cli.has("quick")
                             ? std::int64_t{20000}
                             : cli.get("updates", std::int64_t{200000});

    // Seed graph: half the final edges; the stream then inserts R-MAT edges
    // (heavy-tailed endpoints, like mention arrivals) and deletes random
    // existing ones at a 3:1 ratio.
    RmatOptions r;
    r.scale = scale;
    r.edge_factor = 8;
    r.seed = 7;
    const auto base = rmat_graph(r);
    StreamingClustering sc(base);

    const auto stream_edges = rmat_edges({.scale = scale,
                                          .edge_factor = 4,
                                          .seed = 1234});

    std::cout << "== Streaming clustering-coefficient maintenance "
                 "(ref [10] regime) ==\n"
              << "base graph: " << with_commas(base.num_vertices())
              << " vertices, " << with_commas(base.num_edges()) << " edges; "
              << with_commas(updates) << " updates\n\n";

    Rng rng(99);
    std::int64_t ins = 0, del = 0;
    const auto& es = stream_edges.edges();
    const double stream_s = obs::timed("bench.stream_updates", [&] {
      for (std::int64_t i = 0; i < updates; ++i) {
        const auto& e = es[static_cast<std::size_t>(i) % es.size()];
        if (rng.next_bool(0.75)) {
          if (sc.insert_edge(e.src, e.dst)) ++ins;
        } else {
          if (sc.remove_edge(e.src, e.dst)) ++del;
        }
      }
    });

    // One static recomputation of the final state, for the cost ratio.
    CsrGraph snap;
    ClusteringResult stat;
    const double static_s = obs::timed("bench.static_recompute", [&] {
      snap = sc.graph().snapshot();
      stat = clustering_coefficients(snap);
    });
    GCT_CHECK(stat.total_triangles == sc.total_triangles(),
              "streaming count diverged from static recomputation");

    TextTable t({"metric", "value"});
    t.add_row({"updates applied", with_commas(ins + del)});
    t.add_row({"  insertions / deletions",
               with_commas(ins) + " / " + with_commas(del)});
    t.add_row({"streaming update rate",
               strf("%.0f updates/s",
                    static_cast<double>(updates) / stream_s)});
    t.add_row({"one static recomputation", format_duration(static_s)});
    t.add_row({"updates per recomputation-equivalent",
               strf("%.0f", static_s / (stream_s /
                                        static_cast<double>(updates)))});
    t.add_row({"final triangles (verified)",
               with_commas(sc.total_triangles())});
    std::cout << t.render()
              << "\nEvery streamed update costs O(deg(u)+deg(v)); a static "
                 "pass costs O(sum deg^2).\nThe ratio above is how many live "
                 "updates one recomputation buys.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
