/// \file ablation_bc_accum.cpp
/// Ablation: the two parallel decompositions of betweenness centrality the
/// paper discusses (§II-B). Coarse parallelism runs sources concurrently
/// with O(m+n) private storage each; fine-grained parallelism (the Cray XMT
/// style) runs one source at a time with level-parallel sweeps whose only
/// synchronization is atomic fetch-and-add. Both must produce identical
/// scores; their costs differ by memory footprint and synchronization.
///
///   ./ablation_bc_accum [--scale 13] [--sources 64] [--quick]
///                       [--engine top_down|hybrid]
///
/// --engine selects the forward-sweep engine for both modes (default: the
/// kAuto resolution, i.e. the hybrid direction-optimizing sweep on this
/// undirected graph). Running once per engine isolates the hybrid sweep's
/// contribution; scores are bit-identical between engines by construction.
/// A third decomposition — the distributed path over loopback workers,
/// which replays the fine-mode accumulation bitwise across processes —
/// is ablated separately by bench/dist_profile (bc and bc_overlap rows;
/// see docs/DISTRIBUTED.md).

#include <cmath>
#include <iostream>

#include "core/betweenness.hpp"
#include "gen/rmat.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace graphct;
  try {
    Cli cli(argc, argv,
            {{"scale", "R-MAT scale"},
             {"sources", "sampled sources"},
             {"engine", "forward sweep: top_down or hybrid (the distributed "
                        "path is ablated by dist_profile's bc rows)"},
             {"quick", "small graph!"}});
    const auto scale = cli.has("quick") ? std::int64_t{11}
                                        : cli.get("scale", std::int64_t{13});
    const auto sources = cli.get("sources", std::int64_t{64});
    const auto engine_name = cli.get("engine", std::string("auto"));
    BcForwardEngine engine = BcForwardEngine::kAuto;
    if (engine_name == "top_down") {
      engine = BcForwardEngine::kTopDown;
    } else if (engine_name == "hybrid") {
      engine = BcForwardEngine::kHybrid;
    } else if (engine_name != "auto") {
      std::cerr << "error: --engine must be top_down or hybrid\n";
      return 1;
    }

    RmatOptions r;
    r.scale = scale;
    r.edge_factor = 16;
    const auto g = rmat_graph(r);
    std::cout << "== Ablation: BC parallel decomposition (coarse vs fine) ==\n"
              << "graph: " << with_commas(g.num_vertices()) << " vertices, "
              << with_commas(g.num_edges()) << " edges; " << sources
              << " sources; " << num_threads() << " threads\n";

    BetweennessOptions base;
    base.num_sources = sources;
    base.seed = 5;
    base.forward = engine;
    std::cout << "forward engine: " << engine_name << "\n\n";

    TextTable t({"mode", "time", "Medge-traversals/s", "score checksum"});
    std::vector<double> coarse_scores, fine_scores;
    for (auto mode : {BcParallelism::kCoarse, BcParallelism::kFine}) {
      BetweennessOptions o = base;
      o.parallelism = mode;
      const auto res = betweenness_centrality(g, o);
      double checksum = 0;
      for (double s : res.score) checksum += s;
      (mode == BcParallelism::kCoarse ? coarse_scores : fine_scores) =
          res.score;
      const double traversals = static_cast<double>(res.sources_used) *
                                static_cast<double>(g.num_adjacency_entries());
      t.add_row({std::string(mode == BcParallelism::kCoarse
                     ? "coarse (parallel sources, private buffers)"
                     : "fine (serial sources, level-parallel + atomics)"),
                 format_duration(res.seconds),
                 strf("%.0f", traversals / 1e6 / res.seconds),
                 strf("%.6g", checksum)});
    }
    std::cout << t.render();

    double max_diff = 0;
    for (std::size_t i = 0; i < coarse_scores.size(); ++i) {
      max_diff = std::max(max_diff,
                          std::abs(coarse_scores[i] - fine_scores[i]));
    }
    std::cout << strf("\nmax per-vertex score difference: %.3g (must be "
                      "float-noise only)\n",
                      max_diff)
              << "\nFine mode is the XMT's regime: with hardware thread "
                 "contexts the per-level\nparallelism hides memory latency "
                 "without per-source buffer memory (O(S*(m+n))\nfor coarse, "
                 "§II-A). On commodity cores, coarse wins once sources >> "
                 "threads.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
