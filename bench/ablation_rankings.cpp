/// \file ablation_rankings.cpp
/// Ablation: how much does the choice of influence metric matter for the
/// paper's Table IV task ("identify the top ranked actors")? Compares
/// betweenness centrality (the paper's choice) against degree, PageRank,
/// and harmonic closeness on the tweet mention graphs: Spearman correlation
/// over all vertices and top-1% set overlap.
///
///   ./ablation_rankings [--scale 0.3] [--quick]

#include <iostream>

#include "algs/closeness.hpp"
#include "algs/connected_components.hpp"
#include "algs/degree.hpp"
#include "algs/pagerank.hpp"
#include "algs/ranking.hpp"
#include "bench_common.hpp"
#include "core/betweenness.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace graphct;
  namespace tw = graphct::twitter;
  try {
    Cli cli(argc, argv,
            {{"scale", "corpus scale factor"}, {"quick", "small corpora!"}});
    const double scale = cli.has("quick") ? 0.08 : cli.get("scale", 0.3);

    std::cout << "== Ablation: influence metrics vs betweenness centrality "
                 "(Table IV task) ==\ncorpus scale " << scale << "\n\n";

    for (const auto& name : {"atlflood", "h1n1"}) {
      const auto preset = tw::dataset_preset(name, scale);
      const auto mg = bench::build_preset_graph(preset);
      const auto lwcc = largest_component(mg.undirected());
      const auto& g = lwcc.graph;

      const auto bc = betweenness_centrality(g);
      const std::span<const double> bc_s(bc.score.data(), bc.score.size());

      std::vector<double> degree_s(static_cast<std::size_t>(g.num_vertices()));
      for (vid v = 0; v < g.num_vertices(); ++v) {
        degree_s[static_cast<std::size_t>(v)] =
            static_cast<double>(g.degree(v));
      }
      const auto pr = pagerank(g);
      const auto cl = closeness_centrality(g);

      std::cout << "-- " << name << " LWCC: "
                << with_commas(g.num_vertices()) << " vertices --\n";
      TextTable t({"metric", "spearman vs BC", "top-1% overlap with BC"});
      auto row = [&](const std::string& label, std::span<const double> s) {
        t.add_row({label, strf("%.3f", spearman_correlation(bc_s, s)),
                   strf("%.0f%%", 100.0 * top_k_overlap(bc_s, s, 1.0))});
      };
      row("degree", {degree_s.data(), degree_s.size()});
      row("pagerank", {pr.score.data(), pr.score.size()});
      row("harmonic closeness", {cl.score.data(), cl.score.size()});
      std::cout << t.render() << "\n";
    }
    std::cout << "Reading: on broadcast-dominated mention graphs the metrics "
                 "agree on the hub\naccounts (high top-1% overlap) but "
                 "diverge in the middle of the ranking —\nbetweenness "
                 "specifically rewards *brokers*, which is why the paper "
                 "uses it to\nfind conversation-bridging actors rather than "
                 "merely popular ones.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
