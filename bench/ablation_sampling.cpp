/// \file ablation_sampling.cpp
/// Ablation for the paper's §V conjecture: "the unguided random sampling in
/// GraphCT may miss components when the graph is not connected." Compares
/// uniform source sampling (the paper's scheme) against component-aware
/// stratified sampling on the fragmented full H1N1 mention graph, measuring
/// (a) how many components receive no source and (b) top-k agreement with
/// exact BC.
///
///   ./ablation_sampling [--scale 0.3] [--sources 64] [--realizations 10]
///                       [--quick]

#include <iostream>
#include <set>

#include "algs/connected_components.hpp"
#include "algs/ranking.hpp"
#include "bench_common.hpp"
#include "core/betweenness.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace graphct;
  namespace tw = graphct::twitter;
  try {
    Cli cli(argc, argv,
            {{"scale", "corpus scale factor"},
             {"sources", "sampled sources"},
             {"realizations", "sampling repetitions"},
             {"quick", "small corpus, few realizations!"}});
    const double scale = cli.has("quick") ? 0.08 : cli.get("scale", 0.3);
    const auto sources = cli.get("sources", std::int64_t{64});
    const auto reps = cli.has("quick")
                          ? std::int64_t{3}
                          : cli.get("realizations", std::int64_t{10});

    const auto preset = tw::dataset_preset("h1n1", scale);
    const auto mg = bench::build_preset_graph(preset);
    // Full fragmented graph, isolated users dropped (they can never carry
    // centrality but would swamp the component count).
    const auto pruned = drop_isolated(mg.undirected());
    const auto& g = pruned.graph;

    const auto labels = connected_components(g);
    const auto cstats = component_stats(labels);
    // Components large enough to carry nonzero BC (size >= 3) are the ones
    // sampling must cover.
    std::int64_t significant = 0;
    for (const auto& [l, size] : cstats.sizes) {
      if (size >= 3) ++significant;
    }

    std::cout << "== Ablation: uniform vs component-aware BC source sampling "
                 "==\n"
              << "h1n1 mention graph (x" << scale << "): "
              << with_commas(g.num_vertices()) << " vertices, "
              << with_commas(cstats.num_components) << " components ("
              << significant << " of size >= 3); " << sources << " sources, "
              << reps << " realizations\n\n";

    const auto exact = betweenness_centrality(g);
    const std::span<const double> exact_scores(exact.score.data(),
                                               exact.score.size());

    TextTable t({"sampling", "components missed (size>=3)", "top-1% overlap",
                 "top-10% overlap"});
    for (auto mode : {BcSampling::kUniform, BcSampling::kComponentAware}) {
      std::vector<double> missed, ov1, ov10;
      for (std::int64_t rep = 0; rep < reps; ++rep) {
        BetweennessOptions o;
        o.num_sources = sources;
        o.sampling = mode;
        o.seed = 300 + static_cast<std::uint64_t>(rep);

        const auto srcs = choose_sources(g, o);
        std::set<vid> covered;
        for (vid s : srcs) covered.insert(labels[static_cast<std::size_t>(s)]);
        std::int64_t miss = 0;
        for (const auto& [l, size] : cstats.sizes) {
          if (size >= 3 && !covered.count(l)) ++miss;
        }
        missed.push_back(static_cast<double>(miss));

        const auto approx = betweenness_centrality(g, o);
        const std::span<const double> as(approx.score.data(),
                                         approx.score.size());
        ov1.push_back(top_k_overlap(exact_scores, as, 1.0));
        ov10.push_back(top_k_overlap(exact_scores, as, 10.0));
      }
      auto mean = [](const std::vector<double>& v) {
        return summarize(std::span<const double>(v.data(), v.size())).mean;
      };
      t.add_row({mode == BcSampling::kUniform ? "uniform (paper)"
                                              : "component-aware",
                 strf("%.1f", mean(missed)), strf("%.0f%%", mean(ov1) * 100),
                 strf("%.0f%%", mean(ov10) * 100)});
    }
    std::cout << t.render()
              << "\nComponent-aware stratification guarantees every sizable "
                 "component a source,\nconfirming (and addressing) the "
                 "paper's conjecture that unguided sampling\nmisses "
                 "components of disconnected social graphs.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
