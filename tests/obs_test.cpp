#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "algs/bfs.hpp"
#include "gen/rmat.hpp"
#include "test_support.hpp"

namespace graphct::obs {
namespace {

/// Leaves profiling off and the thread-local profile log empty however the
/// test exits, so tests cannot leak state into each other.
struct ProfilingGuard {
  ~ProfilingGuard() {
    set_profiling_enabled(false);
    clear_profiles();
  }
};

void spin_for_ms(int ms) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < until) {
  }
}

// ------------------------------------------------------------- counters

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter c;
  const std::int64_t per_thread = 200000;
  int threads = 1;
#pragma omp parallel
  {
#pragma omp single
    threads = omp_get_num_threads();
#pragma omp for
    for (std::int64_t i = 0; i < threads * per_thread; ++i) {
      c.add();
    }
  }
  EXPECT_EQ(c.value(), threads * per_thread);
}

TEST(CounterTest, AddWithDeltaAndReset) {
  Counter c;
  c.add(5);
  c.add(2);
  EXPECT_EQ(c.value(), 7);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.set(4.0);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 5.5);
}

// ----------------------------------------------------------- histograms

TEST(HistogramMetricTest, BucketBoundariesAreInclusive) {
  Histogram h({1.0, 2.0, 5.0});
  // `le` semantics: an observation equal to a bound lands in that bucket.
  h.observe(1.0);
  h.observe(1.5);
  h.observe(2.0);
  h.observe(5.0);
  h.observe(5.0001);  // +Inf bucket
  const auto s = h.snapshot();
  ASSERT_EQ(s.bounds.size(), 3u);
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 1);  // <= 1.0
  EXPECT_EQ(s.counts[1], 2);  // (1.0, 2.0]
  EXPECT_EQ(s.counts[2], 1);  // (2.0, 5.0]
  EXPECT_EQ(s.counts[3], 1);  // +Inf
  EXPECT_EQ(s.count, 5);
  EXPECT_NEAR(s.sum, 1.0 + 1.5 + 2.0 + 5.0 + 5.0001, 1e-9);
}

TEST(HistogramMetricTest, ConcurrentObservationsSumExactly) {
  Histogram h({0.5});
  const std::int64_t n = 100000;
#pragma omp parallel for
  for (std::int64_t i = 0; i < n; ++i) {
    h.observe(1.0);
  }
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, n);
  EXPECT_EQ(s.counts[1], n);
  EXPECT_DOUBLE_EQ(s.sum, static_cast<double>(n));
}

TEST(HistogramMetricTest, DefaultSecondsBucketsAreSorted) {
  const auto b = Histogram::seconds_buckets();
  ASSERT_FALSE(b.empty());
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
}

// ------------------------------------------------------------- registry

TEST(RegistryTest, ReferencesAreStableAndShared) {
  Registry r;
  Counter& a = r.counter("x_total");
  Counter& b = r.counter("x_total");
  EXPECT_EQ(&a, &b);
  a.add(7);
  const auto snap = r.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "x_total");
  EXPECT_EQ(snap.counters[0].second, 7);
}

TEST(RegistryTest, SnapshotWhileWriting) {
  Registry r;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Counter& c = r.counter("w_total");
    Histogram& h = r.histogram("w_seconds");
    Gauge& g = r.gauge("w_gauge");
    std::int64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      c.add();
      h.observe(0.001 * static_cast<double>(i % 1000));
      g.set(static_cast<double>(i));
      ++i;
    }
  });
  // On a single-core host the writer may not be scheduled at all before
  // 200 snapshot iterations complete; wait for its first increment.
  Counter& written = r.counter("w_total");
  while (written.value() == 0) std::this_thread::yield();
  // Concurrent snapshots must never crash or tear (this test runs under
  // the TSan CI job; bucket counts and the total are updated by separate
  // relaxed atomics, so they may transiently disagree by in-flight
  // observations — only monotonicity and renderability are asserted).
  std::int64_t last_count = 0;
  for (int i = 0; i < 200; ++i) {
    const auto snap = r.snapshot();
    for (const auto& [name, hist] : snap.histograms) {
      EXPECT_GE(hist.count, last_count) << name;
      last_count = hist.count;
      EXPECT_GE(hist.sum, 0.0) << name;
    }
    (void)snap.to_json();
    (void)snap.to_prometheus();
  }
  stop.store(true);
  writer.join();
  EXPECT_GT(r.counter("w_total").value(), 0);
}

TEST(RegistryTest, PrometheusExposition) {
  Registry r;
  r.counter("gct_runs_total{kernel=\"bc\"}").add(3);
  r.gauge("gct_threads").set(8);
  r.histogram("gct_wait_seconds", {0.1, 1.0}).observe(0.05);
  const std::string text = r.snapshot().to_prometheus();
  EXPECT_NE(text.find("# TYPE gct_runs_total counter"), std::string::npos);
  EXPECT_NE(text.find("gct_runs_total{kernel=\"bc\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gct_threads gauge"), std::string::npos);
  EXPECT_NE(text.find("gct_wait_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("gct_wait_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("gct_wait_seconds_count 1"), std::string::npos);
}

TEST(RegistryTest, PromLabelValueEscapesSpecials) {
  EXPECT_EQ(prom_label_value("bfs"), "bfs");
  EXPECT_EQ(prom_label_value(""), "");
  EXPECT_EQ(prom_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(prom_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(prom_label_value("a\nb"), "a\\nb");
  // An escaped value embeds without breaking the exposition line.
  Registry r;
  r.counter("gct_x_total{k=\"" + prom_label_value("we\"ird\n") + "\"}").add();
  const std::string text = r.snapshot().to_prometheus();
  EXPECT_NE(text.find("gct_x_total{k=\"we\\\"ird\\n\"} 1"), std::string::npos);
}

TEST(RegistryTest, JsonIsOneLine) {
  Registry r;
  r.counter("a_total").add();
  r.histogram("b_seconds", {1.0}).observe(0.5);
  const std::string json = r.snapshot().to_json();
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"a_total\":1"), std::string::npos);
}

// ------------------------------------------------------------- profiles

TEST(TraceTest, DisabledProfilingCollectsNothing) {
  ProfilingGuard guard;
  set_profiling_enabled(false);
  {
    KernelScope scope("noop");
    GCT_SPAN("noop.phase");
    EXPECT_FALSE(profile_active());
  }
  EXPECT_TRUE(drain_profiles().empty());
}

TEST(TraceTest, SpanNestingAndReentrancy) {
  ProfilingGuard guard;
  clear_profiles();
  set_profiling_enabled(true);
  {
    KernelScope scope("k");
    for (int i = 0; i < 3; ++i) {
      GCT_SPAN("k.outer");
      add_work(10, 100);
      {
        GCT_SPAN("k.inner");
        add_work(1, 2);
      }
    }
  }
  auto profiles = drain_profiles();
  ASSERT_EQ(profiles.size(), 1u);
  const KernelProfile& p = profiles[0];
  EXPECT_EQ(p.kernel, "k");
  ASSERT_EQ(p.phases.size(), 2u);  // re-entries accumulate, not duplicate
  EXPECT_EQ(p.phases[0].name, "k.outer");
  EXPECT_EQ(p.phases[0].depth, 1);
  EXPECT_EQ(p.phases[0].calls, 3);
  EXPECT_EQ(p.phases[0].vertices, 30);
  EXPECT_EQ(p.phases[0].edges, 300);
  EXPECT_EQ(p.phases[1].name, "k.inner");
  EXPECT_EQ(p.phases[1].depth, 2);
  EXPECT_EQ(p.phases[1].calls, 3);
  // Kernel totals include work attributed inside any phase.
  EXPECT_EQ(p.vertices, 33);
  EXPECT_EQ(p.edges, 306);
}

TEST(TraceTest, NestedKernelScopeDegradesToPhase) {
  ProfilingGuard guard;
  clear_profiles();
  set_profiling_enabled(true);
  {
    KernelScope outer("outer");
    KernelScope inner("inner");
    (void)inner.seconds();
  }
  auto profiles = drain_profiles();
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_EQ(profiles[0].kernel, "outer");
  ASSERT_EQ(profiles[0].phases.size(), 1u);
  EXPECT_EQ(profiles[0].phases[0].name, "inner");
  EXPECT_EQ(profiles[0].phases[0].depth, 1);
}

TEST(TraceTest, SuspendCollectionHidesWork) {
  ProfilingGuard guard;
  clear_profiles();
  set_profiling_enabled(true);
  {
    KernelScope scope("s");
    {
      SuspendCollection pause;
      EXPECT_FALSE(profile_active());
      add_work(100, 1000);  // must not be recorded
    }
    EXPECT_TRUE(profile_active());
    add_work(1, 2);
  }
  auto profiles = drain_profiles();
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_EQ(profiles[0].vertices, 1);
  EXPECT_EQ(profiles[0].edges, 2);
}

TEST(TraceTest, PhaseTimesPartitionTheKernel) {
  ProfilingGuard guard;
  clear_profiles();
  set_profiling_enabled(true);
  {
    KernelScope scope("p");
    {
      GCT_SPAN("p.a");
      spin_for_ms(20);
    }
    {
      GCT_SPAN("p.b");
      spin_for_ms(20);
    }
  }
  auto profiles = drain_profiles();
  ASSERT_EQ(profiles.size(), 1u);
  const KernelProfile& p = profiles[0];
  // Depth-1 phases partition the kernel: their sum can't exceed the total
  // and here covers nearly all of it (generous tolerance — CI machines).
  EXPECT_LE(p.phase_seconds(1), p.seconds + 1e-6);
  EXPECT_GE(p.phase_seconds(1), 0.5 * p.seconds);
  EXPECT_GE(p.seconds, 0.03);
}

TEST(TraceTest, RealKernelProfileSumsWithinTolerance) {
  ProfilingGuard guard;
  clear_profiles();
  set_profiling_enabled(true);
  RmatOptions r;
  r.scale = 10;
  r.edge_factor = 8;
  const auto g = rmat_graph(r);
  const auto result = bfs(g, 0);
  ASSERT_GT(result.num_reached(), 1);
  auto profiles = drain_profiles();
  ASSERT_EQ(profiles.size(), 1u);
  const KernelProfile& p = profiles[0];
  EXPECT_EQ(p.kernel, "bfs");
  EXPECT_GE(p.threads, 1);
  EXPECT_GT(p.edges, 0);  // exact traversed-edge accounting
  EXPECT_FALSE(p.phases.empty());
  EXPECT_LE(p.phase_seconds(1), p.seconds * 1.05 + 1e-6);
  // JSON line renders and mentions the kernel and its phases.
  const std::string json = p.to_json();
  EXPECT_NE(json.find("\"kernel\":\"bfs\""), std::string::npos);
  EXPECT_NE(json.find("\"phases\":["), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);
  // The run also landed in the process registry.
  EXPECT_GE(
      registry().counter("gct_kernel_runs_total{kernel=\"bfs\"}").value(), 1);
}

TEST(TraceTest, FormatProfileRendersTable) {
  KernelProfile p;
  p.kernel = "demo";
  p.seconds = 2.0;
  p.threads = 4;
  p.vertices = 10;
  p.edges = 1000;
  PhaseStats a;
  a.name = "demo.a";
  a.calls = 2;
  a.seconds = 1.5;
  p.phases.push_back(a);
  const std::string text = format_profile(p);
  EXPECT_NE(text.find("profile demo"), std::string::npos);
  EXPECT_NE(text.find("demo.a"), std::string::npos);
  EXPECT_NE(text.find("TEPS"), std::string::npos);
  EXPECT_NE(text.find("(unattributed)"), std::string::npos);  // 0.5 s gap
}

TEST(TraceTest, TimedReturnsElapsedAndRecordsRun) {
  const std::int64_t before =
      registry().counter("gct_kernel_runs_total{kernel=\"timed.demo\"}")
          .value();
  const double s = timed("timed.demo", [] { spin_for_ms(5); });
  EXPECT_GE(s, 0.004);
  EXPECT_EQ(
      registry().counter("gct_kernel_runs_total{kernel=\"timed.demo\"}")
          .value(),
      before + 1);
}

TEST(TraceTest, EffectiveThreadsIsPositive) {
  EXPECT_GE(effective_threads(), 1);
}

}  // namespace
}  // namespace graphct::obs
