#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace graphct {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(1234), b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Mix64Test, IsAFunctionAndSpreadsBits) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(0), mix64(1));
  // Single-bit input changes should flip many output bits.
  const std::uint64_t diff = mix64(0) ^ mix64(1);
  EXPECT_GE(__builtin_popcountll(diff), 16);
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(RngTest, NextInInclusiveRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  // Both endpoints should be reachable.
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_in(0, 3));
  EXPECT_EQ(seen, (std::set<std::int64_t>{0, 1, 2, 3}));
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(RngTest, NextBoolFrequency) {
  Rng rng(19);
  int heads = 0;
  for (int i = 0; i < 20000; ++i) heads += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 20000.0, 0.3, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(23);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng parent(31);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, SampleWithoutReplacementBasics) {
  Rng rng(37);
  const auto s = rng.sample_without_replacement(100, 10);
  EXPECT_EQ(s.size(), 10u);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  std::set<std::int64_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
  for (auto v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, SampleWholeRange) {
  Rng rng(41);
  const auto s = rng.sample_without_replacement(8, 8);
  EXPECT_EQ(s.size(), 8u);
  for (std::int64_t i = 0; i < 8; ++i) EXPECT_EQ(s[static_cast<std::size_t>(i)], i);
}

TEST(RngTest, SampleZero) {
  Rng rng(43);
  EXPECT_TRUE(rng.sample_without_replacement(5, 0).empty());
}

TEST(RngTest, SampleDensePathIsUniform) {
  // Dense path (k*16 >= n) — each element should appear roughly k/n of the
  // time across repetitions.
  std::vector<int> counts(10, 0);
  for (int rep = 0; rep < 4000; ++rep) {
    Rng rng(1000 + static_cast<std::uint64_t>(rep));
    for (auto v : rng.sample_without_replacement(10, 5)) {
      ++counts[static_cast<std::size_t>(v)];
    }
  }
  for (int c : counts) EXPECT_NEAR(c / 4000.0, 0.5, 0.06);
}

TEST(RngTest, SampleSparsePathIsUniform) {
  // Sparse path (k*16 < n) exercises Floyd's algorithm.
  std::vector<int> counts(64, 0);
  for (int rep = 0; rep < 6000; ++rep) {
    Rng rng(5000 + static_cast<std::uint64_t>(rep));
    for (auto v : rng.sample_without_replacement(64, 2)) {
      ++counts[static_cast<std::size_t>(v)];
    }
  }
  for (int c : counts) EXPECT_NEAR(c / 6000.0, 2.0 / 64.0, 0.015);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(53);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

}  // namespace
}  // namespace graphct
