/// Reproduction guards: scaled-down versions of every paper claim the
/// benches regenerate, asserted as tests so regressions in kernels,
/// generators, or calibration break CI rather than silently bending the
/// curves in EXPERIMENTS.md. Each test names the table/figure it guards.

#include <gtest/gtest.h>

#include <set>

#include "algs/assortativity.hpp"
#include "algs/connected_components.hpp"
#include "algs/degree.hpp"
#include "algs/ranking.hpp"
#include "core/betweenness.hpp"
#include "gen/rmat.hpp"
#include "graph/io_dimacs.hpp"
#include "test_support.hpp"
#include "twitter/conversation.hpp"
#include "twitter/corpus_gen.hpp"
#include "twitter/datasets.hpp"
#include "twitter/mention_graph.hpp"
#include "util/timer.hpp"

namespace graphct {
namespace {

twitter::MentionGraph preset_graph(const char* name, double scale) {
  const auto preset = twitter::dataset_preset(name, scale);
  const auto tweets = twitter::generate_corpus(preset.corpus);
  twitter::MentionGraphBuilder b;
  for (const auto& t : tweets) b.add(t);
  return std::move(b).build();
}

TEST(ReproductionTest, TableII_OnsetBurstShape) {
  twitter::ArticleVolumeOptions o;
  o.seed = 2009;
  const auto rows = twitter::simulate_weekly_articles(o);
  ASSERT_EQ(rows.size(), 8u);
  // Paper: 5,591 -> 108,038 (19x) then decay; guard a >5x burst and that
  // the peak dominates the tail.
  EXPECT_GT(rows[1].second, 5 * rows[0].second);
  EXPECT_GT(rows[1].second, rows[4].second);
  EXPECT_GT(rows[1].second, rows[7].second);
}

TEST(ReproductionTest, TableIII_FragmentedBroadcastForest) {
  const auto mg = preset_graph("h1n1", 0.2);
  // Paper row 1: interactions (36,886) < users (46,457); a dominant but
  // partial LWCC; responses a small fraction of tweets.
  EXPECT_LT(mg.unique_interactions, mg.num_users);
  const auto und = mg.undirected();
  const auto stats = component_stats(connected_components(und));
  EXPECT_GT(stats.largest_size(), mg.num_users / 10);
  EXPECT_LT(stats.largest_size(), mg.num_users);
  EXPECT_LT(mg.tweets_with_responses, mg.num_tweets / 5);
  EXPECT_GT(mg.tweets_with_responses, 0);
}

TEST(ReproductionTest, TableIV_HubsDominateBcRanking) {
  const auto preset = twitter::dataset_preset("atlflood", 0.5);
  const auto tweets = twitter::generate_corpus(preset.corpus);
  twitter::MentionGraphBuilder b;
  for (const auto& t : tweets) b.add(t);
  const auto mg = std::move(b).build();
  const auto ranked = twitter::rank_users_by_betweenness(mg, 10);
  std::set<std::string> hubs(preset.corpus.hub_names.begin(),
                             preset.corpus.hub_names.end());
  int hub_hits = 0;
  for (const auto& r : ranked) {
    if (hubs.count(r.name) || r.name.rfind("hub", 0) == 0) ++hub_hits;
  }
  // Paper: the top-15 are dominated by media/government accounts.
  EXPECT_GE(hub_hits, 5);
}

TEST(ReproductionTest, Fig2_HeavyTailAndDisassortativity) {
  const auto mg = preset_graph("h1n1", 0.2);
  const auto und = mg.undirected();
  const auto s = degree_summary(und);
  EXPECT_GT(s.max, 30.0 * s.mean);  // a few broadcast vertices dominate
  const double alpha = degree_power_law_alpha(und, 2);
  EXPECT_GT(alpha, 1.3);
  EXPECT_LT(alpha, 4.5);
  EXPECT_LT(degree_assortativity(und), -0.05);  // broadcast signature
}

TEST(ReproductionTest, Fig3_MutualFilterCollapsesGraph) {
  for (const char* name : {"h1n1", "atlflood"}) {
    const auto mg = preset_graph(name, 0.3);
    const auto r = twitter::subcommunity_filter(mg);
    // Paper: reduction factors up to two orders of magnitude; guard >= 5x
    // at test scale and that something survives.
    EXPECT_GT(r.reduction_factor, 5.0) << name;
    EXPECT_GT(r.mutual_vertices, 0) << name;
    EXPECT_LE(r.mutual_lwcc_vertices, r.mutual_vertices) << name;
  }
}

TEST(ReproductionTest, Fig4_RuntimeLinearInSampledFraction) {
  const auto mg = preset_graph("h1n1", 0.15);
  const auto lwcc = largest_component(mg.undirected());
  const auto& g = lwcc.graph;

  auto run = [&](double frac) {
    BetweennessOptions o;
    if (frac < 1.0) o.sample_fraction = frac;
    o.seed = 5;
    return betweenness_centrality(g, o).seconds;
  };
  const double t10 = run(0.10);
  const double t100 = run(1.0);
  // Paper: "a clear and dramatic runtime performance difference of 10%
  // sampling compared to exact" — 30 s vs 49 min. Guard a >=4x gap (the
  // asymptotic factor is 10x; small graphs carry fixed overheads).
  EXPECT_GT(t100, 4.0 * t10);
}

TEST(ReproductionTest, Fig5_AccuracyRisesWithSampling) {
  const auto mg = preset_graph("atlflood", 1.0);
  const auto lwcc = largest_component(mg.undirected());
  const auto& g = lwcc.graph;
  const auto exact = betweenness_centrality(g);
  const std::span<const double> ex(exact.score.data(), exact.score.size());

  auto mean_overlap = [&](double frac) {
    double sum = 0;
    for (int rep = 0; rep < 5; ++rep) {
      BetweennessOptions o;
      o.sample_fraction = frac;
      o.seed = 40 + static_cast<std::uint64_t>(rep);
      const auto approx = betweenness_centrality(g, o);
      sum += top_k_overlap(
          ex, {approx.score.data(), approx.score.size()}, 5.0);
    }
    return sum / 5.0;
  };
  const double at10 = mean_overlap(0.10);
  const double at50 = mean_overlap(0.50);
  // Paper: >80% overlap for top 1%/5% at 10% sampling, >90% at 25-50%.
  EXPECT_GE(at10, 0.6);
  EXPECT_GE(at50, 0.8);
  EXPECT_GE(at50, at10 - 0.05);
}

TEST(ReproductionTest, Fig6_TimeScalesWithGraphSize) {
  // Fixed 64 sources across an R-MAT family: time must grow with E and
  // stay within a loose near-linear envelope.
  double prev = 0;
  double prev_edges = 0;
  for (std::int64_t scale : {10, 12, 14}) {
    RmatOptions r;
    r.scale = scale;
    r.edge_factor = 16;
    const auto g = rmat_graph(r);
    BetweennessOptions o;
    o.num_sources = 64;
    o.seed = 3;
    const double secs = std::max(betweenness_centrality(g, o).seconds, 1e-4);
    if (prev > 0) {
      const double time_ratio = secs / prev;
      const double edge_ratio = static_cast<double>(g.num_edges()) / prev_edges;
      EXPECT_GT(time_ratio, 1.2);                // grows with size
      EXPECT_LT(time_ratio, edge_ratio * 4.0);   // not superlinear blowup
    }
    prev = secs;
    prev_edges = static_cast<double>(g.num_edges());
  }
}

TEST(ReproductionTest, SectionIVC_LoadRivalsKernelCost) {
  // "Loading massive datasets into memory ... often occupies a majority of
  // computation time": parse+build should be within an order of magnitude
  // of one components pass, not negligible.
  RmatOptions r;
  r.scale = 13;
  r.edge_factor = 8;
  const auto g = rmat_graph(r);
  const std::string text = to_dimacs(g);
  Timer t;
  const auto rebuilt = build_csr(parse_dimacs(text));
  const double load_s = t.seconds();
  t.restart();
  (void)connected_components(rebuilt);
  const double cc_s = t.seconds();
  EXPECT_GT(load_s, cc_s * 0.5);
}

}  // namespace
}  // namespace graphct
