#pragma once

/// \file test_support.hpp
/// Shared test fixtures: simple serial reference implementations that the
/// parallel kernels are validated against, plus small-graph helpers.

#include <algorithm>
#include <deque>
#include <map>
#include <vector>

#include "graph/builder.hpp"
#include "graph/csr_graph.hpp"
#include "graph/edge_list.hpp"
#include "util/rng.hpp"

namespace graphct::testing {

/// Build an undirected deduplicated graph from an initializer list of edges.
inline CsrGraph make_undirected(vid n,
                                std::initializer_list<std::pair<vid, vid>> es) {
  EdgeList el(n);
  for (auto [u, v] : es) el.add(u, v);
  BuildOptions b;
  b.symmetrize = true;
  b.dedup = true;
  return build_csr(el, b);
}

/// Build a directed graph from an initializer list of arcs.
inline CsrGraph make_directed(vid n,
                              std::initializer_list<std::pair<vid, vid>> es) {
  EdgeList el(n);
  for (auto [u, v] : es) el.add(u, v);
  BuildOptions b;
  b.symmetrize = false;
  b.dedup = true;
  return build_csr(el, b);
}

/// Serial reference BFS distances (kNoVertex = unreachable).
inline std::vector<vid> reference_bfs_distances(const CsrGraph& g, vid s) {
  std::vector<vid> dist(static_cast<std::size_t>(g.num_vertices()), kNoVertex);
  std::deque<vid> q{s};
  dist[static_cast<std::size_t>(s)] = 0;
  while (!q.empty()) {
    const vid u = q.front();
    q.pop_front();
    for (vid v : g.neighbors(u)) {
      if (dist[static_cast<std::size_t>(v)] == kNoVertex) {
        dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
        q.push_back(v);
      }
    }
  }
  return dist;
}

/// Serial reference connected components (min-id labels), undirected input.
inline std::vector<vid> reference_components(const CsrGraph& g) {
  const vid n = g.num_vertices();
  std::vector<vid> label(static_cast<std::size_t>(n), kNoVertex);
  for (vid s = 0; s < n; ++s) {
    if (label[static_cast<std::size_t>(s)] != kNoVertex) continue;
    std::deque<vid> q{s};
    label[static_cast<std::size_t>(s)] = s;
    while (!q.empty()) {
      const vid u = q.front();
      q.pop_front();
      for (vid v : g.neighbors(u)) {
        if (label[static_cast<std::size_t>(v)] == kNoVertex) {
          label[static_cast<std::size_t>(v)] = s;
          q.push_back(v);
        }
      }
    }
  }
  return label;
}

/// Serial reference Brandes betweenness (all sources, unnormalized,
/// directed-pair counting — each unordered pair contributes twice).
inline std::vector<double> reference_betweenness(const CsrGraph& g) {
  const vid n = g.num_vertices();
  std::vector<double> bc(static_cast<std::size_t>(n), 0.0);
  for (vid s = 0; s < n; ++s) {
    std::vector<double> sigma(static_cast<std::size_t>(n), 0.0);
    std::vector<double> delta(static_cast<std::size_t>(n), 0.0);
    std::vector<vid> dist(static_cast<std::size_t>(n), kNoVertex);
    std::vector<vid> stack;
    std::deque<vid> q{s};
    sigma[static_cast<std::size_t>(s)] = 1.0;
    dist[static_cast<std::size_t>(s)] = 0;
    while (!q.empty()) {
      const vid u = q.front();
      q.pop_front();
      stack.push_back(u);
      for (vid v : g.neighbors(u)) {
        if (dist[static_cast<std::size_t>(v)] == kNoVertex) {
          dist[static_cast<std::size_t>(v)] =
              dist[static_cast<std::size_t>(u)] + 1;
          q.push_back(v);
        }
        if (dist[static_cast<std::size_t>(v)] ==
            dist[static_cast<std::size_t>(u)] + 1) {
          sigma[static_cast<std::size_t>(v)] +=
              sigma[static_cast<std::size_t>(u)];
        }
      }
    }
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      const vid w = *it;
      for (vid v : g.neighbors(w)) {
        if (dist[static_cast<std::size_t>(v)] ==
            dist[static_cast<std::size_t>(w)] - 1) {
          delta[static_cast<std::size_t>(v)] +=
              sigma[static_cast<std::size_t>(v)] /
              sigma[static_cast<std::size_t>(w)] *
              (1.0 + delta[static_cast<std::size_t>(w)]);
        }
      }
      if (w != s) bc[static_cast<std::size_t>(w)] += delta[static_cast<std::size_t>(w)];
    }
  }
  return bc;
}

/// Brute-force k-betweenness by walk enumeration: for every source s and
/// target t, enumerate all level-constrained walks of length <= d(t)+k via
/// DFS over the recurrence's step rule (each step may change BFS depth by
/// at most +1, and the running slack (length - depth) never exceeds k).
/// Credits each *intermediate occurrence* of a vertex, matching the library
/// semantics documented in kbetweenness.hpp. Exponential — tiny graphs only.
inline std::vector<double> brute_force_kbc(const CsrGraph& g, std::int64_t k) {
  const vid n = g.num_vertices();
  std::vector<double> bc(static_cast<std::size_t>(n), 0.0);
  for (vid s = 0; s < n; ++s) {
    const auto dist = reference_bfs_distances(g, s);
    // walks[t] = list of walks (vertex sequences) from s to t within slack k.
    std::map<vid, std::vector<std::vector<vid>>> walks;
    std::vector<vid> cur{s};
    // DFS over walks; a walk may end at any point (every prefix is a walk to
    // its endpoint), so record at each step.
    auto record = [&](const std::vector<vid>& w) {
      walks[w.back()].push_back(w);
    };
    // Iterative DFS with explicit stack of (walk, next neighbor index).
    struct Frame {
      vid v;
      std::size_t next = 0;
    };
    std::vector<Frame> st{{s, 0}};
    record(cur);
    while (!st.empty()) {
      Frame& f = st.back();
      const auto nbrs = g.neighbors(f.v);
      bool descended = false;
      while (f.next < nbrs.size()) {
        const vid u = nbrs[f.next++];
        if (dist[static_cast<std::size_t>(u)] == kNoVertex) continue;
        const std::int64_t len = static_cast<std::int64_t>(cur.size());  // new length
        const std::int64_t slack = len - dist[static_cast<std::size_t>(u)];
        if (slack < 0 || slack > k) continue;
        cur.push_back(u);
        st.push_back({u, 0});
        record(cur);
        descended = true;
        break;
      }
      if (!descended) {
        st.pop_back();
        cur.pop_back();
      }
    }
    // Accumulate pair dependencies.
    for (auto& [t, ws] : walks) {
      if (t == s) continue;
      const double total = static_cast<double>(ws.size());
      std::map<vid, double> through;
      for (const auto& w : ws) {
        for (std::size_t i = 1; i + 1 < w.size(); ++i) {
          if (w[i] == s) continue;  // BC excludes v == s (pairs s != v != t)
          through[w[i]] += 1.0;
        }
      }
      for (auto& [v, cnt] : through) {
        bc[static_cast<std::size_t>(v)] += cnt / total;
      }
    }
  }
  return bc;
}

}  // namespace graphct::testing
