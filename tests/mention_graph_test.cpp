#include "twitter/mention_graph.hpp"

#include <gtest/gtest.h>

namespace graphct::twitter {
namespace {

Tweet tw(std::int64_t id, const std::string& author, const std::string& text) {
  return Tweet{id, author, text, id};
}

MentionGraph build(std::initializer_list<Tweet> tweets) {
  MentionGraphBuilder b;
  for (const auto& t : tweets) b.add(t);
  return std::move(b).build();
}

TEST(MentionGraphTest, SingleMentionMakesOneArc) {
  const auto g = build({tw(1, "alice", "hi @bob")});
  EXPECT_EQ(g.num_users, 2);
  EXPECT_EQ(g.unique_interactions, 1);
  EXPECT_EQ(g.num_tweets, 1);
  EXPECT_EQ(g.tweets_with_mentions, 1);
  const vid a = g.id_of("alice");
  const vid b = g.id_of("bob");
  ASSERT_NE(a, graphct::kNoVertex);
  ASSERT_NE(b, graphct::kNoVertex);
  EXPECT_TRUE(g.directed.has_edge(a, b));
  EXPECT_FALSE(g.directed.has_edge(b, a));
}

TEST(MentionGraphTest, DuplicateInteractionsThrownOut) {
  const auto g = build({tw(1, "alice", "hi @bob"), tw(2, "alice", "yo @bob"),
                        tw(3, "ALICE", "again @BOB")});
  EXPECT_EQ(g.num_tweets, 3);
  EXPECT_EQ(g.unique_interactions, 1);  // the paper's dedup rule
}

TEST(MentionGraphTest, PlainTweetsAddIsolatedAuthors) {
  const auto g = build({tw(1, "alice", "just lunch"), tw(2, "bob", "hi @carol")});
  EXPECT_EQ(g.num_users, 3);
  EXPECT_EQ(g.tweets_with_mentions, 1);
  EXPECT_EQ(g.directed.degree(g.id_of("alice")), 0);
}

TEST(MentionGraphTest, SelfReferenceCounted) {
  const auto g = build({tw(1, "echo", "quoting @echo")});
  EXPECT_EQ(g.self_references, 1);
  EXPECT_EQ(g.unique_interactions, 0);  // self-loops are not interactions
  EXPECT_EQ(g.directed.num_self_loops(), 1);
}

TEST(MentionGraphTest, RetweetCounted) {
  const auto g = build({tw(1, "fan", "RT @hub the news")});
  EXPECT_EQ(g.retweets, 1);
  EXPECT_EQ(g.unique_interactions, 1);
}

TEST(MentionGraphTest, ResponsesAreReciprocatedTweets) {
  const auto g = build({
      tw(1, "a", "question for @b"),   // has a response (b mentions a)
      tw(2, "b", "answer to @a"),      // has a response (a mentions b)
      tw(3, "c", "shoutout @a"),       // no response: a never mentions c
  });
  EXPECT_EQ(g.tweets_with_responses, 2);
}

TEST(MentionGraphTest, MultiMentionTweetCountsOncePerTweet) {
  const auto g = build({
      tw(1, "a", "hey @b and @c"),  // reciprocated via b only
      tw(2, "b", "ok @a"),
  });
  EXPECT_EQ(g.tweets_with_responses, 2);
  EXPECT_EQ(g.unique_interactions, 3);
}

TEST(MentionGraphTest, UndirectedViewMergesDirections) {
  const auto g = build({tw(1, "a", "@b"), tw(2, "b", "@a"), tw(3, "a", "@c")});
  const auto u = g.undirected();
  EXPECT_FALSE(u.directed());
  EXPECT_EQ(u.num_edges(), 2);  // {a,b} and {a,c}
}

TEST(MentionGraphTest, IdOfUnknownUserIsNoVertex) {
  const auto g = build({tw(1, "a", "@b")});
  EXPECT_EQ(g.id_of("nobody"), graphct::kNoVertex);
}

TEST(MentionGraphTest, UsersArrayMatchesIds) {
  const auto g = build({tw(1, "a", "@b and @c")});
  for (vid v = 0; v < g.directed.num_vertices(); ++v) {
    EXPECT_EQ(g.id_of(g.users[static_cast<std::size_t>(v)]), v);
  }
}

TEST(MentionGraphTest, EmptyBuilder) {
  MentionGraphBuilder b;
  const auto g = std::move(b).build();
  EXPECT_EQ(g.num_users, 0);
  EXPECT_EQ(g.directed.num_vertices(), 0);
}

TEST(MentionGraphTest, PaperConversationFigure1) {
  // The Fig. 1 H1N1 exchange: jaketapper <-> dancharles is a conversation.
  const auto g = build({
      tw(1, "jaketapper", "@EdMorrissey Asserting that all thats being done"),
      tw(2, "jaketapper", "@dancharles as someone with a pregnant wife"),
      tw(3, "dancharles", "RT @jaketapper @Slate: Sanjay Gupta has swine flu"),
  });
  const vid jt = g.id_of("jaketapper");
  const vid dc = g.id_of("dancharles");
  EXPECT_TRUE(g.directed.has_edge(jt, dc));
  EXPECT_TRUE(g.directed.has_edge(dc, jt));
  EXPECT_GE(g.tweets_with_responses, 2);
}

}  // namespace
}  // namespace graphct::twitter
