#include "algs/degree.hpp"

#include <gtest/gtest.h>

#include "gen/random_graphs.hpp"
#include "gen/rmat.hpp"
#include "gen/shapes.hpp"
#include "test_support.hpp"

namespace graphct {
namespace {

using testing::make_directed;
using testing::make_undirected;

TEST(DegreeTest, StarDegrees) {
  const auto g = star_graph(6);
  const auto d = degrees(g);
  EXPECT_EQ(d[0], 5);
  for (vid v = 1; v < 6; ++v) EXPECT_EQ(d[static_cast<std::size_t>(v)], 1);
}

TEST(DegreeTest, DirectedOutVsIn) {
  const auto g = make_directed(3, {{0, 1}, {0, 2}, {1, 2}});
  const auto out = degrees(g);
  const auto in = in_degrees(g);
  EXPECT_EQ(out, (std::vector<std::int64_t>{2, 1, 0}));
  EXPECT_EQ(in, (std::vector<std::int64_t>{0, 1, 2}));
}

TEST(DegreeTest, UndirectedInEqualsOut) {
  const auto g = cycle_graph(5);
  EXPECT_EQ(degrees(g), in_degrees(g));
}

TEST(DegreeSummaryTest, MeanAndVariance) {
  const auto g = star_graph(5);  // degrees 4,1,1,1,1
  const auto s = degree_summary(g);
  EXPECT_EQ(s.count, 5);
  EXPECT_DOUBLE_EQ(s.mean, 8.0 / 5.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
}

TEST(DegreeHistogramTest, CountsEveryVertex) {
  const auto g = rmat_graph({.scale = 8, .edge_factor = 4, .seed = 3});
  const auto h = degree_histogram(g);
  EXPECT_EQ(h.total(), g.num_vertices());
}

TEST(DegreeFrequencyTest, CompleteGraphIsSingleSpike) {
  const auto g = complete_graph(7);
  const auto f = degree_frequency(g);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0], (std::pair<std::int64_t, std::int64_t>{6, 7}));
}

TEST(DegreePowerLawTest, RmatIsHeavyTailedVsErdosRenyi) {
  // R-MAT degree distributions are heavy-tailed: their max degree should
  // dwarf an Erdős–Rényi graph's with the same size.
  const auto r = rmat_graph({.scale = 12, .edge_factor = 8, .seed = 5});
  const auto e =
      erdos_renyi(r.num_vertices(), r.num_edges(), 5);
  const auto sr = degree_summary(r);
  const auto se = degree_summary(e);
  EXPECT_GT(sr.max, 4.0 * se.max);
  EXPECT_GT(sr.variance, 4.0 * se.variance);
}

}  // namespace
}  // namespace graphct
