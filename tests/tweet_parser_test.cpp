#include "twitter/tweet_parser.hpp"

#include <gtest/gtest.h>

namespace graphct::twitter {
namespace {

Tweet tw(const std::string& author, const std::string& text) {
  return Tweet{1, author, text, 0};
}

TEST(TweetParserTest, SimpleMention) {
  const auto p = parse_tweet(tw("alice", "hello @bob how are you"));
  EXPECT_EQ(p.author, "alice");
  ASSERT_EQ(p.mentions.size(), 1u);
  EXPECT_EQ(p.mentions[0], "bob");
  EXPECT_FALSE(p.is_retweet);
}

TEST(TweetParserTest, MultipleMentionsInOrder) {
  const auto p = parse_tweet(tw("a", "@zed then @amy then @bob"));
  EXPECT_EQ(p.mentions, (std::vector<std::string>{"zed", "amy", "bob"}));
}

TEST(TweetParserTest, DuplicateMentionsCollapse) {
  const auto p = parse_tweet(tw("a", "@bob and @bob again @BOB"));
  EXPECT_EQ(p.mentions, (std::vector<std::string>{"bob"}));
}

TEST(TweetParserTest, NormalizesCase) {
  const auto p = parse_tweet(tw("ALICE", "cc @JakeTapper"));
  EXPECT_EQ(p.author, "alice");
  EXPECT_EQ(p.mentions[0], "jaketapper");
}

TEST(TweetParserTest, Hashtags) {
  const auto p = parse_tweet(tw("a", "flood pics #atlflood more #ATLflood #rain"));
  EXPECT_EQ(p.hashtags, (std::vector<std::string>{"atlflood", "rain"}));
}

TEST(TweetParserTest, RetweetDetection) {
  const auto p = parse_tweet(tw("dancharles", "RT @jaketapper @Slate: Sanjay Gupta has swine flu"));
  EXPECT_TRUE(p.is_retweet);
  EXPECT_EQ(p.retweet_of, "jaketapper");
  // Both the retweeted source and the nested mention count as mentions.
  EXPECT_EQ(p.mentions, (std::vector<std::string>{"jaketapper", "slate"}));
}

TEST(TweetParserTest, RetweetWithLeadingSpaces) {
  const auto p = parse_tweet(tw("a", "  RT @hub breaking"));
  EXPECT_TRUE(p.is_retweet);
  EXPECT_EQ(p.retweet_of, "hub");
}

TEST(TweetParserTest, RtWithoutAtIsNotRetweet) {
  const auto p = parse_tweet(tw("a", "RT this if you agree"));
  EXPECT_FALSE(p.is_retweet);
}

TEST(TweetParserTest, BareSymbolsIgnored) {
  const auto p = parse_tweet(tw("a", "email me @ home # yes"));
  EXPECT_TRUE(p.mentions.empty());
  EXPECT_TRUE(p.hashtags.empty());
}

TEST(TweetParserTest, EmbeddedAtIsNotAMention) {
  const auto p = parse_tweet(tw("a", "mail me at bob@example.com"));
  EXPECT_TRUE(p.mentions.empty());
}

TEST(TweetParserTest, MentionWithUnderscoreAndDigits) {
  const auto p = parse_tweet(tw("a", "props to @CDC_eHealth and @user123"));
  EXPECT_EQ(p.mentions, (std::vector<std::string>{"cdc_ehealth", "user123"}));
}

TEST(TweetParserTest, PunctuationTerminatesNames) {
  const auto p = parse_tweet(tw("a", "thanks @bob, @carol! and (@dave)"));
  EXPECT_EQ(p.mentions, (std::vector<std::string>{"bob", "carol", "dave"}));
}

TEST(TweetParserTest, SelfMention) {
  const auto p = parse_tweet(tw("echo", "I quote myself @echo all day"));
  ASSERT_EQ(p.mentions.size(), 1u);
  EXPECT_EQ(p.mentions[0], p.author);
}

TEST(TweetParserTest, EmptyText) {
  const auto p = parse_tweet(tw("a", ""));
  EXPECT_TRUE(p.mentions.empty());
  EXPECT_FALSE(p.is_retweet);
}

TEST(TweetParserTest, PaperExampleConversation) {
  // From Fig. 1 of the paper.
  const auto p = parse_tweet(tw(
      "jaketapper",
      "@EdMorrissey Asserting that all thats being done to prevent the "
      "spread of H1N1 is offering that hand-washing advice is just not true."));
  EXPECT_EQ(p.mentions, (std::vector<std::string>{"edmorrissey"}));
  EXPECT_FALSE(p.is_retweet);
}

TEST(NormalizeUsernameTest, Lowercases) {
  EXPECT_EQ(normalize_username("JakeTapper"), "jaketapper");
  EXPECT_EQ(normalize_username("CDC_eHealth"), "cdc_ehealth");
  EXPECT_EQ(normalize_username(""), "");
}

TEST(IsUsernameCharTest, Alphabet) {
  EXPECT_TRUE(is_username_char('a'));
  EXPECT_TRUE(is_username_char('Z'));
  EXPECT_TRUE(is_username_char('5'));
  EXPECT_TRUE(is_username_char('_'));
  EXPECT_FALSE(is_username_char(' '));
  EXPECT_FALSE(is_username_char('-'));
  EXPECT_FALSE(is_username_char('@'));
}

}  // namespace
}  // namespace graphct::twitter
