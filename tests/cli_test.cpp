#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace graphct {
namespace {

Cli make(std::initializer_list<const char*> args,
         std::map<std::string, std::string> spec) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data(), std::move(spec));
}

TEST(CliTest, ParsesSpaceSeparatedValues) {
  auto cli = make({"--scale", "20"}, {{"scale", "rmat scale"}});
  EXPECT_TRUE(cli.has("scale"));
  EXPECT_EQ(cli.get("scale", std::int64_t{0}), 20);
}

TEST(CliTest, ParsesEqualsValues) {
  auto cli = make({"--frac=0.25"}, {{"frac", "fraction"}});
  EXPECT_DOUBLE_EQ(cli.get("frac", 0.0), 0.25);
}

TEST(CliTest, BooleanFlags) {
  auto cli = make({"--verbose"}, {{"verbose", "chatty!"}});
  EXPECT_TRUE(cli.has("verbose"));
}

TEST(CliTest, DefaultsWhenAbsent) {
  auto cli = make({}, {{"scale", "s"}, {"name", "n"}});
  EXPECT_FALSE(cli.has("scale"));
  EXPECT_EQ(cli.get("scale", std::int64_t{14}), 14);
  EXPECT_EQ(cli.get("name", std::string("x")), "x");
}

TEST(CliTest, UnknownFlagThrows) {
  EXPECT_THROW(make({"--bogus", "1"}, {{"scale", "s"}}), Error);
}

TEST(CliTest, MissingValueThrows) {
  EXPECT_THROW(make({"--scale"}, {{"scale", "s"}}), Error);
}

TEST(CliTest, BadIntegerThrows) {
  auto cli = make({"--scale", "abc"}, {{"scale", "s"}});
  EXPECT_THROW((void)cli.get("scale", std::int64_t{0}), Error);
}

TEST(CliTest, QueryingUndeclaredFlagThrows) {
  auto cli = make({}, {{"scale", "s"}});
  EXPECT_THROW((void)cli.has("other"), Error);
}

TEST(CliTest, PositionalArguments) {
  auto cli = make({"file1.txt", "--scale", "3", "file2.txt"}, {{"scale", "s"}});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "file1.txt");
  EXPECT_EQ(cli.positional()[1], "file2.txt");
}

TEST(CliTest, HelpListsFlags) {
  auto cli = make({}, {{"scale", "rmat scale"}, {"quick", "fast mode!"}});
  const std::string h = cli.help("prog");
  EXPECT_NE(h.find("--scale"), std::string::npos);
  EXPECT_NE(h.find("--quick"), std::string::npos);
  EXPECT_NE(h.find("rmat scale"), std::string::npos);
}

}  // namespace
}  // namespace graphct
