#include "util/bitmap.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace graphct {
namespace {

TEST(BitmapTest, EmptyBitmap) {
  Bitmap bm;
  EXPECT_EQ(bm.size(), 0);
  EXPECT_EQ(bm.num_words(), 0);
  EXPECT_EQ(bm.count(), 0);
}

TEST(BitmapTest, SetTestClear) {
  Bitmap bm(130);  // spans three words, last one partial
  bm.clear();
  EXPECT_EQ(bm.count(), 0);
  bm.set(0);
  bm.set(63);
  bm.set(64);
  bm.set(129);
  EXPECT_TRUE(bm.test(0));
  EXPECT_TRUE(bm.test(63));
  EXPECT_TRUE(bm.test(64));
  EXPECT_TRUE(bm.test(129));
  EXPECT_FALSE(bm.test(1));
  EXPECT_FALSE(bm.test(128));
  EXPECT_EQ(bm.count(), 4);
  bm.clear();
  EXPECT_EQ(bm.count(), 0);
  EXPECT_FALSE(bm.test(63));
}

TEST(BitmapTest, ResizeGrowsAndKeepsCapacity) {
  Bitmap bm(10);
  bm.clear();
  bm.set(3);
  bm.resize(1000);  // content unspecified after resize — clear before use
  bm.clear();
  EXPECT_EQ(bm.size(), 1000);
  EXPECT_EQ(bm.count(), 0);
  bm.resize(5);  // shrink keeps storage, just narrows the live range
  bm.clear();
  bm.set(4);
  EXPECT_EQ(bm.count(), 1);
}

TEST(BitmapTest, LiveMaskCoversPartialLastWord) {
  Bitmap bm(70);  // word 0 full, word 1 has 6 live bits
  EXPECT_EQ(bm.live_mask(0), ~std::uint64_t{0});
  EXPECT_EQ(bm.live_mask(1), (std::uint64_t{1} << 6) - 1);
  Bitmap exact(128);
  EXPECT_EQ(exact.live_mask(1), ~std::uint64_t{0});
}

TEST(BitmapTest, WordAccessors) {
  Bitmap bm(128);
  bm.clear();
  bm.set_in_word(1, 5);
  EXPECT_TRUE(bm.test(64 + 5));
  bm.store_word(0, 0xFFu);
  EXPECT_EQ(bm.word(0), 0xFFu);
  EXPECT_EQ(bm.count(), 9);
}

TEST(BitmapTest, SetAtomicMatchesSet) {
  Bitmap bm(256);
  bm.clear();
  for (std::int64_t i = 0; i < 256; i += 3) bm.set_atomic(i);
  for (std::int64_t i = 0; i < 256; ++i) {
    EXPECT_EQ(bm.test(i), i % 3 == 0) << "bit " << i;
  }
}

TEST(BitmapTest, CompactEmitsAscendingIndices) {
  const std::int64_t n = 10'000;
  Bitmap bm(n);
  bm.clear();
  std::vector<std::int64_t> expect;
  Rng rng(42);
  for (std::int64_t i = 0; i < n; ++i) {
    if (rng.next_below(7) == 0) {
      bm.set(i);
      expect.push_back(i);
    }
  }
  std::vector<std::int64_t> out(static_cast<std::size_t>(n), -1);
  std::vector<std::int64_t> scratch;
  const std::int64_t cnt = compact_set_bits(bm, out.data(), scratch);
  ASSERT_EQ(cnt, static_cast<std::int64_t>(expect.size()));
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(out[i], expect[i]) << "position " << i;
  }
}

TEST(BitmapTest, CompactIsThreadCountInvariant) {
  const std::int64_t n = 50'000;
  Bitmap bm(n);
  bm.clear();
  for (std::int64_t i = 0; i < n; i += 11) bm.set(i);
  std::vector<std::int64_t> scratch;

  std::vector<std::int64_t> serial(static_cast<std::size_t>(n));
  set_num_threads(1);
  const std::int64_t c1 = compact_set_bits(bm, serial.data(), scratch);

  std::vector<std::int64_t> parallel(static_cast<std::size_t>(n));
  set_num_threads(8);
  const std::int64_t c8 = compact_set_bits(bm, parallel.data(), scratch);
  set_num_threads(0);

  ASSERT_EQ(c1, c8);
  for (std::int64_t i = 0; i < c1; ++i) {
    EXPECT_EQ(serial[static_cast<std::size_t>(i)],
              parallel[static_cast<std::size_t>(i)]);
  }
}

TEST(BitmapTest, CompactFullAndEmpty) {
  Bitmap bm(77);
  bm.clear();
  std::vector<std::int64_t> out(77);
  std::vector<std::int64_t> scratch;
  EXPECT_EQ(compact_set_bits(bm, out.data(), scratch), 0);
  for (std::int64_t i = 0; i < 77; ++i) bm.set(i);
  ASSERT_EQ(compact_set_bits(bm, out.data(), scratch), 77);
  for (std::int64_t i = 0; i < 77; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace graphct
