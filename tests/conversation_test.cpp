#include "twitter/conversation.hpp"

#include <gtest/gtest.h>

#include <set>

namespace graphct::twitter {
namespace {

Tweet tw(std::int64_t id, const std::string& author, const std::string& text) {
  return Tweet{id, author, text, id};
}

MentionGraph build(std::initializer_list<Tweet> tweets) {
  MentionGraphBuilder b;
  for (const auto& t : tweets) b.add(t);
  return std::move(b).build();
}

// A broadcast star (fans citing a hub) with one embedded conversation pair.
MentionGraph broadcast_with_conversation() {
  MentionGraphBuilder b;
  std::int64_t id = 1;
  for (int f = 0; f < 10; ++f) {
    b.add(tw(id++, "fan" + std::to_string(f), "RT @hub the news"));
  }
  b.add(tw(id++, "alice", "what do you think @bob"));
  b.add(tw(id++, "bob", "@alice I think so"));
  return std::move(b).build();
}

TEST(SubcommunityTest, MutualFilterStripsBroadcast) {
  const auto mg = broadcast_with_conversation();
  const auto r = subcommunity_filter(mg);
  // 13 users total (10 fans + hub + alice + bob).
  EXPECT_EQ(r.original_vertices, 13);
  // Only the reciprocated alice<->bob pair survives.
  EXPECT_EQ(r.mutual_vertices, 2);
  EXPECT_EQ(r.mutual_edges, 1);
  EXPECT_EQ(r.mutual_lwcc_vertices, 2);
  EXPECT_GT(r.reduction_factor, 6.0);
}

TEST(SubcommunityTest, OrigIdsPointIntoMentionGraph) {
  const auto mg = broadcast_with_conversation();
  const auto r = subcommunity_filter(mg);
  std::set<std::string> names;
  for (vid v : r.mutual.orig_ids) {
    names.insert(mg.users[static_cast<std::size_t>(v)]);
  }
  EXPECT_EQ(names, (std::set<std::string>{"alice", "bob"}));
  // Composed relabeling for the LWCC too.
  std::set<std::string> lwcc_names;
  for (vid v : r.mutual_lwcc.orig_ids) {
    lwcc_names.insert(mg.users[static_cast<std::size_t>(v)]);
  }
  EXPECT_EQ(lwcc_names, names);
}

TEST(SubcommunityTest, NoConversationsMeansEmptyMutualGraph) {
  const auto mg = build({tw(1, "a", "@hub"), tw(2, "b", "@hub")});
  const auto r = subcommunity_filter(mg);
  EXPECT_EQ(r.mutual_vertices, 0);
  EXPECT_EQ(r.mutual_lwcc_vertices, 0);
  EXPECT_DOUBLE_EQ(r.reduction_factor, 3.0);  // degenerate: reports original
}

TEST(SubcommunityTest, LwccOfOriginalComputed) {
  const auto mg = build({tw(1, "a", "@b"), tw(2, "c", "@d"), tw(3, "b", "@e")});
  const auto r = subcommunity_filter(mg);
  EXPECT_EQ(r.original_vertices, 5);
  EXPECT_EQ(r.lwcc_vertices, 3);  // a-b-e
  EXPECT_EQ(r.lwcc_edges, 2);
}

TEST(SubcommunityTest, SelfReferenceIsNotAConversation) {
  const auto mg = build({tw(1, "echo", "@echo"), tw(2, "a", "@b"), tw(3, "b", "@a")});
  const auto r = subcommunity_filter(mg);
  EXPECT_EQ(r.mutual_vertices, 2);  // only a<->b
}

TEST(SubcommunityTest, TwoConversationClustersLwccPicksLarger) {
  const auto mg = build({
      tw(1, "a", "@b"), tw(2, "b", "@a"),            // pair
      tw(3, "x", "@y"), tw(4, "y", "@x"),            // triangle x-y-z
      tw(5, "y", "@z"), tw(6, "z", "@y"),
      tw(7, "z", "@x"), tw(8, "x", "@z"),
  });
  const auto r = subcommunity_filter(mg);
  EXPECT_EQ(r.mutual_vertices, 5);
  EXPECT_EQ(r.mutual_lwcc_vertices, 3);
  EXPECT_EQ(r.mutual_lwcc_edges, 3);
}

TEST(SccConversationsTest, FindsThreeWayLoopTheMutualFilterMisses) {
  // A -> B -> C -> A is a conversation ring with no reciprocated pair.
  const auto mg = build({
      tw(1, "a", "@b right?"),
      tw(2, "b", "@c agree?"),
      tw(3, "c", "@a yes!"),
      tw(4, "fan", "@hub news"),
  });
  const auto mutual = subcommunity_filter(mg);
  EXPECT_EQ(mutual.mutual_vertices, 0);  // mutual filter finds nothing
  const auto sccs = scc_conversations(mg);
  ASSERT_EQ(sccs.size(), 1u);
  EXPECT_EQ(sccs[0].graph.num_vertices(), 3);
  std::set<std::string> names;
  for (vid v : sccs[0].orig_ids) {
    names.insert(mg.users[static_cast<std::size_t>(v)]);
  }
  EXPECT_EQ(names, (std::set<std::string>{"a", "b", "c"}));
}

TEST(SccConversationsTest, SupersetOfMutualPairs) {
  const auto mg = build({tw(1, "a", "@b"), tw(2, "b", "@a"),
                         tw(3, "x", "@y"), tw(4, "y", "@x")});
  const auto sccs = scc_conversations(mg);
  EXPECT_EQ(sccs.size(), 2u);
  for (const auto& s : sccs) EXPECT_EQ(s.graph.num_vertices(), 2);
}

TEST(SccConversationsTest, SortsLargestFirstAndRespectsMinSize) {
  const auto mg = build({
      tw(1, "a", "@b"), tw(2, "b", "@c"), tw(3, "c", "@d"), tw(4, "d", "@a"),
      tw(5, "x", "@y"), tw(6, "y", "@x"),
      tw(7, "solo", "@hub"),
  });
  const auto sccs = scc_conversations(mg, 2);
  ASSERT_EQ(sccs.size(), 2u);
  EXPECT_EQ(sccs[0].graph.num_vertices(), 4);
  EXPECT_EQ(sccs[1].graph.num_vertices(), 2);
  const auto big_only = scc_conversations(mg, 3);
  EXPECT_EQ(big_only.size(), 1u);
}

TEST(RankUsersTest, HubDominatesBroadcastGraph) {
  const auto mg = broadcast_with_conversation();
  const auto ranked = rank_users_by_betweenness(mg, 3);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].name, "hub");
  EXPECT_GT(ranked[0].score, 0.0);
  EXPECT_GE(ranked[0].score, ranked[1].score);
  EXPECT_GE(ranked[1].score, ranked[2].score);
}

TEST(RankUsersTest, CountClamps) {
  const auto mg = build({tw(1, "a", "@b")});
  const auto ranked = rank_users_by_betweenness(mg, 100);
  EXPECT_EQ(ranked.size(), 2u);
}

TEST(RankUsersTest, VertexIdsMatchNames) {
  const auto mg = broadcast_with_conversation();
  for (const auto& ru : rank_users_by_betweenness(mg, 5)) {
    EXPECT_EQ(mg.users[static_cast<std::size_t>(ru.vertex)], ru.name);
  }
}

}  // namespace
}  // namespace graphct::twitter
