#include "algs/clustering.hpp"

#include <gtest/gtest.h>

#include "gen/random_graphs.hpp"
#include "gen/shapes.hpp"
#include "test_support.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace graphct {
namespace {

using testing::make_directed;
using testing::make_undirected;

TEST(ClusteringTest, TriangleGraph) {
  const auto g = complete_graph(3);
  const auto r = clustering_coefficients(g);
  EXPECT_EQ(r.total_triangles, 1);
  for (vid v = 0; v < 3; ++v) {
    EXPECT_EQ(r.triangles[static_cast<std::size_t>(v)], 1);
    EXPECT_DOUBLE_EQ(r.coefficient[static_cast<std::size_t>(v)], 1.0);
  }
  EXPECT_DOUBLE_EQ(r.global_clustering, 1.0);
  EXPECT_DOUBLE_EQ(r.mean_local_clustering, 1.0);
}

TEST(ClusteringTest, CompleteGraphCounts) {
  const auto g = complete_graph(6);
  const auto r = clustering_coefficients(g);
  EXPECT_EQ(r.total_triangles, 20);  // C(6,3)
  EXPECT_DOUBLE_EQ(r.global_clustering, 1.0);
}

TEST(ClusteringTest, TreeHasNoTriangles) {
  const auto g = balanced_tree(3, 4);
  const auto r = clustering_coefficients(g);
  EXPECT_EQ(r.total_triangles, 0);
  EXPECT_DOUBLE_EQ(r.global_clustering, 0.0);
}

TEST(ClusteringTest, PathCoefficients) {
  const auto g = path_graph(4);
  const auto r = clustering_coefficients(g);
  EXPECT_EQ(r.total_triangles, 0);
  for (double c : r.coefficient) EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(ClusteringTest, TriangleWithPendant) {
  // Triangle 0-1-2 plus pendant 3 on vertex 0.
  const auto g = make_undirected(4, {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  const auto r = clustering_coefficients(g);
  EXPECT_EQ(r.total_triangles, 1);
  EXPECT_DOUBLE_EQ(r.coefficient[0], 1.0 / 3.0);  // one of three pairs closed
  EXPECT_DOUBLE_EQ(r.coefficient[1], 1.0);
  EXPECT_DOUBLE_EQ(r.coefficient[3], 0.0);
  // Global: 3*1 triangles / (3+1+1+0... wedges: d0=3 ->3, d1=2 ->1, d2=2 ->1,
  // d3=1 ->0; total 5). 3/5.
  EXPECT_DOUBLE_EQ(r.global_clustering, 3.0 / 5.0);
}

TEST(ClusteringTest, SelfLoopIgnored) {
  const auto g = make_undirected(3, {{0, 1}, {1, 2}, {0, 2}, {1, 1}});
  const auto r = clustering_coefficients(g);
  EXPECT_EQ(r.total_triangles, 1);
  EXPECT_DOUBLE_EQ(r.coefficient[1], 1.0);  // self-loop must not inflate deg
}

TEST(ClusteringTest, DirectedThrows) {
  const auto g = make_directed(3, {{0, 1}});
  EXPECT_THROW(clustering_coefficients(g), Error);
}

TEST(ClusteringTest, StarGraphDegreeSkew) {
  // A star is the worst case for undirected wedge counting (the hub has
  // O(n^2) wedges) and the best case for the degree-ordered direction: every
  // edge points spoke -> hub, forward adjacency lists have length <= 1, and
  // no intersection ever runs. Zero triangles either way.
  const auto g = star_graph(500);
  const auto r = clustering_coefficients(g);
  EXPECT_EQ(r.total_triangles, 0);
  for (std::int64_t t : r.triangles) EXPECT_EQ(t, 0);
  EXPECT_DOUBLE_EQ(r.coefficient[0], 0.0);
}

TEST(ClusteringTest, StarWithRimTriangles) {
  // Star plus a rim edge between consecutive spokes: each rim edge closes
  // exactly one triangle through the hub.
  const vid spokes = 40;
  EdgeList el(spokes + 1);
  for (vid s = 1; s <= spokes; ++s) el.add(0, s);
  for (vid s = 1; s < spokes; ++s) el.add(s, s + 1);
  BuildOptions b;
  b.symmetrize = true;
  b.dedup = true;
  const auto g = build_csr(el, b);
  const auto r = clustering_coefficients(g);
  EXPECT_EQ(r.total_triangles, spokes - 1);
  EXPECT_EQ(r.triangles[0], spokes - 1);  // hub is in every triangle
}

TEST(ClusteringTest, ThreadCountInvariant) {
  const auto g = erdos_renyi(800, 6000, 19);
  set_num_threads(1);
  const auto serial = clustering_coefficients(g);
  set_num_threads(8);
  const auto parallel = clustering_coefficients(g);
  set_num_threads(0);
  EXPECT_EQ(parallel.total_triangles, serial.total_triangles);
  EXPECT_EQ(parallel.triangles, serial.triangles);
}

TEST(ClusteringTest, WattsStrogatzRingIsClustered) {
  // The unrewired ring lattice (p=0) with k=3 has high clustering (0.6).
  const auto ring = watts_strogatz(200, 3, 0.0, 3);
  const auto r = clustering_coefficients(ring);
  EXPECT_NEAR(r.mean_local_clustering, 0.6, 0.01);
  // Heavy rewiring destroys clustering.
  const auto rewired = watts_strogatz(200, 3, 1.0, 3);
  const auto r2 = clustering_coefficients(rewired);
  EXPECT_LT(r2.mean_local_clustering, 0.2);
}

// Property: per-vertex triangle counts sum to 3x the total; coefficients lie
// in [0,1]; brute-force triple check on small random graphs.
class ClusteringPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusteringPropertyTest, MatchesBruteForce) {
  const auto g = erdos_renyi(40, 150, GetParam());
  const auto r = clustering_coefficients(g);

  std::int64_t brute = 0;
  const vid n = g.num_vertices();
  std::vector<std::int64_t> per(static_cast<std::size_t>(n), 0);
  for (vid a = 0; a < n; ++a) {
    for (vid b = a + 1; b < n; ++b) {
      if (!g.has_edge(a, b)) continue;
      for (vid c = b + 1; c < n; ++c) {
        if (g.has_edge(a, c) && g.has_edge(b, c)) {
          ++brute;
          ++per[static_cast<std::size_t>(a)];
          ++per[static_cast<std::size_t>(b)];
          ++per[static_cast<std::size_t>(c)];
        }
      }
    }
  }
  EXPECT_EQ(r.total_triangles, brute);
  EXPECT_EQ(r.triangles, per);
  for (double c : r.coefficient) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, ClusteringPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace graphct
