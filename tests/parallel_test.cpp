#include "util/parallel.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <numeric>
#include <vector>

namespace graphct {
namespace {

TEST(FetchAddTest, ReturnsPreviousValueAndAccumulates) {
  std::int64_t x = 10;
  EXPECT_EQ(fetch_add(x, 5), 10);
  EXPECT_EQ(x, 15);
  EXPECT_EQ(fetch_add(x, -3), 15);
  EXPECT_EQ(x, 12);
}

TEST(FetchAddTest, DoubleVariant) {
  double x = 1.5;
  EXPECT_DOUBLE_EQ(fetch_add(x, 2.25), 1.5);
  EXPECT_DOUBLE_EQ(x, 3.75);
}

TEST(FetchAddTest, ConcurrentCountingIsExact) {
  std::int64_t counter = 0;
#pragma omp parallel for
  for (int i = 0; i < 100000; ++i) {
    fetch_add(counter, 1);
  }
  EXPECT_EQ(counter, 100000);
}

TEST(CompareAndSwapTest, SucceedsOnlyOnMatch) {
  std::int64_t x = 5;
  EXPECT_TRUE(compare_and_swap(x, 5, 9));
  EXPECT_EQ(x, 9);
  EXPECT_FALSE(compare_and_swap(x, 5, 11));
  EXPECT_EQ(x, 9);
}

TEST(AtomicMinTest, OnlyDecreases) {
  std::int64_t x = 10;
  EXPECT_TRUE(atomic_min(x, 3));
  EXPECT_EQ(x, 3);
  EXPECT_FALSE(atomic_min(x, 7));
  EXPECT_EQ(x, 3);
  EXPECT_FALSE(atomic_min(x, 3));
  EXPECT_EQ(x, 3);
}

TEST(ScanTest, EmptyInput) {
  std::vector<std::int64_t> v;
  EXPECT_EQ(exclusive_scan_inplace(v), 0);
}

TEST(ScanTest, SingleElement) {
  std::vector<std::int64_t> v{7};
  EXPECT_EQ(exclusive_scan_inplace(v), 7);
  EXPECT_EQ(v[0], 0);
}

TEST(ScanTest, KnownSequence) {
  std::vector<std::int64_t> v{1, 2, 3, 4};
  EXPECT_EQ(exclusive_scan_inplace(v), 10);
  EXPECT_EQ(v, (std::vector<std::int64_t>{0, 1, 3, 6}));
}

TEST(ScanTest, MatchesStdExclusiveScanOnLargeInput) {
  std::vector<std::int64_t> v(100001);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<std::int64_t>((i * 2654435761u) % 97);
  }
  std::vector<std::int64_t> expect(v.size());
  std::exclusive_scan(v.begin(), v.end(), expect.begin(), std::int64_t{0});
  const std::int64_t total = std::accumulate(v.begin(), v.end(), std::int64_t{0});
  std::vector<std::int64_t> got(v.size());
  EXPECT_EQ(exclusive_scan(std::span<const std::int64_t>(v.data(), v.size()),
                           std::span<std::int64_t>(got.data(), got.size())),
            total);
  EXPECT_EQ(got, expect);
}

TEST(ScanTest, InPlaceAliasing) {
  std::vector<std::int64_t> v(1000, 1);
  EXPECT_EQ(exclusive_scan_inplace(v), 1000);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v[i], static_cast<std::int64_t>(i));
  }
}

TEST(ScanTest, CorrectTotalInsideParallelRegion) {
  // Inside an enclosing parallel region the scan's own region collapses to
  // a single thread (nesting is off); the total must come from the actual
  // team size, not the configured thread count. Regression: the coarse bc
  // engine calls the level compactor — and through it this scan — from
  // worker threads, and the stale block_sum[num_threads()] slot returned 0,
  // silently truncating every BFS level to empty.
  set_num_threads(4);
  std::vector<std::int64_t> totals(4, -1);
#pragma omp parallel num_threads(4)
  {
    const int t = omp_get_thread_num();
    std::vector<std::int64_t> v(1000, 1);
    totals[static_cast<std::size_t>(t)] = exclusive_scan_inplace(v);
  }
  set_num_threads(0);
  for (const auto total : totals) EXPECT_EQ(total, 1000);
}

TEST(ReduceTest, SumAndMax) {
  std::vector<std::int64_t> v{3, 1, 4, 1, 5, 9, 2, 6};
  EXPECT_EQ(reduce_sum(std::span<const std::int64_t>(v.data(), v.size())), 31);
  EXPECT_EQ(reduce_max(std::span<const std::int64_t>(v.data(), v.size())), 9);
  std::vector<std::int64_t> empty;
  EXPECT_EQ(reduce_sum(std::span<const std::int64_t>(empty.data(), 0)), 0);
  EXPECT_EQ(reduce_max(std::span<const std::int64_t>(empty.data(), 0), -7), -7);
}

TEST(ReduceTest, DoubleSum) {
  std::vector<double> v(1000, 0.5);
  EXPECT_DOUBLE_EQ(reduce_sum(std::span<const double>(v.data(), v.size())),
                   500.0);
}

TEST(ParallelFillTest, FillsEveryEntry) {
  std::vector<std::int64_t> v(4567, 0);
  parallel_fill(std::span<std::int64_t>(v.data(), v.size()), -3);
  for (auto x : v) ASSERT_EQ(x, -3);
  std::vector<double> d(123, 0.0);
  parallel_fill(std::span<double>(d.data(), d.size()), 2.5);
  for (auto x : d) ASSERT_DOUBLE_EQ(x, 2.5);
}

TEST(ThreadsTest, NumThreadsPositive) { EXPECT_GE(num_threads(), 1); }

}  // namespace
}  // namespace graphct
