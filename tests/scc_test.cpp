#include "algs/scc.hpp"

#include <gtest/gtest.h>

#include <set>

#include "algs/connected_components.hpp"
#include "test_support.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace graphct {
namespace {

using testing::make_directed;
using testing::make_undirected;

TEST(SccTest, DirectedCycleIsOneScc) {
  const auto g = make_directed(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const auto labels = strongly_connected_components(g);
  for (vid v = 0; v < 4; ++v) {
    EXPECT_EQ(labels[static_cast<std::size_t>(v)], 0);
  }
}

TEST(SccTest, DirectedPathIsAllSingletons) {
  const auto g = make_directed(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto labels = strongly_connected_components(g);
  for (vid v = 0; v < 4; ++v) {
    EXPECT_EQ(labels[static_cast<std::size_t>(v)], v);
  }
  EXPECT_EQ(count_components(labels), 4);
  EXPECT_EQ(count_components(labels, 2), 0);
}

TEST(SccTest, MutualPairIsAnScc) {
  // The paper's conversation filter is the 2-cycle special case.
  const auto g = make_directed(4, {{0, 1}, {1, 0}, {1, 2}, {2, 3}});
  const auto labels = strongly_connected_components(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[2], 2);
  EXPECT_EQ(labels[3], 3);
}

TEST(SccTest, TwoCyclesJoinedOneWay) {
  // Cycle {0,1,2} -> cycle {3,4,5}: two SCCs despite weak connectivity.
  const auto g = make_directed(6, {{0, 1}, {1, 2}, {2, 0},
                                   {3, 4}, {4, 5}, {5, 3},
                                   {2, 3}});
  const auto labels = strongly_connected_components(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_EQ(labels[4], labels[5]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_EQ(count_components(labels, 3), 2);
}

TEST(SccTest, SelfLoopIsSingletonScc) {
  const auto g = make_directed(2, {{0, 0}, {0, 1}});
  const auto labels = strongly_connected_components(g);
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[1], 1);
}

TEST(SccTest, LabelsAreCanonicalMinIds) {
  const auto g = make_directed(5, {{4, 2}, {2, 4}, {1, 3}, {3, 1}, {0, 1}});
  const auto labels = strongly_connected_components(g);
  EXPECT_EQ(labels[2], 2);
  EXPECT_EQ(labels[4], 2);
  EXPECT_EQ(labels[1], 1);
  EXPECT_EQ(labels[3], 1);
  EXPECT_EQ(labels[0], 0);
}

TEST(SccTest, UndirectedThrows) {
  const auto g = make_undirected(3, {{0, 1}});
  EXPECT_THROW(strongly_connected_components(g), Error);
}

TEST(SccTest, LargestSccExtraction) {
  const auto g = make_directed(7, {{0, 1}, {1, 2}, {2, 0},   // triangle
                                   {3, 4}, {4, 3},           // pair
                                   {5, 6}});                 // singletons
  const auto sub = largest_scc(g);
  EXPECT_EQ(sub.graph.num_vertices(), 3);
  EXPECT_EQ(sub.orig_ids, (std::vector<vid>{0, 1, 2}));
  EXPECT_TRUE(sub.graph.directed());
  EXPECT_TRUE(sub.graph.has_edge(0, 1));
}

// Property: SCC labels agree with brute-force pairwise reachability on
// small random digraphs.
class SccPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SccPropertyTest, MatchesPairwiseReachability) {
  Rng rng(GetParam());
  const vid n = 8 + static_cast<vid>(rng.next_below(20));
  EdgeList el(n);
  const std::int64_t m = n + static_cast<std::int64_t>(rng.next_below(
                                 static_cast<std::uint64_t>(2 * n)));
  for (std::int64_t i = 0; i < m; ++i) {
    el.add(static_cast<vid>(rng.next_below(static_cast<std::uint64_t>(n))),
           static_cast<vid>(rng.next_below(static_cast<std::uint64_t>(n))));
  }
  BuildOptions b;
  b.symmetrize = false;
  const auto g = build_csr(el, b);

  // Floyd-Warshall reachability.
  std::vector<std::vector<char>> reach(
      static_cast<std::size_t>(n),
      std::vector<char>(static_cast<std::size_t>(n), 0));
  for (vid v = 0; v < n; ++v) {
    reach[static_cast<std::size_t>(v)][static_cast<std::size_t>(v)] = 1;
    for (vid u : g.neighbors(v)) {
      reach[static_cast<std::size_t>(v)][static_cast<std::size_t>(u)] = 1;
    }
  }
  for (vid k = 0; k < n; ++k) {
    for (vid i = 0; i < n; ++i) {
      if (!reach[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)]) continue;
      for (vid j = 0; j < n; ++j) {
        if (reach[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)]) {
          reach[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = 1;
        }
      }
    }
  }

  const auto labels = strongly_connected_components(g);
  for (vid i = 0; i < n; ++i) {
    for (vid j = 0; j < n; ++j) {
      const bool same_scc =
          labels[static_cast<std::size_t>(i)] == labels[static_cast<std::size_t>(j)];
      const bool mutual =
          reach[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] &&
          reach[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)];
      EXPECT_EQ(same_scc, mutual) << i << " vs " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDigraphs, SccPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace graphct
