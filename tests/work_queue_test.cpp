#include "util/work_queue.hpp"

#include <gtest/gtest.h>

#include <omp.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "util/parallel.hpp"

namespace graphct {
namespace {

TEST(WorkQueueTest, FillCoversRangeExactlyOnce) {
  WorkQueue q;
  q.reset(4);
  q.fill(10, 273, 16);  // deliberately not a multiple of the chunk size

  std::vector<int> hits(273, 0);
  WorkChunk c;
  for (int t = 0; t < 4; ++t) {
    while (q.pop(t, c)) {
      ASSERT_LT(c.begin, c.end);
      for (std::int64_t i = c.begin; i < c.end; ++i) {
        hits[static_cast<std::size_t>(i)]++;
      }
    }
  }
  for (std::int64_t i = 0; i < 10; ++i) EXPECT_EQ(hits[i], 0);
  for (std::int64_t i = 10; i < 273; ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(WorkQueueTest, OwnerPopsAscending) {
  WorkQueue q;
  q.reset(2);
  q.fill(0, 100, 8);
  WorkChunk c;
  std::int64_t prev = -1;
  while (q.pop(0, c)) {
    EXPECT_GT(c.begin, prev);
    prev = c.begin;
  }
}

TEST(WorkQueueTest, EmptyQueueTerminates) {
  WorkQueue q;
  q.reset(3);
  WorkChunk c;
  for (int t = 0; t < 3; ++t) {
    EXPECT_FALSE(q.pop(t, c));
    EXPECT_FALSE(q.steal(t, c));
    EXPECT_FALSE(q.pop_or_steal(t, c));
  }
  // fill() of an empty range leaves every deque empty too.
  q.fill(5, 5, 4);
  EXPECT_EQ(q.chunks_queued(), 0);
  EXPECT_FALSE(q.pop_or_steal(0, c));
}

TEST(WorkQueueTest, StealTakesHalfOfVictim) {
  WorkQueue q;
  // Everything lands in deque 0: 8 chunks. A thief steal takes ceil(8/2)=4,
  // returns one and parks 3 in its own deque.
  q.reset(2);
  for (int i = 0; i < 8; ++i) {
    q.push(0, {i * 10, i * 10 + 10});
  }
  WorkChunk c;
  ASSERT_TRUE(q.steal(1, c));
  EXPECT_EQ(q.steals(), 1);
  EXPECT_EQ(q.chunks_queued(), 7);  // 4 left with the victim, 3 parked

  // The thief drains its parked chunks before stealing again.
  std::set<std::int64_t> thief_begins{c.begin};
  while (q.pop(1, c)) thief_begins.insert(c.begin);
  EXPECT_EQ(thief_begins.size(), 4u);

  std::set<std::int64_t> victim_begins;
  while (q.pop(0, c)) victim_begins.insert(c.begin);
  EXPECT_EQ(victim_begins.size(), 4u);
  // Disjoint halves covering all 8 chunks.
  for (auto b : thief_begins) EXPECT_EQ(victim_begins.count(b), 0u) << b;
}

TEST(WorkQueueTest, ConcurrentDrainProcessesEverythingOnce) {
  // All chunks start on queue 0, so every other thread must steal; the
  // atomic per-item counters prove exactly-once execution under contention.
  const int nthreads = std::max(2, std::min(8, omp_get_max_threads() * 2));
  constexpr std::int64_t kItems = 1 << 14;
  WorkQueue q;
  q.reset(nthreads);
  for (std::int64_t b = 0; b < kItems; b += 32) {
    q.push(0, {b, std::min<std::int64_t>(kItems, b + 32)});
  }

  std::vector<std::atomic<int>> hits(kItems);
  for (auto& h : hits) h.store(0);
#pragma omp parallel num_threads(nthreads)
  {
    const int t = omp_get_thread_num();
    WorkChunk c;
    while (q.pop_or_steal(t, c)) {
      for (std::int64_t i = c.begin; i < c.end; ++i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1,
                                                    std::memory_order_relaxed);
      }
    }
  }
  for (std::int64_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
  }
  EXPECT_EQ(q.chunks_queued(), 0);
  // With the skew above (all work on one deque), a multi-thread drain must
  // have stolen at least once.
  if (omp_get_max_threads() > 1) EXPECT_GE(q.steals(), 1);
}

TEST(WorkQueueTest, StealingForCoversRange) {
  WorkQueue q;
  const std::int64_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  stealing_for(q, 0, n, 64, /*serial_below=*/1, num_threads(),
               [&](std::int64_t b, std::int64_t e) {
                 for (std::int64_t i = b; i < e; ++i) {
                   hits[static_cast<std::size_t>(i)].fetch_add(
                       1, std::memory_order_relaxed);
                 }
               });
  for (std::int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
  }
}

TEST(WorkQueueTest, StealingForSerialBelowRunsInline) {
  WorkQueue q;
  // Range below the serial threshold: exactly one body call, whole range.
  std::vector<std::pair<std::int64_t, std::int64_t>> calls;
  stealing_for(q, 3, 40, 8, /*serial_below=*/512, num_threads(),
               [&](std::int64_t b, std::int64_t e) { calls.push_back({b, e}); });
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0].first, 3);
  EXPECT_EQ(calls[0].second, 40);
}

TEST(WorkQueueTest, StealingForInsideParallelRegionRunsInline) {
  WorkQueue q;
  // Nested inside an active region each call serializes over its own range
  // (nested OpenMP teams are single-threaded) — the coarse-mode path.
  std::atomic<std::int64_t> total{0};
#pragma omp parallel num_threads(2)
  {
    stealing_for(q, 0, 1000, 16, /*serial_below=*/1, num_threads(),
                 [&](std::int64_t b, std::int64_t e) {
                   total.fetch_add(e - b, std::memory_order_relaxed);
                 });
  }
  // Every participating thread covered the full range once.
  EXPECT_EQ(total.load() % 1000, 0);
  EXPECT_GE(total.load(), 1000);
}

}  // namespace
}  // namespace graphct
