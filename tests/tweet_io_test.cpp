#include "twitter/tweet_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "twitter/corpus_gen.hpp"
#include "twitter/datasets.hpp"
#include "util/error.hpp"

namespace graphct::twitter {
namespace {

TEST(TweetIoTest, RoundTripBasic) {
  std::vector<Tweet> tweets{
      {1, "alice", "hello @bob #topic", 1000},
      {2, "bob", "RT @alice hello", 1010},
  };
  const auto parsed = parse_tsv(to_tsv(tweets));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].id, 1);
  EXPECT_EQ(parsed[0].author, "alice");
  EXPECT_EQ(parsed[0].text, "hello @bob #topic");
  EXPECT_EQ(parsed[1].timestamp, 1010);
}

TEST(TweetIoTest, TabsAndNewlinesInTextSanitized) {
  std::vector<Tweet> tweets{{1, "a", "line1\nline2\ttabbed", 5}};
  const auto parsed = parse_tsv(to_tsv(tweets));
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].text, "line1 line2 tabbed");
}

TEST(TweetIoTest, EmptyTextAllowed) {
  std::vector<Tweet> tweets{{7, "quiet", "", 9}};
  const auto parsed = parse_tsv(to_tsv(tweets));
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_TRUE(parsed[0].text.empty());
}

TEST(TweetIoTest, CommentsAndBlanksSkipped) {
  const auto parsed = parse_tsv("# header\n\n1\t2\tme\thi\n");
  ASSERT_EQ(parsed.size(), 1u);
}

TEST(TweetIoTest, MalformedRowsThrow) {
  EXPECT_THROW(parse_tsv("1\t2\tauthor\n"), graphct::Error);     // 3 fields
  EXPECT_THROW(parse_tsv("x\t2\ta\tt\n"), graphct::Error);       // bad id
  EXPECT_THROW(parse_tsv("1\tzz\ta\tt\n"), graphct::Error);      // bad ts
  EXPECT_THROW(parse_tsv("1\t2\t\ttext\n"), graphct::Error);     // no author
}

TEST(TweetIoTest, FileRoundTripOfGeneratedCorpus) {
  const auto preset = dataset_preset("tiny");
  const auto tweets = generate_corpus(preset.corpus);
  const std::string path =
      (std::filesystem::temp_directory_path() / "gct_tweets.tsv").string();
  write_tweets(tweets, path);
  const auto back = read_tweets(path);
  ASSERT_EQ(back.size(), tweets.size());
  for (std::size_t i = 0; i < tweets.size(); ++i) {
    ASSERT_EQ(back[i].id, tweets[i].id);
    ASSERT_EQ(back[i].author, tweets[i].author);
    ASSERT_EQ(back[i].text, tweets[i].text);
    ASSERT_EQ(back[i].timestamp, tweets[i].timestamp);
  }
  std::remove(path.c_str());
}

TEST(TweetIoTest, MissingFileThrows) {
  EXPECT_THROW(read_tweets("/nonexistent/tweets.tsv"), graphct::Error);
}

TEST(TweetIoTest, WindowsLineEndings) {
  const auto parsed = parse_tsv("1\t2\ta\thello\r\n3\t4\tb\tworld\r\n");
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[1].text, "world");
}

}  // namespace
}  // namespace graphct::twitter
