#include "algs/bridges.hpp"

#include <gtest/gtest.h>

#include <set>

#include "algs/connected_components.hpp"
#include "core/betweenness.hpp"
#include "gen/random_graphs.hpp"
#include "gen/shapes.hpp"
#include "test_support.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace graphct {
namespace {

using testing::make_directed;
using testing::make_undirected;

TEST(BridgesTest, EveryTreeEdgeIsABridge) {
  const auto g = balanced_tree(2, 3);
  const auto cut = find_cut_structure(g);
  EXPECT_EQ(static_cast<eid>(cut.bridges.size()), g.num_edges());
  // Every internal vertex is an articulation point; leaves are not.
  for (vid v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(cut.is_articulation[static_cast<std::size_t>(v)] != 0,
              g.degree(v) > 1)
        << "vertex " << v;
  }
}

TEST(BridgesTest, CycleHasNone) {
  const auto cut = find_cut_structure(cycle_graph(8));
  EXPECT_TRUE(cut.bridges.empty());
  EXPECT_EQ(cut.num_articulation_points(), 0);
}

TEST(BridgesTest, BarbellBridgeFound) {
  const auto g = barbell_graph(5);
  const auto cut = find_cut_structure(g);
  ASSERT_EQ(cut.bridges.size(), 1u);
  EXPECT_EQ(cut.bridges[0], (std::pair<vid, vid>{4, 5}));
  EXPECT_TRUE(cut.is_articulation[4]);
  EXPECT_TRUE(cut.is_articulation[5]);
  EXPECT_EQ(cut.num_articulation_points(), 2);
}

TEST(BridgesTest, TriangleWithPendant) {
  const auto g = make_undirected(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  const auto cut = find_cut_structure(g);
  ASSERT_EQ(cut.bridges.size(), 1u);
  EXPECT_EQ(cut.bridges[0], (std::pair<vid, vid>{2, 3}));
  EXPECT_TRUE(cut.is_articulation[2]);
  EXPECT_FALSE(cut.is_articulation[0]);
  EXPECT_FALSE(cut.is_articulation[3]);
}

TEST(BridgesTest, SelfLoopsIgnored) {
  const auto g = make_undirected(3, {{0, 1}, {1, 2}, {1, 1}});
  const auto cut = find_cut_structure(g);
  EXPECT_EQ(cut.bridges.size(), 2u);
  EXPECT_TRUE(cut.is_articulation[1]);
}

TEST(BridgesTest, DisconnectedComponentsHandled) {
  const auto g = make_undirected(7, {{0, 1}, {1, 2}, {0, 2},  // triangle
                                     {3, 4}, {4, 5}});        // path
  const auto cut = find_cut_structure(g);
  EXPECT_EQ(cut.bridges.size(), 2u);
  EXPECT_TRUE(cut.is_articulation[4]);
  EXPECT_EQ(cut.num_articulation_points(), 1);
}

TEST(BridgesTest, DirectedThrows) {
  const auto g = make_directed(3, {{0, 1}});
  EXPECT_THROW(find_cut_structure(g), Error);
}

TEST(BridgesTest, BridgeEndpointsCarryHighBetweenness) {
  // Structural validation of the BC narrative: the barbell bridge endpoints
  // are the top-2 betweenness vertices.
  const auto g = barbell_graph(7);
  const auto cut = find_cut_structure(g);
  ASSERT_EQ(cut.bridges.size(), 1u);
  const auto bc = betweenness_centrality(g);
  std::vector<std::pair<double, vid>> ranked;
  for (vid v = 0; v < g.num_vertices(); ++v) {
    ranked.emplace_back(bc.score[static_cast<std::size_t>(v)], v);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  const std::set<vid> top2{ranked[0].second, ranked[1].second};
  EXPECT_TRUE(top2.count(cut.bridges[0].first));
  EXPECT_TRUE(top2.count(cut.bridges[0].second));
}

// Property: an edge is a bridge iff removing it increases the number of
// connected components (brute-force check on small random graphs).
class BridgePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BridgePropertyTest, MatchesRemovalDefinition) {
  Rng rng(GetParam());
  const vid n = 8 + static_cast<vid>(rng.next_below(25));
  EdgeList el(n);
  const std::int64_t m = n + static_cast<std::int64_t>(
                                 rng.next_below(static_cast<std::uint64_t>(n)));
  std::set<std::pair<vid, vid>> edges;
  for (std::int64_t i = 0; i < m; ++i) {
    vid u = static_cast<vid>(rng.next_below(static_cast<std::uint64_t>(n)));
    vid v = static_cast<vid>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    el.add(u, v);
    edges.insert({std::min(u, v), std::max(u, v)});
  }
  const auto g = build_csr(el);
  const auto cut = find_cut_structure(g);
  const std::set<std::pair<vid, vid>> found(cut.bridges.begin(),
                                            cut.bridges.end());
  const auto base_components =
      component_stats(connected_components(g)).num_components;

  for (const auto& e : edges) {
    // Rebuild without this edge.
    EdgeList el2(n);
    for (const auto& e2 : edges) {
      if (e2 != e) el2.add(e2.first, e2.second);
    }
    const auto g2 = build_csr(el2);
    const auto removed_components =
        component_stats(connected_components(g2)).num_components;
    const bool is_bridge = removed_components > base_components;
    EXPECT_EQ(found.count(e) > 0, is_bridge)
        << "edge " << e.first << "-" << e.second;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, BridgePropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

// Property: a vertex is an articulation point iff removing it increases the
// component count among the remaining vertices.
class ArticulationPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArticulationPropertyTest, MatchesRemovalDefinition) {
  Rng rng(GetParam() + 500);
  const vid n = 8 + static_cast<vid>(rng.next_below(20));
  EdgeList el(n);
  const std::int64_t m = n + static_cast<std::int64_t>(
                                 rng.next_below(static_cast<std::uint64_t>(n)));
  std::set<std::pair<vid, vid>> edges;
  for (std::int64_t i = 0; i < m; ++i) {
    vid u = static_cast<vid>(rng.next_below(static_cast<std::uint64_t>(n)));
    vid v = static_cast<vid>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    el.add(u, v);
    edges.insert({std::min(u, v), std::max(u, v)});
  }
  const auto g = build_csr(el);
  const auto cut = find_cut_structure(g);

  for (vid x = 0; x < n; ++x) {
    // Count components among V \ {x} before and after: removal of x is
    // simulated by dropping its edges and ignoring x in both counts.
    auto count_without = [&](bool drop_x_edges) {
      EdgeList el2(n);
      for (const auto& e : edges) {
        if (drop_x_edges && (e.first == x || e.second == x)) continue;
        el2.add(e.first, e.second);
      }
      const auto labels = connected_components(build_csr(el2));
      std::set<vid> comps;
      for (vid v = 0; v < n; ++v) {
        if (v != x) comps.insert(labels[static_cast<std::size_t>(v)]);
      }
      return comps.size();
    };
    const bool is_cut = count_without(true) > count_without(false);
    EXPECT_EQ(cut.is_articulation[static_cast<std::size_t>(x)] != 0, is_cut)
        << "vertex " << x;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, ArticulationPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace graphct
