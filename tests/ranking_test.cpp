#include "algs/ranking.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace graphct {
namespace {

std::span<const double> sp(const std::vector<double>& v) {
  return {v.data(), v.size()};
}

TEST(TopKTest, OrdersByScoreDescending) {
  std::vector<double> s{0.1, 5.0, 3.0, 4.0};
  EXPECT_EQ(top_k(sp(s), 2), (std::vector<vid>{1, 3}));
  EXPECT_EQ(top_k(sp(s), 4), (std::vector<vid>{1, 3, 2, 0}));
}

TEST(TopKTest, TieBreaksByIndex) {
  std::vector<double> s{2.0, 2.0, 2.0, 1.0};
  EXPECT_EQ(top_k(sp(s), 2), (std::vector<vid>{0, 1}));
}

TEST(TopKTest, ClampsK) {
  std::vector<double> s{1.0, 2.0};
  EXPECT_EQ(top_k(sp(s), 100).size(), 2u);
  EXPECT_TRUE(top_k(sp(s), 0).empty());
}

TEST(TopPercentTest, CeilingSemantics) {
  std::vector<double> s(100, 0.0);
  for (std::size_t i = 0; i < s.size(); ++i) s[i] = static_cast<double>(i);
  EXPECT_EQ(top_percent(sp(s), 1.0).size(), 1u);
  EXPECT_EQ(top_percent(sp(s), 5.0).size(), 5u);
  EXPECT_EQ(top_percent(sp(s), 10.0).size(), 10u);
  // 2.5% of 100 -> ceil -> 3
  EXPECT_EQ(top_percent(sp(s), 2.5).size(), 3u);
}

TEST(TopPercentTest, AtLeastOne) {
  std::vector<double> s{1.0, 2.0, 3.0};
  EXPECT_EQ(top_percent(sp(s), 1.0).size(), 1u);
}

TEST(TopPercentTest, RejectsBadPercent) {
  std::vector<double> s{1.0};
  EXPECT_THROW(top_percent(sp(s), 0.0), Error);
  EXPECT_THROW(top_percent(sp(s), 101.0), Error);
}

TEST(SetMetricsTest, IntersectionAndHamming) {
  std::vector<vid> a{1, 2, 3, 4};
  std::vector<vid> b{3, 4, 5, 6};
  EXPECT_EQ(set_intersection_size(a, b), 2);
  EXPECT_DOUBLE_EQ(normalized_set_hamming(a, b), 0.5);
  EXPECT_DOUBLE_EQ(normalized_set_hamming(a, a), 0.0);
  std::vector<vid> c{9, 10, 11, 12};
  EXPECT_DOUBLE_EQ(normalized_set_hamming(a, c), 1.0);
}

TEST(SetMetricsTest, EmptySets) {
  std::vector<vid> e;
  EXPECT_DOUBLE_EQ(normalized_set_hamming(e, e), 0.0);
  EXPECT_EQ(set_intersection_size(e, e), 0);
}

TEST(TopKOverlapTest, IdenticalScoresGiveFullOverlap) {
  std::vector<double> s{5, 4, 3, 2, 1, 0.5, 0.1, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(top_k_overlap(sp(s), sp(s), 20.0), 1.0);
}

TEST(TopKOverlapTest, DetectsDisagreement) {
  std::vector<double> exact{10, 9, 1, 1, 1, 1, 1, 1, 1, 1};
  std::vector<double> approx{1, 1, 10, 9, 1, 1, 1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(top_k_overlap(sp(exact), sp(approx), 20.0), 0.0);
}

TEST(TopKOverlapTest, OverlapIsComplementOfHamming) {
  Rng rng(4);
  std::vector<double> a(50), b(50);
  for (std::size_t i = 0; i < 50; ++i) {
    a[i] = rng.next_double();
    b[i] = a[i] + 0.2 * rng.next_double();
  }
  const double pct = 10.0;
  const auto ta = top_percent(sp(a), pct);
  const auto tb = top_percent(sp(b), pct);
  EXPECT_NEAR(top_k_overlap(sp(a), sp(b), pct),
              1.0 - normalized_set_hamming(ta, tb), 1e-12);
}

TEST(TopKOverlapTest, LengthMismatchThrows) {
  std::vector<double> a{1, 2}, b{1};
  EXPECT_THROW(top_k_overlap(sp(a), sp(b), 10.0), Error);
}

TEST(SpearmanTest, MonotoneTransformGivesOne) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{1, 4, 9, 16, 25};  // monotone in x
  EXPECT_NEAR(spearman_correlation(sp(x), sp(y)), 1.0, 1e-12);
}

TEST(SpearmanTest, ReversalGivesMinusOne) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y{9, 7, 5, 3};
  EXPECT_NEAR(spearman_correlation(sp(x), sp(y)), -1.0, 1e-12);
}

TEST(SpearmanTest, TiesAverageRanks) {
  std::vector<double> x{1, 1, 2, 2};
  std::vector<double> y{1, 1, 2, 2};
  EXPECT_NEAR(spearman_correlation(sp(x), sp(y)), 1.0, 1e-12);
}

TEST(SpearmanTest, DegenerateReturnsZero) {
  std::vector<double> x{1};
  std::vector<double> y{2};
  EXPECT_EQ(spearman_correlation(sp(x), sp(y)), 0.0);
}

}  // namespace
}  // namespace graphct
