#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace graphct {
namespace {

TEST(LinearHistogramTest, BinAssignment) {
  LinearHistogram h(10, 100);
  h.add(0);
  h.add(9);
  h.add(10);
  h.add(99);
  h.add(100);
  EXPECT_EQ(h.total(), 5);
  const auto& bins = h.bins();
  EXPECT_EQ(bins[0].count, 2);   // 0 and 9
  EXPECT_EQ(bins[1].count, 1);   // 10
  EXPECT_EQ(bins[9].count, 1);   // 99
  EXPECT_EQ(bins[10].count, 1);  // 100
}

TEST(LinearHistogramTest, ClampsOverflowToLastBin) {
  LinearHistogram h(10, 50);
  h.add(1000000);
  EXPECT_EQ(h.bins().back().count, 1);
}

TEST(LinearHistogramTest, RejectsNegativeValues) {
  LinearHistogram h(10, 50);
  EXPECT_THROW(h.add(-1), Error);
}

TEST(LinearHistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(LinearHistogram(0, 10), Error);
  EXPECT_THROW(LinearHistogram(-5, 10), Error);
  EXPECT_THROW(LinearHistogram(1, -1), Error);
}

TEST(LinearHistogramTest, AddAll) {
  LinearHistogram h(5, 20);
  std::vector<std::int64_t> vals{1, 2, 3, 7, 12, 19};
  h.add_all(std::span<const std::int64_t>(vals.data(), vals.size()));
  EXPECT_EQ(h.total(), 6);
}

TEST(LogHistogramTest, PowerOfTwoBins) {
  LogHistogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  h.add(7);
  h.add(8);
  const auto bins = h.bins();
  // {0}, {1}, [2,4), [4,8), [8,16)
  ASSERT_EQ(bins.size(), 5u);
  EXPECT_EQ(bins[0].count, 1);
  EXPECT_EQ(bins[1].count, 1);
  EXPECT_EQ(bins[2].count, 2);
  EXPECT_EQ(bins[3].count, 2);
  EXPECT_EQ(bins[4].count, 1);
  EXPECT_EQ(bins[2].lo, 2);
  EXPECT_EQ(bins[2].hi, 4);
  EXPECT_EQ(bins[4].lo, 8);
  EXPECT_EQ(bins[4].hi, 16);
}

TEST(LogHistogramTest, LargeValues) {
  LogHistogram h;
  h.add((std::int64_t{1} << 40) + 5);
  const auto bins = h.bins();
  EXPECT_EQ(bins.back().count, 1);
  EXPECT_LE(bins.back().lo, (std::int64_t{1} << 40) + 5);
  EXPECT_GT(bins.back().hi, (std::int64_t{1} << 40) + 5);
}

TEST(LogHistogramTest, TotalMatchesAdds) {
  LogHistogram h;
  for (std::int64_t i = 0; i < 1000; ++i) h.add(i % 37);
  EXPECT_EQ(h.total(), 1000);
  std::int64_t bin_total = 0;
  for (const auto& b : h.bins()) bin_total += b.count;
  EXPECT_EQ(bin_total, 1000);
}

TEST(LogHistogramTest, AsciiChartMentionsCounts) {
  LogHistogram h;
  for (int i = 0; i < 42; ++i) h.add(3);
  const std::string chart = h.ascii_chart();
  EXPECT_NE(chart.find("42"), std::string::npos);
  EXPECT_NE(chart.find('#'), std::string::npos);
}

TEST(FrequencyTableTest, CountsDistinctValues) {
  std::vector<std::int64_t> v{5, 3, 5, 5, 3, 1};
  const auto freq = frequency_table(std::span<const std::int64_t>(v.data(), v.size()));
  ASSERT_EQ(freq.size(), 3u);
  EXPECT_EQ(freq[0], (std::pair<std::int64_t, std::int64_t>{1, 1}));
  EXPECT_EQ(freq[1], (std::pair<std::int64_t, std::int64_t>{3, 2}));
  EXPECT_EQ(freq[2], (std::pair<std::int64_t, std::int64_t>{5, 3}));
}

TEST(FrequencyTableTest, Empty) {
  std::vector<std::int64_t> v;
  EXPECT_TRUE(frequency_table(std::span<const std::int64_t>(v.data(), 0)).empty());
}

}  // namespace
}  // namespace graphct
