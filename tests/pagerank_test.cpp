#include "algs/pagerank.hpp"

#include <gtest/gtest.h>

#include "gen/random_graphs.hpp"
#include "gen/shapes.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace graphct {
namespace {

using testing::make_directed;
using testing::make_undirected;

double sum(const std::vector<double>& v) {
  double s = 0;
  for (double x : v) s += x;
  return s;
}

TEST(PageRankTest, SumsToOne) {
  for (const auto& g : {cycle_graph(10), star_graph(20), complete_graph(6)}) {
    const auto r = pagerank(g);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(sum(r.score), 1.0, 1e-8);
  }
}

TEST(PageRankTest, RegularGraphIsUniform) {
  const auto g = cycle_graph(12);
  const auto r = pagerank(g);
  for (double s : r.score) EXPECT_NEAR(s, 1.0 / 12.0, 1e-9);
}

TEST(PageRankTest, StarHubDominates) {
  const auto g = star_graph(21);
  const auto r = pagerank(g);
  for (std::size_t v = 1; v < 21; ++v) {
    EXPECT_GT(r.score[0], 3.0 * r.score[v]);
    EXPECT_NEAR(r.score[v], r.score[1], 1e-12);  // spokes symmetric
  }
}

TEST(PageRankTest, DanglingVerticesHandled) {
  // 0 -> 1 -> 2, vertex 2 dangles; mass must not leak.
  const auto g = make_directed(3, {{0, 1}, {1, 2}});
  const auto r = pagerank(g);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(sum(r.score), 1.0, 1e-8);
  EXPECT_GT(r.score[2], r.score[1]);  // downstream accumulates
  EXPECT_GT(r.score[1], r.score[0]);
}

TEST(PageRankTest, DirectedAuthorityFlowsAlongArcs) {
  // Everyone cites @hub; hub cites nobody.
  const auto g = make_directed(5, {{1, 0}, {2, 0}, {3, 0}, {4, 0}});
  const auto r = pagerank(g);
  for (std::size_t v = 1; v < 5; ++v) {
    EXPECT_GT(r.score[0], 2.0 * r.score[v]);
  }
}

TEST(PageRankTest, KnownTwoVertexValue) {
  // 0 <-> 1: symmetric, each 0.5 exactly.
  const auto g = make_undirected(2, {{0, 1}});
  const auto r = pagerank(g);
  EXPECT_NEAR(r.score[0], 0.5, 1e-10);
  EXPECT_NEAR(r.score[1], 0.5, 1e-10);
}

TEST(PageRankTest, IsolatedVerticesGetBaseRank) {
  const auto g = make_undirected(4, {{0, 1}});
  const auto r = pagerank(g);
  EXPECT_NEAR(sum(r.score), 1.0, 1e-8);
  EXPECT_NEAR(r.score[2], r.score[3], 1e-12);
  EXPECT_GT(r.score[0], r.score[2]);
}

TEST(PageRankTest, ToleranceControlsIterations) {
  const auto g = erdos_renyi(300, 1500, 3);
  PageRankOptions loose;
  loose.tolerance = 1e-3;
  PageRankOptions tight;
  tight.tolerance = 1e-12;
  const auto rl = pagerank(g, loose);
  const auto rt = pagerank(g, tight);
  EXPECT_LT(rl.iterations, rt.iterations);
  EXPECT_LE(rl.residual, 1e-3);
}

TEST(PageRankTest, MaxIterationsCaps) {
  const auto g = erdos_renyi(200, 800, 5);
  PageRankOptions o;
  o.max_iterations = 2;
  o.tolerance = 0.0;
  const auto r = pagerank(g, o);
  EXPECT_EQ(r.iterations, 2);
  EXPECT_FALSE(r.converged);
}

TEST(PageRankTest, InvalidOptionsThrow) {
  const auto g = path_graph(3);
  PageRankOptions o;
  o.damping = 1.5;
  EXPECT_THROW(pagerank(g, o), Error);
  o.damping = 0.85;
  o.max_iterations = 0;
  EXPECT_THROW(pagerank(g, o), Error);
}

TEST(PageRankTest, EmptyGraph) {
  CsrGraph g;
  const auto r = pagerank(g);
  EXPECT_TRUE(r.score.empty());
}

TEST(PageRankTest, UndirectedRankCorrelatesWithDegree) {
  // On undirected graphs PageRank is approximately degree-proportional.
  const auto g = chung_lu_power_law(2000, 8000, 2.5, 7);
  const auto r = pagerank(g);
  vid max_deg_v = 0;
  for (vid v = 1; v < g.num_vertices(); ++v) {
    if (g.degree(v) > g.degree(max_deg_v)) max_deg_v = v;
  }
  double max_rank = 0;
  vid max_rank_v = 0;
  for (vid v = 0; v < g.num_vertices(); ++v) {
    if (r.score[static_cast<std::size_t>(v)] > max_rank) {
      max_rank = r.score[static_cast<std::size_t>(v)];
      max_rank_v = v;
    }
  }
  EXPECT_EQ(max_rank_v, max_deg_v);
}

}  // namespace
}  // namespace graphct
