#include "algs/closeness.hpp"

#include <gtest/gtest.h>

#include "gen/random_graphs.hpp"
#include "gen/shapes.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace graphct {
namespace {

using testing::make_directed;
using testing::make_undirected;

TEST(ClosenessTest, PathCenterIsClosest) {
  const auto g = path_graph(7);
  const auto r = closeness_centrality(g);
  // Center (3): 2*(1 + 1/2 + 1/3) = 11/3.
  EXPECT_NEAR(r.score[3], 2.0 * (1.0 + 0.5 + 1.0 / 3.0), 1e-9);
  // Ends are least close, center most.
  EXPECT_GT(r.score[3], r.score[1]);
  EXPECT_GT(r.score[1], r.score[0]);
  EXPECT_NEAR(r.score[0], r.score[6], 1e-12);
}

TEST(ClosenessTest, StarHubValue) {
  const auto g = star_graph(11);  // hub + 10 spokes
  const auto r = closeness_centrality(g);
  EXPECT_NEAR(r.score[0], 10.0, 1e-9);              // all at distance 1
  EXPECT_NEAR(r.score[1], 1.0 + 9.0 / 2.0, 1e-9);   // hub at 1, others at 2
}

TEST(ClosenessTest, CompleteGraphUniform) {
  const auto g = complete_graph(6);
  const auto r = closeness_centrality(g);
  for (double s : r.score) EXPECT_NEAR(s, 5.0, 1e-9);
}

TEST(ClosenessTest, DisconnectedIsFinite) {
  // Harmonic closeness handles disconnection gracefully (the classic
  // formulation would be 0 everywhere).
  const auto g = make_undirected(6, {{0, 1}, {1, 2}, {3, 4}});
  const auto r = closeness_centrality(g);
  EXPECT_NEAR(r.score[1], 2.0, 1e-9);
  EXPECT_NEAR(r.score[3], 1.0, 1e-9);
  EXPECT_NEAR(r.score[5], 0.0, 1e-12);  // isolated
}

TEST(ClosenessTest, SampledApproximatesExact) {
  const auto g = erdos_renyi(400, 2000, 9);
  const auto exact = closeness_centrality(g);
  ClosenessOptions o;
  o.num_sources = 100;
  o.seed = 3;
  const auto approx = closeness_centrality(g, o);
  EXPECT_EQ(approx.sources_used, 100);
  // Rescaled estimates track exact values within a modest relative error
  // for well-connected vertices.
  double rel_err_sum = 0;
  std::int64_t counted = 0;
  for (std::size_t v = 0; v < exact.score.size(); ++v) {
    if (exact.score[v] < 50.0) continue;
    rel_err_sum += std::abs(approx.score[v] - exact.score[v]) / exact.score[v];
    ++counted;
  }
  ASSERT_GT(counted, 100);
  EXPECT_LT(rel_err_sum / static_cast<double>(counted), 0.10);
}

TEST(ClosenessTest, DeterministicForFixedSeed) {
  const auto g = erdos_renyi(100, 400, 11);
  ClosenessOptions o;
  o.num_sources = 20;
  o.seed = 5;
  EXPECT_EQ(closeness_centrality(g, o).score,
            closeness_centrality(g, o).score);
}

TEST(ClosenessTest, NoRescaleKeepsRawSums) {
  const auto g = star_graph(10);
  ClosenessOptions o;
  o.num_sources = 3;
  o.rescale = false;
  const auto r = closeness_centrality(g, o);
  // Raw harmonic sums over 3 pivots can't exceed 3.
  for (double s : r.score) EXPECT_LE(s, 3.0 + 1e-12);
}

TEST(ClosenessTest, DirectedThrows) {
  const auto g = make_directed(3, {{0, 1}});
  EXPECT_THROW(closeness_centrality(g), Error);
}

TEST(ClosenessTest, InvalidSourcesThrow) {
  const auto g = path_graph(5);
  ClosenessOptions o;
  o.num_sources = 0;
  EXPECT_THROW(closeness_centrality(g, o), Error);
}

TEST(ClosenessTest, EmptyGraph) {
  CsrGraph g;
  EXPECT_TRUE(closeness_centrality(g).score.empty());
}

}  // namespace
}  // namespace graphct
