#include "stream/sliding_window.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace graphct {
namespace {

TEST(SlidingWindowTest, EdgesExpire) {
  SlidingWindowGraph w(10, 100);
  w.observe(0, 1, 0);
  w.observe(1, 2, 50);
  EXPECT_EQ(w.live().graph().num_edges(), 2);
  w.advance(100);  // t=0 edge expires when now > 100
  EXPECT_EQ(w.live().graph().num_edges(), 2);
  w.advance(101);
  EXPECT_EQ(w.live().graph().num_edges(), 1);
  EXPECT_FALSE(w.live().graph().has_edge(0, 1));
  EXPECT_TRUE(w.live().graph().has_edge(1, 2));
  w.advance(151);
  EXPECT_EQ(w.live().graph().num_edges(), 0);
}

TEST(SlidingWindowTest, RepeatObservationExtendsLife) {
  SlidingWindowGraph w(5, 100);
  w.observe(0, 1, 0);
  w.observe(0, 1, 80);  // re-observed: refcount 2
  w.advance(120);       // first observation expired, second alive
  EXPECT_TRUE(w.live().graph().has_edge(0, 1));
  w.advance(181);
  EXPECT_FALSE(w.live().graph().has_edge(0, 1));
}

TEST(SlidingWindowTest, TrianglesTrackWindow) {
  SlidingWindowGraph w(5, 100);
  w.observe(0, 1, 0);
  w.observe(1, 2, 10);
  w.observe(0, 2, 20);
  EXPECT_EQ(w.live().total_triangles(), 1);
  w.advance(101);  // the 0-1 edge expires, breaking the triangle
  EXPECT_EQ(w.live().total_triangles(), 0);
  // Re-close it.
  w.observe(0, 1, 105);
  EXPECT_EQ(w.live().total_triangles(), 1);
}

TEST(SlidingWindowTest, SelfLoopsIgnored) {
  SlidingWindowGraph w(5, 100);
  w.observe(2, 2, 0);
  EXPECT_EQ(w.live().graph().num_edges(), 0);
  EXPECT_EQ(w.active_observations(), 0);
}

TEST(SlidingWindowTest, OutOfOrderThrows) {
  SlidingWindowGraph w(5, 100);
  w.observe(0, 1, 50);
  EXPECT_THROW(w.observe(1, 2, 40), Error);
  EXPECT_THROW(w.advance(10), Error);
}

TEST(SlidingWindowTest, BadWindowThrows) {
  EXPECT_THROW(SlidingWindowGraph(5, 0), Error);
}

TEST(SlidingWindowTest, ActiveObservationCounts) {
  SlidingWindowGraph w(5, 10);
  w.observe(0, 1, 0);
  w.observe(0, 1, 5);
  w.observe(2, 3, 5);
  EXPECT_EQ(w.active_observations(), 3);
  EXPECT_EQ(w.live().graph().num_edges(), 2);
  w.advance(11);
  EXPECT_EQ(w.active_observations(), 2);
  w.advance(16);
  EXPECT_EQ(w.active_observations(), 0);
}

TEST(SlidingWindowTest, LongChurnStaysConsistent) {
  SlidingWindowGraph w(20, 50);
  for (std::int64_t t = 0; t < 1000; ++t) {
    w.observe(static_cast<vid>(t % 20), static_cast<vid>((t * 7 + 3) % 20), t);
  }
  // Window holds at most 51 timestamps' observations.
  EXPECT_LE(w.active_observations(), 51);
  // Live structure equals a from-scratch rebuild of the window.
  StreamingClustering rebuilt(20);
  for (std::int64_t t = 1000 - 51; t < 1000; ++t) {
    if (t < 0) continue;
    const vid u = static_cast<vid>(t % 20);
    const vid v = static_cast<vid>((t * 7 + 3) % 20);
    if (u != v) rebuilt.insert_edge(u, v);
  }
  EXPECT_EQ(w.live().graph().snapshot(), rebuilt.graph().snapshot());
  EXPECT_EQ(w.live().total_triangles(), rebuilt.total_triangles());
}

}  // namespace
}  // namespace graphct
