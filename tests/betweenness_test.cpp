#include "core/betweenness.hpp"

#include <gtest/gtest.h>

#include <set>

#include "algs/ranking.hpp"
#include "gen/random_graphs.hpp"
#include "gen/rmat.hpp"
#include "gen/shapes.hpp"
#include "graph/builder.hpp"
#include "test_support.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace graphct {
namespace {

using testing::make_directed;
using testing::make_undirected;
using testing::reference_betweenness;

void expect_scores_near(const std::vector<double>& got,
                        const std::vector<double>& want, double tol = 1e-9) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], tol) << "vertex " << i;
  }
}

TEST(BetweennessTest, PathAnalytic) {
  // Path 0-1-2-3-4: interior vertex v lies on all pairs crossing it; with
  // directed-pair counting BC(v) = 2*(v+1-0)*(n-1-v) for interior vertices
  // counting ordered pairs (left x right): v=1: 2*2*3=12? Careful: pairs
  // strictly through v: left={0..v-1} (v choices... vertex count v... )
  const auto g = path_graph(5);
  const auto r = betweenness_centrality(g);
  // v=1: pairs {0}x{2,3,4} -> 3 ordered both ways = 6.
  // v=2: {0,1}x{3,4} -> 4 pairs -> 8. v=3: symmetric with v=1.
  expect_scores_near(r.score, {0, 6, 8, 6, 0});
  EXPECT_EQ(r.sources_used, 5);
}

TEST(BetweennessTest, StarAnalytic) {
  const auto g = star_graph(6);  // hub + 5 spokes
  const auto r = betweenness_centrality(g);
  // Hub carries all 5*4 ordered spoke pairs.
  expect_scores_near(r.score, {20, 0, 0, 0, 0, 0});
}

TEST(BetweennessTest, CycleAndCompleteAreFlat) {
  const auto cyc = betweenness_centrality(cycle_graph(7));
  for (std::size_t v = 1; v < 7; ++v) {
    EXPECT_NEAR(cyc.score[v], cyc.score[0], 1e-9);
  }
  const auto comp = betweenness_centrality(complete_graph(5));
  for (double s : comp.score) EXPECT_NEAR(s, 0.0, 1e-12);
}

TEST(BetweennessTest, BarbellBridgeDominates) {
  const auto g = barbell_graph(6);
  const auto r = betweenness_centrality(g);
  const auto top = top_k(std::span<const double>(r.score.data(), r.score.size()), 2);
  const std::set<vid> bridge{5, 6};
  EXPECT_TRUE(bridge.count(top[0]));
  EXPECT_TRUE(bridge.count(top[1]));
}

TEST(BetweennessTest, DisconnectedComponentsIndependent) {
  // Two paths; scores must match two independent path computations.
  const auto g = make_undirected(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  const auto r = betweenness_centrality(g);
  expect_scores_near(r.score, {0, 2, 0, 0, 2, 0});
}

TEST(BetweennessTest, SelfLoopIgnored) {
  const auto with = betweenness_centrality(
      make_undirected(3, {{0, 1}, {1, 2}, {1, 1}}));
  const auto without =
      betweenness_centrality(make_undirected(3, {{0, 1}, {1, 2}}));
  expect_scores_near(with.score, without.score);
}

TEST(BetweennessTest, DirectedThrows) {
  const auto g = make_directed(3, {{0, 1}});
  EXPECT_THROW(betweenness_centrality(g), Error);
}

TEST(BetweennessTest, FineAndCoarseAgree) {
  const auto g = erdos_renyi(120, 500, 3);
  BetweennessOptions coarse;
  BetweennessOptions fine;
  fine.parallelism = BcParallelism::kFine;
  expect_scores_near(betweenness_centrality(g, coarse).score,
                     betweenness_centrality(g, fine).score, 1e-7);
}

TEST(BetweennessTest, AutoAgreesWithFineAndCoarse) {
  const auto g = erdos_renyi(120, 500, 3);
  BetweennessOptions coarse;
  BetweennessOptions fine;
  fine.parallelism = BcParallelism::kFine;
  BetweennessOptions aut;
  aut.parallelism = BcParallelism::kAuto;
  const auto rc = betweenness_centrality(g, coarse);
  const auto rf = betweenness_centrality(g, fine);
  const auto ra = betweenness_centrality(g, aut);
  expect_scores_near(ra.score, rc.score, 1e-7);
  expect_scores_near(ra.score, rf.score, 1e-7);
}

TEST(BetweennessTest, AutoTinyBudgetBatchesAndStaysUnderBudget) {
  // n = 200 so one score buffer is 1600 bytes. A 4000-byte budget affords
  // two buffers -> team <= 2, batches of <= 16 sources; 64 sources must run
  // in at least 4 batches while peak buffer memory stays under the budget.
  const auto g = erdos_renyi(200, 800, 21);
  BetweennessOptions o;
  o.parallelism = BcParallelism::kAuto;
  o.num_sources = 64;
  o.seed = 5;
  o.score_memory_budget_bytes = 4000;
  const auto r = betweenness_centrality(g, o);
  EXPECT_EQ(r.parallelism_used, BcParallelism::kCoarse);
  EXPECT_GE(r.batches, 2);
  EXPECT_GT(r.peak_buffer_bytes, 0u);
  EXPECT_LE(r.peak_buffer_bytes, o.score_memory_budget_bytes);

  // Batched execution must not change the scores.
  BetweennessOptions one_batch = o;
  one_batch.parallelism = BcParallelism::kCoarse;
  expect_scores_near(r.score, betweenness_centrality(g, one_batch).score,
                     1e-7);
}

TEST(BetweennessTest, AutoFallsBackToFineWhenBudgetTooSmall) {
  const auto g = erdos_renyi(100, 300, 9);
  BetweennessOptions o;
  o.parallelism = BcParallelism::kAuto;
  o.score_memory_budget_bytes = 100;  // cannot fit even one 800-byte buffer
  const auto r = betweenness_centrality(g, o);
  EXPECT_EQ(r.parallelism_used, BcParallelism::kFine);
  EXPECT_EQ(r.batches, 0);
  expect_scores_near(r.score, betweenness_centrality(g).score, 1e-7);
}

TEST(BcPlanTest, BudgetArithmetic) {
  BetweennessOptions o;
  o.parallelism = BcParallelism::kAuto;

  // Budget affords 2 buffers for n=200 (1600 B each): team = 2,
  // batches of 16 over 64 sources = 4 batches.
  o.score_memory_budget_bytes = 4000;
  const auto p = plan_betweenness(/*n=*/200, /*num_sources=*/64,
                                  /*threads=*/8, o);
  EXPECT_EQ(p.mode, BcParallelism::kCoarse);
  EXPECT_EQ(p.team, 2);
  EXPECT_EQ(p.batch_sources, 16);
  EXPECT_EQ(p.num_batches, 4);
  EXPECT_LE(p.buffer_bytes, o.score_memory_budget_bytes);

  // Plenty of budget: team capped by threads, sources in one batch when few.
  o.score_memory_budget_bytes = std::uint64_t{1} << 30;
  const auto wide = plan_betweenness(200, 10, 4, o);
  EXPECT_EQ(wide.mode, BcParallelism::kCoarse);
  EXPECT_LE(wide.team, 4);
  EXPECT_EQ(wide.num_batches, 1);

  // Budget below one buffer: fine fallback.
  o.score_memory_budget_bytes = 100;
  EXPECT_EQ(plan_betweenness(200, 64, 8, o).mode, BcParallelism::kFine);

  // Explicit modes pass through regardless of budget.
  o.parallelism = BcParallelism::kCoarse;
  EXPECT_EQ(plan_betweenness(200, 64, 8, o).mode, BcParallelism::kCoarse);
  o.parallelism = BcParallelism::kFine;
  EXPECT_EQ(plan_betweenness(200, 64, 8, o).mode, BcParallelism::kFine);
}

TEST(BetweennessTest, SampledSubsetOfSourcesUnderestimates) {
  const auto g = erdos_renyi(150, 600, 5);
  BetweennessOptions o;
  o.num_sources = 30;
  o.seed = 9;
  const auto approx = betweenness_centrality(g, o);
  const auto exact = betweenness_centrality(g);
  EXPECT_EQ(approx.sources_used, 30);
  for (std::size_t v = 0; v < approx.score.size(); ++v) {
    EXPECT_LE(approx.score[v], exact.score[v] + 1e-9);
  }
}

TEST(BetweennessTest, RescaleMatchesMagnitudeInExpectation) {
  const auto g = erdos_renyi(200, 1000, 7);
  const auto exact = betweenness_centrality(g);
  BetweennessOptions o;
  o.num_sources = 100;
  o.rescale = true;
  o.seed = 3;
  const auto approx = betweenness_centrality(g, o);
  double sum_exact = 0, sum_approx = 0;
  for (std::size_t v = 0; v < exact.score.size(); ++v) {
    sum_exact += exact.score[v];
    sum_approx += approx.score[v];
  }
  EXPECT_NEAR(sum_approx / sum_exact, 1.0, 0.25);
}

TEST(BetweennessTest, SampleFractionOverridesNumSources) {
  const auto g = erdos_renyi(100, 300, 11);
  BetweennessOptions o;
  o.num_sources = 3;
  o.sample_fraction = 0.25;
  const auto r = betweenness_centrality(g, o);
  EXPECT_EQ(r.sources_used, 25);
}

TEST(BetweennessTest, DeterministicForFixedSeed) {
  const auto g = erdos_renyi(100, 400, 13);
  BetweennessOptions o;
  o.num_sources = 20;
  o.seed = 77;
  const auto a = betweenness_centrality(g, o);
  const auto b = betweenness_centrality(g, o);
  expect_scores_near(a.score, b.score, 0.0);
}

TEST(ChooseSourcesTest, ExactUsesAllVertices) {
  const auto g = path_graph(7);
  BetweennessOptions o;
  const auto s = choose_sources(g, o);
  EXPECT_EQ(s.size(), 7u);
}

TEST(ChooseSourcesTest, UniformSampleSizeAndRange) {
  const auto g = erdos_renyi(500, 1000, 17);
  BetweennessOptions o;
  o.num_sources = 50;
  const auto s = choose_sources(g, o);
  EXPECT_EQ(s.size(), 50u);
  std::set<vid> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 50u);
}

TEST(ChooseSourcesTest, ComponentAwareCoversEveryComponent) {
  // Five components; uniform sampling of 5 sources will often miss some,
  // but component-aware sampling must hit all five.
  EdgeList el(50);
  for (vid c = 0; c < 5; ++c) {
    const vid base = c * 10;
    for (vid i = 0; i < 9; ++i) el.add(base + i, base + i + 1);
  }
  const auto g = build_csr(el);
  BetweennessOptions o;
  o.num_sources = 5;
  o.sampling = BcSampling::kComponentAware;
  o.seed = 3;
  const auto sources = choose_sources(g, o);
  ASSERT_EQ(sources.size(), 5u);
  std::set<vid> comps;
  for (vid s : sources) comps.insert(s / 10);
  EXPECT_EQ(comps.size(), 5u);
}

TEST(ChooseSourcesTest, InvalidArgumentsThrow) {
  const auto g = path_graph(5);
  BetweennessOptions o;
  o.num_sources = 0;
  EXPECT_THROW(choose_sources(g, o), Error);
  o.num_sources = kNoVertex;
  o.sample_fraction = 1.5;
  EXPECT_THROW(choose_sources(g, o), Error);
}

TEST(BetweennessTest, EmptyGraph) {
  CsrGraph g;
  const auto r = betweenness_centrality(g);
  EXPECT_TRUE(r.score.empty());
  EXPECT_EQ(r.sources_used, 0);
}

// ---- Forward-engine parity ----
//
// The hybrid direction-optimizing sweep and the pure top-down sweep both
// pull sigma in adjacency order over identical predecessor sets, and the
// backward sweep is shared, so on undirected graphs the two engines must
// produce BIT-IDENTICAL scores — compared with EXPECT_EQ, not a tolerance.

std::vector<double> run_forward_engine(const CsrGraph& g, BcForwardEngine e,
                                       BcParallelism mode,
                                       std::int64_t num_sources = kNoVertex) {
  BetweennessOptions o;
  o.forward = e;
  o.parallelism = mode;
  o.num_sources = num_sources;
  o.seed = 7;
  auto r = betweenness_centrality(g, o);
  EXPECT_EQ(r.forward_used, e == BcForwardEngine::kAuto
                                ? BcForwardEngine::kHybrid
                                : e);
  return r.score;
}

void expect_scores_bitwise_equal(const std::vector<double>& a,
                                 const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "vertex " << i;
  }
}

// Two components: a 6-path and a 5-clique with a pendant, so the hybrid
// heuristic sees both a high-diameter sparse piece and a dense piece, and
// unreached-vertex handling (stale sigma entries) is exercised.
CsrGraph two_component_graph() {
  return make_undirected(13, {{0, 1},
                              {1, 2},
                              {2, 3},
                              {3, 4},
                              {4, 5},
                              {6, 7},
                              {6, 8},
                              {6, 9},
                              {7, 8},
                              {7, 9},
                              {8, 9},
                              {9, 10},
                              {10, 11},
                              {10, 12}});
}

TEST(BcForwardEngineTest, HybridMatchesTopDownBitExactOnShapes) {
  const CsrGraph graphs[] = {star_graph(64), path_graph(200),
                             two_component_graph()};
  for (const auto& g : graphs) {
    for (auto mode : {BcParallelism::kCoarse, BcParallelism::kFine}) {
      expect_scores_bitwise_equal(
          run_forward_engine(g, BcForwardEngine::kHybrid, mode),
          run_forward_engine(g, BcForwardEngine::kTopDown, mode));
    }
  }
}

TEST(BcForwardEngineTest, HybridMatchesTopDownBitExactOnRmat) {
  RmatOptions r;
  r.scale = 11;
  r.edge_factor = 16;
  r.seed = 3;
  const auto g = rmat_graph(r);  // low diameter: bottom-up levels engage
  for (auto mode : {BcParallelism::kCoarse, BcParallelism::kFine}) {
    expect_scores_bitwise_equal(
        run_forward_engine(g, BcForwardEngine::kHybrid, mode, 128),
        run_forward_engine(g, BcForwardEngine::kTopDown, mode, 128));
  }
}

TEST(BcForwardEngineTest, AutoResolvesToHybridOnUndirected) {
  const auto g = star_graph(16);
  BetweennessOptions o;  // forward defaults to kAuto
  const auto r = betweenness_centrality(g, o);
  EXPECT_EQ(r.forward_used, BcForwardEngine::kHybrid);
}

TEST(BcForwardEngineTest, DirectedFallsBackToTopDown) {
  RmatOptions ro;
  ro.scale = 11;
  ro.edge_factor = 8;
  ro.seed = 4;
  BuildOptions bo;
  bo.symmetrize = false;
  const auto g = build_csr(rmat_edges(ro), bo);
  ASSERT_TRUE(g.directed());

  BetweennessOptions o;
  o.num_sources = 64;
  o.seed = 7;
  const auto auto_run = directed_betweenness_centrality(g, o);
  EXPECT_EQ(auto_run.forward_used, BcForwardEngine::kTopDown);

  BetweennessOptions td = o;
  td.forward = BcForwardEngine::kTopDown;
  expect_scores_bitwise_equal(auto_run.score,
                              directed_betweenness_centrality(g, td).score);

  BetweennessOptions hy = o;
  hy.forward = BcForwardEngine::kHybrid;
  EXPECT_THROW(directed_betweenness_centrality(g, hy), Error);
}

TEST(BcForwardEngineTest, CoarseModeMatchesAcrossThreadCounts) {
  // Coarse workers run the full sweep machinery from inside a parallel
  // region, where nested utilities (level compaction's prefix scan, the
  // work-stealing scheduler's in-parallel guard) take their serial paths.
  // Regression: exclusive_scan once returned a stale 0 total for nested
  // callers, truncating every BFS level to empty — coarse multi-thread
  // runs silently produced all-zero scores while every threads=1 and
  // fine-mode test stayed green. Scores reassociate across the per-thread
  // buffers (dynamic source assignment), hence near, not bitwise.
  RmatOptions ro;
  ro.scale = 10;
  ro.edge_factor = 16;
  ro.seed = 9;
  const auto g = rmat_graph(ro);
  BetweennessOptions o;
  o.num_sources = 96;
  o.seed = 5;
  o.parallelism = BcParallelism::kCoarse;
  set_num_threads(1);
  const auto base = betweenness_centrality(g, o);
  double sum = 0.0;
  for (const double s : base.score) sum += s;
  EXPECT_GT(sum, 0.0);
  for (int t : {2, 8}) {
    set_num_threads(t);
    const auto got = betweenness_centrality(g, o);
    set_num_threads(0);
    expect_scores_near(got.score, base.score, 1e-7);
  }
  set_num_threads(0);
}

TEST(BcForwardEngineTest, FineModeBitIdenticalAcrossThreadCounts) {
  // Fine mode has no atomic accumulations left: sigma is pulled and the
  // backward coefficient sums run in adjacency order, so scores must be
  // bit-identical for any thread count, hybrid and top-down alike.
  RmatOptions ro;
  ro.scale = 10;
  ro.edge_factor = 16;
  ro.seed = 9;
  const auto g = rmat_graph(ro);
  for (auto engine : {BcForwardEngine::kHybrid, BcForwardEngine::kTopDown}) {
    set_num_threads(1);
    const auto base =
        run_forward_engine(g, engine, BcParallelism::kFine, 96);
    for (int t : {2, 8}) {
      set_num_threads(t);
      const auto got =
          run_forward_engine(g, engine, BcParallelism::kFine, 96);
      set_num_threads(0);
      expect_scores_bitwise_equal(base, got);
    }
  }
  set_num_threads(0);
}

// Property sweep: parallel implementation matches the serial Brandes
// reference exactly (modulo float noise) across random graphs.
class BetweennessPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BetweennessPropertyTest, MatchesSerialBrandes) {
  Rng rng(GetParam());
  const vid n = 10 + static_cast<vid>(rng.next_below(80));
  const auto m = static_cast<std::int64_t>(n * (1 + rng.next_below(4)));
  const auto g = erdos_renyi(n, m, GetParam() * 101 + 13);
  const auto expect = reference_betweenness(g);
  const auto got = betweenness_centrality(g);
  expect_scores_near(got.score, expect, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, BetweennessPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace graphct
