#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace graphct {
namespace {

TEST(SummaryTest, Empty) {
  std::vector<double> v;
  const auto s = summarize(std::span<const double>(v.data(), 0));
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(SummaryTest, SingleValue) {
  std::vector<std::int64_t> v{7};
  const auto s = summarize(std::span<const std::int64_t>(v.data(), 1));
  EXPECT_EQ(s.count, 1);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
}

TEST(SummaryTest, KnownMoments) {
  std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  const auto s = summarize(std::span<const double>(v.data(), v.size()));
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  // Sum of squared deviations = 32; sample variance = 32/7.
  EXPECT_NEAR(s.variance, 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(std::span<const double>(v.data(), v.size()), 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(std::span<const double>(v.data(), v.size()), 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(std::span<const double>(v.data(), v.size()), 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(std::span<const double>(v.data(), v.size()), 0.25), 2.0);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(quantile(std::span<const double>(v.data(), 2), 0.3), 3.0);
}

TEST(QuantileTest, RejectsBadArgs) {
  std::vector<double> v{1.0};
  std::vector<double> empty;
  EXPECT_THROW(quantile(std::span<const double>(empty.data(), 0), 0.5), Error);
  EXPECT_THROW(quantile(std::span<const double>(v.data(), 1), 1.5), Error);
}

TEST(ConfidenceTest, ZeroForTinySamples) {
  Summary s;
  s.count = 1;
  s.stddev = 5.0;
  EXPECT_DOUBLE_EQ(confidence_half_width(s), 0.0);
}

TEST(ConfidenceTest, KnownT90ForTenSamples) {
  // The paper averages over 10 realizations at 90% confidence; df=9 t=1.8331.
  Summary s;
  s.count = 10;
  s.stddev = 2.0;
  EXPECT_NEAR(confidence_half_width(s, 0.90), 1.8331 * 2.0 / std::sqrt(10.0),
              1e-9);
}

TEST(ConfidenceTest, WiderAt95) {
  Summary s;
  s.count = 10;
  s.stddev = 2.0;
  EXPECT_GT(confidence_half_width(s, 0.95), confidence_half_width(s, 0.90));
}

TEST(ConfidenceTest, NormalApproxForLargeSamples) {
  Summary s;
  s.count = 1000;
  s.stddev = 1.0;
  EXPECT_NEAR(confidence_half_width(s, 0.90), 1.6449 / std::sqrt(1000.0), 1e-6);
}

TEST(PowerLawTest, RecoversExponent) {
  // Sample a discrete power law with alpha = 2.5 by inverse CDF on a Pareto
  // tail and check the MLE lands close.
  Rng rng(99);
  std::vector<std::int64_t> data;
  const double alpha = 2.5;
  for (int i = 0; i < 60000; ++i) {
    const double u = rng.next_double();
    const double x = std::pow(1.0 - u, -1.0 / (alpha - 1.0));
    data.push_back(static_cast<std::int64_t>(x));
  }
  // The CSN xmin-0.5 discrete approximation is only accurate for xmin >~ 6
  // (Clauset-Shalizi-Newman 2009, §3.5), so estimate on the tail.
  const double est =
      power_law_alpha(std::span<const std::int64_t>(data.data(), data.size()), 8);
  EXPECT_NEAR(est, alpha, 0.2);
}

TEST(PowerLawTest, DegenerateInputsReturnZero) {
  std::vector<std::int64_t> one{5};
  EXPECT_EQ(power_law_alpha(std::span<const std::int64_t>(one.data(), 1)), 0.0);
  std::vector<std::int64_t> below{0, 0, 0};
  EXPECT_EQ(power_law_alpha(std::span<const std::int64_t>(below.data(), 3), 2),
            0.0);
}

TEST(PearsonTest, PerfectAndInverseCorrelation) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  std::vector<double> z{10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(std::span<const double>(x.data(), 5),
                      std::span<const double>(y.data(), 5)),
              1.0, 1e-12);
  EXPECT_NEAR(pearson(std::span<const double>(x.data(), 5),
                      std::span<const double>(z.data(), 5)),
              -1.0, 1e-12);
}

TEST(PearsonTest, DegenerateReturnsZero) {
  std::vector<double> x{1, 1, 1};
  std::vector<double> y{1, 2, 3};
  EXPECT_EQ(pearson(std::span<const double>(x.data(), 3),
                    std::span<const double>(y.data(), 3)),
            0.0);
}

}  // namespace
}  // namespace graphct
