/// Degenerate-input sweep: every kernel must handle the empty graph, the
/// single vertex, the single self-loop, and the two-vertex edge without
/// crashing — the inputs fuzzers find first and code reviews miss.

#include <gtest/gtest.h>

#include "algs/assortativity.hpp"
#include "algs/bfs.hpp"
#include "algs/bridges.hpp"
#include "algs/closeness.hpp"
#include "algs/clustering.hpp"
#include "algs/community.hpp"
#include "algs/connected_components.hpp"
#include "algs/degree.hpp"
#include "algs/diameter.hpp"
#include "algs/kcore.hpp"
#include "algs/pagerank.hpp"
#include "algs/scc.hpp"
#include "core/betweenness.hpp"
#include "core/kbetweenness.hpp"
#include "graph/transforms.hpp"
#include "test_support.hpp"

namespace graphct {
namespace {

using testing::make_directed;
using testing::make_undirected;

std::vector<CsrGraph> degenerate_graphs() {
  return {
      make_undirected(1, {}),          // single vertex
      make_undirected(1, {{0, 0}}),    // single self-loop
      make_undirected(2, {{0, 1}}),    // one edge
      make_undirected(3, {}),          // edgeless
      make_undirected(2, {{0, 0}, {1, 1}}),  // only self-loops
  };
}

TEST(DegenerateTest, EmptyGraphEveryKernel) {
  CsrGraph g;  // zero vertices
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_TRUE(connected_components(g).empty());
  EXPECT_TRUE(degrees(g).empty());
  EXPECT_EQ(estimate_diameter(g).samples_used, 0);
  EXPECT_EQ(exact_diameter(g), 0);
  EXPECT_TRUE(clustering_coefficients(g).coefficient.empty());
  EXPECT_TRUE(core_numbers(g).empty());
  EXPECT_TRUE(betweenness_centrality(g).score.empty());
  EXPECT_TRUE(k_betweenness_centrality(g).score.empty());
  EXPECT_TRUE(closeness_centrality(g).score.empty());
  EXPECT_TRUE(pagerank(g).score.empty());
  EXPECT_TRUE(label_propagation(g).labels.empty());
  EXPECT_DOUBLE_EQ(degree_assortativity(g), 0.0);
  EXPECT_TRUE(find_cut_structure(g).bridges.empty());
  EXPECT_EQ(drop_isolated(g).graph.num_vertices(), 0);
}

TEST(DegenerateTest, SmallGraphsEveryUndirectedKernel) {
  for (const auto& g : degenerate_graphs()) {
    const vid n = g.num_vertices();
    EXPECT_EQ(static_cast<vid>(connected_components(g).size()), n);
    EXPECT_EQ(static_cast<vid>(core_numbers(g).size()), n);
    const auto cl = clustering_coefficients(g);
    EXPECT_EQ(cl.total_triangles, 0);
    const auto bc = betweenness_centrality(g);
    for (double s : bc.score) EXPECT_DOUBLE_EQ(s, 0.0);
    KBetweennessOptions ko;
    ko.k = 2;
    const auto kbc = k_betweenness_centrality(g, ko);
    EXPECT_EQ(static_cast<vid>(kbc.score.size()), n);
    const auto pr = pagerank(g);
    double sum = 0;
    for (double s : pr.score) sum += s;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    const auto lp = label_propagation(g);
    EXPECT_EQ(static_cast<vid>(lp.labels.size()), n);
    EXPECT_TRUE(find_cut_structure(g).bridges.size() <= 1);
    if (n > 0) {
      const auto b = bfs(g, 0);
      EXPECT_GE(b.num_reached(), 1);
    }
  }
}

TEST(DegenerateTest, DirectedDegenerates) {
  for (const auto& g :
       {make_directed(1, {}), make_directed(1, {{0, 0}}),
        make_directed(2, {{0, 1}}), make_directed(3, {})}) {
    const auto scc = strongly_connected_components(g);
    EXPECT_EQ(static_cast<vid>(scc.size()), g.num_vertices());
    const auto bc = directed_betweenness_centrality(g);
    for (double s : bc.score) EXPECT_DOUBLE_EQ(s, 0.0);
    const auto pr = pagerank(g);
    EXPECT_EQ(static_cast<vid>(pr.score.size()), g.num_vertices());
    const auto rev = reverse(g);
    EXPECT_EQ(rev.num_edges(), g.num_edges());
  }
}

TEST(DegenerateTest, SingleVertexDiameterAndBfs) {
  const auto g = make_undirected(1, {});
  EXPECT_EQ(exact_diameter(g), 0);
  const auto est = estimate_diameter(g);
  EXPECT_EQ(est.longest_distance, 0);
  const auto b = bfs(g, 0);
  EXPECT_EQ(b.max_distance(), 0);
}

TEST(DegenerateTest, SelfLoopOnlyGraphIsAllIsolatedForAnalytics) {
  const auto g = make_undirected(2, {{0, 0}, {1, 1}});
  EXPECT_EQ(g.num_self_loops(), 2);
  const auto cores = core_numbers(g);
  EXPECT_EQ(cores[0], 0);
  const auto cl = clustering_coefficients(g);
  EXPECT_DOUBLE_EQ(cl.coefficient[0], 0.0);
  // BFS through a self-loop stays at distance 0.
  const auto b = bfs(g, 0);
  EXPECT_EQ(b.num_reached(), 1);
}

TEST(DegenerateTest, TransformsOnDegenerates) {
  for (const auto& g : degenerate_graphs()) {
    const auto und = to_undirected(g);
    EXPECT_EQ(und.num_vertices(), g.num_vertices());
    std::vector<char> all(static_cast<std::size_t>(g.num_vertices()), 1);
    const auto sub = induced_subgraph(g, all);
    EXPECT_EQ(sub.graph, g);
    const auto rl = relabel_by_degree(g);
    EXPECT_EQ(rl.graph.num_edges(), g.num_edges());
  }
}

}  // namespace
}  // namespace graphct
