#include "twitter/temporal.hpp"

#include <gtest/gtest.h>

#include "twitter/corpus_gen.hpp"
#include "twitter/datasets.hpp"
#include "util/error.hpp"

namespace graphct::twitter {
namespace {

Tweet tw(std::int64_t id, const std::string& author, const std::string& text,
         std::int64_t ts) {
  return Tweet{id, author, text, ts};
}

std::vector<Tweet> two_hour_stream() {
  // Hour 1 (t in [0, 3600)): a broadcast burst around @hub.
  // Hour 2 (t in [3600, 7200)): a conversation between alice and bob.
  std::vector<Tweet> tweets;
  std::int64_t id = 1;
  for (int i = 0; i < 5; ++i) {
    tweets.push_back(tw(id++, "fan" + std::to_string(i), "RT @hub news",
                        100 * (i + 1)));
  }
  tweets.push_back(tw(id++, "alice", "@bob how is it", 3700));
  tweets.push_back(tw(id++, "bob", "@alice all fine", 3800));
  tweets.push_back(tw(id++, "alice", "@bob great", 3900));
  return tweets;
}

TEST(SlidingWindowTest, TumblingWindowsSplitTheStream) {
  const auto stats = sliding_window_stats(two_hour_stream(),
                                          {.window_seconds = 3600});
  ASSERT_EQ(stats.size(), 2u);

  const auto& w0 = stats[0];
  EXPECT_EQ(w0.tweets, 5);
  EXPECT_EQ(w0.users, 6);  // 5 fans + hub
  EXPECT_EQ(w0.unique_interactions, 5);
  EXPECT_EQ(w0.mutual_pairs, 0);
  EXPECT_EQ(w0.top_user, "hub");
  EXPECT_EQ(w0.top_user_mentions, 5);
  EXPECT_EQ(w0.lwcc_users, 6);

  const auto& w1 = stats[1];
  EXPECT_EQ(w1.tweets, 3);
  EXPECT_EQ(w1.users, 2);
  EXPECT_EQ(w1.mutual_pairs, 1);  // alice <-> bob
  EXPECT_EQ(w1.tweets_with_responses, 3);
}

TEST(SlidingWindowTest, WindowBoundsAreHalfOpen) {
  std::vector<Tweet> tweets{tw(1, "a", "@b", 0), tw(2, "c", "@d", 3600)};
  const auto stats = sliding_window_stats(tweets, {.window_seconds = 3600});
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].tweets, 1);
  EXPECT_EQ(stats[1].tweets, 1);
}

TEST(SlidingWindowTest, OverlappingStride) {
  const auto stats = sliding_window_stats(
      two_hour_stream(), {.window_seconds = 3600, .stride_seconds = 1800});
  // Starts at 100, 1900, 3700 (first tweet ts=100): 3 windows with tweets.
  EXPECT_GE(stats.size(), 2u);
  for (const auto& w : stats) {
    EXPECT_EQ(w.end - w.start, 3600);
    EXPECT_GE(w.tweets, 1);
  }
}

TEST(SlidingWindowTest, MinTweetsFilters) {
  // 600 s windows: the burst window holds 5 tweets, the conversation
  // window 3; a floor of 4 keeps only the burst.
  const auto all = sliding_window_stats(two_hour_stream(),
                                        {.window_seconds = 600});
  const auto filtered = sliding_window_stats(
      two_hour_stream(), {.window_seconds = 600, .min_tweets = 4});
  EXPECT_GT(all.size(), filtered.size());
  for (const auto& w : filtered) EXPECT_GE(w.tweets, 4);
}

TEST(SlidingWindowTest, EmptyStream) {
  EXPECT_TRUE(sliding_window_stats({}, {}).empty());
}

TEST(SlidingWindowTest, UnsortedStreamThrows) {
  std::vector<Tweet> tweets{tw(1, "a", "@b", 100), tw(2, "c", "@d", 50)};
  EXPECT_THROW(sliding_window_stats(tweets, {}), graphct::Error);
}

TEST(SlidingWindowTest, BadWindowThrows) {
  std::vector<Tweet> tweets{tw(1, "a", "@b", 0)};
  EXPECT_THROW(sliding_window_stats(tweets, {.window_seconds = 0}),
               graphct::Error);
}

TEST(HubPersistenceTest, StableHubScoresOne) {
  // @hub is cited in every hour; @flash only in hour 2.
  std::vector<Tweet> tweets;
  std::int64_t id = 1;
  for (int hour = 0; hour < 4; ++hour) {
    const std::int64_t base = hour * 3600;
    tweets.push_back(tw(id++, "u" + std::to_string(id), "@hub again", base + 10));
    tweets.push_back(tw(id++, "v" + std::to_string(id), "@hub more", base + 20));
  }
  tweets.push_back(tw(id++, "w", "@flash once", 3600 + 30));
  std::sort(tweets.begin(), tweets.end(),
            [](const Tweet& a, const Tweet& b) { return a.timestamp < b.timestamp; });

  const auto hubs = hub_persistence(tweets, {.window_seconds = 3600}, 1);
  ASSERT_GE(hubs.size(), 1u);
  EXPECT_EQ(hubs[0].name, "hub");
  EXPECT_DOUBLE_EQ(hubs[0].presence, 1.0);
}

TEST(HubPersistenceTest, BurstyActorScoresLow) {
  std::vector<Tweet> tweets;
  std::int64_t id = 1;
  for (int hour = 0; hour < 5; ++hour) {
    const std::int64_t base = hour * 3600;
    tweets.push_back(tw(id++, "a" + std::to_string(id), "@hub", base + 1));
  }
  // flash gets 2 citations but only within one hour.
  tweets.push_back(tw(id++, "x", "@flash", 2 * 3600 + 100));
  tweets.push_back(tw(id++, "y", "@flash", 2 * 3600 + 200));
  std::sort(tweets.begin(), tweets.end(),
            [](const Tweet& a, const Tweet& b) { return a.timestamp < b.timestamp; });

  const auto hubs = hub_persistence(tweets, {.window_seconds = 3600}, 2);
  ASSERT_EQ(hubs.size(), 2u);
  // Global ranking: hub (5 cites) then flash (2).
  EXPECT_EQ(hubs[0].name, "hub");
  EXPECT_EQ(hubs[1].name, "flash");
  EXPECT_DOUBLE_EQ(hubs[0].presence, 1.0);
  EXPECT_LT(hubs[1].presence, 0.5);
}

TEST(HubPersistenceTest, SelfMentionsExcluded) {
  std::vector<Tweet> tweets{tw(1, "echo", "@echo me", 0),
                            tw(2, "a", "@hub", 10)};
  const auto hubs = hub_persistence(tweets, {.window_seconds = 100}, 2);
  for (const auto& h : hubs) EXPECT_NE(h.name, "echo");
}

TEST(HubPersistenceTest, InvalidTopNThrows) {
  std::vector<Tweet> tweets{tw(1, "a", "@b", 0)};
  EXPECT_THROW(hub_persistence(tweets, {}, 0), graphct::Error);
}

TEST(TemporalIntegrationTest, CorpusHubsPersistAcrossWindows) {
  // On a generated corpus, the Zipf-heavy named hubs should persist across
  // most windows — the "stable broadcast hub" phenomenon.
  auto preset = dataset_preset("tiny");
  preset.corpus.num_tweets = 2000;
  const auto tweets = generate_corpus(preset.corpus);
  const auto span = tweets.back().timestamp - tweets.front().timestamp;
  const auto hubs =
      hub_persistence(tweets, {.window_seconds = span / 8 + 1}, 3);
  ASSERT_GE(hubs.size(), 1u);
  EXPECT_GE(hubs[0].presence, 0.75);
}

}  // namespace
}  // namespace graphct::twitter
