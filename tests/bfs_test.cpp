#include "algs/bfs.hpp"

#include <gtest/gtest.h>

#include "gen/random_graphs.hpp"
#include "gen/shapes.hpp"
#include "test_support.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace graphct {
namespace {

using testing::make_undirected;
using testing::reference_bfs_distances;

TEST(BfsTest, SingleVertex) {
  const auto g = make_undirected(1, {});
  const auto r = bfs(g, 0);
  EXPECT_EQ(r.num_reached(), 1);
  EXPECT_EQ(r.max_distance(), 0);
  EXPECT_EQ(r.distance[0], 0);
  EXPECT_EQ(r.parent[0], 0);
}

TEST(BfsTest, PathDistances) {
  const auto g = path_graph(6);
  const auto r = bfs(g, 0);
  for (vid v = 0; v < 6; ++v) {
    EXPECT_EQ(r.distance[static_cast<std::size_t>(v)], v);
  }
  EXPECT_EQ(r.max_distance(), 5);
  EXPECT_EQ(r.num_reached(), 6);
}

TEST(BfsTest, MiddleOfPath) {
  const auto g = path_graph(7);
  const auto r = bfs(g, 3);
  EXPECT_EQ(r.distance[0], 3);
  EXPECT_EQ(r.distance[6], 3);
  EXPECT_EQ(r.max_distance(), 3);
}

TEST(BfsTest, DisconnectedVerticesUnreached) {
  const auto g = make_undirected(5, {{0, 1}, {3, 4}});
  const auto r = bfs(g, 0);
  EXPECT_EQ(r.num_reached(), 2);
  EXPECT_EQ(r.distance[3], kNoVertex);
  EXPECT_EQ(r.distance[4], kNoVertex);
  EXPECT_EQ(r.parent[3], kNoVertex);
}

TEST(BfsTest, ParentsFormATree) {
  const auto g = erdos_renyi(200, 600, 11);
  const auto r = bfs(g, 0);
  for (vid v = 0; v < g.num_vertices(); ++v) {
    if (r.distance[static_cast<std::size_t>(v)] == kNoVertex) continue;
    if (v == 0) continue;
    const vid p = r.parent[static_cast<std::size_t>(v)];
    ASSERT_NE(p, kNoVertex);
    EXPECT_EQ(r.distance[static_cast<std::size_t>(p)] + 1,
              r.distance[static_cast<std::size_t>(v)]);
    EXPECT_TRUE(g.has_edge(p, v));
  }
}

TEST(BfsTest, OrderGroupsLevelsAndIsSortedWithinLevel) {
  const auto g = erdos_renyi(150, 400, 13);
  const auto r = bfs(g, 0);
  for (std::size_t d = 0; d + 1 < r.level_offsets.size(); ++d) {
    const auto lo = static_cast<std::size_t>(r.level_offsets[d]);
    const auto hi = static_cast<std::size_t>(r.level_offsets[d + 1]);
    for (std::size_t i = lo; i < hi; ++i) {
      EXPECT_EQ(r.distance[static_cast<std::size_t>(r.order[i])],
                static_cast<vid>(d));
      if (i > lo) {
        EXPECT_LT(r.order[i - 1], r.order[i]);
      }
    }
  }
}

TEST(BfsTest, MaxDepthTruncates) {
  const auto g = path_graph(10);
  BfsOptions o;
  o.max_depth = 3;
  const auto r = bfs(g, 0, o);
  EXPECT_EQ(r.num_reached(), 4);  // levels 0..3
  EXPECT_EQ(r.distance[3], 3);
  EXPECT_EQ(r.distance[4], kNoVertex);
}

TEST(BfsTest, MaxDepthZeroReachesOnlySource) {
  const auto g = star_graph(5);
  BfsOptions o;
  o.max_depth = 0;
  const auto r = bfs(g, 0, o);
  EXPECT_EQ(r.num_reached(), 1);
}

TEST(BfsTest, SourceOutOfRangeThrows) {
  const auto g = path_graph(3);
  EXPECT_THROW(bfs(g, 3), Error);
  EXPECT_THROW(bfs(g, -1), Error);
}

TEST(BfsTest, SelfLoopDoesNotChangeDistances) {
  const auto g = make_undirected(3, {{0, 1}, {1, 2}, {1, 1}});
  const auto r = bfs(g, 0);
  EXPECT_EQ(r.distance[1], 1);
  EXPECT_EQ(r.distance[2], 2);
}

TEST(BfsTest, DirectionOptimizingRequiresUndirected) {
  const auto g = testing::make_directed(3, {{0, 1}});
  BfsOptions o;
  o.strategy = BfsStrategy::kDirectionOptimizing;
  EXPECT_THROW(bfs(g, 0, o), Error);
}

TEST(BfsTest, NoParentsOptionLeavesParentEmpty) {
  const auto g = path_graph(6);
  BfsOptions o;
  o.compute_parents = false;
  const auto r = bfs(g, 0, o);
  EXPECT_TRUE(r.parent.empty());
  EXPECT_EQ(r.distance[5], 5);
}

TEST(BfsTest, BfsIntoReusesBuffersAcrossSources) {
  const auto g = erdos_renyi(120, 400, 17);
  BfsOptions o;
  BfsResult buffer;
  for (vid s = 0; s < 10; ++s) {
    bfs_into(g, s, o, buffer);
    EXPECT_EQ(buffer.distance, reference_bfs_distances(g, s)) << "source " << s;
  }
  // Stale state from a big component must not leak into a later search from
  // an isolated vertex.
  const auto iso = make_undirected(5, {{0, 1}});
  bfs_into(iso, 4, o, buffer);
  EXPECT_EQ(buffer.num_reached(), 1);
  EXPECT_EQ(buffer.distance[0], kNoVertex);
}

TEST(EgoNetworkTest, RadiusOneIsClassicEgoNet) {
  // Star with an outlier: ego of the hub at radius 1 is the star itself.
  const auto g = make_undirected(6, {{0, 1}, {0, 2}, {0, 3}, {4, 5}});
  const auto ego = ego_network(g, 0, 1);
  EXPECT_EQ(ego.graph.num_vertices(), 4);
  EXPECT_EQ(ego.orig_ids, (std::vector<vid>{0, 1, 2, 3}));
}

TEST(EgoNetworkTest, RadiusZeroIsJustTheCenter) {
  const auto g = path_graph(5);
  const auto ego = ego_network(g, 2, 0);
  EXPECT_EQ(ego.graph.num_vertices(), 1);
  EXPECT_EQ(ego.orig_ids[0], 2);
}

TEST(EgoNetworkTest, IncludesEdgesAmongNeighbors) {
  // Triangle 0-1-2 with pendant 3 on 1: ego(0, 1) includes the 1-2 edge.
  const auto g = make_undirected(4, {{0, 1}, {1, 2}, {0, 2}, {1, 3}});
  const auto ego = ego_network(g, 0, 1);
  EXPECT_EQ(ego.graph.num_vertices(), 3);
  EXPECT_EQ(ego.graph.num_edges(), 3);
}

TEST(EgoNetworkTest, LargeRadiusCoversComponent) {
  const auto g = make_undirected(6, {{0, 1}, {1, 2}, {2, 3}, {4, 5}});
  const auto ego = ego_network(g, 0, 100);
  EXPECT_EQ(ego.graph.num_vertices(), 4);  // never crosses components
}

TEST(EgoNetworkTest, NegativeRadiusThrows) {
  const auto g = path_graph(3);
  EXPECT_THROW(ego_network(g, 0, -1), Error);
}

TEST(BfsTest, UnsortedOrderStillGroupsLevels) {
  const auto g = erdos_renyi(150, 500, 19);
  BfsOptions o;
  o.deterministic_order = false;
  const auto r = bfs(g, 0, o);
  for (std::size_t d = 0; d + 1 < r.level_offsets.size(); ++d) {
    for (auto i = static_cast<std::size_t>(r.level_offsets[d]);
         i < static_cast<std::size_t>(r.level_offsets[d + 1]); ++i) {
      EXPECT_EQ(r.distance[static_cast<std::size_t>(r.order[i])],
                static_cast<vid>(d));
    }
  }
}

TEST(BfsTest, DeterministicAcrossThreadCounts) {
  // With deterministic_order, the vertex order, level offsets, and
  // distances must be byte-identical no matter how many threads ran the
  // search — the prefix-sum compaction emits each level in ascending id
  // order by construction.
  const auto g = erdos_renyi(3000, 15000, 77);
  BfsOptions o;
  o.deterministic_order = true;
  for (auto strategy :
       {BfsStrategy::kTopDown, BfsStrategy::kDirectionOptimizing}) {
    o.strategy = strategy;
    set_num_threads(1);
    const auto base = bfs(g, 0, o);
    for (int t : {2, 8}) {
      set_num_threads(t);
      const auto r = bfs(g, 0, o);
      EXPECT_EQ(r.order, base.order) << "threads=" << t;
      EXPECT_EQ(r.level_offsets, base.level_offsets) << "threads=" << t;
      EXPECT_EQ(r.distance, base.distance) << "threads=" << t;
    }
    set_num_threads(0);

    // Each level must come out in ascending vertex id.
    for (std::size_t lvl = 0; lvl + 1 < base.level_offsets.size(); ++lvl) {
      for (auto i = base.level_offsets[lvl] + 1;
           i < base.level_offsets[lvl + 1]; ++i) {
        EXPECT_LT(base.order[static_cast<std::size_t>(i - 1)],
                  base.order[static_cast<std::size_t>(i)]);
      }
    }
  }
}

// Property sweep: top-down and direction-optimizing must both match the
// serial reference on random graphs of assorted shapes.
class BfsPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BfsPropertyTest, MatchesReferenceDistances) {
  Rng rng(GetParam());
  const vid n = 20 + static_cast<vid>(rng.next_below(200));
  const auto m = static_cast<std::int64_t>(n * (1 + rng.next_below(6)));
  const auto g = erdos_renyi(n, m, GetParam() * 7 + 1);
  const vid src = static_cast<vid>(rng.next_below(static_cast<std::uint64_t>(n)));

  const auto expect = reference_bfs_distances(g, src);

  const auto td = bfs(g, src);
  EXPECT_EQ(td.distance, expect);

  BfsOptions dopt;
  dopt.strategy = BfsStrategy::kDirectionOptimizing;
  const auto du = bfs(g, src, dopt);
  EXPECT_EQ(du.distance, expect);

  // Aggressive switching thresholds force bottom-up sweeps even on small
  // graphs, exercising both directions.
  dopt.alpha = 1.0;
  dopt.beta = 1e9;
  const auto forced = bfs(g, src, dopt);
  EXPECT_EQ(forced.distance, expect);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, BfsPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace graphct
