#include "stream/streaming_clustering.hpp"

#include <gtest/gtest.h>

#include "algs/clustering.hpp"
#include "gen/random_graphs.hpp"
#include "gen/shapes.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace graphct {
namespace {

// Assert streaming counts equal a fresh static recomputation.
void expect_matches_static(const StreamingClustering& sc) {
  const auto snap = sc.graph().snapshot();
  const auto stat = clustering_coefficients(snap);
  ASSERT_EQ(stat.triangles.size(),
            static_cast<std::size_t>(sc.graph().num_vertices()));
  for (vid v = 0; v < sc.graph().num_vertices(); ++v) {
    EXPECT_EQ(sc.triangles(v), stat.triangles[static_cast<std::size_t>(v)])
        << "vertex " << v;
    EXPECT_NEAR(sc.coefficient(v),
                stat.coefficient[static_cast<std::size_t>(v)], 1e-12);
  }
  EXPECT_EQ(sc.total_triangles(), stat.total_triangles);
  EXPECT_NEAR(sc.global_clustering(), stat.global_clustering, 1e-12);
}

TEST(StreamingClusteringTest, TriangleForming) {
  StreamingClustering sc(4);
  sc.insert_edge(0, 1);
  sc.insert_edge(1, 2);
  EXPECT_EQ(sc.total_triangles(), 0);
  sc.insert_edge(0, 2);  // closes the triangle
  EXPECT_EQ(sc.total_triangles(), 1);
  EXPECT_EQ(sc.triangles(0), 1);
  EXPECT_EQ(sc.triangles(1), 1);
  EXPECT_EQ(sc.triangles(2), 1);
  EXPECT_EQ(sc.triangles(3), 0);
  EXPECT_DOUBLE_EQ(sc.coefficient(0), 1.0);
}

TEST(StreamingClusteringTest, DeletionReverts) {
  StreamingClustering sc(4);
  sc.insert_edge(0, 1);
  sc.insert_edge(1, 2);
  sc.insert_edge(0, 2);
  sc.insert_edge(2, 3);
  sc.remove_edge(0, 2);
  EXPECT_EQ(sc.total_triangles(), 0);
  for (vid v = 0; v < 4; ++v) EXPECT_EQ(sc.triangles(v), 0);
}

TEST(StreamingClusteringTest, DuplicateOperationsAreNoops) {
  StreamingClustering sc(3);
  EXPECT_TRUE(sc.insert_edge(0, 1));
  EXPECT_FALSE(sc.insert_edge(0, 1));
  EXPECT_FALSE(sc.remove_edge(1, 2));
  EXPECT_EQ(sc.total_triangles(), 0);
}

TEST(StreamingClusteringTest, SelfLoopsNeverCount) {
  StreamingClustering sc(3);
  sc.insert_edge(0, 0);
  sc.insert_edge(0, 1);
  sc.insert_edge(1, 2);
  sc.insert_edge(0, 2);
  EXPECT_EQ(sc.total_triangles(), 1);
  // Coefficient of 0 ignores the self-loop in its degree.
  EXPECT_DOUBLE_EQ(sc.coefficient(0), 1.0);
  expect_matches_static(sc);
}

TEST(StreamingClusteringTest, SeededFromStaticGraph) {
  const auto g = watts_strogatz(100, 3, 0.1, 5);
  StreamingClustering sc(g);
  expect_matches_static(sc);
  // Continue streaming on top of the seed.
  sc.insert_edge(0, 50);
  sc.insert_edge(0, 51);
  sc.remove_edge(0, 1);
  expect_matches_static(sc);
}

TEST(StreamingClusteringTest, KiteGraphStepByStep) {
  // Build K4 edge by edge; triangle count follows C(k,3) growth.
  StreamingClustering sc(4);
  const std::pair<vid, vid> edges[] = {{0, 1}, {0, 2}, {1, 2},
                                       {0, 3}, {1, 3}, {2, 3}};
  const std::int64_t expect_total[] = {0, 0, 1, 1, 2, 4};
  for (int i = 0; i < 6; ++i) {
    sc.insert_edge(edges[i].first, edges[i].second);
    EXPECT_EQ(sc.total_triangles(), expect_total[i]) << "after edge " << i;
  }
}

class StreamingChurnTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamingChurnTest, AlwaysMatchesStaticRecomputation) {
  Rng rng(GetParam());
  const vid n = 25;
  StreamingClustering sc(n);
  for (int step = 0; step < 600; ++step) {
    const vid u = static_cast<vid>(rng.next_below(n));
    const vid v = static_cast<vid>(rng.next_below(n));
    if (rng.next_bool(0.65)) {
      sc.insert_edge(u, v);
    } else {
      sc.remove_edge(u, v);
    }
    if (step % 100 == 99) expect_matches_static(sc);
  }
  expect_matches_static(sc);
}

INSTANTIATE_TEST_SUITE_P(RandomChurn, StreamingChurnTest,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace graphct
