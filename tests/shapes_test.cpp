#include "gen/shapes.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/error.hpp"

namespace graphct {
namespace {

TEST(ShapesTest, PathGraph) {
  const auto g = path_graph(5);
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(2), 2);
  const auto single = path_graph(1);
  EXPECT_EQ(single.num_edges(), 0);
}

TEST(ShapesTest, CycleGraph) {
  const auto g = cycle_graph(6);
  EXPECT_EQ(g.num_edges(), 6);
  for (vid v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2);
  EXPECT_TRUE(g.has_edge(5, 0));
  EXPECT_THROW(cycle_graph(2), Error);
}

TEST(ShapesTest, StarGraph) {
  const auto g = star_graph(7);
  EXPECT_EQ(g.degree(0), 6);
  EXPECT_EQ(g.num_edges(), 6);
}

TEST(ShapesTest, CompleteGraph) {
  const auto g = complete_graph(6);
  EXPECT_EQ(g.num_edges(), 15);
  for (vid v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5);
}

TEST(ShapesTest, BalancedTree) {
  const auto g = balanced_tree(2, 3);  // 1+2+4+8 = 15 vertices
  EXPECT_EQ(g.num_vertices(), 15);
  EXPECT_EQ(g.num_edges(), 14);
  EXPECT_EQ(g.degree(0), 2);   // root
  EXPECT_EQ(g.degree(14), 1);  // leaf
  const auto trivial = balanced_tree(3, 0);
  EXPECT_EQ(trivial.num_vertices(), 1);
}

TEST(ShapesTest, GridGraph) {
  const auto g = grid_graph(3, 4);
  EXPECT_EQ(g.num_vertices(), 12);
  EXPECT_EQ(g.num_edges(), 3 * 3 + 2 * 4);  // horizontal + vertical
  EXPECT_EQ(g.degree(0), 2);                // corner
  EXPECT_EQ(g.degree(5), 4);                // interior (1,1)
}

TEST(ShapesTest, StarOfCliques) {
  const auto g = star_of_cliques(3, 4);
  EXPECT_EQ(g.num_vertices(), 13);
  // 3 cliques of C(4,2)=6 edges plus 3 hub links.
  EXPECT_EQ(g.num_edges(), 21);
  EXPECT_EQ(g.degree(0), 3);
}

TEST(ShapesTest, BarbellGraph) {
  const auto g = barbell_graph(5);
  EXPECT_EQ(g.num_vertices(), 10);
  EXPECT_EQ(g.num_edges(), 2 * 10 + 1);
  EXPECT_EQ(g.degree(4), 5);  // bridge endpoint
  EXPECT_TRUE(g.has_edge(4, 5));
}

TEST(ShapesTest, InvalidArgumentsThrow) {
  EXPECT_THROW(path_graph(0), Error);
  EXPECT_THROW(star_graph(1), Error);
  EXPECT_THROW(balanced_tree(0, 2), Error);
  EXPECT_THROW(grid_graph(0, 5), Error);
  EXPECT_THROW(star_of_cliques(0, 3), Error);
  EXPECT_THROW(barbell_graph(1), Error);
}

}  // namespace
}  // namespace graphct
