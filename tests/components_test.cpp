#include "algs/connected_components.hpp"

#include <gtest/gtest.h>

#include "gen/random_graphs.hpp"
#include "gen/shapes.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace graphct {
namespace {

using testing::make_directed;
using testing::make_undirected;
using testing::reference_components;

TEST(ComponentsTest, SingleComponent) {
  const auto g = cycle_graph(8);
  const auto labels = connected_components(g);
  for (vid v = 0; v < 8; ++v) {
    EXPECT_EQ(labels[static_cast<std::size_t>(v)], 0);
  }
}

TEST(ComponentsTest, AllIsolated) {
  const auto g = make_undirected(5, {});
  const auto labels = connected_components(g);
  for (vid v = 0; v < 5; ++v) {
    EXPECT_EQ(labels[static_cast<std::size_t>(v)], v);
  }
  const auto stats = component_stats(labels);
  EXPECT_EQ(stats.num_components, 5);
  EXPECT_EQ(stats.largest_size(), 1);
}

TEST(ComponentsTest, TwoComponentsMinLabel) {
  const auto g = make_undirected(6, {{3, 5}, {1, 2}, {2, 0}});
  const auto labels = connected_components(g);
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[1], 0);
  EXPECT_EQ(labels[2], 0);
  EXPECT_EQ(labels[3], 3);
  EXPECT_EQ(labels[5], 3);
  EXPECT_EQ(labels[4], 4);
}

TEST(ComponentsTest, DirectedInputThrows) {
  const auto g = make_directed(3, {{0, 1}});
  EXPECT_THROW(connected_components(g), Error);
}

TEST(WeakComponentsTest, SymmetrizesDirected) {
  const auto g = make_directed(4, {{0, 1}, {2, 1}, {3, 3}});
  const auto labels = weak_components(g);
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[1], 0);
  EXPECT_EQ(labels[2], 0);
  EXPECT_EQ(labels[3], 3);
}

TEST(ComponentStatsTest, SortsBySizeThenLabel) {
  std::vector<vid> labels{0, 0, 0, 3, 3, 5, 6};
  const auto stats = component_stats(labels);
  EXPECT_EQ(stats.num_components, 4);
  EXPECT_EQ(stats.sizes[0], (std::pair<vid, std::int64_t>{0, 3}));
  EXPECT_EQ(stats.sizes[1], (std::pair<vid, std::int64_t>{3, 2}));
  EXPECT_EQ(stats.sizes[2], (std::pair<vid, std::int64_t>{5, 1}));
  EXPECT_EQ(stats.sizes[3], (std::pair<vid, std::int64_t>{6, 1}));
  EXPECT_EQ(stats.largest_label(), 0);
  EXPECT_EQ(stats.largest_size(), 3);
}

TEST(LargestComponentTest, ExtractsIt) {
  const auto g = make_undirected(7, {{0, 1}, {1, 2}, {2, 3}, {5, 6}});
  const auto sub = largest_component(g);
  EXPECT_EQ(sub.graph.num_vertices(), 4);
  EXPECT_EQ(sub.orig_ids, (std::vector<vid>{0, 1, 2, 3}));
}

TEST(NthLargestComponentTest, SecondComponent) {
  const auto g = make_undirected(7, {{0, 1}, {1, 2}, {2, 3}, {5, 6}});
  const auto sub = nth_largest_component(g, 1);
  EXPECT_EQ(sub.graph.num_vertices(), 2);
  EXPECT_EQ(sub.orig_ids, (std::vector<vid>{5, 6}));
}

TEST(NthLargestComponentTest, OutOfRangeThrows) {
  const auto g = make_undirected(3, {{0, 1}});
  EXPECT_THROW(nth_largest_component(g, 5), Error);
}

TEST(LargestComponentTest, DirectedKeepsArcs) {
  const auto g = make_directed(4, {{0, 1}, {1, 2}});
  const auto sub = largest_component(g);
  EXPECT_TRUE(sub.graph.directed());
  EXPECT_EQ(sub.graph.num_vertices(), 3);
  EXPECT_TRUE(sub.graph.has_edge(0, 1));
  EXPECT_FALSE(sub.graph.has_edge(1, 0));
}

// Property sweep: parallel labels match the serial BFS reference exactly
// (both are canonical min-id labels) across random fragmented graphs.
class ComponentsPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ComponentsPropertyTest, MatchesReferenceLabels) {
  Rng rng(GetParam());
  const vid n = 30 + static_cast<vid>(rng.next_below(300));
  // Sparse: expected fragmentation into many components.
  const auto m = static_cast<std::int64_t>(n / (1 + rng.next_below(3)));
  const auto g = erdos_renyi(n, m, GetParam() * 13 + 5);
  EXPECT_EQ(connected_components(g), reference_components(g));
}

INSTANTIATE_TEST_SUITE_P(RandomSparseGraphs, ComponentsPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 25));

TEST(ComponentsScaleTest, StarOfCliquesStructure) {
  const auto g = star_of_cliques(10, 5);
  const auto labels = connected_components(g);
  const auto stats = component_stats(labels);
  EXPECT_EQ(stats.num_components, 1);  // hub joins every clique
}

}  // namespace
}  // namespace graphct
