/// \file server_test.cpp
/// graphctd subsystem tests: the thread-safe result cache, the graph
/// registry's load-once/refcounted sharing, the job queue's per-graph
/// serialization and accounting, and whole sessions over the stdio
/// transport. The concurrency tests use rendezvous flags rather than
/// sleeps, so they are deterministic under sanitizers; the cache-hammer
/// test is the one intended for -fsanitize=thread CI runs.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <future>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "gen/rmat.hpp"
#include "gen/shapes.hpp"
#include "graph/io_dimacs.hpp"
#include "server/server.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace graphct::server {
namespace {

using namespace std::chrono_literals;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

script::InterpreterOptions fast_opts() {
  script::InterpreterOptions o;
  o.toolkit.diameter_samples = 16;
  return o;
}

ServerOptions fast_server_opts(int workers = 4) {
  ServerOptions o;
  o.workers = workers;
  o.interpreter = fast_opts();
  return o;
}

// ---------------------------------------------------------------- cache --

TEST(ResultCacheTest, ComputesOnceAndCountsTraffic) {
  ResultCache cache;
  int computed = 0;
  auto a = cache.get_or_compute<int>("answer", [&] {
    ++computed;
    return 42;
  });
  auto b = cache.get_or_compute<int>("answer", [&] {
    ++computed;
    return 0;  // must not run
  });
  EXPECT_EQ(*a, 42);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(computed, 1);
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.entries, 1);
}

TEST(ResultCacheTest, FailedComputationRetries) {
  ResultCache cache;
  EXPECT_THROW(cache.get_or_compute<int>(
                   "k", []() -> int { throw Error("boom"); }),
               Error);
  auto v = cache.get_or_compute<int>("k", [] { return 7; });
  EXPECT_EQ(*v, 7);
}

TEST(ResultCacheTest, InvalidatePreservesOutstandingValues) {
  ResultCache cache;
  auto v = cache.get_or_compute<std::vector<int>>(
      "v", [] { return std::vector<int>{1, 2, 3}; });
  cache.invalidate();
  EXPECT_EQ(v->size(), 3u);  // our shared_ptr keeps the value alive
  EXPECT_EQ(cache.stats().entries, 0);
}

TEST(ResultCacheTest, ConcurrentFirstCallersComputeOnce) {
  ResultCache cache;
  std::atomic<int> computed{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const int>> results(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      results[static_cast<std::size_t>(t)] =
          cache.get_or_compute<int>("shared", [&] {
            std::this_thread::sleep_for(10ms);  // widen the race window
            return computed.fetch_add(1) + 100;
          });
    });
  }
  go.store(true);
  for (auto& th : threads) th.join();
  EXPECT_EQ(computed.load(), 1);
  for (const auto& r : results) {
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r.get(), results[0].get());  // everyone shares one object
  }
}

// ------------------------------------------------------------- registry --

TEST(GraphRegistryTest, LoadOnceAndShare) {
  const std::string path = temp_path("gct_registry.dimacs");
  write_dimacs(path_graph(12), path);
  GraphRegistry reg;
  auto first = reg.load_graph("p", path);
  auto second = reg.load_graph("p", "/nonexistent/ignored");  // name is taken
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(reg.get_graph("p").get(), first.get());
  EXPECT_EQ(reg.get_graph("missing"), nullptr);
  std::remove(path.c_str());
}

TEST(GraphRegistryTest, DropRespectsOutstandingReferences) {
  GraphRegistry reg;
  auto held = reg.add("g", path_graph(6));
  EXPECT_EQ(reg.list().size(), 1u);
  EXPECT_TRUE(reg.drop("g"));
  EXPECT_FALSE(reg.drop("g"));
  EXPECT_EQ(reg.get_graph("g"), nullptr);
  // The session's reference keeps the toolkit alive after the drop.
  EXPECT_EQ(held->graph().num_vertices(), 6);
}

TEST(GraphRegistryTest, ListReportsSessionsHoldingTheGraph) {
  GraphRegistry reg;
  auto a = reg.add("g", path_graph(4));
  auto b = reg.get_graph("g");
  const auto rows = reg.list();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].name, "g");
  EXPECT_EQ(rows[0].vertices, 4);
  EXPECT_EQ(rows[0].sessions, 2);  // a and b, minus the registry's own ref
}

// ------------------------------------------------------------ job queue --

TEST(JobQueueTest, RunsJobAndRecordsAccounting) {
  JobQueue q(2);
  const auto id = q.submit("s1", "graph:g", "print graph",
                           [](JobCounters& c) -> std::string {
                             c.cache_hits = 3;
                             return "out\n";
                           });
  const JobRecord r = q.wait(id);
  EXPECT_EQ(r.state, JobState::kDone);
  EXPECT_EQ(r.output, "out\n");
  EXPECT_EQ(r.counters.cache_hits, 3);
  EXPECT_GT(r.threads, 0);
  EXPECT_GE(r.run_seconds, 0.0);
}

TEST(JobQueueTest, FailureIsCapturedNotThrown) {
  JobQueue q(1);
  const auto id = q.submit("s1", "", "bad", [](JobCounters&) -> std::string {
    throw Error("kernel exploded");
  });
  const JobRecord r = q.wait(id);
  EXPECT_EQ(r.state, JobState::kFailed);
  EXPECT_NE(r.error.find("kernel exploded"), std::string::npos);
}

TEST(JobQueueTest, CancelQueuedJob) {
  JobQueue q(1);
  std::promise<void> release;
  auto released = release.get_future().share();
  const auto blocker =
      q.submit("s1", "graph:a", "slow", [released](JobCounters&) {
        released.wait();
        return std::string("done\n");
      });
  const auto victim = q.submit("s1", "graph:b", "never",
                               [](JobCounters&) { return std::string(); });
  EXPECT_TRUE(q.cancel(victim));
  EXPECT_FALSE(q.cancel(victim));  // already terminal
  release.set_value();
  EXPECT_EQ(q.wait(blocker).state, JobState::kDone);
  EXPECT_EQ(q.wait(victim).state, JobState::kCancelled);
  EXPECT_FALSE(q.cancel(blocker));  // running/terminal jobs not cancellable
}

TEST(JobQueueTest, SameGraphJobsNeverOverlap) {
  JobQueue q(4);
  std::atomic<int> running{0};
  std::atomic<int> max_running{0};
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(q.submit("s1", "graph:same", "job", [&](JobCounters&) {
      const int now = running.fetch_add(1) + 1;
      int prev = max_running.load();
      while (now > prev && !max_running.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(2ms);
      running.fetch_sub(1);
      return std::string();
    }));
  }
  for (const auto id : ids) {
    EXPECT_EQ(q.wait(id).state, JobState::kDone);
  }
  EXPECT_EQ(max_running.load(), 1);  // serialized per graph
}

TEST(JobQueueTest, DifferentGraphJobsRunConcurrently) {
  JobQueue q(2);
  // Deterministic rendezvous: each job waits for the other to start, so
  // both can only finish if they run at the same time.
  std::promise<void> a_started, b_started;
  auto a_fut = a_started.get_future().share();
  auto b_fut = b_started.get_future().share();
  const auto a = q.submit("s1", "graph:a", "a", [&](JobCounters&) {
    a_started.set_value();
    EXPECT_EQ(b_fut.wait_for(5s), std::future_status::ready);
    return std::string();
  });
  const auto b = q.submit("s2", "graph:b", "b", [&](JobCounters&) {
    b_started.set_value();
    EXPECT_EQ(a_fut.wait_for(5s), std::future_status::ready);
    return std::string();
  });
  EXPECT_EQ(q.wait(a).state, JobState::kDone);
  EXPECT_EQ(q.wait(b).state, JobState::kDone);
}

// ------------------------------------------------------------- sessions --

/// Split a protocol response into lines.
std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) out.push_back(line);
  return out;
}

/// The "ok job=..." terminator lines of a transcript, in order.
std::vector<std::string> ok_lines(const std::string& transcript) {
  std::vector<std::string> out;
  for (const auto& line : lines_of(transcript)) {
    if (line.rfind("ok job=", 0) == 0) out.push_back(line);
  }
  return out;
}

TEST(ServerTest, StdioSessionServesRepeatedQueryFromCache) {
  const std::string path = temp_path("gct_server.dimacs");
  write_dimacs(star_of_cliques(4, 8), path);

  Server srv(fast_server_opts());
  std::istringstream in("load graph g1 " + path +
                        "\n"
                        "print components\n"
                        "print components\n"
                        "quit\n");
  std::ostringstream out;
  srv.serve_stream(in, out);
  const std::string transcript = out.str();
  std::remove(path.c_str());

  EXPECT_NE(transcript.find("graphctd ready"), std::string::npos);
  EXPECT_NE(transcript.find("loaded graph 'g1'"), std::string::npos);
  EXPECT_NE(transcript.find("components: "), std::string::npos);

  const auto oks = ok_lines(transcript);
  ASSERT_EQ(oks.size(), 3u);  // load + print + print
  // First `print components` computes (misses, no hits)...
  EXPECT_NE(oks[1].find("graph=graph:g1"), std::string::npos);
  EXPECT_NE(oks[1].find("cache=0/"), std::string::npos);
  EXPECT_EQ(oks[1].find("cache=0/0"), std::string::npos);
  // ...and the repeat is served from cache: hits, zero misses.
  EXPECT_NE(oks[2].find("/0"), std::string::npos);
  EXPECT_EQ(oks[2].find("cache=0/"), std::string::npos);
}

TEST(ServerTest, ErrorsAreReportedNotFatal) {
  Server srv(fast_server_opts());
  std::istringstream in(
      "print components\n"   // no graph loaded
      "frobnicate\n"         // unknown command
      "generate rmat 5 4\n"  // still works afterwards
      "quit\n");
  std::ostringstream out;
  srv.serve_stream(in, out);
  const std::string t = out.str();
  EXPECT_NE(t.find("error script line 1: no graph loaded"), std::string::npos);
  EXPECT_NE(t.find("error script line 1: unknown command"), std::string::npos);
  EXPECT_NE(t.find("generated rmat scale 5"), std::string::npos);
}

TEST(ServerTest, ServerVerbsListGraphsAndJobs) {
  Server srv(fast_server_opts());
  srv.registry().add("resident", path_graph(9));
  auto session = srv.open_session("analyst");
  EXPECT_NE(session->handle_line("graphs").find("resident"),
            std::string::npos);
  session->handle_line("use graph resident");
  session->handle_line("print degrees");
  const std::string jobs = session->handle_line("jobs");
  EXPECT_NE(jobs.find("print degrees"), std::string::npos);
  EXPECT_NE(jobs.find("done"), std::string::npos);
  const std::string info = session->handle_line("session");
  EXPECT_NE(info.find("analyst"), std::string::npos);
  EXPECT_NE(info.find("graph:resident"), std::string::npos);
}

TEST(ServerTest, MetricsVerbExposesRegistry) {
  Server srv(fast_server_opts());
  auto session = srv.open_session("analyst");
  session->handle_line("generate rmat 6 4");
  session->handle_line("print components");

  const std::string prom = session->handle_line("metrics");
  EXPECT_NE(prom.find("# TYPE"), std::string::npos);
  EXPECT_NE(prom.find("gct_kernel_runs_total{kernel=\"components\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("gct_result_cache_"), std::string::npos);
  EXPECT_EQ(prom.substr(prom.size() - 3), "ok\n");

  const std::string json = session->handle_line("metrics json");
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  // One JSON line plus the ok terminator.
  EXPECT_EQ(std::count(json.begin(), json.end(), '\n'), 2);
  EXPECT_EQ(json.substr(json.size() - 3), "ok\n");
}

TEST(ServerTest, ThreadsCommandPinsJobParallelism) {
  Server srv(fast_server_opts(2));
  auto session = srv.open_session();
  session->handle_line("generate rmat 6 4");
  EXPECT_NE(session->handle_line("threads 2").find("threads set to 2"),
            std::string::npos);
  const std::string resp = session->handle_line("print degrees");
  EXPECT_NE(resp.find("threads=2"), std::string::npos);
}

TEST(ServerTest, ConcurrentSessionsOnDifferentGraphsMakeProgress) {
  Server srv(fast_server_opts(2));
  srv.registry().add("g1", path_graph(64));
  srv.registry().add("g2", star_graph(64));

  auto s1 = srv.open_session("s1");
  auto s2 = srv.open_session("s2");
  EXPECT_NE(s1->handle_line("use graph g1").find("ok"), std::string::npos);
  EXPECT_NE(s2->handle_line("use graph g2").find("ok"), std::string::npos);

  // Deterministically occupy g1: a direct job on s1's graph key blocks
  // until released, so s1's next command must queue behind it...
  std::promise<void> release;
  auto released = release.get_future().share();
  std::atomic<bool> blocker_running{false};
  srv.jobs().submit("test", "graph:g1", "blocker", [&](JobCounters&) {
    blocker_running.store(true);
    released.wait();
    return std::string();
  });
  while (!blocker_running.load()) std::this_thread::yield();

  std::thread s1_thread([&] {
    // Queues behind the blocker; completes only after release.
    EXPECT_NE(s1->handle_line("print components").find("ok job="),
              std::string::npos);
  });

  // ...while s2, on a different graph, makes progress immediately even
  // though g1 is wedged.
  const std::string s2_resp = s2->handle_line("print components");
  EXPECT_NE(s2_resp.find("components: 1"), std::string::npos);
  EXPECT_NE(s2_resp.find("ok job="), std::string::npos);

  // s1's job is still waiting on the busy graph.
  bool s1_job_waiting = false;
  for (const auto& job : srv.jobs().snapshot()) {
    if (job.command == "print components" && job.session == "s1") {
      s1_job_waiting = !job.terminal();
    }
  }
  EXPECT_TRUE(s1_job_waiting);

  release.set_value();
  s1_thread.join();
}

TEST(ServerTest, SharedGraphExtractionStaysPrivateToTheSession) {
  Server srv(fast_server_opts(2));
  srv.registry().add("shared", star_of_cliques(3, 5));
  auto s1 = srv.open_session("s1");
  auto s2 = srv.open_session("s2");
  s1->handle_line("use graph shared");
  s2->handle_line("use graph shared");
  const auto n = srv.registry().get_graph("shared")->graph().num_vertices();

  s1->handle_line("extract kcore 4");  // drops the degree-3 hub
  // s1 now sees a private subgraph; s2 and the registry are untouched.
  EXPECT_LT(s1->interpreter().current().graph().num_vertices(), n);
  EXPECT_EQ(s2->interpreter().current().graph().num_vertices(), n);
  EXPECT_EQ(srv.registry().get_graph("shared")->graph().num_vertices(), n);
  EXPECT_EQ(s1->interpreter().current_graph_key(), "");  // private now
}

// The satellite stress test: ≥8 threads hammer one registry-shared graph
// with mixed kernels; every result must match a single-threaded run on an
// identical private graph. Run under -fsanitize=thread in CI.
TEST(ServerTest, ConcurrentMixedKernelsMatchSingleThreadedRun) {
  RmatOptions r;
  r.scale = 8;
  r.edge_factor = 8;
  r.seed = 99;
  const CsrGraph graph = rmat_graph(r);

  // Single-threaded reference on a private, identical graph.
  ToolkitOptions topts;
  topts.diameter_samples = 16;
  topts.estimate_diameter_on_load = false;
  Toolkit reference(graph, topts);
  const auto ref_components = reference.components_stats().num_components;
  const auto ref_largest = reference.components_stats().largest_size();
  const double ref_mean_degree = reference.degree_stats().mean;
  const auto ref_triangles = reference.clustering().total_triangles;
  const auto ref_diameter = reference.diameter().estimate;
  BetweennessOptions bo;
  bo.num_sources = 32;
  bo.seed = 5;
  const double ref_bc_sum = [&] {
    double s = 0;
    for (double x : reference.betweenness(bo).score) s += x;
    return s;
  }();

  GraphRegistry reg(topts);
  auto shared = reg.add("hammer", graph);

  constexpr int kThreads = 8;
  constexpr int kRounds = 6;
  std::atomic<bool> go{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      auto tk = reg.get_graph("hammer");
      for (int round = 0; round < kRounds; ++round) {
        // Each thread starts at a different kernel so first-computations
        // race from every direction.
        switch ((t + round) % 5) {
          case 0:
            if (tk->components_stats().num_components != ref_components ||
                tk->components_stats().largest_size() != ref_largest) {
              failures.fetch_add(1);
            }
            break;
          case 1:
            if (std::abs(tk->degree_stats().mean - ref_mean_degree) > 1e-9) {
              failures.fetch_add(1);
            }
            break;
          case 2:
            if (tk->clustering().total_triangles != ref_triangles) {
              failures.fetch_add(1);
            }
            break;
          case 3:
            if (tk->diameter().estimate != ref_diameter) {
              failures.fetch_add(1);
            }
            break;
          case 4: {
            double s = 0;
            for (double x : tk->betweenness(bo).score) s += x;
            if (std::abs(s - ref_bc_sum) >
                1e-6 * std::max(1.0, std::abs(ref_bc_sum))) {
              failures.fetch_add(1);
            }
            break;
          }
        }
      }
    });
  }
  go.store(true);
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // Every kernel computed exactly once: traffic shows at most one miss per
  // distinct cache key (5 kernels + component_stats' nested components).
  const auto stats = shared->cache_stats();
  EXPECT_LE(stats.misses, 6);
  EXPECT_GE(stats.hits, kThreads * kRounds - stats.misses);
}

}  // namespace
}  // namespace graphct::server
