/// \file server_test.cpp
/// graphctd subsystem tests: the thread-safe result cache, the graph
/// registry's load-once/refcounted sharing, the job queue's per-graph
/// serialization and accounting, and whole sessions over the stdio
/// transport. The concurrency tests use rendezvous flags rather than
/// sleeps, so they are deterministic under sanitizers; the cache-hammer
/// test is the one intended for -fsanitize=thread CI runs.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "gen/rmat.hpp"
#include "gen/shapes.hpp"
#include "graph/io_dimacs.hpp"
#include "server/server.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace graphct::server {
namespace {

using namespace std::chrono_literals;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

script::InterpreterOptions fast_opts() {
  script::InterpreterOptions o;
  o.toolkit.diameter_samples = 16;
  return o;
}

ServerOptions fast_server_opts(int workers = 4) {
  ServerOptions o;
  o.workers = workers;
  o.interpreter = fast_opts();
  return o;
}

// ---------------------------------------------------------------- cache --

TEST(ResultCacheTest, ComputesOnceAndCountsTraffic) {
  ResultCache cache;
  int computed = 0;
  auto a = cache.get_or_compute<int>("answer", [&] {
    ++computed;
    return 42;
  });
  auto b = cache.get_or_compute<int>("answer", [&] {
    ++computed;
    return 0;  // must not run
  });
  EXPECT_EQ(*a, 42);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(computed, 1);
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.entries, 1);
}

TEST(ResultCacheTest, FailedComputationRetries) {
  ResultCache cache;
  EXPECT_THROW(cache.get_or_compute<int>(
                   "k", []() -> int { throw Error("boom"); }),
               Error);
  auto v = cache.get_or_compute<int>("k", [] { return 7; });
  EXPECT_EQ(*v, 7);
}

TEST(ResultCacheTest, InvalidatePreservesOutstandingValues) {
  ResultCache cache;
  auto v = cache.get_or_compute<std::vector<int>>(
      "v", [] { return std::vector<int>{1, 2, 3}; });
  cache.invalidate();
  EXPECT_EQ(v->size(), 3u);  // our shared_ptr keeps the value alive
  EXPECT_EQ(cache.stats().entries, 0);
}

TEST(ResultCacheTest, ConcurrentFirstCallersComputeOnce) {
  ResultCache cache;
  std::atomic<int> computed{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const int>> results(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      results[static_cast<std::size_t>(t)] =
          cache.get_or_compute<int>("shared", [&] {
            std::this_thread::sleep_for(10ms);  // widen the race window
            return computed.fetch_add(1) + 100;
          });
    });
  }
  go.store(true);
  for (auto& th : threads) th.join();
  EXPECT_EQ(computed.load(), 1);
  for (const auto& r : results) {
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r.get(), results[0].get());  // everyone shares one object
  }
}

// ------------------------------------------------------- cache eviction --

TEST(ResultCacheTest, BudgetEvictsLeastRecentlyUsed) {
  ResultCache cache;
  cache.set_budget_bytes(300);
  const auto size100 = [](const int&) { return std::size_t{100}; };
  cache.get_or_compute<int>("a", [] { return 1; }, size100);
  cache.get_or_compute<int>("b", [] { return 2; }, size100);
  cache.get_or_compute<int>("c", [] { return 3; }, size100);
  EXPECT_EQ(cache.stats().entries, 3);
  // Touch "a" so "b" becomes the coldest entry, then overflow the budget.
  cache.get_or_compute<int>("a", [] { return -1; }, size100);
  cache.get_or_compute<int>("d", [] { return 4; }, size100);
  const auto s = cache.stats();
  EXPECT_EQ(s.entries, 3);
  EXPECT_EQ(s.evictions, 1);
  EXPECT_LE(s.resident_bytes, 300);
  EXPECT_TRUE(cache.contains("a"));
  EXPECT_FALSE(cache.contains("b"));  // the LRU victim
  EXPECT_TRUE(cache.contains("c"));
  EXPECT_TRUE(cache.contains("d"));
  ResultCache::release_thread_pins();
}

TEST(ResultCacheTest, EvictedEntryRecomputesIdenticalValue) {
  ResultCache cache;
  cache.set_budget_bytes(100);
  const auto size80 = [](const std::vector<int>&) { return std::size_t{80}; };
  int runs = 0;
  const auto compute = [&runs] {
    ++runs;
    return std::vector<int>{9, 8, 7};
  };
  auto first = cache.get_or_compute<std::vector<int>>("v", compute, size80);
  cache.get_or_compute<std::vector<int>>("w", compute, size80);  // evicts v
  EXPECT_FALSE(cache.contains("v"));
  auto again = cache.get_or_compute<std::vector<int>>("v", compute, size80);
  EXPECT_EQ(runs, 3);
  EXPECT_EQ(*again, *first);            // identical contents...
  EXPECT_NE(again.get(), first.get());  // ...from a genuine recompute
  EXPECT_GE(cache.stats().evictions, 2);
  ResultCache::release_thread_pins();
}

TEST(ResultCacheTest, ResidentBytesNeverExceedBudgetEvenTransiently) {
  ResultCache cache;
  cache.set_budget_bytes(64);
  // An entry larger than the whole budget is evicted by its own publish.
  auto huge = cache.get_or_compute<int>(
      "huge", [] { return 5; }, [](const int&) { return std::size_t{1000}; });
  EXPECT_EQ(*huge, 5);  // the caller's value stays usable...
  const auto s = cache.stats();
  EXPECT_EQ(s.entries, 0);  // ...but it was never left resident
  EXPECT_EQ(s.resident_bytes, 0);
  EXPECT_EQ(s.evictions, 1);
  ResultCache::release_thread_pins();
}

TEST(ResultCacheTest, ShrinkingBudgetEvictsImmediately) {
  ResultCache cache;
  cache.set_budget_bytes(1000);
  const auto size100 = [](const int&) { return std::size_t{100}; };
  for (int i = 0; i < 5; ++i) {
    cache.get_or_compute<int>("k" + std::to_string(i), [i] { return i; },
                              size100);
  }
  EXPECT_EQ(cache.stats().entries, 5);
  cache.set_budget_bytes(250);
  const auto s = cache.stats();
  EXPECT_EQ(s.entries, 2);
  EXPECT_LE(s.resident_bytes, 250);
  EXPECT_EQ(s.evictions, 3);
  ResultCache::release_thread_pins();
}

// ------------------------------------------------------------- registry --

TEST(GraphRegistryTest, LoadOnceAndShare) {
  const std::string path = temp_path("gct_registry.dimacs");
  write_dimacs(path_graph(12), path);
  GraphRegistry reg;
  auto first = reg.load_graph("p", path);
  auto second = reg.load_graph("p", "/nonexistent/ignored");  // name is taken
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(reg.get_graph("p").get(), first.get());
  EXPECT_EQ(reg.get_graph("missing"), nullptr);
  std::remove(path.c_str());
}

TEST(GraphRegistryTest, DropRespectsOutstandingReferences) {
  GraphRegistry reg;
  auto held = reg.add("g", path_graph(6));
  EXPECT_EQ(reg.list().size(), 1u);
  EXPECT_TRUE(reg.drop("g"));
  EXPECT_FALSE(reg.drop("g"));
  EXPECT_EQ(reg.get_graph("g"), nullptr);
  // The session's reference keeps the toolkit alive after the drop.
  EXPECT_EQ(held->graph().num_vertices(), 6);
}

TEST(GraphRegistryTest, ListReportsSessionsHoldingTheGraph) {
  GraphRegistry reg;
  auto a = reg.add("g", path_graph(4));
  auto b = reg.get_graph("g");
  const auto rows = reg.list();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].name, "g");
  EXPECT_EQ(rows[0].vertices, 4);
  EXPECT_EQ(rows[0].sessions, 2);  // a and b, minus the registry's own ref
}

// ------------------------------------------------------------ job queue --

TEST(JobQueueTest, RunsJobAndRecordsAccounting) {
  JobQueue q(2);
  const auto id = q.submit("s1", "graph:g", "print graph",
                           [](JobCounters& c) -> std::string {
                             c.cache_hits = 3;
                             return "out\n";
                           });
  const JobRecord r = q.wait(id);
  EXPECT_EQ(r.state, JobState::kDone);
  EXPECT_EQ(r.output, "out\n");
  EXPECT_EQ(r.counters.cache_hits, 3);
  EXPECT_GT(r.threads, 0);
  EXPECT_GE(r.run_seconds, 0.0);
}

TEST(JobQueueTest, FailureIsCapturedNotThrown) {
  JobQueue q(1);
  const auto id = q.submit("s1", "", "bad", [](JobCounters&) -> std::string {
    throw Error("kernel exploded");
  });
  const JobRecord r = q.wait(id);
  EXPECT_EQ(r.state, JobState::kFailed);
  EXPECT_NE(r.error.find("kernel exploded"), std::string::npos);
}

TEST(JobQueueTest, CancelQueuedJob) {
  JobQueue q(1);
  std::promise<void> release;
  auto released = release.get_future().share();
  const auto blocker =
      q.submit("s1", "graph:a", "slow", [released](JobCounters&) {
        released.wait();
        return std::string("done\n");
      });
  const auto victim = q.submit("s1", "graph:b", "never",
                               [](JobCounters&) { return std::string(); });
  EXPECT_TRUE(q.cancel(victim));
  EXPECT_FALSE(q.cancel(victim));  // already terminal
  release.set_value();
  EXPECT_EQ(q.wait(blocker).state, JobState::kDone);
  EXPECT_EQ(q.wait(victim).state, JobState::kCancelled);
  EXPECT_FALSE(q.cancel(blocker));  // running/terminal jobs not cancellable
}

TEST(JobQueueTest, SameGraphJobsNeverOverlap) {
  JobQueue q(4);
  std::atomic<int> running{0};
  std::atomic<int> max_running{0};
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(q.submit("s1", "graph:same", "job", [&](JobCounters&) {
      const int now = running.fetch_add(1) + 1;
      int prev = max_running.load();
      while (now > prev && !max_running.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(2ms);
      running.fetch_sub(1);
      return std::string();
    }));
  }
  for (const auto id : ids) {
    EXPECT_EQ(q.wait(id).state, JobState::kDone);
  }
  EXPECT_EQ(max_running.load(), 1);  // serialized per graph
}

TEST(JobQueueTest, DifferentGraphJobsRunConcurrently) {
  JobQueue q(2);
  // Deterministic rendezvous: each job waits for the other to start, so
  // both can only finish if they run at the same time.
  std::promise<void> a_started, b_started;
  auto a_fut = a_started.get_future().share();
  auto b_fut = b_started.get_future().share();
  const auto a = q.submit("s1", "graph:a", "a", [&](JobCounters&) {
    a_started.set_value();
    EXPECT_EQ(b_fut.wait_for(5s), std::future_status::ready);
    return std::string();
  });
  const auto b = q.submit("s2", "graph:b", "b", [&](JobCounters&) {
    b_started.set_value();
    EXPECT_EQ(a_fut.wait_for(5s), std::future_status::ready);
    return std::string();
  });
  EXPECT_EQ(q.wait(a).state, JobState::kDone);
  EXPECT_EQ(q.wait(b).state, JobState::kDone);
}

// ------------------------------------- admission control and fairness --

/// A job body that does nothing (for queued-but-never-inspected jobs).
std::string noop_job(JobCounters&) { return std::string(); }

TEST(JobQueueTest, TrySubmitShedsWhenGlobalQueueFull) {
  QueueLimits lim;
  lim.max_queued = 2;
  JobQueue q(1, lim);
  std::promise<void> release;
  auto released = release.get_future().share();
  std::atomic<bool> running{false};
  q.submit("a", "graph:block", "blocker", [&](JobCounters&) {
    running.store(true);
    released.wait();
    return std::string();
  });
  while (!running.load()) std::this_thread::yield();

  const auto r1 = q.try_submit("a", "graph:block", "q1", noop_job);
  const auto r2 = q.try_submit("b", "graph:block", "q2", noop_job);
  const auto r3 = q.try_submit("c", "graph:block", "q3", noop_job);
  EXPECT_EQ(r1.admission, Admission::kAdmitted);
  EXPECT_EQ(r2.admission, Admission::kAdmitted);
  EXPECT_EQ(r3.admission, Admission::kShedQueueFull);
  EXPECT_EQ(r3.id, 0u);  // shed submissions never create a job record
  EXPECT_EQ(q.queued(), 2);

  release.set_value();
  EXPECT_EQ(q.wait(r1.id).state, JobState::kDone);
  EXPECT_EQ(q.wait(r2.id).state, JobState::kDone);
}

TEST(JobQueueTest, TrySubmitShedsPerSessionBeforeGlobal) {
  QueueLimits lim;
  lim.max_queued = 8;
  lim.max_queued_per_session = 1;
  JobQueue q(1, lim);
  std::promise<void> release;
  auto released = release.get_future().share();
  std::atomic<bool> running{false};
  q.submit("x", "graph:block", "blocker", [&](JobCounters&) {
    running.store(true);
    released.wait();
    return std::string();
  });
  while (!running.load()) std::this_thread::yield();

  const auto r1 = q.try_submit("greedy", "graph:block", "g1", noop_job);
  const auto r2 = q.try_submit("greedy", "graph:block", "g2", noop_job);
  const auto r3 = q.try_submit("other", "graph:block", "o1", noop_job);
  EXPECT_EQ(r1.admission, Admission::kAdmitted);
  EXPECT_EQ(r2.admission, Admission::kShedSessionFull);  // greedy is full...
  EXPECT_EQ(r3.admission, Admission::kAdmitted);  // ...other sessions are not

  release.set_value();
  EXPECT_EQ(q.wait(r1.id).state, JobState::kDone);
  EXPECT_EQ(q.wait(r3.id).state, JobState::kDone);
}

TEST(JobQueueTest, RoundRobinRunsSecondSessionBeforeBurstFinishes) {
  JobQueue q(1);
  std::promise<void> release;
  auto released = release.get_future().share();
  std::atomic<bool> running{false};
  q.submit("x", "graph:block", "blocker", [&](JobCounters&) {
    running.store(true);
    released.wait();
    return std::string();
  });
  while (!running.load()) std::this_thread::yield();

  // While the single worker is busy, one session bursts three jobs and a
  // second session submits one. Round-robin scheduling interleaves the
  // sessions instead of draining the burst first.
  std::mutex order_mu;
  std::vector<std::string> order;
  const auto tagged = [&](const std::string& tag) {
    return [&order_mu, &order, tag](JobCounters&) {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(tag);
      return std::string();
    };
  };
  std::vector<std::uint64_t> ids;
  ids.push_back(q.submit("burst", "graph:b1", "b1", tagged("burst1")));
  ids.push_back(q.submit("burst", "graph:b2", "b2", tagged("burst2")));
  ids.push_back(q.submit("burst", "graph:b3", "b3", tagged("burst3")));
  ids.push_back(q.submit("late", "graph:l", "l1", tagged("late")));

  release.set_value();
  for (const auto id : ids) {
    EXPECT_EQ(q.wait(id).state, JobState::kDone);
  }
  const auto pos = std::find(order.begin(), order.end(), "late");
  ASSERT_NE(pos, order.end());
  EXPECT_LE(pos - order.begin(), 1);  // FIFO would have run it last
}

TEST(JobQueueTest, CancelPendingFiresOnTerminalAndDrainCompletes) {
  JobQueue q(1);
  std::promise<void> release;
  auto released = release.get_future().share();
  std::atomic<bool> running{false};
  q.submit("x", "graph:block", "blocker", [&](JobCounters&) {
    running.store(true);
    released.wait();
    return std::string();
  });
  while (!running.load()) std::this_thread::yield();

  std::promise<JobRecord> terminal;
  const auto r = q.try_submit(
      "s", "graph:v", "victim", noop_job, 0,
      [&](const JobRecord& rec) { terminal.set_value(rec); });
  ASSERT_EQ(r.admission, Admission::kAdmitted);

  EXPECT_FALSE(q.drain(0.0));  // blocker still running
  EXPECT_EQ(q.cancel_pending(), 1);
  auto fut = terminal.get_future();
  ASSERT_EQ(fut.wait_for(5s), std::future_status::ready);
  EXPECT_EQ(fut.get().state, JobState::kCancelled);

  release.set_value();
  EXPECT_TRUE(q.drain(5.0));
  EXPECT_EQ(q.queued(), 0);
}

TEST(JobQueueTest, OnTerminalFiresOnNormalCompletion) {
  JobQueue q(2);
  std::promise<JobRecord> terminal;
  const auto r = q.try_submit(
      "s", "graph:g", "cmd",
      [](JobCounters& c) {
        c.cache_hits = 2;
        return std::string("body\n");
      },
      0, [&](const JobRecord& rec) { terminal.set_value(rec); });
  ASSERT_EQ(r.admission, Admission::kAdmitted);
  auto fut = terminal.get_future();
  ASSERT_EQ(fut.wait_for(5s), std::future_status::ready);
  const JobRecord rec = fut.get();
  EXPECT_EQ(rec.state, JobState::kDone);
  EXPECT_EQ(rec.output, "body\n");
  EXPECT_EQ(rec.counters.cache_hits, 2);
}

TEST(JobQueueTest, TrySubmitAfterShutdownSheds) {
  JobQueue q(1);
  q.shutdown();
  const auto r = q.try_submit("s", "", "cmd", noop_job);
  EXPECT_EQ(r.admission, Admission::kShedShutdown);
  EXPECT_EQ(r.id, 0u);
}

// ------------------------------------------------------------- sessions --

/// Split a protocol response into lines.
std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) out.push_back(line);
  return out;
}

/// The "ok job=..." terminator lines of a transcript, in order.
std::vector<std::string> ok_lines(const std::string& transcript) {
  std::vector<std::string> out;
  for (const auto& line : lines_of(transcript)) {
    if (line.rfind("ok job=", 0) == 0) out.push_back(line);
  }
  return out;
}

TEST(ServerTest, StdioSessionServesRepeatedQueryFromCache) {
  const std::string path = temp_path("gct_server.dimacs");
  write_dimacs(star_of_cliques(4, 8), path);

  Server srv(fast_server_opts());
  std::istringstream in("load graph g1 " + path +
                        "\n"
                        "print components\n"
                        "print components\n"
                        "quit\n");
  std::ostringstream out;
  srv.serve_stream(in, out);
  const std::string transcript = out.str();
  std::remove(path.c_str());

  EXPECT_NE(transcript.find("graphctd ready"), std::string::npos);
  EXPECT_NE(transcript.find("loaded graph 'g1'"), std::string::npos);
  EXPECT_NE(transcript.find("components: "), std::string::npos);

  const auto oks = ok_lines(transcript);
  ASSERT_EQ(oks.size(), 3u);  // load + print + print
  // First `print components` computes (misses, no hits)...
  EXPECT_NE(oks[1].find("graph=graph:g1"), std::string::npos);
  EXPECT_NE(oks[1].find("cache=0/"), std::string::npos);
  EXPECT_EQ(oks[1].find("cache=0/0"), std::string::npos);
  // ...and the repeat is served from cache: hits, zero misses.
  EXPECT_NE(oks[2].find("/0"), std::string::npos);
  EXPECT_EQ(oks[2].find("cache=0/"), std::string::npos);
}

TEST(ServerTest, ErrorsAreReportedNotFatal) {
  Server srv(fast_server_opts());
  std::istringstream in(
      "print components\n"   // no graph loaded
      "frobnicate\n"         // unknown command
      "generate rmat 5 4\n"  // still works afterwards
      "quit\n");
  std::ostringstream out;
  srv.serve_stream(in, out);
  const std::string t = out.str();
  EXPECT_NE(t.find("error script line 1: no graph loaded"), std::string::npos);
  EXPECT_NE(t.find("error script line 1: unknown command"), std::string::npos);
  EXPECT_NE(t.find("generated rmat scale 5"), std::string::npos);
}

TEST(ServerTest, ServerVerbsListGraphsAndJobs) {
  Server srv(fast_server_opts());
  srv.registry().add("resident", path_graph(9));
  auto session = srv.open_session("analyst");
  EXPECT_NE(session->handle_line("graphs").find("resident"),
            std::string::npos);
  session->handle_line("use graph resident");
  session->handle_line("print degrees");
  const std::string jobs = session->handle_line("jobs");
  EXPECT_NE(jobs.find("print degrees"), std::string::npos);
  EXPECT_NE(jobs.find("done"), std::string::npos);
  const std::string info = session->handle_line("session");
  EXPECT_NE(info.find("analyst"), std::string::npos);
  EXPECT_NE(info.find("graph:resident"), std::string::npos);
}

TEST(ServerTest, MetricsVerbExposesRegistry) {
  Server srv(fast_server_opts());
  auto session = srv.open_session("analyst");
  session->handle_line("generate rmat 6 4");
  session->handle_line("print components");

  const std::string prom = session->handle_line("metrics");
  EXPECT_NE(prom.find("# TYPE"), std::string::npos);
  EXPECT_NE(prom.find("gct_kernel_runs_total{kernel=\"components\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("gct_result_cache_"), std::string::npos);
  EXPECT_EQ(prom.substr(prom.size() - 3), "ok\n");

  const std::string json = session->handle_line("metrics json");
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  // One JSON line plus the ok terminator.
  EXPECT_EQ(std::count(json.begin(), json.end(), '\n'), 2);
  EXPECT_EQ(json.substr(json.size() - 3), "ok\n");
}

TEST(ServerTest, ThreadsCommandPinsJobParallelism) {
  Server srv(fast_server_opts(2));
  auto session = srv.open_session();
  session->handle_line("generate rmat 6 4");
  EXPECT_NE(session->handle_line("threads 2").find("threads set to 2"),
            std::string::npos);
  const std::string resp = session->handle_line("print degrees");
  EXPECT_NE(resp.find("threads=2"), std::string::npos);
}

TEST(ServerTest, ConcurrentSessionsOnDifferentGraphsMakeProgress) {
  Server srv(fast_server_opts(2));
  srv.registry().add("g1", path_graph(64));
  srv.registry().add("g2", star_graph(64));

  auto s1 = srv.open_session("s1");
  auto s2 = srv.open_session("s2");
  EXPECT_NE(s1->handle_line("use graph g1").find("ok"), std::string::npos);
  EXPECT_NE(s2->handle_line("use graph g2").find("ok"), std::string::npos);

  // Deterministically occupy g1: a direct job on s1's graph key blocks
  // until released, so s1's next command must queue behind it...
  std::promise<void> release;
  auto released = release.get_future().share();
  std::atomic<bool> blocker_running{false};
  srv.jobs().submit("test", "graph:g1", "blocker", [&](JobCounters&) {
    blocker_running.store(true);
    released.wait();
    return std::string();
  });
  while (!blocker_running.load()) std::this_thread::yield();

  std::thread s1_thread([&] {
    // Queues behind the blocker; completes only after release.
    EXPECT_NE(s1->handle_line("print components").find("ok job="),
              std::string::npos);
  });

  // ...while s2, on a different graph, makes progress immediately even
  // though g1 is wedged.
  const std::string s2_resp = s2->handle_line("print components");
  EXPECT_NE(s2_resp.find("components: 1"), std::string::npos);
  EXPECT_NE(s2_resp.find("ok job="), std::string::npos);

  // s1's job is still waiting on the busy graph. Poll until the job
  // shows up in the snapshot — s1_thread races us to submit it — after
  // which it cannot be terminal: the blocker still holds g1.
  bool s1_job_waiting = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!s1_job_waiting && std::chrono::steady_clock::now() < deadline) {
    for (const auto& job : srv.jobs().snapshot()) {
      if (job.command == "print components" && job.session == "s1") {
        s1_job_waiting = !job.terminal();
      }
    }
    if (!s1_job_waiting) std::this_thread::yield();
  }
  EXPECT_TRUE(s1_job_waiting);

  release.set_value();
  s1_thread.join();
}

TEST(ServerTest, SharedGraphExtractionStaysPrivateToTheSession) {
  Server srv(fast_server_opts(2));
  srv.registry().add("shared", star_of_cliques(3, 5));
  auto s1 = srv.open_session("s1");
  auto s2 = srv.open_session("s2");
  s1->handle_line("use graph shared");
  s2->handle_line("use graph shared");
  const auto n = srv.registry().get_graph("shared")->graph().num_vertices();

  s1->handle_line("extract kcore 4");  // drops the degree-3 hub
  // s1 now sees a private subgraph; s2 and the registry are untouched.
  EXPECT_LT(s1->interpreter().current().graph().num_vertices(), n);
  EXPECT_EQ(s2->interpreter().current().graph().num_vertices(), n);
  EXPECT_EQ(srv.registry().get_graph("shared")->graph().num_vertices(), n);
  EXPECT_EQ(s1->interpreter().current_graph_key(), "");  // private now
}

// The satellite stress test: ≥8 threads hammer one registry-shared graph
// with mixed kernels; every result must match a single-threaded run on an
// identical private graph. Run under -fsanitize=thread in CI.
TEST(ServerTest, ConcurrentMixedKernelsMatchSingleThreadedRun) {
  RmatOptions r;
  r.scale = 8;
  r.edge_factor = 8;
  r.seed = 99;
  const CsrGraph graph = rmat_graph(r);

  // Single-threaded reference on a private, identical graph.
  ToolkitOptions topts;
  topts.diameter_samples = 16;
  topts.estimate_diameter_on_load = false;
  Toolkit reference(graph, topts);
  const auto ref_components = reference.components_stats().num_components;
  const auto ref_largest = reference.components_stats().largest_size();
  const double ref_mean_degree = reference.degree_stats().mean;
  const auto ref_triangles = reference.clustering().total_triangles;
  const auto ref_diameter = reference.diameter().estimate;
  BetweennessOptions bo;
  bo.num_sources = 32;
  bo.seed = 5;
  const double ref_bc_sum = [&] {
    double s = 0;
    for (double x : reference.betweenness(bo).score) s += x;
    return s;
  }();

  GraphRegistry reg(topts);
  auto shared = reg.add("hammer", graph);

  constexpr int kThreads = 8;
  constexpr int kRounds = 6;
  std::atomic<bool> go{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      auto tk = reg.get_graph("hammer");
      for (int round = 0; round < kRounds; ++round) {
        // Each thread starts at a different kernel so first-computations
        // race from every direction.
        switch ((t + round) % 5) {
          case 0:
            if (tk->components_stats().num_components != ref_components ||
                tk->components_stats().largest_size() != ref_largest) {
              failures.fetch_add(1);
            }
            break;
          case 1:
            if (std::abs(tk->degree_stats().mean - ref_mean_degree) > 1e-9) {
              failures.fetch_add(1);
            }
            break;
          case 2:
            if (tk->clustering().total_triangles != ref_triangles) {
              failures.fetch_add(1);
            }
            break;
          case 3:
            if (tk->diameter().estimate != ref_diameter) {
              failures.fetch_add(1);
            }
            break;
          case 4: {
            double s = 0;
            for (double x : tk->betweenness(bo).score) s += x;
            if (std::abs(s - ref_bc_sum) >
                1e-6 * std::max(1.0, std::abs(ref_bc_sum))) {
              failures.fetch_add(1);
            }
            break;
          }
        }
      }
    });
  }
  go.store(true);
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // Every kernel computed exactly once: traffic shows at most one miss per
  // distinct cache key (5 kernels + component_stats' nested components).
  const auto stats = shared->cache_stats();
  EXPECT_LE(stats.misses, 6);
  EXPECT_GE(stats.hits, kThreads * kRounds - stats.misses);
}

// ------------------------------------------------------------- framing --

TEST(SessionFramingTest, CompatEchoesRequestIds) {
  Server srv(fast_server_opts());
  auto s = srv.open_session("f");
  const std::string ok = s->handle_line("@7 generate rmat 5 4");
  EXPECT_NE(ok.find("ok id=7 job="), std::string::npos);
  const std::string err = s->handle_line("@9 frobnicate");
  EXPECT_NE(err.find("error id=9 "), std::string::npos);
  // Unadorned commands keep the exact historical terminator.
  EXPECT_NE(s->handle_line("print degrees").find("\nok job="),
            std::string::npos);
}

TEST(SessionFramingTest, FramedV1HeaderCountsPayloadLines) {
  Server srv(fast_server_opts());
  auto s = srv.open_session("f");
  // The proto ack itself still arrives in the framing that was active
  // when the command was received — compat here.
  const std::string ack = s->handle_line("proto v1");
  EXPECT_NE(ack.find("protocol set to gct/1 framed"), std::string::npos);
  EXPECT_NE(ack.find("\nok"), std::string::npos);
  EXPECT_NE(ack.rfind("gct/1 ", 0), 0u);  // no v1 header on the ack

  const std::string resp = s->handle_line("@12 generate rmat 5 4");
  const auto ls = lines_of(resp);
  ASSERT_GE(ls.size(), 2u);
  EXPECT_EQ(ls[0].rfind("gct/1 ok lines=", 0), 0u);
  EXPECT_NE(ls[0].find(" id=12"), std::string::npos);
  EXPECT_NE(ls[0].find(" job="), std::string::npos);
  // lines=<n> matches the payload exactly.
  const auto lpos = ls[0].find("lines=") + 6;
  const int n = std::stoi(ls[0].substr(lpos));
  EXPECT_EQ(static_cast<int>(ls.size()) - 1, n);

  // Errors carry the message as the last payload line.
  const std::string err = s->handle_line("@13 frobnicate");
  const auto els = lines_of(err);
  ASSERT_GE(els.size(), 2u);
  EXPECT_EQ(els[0].rfind("gct/1 error lines=", 0), 0u);
  EXPECT_NE(els[0].find(" id=13"), std::string::npos);
  EXPECT_NE(els.back().find("unknown command"), std::string::npos);
}

TEST(SessionFramingTest, ProtoSwitchBackAcksInV1ThenSpeaksCompat) {
  Server srv(fast_server_opts());
  auto s = srv.open_session("f");
  s->handle_line("proto v1");
  const std::string ack = s->handle_line("proto compat");
  EXPECT_EQ(ack.rfind("gct/1 ok lines=1", 0), 0u);  // rendered in v1
  const std::string after = s->handle_line("generate rmat 5 4");
  EXPECT_EQ(after.find("gct/1"), std::string::npos);
  EXPECT_NE(after.find("\nok job="), std::string::npos);
}

TEST(SessionFramingTest, ShedRequestsReportBusyInBothFramings) {
  // One worker wedged plus a full one-deep queue: the next command sheds.
  ServerOptions opts = fast_server_opts(1);
  opts.limits.max_queued_jobs = 1;
  Server srv(opts);
  std::promise<void> release;
  auto released = release.get_future().share();
  std::atomic<bool> running{false};
  srv.jobs().submit("test", "graph:block", "blocker", [&](JobCounters&) {
    running.store(true);
    released.wait();
    return std::string();
  });
  while (!running.load()) std::this_thread::yield();
  srv.jobs().submit("test", "graph:block", "filler",
                    [](JobCounters&) { return std::string(); });

  auto s = srv.open_session("shed");
  const std::string compat = s->handle_line("@4 generate rmat 5 4");
  EXPECT_NE(compat.find("error id=4 busy: queue full"), std::string::npos);

  s->handle_line("proto v1");
  const std::string framed = s->handle_line("@5 generate rmat 5 4");
  const auto ls = lines_of(framed);
  ASSERT_EQ(ls.size(), 2u);
  EXPECT_EQ(ls[0].rfind("gct/1 busy lines=1 id=5", 0), 0u);
  EXPECT_NE(ls[1].find("queue full"), std::string::npos);

  release.set_value();
}

// ---------------------------------------------------------- epoll / TCP --

/// Minimal blocking test client for the TCP transport.
struct TestClient {
  int fd = -1;
  std::string buf;

  ~TestClient() {
    if (fd >= 0) ::close(fd);
  }

  bool connect_to(int port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    return ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }

  bool send_text(const std::string& text) {
    std::size_t sent = 0;
    while (sent < text.size()) {
      const ssize_t n =
          ::send(fd, text.data() + sent, text.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool read_line(std::string& out) {
    std::size_t nl;
    while ((nl = buf.find('\n')) == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buf.append(chunk, static_cast<std::size_t>(n));
    }
    out = buf.substr(0, nl);
    buf.erase(0, nl + 1);
    return true;
  }

  /// Lines of one compat-framed reply, terminator included.
  std::vector<std::string> read_reply() {
    std::vector<std::string> out;
    std::string line;
    while (read_line(line)) {
      out.push_back(line);
      if (line.rfind("ok", 0) == 0 || line.rfind("error", 0) == 0) break;
    }
    return out;
  }
};

/// serve_tcp on a background thread, bound to an ephemeral port.
struct TcpFixture {
  Server srv;
  std::thread loop;
  int rc = -1;

  explicit TcpFixture(ServerOptions opts) : srv(std::move(opts)) {
    loop = std::thread([this] { rc = srv.serve_tcp(0); });
    while (srv.port() == 0) std::this_thread::sleep_for(1ms);
  }

  ~TcpFixture() {
    srv.request_stop();
    if (loop.joinable()) loop.join();
  }
};

TEST(ServerTcpTest, ServesManyConnectionsFromOneEventLoop) {
  TcpFixture fx(fast_server_opts(2));
  fx.srv.registry().add("g", star_of_cliques(3, 5));

  constexpr int kClients = 16;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      TestClient c;
      std::string line;
      if (!c.connect_to(fx.srv.port()) || !c.read_line(line) ||
          line.rfind("graphctd ready", 0) != 0) {
        failures.fetch_add(1);
        return;
      }
      c.send_text("use graph g\n");
      if (c.read_reply().back().rfind("ok", 0) != 0) failures.fetch_add(1);
      // Pipelined pair with request ids: responses come back in order,
      // each tagged, so the client can match them without guessing.
      c.send_text("@a print degrees\n@b print components\n");
      const auto first = c.read_reply();
      const auto second = c.read_reply();
      if (first.empty() || first.back().rfind("ok id=a", 0) != 0 ||
          second.empty() || second.back().rfind("ok id=b", 0) != 0) {
        failures.fetch_add(1);
      }
      c.send_text("quit\n");
      if (c.read_line(line)) failures.fetch_add(1);  // quit closes, silently
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ServerTcpTest, ConnectionCapRefusesWithExplicitError) {
  ServerOptions opts = fast_server_opts(1);
  opts.limits.max_connections = 2;
  TcpFixture fx(opts);

  TestClient a, b, refused;
  std::string line;
  ASSERT_TRUE(a.connect_to(fx.srv.port()) && a.read_line(line));
  EXPECT_EQ(line.rfind("graphctd ready", 0), 0u);
  ASSERT_TRUE(b.connect_to(fx.srv.port()) && b.read_line(line));
  EXPECT_EQ(line.rfind("graphctd ready", 0), 0u);

  ASSERT_TRUE(refused.connect_to(fx.srv.port()));
  ASSERT_TRUE(refused.read_line(line));
  EXPECT_NE(line.find("connection capacity"), std::string::npos);
  EXPECT_FALSE(refused.read_line(line));  // then the server closes it

  // A held slot freed by quit becomes available again.
  a.send_text("quit\n");
  while (a.read_line(line)) {
  }
  TestClient again;
  for (int tries = 0; tries < 100; ++tries) {
    if (again.connect_to(fx.srv.port()) && again.read_line(line) &&
        line.rfind("graphctd ready", 0) == 0) {
      break;
    }
    ::close(again.fd);
    again.fd = -1;
    again.buf.clear();
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(line.rfind("graphctd ready", 0), 0u);
}

TEST(ServerTcpTest, PipeliningPastBacklogShedsWithBusy) {
  ServerOptions opts = fast_server_opts(1);
  opts.limits.max_queued_per_session = 2;
  TcpFixture fx(opts);

  TestClient c;
  std::string line;
  ASSERT_TRUE(c.connect_to(fx.srv.port()) && c.read_line(line));
  // Fire 12 commands without reading: 1 dispatches, 2 buffer, the rest
  // shed with explicit busy errors — and every one gets a response.
  std::string burst;
  for (int i = 0; i < 12; ++i) {
    burst += "@" + std::to_string(i) + " generate rmat 5 4\n";
  }
  ASSERT_TRUE(c.send_text(burst));
  int ok = 0, busy = 0;
  for (int i = 0; i < 12; ++i) {
    const auto reply = c.read_reply();
    ASSERT_FALSE(reply.empty());
    if (reply.back().rfind("ok", 0) == 0) {
      ++ok;
    } else if (reply.back().find("busy:") != std::string::npos) {
      ++busy;
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(busy, 0);
  EXPECT_EQ(ok + busy, 12);
}

// Regression: stopping under load used to leave connection threads mid-job
// and exit nondeterministically. The event loop must cancel queued jobs
// (delivering explicit cancellations), finish the in-flight response, and
// return cleanly within the drain window.
TEST(ServerTcpTest, StopUnderLoadDrainsDeterministically) {
  ServerOptions opts = fast_server_opts(1);
  opts.limits.drain_timeout_seconds = 5.0;
  auto fx = std::make_unique<TcpFixture>(opts);

  // Wedge the single worker so client commands queue behind it.
  std::promise<void> release;
  auto released = release.get_future().share();
  std::atomic<bool> running{false};
  fx->srv.jobs().submit("test", "graph:block", "blocker", [&](JobCounters&) {
    running.store(true);
    released.wait();
    return std::string();
  });
  while (!running.load()) std::this_thread::yield();

  TestClient c;
  std::string line;
  ASSERT_TRUE(c.connect_to(fx->srv.port()) && c.read_line(line));
  ASSERT_TRUE(c.send_text("@1 generate rmat 5 4\n"));
  while (fx->srv.jobs().queued() == 0) std::this_thread::yield();

  fx->srv.request_stop();
  // The queued job is cancelled and the client is told so before close.
  const auto reply = c.read_reply();
  ASSERT_FALSE(reply.empty());
  EXPECT_NE(reply.back().find("error id=1"), std::string::npos);
  EXPECT_NE(reply.back().find("cancelled"), std::string::npos);
  EXPECT_FALSE(c.read_line(line));  // connection closed by the drain

  release.set_value();  // only now does the blocker finish
  fx.reset();           // joins serve_tcp; must not hang
}

}  // namespace
}  // namespace graphct::server
