/// \file storage_test.cpp
/// Packed storage subsystem: varint primitives, block codec round trips
/// (including adversarial shapes), pack/open round trips, block-cache
/// eviction behavior, open-time validation error paths, and kernel parity
/// between the in-memory CSR and the mmap-backed store.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <vector>

#include "algs/bfs.hpp"
#include "algs/connected_components.hpp"
#include "algs/degree.hpp"
#include "algs/pagerank.hpp"
#include "core/betweenness.hpp"
#include "core/toolkit.hpp"
#include "gen/rmat.hpp"
#include "gen/shapes.hpp"
#include "storage/block_codec.hpp"
#include "storage/graph_store.hpp"
#include "storage/graph_view.hpp"
#include "storage/packed_writer.hpp"
#include "storage/varint.hpp"
#include "test_support.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace graphct {
namespace {

using storage::Codec;
using storage::GraphStore;
using storage::PackOptions;
using storage::StoreOptions;
using testing::make_directed;
using testing::make_undirected;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// RAII temp file: removed on scope exit.
struct TempFile {
  explicit TempFile(const std::string& name) : path(temp_path(name)) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

CsrGraph small_rmat(std::int64_t scale = 10, std::uint64_t seed = 7) {
  RmatOptions r;
  r.scale = scale;
  r.edge_factor = 8;
  r.seed = seed;
  CsrGraph g = rmat_graph(r);
  g.sort_adjacency();
  return g;
}

// ---------------------------------------------------------------- varint --

TEST(VarintTest, RoundTripBoundaryValues) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  (1ull << 21) - 1,
                                  1ull << 21,
                                  (1ull << 35),
                                  (1ull << 56) - 1,
                                  std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : values) {
    std::uint8_t buf[storage::kMaxVarintBytes] = {};
    std::uint8_t* end = storage::encode_varint(v, buf);
    EXPECT_EQ(static_cast<std::size_t>(end - buf), storage::varint_size(v));
    std::uint64_t decoded = 0;
    const std::uint8_t* p = storage::decode_varint(buf, end, decoded);
    ASSERT_NE(p, nullptr) << v;
    EXPECT_EQ(p, end);
    EXPECT_EQ(decoded, v);
  }
}

TEST(VarintTest, SizeBoundaries) {
  EXPECT_EQ(storage::varint_size(0), 1u);
  EXPECT_EQ(storage::varint_size(127), 1u);
  EXPECT_EQ(storage::varint_size(128), 2u);
  EXPECT_EQ(storage::varint_size(std::numeric_limits<std::uint64_t>::max()),
            storage::kMaxVarintBytes);
}

TEST(VarintTest, TruncatedInputReturnsNull) {
  std::uint8_t buf[storage::kMaxVarintBytes] = {};
  std::uint8_t* end =
      storage::encode_varint(std::numeric_limits<std::uint64_t>::max(), buf);
  std::uint64_t decoded = 0;
  // Every proper prefix must be rejected.
  for (const std::uint8_t* cut = buf; cut != end; ++cut) {
    EXPECT_EQ(storage::decode_varint(buf, cut, decoded), nullptr);
  }
}

TEST(VarintTest, OverlongInputReturnsNull) {
  // Eleven continuation bytes can never be a 64-bit value.
  std::uint8_t buf[12];
  std::memset(buf, 0x80, sizeof buf);
  buf[11] = 0x01;
  std::uint64_t decoded = 0;
  EXPECT_EQ(storage::decode_varint(buf, buf + sizeof buf, decoded), nullptr);
}

// ----------------------------------------------------------- block codec --

/// Round-trip one synthetic block through a codec.
void roundtrip_block(Codec codec, const std::vector<eid>& offsets,
                     vid first_vertex, vid nv,
                     const std::vector<vid>& adjacency) {
  std::vector<std::uint8_t> bytes;
  storage::encode_block(codec, offsets, first_vertex, nv, adjacency, bytes);
  const eid lo = offsets[static_cast<std::size_t>(first_vertex)];
  const eid hi = offsets[static_cast<std::size_t>(first_vertex + nv)];
  std::vector<vid> decoded(static_cast<std::size_t>(hi - lo), -1);
  storage::decode_block(codec, offsets, first_vertex, nv, bytes, decoded);
  for (eid i = lo; i < hi; ++i) {
    ASSERT_EQ(decoded[static_cast<std::size_t>(i - lo)],
              adjacency[static_cast<std::size_t>(i)]);
  }
}

TEST(BlockCodecTest, RoundTripRandomSortedLists) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const vid nv = 1 + static_cast<vid>(rng.next_u64() % 50);
    std::vector<eid> offsets = {0};
    std::vector<vid> adjacency;
    for (vid v = 0; v < nv; ++v) {
      const vid deg = static_cast<vid>(rng.next_u64() % 30);
      std::vector<vid> list;
      vid id = static_cast<vid>(rng.next_u64() % 100);
      for (vid i = 0; i < deg; ++i) {
        list.push_back(id);
        id += static_cast<vid>(rng.next_u64() % 1000);  // duplicates allowed
      }
      adjacency.insert(adjacency.end(), list.begin(), list.end());
      offsets.push_back(static_cast<eid>(adjacency.size()));
    }
    roundtrip_block(Codec::kVarint, offsets, 0, nv, adjacency);
    roundtrip_block(Codec::kNone, offsets, 0, nv, adjacency);
  }
}

TEST(BlockCodecTest, RoundTripNearInt64Max) {
  // Ids near INT64_MAX exercise the widest gaps and first-value varints a
  // block can contain (no graph validation here — raw span API).
  constexpr vid kMax = std::numeric_limits<vid>::max();
  const std::vector<eid> offsets = {0, 3, 3, 5};
  const std::vector<vid> adjacency = {0, kMax - 1, kMax,  // huge gap
                                      kMax, kMax};        // gap 0 at the top
  roundtrip_block(Codec::kVarint, offsets, 0, 3, adjacency);
  roundtrip_block(Codec::kNone, offsets, 0, 3, adjacency);
}

TEST(BlockCodecTest, RoundTripMidBlockStart) {
  // first_vertex > 0: offsets are global, the byte stream is block-local.
  const std::vector<eid> offsets = {0, 2, 2, 5, 6};
  const std::vector<vid> adjacency = {1, 3, 0, 2, 9, 4};
  roundtrip_block(Codec::kVarint, offsets, 2, 2, adjacency);
}

TEST(BlockCodecTest, EncodedListSizeMatchesEncoder) {
  const std::vector<vid> list = {5, 6, 6, 200, 100000};
  const std::vector<eid> offsets = {0, static_cast<eid>(list.size())};
  for (const Codec codec : {Codec::kVarint, Codec::kNone}) {
    std::vector<std::uint8_t> bytes;
    storage::encode_block(codec, offsets, 0, 1, list, bytes);
    EXPECT_EQ(bytes.size(), storage::encoded_list_size(codec, list));
  }
}

TEST(BlockCodecTest, TruncatedBytesThrow) {
  const std::vector<eid> offsets = {0, 4};
  const std::vector<vid> adjacency = {10, 20, 3000, 400000};
  std::vector<std::uint8_t> bytes;
  storage::encode_block(Codec::kVarint, offsets, 0, 1, adjacency, bytes);
  std::vector<vid> out(4);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_THROW(
        storage::decode_block(
            Codec::kVarint, offsets, 0, 1,
            std::span<const std::uint8_t>(bytes.data(), cut), out),
        Error)
        << "cut at " << cut;
  }
}

TEST(BlockCodecTest, TrailingBytesThrow) {
  const std::vector<eid> offsets = {0, 2};
  const std::vector<vid> adjacency = {1, 2};
  std::vector<std::uint8_t> bytes;
  storage::encode_block(Codec::kVarint, offsets, 0, 1, adjacency, bytes);
  bytes.push_back(0x00);  // garbage past the last list
  std::vector<vid> out(2);
  EXPECT_THROW(
      storage::decode_block(Codec::kVarint, offsets, 0, 1, bytes, out), Error);
}

// ------------------------------------------------------------ pack/open --

/// Assert the store decodes to exactly g (per-vertex spans + properties).
void expect_store_matches(const GraphStore& store, const CsrGraph& g) {
  ASSERT_EQ(store.num_vertices(), g.num_vertices());
  ASSERT_EQ(store.num_adjacency_entries(), g.num_adjacency_entries());
  EXPECT_EQ(store.num_edges(), g.num_edges());
  EXPECT_EQ(store.num_self_loops(), g.num_self_loops());
  EXPECT_EQ(store.directed(), g.directed());
  EXPECT_EQ(store.sorted_adjacency(), g.sorted_adjacency());
  for (vid v = 0; v < g.num_vertices(); ++v) {
    const auto got = store.neighbors(v);
    const auto want = g.neighbors(v);
    ASSERT_EQ(got.size(), want.size()) << "vertex " << v;
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i], want[i]) << "vertex " << v << " slot " << i;
    }
  }
}

TEST(PackedStoreTest, RmatRoundTripVarint) {
  const CsrGraph g = small_rmat();
  TempFile f("gct_storage_rmat.gctp");
  const auto res = storage::pack_graph(g, f.path, {});
  EXPECT_GT(res.num_blocks, 0);
  EXPECT_GT(res.compression_ratio, 1.0);  // gaps beat raw 8-byte ids
  GraphStore store(f.path);
  expect_store_matches(store, g);
  EXPECT_EQ(store.materialize(), g);
}

TEST(PackedStoreTest, RmatRoundTripPassThrough) {
  const CsrGraph g = small_rmat();
  TempFile f("gct_storage_rmat_raw.gctp");
  PackOptions opts;
  opts.codec = Codec::kNone;
  storage::pack_graph(g, f.path, opts);
  GraphStore store(f.path);
  EXPECT_NE(store.raw_adjacency(), nullptr);  // mmap'd raw, no decode path
  expect_store_matches(store, g);
}

TEST(PackedStoreTest, SmallBlocksManyEvictionsParity) {
  const CsrGraph g = small_rmat(9);
  TempFile f("gct_storage_tiny_blocks.gctp");
  PackOptions popts;
  popts.block_target_bytes = 256;  // many small blocks
  const auto res = storage::pack_graph(g, f.path, popts);
  EXPECT_GT(res.num_blocks, 16);
  StoreOptions sopts;
  sopts.cache_budget_bytes = 1024;  // far below the decoded working set
  GraphStore store(f.path, sopts);
  expect_store_matches(store, g);
  // Re-walk to churn the cache; the budget must hold (with the two-block
  // validity floor) and evictions must actually happen.
  for (vid v = 0; v < g.num_vertices(); ++v) {
    (void)store.neighbors(v);
  }
  const auto stats = store.cache_stats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_GT(stats.hits, 0);
  EXPECT_GT(stats.misses, 0);
}

TEST(PackedStoreTest, EmptyGraph) {
  const CsrGraph g;
  TempFile f("gct_storage_empty.gctp");
  storage::pack_graph(g, f.path, {});
  GraphStore store(f.path);
  EXPECT_EQ(store.num_vertices(), 0);
  EXPECT_EQ(store.num_adjacency_entries(), 0);
  // A default CsrGraph has no offsets array while the format stores the
  // canonical single zero, so compare semantics rather than representation.
  const CsrGraph back = store.materialize();
  EXPECT_EQ(back.num_vertices(), 0);
  EXPECT_EQ(back.num_adjacency_entries(), 0);
  EXPECT_FALSE(back.directed());
}

TEST(PackedStoreTest, AllIsolatedVertices) {
  const CsrGraph g = make_undirected(64, {});
  TempFile f("gct_storage_isolated.gctp");
  const auto res = storage::pack_graph(g, f.path, {});
  EXPECT_EQ(res.payload_bytes, 0u);
  GraphStore store(f.path);
  expect_store_matches(store, g);
}

TEST(PackedStoreTest, SingleHubVertex) {
  // A star: the hub's list alone exceeds any small block target, so the
  // writer must give it an oversized block rather than split the vertex.
  const CsrGraph g = star_graph(5000);
  TempFile f("gct_storage_star.gctp");
  PackOptions opts;
  opts.block_target_bytes = 64;  // hub list >> target
  storage::pack_graph(g, f.path, opts);
  GraphStore store(f.path);
  expect_store_matches(store, g);
}

TEST(PackedStoreTest, DirectedGraphRoundTrip) {
  CsrGraph g = make_directed(6, {{0, 1}, {1, 2}, {2, 0}, {5, 0}});
  g.sort_adjacency();
  TempFile f("gct_storage_directed.gctp");
  storage::pack_graph(g, f.path, {});
  GraphStore store(f.path);
  EXPECT_TRUE(store.directed());
  expect_store_matches(store, g);
}

TEST(PackedStoreTest, VarintRequiresSortedAdjacency) {
  // Hand-build an unsorted graph: pack under varint must refuse.
  std::vector<eid> offsets = {0, 2, 2};
  std::vector<vid> adjacency = {1, 0};  // descending
  CsrGraph g(std::move(offsets), std::move(adjacency), true, 0, false);
  TempFile f("gct_storage_unsorted.gctp");
  EXPECT_THROW(storage::pack_graph(g, f.path, {}), Error);
  PackOptions raw;
  raw.codec = Codec::kNone;  // pass-through has no ordering requirement
  storage::pack_graph(g, f.path, raw);
  GraphStore store(f.path);
  expect_store_matches(store, g);
}

TEST(PackedStoreTest, SniffDetectsPackedFiles) {
  const CsrGraph g = make_undirected(4, {{0, 1}});
  TempFile packed("gct_storage_sniff.gctp");
  storage::pack_graph(g, packed.path, {});
  EXPECT_TRUE(GraphStore::sniff(packed.path));
  TempFile other("gct_storage_sniff.txt");
  {
    std::ofstream out(other.path);
    out << "0 1\n";
  }
  EXPECT_FALSE(GraphStore::sniff(other.path));
  EXPECT_FALSE(GraphStore::sniff(temp_path("gct_storage_nonexistent")));
}

// ---------------------------------------------------------- error paths --

TEST(PackedStoreTest, MissingFileThrows) {
  EXPECT_THROW(GraphStore(temp_path("gct_storage_missing.gctp")), Error);
}

TEST(PackedStoreTest, BadMagicThrows) {
  TempFile f("gct_storage_badmagic.gctp");
  {
    std::ofstream out(f.path, std::ios::binary);
    out << "definitely not a packed graph file, with some padding to spare "
           "so the size check is not what fires first";
  }
  try {
    GraphStore store(f.path);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
}

TEST(PackedStoreTest, TruncatedFileThrows) {
  const CsrGraph g = small_rmat(8);
  TempFile f("gct_storage_trunc.gctp");
  storage::pack_graph(g, f.path, {});
  const auto full = std::filesystem::file_size(f.path);
  std::filesystem::resize_file(f.path, full - full / 3);
  EXPECT_THROW(GraphStore(f.path), Error);
}

TEST(PackedStoreTest, UnsupportedVersionThrows) {
  const CsrGraph g = make_undirected(4, {{0, 1}});
  TempFile f("gct_storage_badver.gctp");
  storage::pack_graph(g, f.path, {});
  {
    // Version field sits right after the 8-byte magic.
    std::fstream patch(f.path,
                       std::ios::binary | std::ios::in | std::ios::out);
    const std::uint32_t bogus = 42;
    patch.seekp(8);
    patch.write(reinterpret_cast<const char*>(&bogus), sizeof bogus);
  }
  try {
    GraphStore store(f.path);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(PackedStoreTest, CorruptPayloadFailsChecksumVerify) {
  const CsrGraph g = small_rmat(8);
  TempFile f("gct_storage_bitflip.gctp");
  storage::pack_graph(g, f.path, {});
  {
    // Flip one payload byte (well past header + offsets + index).
    std::fstream patch(f.path,
                       std::ios::binary | std::ios::in | std::ios::out);
    const auto size = std::filesystem::file_size(f.path);
    patch.seekg(static_cast<std::streamoff>(size) - 64);
    char b = 0;
    patch.read(&b, 1);
    patch.seekp(static_cast<std::streamoff>(size) - 64);
    b = static_cast<char>(b ^ 0x10);
    patch.write(&b, 1);
  }
  StoreOptions opts;
  opts.verify_checksum = true;
  try {
    GraphStore store(f.path, opts);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
}

// -------------------------------------------------------- kernel parity --

/// The acceptance bar: kernels over the mmap store under a cache budget far
/// smaller than the raw adjacency must produce results byte-identical to
/// the in-memory CSR path.
class StoreKernelParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = small_rmat(11);
    file_ = std::make_unique<TempFile>("gct_storage_parity.gctp");
    PackOptions popts;
    popts.block_target_bytes = 2048;
    storage::pack_graph(g_, file_->path, popts);
    StoreOptions sopts;
    // Budget far below the raw adjacency size, so parity holds under
    // real eviction churn, not a fully resident cache.
    sopts.cache_budget_bytes = 16 << 10;
    ASSERT_LT(sopts.cache_budget_bytes,
              static_cast<std::uint64_t>(g_.num_adjacency_entries()) *
                  sizeof(vid));
    store_ = std::make_unique<GraphStore>(file_->path, sopts);
  }

  CsrGraph g_;
  std::unique_ptr<TempFile> file_;
  std::unique_ptr<GraphStore> store_;
};

TEST_F(StoreKernelParityTest, BfsDistancesIdentical) {
  BfsOptions opts;
  const auto mem = bfs(g_, 0, opts);
  const auto packed = bfs(GraphView(*store_), 0, opts);
  EXPECT_EQ(mem.distance, packed.distance);
  EXPECT_EQ(mem.num_reached(), packed.num_reached());
}

TEST_F(StoreKernelParityTest, ComponentsIdentical) {
  EXPECT_EQ(connected_components(g_), connected_components(GraphView(*store_)));
}

TEST_F(StoreKernelParityTest, DegreesIdentical) {
  EXPECT_EQ(degrees(g_), degrees(GraphView(*store_)));
}

TEST_F(StoreKernelParityTest, PageRankIdentical) {
  const auto mem = pagerank(g_);
  const auto packed = pagerank(GraphView(*store_));
  EXPECT_EQ(mem.iterations, packed.iterations);
  EXPECT_EQ(mem.score, packed.score);  // bitwise: same ops, same order
}

TEST_F(StoreKernelParityTest, BetweennessIdenticalSingleThread) {
  // Fine-mode BC accumulates with atomic float adds, so byte-identical
  // scores require one thread (ordering); parity across backends is the
  // point here, thread-count determinism is bc_confidence_test's job.
  set_num_threads(1);
  BetweennessOptions opts;
  opts.num_sources = 16;
  const auto mem = betweenness_centrality(g_, opts);
  const auto packed = betweenness_centrality(GraphView(*store_), opts);
  set_num_threads(0);
  EXPECT_EQ(mem.score, packed.score);
}

// ------------------------------------------------- toolkit cross-backend --

TEST(ToolkitStoreTest, LoadPackedRunsViewKernels) {
  const CsrGraph g = small_rmat(9);
  TempFile f("gct_storage_toolkit.gctp");
  storage::pack_graph(g, f.path, {});
  Toolkit tk = Toolkit::load_packed(f.path);
  EXPECT_TRUE(tk.store_backed());
  EXPECT_THROW((void)tk.graph(), Error);  // no DRAM CSR behind this toolkit
  Toolkit mem(g);
  EXPECT_EQ(tk.components(), mem.components());
  EXPECT_EQ(tk.degree_stats().max, mem.degree_stats().max);
  EXPECT_EQ(tk.pagerank().score, mem.pagerank().score);
}

TEST(ToolkitStoreTest, ReplaceGraphSwapsBackendAndInvalidates) {
  // The satellite guarantee: swapping between in-memory and packed
  // backends rides the same replace_graph() invalidation path, so results
  // cached for one backend can never be served against the other.
  const CsrGraph small = make_undirected(4, {{0, 1}, {2, 3}});
  const CsrGraph big = small_rmat(9);
  TempFile f("gct_storage_swap.gctp");
  storage::pack_graph(big, f.path, {});

  Toolkit tk(small);
  EXPECT_EQ(tk.components_stats().num_components, 2);
  const auto small_stats = tk.cache_stats();
  EXPECT_GT(small_stats.entries, 0);

  // in-memory -> packed store
  tk.replace_graph(std::make_shared<const GraphStore>(f.path));
  EXPECT_TRUE(tk.store_backed());
  EXPECT_EQ(tk.cache_stats().entries, 0);  // nothing stale survives the swap
  EXPECT_EQ(tk.components_stats().num_components,
            Toolkit(big).components_stats().num_components);
  EXPECT_EQ(tk.view().num_vertices(), big.num_vertices());

  // packed store -> in-memory
  tk.replace_graph(small);
  EXPECT_FALSE(tk.store_backed());
  EXPECT_EQ(tk.cache_stats().entries, 0);
  EXPECT_EQ(tk.components_stats().num_components, 2);
}

TEST(ToolkitStoreTest, ExtractComponentMaterializesFromStore) {
  const CsrGraph g = small_rmat(9);
  TempFile f("gct_storage_extract.gctp");
  storage::pack_graph(g, f.path, {});
  Toolkit packed = Toolkit::load_packed(f.path);
  Toolkit mem(g);
  const CsrGraph from_store = packed.component_graph(0);
  const CsrGraph from_mem = mem.component_graph(0);
  EXPECT_EQ(from_store, from_mem);
}

}  // namespace
}  // namespace graphct
