#include "graph/csr_graph.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/error.hpp"

namespace graphct {
namespace {

using testing::make_directed;
using testing::make_undirected;

TEST(CsrGraphTest, EmptyGraph) {
  CsrGraph g;
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(CsrGraphTest, ManualConstruction) {
  // Triangle 0-1-2, undirected.
  std::vector<eid> off{0, 2, 4, 6};
  std::vector<vid> adj{1, 2, 0, 2, 0, 1};
  CsrGraph g(off, adj, /*directed=*/false, /*self_loops=*/0, /*sorted=*/true);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.num_adjacency_entries(), 6);
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 1));
}

TEST(CsrGraphTest, ValidatesOffsets) {
  // offsets not starting at 0
  EXPECT_THROW(CsrGraph({1, 2}, {0}, false, 0, true), Error);
  // offsets not ending at adjacency size
  EXPECT_THROW(CsrGraph({0, 2}, {0}, false, 0, true), Error);
  // decreasing offsets
  EXPECT_THROW(CsrGraph({0, 2, 1, 3}, {0, 0, 0}, false, 0, true), Error);
  // adjacency out of range
  EXPECT_THROW(CsrGraph({0, 1}, {5}, false, 0, true), Error);
  EXPECT_THROW(CsrGraph({0, 1}, {-1}, false, 0, true), Error);
}

TEST(CsrGraphTest, UndirectedEdgeCountHalvesEntries) {
  const auto g = make_undirected(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.num_adjacency_entries(), 6);
}

TEST(CsrGraphTest, SelfLoopCountedOnceUndirected) {
  const auto g = make_undirected(3, {{0, 1}, {2, 2}});
  EXPECT_EQ(g.num_self_loops(), 1);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.has_edge(2, 2));
}

TEST(CsrGraphTest, DirectedEdgesCountArcs) {
  const auto g = make_directed(3, {{0, 1}, {1, 0}, {1, 2}});
  EXPECT_TRUE(g.directed());
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(2, 1));
}

TEST(CsrGraphTest, NeighborsSpanIsSorted) {
  const auto g = make_undirected(5, {{0, 4}, {0, 2}, {0, 1}, {0, 3}});
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(CsrGraphTest, HasEdgeOnUnsortedAdjacency) {
  std::vector<eid> off{0, 2, 3, 4};
  std::vector<vid> adj{2, 1, 0, 0};
  CsrGraph g(off, adj, true, 0, /*sorted=*/false);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 2));
}

TEST(CsrGraphTest, MemoryBytesReflectsArrays) {
  const auto g = make_undirected(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(g.memory_bytes(),
            5 * sizeof(eid) + 6 * sizeof(vid));
}

TEST(CsrGraphTest, EqualityIsStructural) {
  const auto a = make_undirected(3, {{0, 1}, {1, 2}});
  const auto b = make_undirected(3, {{0, 1}, {1, 2}});
  const auto c = make_undirected(3, {{0, 1}, {0, 2}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(CsrGraphTest, IsolatedVerticesHaveEmptyNeighborhoods) {
  const auto g = make_undirected(10, {{0, 1}});
  EXPECT_EQ(g.degree(5), 0);
  EXPECT_TRUE(g.neighbors(5).empty());
}

}  // namespace
}  // namespace graphct
