#include "algs/kcore.hpp"

#include <gtest/gtest.h>

#include "gen/random_graphs.hpp"
#include "gen/shapes.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace graphct {
namespace {

using testing::make_directed;
using testing::make_undirected;

// Serial reference: Batagelj–Zaveršnik style repeated peeling.
std::vector<std::int64_t> reference_cores(const CsrGraph& g) {
  const vid n = g.num_vertices();
  std::vector<std::int64_t> deg(static_cast<std::size_t>(n));
  for (vid v = 0; v < n; ++v) {
    std::int64_t d = g.degree(v);
    if (g.has_edge(v, v)) --d;
    deg[static_cast<std::size_t>(v)] = d;
  }
  std::vector<std::int64_t> core(static_cast<std::size_t>(n), 0);
  std::vector<char> gone(static_cast<std::size_t>(n), 0);
  for (std::int64_t k = 0;; ++k) {
    bool any_left = false;
    bool peeled = true;
    while (peeled) {
      peeled = false;
      for (vid v = 0; v < n; ++v) {
        if (gone[static_cast<std::size_t>(v)]) continue;
        if (deg[static_cast<std::size_t>(v)] <= k) {
          gone[static_cast<std::size_t>(v)] = 1;
          core[static_cast<std::size_t>(v)] = k;
          for (vid u : g.neighbors(v)) {
            if (u != v && !gone[static_cast<std::size_t>(u)]) {
              --deg[static_cast<std::size_t>(u)];
            }
          }
          peeled = true;
        }
      }
    }
    for (vid v = 0; v < n; ++v) {
      if (!gone[static_cast<std::size_t>(v)]) any_left = true;
    }
    if (!any_left) break;
  }
  return core;
}

TEST(KcoreTest, PathCoreness) {
  const auto g = path_graph(6);
  const auto c = core_numbers(g);
  for (auto k : c) EXPECT_EQ(k, 1);
  EXPECT_EQ(degeneracy(c), 1);
}

TEST(KcoreTest, CompleteGraphCoreness) {
  const auto g = complete_graph(5);
  const auto c = core_numbers(g);
  for (auto k : c) EXPECT_EQ(k, 4);
}

TEST(KcoreTest, IsolatedVertexIsZeroCore) {
  const auto g = make_undirected(4, {{0, 1}, {1, 2}, {0, 2}});
  const auto c = core_numbers(g);
  EXPECT_EQ(c[3], 0);
  EXPECT_EQ(c[0], 2);
}

TEST(KcoreTest, SelfLoopDoesNotInflateCoreness) {
  const auto g = make_undirected(2, {{0, 1}, {0, 0}});
  const auto c = core_numbers(g);
  EXPECT_EQ(c[0], 1);
  EXPECT_EQ(c[1], 1);
}

TEST(KcoreTest, StarOfCliquesLayers) {
  // 3 cliques of size 6: members have coreness 5; the hub (degree 3, all
  // neighbors deeper) peels at k = 3.
  const auto g = star_of_cliques(3, 6);
  const auto c = core_numbers(g);
  EXPECT_EQ(c[0], 3);
  for (vid v = 1; v < g.num_vertices(); ++v) {
    EXPECT_EQ(c[static_cast<std::size_t>(v)], 5);
  }
  EXPECT_EQ(degeneracy(c), 5);
}

TEST(KcoreTest, DirectedThrows) {
  const auto g = make_directed(3, {{0, 1}});
  EXPECT_THROW(core_numbers(g), Error);
}

TEST(KcoreSubgraphTest, PeelsPendants) {
  // Triangle with a pendant chain: 2-core is just the triangle.
  const auto g = make_undirected(6, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {4, 5}});
  const auto sub = kcore_subgraph(g, 2);
  EXPECT_EQ(sub.graph.num_vertices(), 3);
  EXPECT_EQ(sub.orig_ids, (std::vector<vid>{0, 1, 2}));
}

TEST(KcoreSubgraphTest, EmptyCoreForTooLargeK) {
  const auto g = path_graph(5);
  const auto sub = kcore_subgraph(g, 10);
  EXPECT_EQ(sub.graph.num_vertices(), 0);
}

class KcorePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KcorePropertyTest, MatchesReference) {
  Rng rng(GetParam());
  const vid n = 20 + static_cast<vid>(rng.next_below(150));
  const auto m = static_cast<std::int64_t>(n * (1 + rng.next_below(5)));
  const auto g = erdos_renyi(n, m, GetParam() * 31 + 7);
  EXPECT_EQ(core_numbers(g), reference_cores(g));
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, KcorePropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(KcorePropertyTest, CoreMonotoneUnderKcoreExtraction) {
  // Every vertex of the k-core subgraph must have degree >= k inside it.
  const auto g = erdos_renyi(300, 1800, 77);
  for (std::int64_t k = 1; k <= 4; ++k) {
    const auto sub = kcore_subgraph(g, k);
    for (vid v = 0; v < sub.graph.num_vertices(); ++v) {
      EXPECT_GE(sub.graph.degree(v), k);
    }
  }
}

}  // namespace
}  // namespace graphct
