#include "twitter/datasets.hpp"

#include <gtest/gtest.h>

#include "twitter/mention_graph.hpp"
#include "util/error.hpp"

namespace graphct::twitter {
namespace {

TEST(DatasetsTest, AllPresetsResolve) {
  for (const auto& name : dataset_preset_names()) {
    const auto p = dataset_preset(name);
    EXPECT_EQ(p.name, name);
    EXPECT_GT(p.corpus.user_pool, 0);
    EXPECT_GT(p.corpus.num_tweets, 0);
    EXPECT_FALSE(p.description.empty());
  }
}

TEST(DatasetsTest, UnknownPresetThrows) {
  EXPECT_THROW(dataset_preset("nope"), graphct::Error);
}

TEST(DatasetsTest, ScaleShrinksCorpus) {
  const auto full = dataset_preset("h1n1");
  const auto half = dataset_preset("h1n1", 0.5);
  EXPECT_LT(half.corpus.num_tweets, full.corpus.num_tweets);
  EXPECT_LT(half.corpus.user_pool, full.corpus.user_pool);
  // Paper reference numbers are not scaled.
  EXPECT_EQ(half.paper.users, full.paper.users);
}

TEST(DatasetsTest, ScaleOutOfRangeThrows) {
  EXPECT_THROW(dataset_preset("h1n1", 0.0), graphct::Error);
  EXPECT_THROW(dataset_preset("h1n1", 1.5), graphct::Error);
}

TEST(DatasetsTest, PaperNumbersMatchTableIII) {
  const auto h = dataset_preset("h1n1");
  EXPECT_EQ(h.paper.users, 46457);
  EXPECT_EQ(h.paper.unique_interactions, 36886);
  EXPECT_EQ(h.paper.tweets_with_responses, 3444);
  const auto a = dataset_preset("atlflood");
  EXPECT_EQ(a.paper.users, 2283);
  EXPECT_EQ(a.paper.lwcc_users, 1488);
  const auto s = dataset_preset("sep1");
  EXPECT_EQ(s.paper.users, 735465);
  EXPECT_EQ(s.paper.unique_interactions, 1020671);
}

TEST(DatasetsTest, H1n1HubsIncludePaperTableIVNames) {
  const auto p = dataset_preset("h1n1");
  bool cdc = false;
  for (const auto& h : p.corpus.hub_names) {
    if (h == "cdcflu") cdc = true;
  }
  EXPECT_TRUE(cdc);
}

// Structural calibration check: the scaled-down presets must still produce
// the paper's qualitative shape — heavy broadcast hubs, fragmented full
// graph with a dominant LWCC, conversations a small fraction.
TEST(DatasetsTest, ScaledH1n1HasPaperShape) {
  const auto p = dataset_preset("h1n1", 0.1);
  const auto tweets = generate_corpus(p.corpus);
  MentionGraphBuilder b;
  for (const auto& t : tweets) b.add(t);
  const auto mg = std::move(b).build();

  EXPECT_GT(mg.num_users, 1000);
  // Interactions below users: fragmented, tree-like (paper: 36886 < 46457).
  EXPECT_LT(mg.unique_interactions, mg.num_users);
  // Responses are a small fraction of tweets (paper: 3444 / ~46k).
  EXPECT_LT(mg.tweets_with_responses, mg.num_tweets / 4);
  EXPECT_GT(mg.tweets_with_responses, 0);
  EXPECT_GT(mg.self_references, 0);
}

TEST(DatasetsTest, TinyPresetFastEnoughForUnitTests) {
  const auto p = dataset_preset("tiny");
  const auto tweets = generate_corpus(p.corpus);
  EXPECT_LT(tweets.size(), 3000u);
  EXPECT_GE(tweets.size(), 900u);
}

}  // namespace
}  // namespace graphct::twitter
