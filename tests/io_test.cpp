#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/io_binary.hpp"
#include "graph/io_dimacs.hpp"
#include "graph/io_edgelist.hpp"
#include "graph/io_metis.hpp"
#include "graph/builder.hpp"
#include "gen/rmat.hpp"
#include "test_support.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace graphct {
namespace {

using testing::make_directed;
using testing::make_undirected;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(DimacsParseTest, BasicFile) {
  const char* text =
      "c a comment\n"
      "p sp 4 3\n"
      "a 1 2 5\n"
      "a 2 3 1\n"
      "e 3 4\n";
  const EdgeList el = parse_dimacs(text);
  EXPECT_EQ(el.num_vertices_hint(), 4);
  ASSERT_EQ(el.size(), 3u);
  EXPECT_EQ(el.edges()[0], (Edge{0, 1}));
  EXPECT_EQ(el.edges()[2], (Edge{2, 3}));
}

TEST(DimacsParseTest, IgnoresWeightsAndBlankLines) {
  const char* text = "p sp 2 1\n\n\na 1 2 99999\n";
  const EdgeList el = parse_dimacs(text);
  ASSERT_EQ(el.size(), 1u);
}

TEST(DimacsParseTest, NoProblemLineInfersVertices) {
  const EdgeList el = parse_dimacs("a 1 5 1\n");
  EXPECT_EQ(el.num_vertices_hint(), kNoVertex);
  EXPECT_EQ(el.inferred_num_vertices(), 5);
}

TEST(DimacsParseTest, MalformedEdgeThrows) {
  EXPECT_THROW(parse_dimacs("a 1\n"), Error);
  EXPECT_THROW(parse_dimacs("a x y\n"), Error);
}

TEST(DimacsParseTest, UnknownTagThrows) {
  EXPECT_THROW(parse_dimacs("q 1 2\n"), Error);
}

TEST(DimacsParseTest, EndpointBeyondDeclaredCountThrows) {
  EXPECT_THROW(parse_dimacs("p sp 2 1\na 1 9 1\n"), Error);
}

TEST(DimacsParseTest, ZeroVertexIdThrows) {
  // DIMACS is 1-based; a 0 id is malformed.
  EXPECT_THROW(parse_dimacs("p sp 2 1\na 0 1 1\n"), Error);
}

TEST(DimacsRoundTripTest, UndirectedGraphSurvives) {
  const auto g = make_undirected(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {1, 3}});
  const std::string text = to_dimacs(g);
  const auto g2 = build_csr(parse_dimacs(text));
  EXPECT_EQ(g, g2);
}

TEST(DimacsRoundTripTest, FileIo) {
  const auto g = make_undirected(4, {{0, 1}, {2, 3}});
  const std::string path = temp_path("gct_io_test.dimacs");
  write_dimacs(g, path);
  const auto g2 = build_csr(read_dimacs(path));
  EXPECT_EQ(g, g2);
  std::remove(path.c_str());
}

TEST(DimacsParseTest, ParallelParseMatchesSerialOnLargeInput) {
  // Large generated file exercises the chunked parallel parser.
  RmatOptions r;
  r.scale = 10;
  r.edge_factor = 8;
  const auto g = rmat_graph(r);
  const std::string text = to_dimacs(g);
  const auto g2 = build_csr(parse_dimacs(text));
  EXPECT_EQ(g, g2);
}

TEST(BinaryRoundTripTest, UndirectedGraph) {
  const auto g = make_undirected(6, {{0, 1}, {1, 2}, {3, 3}, {4, 5}});
  const std::string path = temp_path("gct_io_test.bin");
  write_binary(g, path);
  const auto g2 = read_binary(path);
  EXPECT_EQ(g, g2);
  EXPECT_EQ(g2.num_self_loops(), 1);
  std::remove(path.c_str());
}

TEST(BinaryRoundTripTest, DirectedGraph) {
  const auto g = make_directed(4, {{0, 1}, {1, 2}, {3, 0}});
  const std::string path = temp_path("gct_io_test_dir.bin");
  write_binary(g, path);
  const auto g2 = read_binary(path);
  EXPECT_EQ(g, g2);
  EXPECT_TRUE(g2.directed());
  std::remove(path.c_str());
}

TEST(BinaryReadTest, MissingFileThrows) {
  EXPECT_THROW(read_binary("/nonexistent/gct.bin"), Error);
}

TEST(BinaryReadTest, GarbageMagicThrows) {
  const std::string path = temp_path("gct_io_garbage.bin");
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a graph file, not even close, padding padding";
  }
  EXPECT_THROW(read_binary(path), Error);
  std::remove(path.c_str());
}

TEST(BinaryReadTest, TruncatedFileThrows) {
  const auto g = make_undirected(100, {{0, 1}, {5, 9}});
  const std::string path = temp_path("gct_io_trunc.bin");
  write_binary(g, path);
  std::filesystem::resize_file(path, 40);
  EXPECT_THROW(read_binary(path), Error);
  std::remove(path.c_str());
}

TEST(BinaryReadTest, TruncatedTrailerThrows) {
  const auto g = make_undirected(100, {{0, 1}, {5, 9}});
  const std::string path = temp_path("gct_io_trunc_trailer.bin");
  write_binary(g, path);
  // Chop half the trailer: the size check reports a truncated file.
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 8);
  try {
    read_binary(path);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(BinaryReadTest, TrailingBytesThrow) {
  const auto g = make_undirected(10, {{0, 1}, {2, 3}});
  const std::string path = temp_path("gct_io_trailing.bin");
  write_binary(g, path);
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f << "extra";
  }
  try {
    read_binary(path);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("trailing"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(BinaryReadTest, CorruptAdjacencyFailsChecksum) {
  const auto g = make_undirected(50, {{0, 1}, {1, 2}, {2, 3}, {10, 20}});
  const std::string path = temp_path("gct_io_bitflip.bin");
  write_binary(g, path);
  {
    // Flip one byte inside the adjacency region (after the 40-byte header
    // and the 51-entry offsets array).
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(40 + 51 * 8 + 3);
    char b = 0;
    f.seekg(f.tellp());
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(40 + 51 * 8 + 3);
    f.write(&b, 1);
  }
  try {
    read_binary(path);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(BinaryReadTest, UnsupportedVersionThrows) {
  const auto g = make_undirected(10, {{0, 1}});
  const std::string path = temp_path("gct_io_badver.bin");
  write_binary(g, path);
  {
    // The version field sits right after the 8-byte magic.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    const std::uint32_t bogus = 99;
    f.seekp(8);
    f.write(reinterpret_cast<const char*>(&bogus), sizeof bogus);
  }
  try {
    read_binary(path);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(EdgeListIoTest, ParseBasics) {
  const EdgeList el = parse_edge_list("# comment\n0 1\n2 3\n\n% other\n1 2\n");
  ASSERT_EQ(el.size(), 3u);
  EXPECT_EQ(el.edges()[0], (Edge{0, 1}));
  EXPECT_EQ(el.edges()[2], (Edge{1, 2}));
}

TEST(EdgeListIoTest, MalformedLineThrows) {
  EXPECT_THROW(parse_edge_list("0\n"), Error);
  EXPECT_THROW(parse_edge_list("a b\n"), Error);
}

TEST(EdgeListIoTest, RoundTrip) {
  const auto g = make_undirected(5, {{0, 4}, {1, 2}, {2, 3}});
  const auto g2 = build_csr(parse_edge_list(to_edge_list(g)));
  EXPECT_EQ(g, g2);
}

TEST(EdgeListIoTest, FileRoundTrip) {
  const auto g = make_directed(3, {{0, 1}, {2, 0}});
  const std::string path = temp_path("gct_io_test.el");
  write_edge_list(g, path);
  BuildOptions o;
  o.symmetrize = false;
  const auto g2 = build_csr(read_edge_list(path), o);
  EXPECT_EQ(g, g2);
  std::remove(path.c_str());
}

TEST(EdgeListIoTest, WindowsLineEndings) {
  const EdgeList el = parse_edge_list("0 1\r\n1 2\r\n");
  ASSERT_EQ(el.size(), 2u);
  EXPECT_EQ(el.edges()[1], (Edge{1, 2}));
}

TEST(MetisIoTest, ParseTriangleWithTail) {
  // Triangle 1-2-3 plus pendant 4 on 1 (1-based METIS ids).
  const auto g = parse_metis(
      "% comment\n"
      "4 4\n"
      "2 3 4\n"
      "1 3\n"
      "1 2\n"
      "1\n");
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.directed());
}

TEST(MetisIoTest, IsolatedVertexLinesAreEmpty) {
  const auto g = parse_metis("3 1\n2\n1\n\n");
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.degree(2), 0);
}

TEST(MetisIoTest, RoundTrip) {
  const auto g = make_undirected(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5},
                                     {0, 5}, {1, 4}});
  EXPECT_EQ(parse_metis(to_metis(g)), g);
}

TEST(MetisIoTest, SelfLoopsDroppedOnWrite) {
  const auto g = make_undirected(3, {{0, 1}, {2, 2}});
  const auto g2 = parse_metis(to_metis(g));
  EXPECT_EQ(g2.num_edges(), 1);
  EXPECT_EQ(g2.num_self_loops(), 0);
}

TEST(MetisIoTest, RejectsWeightedFormat) {
  EXPECT_THROW(parse_metis("2 1 1\n2 5\n1 5\n"), Error);
}

TEST(MetisIoTest, RejectsBadCounts) {
  // Declared m = 3 but only one edge present.
  EXPECT_THROW(parse_metis("2 3\n2\n1\n"), Error);
  // Too few vertex lines.
  EXPECT_THROW(parse_metis("3 1\n2\n1\n"), Error);
  // Neighbor id out of range.
  EXPECT_THROW(parse_metis("2 1\n5\n\n"), Error);
}

TEST(MetisIoTest, RejectsDirectedWrite) {
  const auto g = make_directed(2, {{0, 1}});
  EXPECT_THROW(to_metis(g), Error);
}

// Robustness: random byte soup must either parse or throw graphct::Error —
// never crash, hang, or produce an out-of-range graph. (The CsrGraph
// constructor re-validates everything, so any accepted parse is structurally
// sound by construction.)
class ParserFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzzTest, GarbageNeverCrashesParsers) {
  Rng rng(GetParam());
  const std::size_t len = 1 + rng.next_below(400);
  std::string soup;
  soup.reserve(len);
  const char alphabet[] = "0123456789 \n\tapec%#=>-x";
  for (std::size_t i = 0; i < len; ++i) {
    soup += alphabet[rng.next_below(sizeof(alphabet) - 1)];
  }
  try {
    const EdgeList el = parse_dimacs(soup);
    (void)build_csr(el);
  } catch (const Error&) {
  }
  try {
    const EdgeList el = parse_edge_list(soup);
    (void)build_csr(el);
  } catch (const Error&) {
  }
  try {
    (void)parse_metis(soup);
  } catch (const Error&) {
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSoup, ParserFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(MetisIoTest, FileRoundTrip) {
  const auto g = make_undirected(5, {{0, 1}, {1, 2}, {3, 4}});
  const std::string path = temp_path("gct_io_test.metis");
  write_metis(g, path);
  EXPECT_EQ(read_metis(path), g);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace graphct
