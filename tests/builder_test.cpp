#include "graph/builder.hpp"

#include <gtest/gtest.h>

#include <set>

#include "test_support.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace graphct {
namespace {

TEST(BuilderTest, EmptyEdgeListWithHint) {
  EdgeList el(5);
  const auto g = build_csr(el);
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(BuilderTest, EmptyEdgeListNoHint) {
  EdgeList el;
  const auto g = build_csr(el);
  EXPECT_EQ(g.num_vertices(), 0);
}

TEST(BuilderTest, InferredVertexCountFromMaxId) {
  EdgeList el;
  el.add(3, 7);
  const auto g = build_csr(el);
  EXPECT_EQ(g.num_vertices(), 8);
}

TEST(BuilderTest, SymmetrizeStoresBothDirections) {
  EdgeList el(3);
  el.add(0, 1);
  BuildOptions o;
  o.symmetrize = true;
  const auto g = build_csr(el, o);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(BuilderTest, DirectedKeepsOneDirection) {
  EdgeList el(3);
  el.add(0, 1);
  BuildOptions o;
  o.symmetrize = false;
  const auto g = build_csr(el, o);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
}

TEST(BuilderTest, DedupCollapsesParallelEdges) {
  EdgeList el(2);
  for (int i = 0; i < 10; ++i) el.add(0, 1);
  for (int i = 0; i < 5; ++i) el.add(1, 0);
  const auto g = build_csr(el);  // undirected + dedup defaults
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 1);
}

TEST(BuilderTest, NoDedupKeepsMultiplicity) {
  EdgeList el(2);
  el.add(0, 1);
  el.add(0, 1);
  BuildOptions o;
  o.symmetrize = false;
  o.dedup = false;
  const auto g = build_csr(el, o);
  EXPECT_EQ(g.degree(0), 2);
}

TEST(BuilderTest, SelfLoopKeptByDefault) {
  EdgeList el(2);
  el.add(1, 1);
  const auto g = build_csr(el);
  EXPECT_EQ(g.num_self_loops(), 1);
  EXPECT_EQ(g.degree(1), 1);  // stored once in undirected form
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(BuilderTest, SelfLoopRemovedOnRequest) {
  EdgeList el(2);
  el.add(1, 1);
  el.add(0, 1);
  BuildOptions o;
  o.remove_self_loops = true;
  const auto g = build_csr(el, o);
  EXPECT_EQ(g.num_self_loops(), 0);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(BuilderTest, DuplicateSelfLoopsDedup) {
  EdgeList el(2);
  el.add(0, 0);
  el.add(0, 0);
  const auto g = build_csr(el);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.num_self_loops(), 1);
}

TEST(BuilderTest, OutOfRangeEndpointThrows) {
  EdgeList el(2);
  el.add(0, 5);
  el.set_num_vertices_hint(2);
  EXPECT_THROW(build_csr(el), Error);
}

TEST(BuilderTest, NegativeEndpointThrows) {
  EdgeList el(3);
  el.add(-1, 0);
  EXPECT_THROW(build_csr(el), Error);
}

TEST(BuilderTest, DedupRequiresSortedAdjacency) {
  EdgeList el(2);
  el.add(0, 1);
  BuildOptions o;
  o.dedup = true;
  o.sort_adjacency = false;
  EXPECT_THROW(build_csr(el, o), Error);
}

TEST(BuilderTest, DegreeSumEqualsAdjacencyEntries) {
  Rng rng(5);
  EdgeList el(100);
  for (int i = 0; i < 500; ++i) {
    el.add(static_cast<vid>(rng.next_below(100)),
           static_cast<vid>(rng.next_below(100)));
  }
  const auto g = build_csr(el);
  eid sum = 0;
  for (vid v = 0; v < g.num_vertices(); ++v) sum += g.degree(v);
  EXPECT_EQ(sum, g.num_adjacency_entries());
}

TEST(BuilderTest, UndirectedAdjacencyIsSymmetric) {
  Rng rng(6);
  EdgeList el(50);
  for (int i = 0; i < 300; ++i) {
    el.add(static_cast<vid>(rng.next_below(50)),
           static_cast<vid>(rng.next_below(50)));
  }
  const auto g = build_csr(el);
  for (vid u = 0; u < g.num_vertices(); ++u) {
    for (vid v : g.neighbors(u)) {
      EXPECT_TRUE(g.has_edge(v, u)) << u << "->" << v;
    }
  }
}

TEST(BuilderTest, AdjacencyListsSortedAndUnique) {
  Rng rng(7);
  EdgeList el(40);
  for (int i = 0; i < 400; ++i) {
    el.add(static_cast<vid>(rng.next_below(40)),
           static_cast<vid>(rng.next_below(40)));
  }
  const auto g = build_csr(el);
  for (vid v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    EXPECT_EQ(std::adjacent_find(nbrs.begin(), nbrs.end()), nbrs.end());
  }
}

// Property sweep: for random multigraphs, build twice with different option
// paths and compare edge membership against a reference set.
class BuilderPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BuilderPropertyTest, MatchesReferenceEdgeSet) {
  Rng rng(GetParam());
  const vid n = 5 + static_cast<vid>(rng.next_below(60));
  const int m = 1 + static_cast<int>(rng.next_below(300));
  EdgeList el(n);
  std::set<std::pair<vid, vid>> expect;  // undirected canonical pairs
  for (int i = 0; i < m; ++i) {
    const vid u = static_cast<vid>(rng.next_below(static_cast<std::uint64_t>(n)));
    const vid v = static_cast<vid>(rng.next_below(static_cast<std::uint64_t>(n)));
    el.add(u, v);
    expect.insert({std::min(u, v), std::max(u, v)});
  }
  const auto g = build_csr(el);
  // Every expected pair present...
  for (const auto& [u, v] : expect) {
    EXPECT_TRUE(g.has_edge(u, v));
    EXPECT_TRUE(g.has_edge(v, u));
  }
  // ...and the count matches exactly (no phantom edges).
  EXPECT_EQ(g.num_edges(), static_cast<eid>(expect.size()));
}

INSTANTIATE_TEST_SUITE_P(RandomMultigraphs, BuilderPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace graphct
