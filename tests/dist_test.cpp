/// Tests for the dist substrate: partitioning invariants, distributed
/// kernel parity against the single-process kernels, and worker-failure
/// semantics (explicit error, no wedge, graph stays serviceable).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "algs/bfs.hpp"
#include "algs/connected_components.hpp"
#include "algs/pagerank.hpp"
#include "core/betweenness.hpp"
#include "core/toolkit.hpp"
#include "dist/coordinator.hpp"
#include "dist/local_worker_set.hpp"
#include "dist/partition.hpp"
#include "gen/rmat.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace graphct::dist {
namespace {

using testing::make_directed;
using testing::make_undirected;

CsrGraph test_rmat(std::int64_t scale, bool directed) {
  RmatOptions opts;
  opts.scale = scale;
  opts.edge_factor = 8;
  opts.seed = directed ? 7 : 11;
  CsrGraph g = rmat_graph(opts);
  if (!directed) g = to_undirected(g);
  return g;
}

/// Spin up `n` in-process workers, connect a coordinator, load `g`, and
/// hand the coordinator to `body`. Teardown is exercised on every path.
template <typename Body>
void with_coordinator(const CsrGraph& g, int n, Body&& body) {
  LocalWorkerSetOptions wopts;
  wopts.num_workers = n;
  LocalWorkerSet workers(wopts);
  Coordinator coord;
  coord.connect(workers.ports());
  coord.load_graph(g);
  body(coord);
  coord.shutdown();
}

// --------------------------------------------------------------- partition

TEST(PartitionTest, BlocksAreContiguousAndCoverEveryVertex) {
  const CsrGraph g = test_rmat(9, true);
  for (const int n : {1, 2, 3, 4, 7}) {
    const Partition p = partition_graph(g, n);
    ASSERT_EQ(p.num_blocks(), n);
    EXPECT_EQ(p.num_vertices, g.num_vertices());
    EXPECT_EQ(p.total_entries, g.num_adjacency_entries());
    vid expect_begin = 0;
    eid entries = 0;
    for (const BlockInfo& b : p.blocks) {
      EXPECT_EQ(b.begin, expect_begin);
      EXPECT_LE(b.begin, b.end);
      EXPECT_LE(b.cut_entries, b.entries);
      expect_begin = b.end;
      entries += b.entries;
    }
    EXPECT_EQ(expect_begin, g.num_vertices());
    EXPECT_EQ(entries, g.num_adjacency_entries());
  }
}

TEST(PartitionTest, OwnerAgreesWithBlockRanges) {
  const CsrGraph g = test_rmat(8, false);
  const Partition p = partition_graph(g, 4);
  for (vid v = 0; v < g.num_vertices(); ++v) {
    const int o = p.owner(v);
    ASSERT_GE(o, 0);
    ASSERT_LT(o, p.num_blocks());
    EXPECT_GE(v, p.blocks[static_cast<std::size_t>(o)].begin);
    EXPECT_LT(v, p.blocks[static_cast<std::size_t>(o)].end);
  }
}

TEST(PartitionTest, SingleBlockHasNoCut) {
  const CsrGraph g = test_rmat(8, true);
  const Partition p = partition_graph(g, 1);
  EXPECT_EQ(p.blocks[0].cut_entries, 0);
  EXPECT_DOUBLE_EQ(p.edge_cut_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(p.imbalance(), 1.0);
}

TEST(PartitionTest, CutMatchesBruteForceCount) {
  const CsrGraph g = make_undirected(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4},
                                         {4, 5}, {0, 5}, {1, 4}});
  const Partition p = partition_graph(g, 2);
  const auto offsets = g.offsets();
  const auto adjacency = g.adjacency();
  eid expect_cut = 0;
  for (const BlockInfo& b : p.blocks) {
    eid cut = 0;
    for (eid e = offsets[static_cast<std::size_t>(b.begin)];
         e < offsets[static_cast<std::size_t>(b.end)]; ++e) {
      const vid t = adjacency[static_cast<std::size_t>(e)];
      if (t < b.begin || t >= b.end) ++cut;
    }
    EXPECT_EQ(b.cut_entries, cut);
    expect_cut += cut;
  }
  EXPECT_DOUBLE_EQ(p.edge_cut_fraction(),
                   static_cast<double>(expect_cut) /
                       static_cast<double>(g.num_adjacency_entries()));
}

TEST(PartitionTest, MoreBlocksThanVerticesYieldsEmptyBlocks) {
  const CsrGraph g = make_undirected(3, {{0, 1}, {1, 2}});
  const Partition p = partition_graph(g, 8);
  ASSERT_EQ(p.num_blocks(), 8);
  vid covered = 0;
  int empty = 0;
  for (const BlockInfo& b : p.blocks) {
    covered += b.num_vertices();
    if (b.num_vertices() == 0) ++empty;
  }
  EXPECT_EQ(covered, 3);
  EXPECT_GE(empty, 5);  // only 3 vertices exist; empty blocks are legal
  EXPECT_GE(p.imbalance(), 1.0);
}

TEST(PartitionTest, RejectsNonPositiveBlockCount) {
  const CsrGraph g = make_undirected(2, {{0, 1}});
  EXPECT_THROW(partition_graph(g, 0), Error);
  EXPECT_THROW(partition_graph(g, -3), Error);
}

TEST(PartitionTest, EdgeBalanceBeatsNaiveVertexSplitOnSkew) {
  // A star: vertex 0 owns half of all entries. An edge-balanced 2-way
  // split must isolate the hub rather than cutting vertices in half.
  EdgeList el(64);
  for (vid v = 1; v < 64; ++v) el.add(0, v);
  BuildOptions b;
  b.symmetrize = true;
  const CsrGraph g = build_csr(el, b);
  const Partition p = partition_graph(g, 2);
  EXPECT_LT(p.blocks[0].num_vertices(), 32);
  EXPECT_LE(p.imbalance(), 1.5);
}

// ------------------------------------------------------------------ parity

void expect_bfs_parity(const CsrGraph& g, int workers, vid source) {
  const auto expect = bfs(g, source).distance;
  with_coordinator(g, workers, [&](Coordinator& c) {
    const auto got = c.bfs_distances(source);
    ASSERT_EQ(got.size(), expect.size());
    EXPECT_EQ(got, expect) << "bfs parity failed, workers=" << workers;
  });
}

void expect_cc_parity(const CsrGraph& g, int workers) {
  const auto expect = weak_components(g);
  with_coordinator(g, workers, [&](Coordinator& c) {
    const auto got = c.components();
    ASSERT_EQ(got.size(), expect.size());
    EXPECT_EQ(got, expect) << "cc parity failed, workers=" << workers;
  });
}

void expect_pr_parity(const CsrGraph& g, int workers) {
  const auto expect = pagerank(g);
  with_coordinator(g, workers, [&](Coordinator& c) {
    const auto got = c.pagerank();
    ASSERT_EQ(got.score.size(), expect.score.size());
    EXPECT_EQ(got.iterations, expect.iterations);
    EXPECT_EQ(got.converged, expect.converged);
    double max_abs = 0.0;
    for (std::size_t i = 0; i < got.score.size(); ++i) {
      max_abs = std::max(max_abs, std::fabs(got.score[i] - expect.score[i]));
    }
    // Identical adjacency-order accumulation; only the dangling-mass
    // reduction order differs from the OpenMP single-process kernel.
    EXPECT_LE(max_abs, 1e-12) << "pr parity failed, workers=" << workers;
  });
}

TEST(DistParityTest, BfsMatchesSingleProcessUndirected) {
  const CsrGraph g = test_rmat(11, false);
  for (const int w : {1, 2, 4}) expect_bfs_parity(g, w, 0);
}

TEST(DistParityTest, BfsMatchesSingleProcessDirected) {
  const CsrGraph g = test_rmat(11, true);
  for (const int w : {1, 2, 4}) expect_bfs_parity(g, w, 1);
}

TEST(DistParityTest, BoundedBfsHonorsMaxDepth) {
  const CsrGraph g = test_rmat(10, false);
  BfsOptions opts;
  opts.max_depth = 2;
  const auto expect = bfs(g, 0, opts).distance;
  with_coordinator(g, 3, [&](Coordinator& c) {
    EXPECT_EQ(c.bfs_distances(0, 2), expect);
  });
}

TEST(DistParityTest, ComponentsMatchSingleProcessUndirected) {
  const CsrGraph g = test_rmat(11, false);
  for (const int w : {1, 2, 4}) expect_cc_parity(g, w);
}

TEST(DistParityTest, ComponentsMatchSingleProcessDirected) {
  // Weak components: a directed arc still merges its endpoints.
  const CsrGraph g = test_rmat(11, true);
  for (const int w : {1, 2, 4}) expect_cc_parity(g, w);
}

TEST(DistParityTest, PageRankMatchesSingleProcessUndirected) {
  const CsrGraph g = test_rmat(11, false);
  for (const int w : {1, 2, 4}) expect_pr_parity(g, w);
}

TEST(DistParityTest, PageRankMatchesSingleProcessDirected) {
  const CsrGraph g = test_rmat(11, true);
  for (const int w : {1, 2, 4}) expect_pr_parity(g, w);
}

TEST(DistParityTest, DisconnectedSourcesAndIsolatedVertices) {
  const CsrGraph g =
      make_undirected(9, {{0, 1}, {1, 2}, {4, 5}, {5, 6}});  // 3,7,8 isolated
  with_coordinator(g, 4, [&](Coordinator& c) {
    EXPECT_EQ(c.bfs_distances(4), testing::reference_bfs_distances(g, 4));
    EXPECT_EQ(c.components(), weak_components(g));
  });
}

TEST(DistParityTest, KernelsAreRerunnableOnOneCoordinator) {
  const CsrGraph g = test_rmat(10, false);
  with_coordinator(g, 2, [&](Coordinator& c) {
    const auto d0 = c.bfs_distances(0);
    EXPECT_EQ(c.bfs_distances(0), d0);  // state fully reset between runs
    const auto cc = c.components();
    EXPECT_EQ(c.components(), cc);
    EXPECT_EQ(c.bfs_distances(7), bfs(g, 7).distance);
  });
}

TEST(DistParityTest, ReloadingADifferentGraphWorks) {
  const CsrGraph a = test_rmat(9, false);
  const CsrGraph b = test_rmat(10, true);
  with_coordinator(a, 2, [&](Coordinator& c) {
    EXPECT_EQ(c.components(), weak_components(a));
    c.load_graph(b);
    EXPECT_EQ(c.components(), weak_components(b));
    EXPECT_EQ(c.bfs_distances(0), bfs(b, 0).distance);
  });
}

TEST(DistParityTest, StatsCountTrafficAndSteps) {
  const CsrGraph g = test_rmat(9, false);
  with_coordinator(g, 2, [&](Coordinator& c) {
    const DistStats before = c.stats();
    EXPECT_GT(before.messages_sent, 0);  // hello + load traffic
    c.bfs_distances(0);
    const DistStats& k = c.last_kernel_stats();
    EXPECT_GT(k.steps, 0);
    EXPECT_GT(k.messages_sent, 0);
    EXPECT_GT(k.bytes_received, 0);
    const DistStats after = c.stats();
    EXPECT_GE(after.messages_sent, before.messages_sent + k.messages_sent);
    EXPECT_EQ(after.steps, k.steps);
  });
}

// ------------------------------------------------------------- betweenness

/// Single-process fine-mode reference over the same source list the dist
/// engine will run — the contract is bit-identical scores.
std::vector<double> reference_bc(const CsrGraph& g,
                                 const BetweennessOptions& opts,
                                 std::vector<vid>* sources_out = nullptr) {
  const GraphView v(g);
  if (sources_out) *sources_out = choose_sources(v, opts);
  BetweennessOptions fine = opts;
  fine.parallelism = BcParallelism::kFine;
  return betweenness_centrality(v, fine).score;
}

void expect_bc_bit_parity(const CsrGraph& g, int workers, bool fork_mode,
                          int worker_threads,
                          std::int64_t batch_sources = 0) {
  BetweennessOptions opts;
  opts.num_sources = 24;
  opts.seed = 5;
  std::vector<vid> sources;
  const std::vector<double> expect = reference_bc(g, opts, &sources);
  LocalWorkerSetOptions wopts;
  wopts.num_workers = workers;
  wopts.fork_mode = fork_mode;
  wopts.threads = worker_threads;
  LocalWorkerSet set(wopts);
  Coordinator coord;
  coord.connect(set.ports());
  coord.load_graph(g);
  const std::vector<double> got = coord.betweenness(sources, batch_sources);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    // Bitwise, not approximate: the dist engine replays the fine-mode
    // engine's exact add order through the shared 4-lane rows.
    ASSERT_EQ(got[i], expect[i])
        << "bc score diverged at vertex " << i << " (workers=" << workers
        << " fork=" << fork_mode << " threads=" << worker_threads << ")";
  }
  coord.shutdown();
}

TEST(DistBcTest, BitIdenticalToFineModeAcrossWorkerCounts) {
  const CsrGraph g = test_rmat(10, false);
  for (const int w : {1, 2, 4}) {
    expect_bc_bit_parity(g, w, /*fork_mode=*/false, /*worker_threads=*/1);
  }
}

TEST(DistBcTest, BitIdenticalInForkMode) {
  const CsrGraph g = test_rmat(10, false);
  for (const int w : {1, 2, 4}) {
    expect_bc_bit_parity(g, w, /*fork_mode=*/true, /*worker_threads=*/1);
  }
}

TEST(DistBcTest, BitIdenticalWithMultithreadedWorkers) {
  const CsrGraph g = test_rmat(10, false);
  expect_bc_bit_parity(g, 2, /*fork_mode=*/false, /*worker_threads=*/2);
  expect_bc_bit_parity(g, 2, /*fork_mode=*/true, /*worker_threads=*/2);
}

TEST(DistBcTest, SourceBatchingGathersTheSameScores) {
  const CsrGraph g = test_rmat(9, false);
  // Gather after every 5 sources: workers keep accumulating across
  // batches, so the final gather must still hold the full sum.
  expect_bc_bit_parity(g, 3, /*fork_mode=*/false, /*worker_threads=*/1,
                       /*batch_sources=*/5);
}

TEST(DistBcTest, LockstepExchangeMatchesOverlapped) {
  const CsrGraph g = test_rmat(9, false);
  BetweennessOptions opts;
  opts.num_sources = 12;
  std::vector<vid> sources;
  const std::vector<double> expect = reference_bc(g, opts, &sources);
  with_coordinator(g, 3, [&](Coordinator& c) {
    ASSERT_TRUE(c.overlap());
    const auto overlapped = c.betweenness(sources);
    c.set_overlap(false);
    const auto lockstep = c.betweenness(sources);
    c.set_overlap(true);
    EXPECT_EQ(overlapped, expect);
    EXPECT_EQ(lockstep, expect);
  });
}

TEST(DistBcTest, DisconnectedGraphAndIsolatedSources) {
  const CsrGraph g =
      make_undirected(9, {{0, 1}, {1, 2}, {4, 5}, {5, 6}});  // 3,7,8 isolated
  std::vector<vid> sources(static_cast<std::size_t>(g.num_vertices()));
  for (vid v = 0; v < g.num_vertices(); ++v) {
    sources[static_cast<std::size_t>(v)] = v;
  }
  BetweennessOptions fine;
  fine.parallelism = BcParallelism::kFine;
  const auto expect = betweenness_centrality(GraphView(g), fine).score;
  with_coordinator(g, 4, [&](Coordinator& c) {
    EXPECT_EQ(c.betweenness(sources), expect);
  });
}

TEST(DistBcTest, RejectsDirectedGraphsAndBadSources) {
  const CsrGraph g = make_directed(4, {{0, 1}, {1, 2}, {2, 3}});
  ASSERT_TRUE(g.directed());
  with_coordinator(g, 2, [&](Coordinator& c) {
    EXPECT_THROW(c.betweenness(std::vector<vid>{0}), Error);
  });
  const CsrGraph u = test_rmat(8, false);
  with_coordinator(u, 2, [&](Coordinator& c) {
    EXPECT_THROW(c.betweenness(std::vector<vid>{}), Error);
    EXPECT_THROW(c.betweenness(std::vector<vid>{u.num_vertices()}), Error);
  });
}

// ----------------------------------------------------------------- failure

TEST(DistFailureTest, DeadWorkerCancelsKernelWithExplicitError) {
  const CsrGraph g = test_rmat(10, false);
  LocalWorkerSetOptions wopts;
  wopts.num_workers = 3;
  wopts.fail_worker = 1;
  wopts.fail_after = 4;  // dies mid-kernel, after handshake + loads
  LocalWorkerSet workers(wopts);
  Coordinator coord;
  coord.connect(workers.ports());
  coord.load_graph(g);

  try {
    coord.components();
    FAIL() << "expected the kernel to be cancelled by the dead worker";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("worker 1"), std::string::npos) << what;
    EXPECT_NE(what.find("job cancelled"), std::string::npos) << what;
  }
  EXPECT_TRUE(coord.degraded());

  // No wedge: later kernel calls fail fast with the stored reason instead
  // of touching dead sockets.
  try {
    coord.bfs_distances(0);
    FAIL() << "expected degraded coordinator to fail fast";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("degraded"), std::string::npos);
  }

  // The graph itself stays fully serviceable through single-process runs.
  EXPECT_EQ(weak_components(g).size(),
            static_cast<std::size_t>(g.num_vertices()));
  coord.shutdown();  // must not throw or hang on a degraded substrate
}

TEST(DistFailureTest, DeadWorkerMidForwardSweepCancelsExactlyThatJob) {
  const CsrGraph g = test_rmat(9, false);
  const std::vector<vid> sources{0, 3, 5};
  LocalWorkerSetOptions wopts;
  wopts.num_workers = 3;
  wopts.fail_worker = 1;
  // Per-worker receive order: hello, load, kBcStart, kBcSource, then the
  // first kBcForward — dying on message 5 is mid-forward-sweep.
  wopts.fail_after = 5;
  LocalWorkerSet workers(wopts);
  Coordinator coord;
  coord.connect(workers.ports());
  coord.load_graph(g);
  try {
    coord.betweenness(sources);
    FAIL() << "expected the bc job to be cancelled by the dead worker";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("worker 1"), std::string::npos) << what;
    EXPECT_NE(what.find("bc"), std::string::npos) << what;
    EXPECT_NE(what.find("job cancelled"), std::string::npos) << what;
  }
  EXPECT_TRUE(coord.degraded());
  EXPECT_THROW(coord.betweenness(sources), Error);  // fast-fail, no wedge
  // Single-process betweenness on the same graph is untouched.
  BetweennessOptions fine;
  fine.parallelism = BcParallelism::kFine;
  fine.num_sources = 3;
  EXPECT_EQ(betweenness_centrality(GraphView(g), fine).score.size(),
            static_cast<std::size_t>(g.num_vertices()));
  coord.shutdown();
}

TEST(DistFailureTest, DeadWorkerMidBackwardSweepCancelsExactlyThatJob) {
  const CsrGraph g = test_rmat(9, false);
  const std::vector<vid> sources{0, 3, 5};
  // Derive the injection point from a healthy run: every kernel message is
  // one frame per worker, so per-worker kernel traffic is uniform. The
  // final two frames a worker receives are the last source's deepest-to-
  // shallowest kBcBackward(d=0) and then kBcScores — dying one frame
  // before the end lands mid-backward-sweep.
  std::int64_t per_worker = 0;
  {
    LocalWorkerSetOptions hopts;
    hopts.num_workers = 3;
    LocalWorkerSet healthy(hopts);
    Coordinator coord;
    coord.connect(healthy.ports());
    coord.load_graph(g);
    coord.betweenness(sources);
    ASSERT_EQ(coord.last_kernel_stats().messages_sent % 3, 0);
    per_worker = coord.last_kernel_stats().messages_sent / 3;
    coord.shutdown();
  }
  LocalWorkerSetOptions wopts;
  wopts.num_workers = 3;
  wopts.fail_worker = 2;
  wopts.fail_after = 2 + per_worker - 1;  // hello + load + all but kBcScores
  LocalWorkerSet workers(wopts);
  Coordinator coord;
  coord.connect(workers.ports());
  coord.load_graph(g);
  try {
    coord.betweenness(sources);
    FAIL() << "expected the bc job to be cancelled by the dead worker";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("worker 2"), std::string::npos) << what;
    EXPECT_NE(what.find("job cancelled"), std::string::npos) << what;
  }
  EXPECT_TRUE(coord.degraded());
  EXPECT_THROW(coord.betweenness(sources), Error);
  coord.shutdown();
}

TEST(DistFailureTest, DegradedBcRunNeverPoisonsCachedResults) {
  Toolkit tk(test_rmat(9, false));
  BetweennessOptions opts;
  opts.num_sources = 8;
  opts.parallelism = BcParallelism::kFine;
  const std::vector<double> expect = tk.betweenness(opts).score;

  LocalWorkerSetOptions wopts;
  wopts.num_workers = 2;
  wopts.fail_worker = 0;
  wopts.fail_after = 5;  // dies mid-forward-sweep
  LocalWorkerSet failing(wopts);
  Coordinator coord;
  coord.connect(failing.ports());
  EXPECT_THROW(tk.betweenness_dist(coord, opts), Error);

  // The single-process cache entry is intact, and a fresh healthy worker
  // set computes the dist entry cleanly — bit-identical to fine mode.
  EXPECT_EQ(tk.betweenness(opts).score, expect);
  LocalWorkerSetOptions hopts;
  hopts.num_workers = 2;
  LocalWorkerSet healthy(hopts);
  Coordinator coord2;
  coord2.connect(healthy.ports());
  EXPECT_EQ(tk.betweenness_dist(coord2, opts).score, expect);
  coord2.shutdown();
}

TEST(DistFailureTest, ConnectToDeadPortFailsExplicitly) {
  Coordinator coord;
  int dead_port;
  {
    // Bind-then-close: the port existed a moment ago and is now free, so
    // connecting to it must fail fast rather than wedge.
    WorkerServer probe;
    dead_port = probe.port();
  }
  EXPECT_THROW(coord.connect({dead_port}), Error);
}

TEST(DistFailureTest, KernelBeforeLoadIsAnError) {
  LocalWorkerSet workers(LocalWorkerSetOptions{.num_workers = 2});
  Coordinator coord;
  coord.connect(workers.ports());
  EXPECT_THROW(coord.components(), Error);
  EXPECT_THROW(coord.bfs_distances(0), Error);
}

TEST(DistFailureTest, BfsRejectsOutOfRangeSource) {
  const CsrGraph g = make_undirected(4, {{0, 1}, {2, 3}});
  with_coordinator(g, 2, [&](Coordinator& c) {
    EXPECT_THROW(c.bfs_distances(-1), Error);
    EXPECT_THROW(c.bfs_distances(4), Error);
  });
}

// --------------------------------------------------------------- fork mode

TEST(DistForkTest, ForkedWorkersMatchSingleProcess) {
  // Genuine multi-process execution: each worker is a fork()ed child.
  const CsrGraph g = test_rmat(10, false);
  LocalWorkerSetOptions wopts;
  wopts.num_workers = 2;
  wopts.fork_mode = true;
  LocalWorkerSet workers(wopts);
  ASSERT_TRUE(workers.fork_mode());
  Coordinator coord;
  coord.connect(workers.ports());
  coord.load_graph(g);
  EXPECT_EQ(coord.components(), weak_components(g));
  EXPECT_EQ(coord.bfs_distances(0), bfs(g, 0).distance);
  coord.shutdown();
  workers.stop();  // children exited on kShutdown; reap must not hang
}

}  // namespace
}  // namespace graphct::dist
