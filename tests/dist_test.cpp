/// Tests for the dist substrate: partitioning invariants, distributed
/// kernel parity against the single-process kernels, and worker-failure
/// semantics (explicit error, no wedge, graph stays serviceable).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "algs/bfs.hpp"
#include "algs/connected_components.hpp"
#include "algs/pagerank.hpp"
#include "dist/coordinator.hpp"
#include "dist/local_worker_set.hpp"
#include "dist/partition.hpp"
#include "gen/rmat.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace graphct::dist {
namespace {

using testing::make_directed;
using testing::make_undirected;

CsrGraph test_rmat(std::int64_t scale, bool directed) {
  RmatOptions opts;
  opts.scale = scale;
  opts.edge_factor = 8;
  opts.seed = directed ? 7 : 11;
  CsrGraph g = rmat_graph(opts);
  if (!directed) g = to_undirected(g);
  return g;
}

/// Spin up `n` in-process workers, connect a coordinator, load `g`, and
/// hand the coordinator to `body`. Teardown is exercised on every path.
template <typename Body>
void with_coordinator(const CsrGraph& g, int n, Body&& body) {
  LocalWorkerSetOptions wopts;
  wopts.num_workers = n;
  LocalWorkerSet workers(wopts);
  Coordinator coord;
  coord.connect(workers.ports());
  coord.load_graph(g);
  body(coord);
  coord.shutdown();
}

// --------------------------------------------------------------- partition

TEST(PartitionTest, BlocksAreContiguousAndCoverEveryVertex) {
  const CsrGraph g = test_rmat(9, true);
  for (const int n : {1, 2, 3, 4, 7}) {
    const Partition p = partition_graph(g, n);
    ASSERT_EQ(p.num_blocks(), n);
    EXPECT_EQ(p.num_vertices, g.num_vertices());
    EXPECT_EQ(p.total_entries, g.num_adjacency_entries());
    vid expect_begin = 0;
    eid entries = 0;
    for (const BlockInfo& b : p.blocks) {
      EXPECT_EQ(b.begin, expect_begin);
      EXPECT_LE(b.begin, b.end);
      EXPECT_LE(b.cut_entries, b.entries);
      expect_begin = b.end;
      entries += b.entries;
    }
    EXPECT_EQ(expect_begin, g.num_vertices());
    EXPECT_EQ(entries, g.num_adjacency_entries());
  }
}

TEST(PartitionTest, OwnerAgreesWithBlockRanges) {
  const CsrGraph g = test_rmat(8, false);
  const Partition p = partition_graph(g, 4);
  for (vid v = 0; v < g.num_vertices(); ++v) {
    const int o = p.owner(v);
    ASSERT_GE(o, 0);
    ASSERT_LT(o, p.num_blocks());
    EXPECT_GE(v, p.blocks[static_cast<std::size_t>(o)].begin);
    EXPECT_LT(v, p.blocks[static_cast<std::size_t>(o)].end);
  }
}

TEST(PartitionTest, SingleBlockHasNoCut) {
  const CsrGraph g = test_rmat(8, true);
  const Partition p = partition_graph(g, 1);
  EXPECT_EQ(p.blocks[0].cut_entries, 0);
  EXPECT_DOUBLE_EQ(p.edge_cut_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(p.imbalance(), 1.0);
}

TEST(PartitionTest, CutMatchesBruteForceCount) {
  const CsrGraph g = make_undirected(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4},
                                         {4, 5}, {0, 5}, {1, 4}});
  const Partition p = partition_graph(g, 2);
  const auto offsets = g.offsets();
  const auto adjacency = g.adjacency();
  eid expect_cut = 0;
  for (const BlockInfo& b : p.blocks) {
    eid cut = 0;
    for (eid e = offsets[static_cast<std::size_t>(b.begin)];
         e < offsets[static_cast<std::size_t>(b.end)]; ++e) {
      const vid t = adjacency[static_cast<std::size_t>(e)];
      if (t < b.begin || t >= b.end) ++cut;
    }
    EXPECT_EQ(b.cut_entries, cut);
    expect_cut += cut;
  }
  EXPECT_DOUBLE_EQ(p.edge_cut_fraction(),
                   static_cast<double>(expect_cut) /
                       static_cast<double>(g.num_adjacency_entries()));
}

TEST(PartitionTest, MoreBlocksThanVerticesYieldsEmptyBlocks) {
  const CsrGraph g = make_undirected(3, {{0, 1}, {1, 2}});
  const Partition p = partition_graph(g, 8);
  ASSERT_EQ(p.num_blocks(), 8);
  vid covered = 0;
  int empty = 0;
  for (const BlockInfo& b : p.blocks) {
    covered += b.num_vertices();
    if (b.num_vertices() == 0) ++empty;
  }
  EXPECT_EQ(covered, 3);
  EXPECT_GE(empty, 5);  // only 3 vertices exist; empty blocks are legal
  EXPECT_GE(p.imbalance(), 1.0);
}

TEST(PartitionTest, RejectsNonPositiveBlockCount) {
  const CsrGraph g = make_undirected(2, {{0, 1}});
  EXPECT_THROW(partition_graph(g, 0), Error);
  EXPECT_THROW(partition_graph(g, -3), Error);
}

TEST(PartitionTest, EdgeBalanceBeatsNaiveVertexSplitOnSkew) {
  // A star: vertex 0 owns half of all entries. An edge-balanced 2-way
  // split must isolate the hub rather than cutting vertices in half.
  EdgeList el(64);
  for (vid v = 1; v < 64; ++v) el.add(0, v);
  BuildOptions b;
  b.symmetrize = true;
  const CsrGraph g = build_csr(el, b);
  const Partition p = partition_graph(g, 2);
  EXPECT_LT(p.blocks[0].num_vertices(), 32);
  EXPECT_LE(p.imbalance(), 1.5);
}

// ------------------------------------------------------------------ parity

void expect_bfs_parity(const CsrGraph& g, int workers, vid source) {
  const auto expect = bfs(g, source).distance;
  with_coordinator(g, workers, [&](Coordinator& c) {
    const auto got = c.bfs_distances(source);
    ASSERT_EQ(got.size(), expect.size());
    EXPECT_EQ(got, expect) << "bfs parity failed, workers=" << workers;
  });
}

void expect_cc_parity(const CsrGraph& g, int workers) {
  const auto expect = weak_components(g);
  with_coordinator(g, workers, [&](Coordinator& c) {
    const auto got = c.components();
    ASSERT_EQ(got.size(), expect.size());
    EXPECT_EQ(got, expect) << "cc parity failed, workers=" << workers;
  });
}

void expect_pr_parity(const CsrGraph& g, int workers) {
  const auto expect = pagerank(g);
  with_coordinator(g, workers, [&](Coordinator& c) {
    const auto got = c.pagerank();
    ASSERT_EQ(got.score.size(), expect.score.size());
    EXPECT_EQ(got.iterations, expect.iterations);
    EXPECT_EQ(got.converged, expect.converged);
    double max_abs = 0.0;
    for (std::size_t i = 0; i < got.score.size(); ++i) {
      max_abs = std::max(max_abs, std::fabs(got.score[i] - expect.score[i]));
    }
    // Identical adjacency-order accumulation; only the dangling-mass
    // reduction order differs from the OpenMP single-process kernel.
    EXPECT_LE(max_abs, 1e-12) << "pr parity failed, workers=" << workers;
  });
}

TEST(DistParityTest, BfsMatchesSingleProcessUndirected) {
  const CsrGraph g = test_rmat(11, false);
  for (const int w : {1, 2, 4}) expect_bfs_parity(g, w, 0);
}

TEST(DistParityTest, BfsMatchesSingleProcessDirected) {
  const CsrGraph g = test_rmat(11, true);
  for (const int w : {1, 2, 4}) expect_bfs_parity(g, w, 1);
}

TEST(DistParityTest, BoundedBfsHonorsMaxDepth) {
  const CsrGraph g = test_rmat(10, false);
  BfsOptions opts;
  opts.max_depth = 2;
  const auto expect = bfs(g, 0, opts).distance;
  with_coordinator(g, 3, [&](Coordinator& c) {
    EXPECT_EQ(c.bfs_distances(0, 2), expect);
  });
}

TEST(DistParityTest, ComponentsMatchSingleProcessUndirected) {
  const CsrGraph g = test_rmat(11, false);
  for (const int w : {1, 2, 4}) expect_cc_parity(g, w);
}

TEST(DistParityTest, ComponentsMatchSingleProcessDirected) {
  // Weak components: a directed arc still merges its endpoints.
  const CsrGraph g = test_rmat(11, true);
  for (const int w : {1, 2, 4}) expect_cc_parity(g, w);
}

TEST(DistParityTest, PageRankMatchesSingleProcessUndirected) {
  const CsrGraph g = test_rmat(11, false);
  for (const int w : {1, 2, 4}) expect_pr_parity(g, w);
}

TEST(DistParityTest, PageRankMatchesSingleProcessDirected) {
  const CsrGraph g = test_rmat(11, true);
  for (const int w : {1, 2, 4}) expect_pr_parity(g, w);
}

TEST(DistParityTest, DisconnectedSourcesAndIsolatedVertices) {
  const CsrGraph g =
      make_undirected(9, {{0, 1}, {1, 2}, {4, 5}, {5, 6}});  // 3,7,8 isolated
  with_coordinator(g, 4, [&](Coordinator& c) {
    EXPECT_EQ(c.bfs_distances(4), testing::reference_bfs_distances(g, 4));
    EXPECT_EQ(c.components(), weak_components(g));
  });
}

TEST(DistParityTest, KernelsAreRerunnableOnOneCoordinator) {
  const CsrGraph g = test_rmat(10, false);
  with_coordinator(g, 2, [&](Coordinator& c) {
    const auto d0 = c.bfs_distances(0);
    EXPECT_EQ(c.bfs_distances(0), d0);  // state fully reset between runs
    const auto cc = c.components();
    EXPECT_EQ(c.components(), cc);
    EXPECT_EQ(c.bfs_distances(7), bfs(g, 7).distance);
  });
}

TEST(DistParityTest, ReloadingADifferentGraphWorks) {
  const CsrGraph a = test_rmat(9, false);
  const CsrGraph b = test_rmat(10, true);
  with_coordinator(a, 2, [&](Coordinator& c) {
    EXPECT_EQ(c.components(), weak_components(a));
    c.load_graph(b);
    EXPECT_EQ(c.components(), weak_components(b));
    EXPECT_EQ(c.bfs_distances(0), bfs(b, 0).distance);
  });
}

TEST(DistParityTest, StatsCountTrafficAndSteps) {
  const CsrGraph g = test_rmat(9, false);
  with_coordinator(g, 2, [&](Coordinator& c) {
    const DistStats before = c.stats();
    EXPECT_GT(before.messages_sent, 0);  // hello + load traffic
    c.bfs_distances(0);
    const DistStats& k = c.last_kernel_stats();
    EXPECT_GT(k.steps, 0);
    EXPECT_GT(k.messages_sent, 0);
    EXPECT_GT(k.bytes_received, 0);
    const DistStats after = c.stats();
    EXPECT_GE(after.messages_sent, before.messages_sent + k.messages_sent);
    EXPECT_EQ(after.steps, k.steps);
  });
}

// ----------------------------------------------------------------- failure

TEST(DistFailureTest, DeadWorkerCancelsKernelWithExplicitError) {
  const CsrGraph g = test_rmat(10, false);
  LocalWorkerSetOptions wopts;
  wopts.num_workers = 3;
  wopts.fail_worker = 1;
  wopts.fail_after = 4;  // dies mid-kernel, after handshake + loads
  LocalWorkerSet workers(wopts);
  Coordinator coord;
  coord.connect(workers.ports());
  coord.load_graph(g);

  try {
    coord.components();
    FAIL() << "expected the kernel to be cancelled by the dead worker";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("worker 1"), std::string::npos) << what;
    EXPECT_NE(what.find("job cancelled"), std::string::npos) << what;
  }
  EXPECT_TRUE(coord.degraded());

  // No wedge: later kernel calls fail fast with the stored reason instead
  // of touching dead sockets.
  try {
    coord.bfs_distances(0);
    FAIL() << "expected degraded coordinator to fail fast";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("degraded"), std::string::npos);
  }

  // The graph itself stays fully serviceable through single-process runs.
  EXPECT_EQ(weak_components(g).size(),
            static_cast<std::size_t>(g.num_vertices()));
  coord.shutdown();  // must not throw or hang on a degraded substrate
}

TEST(DistFailureTest, ConnectToDeadPortFailsExplicitly) {
  Coordinator coord;
  int dead_port;
  {
    // Bind-then-close: the port existed a moment ago and is now free, so
    // connecting to it must fail fast rather than wedge.
    WorkerServer probe;
    dead_port = probe.port();
  }
  EXPECT_THROW(coord.connect({dead_port}), Error);
}

TEST(DistFailureTest, KernelBeforeLoadIsAnError) {
  LocalWorkerSet workers(LocalWorkerSetOptions{.num_workers = 2});
  Coordinator coord;
  coord.connect(workers.ports());
  EXPECT_THROW(coord.components(), Error);
  EXPECT_THROW(coord.bfs_distances(0), Error);
}

TEST(DistFailureTest, BfsRejectsOutOfRangeSource) {
  const CsrGraph g = make_undirected(4, {{0, 1}, {2, 3}});
  with_coordinator(g, 2, [&](Coordinator& c) {
    EXPECT_THROW(c.bfs_distances(-1), Error);
    EXPECT_THROW(c.bfs_distances(4), Error);
  });
}

// --------------------------------------------------------------- fork mode

TEST(DistForkTest, ForkedWorkersMatchSingleProcess) {
  // Genuine multi-process execution: each worker is a fork()ed child.
  const CsrGraph g = test_rmat(10, false);
  LocalWorkerSetOptions wopts;
  wopts.num_workers = 2;
  wopts.fork_mode = true;
  LocalWorkerSet workers(wopts);
  ASSERT_TRUE(workers.fork_mode());
  Coordinator coord;
  coord.connect(workers.ports());
  coord.load_graph(g);
  EXPECT_EQ(coord.components(), weak_components(g));
  EXPECT_EQ(coord.bfs_distances(0), bfs(g, 0).distance);
  coord.shutdown();
  workers.stop();  // children exited on kShutdown; reap must not hang
}

}  // namespace
}  // namespace graphct::dist
