#include "algs/assortativity.hpp"

#include <gtest/gtest.h>

#include "gen/random_graphs.hpp"
#include "gen/shapes.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace graphct {
namespace {

using testing::make_directed;
using testing::make_undirected;

TEST(AssortativityTest, RegularGraphIsDegenerate) {
  // All degrees equal: zero variance -> defined as 0.
  EXPECT_DOUBLE_EQ(degree_assortativity(cycle_graph(10)), 0.0);
  EXPECT_DOUBLE_EQ(degree_assortativity(complete_graph(6)), 0.0);
}

TEST(AssortativityTest, StarIsPerfectlyDisassortative) {
  // Every edge joins degree n-1 with degree 1: r = -1.
  EXPECT_NEAR(degree_assortativity(star_graph(12)), -1.0, 1e-12);
}

TEST(AssortativityTest, PathIsDisassortative) {
  // Known value: r(P_n) < 0 (ends of degree 1 attach to degree 2).
  EXPECT_LT(degree_assortativity(path_graph(10)), 0.0);
}

TEST(AssortativityTest, DoubleStarMoreAssortativeThanStar) {
  // Two hubs joined to each other plus their own leaves: the hub-hub edge
  // raises r relative to a pure star.
  EdgeList el(10);
  el.add(0, 1);
  for (vid v = 2; v < 6; ++v) el.add(0, v);
  for (vid v = 6; v < 10; ++v) el.add(1, v);
  const auto g = build_csr(el);
  EXPECT_GT(degree_assortativity(g), degree_assortativity(star_graph(10)));
}

TEST(AssortativityTest, BroadcastMentionGraphIsDisassortative) {
  // The paper's structural signature: hub-dominated graphs have r << 0.
  const auto g = chung_lu_power_law(3000, 9000, 2.3, 11);
  EXPECT_LT(degree_assortativity(g), -0.05);
}

TEST(AssortativityTest, ErdosRenyiNearZero) {
  const auto g = erdos_renyi(3000, 12000, 13);
  EXPECT_NEAR(degree_assortativity(g), 0.0, 0.05);
}

TEST(AssortativityTest, SelfLoopsIgnored) {
  const auto with = make_undirected(4, {{0, 1}, {1, 2}, {2, 3}, {1, 1}});
  // Self-loop must not perturb the edge-endpoint degree pairs beyond
  // excluding itself: compare against manually decremented degrees.
  const double r = degree_assortativity(with);
  EXPECT_GE(r, -1.0);
  EXPECT_LE(r, 1.0);
  const auto without = make_undirected(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_NEAR(r, degree_assortativity(without), 1e-12);
}

TEST(AssortativityTest, RangeAlwaysValid) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto g = erdos_renyi(100, 100 + 40 * seed, seed);
    const double r = degree_assortativity(g);
    EXPECT_GE(r, -1.0 - 1e-9);
    EXPECT_LE(r, 1.0 + 1e-9);
  }
}

TEST(AssortativityTest, DirectedThrows) {
  const auto g = make_directed(3, {{0, 1}});
  EXPECT_THROW(degree_assortativity(g), Error);
}

TEST(AssortativityTest, TinyGraphsDegenerate) {
  EXPECT_DOUBLE_EQ(degree_assortativity(make_undirected(2, {{0, 1}})), 0.0);
  EXPECT_DOUBLE_EQ(degree_assortativity(make_undirected(3, {})), 0.0);
}

}  // namespace
}  // namespace graphct
