#include "gen/random_graphs.hpp"

#include <gtest/gtest.h>

#include "algs/degree.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace graphct {
namespace {

TEST(ErdosRenyiTest, BasicShape) {
  const auto g = erdos_renyi(100, 300, 1);
  EXPECT_EQ(g.num_vertices(), 100);
  EXPECT_FALSE(g.directed());
  EXPECT_LE(g.num_edges(), 300);  // dedup and self-loop removal only shrink
  EXPECT_GT(g.num_edges(), 250);  // collision probability is low
  EXPECT_EQ(g.num_self_loops(), 0);
}

TEST(ErdosRenyiTest, Deterministic) {
  EXPECT_EQ(erdos_renyi(50, 100, 7), erdos_renyi(50, 100, 7));
  EXPECT_NE(erdos_renyi(50, 100, 7), erdos_renyi(50, 100, 8));
}

TEST(ErdosRenyiTest, DegreesConcentrateAroundMean) {
  const auto g = erdos_renyi(2000, 10000, 3);
  const auto s = degree_summary(g);
  EXPECT_NEAR(s.mean, 10.0, 0.5);
  EXPECT_LT(s.max, 40.0);  // Poisson tail, no hubs
}

TEST(ErdosRenyiTest, InvalidArgsThrow) {
  EXPECT_THROW(erdos_renyi(0, 10, 1), Error);
}

TEST(ChungLuTest, HeavyTail) {
  const auto g = chung_lu_power_law(3000, 12000, 2.3, 5);
  const auto s = degree_summary(g);
  // Hubs exist: max degree far above mean.
  EXPECT_GT(s.max, 10.0 * s.mean);
  // Vertex 0 carries the largest weight and should be among the top degrees.
  EXPECT_GT(g.degree(0), static_cast<vid>(s.mean * 5));
}

TEST(ChungLuTest, AlphaControlsSkew) {
  const auto steep = chung_lu_power_law(2000, 8000, 3.5, 9);
  const auto flat = chung_lu_power_law(2000, 8000, 2.1, 9);
  EXPECT_GT(degree_summary(flat).max, degree_summary(steep).max);
}

TEST(ChungLuTest, RejectsSmallAlpha) {
  EXPECT_THROW(chung_lu_power_law(100, 200, 1.5, 1), Error);
}

TEST(WattsStrogatzTest, RingLatticeAtPZero) {
  const auto g = watts_strogatz(50, 2, 0.0, 1);
  EXPECT_EQ(g.num_edges(), 100);  // n*k
  for (vid v = 0; v < 50; ++v) EXPECT_EQ(g.degree(v), 4);
}

TEST(WattsStrogatzTest, RewiringPreservesEdgeBudget) {
  const auto g = watts_strogatz(100, 3, 0.5, 2);
  // Rewiring can only lose edges to dedup collisions, not gain.
  EXPECT_LE(g.num_edges(), 300);
  EXPECT_GT(g.num_edges(), 270);
  EXPECT_EQ(g.num_self_loops(), 0);
}

TEST(WattsStrogatzTest, InvalidArgsThrow) {
  EXPECT_THROW(watts_strogatz(4, 2, 0.1, 1), Error);   // n <= 2k
  EXPECT_THROW(watts_strogatz(50, 0, 0.1, 1), Error);  // k < 1
  EXPECT_THROW(watts_strogatz(50, 2, 1.5, 1), Error);  // p > 1
}

}  // namespace
}  // namespace graphct
