#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace graphct {
namespace {

TEST(TextTableTest, RendersHeaderAndRows) {
  TextTable t({"name", "count"});
  t.add_row({"alpha", "10"});
  t.add_row({"beta", "2000"});
  const std::string s = t.render();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("2000"), std::string::npos);
}

TEST(TextTableTest, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), Error);
}

TEST(TextTableTest, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), Error);
}

TEST(TextTableTest, ColumnsAlign) {
  TextTable t({"x", "y"});
  t.add_row({"short", "1"});
  t.add_row({"much longer cell", "22"});
  const std::string s = t.render();
  // Every line should be equally wide up to trailing content; check that the
  // numeric column's values right-align (the '1' is preceded by a space).
  EXPECT_NE(s.find(" 1\n"), std::string::npos);
}

TEST(TextTableTest, SeparatorAddsRule) {
  TextTable t({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string s = t.render();
  // Header rule plus the explicit separator.
  std::size_t dashes = 0;
  for (std::size_t p = s.find("-\n"); p != std::string::npos;
       p = s.find("-\n", p + 1)) {
    ++dashes;
  }
  EXPECT_GE(dashes, 2u);
}

TEST(StrfTest, FormatsLikePrintf) {
  EXPECT_EQ(strf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strf("%.2f", 3.14159), "3.14");
}

TEST(WithCommasTest, GroupsThousands) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(8599999), "8,599,999");
  EXPECT_EQ(with_commas(-1234567), "-1,234,567");
}

}  // namespace
}  // namespace graphct
