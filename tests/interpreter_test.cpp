#include "script/interpreter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "gen/shapes.hpp"
#include "graph/io_binary.hpp"
#include "obs/trace.hpp"
#include "graph/io_dimacs.hpp"
#include "server/graph_registry.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace graphct::script {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// Interpreter with fast toolkit defaults for tests.
InterpreterOptions fast_opts() {
  InterpreterOptions o;
  o.toolkit.diameter_samples = 16;
  return o;
}

TEST(InterpreterTest, GenerateAndPrintGraph) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  in.run("generate rmat 6 4\nprint graph\n");
  EXPECT_NE(out.str().find("64 vertices"), std::string::npos);
  EXPECT_NE(out.str().find("undirected"), std::string::npos);
}

TEST(InterpreterTest, ReadDimacs) {
  const std::string path = temp_path("gct_interp.dimacs");
  graphct::write_dimacs(graphct::path_graph(8), path);
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  in.run("read dimacs " + path + "\nprint degrees\n");
  EXPECT_NE(out.str().find("8 vertices"), std::string::npos);
  EXPECT_NE(out.str().find("mean="), std::string::npos);
  std::remove(path.c_str());
}

TEST(InterpreterTest, CommandWithoutGraphThrows) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  EXPECT_THROW(in.run("print degrees\n"), graphct::Error);
}

TEST(InterpreterTest, UnknownCommandThrows) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  EXPECT_THROW(in.run("frobnicate\n"), graphct::Error);
}

TEST(InterpreterTest, SaveExtractRestoreStack) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  // Two components: sizes 4 and 2 — build via edgelist file.
  const std::string el = temp_path("gct_interp.el");
  {
    std::ofstream f(el);
    f << "0 1\n1 2\n2 3\n8 9\n";
  }
  in.run("read edgelist " + el + "\n");
  EXPECT_EQ(in.current().graph().num_vertices(), 10);
  in.run("save graph\nextract component 1\n");
  EXPECT_EQ(in.current().graph().num_vertices(), 4);
  in.run("restore graph\n");
  EXPECT_EQ(in.current().graph().num_vertices(), 10);
  in.run("extract component 2\n");
  EXPECT_EQ(in.current().graph().num_vertices(), 2);
  std::remove(el.c_str());
}

TEST(InterpreterTest, RestoreWithoutSaveThrows) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  in.run("generate rmat 5 2\n");
  EXPECT_THROW(in.run("restore graph\n"), graphct::Error);
}

TEST(InterpreterTest, ExtractComponentWritesBinary) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  const std::string bin = temp_path("gct_interp_comp.bin");
  in.run("generate rmat 6 8\nsave graph\nextract component 1 => " + bin + "\n");
  const auto g = graphct::read_binary(bin);
  EXPECT_EQ(g.num_vertices(), in.current().graph().num_vertices());
  std::remove(bin.c_str());
}

TEST(InterpreterTest, KcentralityToFile) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  const std::string scores = temp_path("gct_interp_scores.txt");
  in.run("generate rmat 6 4\nkcentrality 1 16 => " + scores + "\n");
  std::ifstream f(scores);
  ASSERT_TRUE(f.good());
  std::int64_t lines = 0;
  std::string line;
  while (std::getline(f, line)) ++lines;
  EXPECT_EQ(lines, in.current().graph().num_vertices());
  std::remove(scores.c_str());
}

TEST(InterpreterTest, KcentralityToScreenShowsTopVertices) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  in.run("generate rmat 6 4\nkcentrality 0 16\n");
  EXPECT_NE(out.str().find("vertex"), std::string::npos);
}

TEST(InterpreterTest, BcVerbModesAndBudget) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  in.run("generate rmat 6 4\nbc 16\nbc 16 fine\nbc 16 auto 1\n");
  const std::string s = out.str();
  EXPECT_NE(s.find("mode=coarse"), std::string::npos);  // auto resolves
  EXPECT_NE(s.find("mode=fine"), std::string::npos);
  EXPECT_NE(s.find("vertex"), std::string::npos);  // top-vertex table

  EXPECT_THROW(in.run("bc 16 lazy\n"), Error);
  EXPECT_THROW(in.run("bc 16 auto 0\n"), Error);
}

TEST(InterpreterTest, BcVerbToFile) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  const std::string scores = temp_path("gct_interp_bc_scores.txt");
  in.run("generate rmat 6 4\nbc 16 coarse => " + scores + "\n");
  std::ifstream f(scores);
  ASSERT_TRUE(f.good());
  std::int64_t lines = 0;
  std::string line;
  while (std::getline(f, line)) ++lines;
  EXPECT_EQ(lines, in.current().graph().num_vertices());
  std::remove(scores.c_str());
}

TEST(InterpreterTest, DiameterWithPercentArgument) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  in.run("generate rmat 6 4\nprint diameter 10\n");
  EXPECT_NE(out.str().find("diameter estimate"), std::string::npos);
}

TEST(InterpreterTest, ComponentsClusteringKcores) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  in.run("generate rmat 7 4\nprint components\nprint clustering\nprint kcores\n");
  const std::string s = out.str();
  EXPECT_NE(s.find("components:"), std::string::npos);
  EXPECT_NE(s.find("triangles="), std::string::npos);
  EXPECT_NE(s.find("degeneracy="), std::string::npos);
}

TEST(InterpreterTest, ExtractKcore) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  in.run("generate rmat 7 8\nextract kcore 2\n");
  const auto& g = in.current().graph();
  for (graphct::vid v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GE(g.degree(v), 2);
  }
}

TEST(InterpreterTest, BfsCommand) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  in.run("generate rmat 6 4\nbfs 0 2\n");
  EXPECT_NE(out.str().find("reached"), std::string::npos);
}

TEST(InterpreterTest, WriteFormats) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  const std::string bin = temp_path("gct_interp_w.bin");
  const std::string dim = temp_path("gct_interp_w.dimacs");
  in.run("generate rmat 5 4\nwrite binary " + bin + "\nwrite dimacs " + dim + "\n");
  EXPECT_EQ(graphct::read_binary(bin), in.current().graph());
  std::remove(bin.c_str());
  std::remove(dim.c_str());
}

TEST(InterpreterTest, EchoPassesThrough) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  in.run("echo hello analyst world\n");
  EXPECT_NE(out.str().find("hello analyst world"), std::string::npos);
}

TEST(InterpreterTest, PaperScriptEndToEnd) {
  // The paper's §IV-B example, with a generated stand-in for patents.txt.
  const std::string dimacs = temp_path("gct_patents.dimacs");
  const std::string comp1 = temp_path("gct_comp1.bin");
  const std::string k1 = temp_path("gct_k1.txt");
  const std::string k2 = temp_path("gct_k2.txt");
  {
    std::ostringstream gen_out;
    Interpreter gen(gen_out, fast_opts());
    gen.run("generate rmat 7 2\nwrite dimacs " + dimacs + "\n");
  }
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  in.run("read dimacs " + dimacs +
         "\n"
         "print diameter 10\n"
         "save graph\n"
         "extract component 1 => " + comp1 +
         "\n"
         "print degrees\n"
         "kcentrality 1 32 => " + k1 +
         "\n"
         "kcentrality 2 32 => " + k2 +
         "\n"
         "restore graph\n"
         "extract component 2\n"
         "print degrees\n");
  EXPECT_TRUE(std::filesystem::exists(comp1));
  EXPECT_TRUE(std::filesystem::exists(k1));
  EXPECT_TRUE(std::filesystem::exists(k2));
  for (const auto& p : {dimacs, comp1, k1, k2}) std::remove(p.c_str());
}

TEST(InterpreterTest, RunFileMissingThrows) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  EXPECT_THROW(in.run_file("/nonexistent/script.gct"), graphct::Error);
}

TEST(InterpreterTest, ReadTweetsBuildsMentionGraph) {
  // Write a tiny tweet stream, then script the whole §III workflow.
  const std::string tsv = temp_path("gct_interp_tweets.tsv");
  {
    std::ofstream f(tsv);
    f << "1\t100\talice\thello @bob\n"
         "2\t110\tbob\t@alice hi back\n"
         "3\t120\tcarol\tRT @hub news\n";
  }
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  in.run("read tweets " + tsv + "\nprint graph\nprint components\n");
  const std::string s = out.str();
  // Directed interactions: alice->bob, bob->alice, carol->hub.
  EXPECT_NE(s.find("3 unique interactions"), std::string::npos);
  EXPECT_NE(s.find("4 vertices"), std::string::npos);
  EXPECT_NE(s.find("components: 2"), std::string::npos);
  std::remove(tsv.c_str());
}

TEST(InterpreterTest, PageRankClosenessCommunities) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  in.run("generate rmat 7 4\npagerank\ncloseness 16\ncommunities\n");
  const std::string s = out.str();
  EXPECT_NE(s.find("pagerank:"), std::string::npos);
  EXPECT_NE(s.find("closeness:"), std::string::npos);
  EXPECT_NE(s.find("modularity"), std::string::npos);
}

TEST(InterpreterTest, PageRankScoresToFile) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  const std::string path = temp_path("gct_interp_pr.txt");
  in.run("generate rmat 6 4\npagerank => " + path + "\n");
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::int64_t lines = 0;
  std::string line;
  while (std::getline(f, line)) ++lines;
  EXPECT_EQ(lines, in.current().graph().num_vertices());
  std::remove(path.c_str());
}

TEST(InterpreterLoopTest, RepeatRunsBodyNTimes) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  in.run("repeat 3\necho tick\nend\n");
  std::size_t count = 0;
  for (std::size_t p = out.str().find("tick"); p != std::string::npos;
       p = out.str().find("tick", p + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 3u);
}

TEST(InterpreterLoopTest, RepeatZeroSkipsBody) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  in.run("repeat 0\necho never\nend\necho after\n");
  EXPECT_EQ(out.str().find("never"), std::string::npos);
  EXPECT_NE(out.str().find("after"), std::string::npos);
}

TEST(InterpreterLoopTest, NestedRepeat) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  in.run("repeat 2\nrepeat 3\necho x\nend\nend\n");
  std::size_t count = 0;
  for (std::size_t p = out.str().find('x'); p != std::string::npos;
       p = out.str().find('x', p + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 6u);
}

TEST(InterpreterLoopTest, RepeatDrivesKernels) {
  // The analyst use case: re-estimate a sampled kernel several times.
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  in.run("generate rmat 5 4\nrepeat 3\nprint diameter 50\nend\n");
  std::size_t count = 0;
  for (std::size_t p = out.str().find("diameter estimate");
       p != std::string::npos;
       p = out.str().find("diameter estimate", p + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 3u);
}

TEST(InterpreterLoopTest, UnmatchedRepeatThrows) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  EXPECT_THROW(in.run("repeat 2\necho x\n"), graphct::Error);
}

TEST(InterpreterLoopTest, DanglingEndThrows) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  EXPECT_THROW(in.run("echo x\nend\n"), graphct::Error);
}

TEST(InterpreterLoopTest, NegativeCountThrows) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  EXPECT_THROW(in.run("repeat -1\necho x\nend\n"), graphct::Error);
}

TEST(InterpreterTest, ThreadsCommandPinsOpenMp) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  in.run("threads 2\n");
  EXPECT_NE(out.str().find("threads set to 2"), std::string::npos);
  EXPECT_EQ(in.requested_threads(), 2);
  EXPECT_EQ(graphct::num_threads(), 2);
  in.run("threads 0\n");  // back to the hardware default
  EXPECT_EQ(in.requested_threads(), 0);
  EXPECT_GE(graphct::num_threads(), 1);
}

TEST(InterpreterTest, ThreadsNegativeThrows) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  EXPECT_THROW(in.run("threads -3\n"), graphct::Error);
}

TEST(InterpreterTest, LoadAndUseGraphViaProvider) {
  const std::string path = temp_path("gct_interp_prov.dimacs");
  graphct::write_dimacs(graphct::path_graph(12), path);
  graphct::server::GraphRegistry registry;
  InterpreterOptions o = fast_opts();
  o.provider = &registry;

  std::ostringstream out;
  Interpreter in(out, o);
  in.run("load graph twelve " + path + "\n");
  EXPECT_NE(out.str().find("loaded graph 'twelve'"), std::string::npos);
  EXPECT_EQ(in.current_graph_key(), "graph:twelve");
  EXPECT_EQ(in.current().graph().num_vertices(), 12);

  // A second interpreter resolves the resident graph by name — same object.
  std::ostringstream out2;
  Interpreter other(out2, o);
  other.run("use graph twelve\n");
  EXPECT_EQ(&other.current(), &in.current());
  std::remove(path.c_str());
}

TEST(InterpreterTest, UseUnknownGraphThrows) {
  graphct::server::GraphRegistry registry;
  InterpreterOptions o = fast_opts();
  o.provider = &registry;
  std::ostringstream out;
  Interpreter in(out, o);
  EXPECT_THROW(in.run("use graph nope\n"), graphct::Error);
}

TEST(InterpreterTest, LoadGraphWithoutProviderThrows) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  EXPECT_THROW(in.run("load graph g /tmp/x.dimacs\n"), graphct::Error);
}

TEST(InterpreterTest, ExtractNeverServesStaleKernelResults) {
  // Regression for the cache-invalidation satellite: kernels computed for
  // the pre-surgery graph must not survive `extract`.
  const std::string el = temp_path("gct_interp_stale.el");
  {
    std::ofstream f(el);
    f << "0 1\n1 2\n2 3\n8 9\n";  // components of size 4 and 2
  }
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  in.run("read edgelist " + el + "\n");
  EXPECT_EQ(in.current().diameter().longest_distance, 3);
  EXPECT_EQ(in.current().components_stats().num_components, 6);  // 4 singletons
  in.run("extract component 2\n");
  EXPECT_EQ(in.current().graph().num_vertices(), 2);
  EXPECT_EQ(in.current().diameter().longest_distance, 1);  // recomputed
  EXPECT_EQ(in.current().components_stats().num_components, 1);
  std::remove(el.c_str());
}

TEST(InterpreterTest, ExtractOnSharedGraphLeavesRegistryUntouched) {
  // Surgery on a provider-shared graph must rebind the session to a private
  // copy instead of mutating the toolkit other sessions share.
  const std::string path = temp_path("gct_interp_shared.dimacs");
  graphct::write_dimacs(graphct::star_of_cliques(3, 5), path);
  graphct::server::GraphRegistry registry;
  InterpreterOptions o = fast_opts();
  o.provider = &registry;

  std::ostringstream out;
  Interpreter in(out, o);
  in.run("load graph shared " + path + "\n");
  const auto resident = registry.get_graph("shared");
  const auto n = resident->graph().num_vertices();

  in.run("extract kcore 4\n");  // drops the degree-3 hub
  EXPECT_LT(in.current().graph().num_vertices(), n);
  EXPECT_EQ(in.current_graph_key(), "");  // now session-private
  EXPECT_EQ(resident->graph().num_vertices(), n);
  EXPECT_EQ(registry.get_graph("shared").get(), resident.get());
  std::remove(path.c_str());
}

TEST(InterpreterTest, TimingsOptionPrintsDurations) {
  InterpreterOptions o = fast_opts();
  o.timings = true;
  std::ostringstream out;
  Interpreter in(out, o);
  in.run("generate rmat 5 2\n");
  EXPECT_NE(out.str().find("["), std::string::npos);
}

// Restores the process-wide profiling switch so these tests can't leak
// phase tables into unrelated ones.
struct ProfilingGuard {
  bool saved = obs::profiling_enabled();
  ~ProfilingGuard() { obs::set_profiling_enabled(saved); }
};

TEST(InterpreterTest, ProfileOnPrintsPhaseTables) {
  ProfilingGuard guard;
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  in.run("generate rmat 6 4\nprofile on\nprint components\n");
  EXPECT_NE(out.str().find("profiling on"), std::string::npos);
  EXPECT_NE(out.str().find("profile components:"), std::string::npos);
  EXPECT_NE(out.str().find("cc.hook"), std::string::npos);
}

TEST(InterpreterTest, ProfileOffSuppressesPhaseTables) {
  ProfilingGuard guard;
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  in.run("generate rmat 6 4\nprofile on\nprofile off\nprint components\n");
  EXPECT_NE(out.str().find("profiling off"), std::string::npos);
  EXPECT_EQ(out.str().find("profile components:"), std::string::npos);
}

TEST(InterpreterTest, ProfileBadArgThrows) {
  ProfilingGuard guard;
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  EXPECT_THROW(in.run("profile maybe\n"), Error);
}

TEST(InterpreterTest, StatsDumpsPrometheusText) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  in.run("generate rmat 6 4\nprint components\nstats\n");
  EXPECT_NE(out.str().find("# TYPE"), std::string::npos);
  EXPECT_NE(out.str().find("gct_kernel_runs_total{kernel=\"components\"}"),
            std::string::npos);
}

TEST(InterpreterTest, StatsJsonIsOneLine) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  in.run("stats json\n");
  const std::string s = out.str();
  ASSERT_FALSE(s.empty());
  EXPECT_EQ(s.front(), '{');
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 1);
  EXPECT_THROW(in.run("stats yaml\n"), Error);
}

TEST(InterpreterTest, PackAndReadPackedRoundTrip) {
  const std::string packed = temp_path("gct_interp_pack.gctp");
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  in.run("generate rmat 6 4\npack " + packed + " varint 4\nread packed " +
         packed + "\nprint graph\nprint components\n");
  EXPECT_NE(out.str().find("packed " + packed), std::string::npos);
  EXPECT_NE(out.str().find("packed store"), std::string::npos);
  EXPECT_NE(out.str().find("64 vertices"), std::string::npos);
  EXPECT_TRUE(in.current().store_backed());
  // Surgery decodes back to DRAM through the replace_graph() path.
  in.run("extract component 1\n");
  EXPECT_FALSE(in.current().store_backed());
  std::remove(packed.c_str());
}

TEST(InterpreterTest, PackArgumentValidation) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  in.run("generate rmat 5 4\n");
  EXPECT_THROW(in.run("pack /tmp/x.gctp zstd\n"), graphct::Error);
  EXPECT_THROW(in.run("pack /tmp/x.gctp varint 0\n"), graphct::Error);
}

TEST(InterpreterTest, LoadPackedViaProvider) {
  const std::string packed = temp_path("gct_interp_prov_pack.gctp");
  {
    std::ostringstream tmp;
    Interpreter packer(tmp, fast_opts());
    packer.run("generate rmat 6 4\npack " + packed + "\n");
  }
  graphct::server::GraphRegistry registry;
  InterpreterOptions o = fast_opts();
  o.provider = &registry;

  std::ostringstream out;
  Interpreter in(out, o);
  in.run("load packed shared_pack " + packed + "\n");
  EXPECT_NE(out.str().find("loaded packed graph 'shared_pack'"),
            std::string::npos);
  EXPECT_EQ(in.current_graph_key(), "graph:shared_pack");
  EXPECT_TRUE(in.current().store_backed());

  // Resident under the name: a second session resolves the same toolkit.
  std::ostringstream out2;
  Interpreter other(out2, o);
  other.run("use graph shared_pack\n");
  EXPECT_EQ(&other.current(), &in.current());

  // The plain load path refuses packed files and points at 'load packed'.
  try {
    registry.load_graph("oops", packed);
    FAIL() << "expected Error";
  } catch (const graphct::Error& e) {
    EXPECT_NE(std::string(e.what()).find("load packed"), std::string::npos);
  }
  std::remove(packed.c_str());
}

TEST(InterpreterTest, LoadPackedWithoutProviderThrows) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  EXPECT_THROW(in.run("load packed g /tmp/x.gctp\n"), graphct::Error);
}

TEST(InterpreterTest, ThreadsEchoesEffectiveCount) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  in.run("threads 2\n");
  EXPECT_NE(out.str().find("threads set to 2 (effective "),
            std::string::npos);
  in.run("threads 0\n");  // back to the hardware default
}

TEST(InterpreterTest, PartitionInfoPrintsBlocks) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  in.run("generate rmat 8 4\npartition info 3\n");
  EXPECT_NE(out.str().find("block 0:"), std::string::npos);
  EXPECT_NE(out.str().find("block 2:"), std::string::npos);
  EXPECT_NE(out.str().find("edge-cut fraction"), std::string::npos);
  EXPECT_THROW(in.run("partition info 0\n"), graphct::Error);
}

TEST(InterpreterTest, WorkersRouteKernelsAndMatchSingleProcess) {
  // Same script through 2 loopback workers and single-process; the kernel
  // lines must agree verbatim modulo the "[workers=2]" marker.
  const std::string kernels = "print components\npagerank\nbfs 0 2\n";
  std::ostringstream dist_out;
  {
    Interpreter in(dist_out, fast_opts());
    in.run("generate rmat 8 4\nworkers 2\n" + kernels + "workers off\n");
  }
  std::ostringstream single_out;
  {
    Interpreter in(single_out, fast_opts());
    in.run("generate rmat 8 4\n" + kernels);
  }
  EXPECT_NE(dist_out.str().find("workers set to 2"), std::string::npos);
  EXPECT_NE(dist_out.str().find("[workers=2]"), std::string::npos);
  std::string scrubbed = dist_out.str();
  for (std::string::size_type pos;
       (pos = scrubbed.find(" [workers=2]")) != std::string::npos;) {
    scrubbed.erase(pos, 12);
  }
  // Every single-process kernel line appears verbatim in the dist run.
  std::istringstream lines(single_out.str());
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("components:", 0) == 0 ||
        line.rfind("pagerank:", 0) == 0 || line.rfind("bfs", 0) == 0) {
      EXPECT_NE(scrubbed.find(line), std::string::npos) << line;
    }
  }
}

TEST(InterpreterTest, WorkersSurviveGraphSwap) {
  // Replacing the current graph must rebind the dist substrate, not serve
  // results computed for the old graph.
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  in.run("generate rmat 7 4\nworkers 2\nprint components\n");
  in.run("generate rmat 8 4\nprint components\n");
  std::ostringstream expected;
  Interpreter ref(expected, fast_opts());
  ref.run("generate rmat 8 4\nprint components\n");
  std::istringstream lines(expected.str());
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("components:", 0) == 0) {
      EXPECT_NE(out.str().find(line + " [workers=2]"), std::string::npos)
          << line;
    }
  }
}

TEST(InterpreterTest, WorkersArgumentValidation) {
  std::ostringstream out;
  Interpreter in(out, fast_opts());
  EXPECT_THROW(in.run("workers -1\n"), graphct::Error);
  EXPECT_THROW(in.run("workers 1000\n"), graphct::Error);
  EXPECT_THROW(in.run("workers 2 bogus\n"), graphct::Error);
  EXPECT_THROW(in.run("workers 2 threads=0\n"), graphct::Error);
  EXPECT_THROW(in.run("workers 2 threads=999\n"), graphct::Error);
  in.run("workers off\n");  // valid with no substrate running
  EXPECT_NE(out.str().find("workers off"), std::string::npos);
}

TEST(InterpreterTest, WorkersRouteBcBitIdentically) {
  // `bc` through 2 two-thread workers must print the same top-vertex lines
  // as the single-process fine run — the scores are bit-identical, so the
  // formatted output agrees verbatim.
  std::ostringstream dist_out;
  {
    Interpreter in(dist_out, fast_opts());
    in.run("generate rmat 8 4\nworkers 2 threads=2\nbc 16 fine\n"
           "workers off\n");
  }
  std::ostringstream single_out;
  {
    Interpreter in(single_out, fast_opts());
    in.run("generate rmat 8 4\nbc 16 fine\n");
  }
  EXPECT_NE(dist_out.str().find("workers set to 2 (threads mode, 2 threads "
                                "each)"),
            std::string::npos);
  EXPECT_NE(dist_out.str().find("[workers=2]"), std::string::npos);
  std::istringstream lines(single_out.str());
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("  vertex", 0) == 0) {
      EXPECT_NE(dist_out.str().find(line), std::string::npos) << line;
    }
  }
}

}  // namespace
}  // namespace graphct::script
