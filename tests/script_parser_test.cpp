#include "script/script_parser.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace graphct::script {
namespace {

TEST(ScriptParserTest, SimpleCommand) {
  const auto c = parse_line("print degrees", 1);
  EXPECT_EQ(c.tokens, (std::vector<std::string>{"print", "degrees"}));
  EXPECT_FALSE(c.has_redirect());
}

TEST(ScriptParserTest, Redirect) {
  const auto c = parse_line("kcentrality 1 256 => k1scores.txt", 3);
  EXPECT_EQ(c.tokens, (std::vector<std::string>{"kcentrality", "1", "256"}));
  EXPECT_EQ(c.redirect, "k1scores.txt");
  EXPECT_EQ(c.line, 3);
}

TEST(ScriptParserTest, BlankAndCommentLines) {
  EXPECT_TRUE(parse_line("", 1).tokens.empty());
  EXPECT_TRUE(parse_line("   ", 1).tokens.empty());
  EXPECT_TRUE(parse_line("# a comment", 1).tokens.empty());
}

TEST(ScriptParserTest, TrailingComment) {
  const auto c = parse_line("print degrees # show them", 1);
  EXPECT_EQ(c.tokens, (std::vector<std::string>{"print", "degrees"}));
}

TEST(ScriptParserTest, ExtraWhitespace) {
  const auto c = parse_line("  extract   component  1   =>  out.bin ", 1);
  EXPECT_EQ(c.tokens, (std::vector<std::string>{"extract", "component", "1"}));
  EXPECT_EQ(c.redirect, "out.bin");
}

TEST(ScriptParserTest, DanglingArrowThrows) {
  EXPECT_THROW(parse_line("print degrees =>", 1), graphct::Error);
}

TEST(ScriptParserTest, DoubleArrowThrows) {
  EXPECT_THROW(parse_line("a => b => c", 1), graphct::Error);
}

TEST(ScriptParserTest, TokensAfterRedirectThrow) {
  EXPECT_THROW(parse_line("a => b c", 1), graphct::Error);
}

TEST(ScriptParserTest, RedirectWithoutCommandThrows) {
  EXPECT_THROW(parse_line("=> out.txt", 1), graphct::Error);
}

TEST(ScriptParserTest, WholeScriptLineNumbers) {
  const auto cmds = parse_script(
      "read dimacs g.txt\n"
      "\n"
      "# comment\n"
      "print degrees\n");
  ASSERT_EQ(cmds.size(), 2u);
  EXPECT_EQ(cmds[0].line, 1);
  EXPECT_EQ(cmds[1].line, 4);
}

TEST(ScriptParserTest, PaperExampleScriptParses) {
  const auto cmds = parse_script(
      "read dimacs patents.txt\n"
      "print diameter 10\n"
      "save graph\n"
      "extract component 1 => comp1.bin\n"
      "print degrees\n"
      "kcentrality 1 256 => k1scores.txt\n"
      "kcentrality 2 256 => k2scores.txt\n"
      "restore graph\n"
      "extract component 2\n"
      "print degrees\n");
  ASSERT_EQ(cmds.size(), 10u);
  EXPECT_EQ(cmds[3].redirect, "comp1.bin");
  EXPECT_EQ(cmds[6].tokens,
            (std::vector<std::string>{"kcentrality", "2", "256"}));
}

TEST(ScriptParserTest, NoTrailingNewline) {
  const auto cmds = parse_script("print degrees");
  ASSERT_EQ(cmds.size(), 1u);
}

}  // namespace
}  // namespace graphct::script
