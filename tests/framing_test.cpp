/// Tests for util/framing: the shared text-reply framing (session protocol)
/// and the binary frame codec (dist wire protocol).

#include "util/framing.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "util/checksum.hpp"

namespace graphct::framing {
namespace {

// ------------------------------------------------------------- text replies

TEST(TextReplyTest, CompatOkRendersPayloadThenTerminator) {
  TextReply r;
  r.payload = "a\nb\n";
  EXPECT_EQ(render_text_reply(r, "", TextProtocol::kCompat), "a\nb\nok\n");
}

TEST(TextReplyTest, CompatOkEchoesIdAndAccounting) {
  TextReply r;
  r.payload = "x\n";
  r.accounting = " wait_ms=1 run_ms=2";
  EXPECT_EQ(render_text_reply(r, "42", TextProtocol::kCompat),
            "x\nok id=42 wait_ms=1 run_ms=2\n");
}

TEST(TextReplyTest, CompatErrorCarriesMessage) {
  TextReply r;
  r.status = TextReply::Status::kError;
  r.message = "no such graph";
  EXPECT_EQ(render_text_reply(r, "", TextProtocol::kCompat),
            "error no such graph\n");
  EXPECT_EQ(render_text_reply(r, "7", TextProtocol::kCompat),
            "error id=7 no such graph\n");
}

TEST(TextReplyTest, CompatBusyRendersAsErrorWithBusyHint) {
  TextReply r;
  r.status = TextReply::Status::kBusy;
  r.message = "queue full";
  EXPECT_EQ(render_text_reply(r, "", TextProtocol::kCompat),
            "error busy: queue full\n");
}

TEST(TextReplyTest, CompatAppendsMissingTrailingNewline) {
  TextReply r;
  r.payload = "no newline";
  EXPECT_EQ(render_text_reply(r, "", TextProtocol::kCompat),
            "no newline\nok\n");
}

TEST(TextReplyTest, FramedV1OkHeaderCountsLines) {
  TextReply r;
  r.payload = "a\nb\nc\n";
  EXPECT_EQ(render_text_reply(r, "", TextProtocol::kFramedV1),
            "gct/1 ok lines=3\na\nb\nc\n");
}

TEST(TextReplyTest, FramedV1ErrorAppendsMessageAsLastLine) {
  TextReply r;
  r.status = TextReply::Status::kError;
  r.payload = "partial\n";
  r.message = "kernel failed";
  EXPECT_EQ(render_text_reply(r, "9", TextProtocol::kFramedV1),
            "gct/1 error lines=2 id=9\npartial\nkernel failed\n");
}

TEST(TextReplyTest, FramedV1AccountingOnlyOnOk) {
  TextReply r;
  r.status = TextReply::Status::kError;
  r.message = "nope";
  r.accounting = " run_ms=5";
  const std::string s = render_text_reply(r, "", TextProtocol::kFramedV1);
  EXPECT_EQ(s.find("run_ms"), std::string::npos) << s;
}

TEST(TextReplyTest, RenderParseRoundTrip) {
  TextReply r;
  r.status = TextReply::Status::kBusy;
  r.message = "shed";
  const std::string s = render_text_reply(r, "id-1", TextProtocol::kFramedV1);
  const std::string header = s.substr(0, s.find('\n'));
  TextHeader h;
  ASSERT_TRUE(parse_text_header(header, h)) << header;
  EXPECT_EQ(h.status, TextReply::Status::kBusy);
  EXPECT_EQ(h.lines, 1u);
  EXPECT_EQ(h.request_id, "id-1");
}

TEST(TextHeaderTest, ParsesOkWithAccountingTrailer) {
  TextHeader h;
  ASSERT_TRUE(parse_text_header("gct/1 ok lines=12 id=a7 wait_ms=0", h));
  EXPECT_EQ(h.status, TextReply::Status::kOk);
  EXPECT_EQ(h.lines, 12u);
  EXPECT_EQ(h.request_id, "a7");
}

TEST(TextHeaderTest, RejectsMalformedHeaders) {
  TextHeader h;
  EXPECT_FALSE(parse_text_header("", h));
  EXPECT_FALSE(parse_text_header("gct/2 ok lines=1", h));
  EXPECT_FALSE(parse_text_header("gct/1 nope lines=1", h));
  EXPECT_FALSE(parse_text_header("gct/1 ok", h));
  EXPECT_FALSE(parse_text_header("gct/1 ok lines=", h));
  EXPECT_FALSE(parse_text_header("gct/1 ok count=3", h));
}

TEST(TextReplyTest, CountLines) {
  EXPECT_EQ(count_lines(""), 0u);
  EXPECT_EQ(count_lines("a"), 0u);  // unterminated fragment
  EXPECT_EQ(count_lines("a\n"), 1u);
  EXPECT_EQ(count_lines("a\nb\nc\n"), 3u);
}

// ------------------------------------------------------------ binary frames

TEST(FrameTest, HeaderRoundTrip) {
  FrameHeader in;
  in.type = 7;
  in.payload_len = 123456;
  in.checksum = 0xdeadbeefcafef00dull;
  unsigned char buf[kFrameHeaderBytes];
  encode_frame_header(in, buf);
  FrameHeader out;
  ASSERT_EQ(decode_frame_header(buf, out), HeaderStatus::kOk);
  EXPECT_EQ(out.version, kFrameVersion);
  EXPECT_EQ(out.type, 7);
  EXPECT_EQ(out.payload_len, 123456u);
  EXPECT_EQ(out.checksum, 0xdeadbeefcafef00dull);
}

TEST(FrameTest, EncodeFrameMatchesItsOwnHeader) {
  const std::string payload = "hello, workers";
  const std::string frame = encode_frame(3, payload);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());
  FrameHeader h;
  ASSERT_EQ(decode_frame_header(
                reinterpret_cast<const unsigned char*>(frame.data()), h),
            HeaderStatus::kOk);
  EXPECT_EQ(h.type, 3);
  EXPECT_TRUE(payload_matches(h, frame.substr(kFrameHeaderBytes)));
}

TEST(FrameTest, EmptyPayloadFrame) {
  const std::string frame = encode_frame(1, "");
  ASSERT_EQ(frame.size(), kFrameHeaderBytes);
  FrameHeader h;
  ASSERT_EQ(decode_frame_header(
                reinterpret_cast<const unsigned char*>(frame.data()), h),
            HeaderStatus::kOk);
  EXPECT_EQ(h.payload_len, 0u);
  EXPECT_TRUE(payload_matches(h, ""));
}

TEST(FrameTest, BadMagicDetected) {
  std::string frame = encode_frame(1, "x");
  frame[0] ^= 0x01;
  FrameHeader h;
  EXPECT_EQ(decode_frame_header(
                reinterpret_cast<const unsigned char*>(frame.data()), h),
            HeaderStatus::kBadMagic);
}

TEST(FrameTest, BadVersionDetected) {
  std::string frame = encode_frame(1, "x");
  frame[4] = 99;
  FrameHeader h;
  EXPECT_EQ(decode_frame_header(
                reinterpret_cast<const unsigned char*>(frame.data()), h),
            HeaderStatus::kBadVersion);
}

TEST(FrameTest, OversizedLengthDetected) {
  FrameHeader in;
  in.payload_len = kMaxFramePayload + 1;
  unsigned char buf[kFrameHeaderBytes];
  encode_frame_header(in, buf);
  FrameHeader out;
  EXPECT_EQ(decode_frame_header(buf, out), HeaderStatus::kOversized);
}

TEST(FrameTest, PayloadCorruptionFailsChecksum) {
  std::string payload = "the quick brown fox";
  const std::string frame = encode_frame(5, payload);
  FrameHeader h;
  ASSERT_EQ(decode_frame_header(
                reinterpret_cast<const unsigned char*>(frame.data()), h),
            HeaderStatus::kOk);
  payload[3] ^= 0x40;
  EXPECT_FALSE(payload_matches(h, payload));
  EXPECT_FALSE(payload_matches(h, payload.substr(1)));  // wrong length too
}

TEST(FrameTest, DeterministicFuzzRoundTrip) {
  // Random payloads (including NUL bytes) survive encode/decode, and a
  // single flipped bit anywhere in the payload always trips the checksum.
  std::mt19937_64 rng(12345);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t len = static_cast<std::size_t>(rng() % 512);
    std::string payload(len, '\0');
    for (auto& c : payload) c = static_cast<char>(rng());
    const auto type = static_cast<std::uint8_t>(rng() % 256);

    const std::string frame = encode_frame(type, payload);
    FrameHeader h;
    ASSERT_EQ(decode_frame_header(
                  reinterpret_cast<const unsigned char*>(frame.data()), h),
              HeaderStatus::kOk);
    EXPECT_EQ(h.type, type);
    ASSERT_TRUE(payload_matches(h, payload));

    if (!payload.empty()) {
      std::string corrupt = payload;
      corrupt[rng() % corrupt.size()] ^=
          static_cast<char>(1u << (rng() % 8));
      if (corrupt != payload) {
        EXPECT_FALSE(payload_matches(h, corrupt));
      }
    }
  }
}

TEST(FrameTest, ChecksumIsFnv1a64) {
  // The frame checksum is the same primitive guarding the binary graph
  // format; a frame written by one subsystem verifies with the other's.
  const std::string payload = "cross-check";
  const std::string frame = encode_frame(2, payload);
  FrameHeader h;
  ASSERT_EQ(decode_frame_header(
                reinterpret_cast<const unsigned char*>(frame.data()), h),
            HeaderStatus::kOk);
  EXPECT_EQ(h.checksum, fnv1a64(payload.data(), payload.size()));
}

}  // namespace
}  // namespace graphct::framing
