#include "twitter/corpus_gen.hpp"

#include <gtest/gtest.h>

#include <set>

#include "algs/connected_components.hpp"
#include "graph/transforms.hpp"
#include "twitter/mention_graph.hpp"
#include "twitter/tweet_parser.hpp"
#include "util/error.hpp"

namespace graphct::twitter {
namespace {

CorpusOptions small_opts() {
  CorpusOptions o;
  o.user_pool = 200;
  o.num_tweets = 800;
  o.num_hubs = 5;
  o.hub_names = {"newsdesk", "cityhall"};
  o.num_conversations = 20;
  o.hashtags = {"topic", "other"};
  o.seed = 7;
  return o;
}

TEST(CorpusTest, DeterministicForFixedSeed) {
  const auto a = generate_corpus(small_opts());
  const auto b = generate_corpus(small_opts());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].author, b[i].author);
    EXPECT_EQ(a[i].text, b[i].text);
    EXPECT_EQ(a[i].timestamp, b[i].timestamp);
  }
}

TEST(CorpusTest, SeedChangesOutput) {
  auto o = small_opts();
  const auto a = generate_corpus(o);
  o.seed = 8;
  const auto b = generate_corpus(o);
  bool differs = a.size() != b.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].text != b[i].text;
  }
  EXPECT_TRUE(differs);
}

TEST(CorpusTest, TweetInvariants) {
  const auto tweets = generate_corpus(small_opts());
  EXPECT_GE(tweets.size(), 800u);  // replies add extra tweets
  std::int64_t prev_ts = 0;
  std::set<std::int64_t> ids;
  for (const auto& t : tweets) {
    EXPECT_LE(t.text.size(), 140u);  // Twitter's hard limit
    EXPECT_FALSE(t.author.empty());
    EXPECT_GE(t.timestamp, prev_ts);  // timestamp ordered
    prev_ts = t.timestamp;
    EXPECT_TRUE(ids.insert(t.id).second);  // unique ids
  }
}

TEST(CorpusTest, ContainsAllTweetKinds) {
  const auto tweets = generate_corpus(small_opts());
  int plain = 0, retweet = 0, mention = 0, selfref = 0, hashtag = 0;
  for (const auto& t : tweets) {
    const auto p = parse_tweet(t);
    if (p.mentions.empty()) ++plain;
    if (p.is_retweet) ++retweet;
    if (!p.mentions.empty()) ++mention;
    for (const auto& m : p.mentions) {
      if (m == p.author) ++selfref;
    }
    if (!p.hashtags.empty()) ++hashtag;
  }
  EXPECT_GT(plain, 0);
  EXPECT_GT(retweet, 0);
  EXPECT_GT(mention, plain / 10);
  EXPECT_GT(selfref, 0);
  EXPECT_GT(hashtag, 0);
}

TEST(CorpusTest, HubsReceiveMostMentions) {
  const auto o = small_opts();
  const auto tweets = generate_corpus(o);
  MentionGraphBuilder b;
  for (const auto& t : tweets) b.add(t);
  const auto mg = std::move(b).build();
  // The named hubs should be among the highest in-degree vertices.
  const vid hub = mg.id_of("newsdesk");
  ASSERT_NE(hub, graphct::kNoVertex);
  std::int64_t hub_in = 0, max_other = 0;
  const auto rev = graphct::reverse(mg.directed);
  for (vid v = 0; v < rev.num_vertices(); ++v) {
    if (v == hub) {
      hub_in = rev.degree(v);
    }
  }
  for (vid v = 0; v < rev.num_vertices(); ++v) {
    if (mg.users[static_cast<std::size_t>(v)].rfind("u", 0) == 0) {
      max_other = std::max<std::int64_t>(max_other, rev.degree(v));
    }
  }
  EXPECT_GT(hub_in, max_other / 2);  // hub is broadcast-scale
  EXPECT_GT(hub_in, 20);
}

TEST(CorpusTest, ConversationsProduceMutualArcs) {
  const auto tweets = generate_corpus(small_opts());
  MentionGraphBuilder b;
  for (const auto& t : tweets) b.add(t);
  const auto mg = std::move(b).build();
  const auto mutual = graphct::mutual_subgraph(mg.directed);
  EXPECT_GT(mutual.num_edges(), 0);
}

TEST(CorpusTest, ConversationOverlapConcentratesClusters) {
  // Higher overlap draws circles from a smaller shared pool, so the mutual
  // graph's largest cluster covers a larger *fraction* of the participants
  // (the Fig. 3 subcommunity structure). Absolute sizes shrink with the
  // pool, so the fraction is the right observable.
  auto lo = small_opts();
  lo.user_pool = 2000;
  lo.num_tweets = 1500;
  lo.num_conversations = 40;
  lo.p_conversation = 0.35;
  lo.reply_prob = 0.7;
  lo.conversation_overlap = 1.0;
  auto hi = lo;
  hi.conversation_overlap = 6.0;

  auto cluster_concentration = [](const CorpusOptions& o) {
    const auto tweets = generate_corpus(o);
    MentionGraphBuilder b;
    for (const auto& t : tweets) b.add(t);
    const auto mg = std::move(b).build();
    const auto mutual =
        graphct::drop_isolated(graphct::mutual_subgraph(mg.directed));
    if (mutual.graph.num_vertices() == 0) return 0.0;
    const auto labels = graphct::connected_components(mutual.graph);
    return static_cast<double>(
               graphct::component_stats(labels).largest_size()) /
           static_cast<double>(mutual.graph.num_vertices());
  };
  EXPECT_GT(cluster_concentration(hi), cluster_concentration(lo));
}

TEST(CorpusTest, RejectsBadOptions) {
  CorpusOptions o;
  o.user_pool = 1;
  EXPECT_THROW(generate_corpus(o), graphct::Error);
  o = small_opts();
  o.num_hubs = o.user_pool;
  EXPECT_THROW(generate_corpus(o), graphct::Error);
}

TEST(ArticleVolumeTest, BurstShape) {
  ArticleVolumeOptions o;
  const auto rows = simulate_weekly_articles(o);
  ASSERT_EQ(rows.size(), 8u);
  EXPECT_EQ(rows.front().first, 17);
  EXPECT_EQ(rows.back().first, 24);
  // Pre-burst baseline is small; onset week explodes by >5x.
  EXPECT_GT(rows[1].second, rows[0].second * 5);
  // Attention decays after the burst.
  EXPECT_GT(rows[1].second, rows[3].second);
  for (const auto& [week, count] : rows) {
    EXPECT_GE(count, 0);
  }
}

TEST(ArticleVolumeTest, Deterministic) {
  ArticleVolumeOptions o;
  o.seed = 12;
  EXPECT_EQ(simulate_weekly_articles(o), simulate_weekly_articles(o));
}

TEST(ArticleVolumeTest, ReboundWaveVisible) {
  ArticleVolumeOptions o;
  o.noise_sigma = 0.0;  // deterministic intensities
  const auto rows = simulate_weekly_articles(o);
  // The rebound week should exceed the week before it.
  const std::size_t idx = static_cast<std::size_t>(o.rebound_week - o.first_week);
  ASSERT_LT(idx, rows.size());
  EXPECT_GT(rows[idx].second, rows[idx - 1].second);
}

}  // namespace
}  // namespace graphct::twitter
