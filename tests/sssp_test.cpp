#include "algs/sssp.hpp"

#include <gtest/gtest.h>

#include <queue>

#include "algs/bfs.hpp"
#include "gen/random_graphs.hpp"
#include "gen/shapes.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace graphct {
namespace {

using testing::make_directed;
using testing::make_undirected;

// Serial Dijkstra reference.
std::vector<double> dijkstra(const CsrGraph& g, const EdgeWeights& w,
                             vid source) {
  std::vector<double> dist(static_cast<std::size_t>(g.num_vertices()),
                           kInfDistance);
  using Item = std::pair<double, vid>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[static_cast<std::size_t>(source)] = 0.0;
  pq.push({0.0, source});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    const auto nbrs = g.neighbors(u);
    const eid base = g.offsets()[static_cast<std::size_t>(u)];
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      const double cand = d + w[base + static_cast<eid>(j)];
      if (cand < dist[static_cast<std::size_t>(nbrs[j])]) {
        dist[static_cast<std::size_t>(nbrs[j])] = cand;
        pq.push({cand, nbrs[j]});
      }
    }
  }
  return dist;
}

void expect_distances_near(const std::vector<double>& got,
                           const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < got.size(); ++v) {
    if (want[v] == kInfDistance) {
      EXPECT_EQ(got[v], kInfDistance) << "vertex " << v;
    } else {
      EXPECT_NEAR(got[v], want[v], 1e-9) << "vertex " << v;
    }
  }
}

TEST(WeightsTest, UnitWeightsAreOnes) {
  const auto g = cycle_graph(5);
  const auto w = unit_weights(g);
  ASSERT_EQ(static_cast<eid>(w.value.size()), g.num_adjacency_entries());
  for (double x : w.value) EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST(WeightsTest, RandomWeightsInRangeAndSymmetric) {
  const auto g = erdos_renyi(100, 400, 3);
  const auto w = random_weights(g, 2.0, 5.0, 7);
  const vid n = g.num_vertices();
  for (vid u = 0; u < n; ++u) {
    const auto nbrs = g.neighbors(u);
    const eid base = g.offsets()[static_cast<std::size_t>(u)];
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      const double wt = w[base + static_cast<eid>(j)];
      ASSERT_GE(wt, 2.0);
      ASSERT_LT(wt, 5.0);
      // Symmetry: find the reverse slot and compare.
      const vid v = nbrs[j];
      const auto vn = g.neighbors(v);
      const eid vbase = g.offsets()[static_cast<std::size_t>(v)];
      for (std::size_t k = 0; k < vn.size(); ++k) {
        if (vn[k] == u) {
          ASSERT_DOUBLE_EQ(wt, w[vbase + static_cast<eid>(k)]);
        }
      }
    }
  }
}

TEST(WeightsTest, DeterministicPerSeed) {
  const auto g = erdos_renyi(50, 150, 5);
  EXPECT_EQ(random_weights(g, 0.0, 1.0, 9).value,
            random_weights(g, 0.0, 1.0, 9).value);
  EXPECT_NE(random_weights(g, 0.0, 1.0, 9).value,
            random_weights(g, 0.0, 1.0, 10).value);
}

TEST(DeltaSteppingTest, UnitWeightsMatchBfs) {
  const auto g = erdos_renyi(300, 1200, 11);
  const auto w = unit_weights(g);
  const auto sssp = delta_stepping(g, w, 0, 1.0);
  const auto b = bfs(g, 0);
  for (vid v = 0; v < g.num_vertices(); ++v) {
    if (b.distance[static_cast<std::size_t>(v)] == kNoVertex) {
      EXPECT_EQ(sssp.distance[static_cast<std::size_t>(v)], kInfDistance);
    } else {
      EXPECT_DOUBLE_EQ(sssp.distance[static_cast<std::size_t>(v)],
                       static_cast<double>(
                           b.distance[static_cast<std::size_t>(v)]));
    }
  }
}

TEST(DeltaSteppingTest, KnownTinyGraph) {
  // 0 -2-> 1 -2-> 2, plus direct 0 -5-> 2: shortest 0->2 is 4 via 1.
  const auto g = make_directed(3, {{0, 1}, {1, 2}, {0, 2}});
  EdgeWeights w;
  w.value = {2.0, 5.0, 2.0};  // slots: 0->1, 0->2, 1->2 (sorted adjacency)
  const auto r = delta_stepping(g, w, 0, 1.5);
  EXPECT_DOUBLE_EQ(r.distance[0], 0.0);
  EXPECT_DOUBLE_EQ(r.distance[1], 2.0);
  EXPECT_DOUBLE_EQ(r.distance[2], 4.0);
}

TEST(DeltaSteppingTest, UnreachableStaysInfinite) {
  const auto g = make_undirected(4, {{0, 1}});
  const auto r = delta_stepping(g, unit_weights(g), 0, 1.0);
  EXPECT_EQ(r.distance[2], kInfDistance);
  EXPECT_EQ(r.distance[3], kInfDistance);
}

TEST(DeltaSteppingTest, ZeroWeightEdgesTerminate) {
  const auto g = cycle_graph(6);
  EdgeWeights w;
  w.value.assign(static_cast<std::size_t>(g.num_adjacency_entries()), 0.0);
  const auto r = delta_stepping(g, w, 0, 1.0);
  for (double d : r.distance) EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(DeltaSteppingTest, InvalidArgsThrow) {
  const auto g = path_graph(3);
  const auto w = unit_weights(g);
  EXPECT_THROW(delta_stepping(g, w, 5, 1.0), Error);
  EXPECT_THROW(delta_stepping(g, w, 0, 0.0), Error);
  EdgeWeights bad;
  bad.value = {1.0};
  EXPECT_THROW(delta_stepping(g, bad, 0, 1.0), Error);
  EdgeWeights neg = unit_weights(g);
  neg.value[0] = -1.0;
  EXPECT_THROW(delta_stepping(g, neg, 0, 1.0), Error);
}

TEST(DeltaSteppingTest, DefaultDeltaOverloadWorks) {
  const auto g = erdos_renyi(100, 400, 13);
  const auto w = random_weights(g, 0.5, 3.0, 13);
  expect_distances_near(delta_stepping(g, w, 0).distance, dijkstra(g, w, 0));
}

struct DeltaCase {
  std::uint64_t seed;
  double delta;
};

// Property: delta-stepping equals Dijkstra for every delta, from
// Bellman-Ford-like (huge delta) to Dijkstra-like (tiny delta).
class DeltaSteppingPropertyTest : public ::testing::TestWithParam<DeltaCase> {};

TEST_P(DeltaSteppingPropertyTest, MatchesDijkstra) {
  const auto p = GetParam();
  Rng rng(p.seed);
  const vid n = 20 + static_cast<vid>(rng.next_below(150));
  const auto m = static_cast<std::int64_t>(n * (1 + rng.next_below(5)));
  const auto g = erdos_renyi(n, m, p.seed * 31 + 7);
  const auto w = random_weights(g, 0.1, 4.0, p.seed);
  const vid src = static_cast<vid>(rng.next_below(static_cast<std::uint64_t>(n)));
  expect_distances_near(delta_stepping(g, w, src, p.delta).distance,
                        dijkstra(g, w, src));
}

std::vector<DeltaCase> delta_cases() {
  std::vector<DeltaCase> cases;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (double delta : {0.05, 1.0, 100.0}) cases.push_back({seed, delta});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomWeightedGraphs, DeltaSteppingPropertyTest,
                         ::testing::ValuesIn(delta_cases()));

TEST(DeltaSteppingTest, DirectedGraphsSupported) {
  Rng rng(77);
  EdgeList el(60);
  for (int i = 0; i < 300; ++i) {
    el.add(static_cast<vid>(rng.next_below(60)),
           static_cast<vid>(rng.next_below(60)));
  }
  BuildOptions b;
  b.symmetrize = false;
  const auto g = build_csr(el, b);
  const auto w = random_weights(g, 0.5, 2.0, 3);
  expect_distances_near(delta_stepping(g, w, 0, 0.7).distance,
                        dijkstra(g, w, 0));
}

TEST(DeltaSteppingTest, FewerPhasesWithLargerDelta) {
  const auto g = erdos_renyi(500, 3000, 17);
  const auto w = random_weights(g, 0.5, 1.5, 17);
  const auto fine = delta_stepping(g, w, 0, 0.05);
  const auto coarse = delta_stepping(g, w, 0, 50.0);
  EXPECT_GT(fine.phases, coarse.phases);
  expect_distances_near(fine.distance, coarse.distance);
}

}  // namespace
}  // namespace graphct
