#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace graphct {
namespace {

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  EXPECT_NEAR(t.millis(), t.seconds() * 1000.0, 50.0);
}

TEST(TimerTest, RestartResetsOrigin) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.restart();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(FormatDurationTest, PicksSensibleUnits) {
  EXPECT_NE(format_duration(0.0000005).find("us"), std::string::npos);
  EXPECT_NE(format_duration(0.005).find("ms"), std::string::npos);
  EXPECT_NE(format_duration(4.9).find("s"), std::string::npos);
  EXPECT_NE(format_duration(6303.0).find("min"), std::string::npos);
}

}  // namespace
}  // namespace graphct
