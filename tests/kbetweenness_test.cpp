#include "core/kbetweenness.hpp"

#include <gtest/gtest.h>

#include "core/betweenness.hpp"
#include "gen/random_graphs.hpp"
#include "gen/shapes.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace graphct {
namespace {

using testing::brute_force_kbc;
using testing::make_directed;
using testing::make_undirected;

void expect_scores_near(const std::vector<double>& got,
                        const std::vector<double>& want, double tol = 1e-8) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], tol) << "vertex " << i;
  }
}

TEST(KBetweennessTest, KZeroEqualsBrandesOnShapes) {
  for (const auto& g :
       {path_graph(7), star_graph(8), cycle_graph(9), barbell_graph(4)}) {
    KBetweennessOptions o;
    o.k = 0;
    const auto kbc = k_betweenness_centrality(g, o);
    const auto bc = betweenness_centrality(g);
    expect_scores_near(kbc.score, bc.score);
  }
}

TEST(KBetweennessTest, KZeroEqualsBrandesOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto g = erdos_renyi(80, 300, seed);
    KBetweennessOptions o;
    o.k = 0;
    expect_scores_near(k_betweenness_centrality(g, o).score,
                       betweenness_centrality(g).score);
  }
}

TEST(KBetweennessTest, SquareWithDiagonalK1) {
  // Square 0-1-2-3 with chord 0-2. For pair (1,3) the shortest paths run
  // through 0 and 2; k=1 admits no longer alternatives of length 3 within
  // the level constraints... validated against brute force.
  const auto g = make_undirected(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  KBetweennessOptions o;
  o.k = 1;
  expect_scores_near(k_betweenness_centrality(g, o).score,
                     brute_force_kbc(g, 1));
}

TEST(KBetweennessTest, KLargeSeesAlternatePaths) {
  // Two parallel routes of length 2 and 3 between 0 and 4:
  //   0-1-4 (short), 0-2-3-4 (long). For the pair (0,4), k=0 credits only
  //   vertex 1; k=1 also credits the long route's vertices 2 and 3, so
  //   their scores strictly grow while staying below the short route's.
  const auto g = make_undirected(5, {{0, 1}, {1, 4}, {0, 2}, {2, 3}, {3, 4}});
  KBetweennessOptions o0{.k = 0};
  KBetweennessOptions o1{.k = 1};
  const auto k0 = k_betweenness_centrality(g, o0);
  const auto k1 = k_betweenness_centrality(g, o1);
  EXPECT_GT(k0.score[1], 0.0);
  EXPECT_GT(k1.score[2], k0.score[2]);
  EXPECT_GT(k1.score[3], k0.score[3]);
  // And the k=1 result matches brute-force walk enumeration exactly.
  expect_scores_near(k1.score, brute_force_kbc(g, 1));
}

TEST(KBetweennessTest, RobustnessMotivation) {
  // The paper motivates k-BC as robust to single-edge changes: on the
  // two-route graph above, removing the short route's middle vertex leaves
  // the k=1 ranking of 2,3 meaningful while k=0 scored them zero.
  const auto g = make_undirected(5, {{0, 1}, {1, 4}, {0, 2}, {2, 3}, {3, 4}});
  KBetweennessOptions o1{.k = 1};
  const auto before = k_betweenness_centrality(g, o1);
  // Remove vertex 1's edges (simulating failure of the shortest route).
  const auto g2 = make_undirected(5, {{0, 2}, {2, 3}, {3, 4}});
  const auto after = betweenness_centrality(g2);
  // Vertices 2,3 — which k-BC already flagged — are now the top actors.
  EXPECT_GT(after.score[2], 0.0);
  EXPECT_GT(before.score[2], 0.0);
}

TEST(KBetweennessTest, DirectedThrows) {
  const auto g = make_directed(3, {{0, 1}});
  EXPECT_THROW(k_betweenness_centrality(g), Error);
}

TEST(KBetweennessTest, NegativeKThrows) {
  const auto g = path_graph(3);
  KBetweennessOptions o;
  o.k = -1;
  EXPECT_THROW(k_betweenness_centrality(g, o), Error);
}

TEST(KBetweennessTest, SampledSourcesSubsetAndDeterministic) {
  const auto g = erdos_renyi(60, 200, 3);
  KBetweennessOptions o;
  o.k = 1;
  o.num_sources = 10;
  o.seed = 5;
  const auto a = k_betweenness_centrality(g, o);
  const auto b = k_betweenness_centrality(g, o);
  EXPECT_EQ(a.sources_used, 10);
  expect_scores_near(a.score, b.score, 0.0);
}

TEST(KBetweennessTest, TinyBudgetBatchesWithoutChangingScores) {
  const auto g = erdos_renyi(120, 500, 7);
  KBetweennessOptions o;
  o.k = 1;
  o.num_sources = 40;
  o.seed = 3;
  const auto wide = k_betweenness_centrality(g, o);

  // Slot cost for k=1 is (2*(k+1)+2)*n*8 = 5760 bytes; a 6 KiB budget
  // floors the worker team at one slot, so 40 sources run in >= 2 batches
  // of 8 while peak buffer memory stays within one slot of the budget.
  KBetweennessOptions tight = o;
  tight.score_memory_budget_bytes = 6 * 1024;
  const auto batched = k_betweenness_centrality(g, tight);
  EXPECT_GE(batched.batches, 2);
  EXPECT_GT(batched.peak_buffer_bytes, 0u);
  EXPECT_LE(batched.peak_buffer_bytes, tight.score_memory_budget_bytes);
  expect_scores_near(batched.score, wide.score, 1e-8);
}

TEST(KBetweennessTest, ScoresNonNegative) {
  const auto g = erdos_renyi(100, 400, 9);
  for (std::int64_t k = 0; k <= 2; ++k) {
    KBetweennessOptions o;
    o.k = k;
    const auto r = k_betweenness_centrality(g, o);
    for (double s : r.score) EXPECT_GE(s, -1e-9);
  }
}

struct KbcCase {
  std::uint64_t seed;
  std::int64_t k;
};

// Property sweep: match brute-force walk enumeration on tiny random graphs
// for k = 0, 1, 2. The brute force is exponential, so graphs stay small.
class KbcBruteForceTest : public ::testing::TestWithParam<KbcCase> {};

TEST_P(KbcBruteForceTest, MatchesWalkEnumeration) {
  const auto p = GetParam();
  Rng rng(p.seed);
  const vid n = 5 + static_cast<vid>(rng.next_below(6));
  const auto m = static_cast<std::int64_t>(n + rng.next_below(static_cast<std::uint64_t>(n)));
  const auto g = erdos_renyi(n, m, p.seed * 211 + 17);
  KBetweennessOptions o;
  o.k = p.k;
  expect_scores_near(k_betweenness_centrality(g, o).score,
                     brute_force_kbc(g, p.k), 1e-8);
}

std::vector<KbcCase> kbc_cases() {
  std::vector<KbcCase> cases;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    for (std::int64_t k = 0; k <= 2; ++k) cases.push_back({seed, k});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(TinyRandomGraphs, KbcBruteForceTest,
                         ::testing::ValuesIn(kbc_cases()));

TEST(KBetweennessTest, BruteForceOnShapesK1) {
  for (const auto& g : {cycle_graph(6), star_of_cliques(2, 3),
                        grid_graph(3, 3), complete_graph(4)}) {
    KBetweennessOptions o;
    o.k = 1;
    expect_scores_near(k_betweenness_centrality(g, o).score,
                       brute_force_kbc(g, 1), 1e-8);
  }
}

}  // namespace
}  // namespace graphct
