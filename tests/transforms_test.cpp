#include "graph/transforms.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace graphct {
namespace {

using testing::make_directed;
using testing::make_undirected;

TEST(ReverseTest, FlipsArcs) {
  const auto g = make_directed(3, {{0, 1}, {1, 2}});
  const auto r = reverse(g);
  EXPECT_TRUE(r.directed());
  EXPECT_TRUE(r.has_edge(1, 0));
  EXPECT_TRUE(r.has_edge(2, 1));
  EXPECT_FALSE(r.has_edge(0, 1));
  EXPECT_EQ(r.num_edges(), 2);
}

TEST(ReverseTest, UndirectedIsIdentity) {
  const auto g = make_undirected(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(reverse(g), g);
}

TEST(ToUndirectedTest, MergesBothDirections) {
  const auto g = make_directed(3, {{0, 1}, {1, 0}, {1, 2}});
  const auto u = to_undirected(g);
  EXPECT_FALSE(u.directed());
  EXPECT_EQ(u.num_edges(), 2);  // {0,1} collapses
  EXPECT_TRUE(u.has_edge(2, 1));
}

TEST(ToUndirectedTest, PreservesSelfLoops) {
  const auto g = make_directed(2, {{0, 0}, {0, 1}});
  const auto u = to_undirected(g);
  EXPECT_EQ(u.num_self_loops(), 1);
  EXPECT_EQ(u.num_edges(), 2);
}

TEST(InducedSubgraphTest, KeepsInternalEdgesOnly) {
  const auto g = make_undirected(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}});
  std::vector<char> mask{1, 1, 1, 0, 0};
  const auto sub = induced_subgraph(g, mask);
  EXPECT_EQ(sub.graph.num_vertices(), 3);
  EXPECT_EQ(sub.graph.num_edges(), 2);  // 0-1, 1-2
  EXPECT_EQ(sub.orig_ids, (std::vector<vid>{0, 1, 2}));
}

TEST(InducedSubgraphTest, RelabelsDensely) {
  const auto g = make_undirected(6, {{1, 4}, {4, 5}});
  std::vector<char> mask{0, 1, 0, 0, 1, 1};
  const auto sub = induced_subgraph(g, mask);
  EXPECT_EQ(sub.graph.num_vertices(), 3);
  EXPECT_EQ(sub.orig_ids, (std::vector<vid>{1, 4, 5}));
  // 1->0, 4->1, 5->2: edges (0,1) and (1,2)
  EXPECT_TRUE(sub.graph.has_edge(0, 1));
  EXPECT_TRUE(sub.graph.has_edge(1, 2));
  EXPECT_FALSE(sub.graph.has_edge(0, 2));
}

TEST(InducedSubgraphTest, DirectedPreservesDirection) {
  const auto g = make_directed(4, {{0, 1}, {1, 0}, {2, 3}});
  std::vector<char> mask{1, 1, 0, 0};
  const auto sub = induced_subgraph(g, mask);
  EXPECT_TRUE(sub.graph.directed());
  EXPECT_TRUE(sub.graph.has_edge(0, 1));
  EXPECT_TRUE(sub.graph.has_edge(1, 0));
}

TEST(InducedSubgraphTest, KeepsSelfLoops) {
  const auto g = make_undirected(3, {{0, 0}, {0, 1}});
  std::vector<char> mask{1, 0, 0};
  const auto sub = induced_subgraph(g, mask);
  EXPECT_EQ(sub.graph.num_self_loops(), 1);
}

TEST(InducedSubgraphTest, MaskSizeMismatchThrows) {
  const auto g = make_undirected(3, {{0, 1}});
  std::vector<char> mask{1, 1};
  EXPECT_THROW(induced_subgraph(g, mask), Error);
}

TEST(ExtractByLabelTest, PullsOneColor) {
  const auto g = make_undirected(6, {{0, 1}, {2, 3}, {4, 5}});
  std::vector<vid> labels{7, 7, 9, 9, 7, 7};
  const auto sub = extract_by_label(g, labels, 7);
  EXPECT_EQ(sub.graph.num_vertices(), 4);
  EXPECT_EQ(sub.orig_ids, (std::vector<vid>{0, 1, 4, 5}));
}

TEST(MutualSubgraphTest, KeepsOnlyReciprocatedPairs) {
  // 0<->1 mutual; 0->2 one-way; 3<->4 mutual; 5 self-loop.
  const auto g = make_directed(
      6, {{0, 1}, {1, 0}, {0, 2}, {3, 4}, {4, 3}, {5, 5}});
  const auto m = mutual_subgraph(g);
  EXPECT_FALSE(m.directed());
  EXPECT_EQ(m.num_vertices(), 6);  // vertex set preserved
  EXPECT_EQ(m.num_edges(), 2);
  EXPECT_TRUE(m.has_edge(0, 1));
  EXPECT_TRUE(m.has_edge(3, 4));
  EXPECT_FALSE(m.has_edge(0, 2));
  EXPECT_FALSE(m.has_edge(5, 5));  // self-reference is not a conversation
}

TEST(MutualSubgraphTest, RequiresDirectedInput) {
  const auto g = make_undirected(2, {{0, 1}});
  EXPECT_THROW(mutual_subgraph(g), Error);
}

TEST(MutualSubgraphTest, EmptyWhenNoReciprocation) {
  const auto g = make_directed(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const auto m = mutual_subgraph(g);
  EXPECT_EQ(m.num_edges(), 0);
}

TEST(DropIsolatedTest, RemovesZeroDegreeVertices) {
  const auto g = make_undirected(6, {{1, 2}, {4, 5}});
  const auto sub = drop_isolated(g);
  EXPECT_EQ(sub.graph.num_vertices(), 4);
  EXPECT_EQ(sub.orig_ids, (std::vector<vid>{1, 2, 4, 5}));
  EXPECT_EQ(sub.graph.num_edges(), 2);
}

TEST(DropIsolatedTest, DirectedInOnlyVerticesSurvive) {
  // 2 has only an incoming arc; it must survive.
  const auto g = make_directed(4, {{0, 2}});
  const auto sub = drop_isolated(g);
  EXPECT_EQ(sub.graph.num_vertices(), 2);
  EXPECT_EQ(sub.orig_ids, (std::vector<vid>{0, 2}));
}

TEST(RelabelByDegreeTest, HubGetsIdZero) {
  const auto g = make_undirected(5, {{2, 0}, {2, 1}, {2, 3}, {2, 4}, {0, 1}});
  const auto r = relabel_by_degree(g);
  EXPECT_EQ(r.orig_ids[0], 2);  // the hub
  EXPECT_EQ(r.graph.degree(0), 4);
  // Degrees are nonincreasing along the new ids.
  for (vid v = 1; v < r.graph.num_vertices(); ++v) {
    EXPECT_LE(r.graph.degree(v), r.graph.degree(v - 1));
  }
}

TEST(RelabelByDegreeTest, PreservesStructure) {
  Rng rng(777);
  EdgeList el(40);
  for (int i = 0; i < 150; ++i) {
    el.add(static_cast<vid>(rng.next_below(40)),
           static_cast<vid>(rng.next_below(40)));
  }
  const auto g = build_csr(el);
  const auto r = relabel_by_degree(g);
  ASSERT_EQ(r.graph.num_vertices(), g.num_vertices());
  EXPECT_EQ(r.graph.num_edges(), g.num_edges());
  // Every relabeled edge maps to an original edge and vice versa.
  for (vid u = 0; u < r.graph.num_vertices(); ++u) {
    for (vid v : r.graph.neighbors(u)) {
      EXPECT_TRUE(g.has_edge(r.orig_ids[static_cast<std::size_t>(u)],
                             r.orig_ids[static_cast<std::size_t>(v)]));
    }
  }
}

TEST(RelabelByDegreeTest, DirectedKeepsArcDirection) {
  const auto g = make_directed(3, {{0, 1}, {0, 2}});
  const auto r = relabel_by_degree(g);
  EXPECT_TRUE(r.graph.directed());
  EXPECT_EQ(r.orig_ids[0], 0);  // out-degree 2 hub first
  EXPECT_TRUE(r.graph.has_edge(0, 1));
  EXPECT_FALSE(r.graph.has_edge(1, 0));
}

// Property: induced subgraph on a random mask never contains an edge whose
// endpoint was masked out, and degrees never exceed the originals.
class InducedSubgraphProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InducedSubgraphProperty, SoundUnderRandomMasks) {
  Rng rng(GetParam());
  const vid n = 10 + static_cast<vid>(rng.next_below(50));
  EdgeList el(n);
  for (int i = 0; i < 200; ++i) {
    el.add(static_cast<vid>(rng.next_below(static_cast<std::uint64_t>(n))),
           static_cast<vid>(rng.next_below(static_cast<std::uint64_t>(n))));
  }
  const auto g = build_csr(el);
  std::vector<char> mask(static_cast<std::size_t>(n));
  for (auto& c : mask) c = rng.next_bool(0.5) ? 1 : 0;
  const auto sub = induced_subgraph(g, mask);

  for (vid v = 0; v < sub.graph.num_vertices(); ++v) {
    const vid orig = sub.orig_ids[static_cast<std::size_t>(v)];
    EXPECT_TRUE(mask[static_cast<std::size_t>(orig)]);
    EXPECT_LE(sub.graph.degree(v), g.degree(orig));
    for (vid w : sub.graph.neighbors(v)) {
      const vid worig = sub.orig_ids[static_cast<std::size_t>(w)];
      EXPECT_TRUE(g.has_edge(orig, worig));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMasks, InducedSubgraphProperty,
                         ::testing::Range<std::uint64_t>(100, 115));

}  // namespace
}  // namespace graphct
