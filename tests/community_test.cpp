#include "algs/community.hpp"

#include <gtest/gtest.h>

#include <set>

#include "algs/connected_components.hpp"
#include "gen/random_graphs.hpp"
#include "gen/shapes.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace graphct {
namespace {

using testing::make_directed;
using testing::make_undirected;

std::span<const vid> sp(const std::vector<vid>& v) { return {v.data(), v.size()}; }

TEST(LabelPropagationTest, DisjointCliquesSeparate) {
  // Two K5s, no bridge: two communities, exactly the components.
  EdgeList el(10);
  for (vid off : {vid{0}, vid{5}}) {
    for (vid i = 0; i < 5; ++i) {
      for (vid j = i + 1; j < 5; ++j) el.add(off + i, off + j);
    }
  }
  const auto g = build_csr(el);
  const auto r = label_propagation(g);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.num_communities, 2);
  for (vid v = 0; v < 5; ++v) {
    EXPECT_EQ(r.labels[static_cast<std::size_t>(v)], r.labels[0]);
  }
  for (vid v = 5; v < 10; ++v) {
    EXPECT_EQ(r.labels[static_cast<std::size_t>(v)], r.labels[5]);
  }
  EXPECT_NE(r.labels[0], r.labels[5]);
}

TEST(LabelPropagationTest, BridgedCliquesUsuallySeparate) {
  // Two K6s joined by one bridge edge: dense cores should keep distinct
  // labels despite the bridge.
  const auto g = barbell_graph(6);
  const auto r = label_propagation(g);
  std::set<vid> left, right;
  for (vid v = 0; v < 6; ++v) left.insert(r.labels[static_cast<std::size_t>(v)]);
  for (vid v = 6; v < 12; ++v) right.insert(r.labels[static_cast<std::size_t>(v)]);
  EXPECT_EQ(left.size(), 1u);
  EXPECT_EQ(right.size(), 1u);
  EXPECT_NE(*left.begin(), *right.begin());
}

TEST(LabelPropagationTest, LabelsAreCanonicalMinIds) {
  const auto g = star_of_cliques(3, 4);
  const auto r = label_propagation(g);
  for (vid v = 0; v < g.num_vertices(); ++v) {
    const vid l = r.labels[static_cast<std::size_t>(v)];
    // The label is a vertex id inside the same community (its minimum).
    EXPECT_EQ(r.labels[static_cast<std::size_t>(l)], l);
    EXPECT_LE(l, v);
  }
}

TEST(LabelPropagationTest, IsolatedVerticesKeepOwnLabel) {
  const auto g = make_undirected(4, {{0, 1}});
  const auto r = label_propagation(g);
  EXPECT_EQ(r.labels[2], 2);
  EXPECT_EQ(r.labels[3], 3);
  EXPECT_EQ(r.num_communities, 3);
}

TEST(LabelPropagationTest, CommunitiesRefineComponents) {
  // Every community must live inside one connected component.
  const auto g = erdos_renyi(300, 450, 7);
  const auto comm = label_propagation(g);
  const auto comp = connected_components(g);
  for (vid v = 0; v < g.num_vertices(); ++v) {
    const vid l = comm.labels[static_cast<std::size_t>(v)];
    EXPECT_EQ(comp[static_cast<std::size_t>(l)],
              comp[static_cast<std::size_t>(v)]);
  }
}

TEST(LabelPropagationTest, DeterministicForFixedSeed) {
  const auto g = erdos_renyi(200, 700, 9);
  LabelPropagationOptions o;
  o.seed = 3;
  EXPECT_EQ(label_propagation(g, o).labels, label_propagation(g, o).labels);
}

TEST(LabelPropagationTest, DirectedThrows) {
  const auto g = make_directed(3, {{0, 1}});
  EXPECT_THROW(label_propagation(g), Error);
}

TEST(LabelPropagationTest, SizesSortedLargestFirst) {
  const auto g = star_of_cliques(4, 6);
  const auto r = label_propagation(g);
  for (std::size_t i = 1; i < r.sizes.size(); ++i) {
    EXPECT_GE(r.sizes[i - 1].second, r.sizes[i].second);
  }
  std::int64_t total = 0;
  for (const auto& [l, s] : r.sizes) total += s;
  EXPECT_EQ(total, g.num_vertices());
}

TEST(ModularityTest, PerfectSplitOfDisjointCliques) {
  EdgeList el(8);
  for (vid off : {vid{0}, vid{4}}) {
    for (vid i = 0; i < 4; ++i) {
      for (vid j = i + 1; j < 4; ++j) el.add(off + i, off + j);
    }
  }
  const auto g = build_csr(el);
  std::vector<vid> split{0, 0, 0, 0, 4, 4, 4, 4};
  // Two equal halves with no cross edges: Q = 1 - 2*(1/2)^2 = 0.5.
  EXPECT_NEAR(modularity(g, sp(split)), 0.5, 1e-12);
}

TEST(ModularityTest, SingleCommunityIsZero) {
  const auto g = complete_graph(6);
  std::vector<vid> all(6, 0);
  EXPECT_NEAR(modularity(g, sp(all)), 0.0, 1e-12);
}

TEST(ModularityTest, AllSingletonsIsNegative) {
  const auto g = cycle_graph(8);
  std::vector<vid> singletons(8);
  for (vid v = 0; v < 8; ++v) singletons[static_cast<std::size_t>(v)] = v;
  EXPECT_LT(modularity(g, sp(singletons)), 0.0);
}

TEST(ModularityTest, GoodSplitBeatsBadSplit) {
  const auto g = barbell_graph(6);
  std::vector<vid> good(12), bad(12);
  for (vid v = 0; v < 12; ++v) {
    good[static_cast<std::size_t>(v)] = v < 6 ? 0 : 6;
    bad[static_cast<std::size_t>(v)] = v % 2;  // interleaved nonsense
  }
  EXPECT_GT(modularity(g, sp(good)), 0.3);
  EXPECT_GT(modularity(g, sp(good)), modularity(g, sp(bad)) + 0.3);
}

TEST(ModularityTest, LabelPropagationFindsPositiveModularity) {
  const auto g = star_of_cliques(6, 8);
  const auto r = label_propagation(g);
  EXPECT_GT(modularity(g, sp(r.labels)), 0.5);
}

TEST(ModularityTest, SelfLoopsIgnored) {
  const auto with = make_undirected(4, {{0, 1}, {2, 3}, {0, 0}});
  const auto without = make_undirected(4, {{0, 1}, {2, 3}});
  std::vector<vid> labels{0, 0, 2, 2};
  EXPECT_NEAR(modularity(with, sp(labels)), modularity(without, sp(labels)),
              1e-12);
}

TEST(ModularityTest, EdgelessGraphThrows) {
  const auto g = make_undirected(3, {});
  std::vector<vid> labels{0, 1, 2};
  EXPECT_THROW(modularity(g, sp(labels)), Error);
}

TEST(ModularityTest, SizeMismatchThrows) {
  const auto g = path_graph(4);
  std::vector<vid> labels{0, 0};
  EXPECT_THROW(modularity(g, sp(labels)), Error);
}

}  // namespace
}  // namespace graphct
