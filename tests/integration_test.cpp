/// End-to-end integration tests: the full paper pipeline — synthesize a
/// tweet stream, parse it, build the mention graph, characterize it with
/// every kernel, filter to conversations, and rank actors — plus a
/// cross-module script-driven run.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "algs/degree.hpp"
#include "algs/diameter.hpp"
#include "algs/kcore.hpp"
#include "algs/ranking.hpp"
#include "core/toolkit.hpp"
#include "gen/rmat.hpp"
#include "graph/io_binary.hpp"
#include "graph/io_dimacs.hpp"
#include "script/interpreter.hpp"
#include "twitter/conversation.hpp"
#include "twitter/corpus_gen.hpp"
#include "twitter/datasets.hpp"
#include "twitter/mention_graph.hpp"

namespace graphct {
namespace {

using twitter::MentionGraphBuilder;

TEST(IntegrationTest, FullTwitterPipelineOnTinyPreset) {
  const auto preset = twitter::dataset_preset("tiny");
  const auto tweets = twitter::generate_corpus(preset.corpus);

  MentionGraphBuilder builder;
  for (const auto& t : tweets) builder.add(t);
  const auto mg = std::move(builder).build();

  // Corpus statistics are internally consistent.
  EXPECT_EQ(mg.num_tweets, static_cast<std::int64_t>(tweets.size()));
  EXPECT_LE(mg.tweets_with_responses, mg.tweets_with_mentions);
  EXPECT_LE(mg.tweets_with_mentions, mg.num_tweets);
  EXPECT_EQ(mg.num_users, mg.directed.num_vertices());

  // Toolkit characterization of the undirected view.
  ToolkitOptions topts;
  topts.diameter_samples = 32;
  Toolkit tk(mg.undirected(), topts);
  EXPECT_GT(tk.diameter().estimate, 0);
  EXPECT_GE(tk.components_stats().num_components, 1);
  EXPECT_GT(tk.degree_stats().mean, 0.0);

  // Conversation filtering shrinks the graph dramatically (broadcast-heavy
  // corpus), and the survivors hold mutual edges.
  const auto sub = twitter::subcommunity_filter(mg);
  EXPECT_LT(sub.mutual_vertices, sub.original_vertices / 2);
  EXPECT_GT(sub.mutual_vertices, 0);
  for (vid v = 0; v < sub.mutual.graph.num_vertices(); ++v) {
    EXPECT_GE(sub.mutual.graph.degree(v), 1);
  }

  // BC ranking surfaces the named hubs at the top (broadcast centers).
  const auto ranked = twitter::rank_users_by_betweenness(mg, 5);
  ASSERT_EQ(ranked.size(), 5u);
  std::set<std::string> hubs(preset.corpus.hub_names.begin(),
                             preset.corpus.hub_names.end());
  int hub_hits = 0;
  for (const auto& r : ranked) {
    if (hubs.count(r.name) || r.name.rfind("hub", 0) == 0) ++hub_hits;
  }
  EXPECT_GE(hub_hits, 1);
}

TEST(IntegrationTest, ApproximateBcTracksExactOnTweetGraph) {
  // The Fig. 5 claim in miniature: sampled BC preserves the top actors.
  const auto preset = twitter::dataset_preset("tiny");
  const auto tweets = twitter::generate_corpus(preset.corpus);
  MentionGraphBuilder builder;
  for (const auto& t : tweets) builder.add(t);
  const auto mg = std::move(builder).build();
  const auto und = mg.undirected();

  const auto exact = betweenness_centrality(und);
  BetweennessOptions o;
  o.sample_fraction = 0.5;
  o.seed = 11;
  const auto approx = betweenness_centrality(und, o);
  const double overlap = top_k_overlap(
      std::span<const double>(exact.score.data(), exact.score.size()),
      std::span<const double>(approx.score.data(), approx.score.size()), 5.0);
  EXPECT_GE(overlap, 0.5);
}

TEST(IntegrationTest, RmatCharacterizationSuite) {
  // Generate -> characterize, the artificial-network half of the paper.
  RmatOptions r;
  r.scale = 10;
  r.edge_factor = 8;
  const auto g = rmat_graph(r);
  ToolkitOptions topts;
  topts.diameter_samples = 64;
  Toolkit tk(g, topts);

  const auto& d = tk.diameter();
  EXPECT_GT(d.longest_distance, 0);
  EXPECT_EQ(d.estimate, d.longest_distance * 4);

  const auto& cstats = tk.components_stats();
  // R-MAT graphs have one giant component plus isolated-vertex dust.
  EXPECT_GT(cstats.largest_size(), g.num_vertices() / 2);

  const auto bc = tk.betweenness({.num_sources = 64, .seed = 3});
  EXPECT_EQ(bc.sources_used, 64);
  // Hubs of the giant component should carry nonzero centrality.
  const auto top = top_k(std::span<const double>(bc.score.data(), bc.score.size()), 1);
  EXPECT_GT(bc.score[static_cast<std::size_t>(top[0])], 0.0);
}

TEST(IntegrationTest, ScriptDrivesTwitterGraph) {
  // Export a tweet graph to DIMACS, then run an analyst script over it.
  const auto preset = twitter::dataset_preset("tiny");
  const auto tweets = twitter::generate_corpus(preset.corpus);
  MentionGraphBuilder builder;
  for (const auto& t : tweets) builder.add(t);
  const auto mg = std::move(builder).build();

  const std::string path = "/tmp/gct_integration_tweets.dimacs";
  graphct::write_dimacs(mg.undirected(), path);

  std::ostringstream out;
  script::InterpreterOptions iopts;
  iopts.toolkit.diameter_samples = 16;
  script::Interpreter in(out, iopts);
  in.run("read dimacs " + path +
         "\nprint graph\nprint components\nsave graph\nextract component 1\n"
         "print degrees\nkcentrality 0 32\nrestore graph\n");
  EXPECT_NE(out.str().find("components:"), std::string::npos);
  EXPECT_NE(out.str().find("vertex"), std::string::npos);
  std::remove(path.c_str());
}

TEST(IntegrationTest, BinaryRoundTripPreservesKernelResults) {
  const auto g = rmat_graph({.scale = 8, .edge_factor = 6, .seed = 9});
  const std::string path = "/tmp/gct_integration_rt.bin";
  write_binary(g, path);
  const auto g2 = read_binary(path);
  EXPECT_EQ(degrees(g), degrees(g2));
  EXPECT_EQ(core_numbers(g), core_numbers(g2));
  const auto a = betweenness_centrality(g, {.num_sources = 16, .seed = 1});
  const auto b = betweenness_centrality(g2, {.num_sources = 16, .seed = 1});
  EXPECT_EQ(a.score, b.score);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace graphct
