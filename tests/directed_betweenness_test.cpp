#include <gtest/gtest.h>

#include <deque>

#include "core/betweenness.hpp"
#include "gen/shapes.hpp"
#include "test_support.hpp"
#include "twitter/conversation.hpp"
#include "util/error.hpp"

namespace graphct {
namespace {

using testing::make_directed;
using testing::make_undirected;

// Serial reference Brandes on a directed graph (out-arcs only).
std::vector<double> reference_directed_bc(const CsrGraph& g) {
  const vid n = g.num_vertices();
  std::vector<double> bc(static_cast<std::size_t>(n), 0.0);
  for (vid s = 0; s < n; ++s) {
    std::vector<double> sigma(static_cast<std::size_t>(n), 0.0);
    std::vector<double> delta(static_cast<std::size_t>(n), 0.0);
    std::vector<vid> dist(static_cast<std::size_t>(n), kNoVertex);
    std::vector<vid> stack;
    std::deque<vid> q{s};
    sigma[static_cast<std::size_t>(s)] = 1.0;
    dist[static_cast<std::size_t>(s)] = 0;
    while (!q.empty()) {
      const vid u = q.front();
      q.pop_front();
      stack.push_back(u);
      for (vid v : g.neighbors(u)) {
        if (dist[static_cast<std::size_t>(v)] == kNoVertex) {
          dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
          q.push_back(v);
        }
        if (dist[static_cast<std::size_t>(v)] ==
            dist[static_cast<std::size_t>(u)] + 1) {
          sigma[static_cast<std::size_t>(v)] += sigma[static_cast<std::size_t>(u)];
        }
      }
    }
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      const vid w = *it;
      for (vid v : g.neighbors(w)) {
        if (dist[static_cast<std::size_t>(v)] ==
            dist[static_cast<std::size_t>(w)] + 1) {
          delta[static_cast<std::size_t>(w)] +=
              sigma[static_cast<std::size_t>(w)] /
              sigma[static_cast<std::size_t>(v)] *
              (1.0 + delta[static_cast<std::size_t>(v)]);
        }
      }
      if (w != s) bc[static_cast<std::size_t>(w)] += delta[static_cast<std::size_t>(w)];
    }
  }
  return bc;
}

TEST(DirectedBcTest, DirectedPath) {
  // 0 -> 1 -> 2 -> 3: vertex 1 lies on (0,2),(0,3); vertex 2 on (0,3),(1,3).
  const auto g = make_directed(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto r = directed_betweenness_centrality(g);
  EXPECT_DOUBLE_EQ(r.score[0], 0.0);
  EXPECT_DOUBLE_EQ(r.score[1], 2.0);
  EXPECT_DOUBLE_EQ(r.score[2], 2.0);
  EXPECT_DOUBLE_EQ(r.score[3], 0.0);
}

TEST(DirectedBcTest, DirectionMatters) {
  // Star with arcs inward: no directed path passes *through* the hub.
  const auto inward = make_directed(4, {{1, 0}, {2, 0}, {3, 0}});
  const auto rin = directed_betweenness_centrality(inward);
  for (double s : rin.score) EXPECT_DOUBLE_EQ(s, 0.0);

  // In-and-out hub: all spoke pairs route through it.
  const auto both = make_directed(
      4, {{1, 0}, {2, 0}, {3, 0}, {0, 1}, {0, 2}, {0, 3}});
  const auto rb = directed_betweenness_centrality(both);
  EXPECT_DOUBLE_EQ(rb.score[0], 6.0);  // 3*2 ordered spoke pairs
}

TEST(DirectedBcTest, DirectedCycleIsUniform) {
  const auto g = make_directed(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  const auto r = directed_betweenness_centrality(g);
  for (std::size_t v = 1; v < 5; ++v) {
    EXPECT_NEAR(r.score[v], r.score[0], 1e-9);
  }
  EXPECT_GT(r.score[0], 0.0);
}

TEST(DirectedBcTest, UndirectedInputThrows) {
  const auto g = make_undirected(3, {{0, 1}});
  EXPECT_THROW(directed_betweenness_centrality(g), Error);
  const auto d = make_directed(3, {{0, 1}});
  EXPECT_THROW(betweenness_centrality(d), Error);
}

TEST(DirectedBcTest, ComponentAwareFallsBackToUniform) {
  const auto g = make_directed(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  BetweennessOptions o;
  o.num_sources = 3;
  o.sampling = BcSampling::kComponentAware;
  // Must not throw (weak components are not used for directed sampling).
  const auto r = directed_betweenness_centrality(g, o);
  EXPECT_EQ(r.sources_used, 3);
}

TEST(DirectedBcTest, SymmetricDigraphMatchesUndirected) {
  // A digraph with both arcs per edge computes the same scores as the
  // undirected graph (each unordered pair counted twice in both).
  const auto dir = make_directed(
      5, {{0, 1}, {1, 0}, {1, 2}, {2, 1}, {2, 3}, {3, 2}, {3, 4}, {4, 3}});
  const auto und = make_undirected(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const auto rd = directed_betweenness_centrality(dir);
  const auto ru = betweenness_centrality(und);
  for (std::size_t v = 0; v < 5; ++v) {
    EXPECT_NEAR(rd.score[v], ru.score[v], 1e-9);
  }
}

TEST(DirectedBcTest, FineCoarseAutoAgree) {
  Rng rng(31);
  const vid n = 80;
  EdgeList el(n);
  for (std::int64_t i = 0; i < 400; ++i) {
    el.add(static_cast<vid>(rng.next_below(static_cast<std::uint64_t>(n))),
           static_cast<vid>(rng.next_below(static_cast<std::uint64_t>(n))));
  }
  BuildOptions b;
  b.symmetrize = false;
  const auto g = build_csr(el, b);

  BetweennessOptions fine;
  fine.parallelism = BcParallelism::kFine;
  BetweennessOptions aut;
  aut.parallelism = BcParallelism::kAuto;
  aut.score_memory_budget_bytes = 2000;  // ~3 buffers of 640 B -> batched
  const auto rc = directed_betweenness_centrality(g);
  const auto rf = directed_betweenness_centrality(g, fine);
  const auto ra = directed_betweenness_centrality(g, aut);
  ASSERT_EQ(ra.score.size(), rc.score.size());
  for (std::size_t v = 0; v < rc.score.size(); ++v) {
    EXPECT_NEAR(ra.score[v], rc.score[v], 1e-7) << "vertex " << v;
    EXPECT_NEAR(rf.score[v], rc.score[v], 1e-7) << "vertex " << v;
  }
  EXPECT_GE(ra.batches, 2);
  EXPECT_LE(ra.peak_buffer_bytes, aut.score_memory_budget_bytes);
}

class DirectedBcPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DirectedBcPropertyTest, MatchesSerialReference) {
  Rng rng(GetParam());
  const vid n = 10 + static_cast<vid>(rng.next_below(60));
  EdgeList el(n);
  const std::int64_t m = n * (1 + static_cast<std::int64_t>(rng.next_below(4)));
  for (std::int64_t i = 0; i < m; ++i) {
    el.add(static_cast<vid>(rng.next_below(static_cast<std::uint64_t>(n))),
           static_cast<vid>(rng.next_below(static_cast<std::uint64_t>(n))));
  }
  BuildOptions b;
  b.symmetrize = false;
  const auto g = build_csr(el, b);
  const auto expect = reference_directed_bc(g);
  const auto got = directed_betweenness_centrality(g);
  ASSERT_EQ(got.score.size(), expect.size());
  for (std::size_t v = 0; v < expect.size(); ++v) {
    EXPECT_NEAR(got.score[v], expect[v], 1e-7) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDigraphs, DirectedBcPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(DirectedRankingTest, FlowBrokersDifferFromAssociationHubs) {
  // fan tweets cite @hub (arcs fan->hub); hub never mentions anyone, but a
  // relay account @relay both cites the hub and is cited by others:
  // others -> relay -> hub. Directed BC crowns the relay; undirected BC
  // still favors the hub's degree.
  twitter::MentionGraphBuilder b;
  std::int64_t id = 1;
  for (int f = 0; f < 6; ++f) {
    b.add({id++, "fan" + std::to_string(f), "@relay saw this?", id});
  }
  b.add({id++, "relay", "via @hub", id});
  for (int f = 0; f < 3; ++f) {
    b.add({id++, "viewer" + std::to_string(f), "@hub news", id});
  }
  const auto mg = std::move(b).build();
  const auto directed = twitter::rank_users_by_directed_betweenness(mg, 1);
  ASSERT_EQ(directed.size(), 1u);
  EXPECT_EQ(directed[0].name, "relay");
  EXPECT_GT(directed[0].score, 0.0);
}

}  // namespace
}  // namespace graphct
