#include "stream/dynamic_graph.hpp"

#include <gtest/gtest.h>

#include <set>

#include "gen/random_graphs.hpp"
#include "gen/shapes.hpp"
#include "test_support.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace graphct {
namespace {

TEST(DynamicGraphTest, InsertAndQuery) {
  DynamicGraph g(5);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_TRUE(g.insert_edge(0, 3));
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_TRUE(g.has_edge(3, 0));
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(3), 1);
}

TEST(DynamicGraphTest, DuplicateInsertIsNoop) {
  DynamicGraph g(3);
  EXPECT_TRUE(g.insert_edge(0, 1));
  EXPECT_FALSE(g.insert_edge(0, 1));
  EXPECT_FALSE(g.insert_edge(1, 0));
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.degree(0), 1);
}

TEST(DynamicGraphTest, RemoveEdge) {
  DynamicGraph g(4);
  g.insert_edge(1, 2);
  g.insert_edge(2, 3);
  EXPECT_TRUE(g.remove_edge(2, 1));
  EXPECT_FALSE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_FALSE(g.remove_edge(1, 2));  // already gone
}

TEST(DynamicGraphTest, SelfLoops) {
  DynamicGraph g(3);
  EXPECT_TRUE(g.insert_edge(1, 1));
  EXPECT_TRUE(g.has_edge(1, 1));
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.degree(1), 1);
  EXPECT_TRUE(g.remove_edge(1, 1));
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(DynamicGraphTest, AdjacencyStaysSorted) {
  DynamicGraph g(10);
  for (vid v : {7, 2, 9, 4, 1}) g.insert_edge(0, v);
  const auto nbrs = g.neighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(g.degree(0), 5);
}

TEST(DynamicGraphTest, OutOfRangeThrows) {
  DynamicGraph g(3);
  EXPECT_THROW(g.insert_edge(0, 3), Error);
  EXPECT_THROW(g.remove_edge(-1, 0), Error);
  EXPECT_THROW((void)g.has_edge(0, 5), Error);
}

TEST(DynamicGraphTest, FromStaticGraph) {
  const auto s = cycle_graph(6);
  DynamicGraph g(s);
  EXPECT_EQ(g.num_vertices(), 6);
  EXPECT_EQ(g.num_edges(), 6);
  for (vid v = 0; v < 6; ++v) {
    EXPECT_TRUE(g.has_edge(v, (v + 1) % 6));
  }
}

TEST(DynamicGraphTest, SnapshotRoundTrip) {
  const auto s = erdos_renyi(50, 200, 3);
  DynamicGraph g(s);
  EXPECT_EQ(g.snapshot(), s);
}

TEST(DynamicGraphTest, SnapshotAfterMutations) {
  DynamicGraph g(4);
  g.insert_edge(0, 1);
  g.insert_edge(1, 2);
  g.insert_edge(2, 3);
  g.remove_edge(1, 2);
  g.insert_edge(3, 3);
  const auto s = g.snapshot();
  EXPECT_EQ(s.num_edges(), 3);
  EXPECT_EQ(s.num_self_loops(), 1);
  EXPECT_TRUE(s.has_edge(0, 1));
  EXPECT_FALSE(s.has_edge(1, 2));
  EXPECT_FALSE(s.directed());
}

TEST(DynamicGraphTest, RandomChurnMatchesReferenceSet) {
  Rng rng(17);
  const vid n = 30;
  DynamicGraph g(n);
  std::set<std::pair<vid, vid>> ref;
  for (int step = 0; step < 2000; ++step) {
    const vid u = static_cast<vid>(rng.next_below(n));
    const vid v = static_cast<vid>(rng.next_below(n));
    const auto p = std::minmax(u, v);
    if (rng.next_bool(0.6)) {
      EXPECT_EQ(g.insert_edge(u, v), ref.insert({p.first, p.second}).second);
    } else {
      EXPECT_EQ(g.remove_edge(u, v),
                ref.erase({p.first, p.second}) > 0);
    }
    ASSERT_EQ(g.num_edges(), static_cast<eid>(ref.size()));
  }
  // Final structure matches exactly.
  for (vid u = 0; u < n; ++u) {
    for (vid v = u; v < n; ++v) {
      EXPECT_EQ(g.has_edge(u, v), ref.count({u, v}) > 0);
    }
  }
}

}  // namespace
}  // namespace graphct
