#include "core/bc_confidence.hpp"

#include <gtest/gtest.h>

#include "gen/random_graphs.hpp"
#include "gen/shapes.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace graphct {
namespace {

TEST(BcConfidenceTest, StarHubIsCertain) {
  const auto g = star_graph(40);
  BcConfidenceOptions o;
  o.num_sources = 8;
  o.replicates = 6;
  o.top_percent = 2.5;  // top-1 of 40
  const auto r = bc_confidence(g, o);
  // Every replicate puts the hub in the top list; the spokes never appear.
  EXPECT_DOUBLE_EQ(r.top_membership[0], 1.0);
  for (std::size_t v = 1; v < 40; ++v) {
    EXPECT_DOUBLE_EQ(r.top_membership[v], 0.0);
  }
  EXPECT_DOUBLE_EQ(r.top_list_stability, 1.0);
  EXPECT_GT(r.mean[0], 0.0);
}

TEST(BcConfidenceTest, MeanApproximatesExactBc) {
  const auto g = erdos_renyi(120, 500, 3);
  const auto exact = betweenness_centrality(g);
  BcConfidenceOptions o;
  o.num_sources = 40;
  o.replicates = 12;
  o.seed = 9;
  const auto r = bc_confidence(g, o);
  // Rescaled replicate means should track exact BC closely in aggregate.
  double sum_exact = 0, sum_mean = 0;
  for (std::size_t v = 0; v < exact.score.size(); ++v) {
    sum_exact += exact.score[v];
    sum_mean += r.mean[v];
  }
  EXPECT_NEAR(sum_mean / sum_exact, 1.0, 0.15);
  // And the exact value should usually lie inside mean +/- half_width for
  // high-score vertices (generous check: 70% coverage at 90% nominal).
  std::int64_t covered = 0, considered = 0;
  for (std::size_t v = 0; v < exact.score.size(); ++v) {
    if (exact.score[v] < 10.0) continue;
    ++considered;
    if (std::abs(exact.score[v] - r.mean[v]) <= r.half_width[v] * 1.5) {
      ++covered;
    }
  }
  ASSERT_GT(considered, 5);
  EXPECT_GT(static_cast<double>(covered) / static_cast<double>(considered),
            0.7);
}

TEST(BcConfidenceTest, MoreSourcesTightenIntervals) {
  const auto g = erdos_renyi(150, 700, 5);
  BcConfidenceOptions small_o;
  small_o.num_sources = 10;
  small_o.replicates = 8;
  small_o.seed = 3;
  BcConfidenceOptions big_o = small_o;
  big_o.num_sources = 80;
  const auto small_r = bc_confidence(g, small_o);
  const auto big_r = bc_confidence(g, big_o);
  double small_sum = 0, big_sum = 0;
  for (std::size_t v = 0; v < small_r.half_width.size(); ++v) {
    small_sum += small_r.half_width[v];
    big_sum += big_r.half_width[v];
  }
  EXPECT_LT(big_sum, small_sum);
  EXPECT_GE(big_r.top_list_stability, small_r.top_list_stability - 0.05);
}

TEST(BcConfidenceTest, Deterministic) {
  const auto g = erdos_renyi(60, 200, 7);
  BcConfidenceOptions o;
  o.num_sources = 15;
  o.replicates = 4;
  o.seed = 11;
  const auto a = bc_confidence(g, o);
  const auto b = bc_confidence(g, o);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.top_membership, b.top_membership);
  EXPECT_DOUBLE_EQ(a.top_list_stability, b.top_list_stability);
}

TEST(BcConfidenceTest, SourceCountClampsToGraph) {
  const auto g = path_graph(10);
  BcConfidenceOptions o;
  o.num_sources = 1000;
  o.replicates = 3;
  const auto r = bc_confidence(g, o);
  EXPECT_EQ(r.sources_per_replicate, 10);
  // All-sources sampling is exact: zero variance across replicates.
  for (double hw : r.half_width) EXPECT_DOUBLE_EQ(hw, 0.0);
  EXPECT_DOUBLE_EQ(r.top_list_stability, 1.0);
}

TEST(BcConfidenceTest, InvalidOptionsThrow) {
  const auto g = path_graph(5);
  BcConfidenceOptions o;
  o.replicates = 1;
  EXPECT_THROW(bc_confidence(g, o), Error);
  o.replicates = 3;
  o.num_sources = 0;
  EXPECT_THROW(bc_confidence(g, o), Error);
}

TEST(BcConfidenceTest, EmptyGraph) {
  CsrGraph g;
  const auto r = bc_confidence(g);
  EXPECT_TRUE(r.mean.empty());
}

}  // namespace
}  // namespace graphct
