#include "gen/rmat.hpp"

#include <gtest/gtest.h>

#include "algs/degree.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace graphct {
namespace {

TEST(RmatTest, EdgeCountAndVertexCount) {
  RmatOptions o;
  o.scale = 10;
  o.edge_factor = 8;
  const auto el = rmat_edges(o);
  EXPECT_EQ(el.size(), static_cast<std::size_t>(8 * 1024));
  EXPECT_EQ(el.num_vertices_hint(), 1024);
  for (const auto& e : el.edges()) {
    EXPECT_GE(e.src, 0);
    EXPECT_LT(e.src, 1024);
    EXPECT_GE(e.dst, 0);
    EXPECT_LT(e.dst, 1024);
  }
}

TEST(RmatTest, DeterministicAcrossCalls) {
  RmatOptions o;
  o.scale = 9;
  o.edge_factor = 4;
  o.seed = 123;
  const auto a = rmat_edges(o);
  const auto b = rmat_edges(o);
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(RmatTest, SeedsChangeOutput) {
  RmatOptions a, b;
  a.scale = b.scale = 9;
  a.edge_factor = b.edge_factor = 4;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(rmat_edges(a).edges(), rmat_edges(b).edges());
}

TEST(RmatTest, GraphIsUndirectedDeduplicated) {
  RmatOptions o;
  o.scale = 10;
  o.edge_factor = 8;
  const auto g = rmat_graph(o);
  EXPECT_FALSE(g.directed());
  EXPECT_TRUE(g.sorted_adjacency());
  // Dedup: fewer unique edges than generated arcs.
  EXPECT_LT(g.num_edges(), 8 * 1024);
  EXPECT_GT(g.num_edges(), 1024);
}

TEST(RmatTest, SkewedQuadrantsMakeHubs) {
  // With A=0.55 the low-numbered vertices accumulate degree: vertex with
  // max degree should be far above the mean.
  RmatOptions o;
  o.scale = 12;
  o.edge_factor = 8;
  const auto g = rmat_graph(o);
  const auto s = degree_summary(g);
  EXPECT_GT(s.max, 8.0 * s.mean);
}

TEST(RmatTest, NoiseOffStillWorks) {
  RmatOptions o;
  o.scale = 8;
  o.edge_factor = 4;
  o.noise = false;
  const auto g = rmat_graph(o);
  EXPECT_EQ(g.num_vertices(), 256);
}

TEST(RmatTest, PaperParametersAreDefault) {
  RmatOptions o;
  EXPECT_DOUBLE_EQ(o.a, 0.55);
  EXPECT_DOUBLE_EQ(o.b, 0.10);
  EXPECT_DOUBLE_EQ(o.c, 0.10);
  EXPECT_EQ(o.edge_factor, 16);
}

TEST(RmatTest, InvalidOptionsThrow) {
  RmatOptions o;
  o.scale = 0;
  EXPECT_THROW(rmat_edges(o), Error);
  o.scale = 10;
  o.edge_factor = 0;
  EXPECT_THROW(rmat_edges(o), Error);
  o.edge_factor = 4;
  o.a = 1.2;
  EXPECT_THROW(rmat_edges(o), Error);
}

}  // namespace
}  // namespace graphct
