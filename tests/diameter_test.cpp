#include "algs/diameter.hpp"

#include <gtest/gtest.h>

#include "gen/random_graphs.hpp"
#include "gen/shapes.hpp"
#include "test_support.hpp"

namespace graphct {
namespace {

using testing::make_undirected;

TEST(ExactDiameterTest, KnownShapes) {
  EXPECT_EQ(exact_diameter(path_graph(10)), 9);
  EXPECT_EQ(exact_diameter(cycle_graph(10)), 5);
  EXPECT_EQ(exact_diameter(cycle_graph(9)), 4);
  EXPECT_EQ(exact_diameter(star_graph(50)), 2);
  EXPECT_EQ(exact_diameter(complete_graph(6)), 1);
  EXPECT_EQ(exact_diameter(grid_graph(4, 7)), 9);
}

TEST(ExactDiameterTest, DisconnectedUsesLargestEccentricity) {
  const auto g = make_undirected(8, {{0, 1}, {1, 2}, {4, 5}});
  EXPECT_EQ(exact_diameter(g), 2);
}

TEST(EstimateTest, FullSamplingEqualsExactLowerBound) {
  const auto g = path_graph(30);
  DiameterOptions o;
  o.num_samples = 30;  // every vertex
  o.multiplier = 1;
  const auto est = estimate_diameter(g, o);
  EXPECT_EQ(est.longest_distance, 29);
  EXPECT_EQ(est.estimate, 29);
  EXPECT_EQ(est.samples_used, 30);
}

TEST(EstimateTest, MultiplierScalesEstimate) {
  const auto g = path_graph(10);
  DiameterOptions o;
  o.num_samples = 10;
  o.multiplier = 4;
  const auto est = estimate_diameter(g, o);
  EXPECT_EQ(est.estimate, est.longest_distance * 4);
}

TEST(EstimateTest, SampleCountClampsToVertexCount) {
  const auto g = path_graph(5);
  DiameterOptions o;
  o.num_samples = 256;  // the paper's default, bigger than the graph
  const auto est = estimate_diameter(g, o);
  EXPECT_EQ(est.samples_used, 5);
  EXPECT_EQ(est.longest_distance, 4);
}

TEST(EstimateTest, EstimateIsLowerBoundTimesMultiplier) {
  // The sampled longest distance never exceeds the true diameter; with the
  // paper's 4x factor the estimate upper-bounds it on small-world graphs.
  const auto g = erdos_renyi(500, 2000, 9);
  const vid exact = exact_diameter(g);
  DiameterOptions o;
  o.num_samples = 64;
  o.seed = 7;
  const auto est = estimate_diameter(g, o);
  EXPECT_LE(est.longest_distance, exact);
  EXPECT_GE(est.estimate, exact);  // 4x headroom
}

TEST(EstimateTest, DeterministicForFixedSeed) {
  const auto g = erdos_renyi(300, 900, 21);
  DiameterOptions o;
  o.num_samples = 16;
  o.seed = 5;
  const auto a = estimate_diameter(g, o);
  const auto b = estimate_diameter(g, o);
  EXPECT_EQ(a.longest_distance, b.longest_distance);
  EXPECT_EQ(a.estimate, b.estimate);
}

TEST(EstimateTest, EmptyGraph) {
  CsrGraph g;
  const auto est = estimate_diameter(g);
  EXPECT_EQ(est.samples_used, 0);
  EXPECT_EQ(est.estimate, 0);
}

}  // namespace
}  // namespace graphct
