#include "core/toolkit.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "gen/shapes.hpp"
#include "graph/io_binary.hpp"
#include "graph/io_dimacs.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace graphct {
namespace {

using testing::make_undirected;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(ToolkitTest, EstimatesDiameterOnLoad) {
  Toolkit tk(path_graph(20));
  const auto& d = tk.diameter();
  EXPECT_EQ(d.longest_distance, 19);  // 256 samples cover all 20 vertices
  EXPECT_EQ(d.estimate, 76);          // paper's 4x multiplier
}

TEST(ToolkitTest, LazyDiameterWhenSkipped) {
  ToolkitOptions o;
  o.estimate_diameter_on_load = false;
  Toolkit tk(path_graph(10), o);
  const auto& d = tk.diameter();  // computed on first request
  EXPECT_EQ(d.longest_distance, 9);
}

TEST(ToolkitTest, CustomDiameterParameters) {
  Toolkit tk(path_graph(10));
  const auto& d = tk.estimate_diameter(10, 2);
  EXPECT_EQ(d.estimate, d.longest_distance * 2);
}

TEST(ToolkitTest, ComponentKernelsAreCachedAndConsistent) {
  Toolkit tk(make_undirected(7, {{0, 1}, {1, 2}, {3, 4}, {5, 6}}));
  const auto& labels1 = tk.components();
  const auto& labels2 = tk.components();
  EXPECT_EQ(&labels1, &labels2);  // same cached object
  EXPECT_EQ(tk.components_stats().num_components, 3);
  EXPECT_EQ(tk.components_stats().largest_size(), 3);
}

TEST(ToolkitTest, DegreeAndClusteringKernels) {
  Toolkit tk(complete_graph(5));
  EXPECT_DOUBLE_EQ(tk.degree_stats().mean, 4.0);
  EXPECT_EQ(tk.degree_histogram().total(), 5);
  EXPECT_EQ(tk.clustering().total_triangles, 10);
  EXPECT_EQ(tk.core_numbers()[0], 4);
}

TEST(ToolkitTest, BetweennessRuns) {
  Toolkit tk(star_graph(6));
  const auto bc = tk.betweenness();
  EXPECT_DOUBLE_EQ(bc.score[0], 20.0);
  KBetweennessOptions ko;
  ko.k = 1;
  const auto kbc = tk.k_betweenness(ko);
  EXPECT_GT(kbc.score[0], 0.0);
}

TEST(ToolkitTest, PageRankAndClosenessKernels) {
  Toolkit tk(star_graph(8));
  const auto pr = tk.pagerank();
  EXPECT_TRUE(pr.converged);
  EXPECT_GT(pr.score[0], pr.score[1]);
  const auto cl = tk.closeness();
  EXPECT_DOUBLE_EQ(cl.score[0], 7.0);
}

TEST(ToolkitTest, CommunitiesCachedWithModularity) {
  Toolkit tk(star_of_cliques(4, 6));
  const auto& c1 = tk.communities();
  const auto& c2 = tk.communities();
  EXPECT_EQ(&c1, &c2);
  EXPECT_GE(c1.num_communities, 4);
  EXPECT_GT(tk.community_modularity(), 0.4);
}

TEST(ToolkitTest, ExtractComponentReindexes) {
  Toolkit tk(make_undirected(7, {{0, 1}, {1, 2}, {3, 4}, {5, 6}}));
  Toolkit sub = tk.extract_component(0);
  EXPECT_EQ(sub.graph().num_vertices(), 3);
  Toolkit second = tk.extract_component(1);
  EXPECT_EQ(second.graph().num_vertices(), 2);
  EXPECT_THROW(tk.extract_component(9), Error);
}

TEST(ToolkitTest, InvalidateClearsCaches) {
  Toolkit tk(path_graph(5));
  // invalidate() frees cached storage, so copy values out before calling it.
  const auto before = tk.components();
  tk.invalidate();
  EXPECT_EQ(tk.cache_stats().entries, 0);
  const auto& after = tk.components();
  EXPECT_EQ(before, after);  // recomputed, identical labeling
}

TEST(ToolkitTest, BetweennessCachedPerOptionSet) {
  Toolkit tk(star_graph(6));
  BetweennessOptions o;
  o.seed = 7;
  const auto& first = tk.betweenness(o);
  const auto& again = tk.betweenness(o);
  EXPECT_EQ(&first, &again);  // identical params hit the cache
  o.seed = 8;
  const auto& other = tk.betweenness(o);
  EXPECT_NE(&first, &other);  // distinct params compute fresh
}

TEST(ToolkitTest, ReplaceGraphNeverServesStaleResults) {
  // The regression guarded here: graph surgery must go through the single
  // replace_graph() invalidation path, so diameter/BC/components computed
  // for the old graph are never served against the new one.
  Toolkit tk(path_graph(50));
  EXPECT_EQ(tk.diameter().longest_distance, 49);
  EXPECT_GT(tk.betweenness().score[25], 0.0);
  EXPECT_EQ(tk.components_stats().num_components, 1);

  tk.replace_graph(star_graph(6));
  EXPECT_EQ(tk.graph().num_vertices(), 6);
  EXPECT_EQ(tk.diameter().longest_distance, 2);          // star, not path
  EXPECT_EQ(tk.betweenness().score.size(), 6u);          // sized to new graph
  EXPECT_DOUBLE_EQ(tk.betweenness().score[0], 20.0);     // hub of the star
  EXPECT_EQ(tk.components_stats().largest_size(), 6);
}

TEST(ToolkitTest, CacheBudgetEvictsAndRecomputesIdentically) {
  ToolkitOptions o;
  o.estimate_diameter_on_load = false;
  // A few KiB: enough for one or two betweenness results on a 64-vertex
  // graph (score vector ~512 bytes plus struct overhead), so a sweep of
  // distinct parameter sets must cycle the cache.
  o.cache_budget_bytes = 4 << 10;
  Toolkit tk(star_graph(64), o);

  BetweennessOptions bo;
  bo.seed = 1;
  const std::vector<double> reference = tk.betweenness(bo).score;
  for (int seed = 2; seed <= 8; ++seed) {
    BetweennessOptions other;
    other.seed = seed;
    tk.betweenness(other);
  }
  const auto mid = tk.cache_stats();
  EXPECT_GT(mid.evictions, 0);
  EXPECT_LE(mid.resident_bytes, mid.budget_bytes);

  // The seed=1 entry was evicted along the way; recomputation must give
  // the identical result.
  EXPECT_EQ(tk.betweenness(bo).score, reference);
  EXPECT_LE(tk.cache_stats().resident_bytes, mid.budget_bytes);
  ResultCache::release_thread_pins();
}

TEST(ToolkitTest, ReplaceGraphInvalidationWinsOverLru) {
  ToolkitOptions o;
  o.estimate_diameter_on_load = false;
  o.cache_budget_bytes = 64 << 10;  // roomy: nothing evicts on its own
  Toolkit tk(path_graph(50), o);
  EXPECT_EQ(tk.components_stats().num_components, 1);
  EXPECT_EQ(tk.diameter().longest_distance, 49);
  const auto before = tk.cache_stats();
  EXPECT_GT(before.resident_bytes, 0);

  // replace_graph() must clear everything at once — not rely on LRU
  // pressure — and reset residency without counting evictions.
  tk.replace_graph(star_graph(6));
  const auto after = tk.cache_stats();
  EXPECT_EQ(after.entries, 0);
  EXPECT_EQ(after.resident_bytes, 0);
  EXPECT_EQ(after.evictions, before.evictions);
  EXPECT_EQ(tk.diameter().longest_distance, 2);  // the new graph's answer
  ResultCache::release_thread_pins();
}

TEST(ToolkitTest, CacheStatsCountTraffic) {
  ToolkitOptions o;
  o.estimate_diameter_on_load = false;
  Toolkit tk(path_graph(8), o);
  EXPECT_EQ(tk.cache_stats().hits, 0);
  tk.components();  // miss
  tk.components();  // hit
  tk.components();  // hit
  const auto s = tk.cache_stats();
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.hits, 2);
}

TEST(ToolkitTest, LoadDimacsFile) {
  const auto g = path_graph(6);
  const std::string path = temp_path("gct_toolkit.dimacs");
  write_dimacs(g, path);
  Toolkit tk = Toolkit::load_dimacs(path);
  EXPECT_EQ(tk.graph(), g);
  std::remove(path.c_str());
}

TEST(ToolkitTest, LoadBinaryFile) {
  const auto g = star_graph(9);
  const std::string path = temp_path("gct_toolkit.bin");
  write_binary(g, path);
  Toolkit tk = Toolkit::load_binary(path);
  EXPECT_EQ(tk.graph(), g);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace graphct
