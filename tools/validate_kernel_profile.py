#!/usr/bin/env python3
"""Validate bench/kernel_profile output (one JSON object per line).

Usage: validate_kernel_profile.py FILE [--require KERNEL ...]

Checks, per line:
  * parses as a single JSON object,
  * carries the bench metadata (bench/scale/edge_factor) and the
    KernelProfile fields (kernel, seconds, threads, vertices, edges, teps,
    phases[]) with the right types,
  * teps is consistent with edges/seconds,
  * each phase has name/depth/calls/seconds/vertices/edges and depth-1
    phase seconds do not exceed the kernel total (10% slack — the same
    attribution bound the profiler guarantees).

With --require, additionally checks that each named kernel appears at
least once. Exits non-zero with a message on the first violation.
"""

import argparse
import json
import sys

NUMERIC = (int, float)

PROFILE_FIELDS = {
    "bench": str,
    "scale": int,
    "edge_factor": int,
    "kernel": str,
    "seconds": NUMERIC,
    "threads": int,
    "vertices": int,
    "edges": int,
    "teps": NUMERIC,
    "phases": list,
}

PHASE_FIELDS = {
    "name": str,
    "depth": int,
    "calls": int,
    "seconds": NUMERIC,
    "vertices": int,
    "edges": int,
}


def check_fields(obj, schema, where):
    for key, typ in schema.items():
        if key not in obj:
            raise ValueError(f"{where}: missing field '{key}'")
        if not isinstance(obj[key], typ) or isinstance(obj[key], bool):
            raise ValueError(
                f"{where}: field '{key}' has type "
                f"{type(obj[key]).__name__}, expected {typ}")


def validate_line(line, lineno):
    where = f"line {lineno}"
    obj = json.loads(line)
    if not isinstance(obj, dict):
        raise ValueError(f"{where}: not a JSON object")
    check_fields(obj, PROFILE_FIELDS, where)
    if obj["bench"] != "kernel_profile":
        raise ValueError(f"{where}: bench is '{obj['bench']}'")
    if obj["seconds"] < 0 or obj["threads"] < 1:
        raise ValueError(f"{where}: nonsensical seconds/threads")
    if obj["edges"] > 0 and obj["seconds"] > 0:
        expect = obj["edges"] / obj["seconds"]
        if abs(obj["teps"] - expect) > 0.01 * max(expect, 1.0):
            raise ValueError(
                f"{where}: teps {obj['teps']} inconsistent with "
                f"edges/seconds {expect}")
    depth1 = 0.0
    for i, phase in enumerate(obj["phases"]):
        check_fields(phase, PHASE_FIELDS, f"{where} phase {i}")
        if phase["depth"] < 1 or phase["calls"] < 1 or phase["seconds"] < 0:
            raise ValueError(f"{where} phase {i}: nonsensical stats")
        if phase["depth"] == 1:
            depth1 += phase["seconds"]
    if depth1 > obj["seconds"] * 1.10 + 1e-6:
        raise ValueError(
            f"{where}: depth-1 phase seconds {depth1} exceed kernel "
            f"total {obj['seconds']} by more than 10%")
    return obj["kernel"]


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("file")
    parser.add_argument("--require", nargs="*", default=[],
                        help="kernels that must each appear at least once")
    args = parser.parse_args()

    seen = []
    with open(args.file, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                seen.append(validate_line(line, lineno))
            except (ValueError, json.JSONDecodeError) as e:
                sys.exit(f"validate_kernel_profile: {e}")
    if not seen:
        sys.exit("validate_kernel_profile: no profile lines found")
    missing = [k for k in args.require if k not in seen]
    if missing:
        sys.exit(f"validate_kernel_profile: missing kernels: {missing} "
                 f"(saw {seen})")
    print(f"validate_kernel_profile: {len(seen)} profiles ok: {seen}")


if __name__ == "__main__":
    main()
