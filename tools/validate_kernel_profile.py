#!/usr/bin/env python3
"""Validate bench profile output (one JSON object per line).

Usage: validate_kernel_profile.py FILE [--require KERNEL ...]

Understands two row families, dispatched on the "bench" field:

kernel_profile rows (bench/kernel_profile):
  * carries the bench metadata (bench/scale/edge_factor, plus the optional
    hw_concurrency of the machine that produced the row) and the
    KernelProfile fields (kernel, seconds, threads, vertices, edges, teps,
    phases[]) with the right types,
  * teps is consistent with edges/seconds,
  * each phase has name/depth/calls/seconds/vertices/edges and depth-1
    phase seconds do not exceed the kernel total (10% slack — the same
    attribution bound the profiler guarantees).
  Each valid row contributes its kernel name to the --require pool.

storage_profile rows (bench/storage_profile):
  * a "pack" row with codec/blocks/payload_bytes/raw_adjacency_bytes/
    file_bytes/compression_ratio/cache_budget_bytes — the cache budget
    must be smaller than the raw adjacency bytes (out-of-core invariant),
  * "kernel" rows with seconds_mem/seconds_store/overhead plus the
    decode and block-cache counters; parity must be true.
  Rows contribute "storage-pack" / "storage-<kernel>" to the pool.

Rows whose threads exceed the recorded hw_concurrency are flagged with a
warning on stderr but do not fail validation: oversubscribed rows measure
scheduler contention rather than speedup, which is worth knowing when
reading thread-scaling numbers, but the row itself is well-formed.

With --require, additionally checks that each named entry appears at
least once. Exits non-zero with a message on the first violation.
"""

import argparse
import json
import sys

NUMERIC = (int, float)

PROFILE_FIELDS = {
    "bench": str,
    "scale": int,
    "edge_factor": int,
    "kernel": str,
    "seconds": NUMERIC,
    "threads": int,
    "vertices": int,
    "edges": int,
    "teps": NUMERIC,
    "phases": list,
}

PHASE_FIELDS = {
    "name": str,
    "depth": int,
    "calls": int,
    "seconds": NUMERIC,
    "vertices": int,
    "edges": int,
}

STORAGE_PACK_FIELDS = {
    "bench": str,
    "scale": int,
    "edge_factor": int,
    "row": str,
    "codec": str,
    "blocks": int,
    "payload_bytes": int,
    "raw_adjacency_bytes": int,
    "file_bytes": int,
    "compression_ratio": NUMERIC,
    "cache_budget_bytes": int,
    "pack_seconds": NUMERIC,
}

STORAGE_KERNEL_FIELDS = {
    "bench": str,
    "scale": int,
    "edge_factor": int,
    "row": str,
    "kernel": str,
    "threads": int,
    "seconds_mem": NUMERIC,
    "seconds_store": NUMERIC,
    "overhead": NUMERIC,
    "parity": bool,
    "blocks_decoded": int,
    "decoded_bytes": int,
    "cache_hits": int,
    "cache_misses": int,
    "cache_evictions": int,
}


# Optional per-row metadata: absent from rows produced before it was
# recorded, so validated only when present.
OPTIONAL_FIELDS = {
    "hw_concurrency": int,
}


def warn_if_oversubscribed(obj, where):
    """Flag (never fail) rows whose thread count exceeds the host's cores."""
    cores = obj.get("hw_concurrency", 0)
    threads = obj.get("threads", 0)
    if cores and threads > cores:
        print(f"validate_kernel_profile: WARNING {where}: threads={threads} "
              f"oversubscribes hw_concurrency={cores} — timings measure "
              f"contention, not scaling", file=sys.stderr)


def check_fields(obj, schema, where):
    for key, typ in OPTIONAL_FIELDS.items():
        if key in obj and (not isinstance(obj[key], typ)
                           or isinstance(obj[key], bool)):
            raise ValueError(
                f"{where}: field '{key}' has type "
                f"{type(obj[key]).__name__}, expected {typ}")
    for key, typ in schema.items():
        if key not in obj:
            raise ValueError(f"{where}: missing field '{key}'")
        ok = isinstance(obj[key], typ)
        if typ is not bool and isinstance(obj[key], bool):
            ok = False
        if not ok:
            raise ValueError(
                f"{where}: field '{key}' has type "
                f"{type(obj[key]).__name__}, expected {typ}")


def validate_kernel_profile(obj, where):
    check_fields(obj, PROFILE_FIELDS, where)
    if obj["seconds"] < 0 or obj["threads"] < 1:
        raise ValueError(f"{where}: nonsensical seconds/threads")
    warn_if_oversubscribed(obj, where)
    if obj["edges"] > 0 and obj["seconds"] > 0:
        expect = obj["edges"] / obj["seconds"]
        if abs(obj["teps"] - expect) > 0.01 * max(expect, 1.0):
            raise ValueError(
                f"{where}: teps {obj['teps']} inconsistent with "
                f"edges/seconds {expect}")
    depth1 = 0.0
    for i, phase in enumerate(obj["phases"]):
        check_fields(phase, PHASE_FIELDS, f"{where} phase {i}")
        if phase["depth"] < 1 or phase["calls"] < 1 or phase["seconds"] < 0:
            raise ValueError(f"{where} phase {i}: nonsensical stats")
        if phase["depth"] == 1:
            depth1 += phase["seconds"]
    if depth1 > obj["seconds"] * 1.10 + 1e-6:
        raise ValueError(
            f"{where}: depth-1 phase seconds {depth1} exceed kernel "
            f"total {obj['seconds']} by more than 10%")
    return obj["kernel"]


def validate_storage_profile(obj, where):
    row = obj.get("row")
    if row == "pack":
        check_fields(obj, STORAGE_PACK_FIELDS, where)
        if obj["blocks"] < 0 or obj["compression_ratio"] <= 0:
            raise ValueError(f"{where}: nonsensical pack stats")
        if obj["payload_bytes"] > 0 and \
                obj["cache_budget_bytes"] >= obj["raw_adjacency_bytes"]:
            raise ValueError(
                f"{where}: cache budget {obj['cache_budget_bytes']} is not "
                f"smaller than the raw adjacency "
                f"({obj['raw_adjacency_bytes']} bytes) — the smoke run must "
                f"exercise the out-of-core path")
        return "storage-pack"
    if row == "kernel":
        check_fields(obj, STORAGE_KERNEL_FIELDS, where)
        if obj["seconds_mem"] < 0 or obj["seconds_store"] < 0 \
                or obj["threads"] < 1:
            raise ValueError(f"{where}: nonsensical storage kernel stats")
        warn_if_oversubscribed(obj, where)
        if not obj["parity"]:
            raise ValueError(
                f"{where}: kernel '{obj['kernel']}' parity is false — "
                f"store-backed results differ from in-memory")
        return "storage-" + obj["kernel"]
    raise ValueError(f"{where}: unknown storage_profile row '{row}'")


def validate_line(line, lineno):
    where = f"line {lineno}"
    obj = json.loads(line)
    if not isinstance(obj, dict):
        raise ValueError(f"{where}: not a JSON object")
    bench = obj.get("bench")
    if bench == "kernel_profile":
        return validate_kernel_profile(obj, where)
    if bench == "storage_profile":
        return validate_storage_profile(obj, where)
    raise ValueError(f"{where}: bench is '{bench}'")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("file")
    parser.add_argument("--require", nargs="*", default=[],
                        help="entries that must each appear at least once "
                             "(kernel names, or storage-pack/storage-<k>)")
    args = parser.parse_args()

    seen = []
    with open(args.file, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                seen.append(validate_line(line, lineno))
            except (ValueError, json.JSONDecodeError) as e:
                sys.exit(f"validate_kernel_profile: {e}")
    if not seen:
        sys.exit("validate_kernel_profile: no profile lines found")
    missing = [k for k in args.require if k not in seen]
    if missing:
        sys.exit(f"validate_kernel_profile: missing kernels: {missing} "
                 f"(saw {seen})")
    print(f"validate_kernel_profile: {len(seen)} profiles ok: {seen}")


if __name__ == "__main__":
    main()
