#!/usr/bin/env python3
"""Fail when a kernel's TEPS regresses against a checked-in baseline.

Usage: check_teps_floor.py CURRENT BASELINE [--max-regression 0.30]
                           [--threads 1]

Both files are bench/kernel_profile output (one JSON object per line, the
format validate_kernel_profile.py checks). Profiles are matched by
(kernel, threads); kernels present in only one file are reported but do
not fail the check (the baseline may predate a kernel, and CI may run a
subset). By default only threads=1 rows are compared — single-thread TEPS
is the schedule-independent number; oversubscribed multi-thread rows are
too noisy for a hard floor. Pass --threads 0 to compare every row.

A kernel fails when current_teps < baseline_teps * (1 - max_regression).
Exits non-zero listing every failing kernel.
"""

import argparse
import json
import sys


def load_profiles(path, threads_filter):
    """Return {(kernel, threads): teps}, keeping the best row per key."""
    out = {}
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                sys.exit(f"check_teps_floor: {path} line {lineno}: {e}")
            if obj.get("bench") != "kernel_profile":
                continue
            threads = obj.get("threads", 0)
            if threads_filter and threads != threads_filter:
                continue
            key = (obj["kernel"], threads)
            teps = float(obj.get("teps", 0.0))
            if teps > out.get(key, 0.0):
                out[key] = teps
    return out


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("current", help="fresh kernel_profile output")
    parser.add_argument("baseline", help="checked-in reference run")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed fractional TEPS drop (default 0.30)")
    parser.add_argument("--threads", type=int, default=1,
                        help="compare only rows with this thread count "
                             "(0 = all rows)")
    args = parser.parse_args()

    current = load_profiles(args.current, args.threads)
    baseline = load_profiles(args.baseline, args.threads)
    if not current:
        sys.exit("check_teps_floor: no matching profiles in current file")
    if not baseline:
        sys.exit("check_teps_floor: no matching profiles in baseline file")

    failures = []
    for key in sorted(baseline):
        kernel, threads = key
        if key not in current:
            print(f"  {kernel} (t={threads}): in baseline only — skipped")
            continue
        floor = baseline[key] * (1.0 - args.max_regression)
        ratio = current[key] / baseline[key] if baseline[key] > 0 else 1.0
        status = "ok" if current[key] >= floor else "FAIL"
        print(f"  {kernel} (t={threads}): {current[key]:.3e} vs baseline "
              f"{baseline[key]:.3e} ({ratio:.2f}x) {status}")
        if current[key] < floor:
            failures.append(f"{kernel} (t={threads})")
    for key in sorted(set(current) - set(baseline)):
        print(f"  {key[0]} (t={key[1]}): new kernel, no baseline — skipped")

    if failures:
        sys.exit(f"check_teps_floor: TEPS regressed more than "
                 f"{args.max_regression:.0%}: {failures}")
    print(f"check_teps_floor: {len(baseline)} kernels within "
          f"{args.max_regression:.0%} of baseline")


if __name__ == "__main__":
    main()
