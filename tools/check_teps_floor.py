#!/usr/bin/env python3
"""Fail when a kernel's TEPS regresses against a checked-in baseline.

Usage: check_teps_floor.py CURRENT BASELINE [--max-regression 0.30]
                           [--threads 1]

Both files are bench/kernel_profile output (one JSON object per line, the
format validate_kernel_profile.py checks). Profiles are matched by
(kernel, threads); kernels present in only one file are reported but do
not fail the check (the baseline may predate a kernel, and CI may run a
subset). By default only threads=1 rows are compared — single-thread TEPS
is the schedule-independent number; oversubscribed multi-thread rows are
too noisy for a hard floor. Pass --threads 0 to compare every row.

A kernel fails when current_teps < baseline_teps * (1 - max_regression),
or when it has an entry in ABSOLUTE_MIN_TEPS and falls below that. The
absolute floors encode deliberate engine upgrades: after the hybrid
direction-optimizing Brandes rework, bc must hold >= 2x the pre-rework
63.5 MTEPS single-thread baseline at scale 16 — merely "not regressing"
against a refreshed baseline would let the speedup quietly erode.
Exits non-zero listing every failing kernel.
"""

import argparse
import json
import sys

# kernel -> minimum acceptable TEPS at threads=1 (scale-16 reference run).
# Only enforced for rows whose thread count is 1; multi-thread rows stay
# ratio-checked only.
ABSOLUTE_MIN_TEPS = {
    "bc": 127.0e6,  # 2x the 63.5 MTEPS top-down push engine this replaced
}


def load_profiles(path, threads_filter):
    """Return {(kernel, threads): teps}, keeping the best row per key."""
    out = {}
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                sys.exit(f"check_teps_floor: {path} line {lineno}: {e}")
            if obj.get("bench") != "kernel_profile":
                continue
            threads = obj.get("threads", 0)
            if threads_filter and threads != threads_filter:
                continue
            key = (obj["kernel"], threads)
            teps = float(obj.get("teps", 0.0))
            if teps > out.get(key, 0.0):
                out[key] = teps
    return out


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("current", help="fresh kernel_profile output")
    parser.add_argument("baseline", help="checked-in reference run")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed fractional TEPS drop (default 0.30)")
    parser.add_argument("--threads", type=int, default=1,
                        help="compare only rows with this thread count "
                             "(0 = all rows)")
    args = parser.parse_args()

    current = load_profiles(args.current, args.threads)
    baseline = load_profiles(args.baseline, args.threads)
    if not current:
        sys.exit("check_teps_floor: no matching profiles in current file")
    if not baseline:
        sys.exit("check_teps_floor: no matching profiles in baseline file")

    failures = []
    for key in sorted(baseline):
        kernel, threads = key
        if key not in current:
            print(f"  {kernel} (t={threads}): in baseline only — skipped")
            continue
        floor = baseline[key] * (1.0 - args.max_regression)
        if threads == 1 and kernel in ABSOLUTE_MIN_TEPS:
            floor = max(floor, ABSOLUTE_MIN_TEPS[kernel])
        ratio = current[key] / baseline[key] if baseline[key] > 0 else 1.0
        status = "ok" if current[key] >= floor else "FAIL"
        print(f"  {kernel} (t={threads}): {current[key]:.3e} vs baseline "
              f"{baseline[key]:.3e} ({ratio:.2f}x, floor {floor:.3e}) "
              f"{status}")
        if current[key] < floor:
            failures.append(f"{kernel} (t={threads})")
    for key in sorted(set(current) - set(baseline)):
        kernel, threads = key
        floor = ABSOLUTE_MIN_TEPS.get(kernel) if threads == 1 else None
        if floor is not None:
            status = "ok" if current[key] >= floor else "FAIL"
            print(f"  {kernel} (t={threads}): {current[key]:.3e} vs absolute "
                  f"floor {floor:.3e} {status}")
            if current[key] < floor:
                failures.append(f"{kernel} (t={threads})")
        else:
            print(f"  {kernel} (t={threads}): new kernel, no baseline — "
                  f"skipped")

    if failures:
        sys.exit(f"check_teps_floor: TEPS below floor (regression > "
                 f"{args.max_regression:.0%} or under an absolute minimum): "
                 f"{failures}")
    print(f"check_teps_floor: {len(baseline)} kernels within "
          f"{args.max_regression:.0%} of baseline")


if __name__ == "__main__":
    main()
