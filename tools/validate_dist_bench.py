#!/usr/bin/env python3
"""Validate bench/dist_profile output (one JSON object per line).

Usage: validate_dist_bench.py FILE [--workers 1 2 4]

Checks the two row kinds:

  * partition (one per worker count): edge_cut_fraction in [0, 1] and 0
    for a single block; imbalance >= 1 (a max/mean ratio);
  * kernel (bfs, components, pagerank per worker count): parity == true
    — bfs and components must match the single-process kernels exactly,
    pagerank within max_abs_diff <= 1e-9 — plus sane accounting
    (seconds > 0, steps > 0, messages/bytes sent > 0).

Exits non-zero with a message on the first violation — this is the CI
gate for the distributed substrate's parity guarantee.
"""

import argparse
import json
import sys

NUMERIC = (int, float)

KERNELS = ("bfs", "components", "pagerank")


def fail(msg):
    print(f"validate_dist_bench: {msg}", file=sys.stderr)
    sys.exit(1)


def need(row, field, types=NUMERIC):
    if field not in row:
        fail(f"row {row.get('row')!r} missing field {field!r}: {row}")
    if not isinstance(row[field], types):
        fail(f"field {field!r} has type {type(row[field]).__name__}: {row}")
    return row[field]


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("file")
    ap.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    args = ap.parse_args()

    rows = []
    with open(args.file, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as e:
                fail(f"line {lineno} is not valid JSON: {e}")

    rows = [r for r in rows if r.get("bench") == "dist_profile"]
    if not rows:
        fail("no dist_profile rows found")

    partitions = {need(r, "workers", int): r
                  for r in rows if r.get("row") == "partition"}
    for w in args.workers:
        r = partitions.get(w)
        if r is None:
            fail(f"missing partition row for workers={w}")
        cut = need(r, "edge_cut_fraction")
        if not 0.0 <= cut <= 1.0:
            fail(f"edge_cut_fraction out of [0, 1]: {r}")
        if w == 1 and cut != 0.0:
            fail(f"a single block cannot cut edges: {r}")
        if need(r, "imbalance") < 1.0:
            fail(f"imbalance is max/mean and cannot be < 1: {r}")

    kernel_rows = {(r.get("kernel"), need(r, "workers", int)): r
                   for r in rows if r.get("row") == "kernel"}
    for kernel in KERNELS:
        for w in args.workers:
            r = kernel_rows.get((kernel, w))
            if r is None:
                fail(f"missing kernel row for {kernel} workers={w}")
            if need(r, "parity", bool) is not True:
                fail(f"parity failure — distributed {kernel} diverged: {r}")
            if kernel == "pagerank" and need(r, "max_abs_diff") > 1e-9:
                fail(f"pagerank drifted past 1e-9 per vertex: {r}")
            if need(r, "seconds") <= 0:
                fail(f"seconds must be positive: {r}")
            if need(r, "steps", int) <= 0:
                fail(f"no supersteps driven: {r}")
            if need(r, "messages_sent", int) <= 0:
                fail(f"no messages sent: {r}")
            if need(r, "bytes_sent", int) <= 0:
                fail(f"no bytes sent: {r}")

    print(
        f"validate_dist_bench: OK ({len(partitions)} partition rows, "
        f"{len(kernel_rows)} kernel rows, workers {sorted(partitions)})"
    )


if __name__ == "__main__":
    main()
