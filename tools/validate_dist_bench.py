#!/usr/bin/env python3
"""Validate bench/dist_profile output (one JSON object per line).

Usage: validate_dist_bench.py FILE [--workers 1 2 4]

Checks the three row kinds:

  * partition (one per worker count): edge_cut_fraction in [0, 1] and 0
    for a single block; imbalance >= 1 (a max/mean ratio);
  * kernel (bfs, components, pagerank, bc per worker count): parity ==
    true — bfs, components, and bc must match the single-process kernels
    exactly (bc bitwise: max_abs_diff must be 0), pagerank within
    max_abs_diff <= 1e-9 — plus sane accounting (seconds > 0, steps > 0,
    messages/bytes sent > 0);
  * bc_overlap (one per worker count): the overlapped exchange engine
    vs the lockstep baseline on the same bc job — parity must hold and
    both timings must be positive. Overlap slower than lockstep is a
    warning, not a failure: on a host where workers oversubscribe
    hw_concurrency nothing truly runs concurrently, so the two engines
    are expected to be within noise of each other (see
    docs/DISTRIBUTED.md).

Rows whose workers * worker_threads exceed the recorded hw_concurrency
are flagged with a warning on stderr but do not fail validation:
oversubscribed rows measure protocol overhead and contention, not
speedup.

Exits non-zero with a message on the first violation — this is the CI
gate for the distributed substrate's parity guarantee.
"""

import argparse
import json
import sys

NUMERIC = (int, float)

KERNELS = ("bfs", "components", "pagerank", "bc")


def fail(msg):
    print(f"validate_dist_bench: {msg}", file=sys.stderr)
    sys.exit(1)


def warn(msg):
    print(f"validate_dist_bench: WARNING {msg}", file=sys.stderr)


def need(row, field, types=NUMERIC):
    if field not in row:
        fail(f"row {row.get('row')!r} missing field {field!r}: {row}")
    if not isinstance(row[field], types):
        fail(f"field {field!r} has type {type(row[field]).__name__}: {row}")
    return row[field]


def oversubscribed(row):
    """True when the row's worker processes (times their per-worker OpenMP
    teams) exceed the recorded core count.  Older bench outputs lack the
    meta fields; treat those as not oversubscribed."""
    cores = row.get("hw_concurrency", 0)
    workers = row.get("workers", 0)
    threads = row.get("worker_threads", 1)
    return cores > 0 and workers * threads > cores


def warn_if_oversubscribed(row, where):
    if oversubscribed(row):
        warn(
            f"{where}: workers={row['workers']} x "
            f"worker_threads={row.get('worker_threads', 1)} oversubscribes "
            f"hw_concurrency={row['hw_concurrency']} — timings measure "
            f"protocol overhead, not speedup"
        )


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("file")
    ap.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    args = ap.parse_args()

    rows = []
    with open(args.file, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as e:
                fail(f"line {lineno} is not valid JSON: {e}")

    rows = [r for r in rows if r.get("bench") == "dist_profile"]
    if not rows:
        fail("no dist_profile rows found")

    partitions = {need(r, "workers", int): r
                  for r in rows if r.get("row") == "partition"}
    for w in args.workers:
        r = partitions.get(w)
        if r is None:
            fail(f"missing partition row for workers={w}")
        cut = need(r, "edge_cut_fraction")
        if not 0.0 <= cut <= 1.0:
            fail(f"edge_cut_fraction out of [0, 1]: {r}")
        if w == 1 and cut != 0.0:
            fail(f"a single block cannot cut edges: {r}")
        if need(r, "imbalance") < 1.0:
            fail(f"imbalance is max/mean and cannot be < 1: {r}")

    kernel_rows = {(r.get("kernel"), need(r, "workers", int)): r
                   for r in rows if r.get("row") == "kernel"}
    for kernel in KERNELS:
        for w in args.workers:
            r = kernel_rows.get((kernel, w))
            if r is None:
                fail(f"missing kernel row for {kernel} workers={w}")
            if need(r, "parity", bool) is not True:
                fail(f"parity failure — distributed {kernel} diverged: {r}")
            if kernel == "pagerank" and need(r, "max_abs_diff") > 1e-9:
                fail(f"pagerank drifted past 1e-9 per vertex: {r}")
            if kernel == "bc" and need(r, "max_abs_diff") != 0:
                fail(f"bc parity is bitwise — any drift is a failure: {r}")
            if need(r, "seconds") <= 0:
                fail(f"seconds must be positive: {r}")
            if need(r, "steps", int) <= 0:
                fail(f"no supersteps driven: {r}")
            if need(r, "messages_sent", int) <= 0:
                fail(f"no messages sent: {r}")
            if need(r, "bytes_sent", int) <= 0:
                fail(f"no bytes sent: {r}")
            warn_if_oversubscribed(r, f"kernel {kernel} workers={w}")

    overlap_rows = {need(r, "workers", int): r
                    for r in rows if r.get("row") == "bc_overlap"}
    for w in args.workers:
        r = overlap_rows.get(w)
        if r is None:
            fail(f"missing bc_overlap row for workers={w}")
        if need(r, "parity", bool) is not True:
            fail(f"lockstep bc diverged from the reference: {r}")
        so = need(r, "seconds_overlap")
        sl = need(r, "seconds_lockstep")
        if so <= 0 or sl <= 0:
            fail(f"bc_overlap timings must be positive: {r}")
        if so > sl:
            if oversubscribed(r) or w < 2:
                warn(
                    f"bc_overlap workers={w}: overlap ({so:.6f}s) slower "
                    f"than lockstep ({sl:.6f}s) — expected noise on an "
                    f"oversubscribed/single-worker run"
                )
            else:
                warn(
                    f"bc_overlap workers={w}: overlap ({so:.6f}s) slower "
                    f"than lockstep ({sl:.6f}s) with spare cores — worth "
                    f"investigating"
                )

    print(
        f"validate_dist_bench: OK ({len(partitions)} partition rows, "
        f"{len(kernel_rows)} kernel rows, {len(overlap_rows)} bc_overlap "
        f"rows, workers {sorted(partitions)})"
    )


if __name__ == "__main__":
    main()
