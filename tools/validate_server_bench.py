#!/usr/bin/env python3
"""Validate bench/server_throughput --sustained output (one JSON/line).

Usage: validate_server_bench.py FILE [--min-sessions N]

Checks the four sustained-mode row kinds:

  * server_sustained (mode cached AND uncached): sessions >= N (default
    200), dropped == 0, p50_ms <= p99_ms, qps > 0;
  * server_sustained_admission: busy > 0 (pipelining past the backlog
    must shed) and ok > 0 (admitted work still completes);
  * server_sustained_capacity: refused > 0, accepted == cap (the cap is
    enforced exactly, not approximately);
  * server_sustained_cache: resident_max_bytes <= budget_bytes and
    evictions > 0 (the cache actually cycled under budget).

Exits non-zero with a message on the first violation — this is the CI
gate for the epoll serving core's overload behavior.
"""

import argparse
import json
import sys

NUMERIC = (int, float)


def fail(msg):
    print(f"validate_server_bench: {msg}", file=sys.stderr)
    sys.exit(1)


def need(row, field, types=NUMERIC):
    if field not in row:
        fail(f"row {row.get('bench')!r} missing field {field!r}: {row}")
    if not isinstance(row[field], types):
        fail(f"field {field!r} has type {type(row[field]).__name__}: {row}")
    return row[field]


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("file")
    ap.add_argument("--min-sessions", type=int, default=200)
    args = ap.parse_args()

    rows = []
    with open(args.file, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as e:
                fail(f"line {lineno} is not valid JSON: {e}")

    sustained = [r for r in rows if r.get("bench") == "server_sustained"]
    modes = {r.get("mode") for r in sustained}
    if not {"cached", "uncached"} <= modes:
        fail(f"need server_sustained rows for cached AND uncached, got {modes}")
    for r in sustained:
        sessions = need(r, "sessions", int)
        if sessions < args.min_sessions:
            fail(f"sessions={sessions} < required {args.min_sessions}: {r}")
        if need(r, "dropped", int) != 0:
            fail(f"dropped connections below the admission limit: {r}")
        p50, p99 = need(r, "p50_ms"), need(r, "p99_ms")
        if p50 > p99:
            fail(f"p50_ms={p50} > p99_ms={p99}: {r}")
        if need(r, "qps") <= 0:
            fail(f"qps must be positive: {r}")
        if need(r, "requests", int) <= 0:
            fail(f"no requests completed: {r}")

    adm = [r for r in rows if r.get("bench") == "server_sustained_admission"]
    if not adm:
        fail("missing server_sustained_admission row")
    for r in adm:
        if need(r, "busy", int) <= 0:
            fail(f"pipelining past the backlog shed nothing: {r}")
        if need(r, "ok", int) <= 0:
            fail(f"no admitted request completed: {r}")

    cap_rows = [r for r in rows if r.get("bench") == "server_sustained_capacity"]
    if not cap_rows:
        fail("missing server_sustained_capacity row")
    for r in cap_rows:
        if need(r, "refused", int) <= 0:
            fail(f"no connection was refused above the cap: {r}")
        if need(r, "accepted", int) != need(r, "cap", int):
            fail(f"accepted != connection cap: {r}")

    cache = [r for r in rows if r.get("bench") == "server_sustained_cache"]
    if not cache:
        fail("missing server_sustained_cache row")
    for r in cache:
        budget = need(r, "budget_bytes", int)
        resident = need(r, "resident_max_bytes")
        if resident > budget:
            fail(f"resident {resident} exceeded budget {budget}: {r}")
        if need(r, "evictions", int) <= 0:
            fail(f"no evictions under a {budget}-byte budget: {r}")

    print(
        f"validate_server_bench: OK ({len(sustained)} sustained rows, "
        f"{len(adm)} admission, {len(cap_rows)} capacity, {len(cache)} cache)"
    )


if __name__ == "__main__":
    main()
