/// \file graphct.cpp
/// The `graphct` command-line tool: the toolkit's kernels, generators, and
/// format converters behind one binary, for analysts who want the paper's
/// §IV workflow without writing C++.
///
///   graphct info <graph>                     # counts, diameter estimate
///   graphct characterize <graph>             # every cached kernel
///   graphct bc <graph> [--sources N] [--k K] [--mode fine|coarse|auto]
///              [--budget-mb M] [--out scores.txt]
///   graphct components <graph> [--workers N] [--out labels.txt]
///   graphct pagerank <graph> [--workers N] [--out scores.txt]
///   graphct partition <graph> <N>            # 1-D block partition report
///   graphct worker [--port P]                # serve one dist worker
///   graphct convert <in> <out>               # formats by extension
///   graphct generate rmat <scale> <edge factor> <out>
///   graphct script <file.gct>                # run an analyst script
///   graphct serve <port> | serve --stdio     # run the graphctd server
///   graphct client <port>                    # line client for a server
///
/// The global --threads N flag pins OpenMP parallelism for any command, and
/// --profile prints a per-kernel phase-breakdown table (wall time, thread
/// count, TEPS) after the command finishes.
/// Graph files are selected by extension: .dimacs/.gr (DIMACS), .bin
/// (GraphCT binary), .el/.txt (edge list), .metis/.graph (METIS).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>

#include "algs/assortativity.hpp"
#include "algs/bridges.hpp"
#include "algs/degree.hpp"
#include "algs/kcore.hpp"
#include "algs/ranking.hpp"
#include "algs/scc.hpp"
#include "core/toolkit.hpp"
#include "dist/coordinator.hpp"
#include "dist/local_worker_set.hpp"
#include "dist/partition.hpp"
#include "dist/worker.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "graph/io_binary.hpp"
#include "graph/io_dimacs.hpp"
#include "graph/io_edgelist.hpp"
#include "graph/io_metis.hpp"
#include "obs/trace.hpp"
#include "script/interpreter.hpp"
#include "server/server.hpp"
#include "storage/graph_store.hpp"
#include "storage/packed_writer.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace graphct;

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

CsrGraph load_graph(const std::string& path) {
  return server::GraphRegistry::load_graph_file(path);
}

bool is_packed(const std::string& path) {
  return ends_with(path, ".gctp") || storage::GraphStore::sniff(path);
}

/// Open `path` as a Toolkit, mmap-backed when it is a packed file (by
/// .gctp extension or magic sniff), in-memory otherwise. Kernels that run
/// over GraphView (bc, components, pagerank, ...) work over either.
Toolkit load_toolkit(const std::string& path) {
  if (is_packed(path)) return Toolkit::load_packed(path);
  return Toolkit(load_graph(path));
}

void save_graph(const CsrGraph& g, const std::string& path) {
  if (ends_with(path, ".bin")) {
    write_binary(g, path);
  } else if (ends_with(path, ".metis") || ends_with(path, ".graph")) {
    write_metis(g, path);
  } else if (ends_with(path, ".el") || ends_with(path, ".txt")) {
    write_edge_list(g, path);
  } else {
    write_dimacs(g, path);
  }
}

template <typename T>
void write_scores(const std::string& path, const std::vector<T>& values) {
  std::ofstream f(path);
  GCT_CHECK(f.good(), "cannot open output file: " + path);
  for (std::size_t v = 0; v < values.size(); ++v) {
    f << v << ' ' << values[v] << '\n';
  }
}

int usage() {
  std::cerr
      << "usage: graphct [--threads N] [--profile] <command> ...\n"
         "  info <graph>                         counts + diameter estimate\n"
         "  characterize <graph>                 run every kernel\n"
         "  bc <graph> [--sources N] [--k K] [--mode fine|coarse|auto]\n"
         "     [--budget-mb M] [--workers N] [--out f]\n"
         "                                       (k-)betweenness\n"
         "  components <graph> [--workers N] [--out f]\n"
         "                                       connected components\n"
         "  pagerank <graph> [--workers N] [--out f]\n"
         "                                       PageRank scores\n"
         "  partition <graph> <N>                1-D block partition report\n"
         "  worker [--port P] [--threads K] [--fail-after K]\n"
         "                                       serve one dist worker\n"
         "  convert <in> <out>                   convert between formats\n"
         "  pack <in> <out.gctp> [--codec none|varint] [--block-kb N]\n"
         "                                       write block-compressed CSR\n"
         "  generate rmat <scale> <ef> <out>     synthesize an R-MAT graph\n"
         "  script <file.gct>                    run an analyst script\n"
         "  serve <port> | serve --stdio [--workers N]\n"
         "     [--max-conns N] [--max-queued N] [--max-queued-per-session N]\n"
         "     [--cache-budget-mb M] [--idle-timeout S] [--read-timeout S]\n"
         "     [--drain-timeout S]                 run graphctd\n"
         "  client <port>                        connect to a graphctd\n";
  return 2;
}

int cmd_serve(const Cli& cli) {
  server::ServerOptions opts;
  opts.workers = static_cast<int>(cli.get("workers", std::int64_t{4}));
  opts.interpreter.timings = cli.has("timings");
  server::ServerLimits& lim = opts.limits;
  lim.max_connections = static_cast<int>(
      cli.get("max-conns", std::int64_t{lim.max_connections}));
  lim.max_queued_jobs = static_cast<int>(
      cli.get("max-queued", std::int64_t{lim.max_queued_jobs}));
  lim.max_queued_per_session = static_cast<int>(cli.get(
      "max-queued-per-session", std::int64_t{lim.max_queued_per_session}));
  lim.cache_budget_bytes =
      static_cast<std::uint64_t>(cli.get("cache-budget-mb", std::int64_t{0}))
      << 20;
  lim.read_timeout_seconds = cli.get("read-timeout", 0.0);
  lim.idle_timeout_seconds = cli.get("idle-timeout", 0.0);
  lim.drain_timeout_seconds =
      cli.get("drain-timeout", lim.drain_timeout_seconds);
  server::Server srv(opts);
  if (cli.has("stdio")) {
    srv.serve_stream(std::cin, std::cout);
    return 0;
  }
  GCT_CHECK(!cli.positional().empty(), "serve: need a port or --stdio");
  const int port = static_cast<int>(std::stoll(cli.positional()[0]));
  return srv.serve_tcp(port, [&srv, &opts] {
    std::cerr << "graphctd listening on 127.0.0.1:" << srv.port() << " ("
              << opts.workers << " workers, " << opts.limits.max_connections
              << " connection cap)\n";
  });
}

int cmd_client(const Cli& cli) {
  GCT_CHECK(!cli.positional().empty(), "client: need a port");
  const int port = static_cast<int>(std::stoll(cli.positional()[0]));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  GCT_CHECK(fd >= 0, "client: cannot create socket");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throw Error("client: cannot connect to 127.0.0.1:" + std::to_string(port));
  }

  // Pump: print server lines as they arrive; forward stdin lines. Response
  // framing is line-oriented, so interleaving a dumb pump is fine for an
  // interactive client.
  std::string buffer;
  char chunk[4096];
  auto drain = [&](bool wait_for_terminator) {
    int pending_payload = -1;  // payload lines owed by a gct/1 header
    for (;;) {
      std::size_t nl;
      while ((nl = buffer.find('\n')) != std::string::npos) {
        const std::string line = buffer.substr(0, nl);
        buffer.erase(0, nl + 1);
        std::cout << line << "\n" << std::flush;
        if (pending_payload >= 0) {
          if (--pending_payload < 0) return true;
          continue;
        }
        if (line.rfind("gct/1 ", 0) == 0) {
          // Framed v1 reply: the header declares its payload length, so
          // count lines instead of scanning for a terminator.
          const std::size_t pos = line.find(" lines=");
          const int n =
              pos == std::string::npos ? 0 : std::atoi(line.c_str() + pos + 7);
          if (n <= 0) return true;
          pending_payload = n - 1;
          continue;
        }
        if (line.rfind("ok", 0) == 0 || line.rfind("error", 0) == 0 ||
            line.rfind("graphctd", 0) == 0) {
          return true;
        }
      }
      if (!wait_for_terminator) return true;
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
  };

  if (!drain(true)) {  // banner
    ::close(fd);
    return 1;
  }
  std::string line;
  while (std::getline(std::cin, line)) {
    line += '\n';
    std::size_t sent = 0;
    while (sent < line.size()) {
      const ssize_t n = ::send(fd, line.data() + sent, line.size() - sent, 0);
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
    if (line == "quit\n" || line == "exit\n") break;
    if (!drain(true)) break;  // echo one full response
  }
  ::close(fd);
  return 0;
}

int cmd_info(const std::string& path) {
  Timer t;
  Toolkit tk = load_toolkit(path);
  const auto g = tk.view();
  const auto& d = tk.diameter();
  TextTable table({"property", "value"});
  table.add_row({"file", path});
  table.add_row({"vertices", with_commas(g.num_vertices())});
  table.add_row({"edges", with_commas(g.num_edges())});
  table.add_row({"self-loops", with_commas(g.num_self_loops())});
  table.add_row({"directed", g.directed() ? "yes" : "no"});
  if (const auto* store = tk.store()) {
    table.add_row({"backend", store->codec() == storage::Codec::kVarint
                                  ? "packed (varint)"
                                  : "packed (pass-through)"});
    table.add_row({"blocks", with_commas(store->num_blocks())});
    table.add_row(
        {"payload",
         strf("%.1f MiB (%.2fx vs raw adjacency)",
              static_cast<double>(store->packed_payload_bytes()) / 1048576.0,
              store->compression_ratio())});
    table.add_row(
        {"block cache budget",
         strf("%.1f MiB/thread",
              static_cast<double>(store->cache_budget_bytes()) / 1048576.0)});
  } else {
    table.add_row(
        {"memory",
         strf("%.1f MiB",
              static_cast<double>(tk.graph().memory_bytes()) / 1048576.0)});
  }
  table.add_row({"diameter estimate",
                 strf("%lld (longest observed %lld)",
                      static_cast<long long>(d.estimate),
                      static_cast<long long>(d.longest_distance))});
  table.add_row({"load+estimate time", format_duration(t.seconds())});
  std::cout << table.render();
  return 0;
}

int cmd_pack(const Cli& cli) {
  GCT_CHECK(cli.positional().size() >= 2, "pack: need <in> <out.gctp>");
  storage::PackOptions opts;
  const auto codec = cli.get("codec", std::string("varint"));
  if (codec == "none") {
    opts.codec = storage::Codec::kNone;
  } else if (codec == "varint") {
    opts.codec = storage::Codec::kVarint;
  } else {
    throw Error("pack: --codec must be none or varint (got '" + codec + "')");
  }
  const auto block_kb = cli.get("block-kb", std::int64_t{64});
  GCT_CHECK(block_kb > 0, "pack: --block-kb must be positive");
  opts.block_target_bytes = static_cast<std::uint64_t>(block_kb) << 10;
  Timer t;
  CsrGraph g = load_graph(cli.positional()[0]);
  g.sort_adjacency();  // delta-gap encoding needs ascending neighbor lists
  const auto res = storage::pack_graph(g, cli.positional()[1], opts);
  std::cout << "packed " << cli.positional()[1] << ": "
            << with_commas(g.num_vertices()) << " vertices, "
            << with_commas(g.num_edges()) << " edges, "
            << with_commas(res.num_blocks) << " blocks\n"
            << strf("payload %.1f MiB vs raw %.1f MiB (ratio %.2fx), "
                    "file %.1f MiB, %s\n",
                    static_cast<double>(res.payload_bytes) / 1048576.0,
                    static_cast<double>(res.raw_adjacency_bytes) / 1048576.0,
                    res.compression_ratio,
                    static_cast<double>(res.file_bytes) / 1048576.0,
                    format_duration(t.seconds()).c_str());
  return 0;
}

int cmd_characterize(const std::string& path) {
  Toolkit tk(load_graph(path));
  TextTable table({"kernel", "result"});
  const auto& ds = tk.degree_stats();
  table.add_row({"degrees", strf("mean %.2f, variance %.1f, max %lld",
                                 ds.mean, ds.variance,
                                 static_cast<long long>(ds.max))});
  const auto& cs = tk.components_stats();
  table.add_row({"components",
                 strf("%s (largest %s)", with_commas(cs.num_components).c_str(),
                      with_commas(cs.largest_size()).c_str())});
  if (!tk.graph().directed()) {
    const auto& cl = tk.clustering();
    table.add_row({"clustering", strf("%s triangles, global %.4f",
                                      with_commas(cl.total_triangles).c_str(),
                                      cl.global_clustering)});
    table.add_row({"degeneracy",
                   std::to_string(degeneracy(tk.core_numbers()))});
    const auto& comm = tk.communities();
    table.add_row({"communities",
                   strf("%s (modularity %.3f)",
                        with_commas(comm.num_communities).c_str(),
                        tk.community_modularity())});
    const auto pr = tk.pagerank();
    table.add_row({"pagerank", strf("%lld iterations%s",
                                    static_cast<long long>(pr.iterations),
                                    pr.converged ? "" : " (not converged)")});
    table.add_row({"assortativity",
                   strf("%.3f", degree_assortativity(tk.graph()))});
    const auto cut = find_cut_structure(tk.graph());
    table.add_row({"cut structure",
                   strf("%s bridges, %s articulation points",
                        with_commas(static_cast<long long>(
                            cut.bridges.size())).c_str(),
                        with_commas(cut.num_articulation_points()).c_str())});
  } else {
    const auto scc = strongly_connected_components(tk.graph());
    table.add_row({"strongly connected",
                   strf("%s SCCs (%s of size >= 2)",
                        with_commas(count_components(
                            std::span<const vid>(scc.data(), scc.size())))
                            .c_str(),
                        with_commas(count_components(
                            std::span<const vid>(scc.data(), scc.size()), 2))
                            .c_str())});
  }
  std::cout << table.render();
  return 0;
}

std::unique_ptr<dist::LocalWorkerSet> fork_workers(int workers,
                                                   const char* cmd);

int cmd_bc(const Cli& cli) {
  GCT_CHECK(!cli.positional().empty(), "bc: missing graph file");
  const int workers = static_cast<int>(cli.get("workers", std::int64_t{0}));
  auto set = fork_workers(workers, "bc");  // before OpenMP spins up
  Toolkit tk = load_toolkit(cli.positional()[0]);
  const auto k = cli.get("k", std::int64_t{0});
  GCT_CHECK(k == 0 || workers == 0,
            "bc: --workers applies to plain betweenness only (not --k)");
  const auto sources = cli.get("sources", std::int64_t{kNoVertex});
  const auto mode = cli.get("mode", std::string("auto"));
  const auto budget_mb = cli.get("budget-mb", std::int64_t{1024});
  GCT_CHECK(budget_mb > 0, "bc: --budget-mb must be positive");
  std::vector<double> scores;
  double seconds;
  if (k == 0) {
    BetweennessOptions o;
    o.num_sources = sources;
    if (mode == "fine") {
      o.parallelism = BcParallelism::kFine;
    } else if (mode == "coarse") {
      o.parallelism = BcParallelism::kCoarse;
    } else if (mode == "auto") {
      o.parallelism = BcParallelism::kAuto;
    } else {
      throw Error("bc: --mode must be fine, coarse, or auto (got '" + mode +
                  "')");
    }
    o.score_memory_budget_bytes = static_cast<std::uint64_t>(budget_mb) << 20;
    if (set) {
      dist::Coordinator coord;
      coord.connect(set->ports());
      const auto& r = tk.betweenness_dist(coord, o);
      scores = r.score;
      seconds = r.seconds;
    } else {
      const auto& r = tk.betweenness(o);
      scores = r.score;
      seconds = r.seconds;
    }
  } else {
    KBetweennessOptions o;
    o.k = k;
    o.num_sources = sources;
    o.score_memory_budget_bytes = static_cast<std::uint64_t>(budget_mb) << 20;
    const auto& r = tk.k_betweenness(o);
    scores = r.score;
    seconds = r.seconds;
  }
  std::cout << "computed k=" << k << " betweenness in "
            << format_duration(seconds);
  if (set) std::cout << " [workers=" << workers << "]";
  std::cout << "\n";
  if (cli.has("out")) {
    write_scores(cli.get("out", std::string()), scores);
  } else {
    const auto top =
        top_k(std::span<const double>(scores.data(), scores.size()), 10);
    TextTable table({"vertex", "score"});
    for (vid v : top) {
      table.add_row({std::to_string(v),
                     strf("%.6g", scores[static_cast<std::size_t>(v)])});
    }
    std::cout << table.render();
  }
  return 0;
}

/// Fork `workers` loopback dist workers (nullptr when workers == 0). Must
/// run before anything spins up OpenMP teams — fork() carries only the
/// calling thread into the child (see dist/local_worker_set.hpp) — so the
/// dist commands call this before loading the graph.
std::unique_ptr<dist::LocalWorkerSet> fork_workers(int workers,
                                                   const char* cmd) {
  GCT_CHECK(workers >= 0 && workers <= 256,
            std::string(cmd) + ": --workers must be in [0, 256]");
  if (workers == 0) return nullptr;
  dist::LocalWorkerSetOptions opts;
  opts.num_workers = workers;
  opts.fork_mode = true;
  return std::make_unique<dist::LocalWorkerSet>(opts);
}

int cmd_components(const Cli& cli) {
  GCT_CHECK(!cli.positional().empty(), "components: missing graph file");
  const int workers = static_cast<int>(cli.get("workers", std::int64_t{0}));
  auto set = fork_workers(workers, "components");
  Toolkit tk = load_toolkit(cli.positional()[0]);
  if (set) {
    dist::Coordinator coord;
    coord.connect(set->ports());
    const auto& labels = tk.components_dist(coord);
    const auto stats =
        component_stats(std::span<const vid>(labels.data(), labels.size()));
    std::cout << "components: " << with_commas(stats.num_components)
              << " (largest " << with_commas(stats.largest_size())
              << ") [workers=" << workers << "]\n";
    if (cli.has("out")) write_scores(cli.get("out", std::string()), labels);
    return 0;
  }
  const auto& stats = tk.components_stats();
  std::cout << "components: " << with_commas(stats.num_components)
            << " (largest " << with_commas(stats.largest_size()) << ")\n";
  if (cli.has("out")) {
    write_scores(cli.get("out", std::string()), tk.components());
  }
  return 0;
}

int cmd_pagerank(const Cli& cli) {
  GCT_CHECK(!cli.positional().empty(), "pagerank: missing graph file");
  const int workers = static_cast<int>(cli.get("workers", std::int64_t{0}));
  auto set = fork_workers(workers, "pagerank");
  Toolkit tk = load_toolkit(cli.positional()[0]);
  dist::Coordinator coord;
  const PageRankResult* res;
  if (set) {
    coord.connect(set->ports());
    res = &tk.pagerank_dist(coord);
  } else {
    res = &tk.pagerank();
  }
  std::cout << "pagerank: " << res->iterations << " iterations, residual "
            << strf("%.6g", res->residual)
            << (res->converged ? "" : " (not converged)");
  if (set) std::cout << " [workers=" << workers << "]";
  std::cout << "\n";
  if (cli.has("out")) {
    write_scores(cli.get("out", std::string()), res->score);
  } else {
    const auto top = top_k(
        std::span<const double>(res->score.data(), res->score.size()), 10);
    TextTable table({"vertex", "score"});
    for (vid v : top) {
      table.add_row({std::to_string(v),
                     strf("%.6g", res->score[static_cast<std::size_t>(v)])});
    }
    std::cout << table.render();
  }
  return 0;
}

int cmd_partition(const Cli& cli) {
  GCT_CHECK(cli.positional().size() >= 2, "partition: need <graph> <N>");
  const int n = static_cast<int>(std::stoll(cli.positional()[1]));
  GCT_CHECK(n >= 1 && n <= 4096, "partition: N must be in [1, 4096]");
  Toolkit tk = load_toolkit(cli.positional()[0]);
  CsrGraph decoded;
  const auto p = dist::partition_graph(tk.view().as_csr_or(decoded), n);
  std::cout << "partition of " << cli.positional()[0] << " into " << n
            << " blocks (" << with_commas(p.num_vertices) << " vertices, "
            << with_commas(p.total_entries) << " adjacency entries)\n";
  TextTable table({"block", "vertices", "entries", "cut entries"});
  for (int i = 0; i < p.num_blocks(); ++i) {
    const auto& b = p.blocks[static_cast<std::size_t>(i)];
    table.add_row({std::to_string(i),
                   strf("[%lld, %lld)", static_cast<long long>(b.begin),
                        static_cast<long long>(b.end)),
                   with_commas(b.entries), with_commas(b.cut_entries)});
  }
  std::cout << table.render()
            << strf("edge-cut fraction %.4f, imbalance %.3f\n",
                    p.edge_cut_fraction(), p.imbalance());
  return 0;
}

int cmd_worker(const Cli& cli) {
  dist::WorkerOptions opts;
  opts.port = static_cast<int>(cli.get("port", std::int64_t{0}));
  GCT_CHECK(opts.port >= 0 && opts.port <= 65535,
            "worker: --port must be in [0, 65535]");
  opts.threads = static_cast<int>(cli.get("threads", std::int64_t{1}));
  GCT_CHECK(opts.threads >= 1 && opts.threads <= 256,
            "worker: --threads must be in [1, 256]");
  opts.fail_after = cli.get("fail-after", std::int64_t{-1});
  dist::WorkerServer server(opts);
  std::cout << "graphct worker listening on 127.0.0.1:" << server.port()
            << "\n"
            << std::flush;
  server.serve();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Accept --threads both before the command (`graphct --threads 4 bc g`)
    // and after it; the leading form is consumed here.
    const auto parse_threads = [](const std::string& value) {
      try {
        return std::stoi(value);
      } catch (const std::exception&) {
        throw graphct::Error("--threads: expected a number, got '" + value +
                             "'");
      }
    };
    int argi = 1;
    while (argi < argc) {
      const std::string arg = argv[argi];
      if (arg == "--threads" && argi + 1 < argc) {
        graphct::set_num_threads(parse_threads(argv[argi + 1]));
        argi += 2;
      } else if (arg.rfind("--threads=", 0) == 0) {
        graphct::set_num_threads(parse_threads(arg.substr(10)));
        argi += 1;
      } else if (arg == "--profile") {
        graphct::obs::set_profiling_enabled(true);
        argi += 1;
      } else {
        break;
      }
    }
    if (argi >= argc) return usage();
    const std::string command = argv[argi];
    Cli cli(argc - argi, argv + argi,
            {{"sources", "BC source sample"},
             {"k", "k-betweenness slack"},
             {"mode", "BC parallelism: fine|coarse|auto"},
             {"budget-mb", "BC score-memory budget in MiB (auto mode)"},
             {"out", "per-vertex output file"},
             {"codec", "pack: block codec (none|varint)"},
             {"block-kb", "pack: target encoded block size in KiB"},
             {"timings", "script timings!"},
             {"threads", "OpenMP thread count (0 = default)"},
             {"profile", "per-kernel phase profiling!"},
             {"workers", "server worker threads / dist worker processes"},
             {"port", "worker: listen port (0 = ephemeral)"},
             {"fail-after", "worker: close connection after K messages"},
             {"stdio", "serve one session over stdin/stdout!"},
             {"max-conns", "server: concurrent connection cap"},
             {"max-queued", "server: global queued-job cap"},
             {"max-queued-per-session", "server: per-session backlog cap"},
             {"cache-budget-mb", "server: kernel-cache byte budget in MiB"},
             {"read-timeout", "server: stalled partial-line timeout (s)"},
             {"idle-timeout", "server: idle-connection timeout (s)"},
             {"drain-timeout", "server: stop-time drain window (s)"}});
    if (cli.has("threads")) {
      graphct::set_num_threads(
          static_cast<int>(cli.get("threads", std::int64_t{0})));
    }
    if (cli.has("profile")) graphct::obs::set_profiling_enabled(true);

    // Print profiles collected on this thread once the command returns.
    // (The script interpreter drains after every command itself, so script
    // runs print profiles inline; this catches the direct kernel commands.)
    const auto finish = [](int rc) {
      if (graphct::obs::profiling_enabled()) {
        for (const auto& p : graphct::obs::drain_profiles()) {
          std::cout << graphct::obs::format_profile(p);
        }
      }
      return rc;
    };

    if (command == "info") {
      GCT_CHECK(!cli.positional().empty(), "info: missing graph file");
      return finish(cmd_info(cli.positional()[0]));
    }
    if (command == "characterize") {
      GCT_CHECK(!cli.positional().empty(),
                "characterize: missing graph file");
      return finish(cmd_characterize(cli.positional()[0]));
    }
    if (command == "bc") return finish(cmd_bc(cli));
    if (command == "components") return finish(cmd_components(cli));
    if (command == "pagerank") return finish(cmd_pagerank(cli));
    if (command == "partition") return finish(cmd_partition(cli));
    if (command == "worker") return cmd_worker(cli);
    if (command == "pack") return finish(cmd_pack(cli));
    if (command == "convert") {
      GCT_CHECK(cli.positional().size() >= 2, "convert: need <in> <out>");
      const auto g = load_graph(cli.positional()[0]);
      save_graph(g, cli.positional()[1]);
      std::cout << "wrote " << cli.positional()[1] << " ("
                << with_commas(g.num_vertices()) << " vertices, "
                << with_commas(g.num_edges()) << " edges)\n";
      return 0;
    }
    if (command == "generate") {
      GCT_CHECK(cli.positional().size() >= 4 && cli.positional()[0] == "rmat",
                "generate: need 'rmat <scale> <edge factor> <out>'");
      graphct::RmatOptions r;
      r.scale = std::stoll(cli.positional()[1]);
      r.edge_factor = std::stoll(cli.positional()[2]);
      const auto g = graphct::rmat_graph(r);
      save_graph(g, cli.positional()[3]);
      std::cout << "generated scale-" << r.scale << " R-MAT: "
                << graphct::with_commas(g.num_vertices()) << " vertices, "
                << graphct::with_commas(g.num_edges()) << " edges\n";
      return 0;
    }
    if (command == "script") {
      GCT_CHECK(!cli.positional().empty(), "script: missing script file");
      graphct::script::InterpreterOptions opts;
      opts.timings = cli.has("timings");
      // A local registry so `load graph` / `use graph` scripts also run in
      // one-shot mode (graphs are simply not shared with anyone).
      server::GraphRegistry registry(opts.toolkit);
      opts.provider = &registry;
      graphct::script::Interpreter interp(std::cout, opts);
      interp.run_file(cli.positional()[0]);
      return finish(0);
    }
    if (command == "serve") return cmd_serve(cli);
    if (command == "client") return cmd_client(cli);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "graphct: " << e.what() << "\n";
    return 1;
  }
}
