#pragma once

/// \file io_metis.hpp
/// METIS graph format — the interchange format of the partitioning world
/// and a common distribution format for social-network datasets.
///
/// Layout: a header line `<n> <m> [fmt]`, then one line per vertex listing
/// its neighbors with 1-based ids; `%` starts a comment. Only the
/// unweighted format (fmt absent or 0) is supported; weighted inputs are
/// rejected loudly rather than silently misread. Self-loops are not
/// representable in METIS and are skipped on write.

#include <string>
#include <string_view>

#include "graph/csr_graph.hpp"

namespace graphct {

/// Parse METIS text into an undirected graph. Validates the header counts
/// and symmetry-implied edge count; throws graphct::Error on malformed or
/// weighted input.
CsrGraph parse_metis(std::string_view text);

/// Read a METIS file from disk.
CsrGraph read_metis(const std::string& path);

/// Serialize an undirected graph (self-loops dropped, as METIS cannot
/// express them). Throws for directed input.
std::string to_metis(const CsrGraph& g);

/// Write METIS text to a file.
void write_metis(const CsrGraph& g, const std::string& path);

}  // namespace graphct
