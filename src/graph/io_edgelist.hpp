#pragma once

/// \file io_edgelist.hpp
/// Plain whitespace-separated edge-list text: one `u v` pair per line,
/// 0-based ids, `#`/`%`/`c` comment lines. The lowest-friction interchange
/// format for getting external data into GraphCT.

#include <string>
#include <string_view>

#include "graph/edge_list.hpp"

namespace graphct {

/// Parse edge-list text into an EdgeList (no vertex-count hint).
EdgeList parse_edge_list(std::string_view text);

/// Read an edge-list file from disk.
EdgeList read_edge_list(const std::string& path);

/// Serialize a graph as edge-list text (undirected edges emitted once).
std::string to_edge_list(const CsrGraph& g);

/// Write edge-list text to a file.
void write_edge_list(const CsrGraph& g, const std::string& path);

}  // namespace graphct
