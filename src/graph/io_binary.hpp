#pragma once

/// \file io_binary.hpp
/// GraphCT binary graph format.
///
/// The paper's scripting interface saves intermediate graphs in "a binary
/// format" (`extract component 1 => comp1.bin`, §IV-B). This is that format:
/// a fixed header (magic, version, flags, counts) followed by the raw CSR
/// offsets and adjacency arrays, so save/restore is a straight memory copy.
/// Version 2 appends a trailer (FNV-1a checksum over header + arrays, end
/// marker) so truncated or corrupted files fail loudly at load; version-1
/// files (no trailer) still read.

#include <string>

#include "graph/csr_graph.hpp"

namespace graphct {

/// Write a graph to the GraphCT binary format. Throws on I/O failure.
void write_binary(const CsrGraph& g, const std::string& path);

/// Read a graph from the GraphCT binary format. Validates the header and
/// the structural invariants; throws graphct::Error on any mismatch.
CsrGraph read_binary(const std::string& path);

}  // namespace graphct
