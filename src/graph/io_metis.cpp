#include "graph/io_metis.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "graph/builder.hpp"
#include "graph/edge_list.hpp"
#include "util/error.hpp"

namespace graphct {

namespace {

// Split text into non-comment lines (views into `text`).
std::vector<std::string_view> content_lines(std::string_view text) {
  std::vector<std::string_view> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty() && line.front() == '%') continue;
    lines.push_back(line);
  }
  return lines;
}

std::vector<std::int64_t> parse_ints(std::string_view line, int lineno) {
  std::vector<std::int64_t> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size()) break;
    GCT_CHECK(std::isdigit(static_cast<unsigned char>(line[i])),
              "METIS line " + std::to_string(lineno) +
                  ": expected an unsigned integer");
    std::int64_t v = 0;
    while (i < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[i]))) {
      v = v * 10 + (line[i] - '0');
      ++i;
    }
    out.push_back(v);
  }
  return out;
}

}  // namespace

CsrGraph parse_metis(std::string_view text) {
  const auto lines = content_lines(text);
  GCT_CHECK(!lines.empty(), "METIS: empty input");

  const auto header = parse_ints(lines[0], 1);
  GCT_CHECK(header.size() >= 2 && header.size() <= 4,
            "METIS: header must be '<n> <m> [fmt [ncon]]'");
  const std::int64_t n = header[0];
  const std::int64_t m = header[1];
  GCT_CHECK(header.size() < 3 || header[2] == 0,
            "METIS: weighted formats (fmt != 0) are not supported");
  GCT_CHECK(static_cast<std::int64_t>(lines.size()) >= n + 1,
            "METIS: fewer vertex lines than the declared vertex count");

  EdgeList el(n);
  el.reserve(static_cast<std::size_t>(m));
  for (std::int64_t v = 0; v < n; ++v) {
    const auto nbrs = parse_ints(lines[static_cast<std::size_t>(v) + 1],
                                 static_cast<int>(v + 2));
    for (std::int64_t u : nbrs) {
      GCT_CHECK(u >= 1 && u <= n,
                "METIS: neighbor id out of range on vertex line " +
                    std::to_string(v + 1));
      if (u - 1 >= v) el.add(v, u - 1);  // each undirected edge appears twice
    }
  }
  BuildOptions opts;
  opts.symmetrize = true;
  opts.dedup = true;
  const CsrGraph g = build_csr(el, opts);
  GCT_CHECK(g.num_edges() == m,
            "METIS: declared edge count " + std::to_string(m) +
                " does not match adjacency (" + std::to_string(g.num_edges()) +
                ")");
  return g;
}

CsrGraph read_metis(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GCT_CHECK(in.good(), "cannot open METIS file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_metis(ss.str());
}

std::string to_metis(const CsrGraph& g) {
  GCT_CHECK(!g.directed(), "to_metis: graph must be undirected");
  std::ostringstream os;
  os << "% GraphCT METIS export\n";
  const vid n = g.num_vertices();
  os << n << ' ' << (g.num_edges() - g.num_self_loops()) << '\n';
  for (vid v = 0; v < n; ++v) {
    bool first = true;
    for (vid u : g.neighbors(v)) {
      if (u == v) continue;  // METIS cannot express self-loops
      if (!first) os << ' ';
      os << (u + 1);
      first = false;
    }
    os << '\n';
  }
  return os.str();
}

void write_metis(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  GCT_CHECK(out.good(), "cannot open file for writing: " + path);
  out << to_metis(g);
  GCT_CHECK(out.good(), "write failed: " + path);
}

}  // namespace graphct
