#include "graph/transforms.hpp"

#include <omp.h>

#include <algorithm>

#include "graph/builder.hpp"
#include "graph/edge_list.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace graphct {

CsrGraph reverse(const CsrGraph& g) {
  if (!g.directed()) return g;
  const vid n = g.num_vertices();
  EdgeList rev(n);
  rev.reserve(static_cast<std::size_t>(g.num_adjacency_entries()));
  for (vid u = 0; u < n; ++u) {
    for (vid v : g.neighbors(u)) rev.add(v, u);
  }
  BuildOptions opts;
  opts.symmetrize = false;
  opts.dedup = false;
  opts.sort_adjacency = true;
  return build_csr(rev, opts);
}

CsrGraph to_undirected(const CsrGraph& g) {
  const vid n = g.num_vertices();
  EdgeList el(n);
  el.reserve(static_cast<std::size_t>(g.num_adjacency_entries()));
  for (vid u = 0; u < n; ++u) {
    for (vid v : g.neighbors(u)) {
      if (g.directed() || u <= v) el.add(u, v);
    }
  }
  BuildOptions opts;
  opts.symmetrize = true;
  opts.dedup = true;
  opts.sort_adjacency = true;
  return build_csr(el, opts);
}

Subgraph induced_subgraph(const CsrGraph& g, std::span<const char> mask) {
  const vid n = g.num_vertices();
  GCT_CHECK(static_cast<vid>(mask.size()) == n,
            "induced_subgraph: mask size must equal vertex count");

  std::vector<vid> new_id(static_cast<std::size_t>(n), kNoVertex);
  std::vector<vid> orig_ids;
  for (vid v = 0; v < n; ++v) {
    if (mask[static_cast<std::size_t>(v)]) {
      new_id[static_cast<std::size_t>(v)] = static_cast<vid>(orig_ids.size());
      orig_ids.push_back(v);
    }
  }

  EdgeList el(static_cast<vid>(orig_ids.size()));
  for (vid u = 0; u < n; ++u) {
    if (!mask[static_cast<std::size_t>(u)]) continue;
    for (vid v : g.neighbors(u)) {
      if (!mask[static_cast<std::size_t>(v)]) continue;
      if (!g.directed() && u > v) continue;  // undirected: emit once
      el.add(new_id[static_cast<std::size_t>(u)],
             new_id[static_cast<std::size_t>(v)]);
    }
  }
  BuildOptions opts;
  opts.symmetrize = !g.directed();
  opts.dedup = false;
  opts.sort_adjacency = true;
  return {build_csr(el, opts), std::move(orig_ids)};
}

Subgraph extract_by_label(const CsrGraph& g, std::span<const vid> labels,
                          vid label) {
  const vid n = g.num_vertices();
  GCT_CHECK(static_cast<vid>(labels.size()) == n,
            "extract_by_label: labels size must equal vertex count");
  std::vector<char> mask(static_cast<std::size_t>(n), 0);
#pragma omp parallel for schedule(static)
  for (vid v = 0; v < n; ++v) {
    mask[static_cast<std::size_t>(v)] =
        labels[static_cast<std::size_t>(v)] == label ? 1 : 0;
  }
  return induced_subgraph(g, mask);
}

CsrGraph mutual_subgraph(const CsrGraph& directed) {
  GCT_CHECK(directed.directed(), "mutual_subgraph: input must be directed");
  GCT_CHECK(directed.sorted_adjacency(),
            "mutual_subgraph: input needs sorted adjacency");
  const vid n = directed.num_vertices();

  // Per-thread edge buffers keep the scan parallel; order is normalized by
  // only emitting u < v, so the result is schedule-independent.
  const int nt = num_threads();
  std::vector<std::vector<Edge>> local(static_cast<std::size_t>(nt));
#pragma omp parallel num_threads(nt)
  {
    auto& mine = local[static_cast<std::size_t>(omp_get_thread_num())];
#pragma omp for schedule(dynamic, 256)
    for (vid u = 0; u < n; ++u) {
      for (vid v : directed.neighbors(u)) {
        if (u < v && directed.has_edge(v, u)) mine.push_back({u, v});
      }
    }
  }

  EdgeList el(n);
  std::size_t total = 0;
  for (const auto& b : local) total += b.size();
  el.reserve(total);
  for (const auto& b : local) {
    for (const Edge& e : b) el.add(e);
  }
  BuildOptions opts;
  opts.symmetrize = true;
  opts.dedup = true;  // parallel arcs u->v would otherwise duplicate pairs
  opts.sort_adjacency = true;
  return build_csr(el, opts);
}

Subgraph relabel_by_degree(const CsrGraph& g) {
  const vid n = g.num_vertices();
  std::vector<vid> order(static_cast<std::size_t>(n));
  for (vid v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  std::sort(order.begin(), order.end(), [&](vid a, vid b) {
    if (g.degree(a) != g.degree(b)) return g.degree(a) > g.degree(b);
    return a < b;
  });
  std::vector<vid> new_id(static_cast<std::size_t>(n));
  for (vid i = 0; i < n; ++i) {
    new_id[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
  }

  EdgeList el(n);
  el.reserve(static_cast<std::size_t>(g.num_adjacency_entries()));
  for (vid u = 0; u < n; ++u) {
    for (vid v : g.neighbors(u)) {
      if (!g.directed() && u > v) continue;
      el.add(new_id[static_cast<std::size_t>(u)],
             new_id[static_cast<std::size_t>(v)]);
    }
  }
  BuildOptions opts;
  opts.symmetrize = !g.directed();
  opts.dedup = false;
  opts.sort_adjacency = true;
  return {build_csr(el, opts), std::move(order)};
}

Subgraph drop_isolated(const CsrGraph& g) {
  const vid n = g.num_vertices();
  std::vector<char> mask(static_cast<std::size_t>(n), 0);
#pragma omp parallel for schedule(static)
  for (vid v = 0; v < n; ++v) {
    mask[static_cast<std::size_t>(v)] = g.degree(v) > 0 ? 1 : 0;
  }
  // Directed graphs: a vertex with only in-arcs has out-degree 0 but is not
  // isolated; check in-degree via a sweep.
  if (g.directed()) {
    for (vid u = 0; u < n; ++u) {
      for (vid v : g.neighbors(u)) mask[static_cast<std::size_t>(v)] = 1;
    }
  }
  return induced_subgraph(g, mask);
}

}  // namespace graphct
