#include "graph/io_dimacs.hpp"

#include <omp.h>

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace graphct {

namespace {

struct ProblemLine {
  vid n = kNoVertex;
  eid m = kNoVertex;
};

// Parse one nonnegative integer starting at text[pos]; advances pos.
// Returns -1 when no digits are present.
std::int64_t parse_int(std::string_view text, std::size_t& pos) {
  while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(text[pos]))) {
    return -1;
  }
  std::int64_t v = 0;
  while (pos < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[pos]))) {
    v = v * 10 + (text[pos] - '0');
    ++pos;
  }
  return v;
}

// Parse the lines fully contained in text[lo, hi) into `out`.
// `lo` must point at a line start. Handles 'a' and 'e' edge lines; returns
// the problem line if one is seen; throws on malformed edge lines.
void parse_chunk(std::string_view text, std::size_t lo, std::size_t hi,
                 std::vector<Edge>& out, ProblemLine& prob) {
  std::size_t pos = lo;
  while (pos < hi) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    const char tag = line[0];
    if (tag == 'c' || tag == '%' || tag == '#' || tag == '\r') continue;
    if (tag == 'p') {
      // p <type> <n> <m>
      std::size_t q = 1;
      while (q < line.size() && line[q] == ' ') ++q;
      while (q < line.size() && line[q] != ' ') ++q;  // skip type token
      std::int64_t n = parse_int(line, q);
      std::int64_t m = parse_int(line, q);
      GCT_CHECK(n >= 0 && m >= 0, "DIMACS: malformed problem line");
      prob.n = n;
      prob.m = m;
      continue;
    }
    if (tag == 'a' || tag == 'e') {
      std::size_t q = 1;
      const std::int64_t u = parse_int(line, q);
      const std::int64_t v = parse_int(line, q);
      GCT_CHECK(u >= 1 && v >= 1,
                "DIMACS: malformed edge line: " + std::string(line));
      out.push_back({u - 1, v - 1});  // weight, if any, is ignored
      continue;
    }
    throw Error("DIMACS: unrecognized line tag '" + std::string(1, tag) +
                "'");
  }
}

}  // namespace

EdgeList parse_dimacs(std::string_view text) {
  const int nt = num_threads();
  // Chunk boundaries snapped forward to line starts.
  std::vector<std::size_t> starts(static_cast<std::size_t>(nt) + 1, 0);
  for (int t = 1; t < nt; ++t) {
    std::size_t p = text.size() * static_cast<std::size_t>(t) /
                    static_cast<std::size_t>(nt);
    while (p < text.size() && text[p - 1] != '\n') ++p;
    starts[static_cast<std::size_t>(t)] = p;
  }
  starts[static_cast<std::size_t>(nt)] = text.size();

  std::vector<std::vector<Edge>> local(static_cast<std::size_t>(nt));
  std::vector<ProblemLine> probs(static_cast<std::size_t>(nt));
  std::string first_error;
#pragma omp parallel num_threads(nt)
  {
    const int t = omp_get_thread_num();
    try {
      parse_chunk(text, starts[static_cast<std::size_t>(t)],
                  starts[static_cast<std::size_t>(t) + 1],
                  local[static_cast<std::size_t>(t)],
                  probs[static_cast<std::size_t>(t)]);
    } catch (const Error& e) {
#pragma omp critical
      if (first_error.empty()) first_error = e.what();
    }
  }
  if (!first_error.empty()) throw Error(first_error);

  ProblemLine prob;
  for (const auto& p : probs) {
    if (p.n != kNoVertex) prob = p;
  }
  std::size_t total = 0;
  for (const auto& b : local) total += b.size();

  EdgeList el(prob.n);  // kNoVertex hint if no problem line was present
  el.reserve(total);
  for (const auto& b : local) {
    for (const Edge& e : b) el.add(e);
  }
  if (prob.n != kNoVertex) {
    GCT_CHECK(el.inferred_num_vertices() <= prob.n,
              "DIMACS: edge endpoint exceeds declared vertex count");
  }
  return el;
}

EdgeList read_dimacs(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GCT_CHECK(in.good(), "cannot open DIMACS file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_dimacs(ss.str());
}

std::string to_dimacs(const CsrGraph& g) {
  std::ostringstream os;
  os << "c GraphCT DIMACS export\n";
  os << "p sp " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  const vid n = g.num_vertices();
  for (vid u = 0; u < n; ++u) {
    for (vid v : g.neighbors(u)) {
      if (!g.directed() && u > v) continue;
      os << "a " << (u + 1) << ' ' << (v + 1) << " 1\n";
    }
  }
  return os.str();
}

void write_dimacs(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  GCT_CHECK(out.good(), "cannot open file for writing: " + path);
  out << to_dimacs(g);
  GCT_CHECK(out.good(), "write failed: " + path);
}

}  // namespace graphct
