#include "graph/edge_list.hpp"

#include <algorithm>

namespace graphct {

vid EdgeList::inferred_num_vertices() const {
  vid n = hint_ == kNoVertex ? 0 : hint_;
  const std::int64_t m = static_cast<std::int64_t>(edges_.size());
  vid maxid = -1;
#pragma omp parallel for reduction(max : maxid) schedule(static)
  for (std::int64_t i = 0; i < m; ++i) {
    const Edge& e = edges_[static_cast<std::size_t>(i)];
    maxid = std::max(maxid, std::max(e.src, e.dst));
  }
  return std::max(n, maxid + 1);
}

}  // namespace graphct
