#pragma once

/// \file builder.hpp
/// Parallel CSR construction from edge lists.
///
/// The build is the paper's ingest path (§IV-C): count degrees with atomic
/// fetch-and-add, prefix-sum into offsets, scatter with per-vertex atomic
/// cursors, then (optionally) sort and deduplicate each adjacency list in
/// parallel. "Duplicate user interactions are thrown out so that only unique
/// user-interactions are represented in the graph" (§III-B) — that is the
/// `dedup` option here.

#include "graph/csr_graph.hpp"
#include "graph/edge_list.hpp"

namespace graphct {

/// Options controlling the CSR build.
struct BuildOptions {
  /// Treat input arcs as undirected edges: store each in both adjacency
  /// lists and mark the graph undirected. Matches the paper's default view
  /// ("for most metrics, we treat the graph as undirected", §I-A).
  bool symmetrize = true;

  /// Drop self-loops entirely (kept by default: the paper observes
  /// "self-referring" Twitter vertices and they are analytically meaningful).
  bool remove_self_loops = false;

  /// Collapse parallel edges so each (u,v) appears once.
  bool dedup = true;

  /// Sort each adjacency list ascending (required by dedup; also enables
  /// O(log d) has_edge and merge-based triangle counting).
  bool sort_adjacency = true;
};

/// Build a CSR graph from an edge list. Vertex count is the edge list's
/// hint when set, else 1 + max endpoint id. All endpoint ids must be >= 0.
CsrGraph build_csr(const EdgeList& edges, const BuildOptions& opts = {});

}  // namespace graphct
