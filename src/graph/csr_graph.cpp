#include "graph/csr_graph.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace graphct {

CsrGraph::CsrGraph(std::vector<eid> offsets, std::vector<vid> adjacency,
                   bool directed, vid num_self_loops, bool sorted_adjacency)
    : offsets_(std::move(offsets)),
      adjacency_(std::move(adjacency)),
      directed_(directed),
      num_self_loops_(num_self_loops),
      sorted_(sorted_adjacency) {
  GCT_CHECK(!offsets_.empty(), "CsrGraph: offsets must have >= 1 entry");
  GCT_CHECK(offsets_.front() == 0, "CsrGraph: offsets must start at 0");
  GCT_CHECK(offsets_.back() == static_cast<eid>(adjacency_.size()),
            "CsrGraph: offsets must end at adjacency size");
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    GCT_CHECK(offsets_[i - 1] <= offsets_[i],
              "CsrGraph: offsets must be nondecreasing");
  }
  const vid n = num_vertices();
  for (vid v : adjacency_) {
    GCT_CHECK(v >= 0 && v < n, "CsrGraph: adjacency entry out of range");
  }
}

void CsrGraph::sort_adjacency() {
  if (sorted_) return;
  const vid n = num_vertices();
#pragma omp parallel for schedule(dynamic, 256)
  for (vid v = 0; v < n; ++v) {
    const auto lo = static_cast<std::ptrdiff_t>(
        offsets_[static_cast<std::size_t>(v)]);
    const auto hi = static_cast<std::ptrdiff_t>(
        offsets_[static_cast<std::size_t>(v) + 1]);
    std::sort(adjacency_.begin() + lo, adjacency_.begin() + hi);
  }
  sorted_ = true;
}

bool CsrGraph::has_edge(vid u, vid v) const {
  GCT_ASSERT(u >= 0 && u < num_vertices());
  GCT_ASSERT(v >= 0 && v < num_vertices());
  const auto nbrs = neighbors(u);
  if (sorted_) {
    return std::binary_search(nbrs.begin(), nbrs.end(), v);
  }
  return std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
}

}  // namespace graphct
