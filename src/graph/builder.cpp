#include "graph/builder.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace graphct {

CsrGraph build_csr(const EdgeList& edges, const BuildOptions& opts) {
  GCT_CHECK(!opts.dedup || opts.sort_adjacency,
            "build_csr: dedup requires sort_adjacency");
  // An explicit hint is authoritative: endpoints beyond it are input errors,
  // not a request to grow the graph.
  const vid n = edges.num_vertices_hint() != kNoVertex
                    ? edges.num_vertices_hint()
                    : edges.inferred_num_vertices();
  const std::int64_t m = static_cast<std::int64_t>(edges.size());
  const auto& es = edges.edges();

  // Validate endpoints (cheap, catches generator/parser bugs early).
  bool ok = true;
#pragma omp parallel for reduction(&& : ok) schedule(static)
  for (std::int64_t i = 0; i < m; ++i) {
    const Edge& e = es[static_cast<std::size_t>(i)];
    ok = ok && e.src >= 0 && e.src < n && e.dst >= 0 && e.dst < n;
  }
  GCT_CHECK(ok, "build_csr: edge endpoint out of range");

  // Pass 1: degree counting with atomic fetch-and-add.
  std::vector<std::int64_t> degree(static_cast<std::size_t>(n) + 1, 0);
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < m; ++i) {
    const Edge& e = es[static_cast<std::size_t>(i)];
    if (e.src == e.dst) {
      if (opts.remove_self_loops) continue;
      fetch_add(degree[static_cast<std::size_t>(e.src)], 1);
      continue;
    }
    fetch_add(degree[static_cast<std::size_t>(e.src)], 1);
    if (opts.symmetrize) {
      fetch_add(degree[static_cast<std::size_t>(e.dst)], 1);
    }
  }

  // Offsets = exclusive scan of degrees; the (n+1)-th entry becomes total.
  std::vector<eid> offsets(static_cast<std::size_t>(n) + 1, 0);
  const std::int64_t entries = exclusive_scan(
      std::span<const std::int64_t>(degree.data(), degree.size() - 1),
      std::span<std::int64_t>(offsets.data(), offsets.size() - 1));
  offsets.back() = entries;

  // Pass 2: scatter through per-vertex atomic cursors.
  std::vector<eid> cursor(offsets.begin(), offsets.end() - 1);
  std::vector<vid> adjacency(static_cast<std::size_t>(entries));
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < m; ++i) {
    const Edge& e = es[static_cast<std::size_t>(i)];
    if (e.src == e.dst) {
      if (opts.remove_self_loops) continue;
      const eid slot = fetch_add(cursor[static_cast<std::size_t>(e.src)], 1);
      adjacency[static_cast<std::size_t>(slot)] = e.dst;
      continue;
    }
    const eid s = fetch_add(cursor[static_cast<std::size_t>(e.src)], 1);
    adjacency[static_cast<std::size_t>(s)] = e.dst;
    if (opts.symmetrize) {
      const eid t = fetch_add(cursor[static_cast<std::size_t>(e.dst)], 1);
      adjacency[static_cast<std::size_t>(t)] = e.src;
    }
  }

  // Pass 3: per-vertex sort (+ dedup compaction).
  if (opts.sort_adjacency) {
#pragma omp parallel for schedule(dynamic, 64)
    for (vid v = 0; v < n; ++v) {
      auto* lo = adjacency.data() + offsets[static_cast<std::size_t>(v)];
      auto* hi = adjacency.data() + offsets[static_cast<std::size_t>(v) + 1];
      std::sort(lo, hi);
    }
  }

  if (opts.dedup) {
    std::vector<std::int64_t> uniq(static_cast<std::size_t>(n), 0);
#pragma omp parallel for schedule(dynamic, 64)
    for (vid v = 0; v < n; ++v) {
      const auto lo = static_cast<std::size_t>(offsets[static_cast<std::size_t>(v)]);
      const auto hi =
          static_cast<std::size_t>(offsets[static_cast<std::size_t>(v) + 1]);
      std::int64_t u = 0;
      for (std::size_t i = lo; i < hi; ++i) {
        if (i == lo || adjacency[i] != adjacency[i - 1]) ++u;
      }
      uniq[static_cast<std::size_t>(v)] = u;
    }
    std::vector<eid> new_offsets(static_cast<std::size_t>(n) + 1, 0);
    const std::int64_t new_entries = exclusive_scan(
        std::span<const std::int64_t>(uniq.data(), uniq.size()),
        std::span<std::int64_t>(new_offsets.data(), new_offsets.size() - 1));
    new_offsets.back() = new_entries;
    std::vector<vid> new_adj(static_cast<std::size_t>(new_entries));
#pragma omp parallel for schedule(dynamic, 64)
    for (vid v = 0; v < n; ++v) {
      const auto lo = static_cast<std::size_t>(offsets[static_cast<std::size_t>(v)]);
      const auto hi =
          static_cast<std::size_t>(offsets[static_cast<std::size_t>(v) + 1]);
      auto out = static_cast<std::size_t>(new_offsets[static_cast<std::size_t>(v)]);
      for (std::size_t i = lo; i < hi; ++i) {
        if (i == lo || adjacency[i] != adjacency[i - 1]) {
          new_adj[out++] = adjacency[i];
        }
      }
    }
    offsets = std::move(new_offsets);
    adjacency = std::move(new_adj);
  }

  // Count self-loops in the final structure (stored once per vertex list).
  std::int64_t self_loops = 0;
#pragma omp parallel for reduction(+ : self_loops) schedule(dynamic, 64)
  for (vid v = 0; v < n; ++v) {
    const auto lo = static_cast<std::size_t>(offsets[static_cast<std::size_t>(v)]);
    const auto hi =
        static_cast<std::size_t>(offsets[static_cast<std::size_t>(v) + 1]);
    for (std::size_t i = lo; i < hi; ++i) {
      if (adjacency[i] == v) ++self_loops;
    }
  }

  return CsrGraph(std::move(offsets), std::move(adjacency),
                  /*directed=*/!opts.symmetrize, self_loops,
                  opts.sort_adjacency);
}

}  // namespace graphct
