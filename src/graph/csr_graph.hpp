#pragma once

/// \file csr_graph.hpp
/// The static graph data structure shared by every GraphCT kernel.
///
/// Following the paper (§IV-A), GraphCT stores graphs in compressed sparse
/// row (CSR) format: one offsets array of length n+1 and one adjacency array.
/// Degrees are implicit (offsets[v+1] - offsets[v]). The same structure backs
/// directed and undirected graphs; an undirected graph stores each edge in
/// both endpoint's adjacency lists (self-loops once). All kernels run over
/// one in-memory graph of this type, so results can be accumulated and
/// reused across kernels without reloading.

#include <cstdint>
#include <span>
#include <vector>

namespace graphct {

/// Vertex identifier. 64-bit so billion-scale graphs address cleanly, as on
/// the 1 TiB Cray XMT the paper used.
using vid = std::int64_t;

/// Edge (adjacency offset) index.
using eid = std::int64_t;

/// Marks "no vertex" in distance/parent/component arrays.
inline constexpr vid kNoVertex = -1;

/// Static CSR graph.
class CsrGraph {
 public:
  /// Empty graph.
  CsrGraph() = default;

  /// Assemble from raw CSR arrays. `offsets` must have n+1 entries, be
  /// nondecreasing, start at 0, and end at adjacency.size().
  /// `num_self_loops` is the count of vertices v with an entry v in their own
  /// adjacency list (stored once in undirected graphs).
  CsrGraph(std::vector<eid> offsets, std::vector<vid> adjacency, bool directed,
           vid num_self_loops, bool sorted_adjacency);

  /// Number of vertices.
  [[nodiscard]] vid num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<vid>(offsets_.size()) - 1;
  }

  /// Logical edge count: directed arcs for a directed graph; unordered pairs
  /// (self-loops counted once) for an undirected graph.
  [[nodiscard]] eid num_edges() const {
    const eid entries = static_cast<eid>(adjacency_.size());
    return directed_ ? entries : (entries + num_self_loops_) / 2;
  }

  /// Total adjacency entries (what the kernels actually traverse).
  [[nodiscard]] eid num_adjacency_entries() const {
    return static_cast<eid>(adjacency_.size());
  }

  [[nodiscard]] bool directed() const { return directed_; }
  [[nodiscard]] vid num_self_loops() const { return num_self_loops_; }

  /// True when every adjacency list is sorted ascending (enables has_edge
  /// by binary search and linear-merge triangle counting).
  [[nodiscard]] bool sorted_adjacency() const { return sorted_; }

  /// One-time preprocessing: sort every adjacency list ascending (parallel
  /// over vertices) and record the property, so neighbor scans run in cache
  /// order and clustering can use sorted-merge intersection. No-op when the
  /// graph is already sorted. Mutates the adjacency array in place; callers
  /// must hold exclusive ownership (Toolkit applies it at load time, before
  /// any kernel can share the graph).
  void sort_adjacency();

  /// Out-degree of v (== degree for undirected graphs).
  [[nodiscard]] vid degree(vid v) const {
    return static_cast<vid>(offsets_[static_cast<std::size_t>(v) + 1] -
                            offsets_[static_cast<std::size_t>(v)]);
  }

  /// Neighbors of v as a contiguous span.
  [[nodiscard]] std::span<const vid> neighbors(vid v) const {
    const auto lo = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v)]);
    const auto hi =
        static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v) + 1]);
    return {adjacency_.data() + lo, hi - lo};
  }

  /// Whether arc u->v exists. O(log deg(u)) when adjacency is sorted,
  /// O(deg(u)) otherwise.
  [[nodiscard]] bool has_edge(vid u, vid v) const;

  /// Raw arrays (read-only) for kernels that stride over the whole structure.
  [[nodiscard]] std::span<const eid> offsets() const { return offsets_; }
  [[nodiscard]] std::span<const vid> adjacency() const { return adjacency_; }

  /// Approximate in-memory footprint in bytes (offsets + adjacency).
  [[nodiscard]] std::uint64_t memory_bytes() const {
    return offsets_.size() * sizeof(eid) + adjacency_.size() * sizeof(vid);
  }

  /// Structural equality (same arrays and flags). Mainly for I/O round-trip
  /// tests.
  bool operator==(const CsrGraph& other) const = default;

 private:
  std::vector<eid> offsets_;   // n+1 entries
  std::vector<vid> adjacency_; // one entry per directed arc / half-edge
  bool directed_ = false;
  vid num_self_loops_ = 0;
  bool sorted_ = true;  // an empty graph is trivially sorted
};

}  // namespace graphct
