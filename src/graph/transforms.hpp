#pragma once

/// \file transforms.hpp
/// Structural graph transformations (paper §IV-A "utility functions"):
/// directed->undirected conversion, induced subgraph extraction by a
/// coloring/mask, arc reversal, and the mutual-edge ("conversation") filter
/// the paper uses in §III to strip one-way broadcast links.

#include <span>
#include <vector>

#include "graph/csr_graph.hpp"

namespace graphct {

/// A subgraph plus the mapping from its new vertex ids to original ids:
/// orig_ids[new_id] == old_id.
struct Subgraph {
  CsrGraph graph;
  std::vector<vid> orig_ids;
};

/// Reverse every arc of a directed graph. (Identity for undirected input.)
CsrGraph reverse(const CsrGraph& g);

/// Convert a directed graph to undirected: each arc u->v becomes edge {u,v};
/// parallel edges collapse. (Copies an already-undirected graph.)
CsrGraph to_undirected(const CsrGraph& g);

/// Induced subgraph over vertices v with mask[v] != 0. Vertices are
/// relabelled densely in ascending original-id order; edges with either
/// endpoint unmasked are dropped. Works for directed and undirected graphs.
Subgraph induced_subgraph(const CsrGraph& g, std::span<const char> mask);

/// Induced subgraph of all vertices whose `labels[v] == label` — the paper's
/// "extract a subgraph induced by a coloring function" (component
/// extraction, k-core extraction, ...).
Subgraph extract_by_label(const CsrGraph& g, std::span<const vid> labels,
                          vid label);

/// Mutual-edge filter (§III-C): keep the unordered pair {u,v}, u != v, only
/// when both arcs u->v and v->u exist in the directed input. The result is
/// an undirected graph on the same vertex set (use drop_isolated() to shrink
/// it). Requires sorted adjacency. This is how the paper turns broadcast
/// networks into conversation networks.
CsrGraph mutual_subgraph(const CsrGraph& directed);

/// Remove degree-0 vertices, relabelling survivors densely.
Subgraph drop_isolated(const CsrGraph& g);

/// Relabel vertices in decreasing degree order (ties by original id).
/// Scale-free graphs traverse mostly hub adjacencies; packing hubs first
/// improves cache locality for every CSR sweep — a memory-hierarchy
/// optimization the cache-less Cray XMT never needed but commodity CPUs
/// reward. orig_ids maps new ids back to the input's.
Subgraph relabel_by_degree(const CsrGraph& g);

}  // namespace graphct
