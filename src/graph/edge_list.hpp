#pragma once

/// \file edge_list.hpp
/// Edge-list staging container. Generators and parsers produce an EdgeList;
/// the builder turns it into a CSR graph.

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"

namespace graphct {

/// A directed arc (or an undirected edge, by convention src<->dst).
struct Edge {
  vid src = 0;
  vid dst = 0;

  bool operator==(const Edge&) const = default;
};

/// Growable edge list with an optional explicit vertex-count hint.
///
/// The hint matters when isolated vertices must survive the CSR build (e.g.
/// a user who tweets without mentioning anyone still exists in the graph).
class EdgeList {
 public:
  EdgeList() = default;
  explicit EdgeList(vid num_vertices_hint) : hint_(num_vertices_hint) {}

  void reserve(std::size_t n) { edges_.reserve(n); }
  void add(vid src, vid dst) { edges_.push_back({src, dst}); }
  void add(const Edge& e) { edges_.push_back(e); }

  [[nodiscard]] std::size_t size() const { return edges_.size(); }
  [[nodiscard]] bool empty() const { return edges_.empty(); }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }
  [[nodiscard]] std::vector<Edge>& edges() { return edges_; }

  /// Explicit vertex count (kNoVertex when unset; the builder then uses
  /// 1 + max endpoint id).
  [[nodiscard]] vid num_vertices_hint() const { return hint_; }
  void set_num_vertices_hint(vid n) { hint_ = n; }

  /// Largest endpoint id + 1, or the hint if larger; 0 for an empty list.
  [[nodiscard]] vid inferred_num_vertices() const;

 private:
  std::vector<Edge> edges_;
  vid hint_ = kNoVertex;
};

}  // namespace graphct
