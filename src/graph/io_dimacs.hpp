#pragma once

/// \file io_dimacs.hpp
/// DIMACS text graph format (paper §IV-C).
///
/// GraphCT's canonical text input is the DIMACS challenge format: a problem
/// line `p <type> <n> <m>`, comment lines `c ...`, and one line per edge —
/// `a u v w` (arc) or `e u v [w]` (edge), with 1-based vertex ids. As in the
/// paper, the whole file is pulled into memory and parsed in parallel
/// (per-thread chunks split on line boundaries); edge weights are parsed and
/// discarded since every GraphCT kernel is topological.

#include <string>
#include <string_view>

#include "graph/edge_list.hpp"

namespace graphct {

/// Parse DIMACS text (the file contents, not a path). Returns an EdgeList
/// with 0-based ids and the problem line's vertex count as its hint.
/// Throws graphct::Error on malformed input.
EdgeList parse_dimacs(std::string_view text);

/// Read and parse a DIMACS file from disk.
EdgeList read_dimacs(const std::string& path);

/// Serialize a graph to DIMACS text: `p sp n m` plus one `a u v 1` line per
/// stored arc (undirected graphs emit each edge once, smaller id first).
std::string to_dimacs(const CsrGraph& g);

/// Write DIMACS text to a file.
void write_dimacs(const CsrGraph& g, const std::string& path);

}  // namespace graphct
