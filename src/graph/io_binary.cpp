#include "graph/io_binary.hpp"

#include <cstring>
#include <fstream>
#include <vector>

#include "util/error.hpp"

namespace graphct {

namespace {

constexpr std::uint64_t kMagic = 0x4743544231ULL;  // "GCTB1"
constexpr std::uint32_t kVersion = 1;

struct Header {
  std::uint64_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::uint32_t flags = 0;  // bit 0: directed, bit 1: sorted adjacency
  std::int64_t num_vertices = 0;
  std::int64_t num_entries = 0;
  std::int64_t num_self_loops = 0;
};

}  // namespace

void write_binary(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  GCT_CHECK(out.good(), "cannot open file for writing: " + path);

  Header h;
  h.flags = (g.directed() ? 1u : 0u) | (g.sorted_adjacency() ? 2u : 0u);
  h.num_vertices = g.num_vertices();
  h.num_entries = g.num_adjacency_entries();
  h.num_self_loops = g.num_self_loops();
  out.write(reinterpret_cast<const char*>(&h), sizeof h);

  const auto off = g.offsets();
  const auto adj = g.adjacency();
  out.write(reinterpret_cast<const char*>(off.data()),
            static_cast<std::streamsize>(off.size() * sizeof(eid)));
  out.write(reinterpret_cast<const char*>(adj.data()),
            static_cast<std::streamsize>(adj.size() * sizeof(vid)));
  GCT_CHECK(out.good(), "write failed: " + path);
}

CsrGraph read_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GCT_CHECK(in.good(), "cannot open binary graph file: " + path);

  Header h;
  in.read(reinterpret_cast<char*>(&h), sizeof h);
  GCT_CHECK(in.good(), "truncated binary graph header: " + path);
  GCT_CHECK(h.magic == kMagic, "not a GraphCT binary graph: " + path);
  GCT_CHECK(h.version == kVersion,
            "unsupported binary graph version in " + path);
  GCT_CHECK(h.num_vertices >= 0 && h.num_entries >= 0,
            "corrupt binary graph header: " + path);

  std::vector<eid> offsets(static_cast<std::size_t>(h.num_vertices) + 1);
  std::vector<vid> adjacency(static_cast<std::size_t>(h.num_entries));
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(eid)));
  in.read(reinterpret_cast<char*>(adjacency.data()),
          static_cast<std::streamsize>(adjacency.size() * sizeof(vid)));
  GCT_CHECK(in.good(), "truncated binary graph data: " + path);

  // The CsrGraph constructor re-validates all structural invariants, so a
  // corrupt file cannot produce an out-of-bounds graph.
  return CsrGraph(std::move(offsets), std::move(adjacency),
                  (h.flags & 1u) != 0, h.num_self_loops, (h.flags & 2u) != 0);
}

}  // namespace graphct
