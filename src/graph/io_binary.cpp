#include "graph/io_binary.hpp"

#include <cstring>
#include <fstream>
#include <vector>

#include "util/checksum.hpp"
#include "util/error.hpp"

namespace graphct {

namespace {

constexpr std::uint64_t kMagic = 0x4743544231ULL;  // "GCTB1"
constexpr std::uint32_t kVersion = 2;

struct Header {
  std::uint64_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::uint32_t flags = 0;  // bit 0: directed, bit 1: sorted adjacency
  std::int64_t num_vertices = 0;
  std::int64_t num_entries = 0;
  std::int64_t num_self_loops = 0;
};

/// v2 files end with a checksum over everything before the trailer, so a
/// partial write or bit rot is caught at load instead of surfacing later as
/// a mysterious CsrGraph invariant failure (or worse, silently wrong
/// adjacency that still happens to satisfy the invariants).
struct Trailer {
  std::uint64_t checksum = 0;
  char end_magic[8] = {'G', 'C', 'T', 'B', 'E', 'N', 'D', '2'};
};

bool end_magic_ok(const Trailer& t) {
  const Trailer expected;
  return std::memcmp(t.end_magic, expected.end_magic,
                     sizeof(t.end_magic)) == 0;
}

}  // namespace

void write_binary(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  GCT_CHECK(out.good(), "cannot open file for writing: " + path);

  Header h;
  h.flags = (g.directed() ? 1u : 0u) | (g.sorted_adjacency() ? 2u : 0u);
  h.num_vertices = g.num_vertices();
  h.num_entries = g.num_adjacency_entries();
  h.num_self_loops = g.num_self_loops();

  const auto off = g.offsets();
  const auto adj = g.adjacency();
  Fnv1a64 sum;
  sum.update(&h, sizeof h);
  sum.update(off.data(), off.size() * sizeof(eid));
  sum.update(adj.data(), adj.size() * sizeof(vid));
  Trailer t;
  t.checksum = sum.digest();

  out.write(reinterpret_cast<const char*>(&h), sizeof h);
  out.write(reinterpret_cast<const char*>(off.data()),
            static_cast<std::streamsize>(off.size() * sizeof(eid)));
  out.write(reinterpret_cast<const char*>(adj.data()),
            static_cast<std::streamsize>(adj.size() * sizeof(vid)));
  out.write(reinterpret_cast<const char*>(&t), sizeof t);
  GCT_CHECK(out.good(), "write failed: " + path);
}

CsrGraph read_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  GCT_CHECK(in.good(), "cannot open binary graph file: " + path);
  const auto file_bytes = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0);

  Header h;
  GCT_CHECK(file_bytes >= sizeof h,
            "not a GraphCT binary graph (file smaller than the header): " +
                path);
  in.read(reinterpret_cast<char*>(&h), sizeof h);
  GCT_CHECK(in.good(), "cannot read binary graph header: " + path);
  GCT_CHECK(h.magic == kMagic,
            "not a GraphCT binary graph (bad magic): " + path);
  GCT_CHECK(h.version == 1 || h.version == kVersion,
            "unsupported binary graph version " + std::to_string(h.version) +
                " in " + path + " (this build reads versions 1-" +
                std::to_string(kVersion) + ")");
  GCT_CHECK(h.num_vertices >= 0 && h.num_entries >= 0,
            "corrupt binary graph header (negative counts): " + path);

  // Validate the size before allocating: a corrupt count would otherwise
  // turn into a giant allocation or a confusing short read.
  const std::uint64_t array_bytes =
      (static_cast<std::uint64_t>(h.num_vertices) + 1) * sizeof(eid) +
      static_cast<std::uint64_t>(h.num_entries) * sizeof(vid);
  const std::uint64_t expected =
      sizeof(Header) + array_bytes + (h.version >= 2 ? sizeof(Trailer) : 0);
  GCT_CHECK(file_bytes >= expected,
            "truncated binary graph file: " + path + " (" +
                std::to_string(file_bytes) + " bytes, header promises " +
                std::to_string(expected) + ")");
  GCT_CHECK(file_bytes == expected,
            "binary graph file has trailing bytes: " + path + " (" +
                std::to_string(file_bytes) + " bytes, header promises " +
                std::to_string(expected) + ")");

  std::vector<eid> offsets(static_cast<std::size_t>(h.num_vertices) + 1);
  std::vector<vid> adjacency(static_cast<std::size_t>(h.num_entries));
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(eid)));
  in.read(reinterpret_cast<char*>(adjacency.data()),
          static_cast<std::streamsize>(adjacency.size() * sizeof(vid)));
  GCT_CHECK(in.good(), "truncated binary graph data: " + path);

  if (h.version >= 2) {
    Trailer t;
    in.read(reinterpret_cast<char*>(&t), sizeof t);
    GCT_CHECK(in.good(), "truncated binary graph trailer: " + path);
    GCT_CHECK(end_magic_ok(t),
              "corrupt binary graph trailer (bad end marker): " + path);
    Fnv1a64 sum;
    sum.update(&h, sizeof h);
    sum.update(offsets.data(), offsets.size() * sizeof(eid));
    sum.update(adjacency.data(), adjacency.size() * sizeof(vid));
    GCT_CHECK(sum.digest() == t.checksum,
              "binary graph checksum mismatch (corrupt or partially "
              "written file): " +
                  path);
  }

  // The CsrGraph constructor re-validates all structural invariants, so a
  // corrupt file cannot produce an out-of-bounds graph.
  return CsrGraph(std::move(offsets), std::move(adjacency),
                  (h.flags & 1u) != 0, h.num_self_loops, (h.flags & 2u) != 0);
}

}  // namespace graphct
