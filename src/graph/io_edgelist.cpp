#include "graph/io_edgelist.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace graphct {

EdgeList parse_edge_list(std::string_view text) {
  EdgeList el;
  std::size_t pos = 0;
  std::int64_t lineno = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++lineno;
    // Strip trailing CR and leading spaces.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.remove_suffix(1);
    }
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    if (line.empty() || line[0] == '#' || line[0] == '%' || line[0] == 'c') {
      continue;
    }
    std::int64_t vals[2];
    std::size_t q = 0;
    for (int k = 0; k < 2; ++k) {
      while (q < line.size() && (line[q] == ' ' || line[q] == '\t')) ++q;
      bool any = false;
      std::int64_t v = 0;
      while (q < line.size() &&
             std::isdigit(static_cast<unsigned char>(line[q]))) {
        v = v * 10 + (line[q] - '0');
        ++q;
        any = true;
      }
      GCT_CHECK(any, "edge list line " + std::to_string(lineno) +
                         ": expected two vertex ids");
      vals[k] = v;
    }
    el.add(vals[0], vals[1]);
  }
  return el;
}

EdgeList read_edge_list(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GCT_CHECK(in.good(), "cannot open edge list file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_edge_list(ss.str());
}

std::string to_edge_list(const CsrGraph& g) {
  std::ostringstream os;
  os << "# GraphCT edge list: " << g.num_vertices() << " vertices, "
     << g.num_edges() << " edges\n";
  const vid n = g.num_vertices();
  for (vid u = 0; u < n; ++u) {
    for (vid v : g.neighbors(u)) {
      if (!g.directed() && u > v) continue;
      os << u << ' ' << v << '\n';
    }
  }
  return os.str();
}

void write_edge_list(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  GCT_CHECK(out.good(), "cannot open file for writing: " + path);
  out << to_edge_list(g);
  GCT_CHECK(out.good(), "write failed: " + path);
}

}  // namespace graphct
