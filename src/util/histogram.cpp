#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "util/error.hpp"

namespace graphct {

LinearHistogram::LinearHistogram(std::int64_t bin_width,
                                 std::int64_t max_value)
    : width_(bin_width) {
  GCT_CHECK(bin_width > 0, "LinearHistogram: bin width must be positive");
  GCT_CHECK(max_value >= 0, "LinearHistogram: max value must be nonnegative");
  const std::int64_t nbins = max_value / bin_width + 1;
  bins_.resize(static_cast<std::size_t>(nbins));
  for (std::int64_t b = 0; b < nbins; ++b) {
    bins_[static_cast<std::size_t>(b)] = {b * bin_width, (b + 1) * bin_width,
                                          0};
  }
}

void LinearHistogram::add(std::int64_t value) {
  GCT_CHECK(value >= 0, "LinearHistogram: negative value");
  std::size_t b = static_cast<std::size_t>(value / width_);
  if (b >= bins_.size()) b = bins_.size() - 1;
  ++bins_[b].count;
  ++total_;
}

void LinearHistogram::add_all(std::span<const std::int64_t> values) {
  for (std::int64_t v : values) add(v);
}

namespace {
// Bin index for the log histogram: 0 -> {0}, 1 -> {1}, else 1+ceil(log2(v)).
std::size_t log_bin_index(std::int64_t value) {
  if (value <= 0) return 0;
  if (value == 1) return 1;
  std::size_t b = 2;
  std::int64_t hi = 2;
  while (value >= hi * 2 && hi > 0) {
    hi *= 2;
    ++b;
  }
  return b;
}
}  // namespace

LogHistogram::LogHistogram() : counts_(64, 0) {}

void LogHistogram::add(std::int64_t value) {
  GCT_CHECK(value >= 0, "LogHistogram: negative value");
  ++counts_[log_bin_index(value)];
  ++total_;
}

void LogHistogram::add_all(std::span<const std::int64_t> values) {
  for (std::int64_t v : values) add(v);
}

std::vector<HistogramBin> LogHistogram::bins() const {
  std::size_t last = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] > 0) last = i;
  }
  std::vector<HistogramBin> out;
  out.reserve(last + 1);
  for (std::size_t i = 0; i <= last; ++i) {
    HistogramBin b;
    if (i == 0) {
      b.lo = 0;
      b.hi = 1;
    } else if (i == 1) {
      b.lo = 1;
      b.hi = 2;
    } else {
      b.lo = std::int64_t{1} << (i - 1);
      b.hi = std::int64_t{1} << i;
    }
    b.count = counts_[i];
    out.push_back(b);
  }
  return out;
}

std::string LogHistogram::ascii_chart(int width) const {
  std::ostringstream os;
  const auto bs = bins();
  std::int64_t maxc = 1;
  for (const auto& b : bs) maxc = std::max(maxc, b.count);
  const double lmax = std::log10(static_cast<double>(maxc) + 1.0);
  for (const auto& b : bs) {
    char label[40];
    if (b.hi - b.lo == 1) {
      std::snprintf(label, sizeof label, "%10lld      ",
                    static_cast<long long>(b.lo));
    } else {
      std::snprintf(label, sizeof label, "%6lld-%-8lld",
                    static_cast<long long>(b.lo),
                    static_cast<long long>(b.hi - 1));
    }
    const double frac =
        lmax > 0 ? std::log10(static_cast<double>(b.count) + 1.0) / lmax : 0.0;
    const int bar = static_cast<int>(frac * width + 0.5);
    os << label << " |";
    for (int i = 0; i < bar; ++i) os << '#';
    os << ' ' << b.count << '\n';
  }
  return os.str();
}

std::vector<std::pair<std::int64_t, std::int64_t>> frequency_table(
    std::span<const std::int64_t> values) {
  std::map<std::int64_t, std::int64_t> freq;
  for (std::int64_t v : values) ++freq[v];
  return {freq.begin(), freq.end()};
}

}  // namespace graphct
