#pragma once

/// \file result_cache.hpp
/// Thread-safe compute-once result cache.
///
/// Maps string keys ("components", "bc|sources=256|seed=1", ...) to
/// type-erased immutable values. The first caller of a key computes the
/// value outside the lock; concurrent callers of the same key block until
/// it is published and then share the same object. This is the paper's
/// "kernels accumulate results in structures accessible by later kernel
/// functions" made safe for many analyst sessions sharing one resident
/// graph (§IV-A), and it is what the server's job accounting reads to show
/// whether a query hit or recomputed.
///
/// Values are held as shared_ptr<const T>, so a result stays valid for
/// callers that obtained it even after invalidate() drops the table.

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace graphct {

/// Thread-safe map from key to immutable, lazily computed value.
class ResultCache {
 public:
  /// Hit/miss counters since construction (or the last reset via
  /// invalidate(), which preserves them — they describe traffic, not
  /// contents) plus the live entry count.
  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t entries = 0;
  };

  ResultCache() = default;
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Return the cached value for `key`, computing it with `fn` on first
  /// use. Concurrent callers with the same key block until the first
  /// caller's computation publishes; exactly one computation runs per key.
  /// If the computing caller throws, the entry is removed (waiters receive
  /// the error) and a later call recomputes.
  template <typename T, typename Fn>
  std::shared_ptr<const T> get_or_compute(const std::string& key, Fn&& fn) {
    auto [entry, is_owner] = acquire(key);
    if (!is_owner) {
      return std::static_pointer_cast<const T>(entry->value);
    }
    try {
      std::shared_ptr<const T> value =
          std::make_shared<const T>(std::forward<Fn>(fn)());
      publish(entry, value);
      return value;
    } catch (...) {
      abandon(key, entry);
      throw;
    }
  }

  /// True when `key` holds a published value (no blocking).
  [[nodiscard]] bool contains(const std::string& key) const;

  /// Drop every entry. Outstanding shared_ptrs stay valid; in-flight
  /// computations publish into their (now detached) entries, which are
  /// simply discarded. Traffic counters are preserved.
  void invalidate();

  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const void> value;
    bool ready = false;
    bool failed = false;
  };

  /// Look up or insert `key`. Returns the entry plus true when the caller
  /// must compute the value ("owner"); blocks when another thread owns an
  /// unpublished entry. Throws graphct::Error if the owning computation
  /// failed (waiters do not retry on the owner's behalf).
  std::pair<std::shared_ptr<Entry>, bool> acquire(const std::string& key);

  /// Publish an owned entry's value and wake waiters.
  void publish(const std::shared_ptr<Entry>& entry,
               std::shared_ptr<const void> value);

  /// Remove a failed owned entry so a later call can retry.
  void abandon(const std::string& key, const std::shared_ptr<Entry>& entry);

  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> entries_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace graphct
