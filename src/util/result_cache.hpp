#pragma once

/// \file result_cache.hpp
/// Thread-safe compute-once result cache with an optional byte budget.
///
/// Maps string keys ("components", "bc|sources=256|seed=1", ...) to
/// type-erased immutable values. The first caller of a key computes the
/// value outside the lock; concurrent callers of the same key block until
/// it is published and then share the same object. This is the paper's
/// "kernels accumulate results in structures accessible by later kernel
/// functions" made safe for many analyst sessions sharing one resident
/// graph (§IV-A), and it is what the server's job accounting reads to show
/// whether a query hit or recomputed.
///
/// Long-running servers additionally need the cache *bounded*: a stream of
/// distinct queries (betweenness with ever-new parameters, diameter
/// re-estimates) would otherwise grow the table without limit. When a byte
/// budget is set, every published entry carries an estimated size and the
/// cache evicts least-recently-used entries until resident bytes fit the
/// budget — resident bytes never exceed it, even transiently after a
/// publish. Eviction only drops the cache's reference: values are held as
/// shared_ptr<const T>, so a result stays valid for callers that obtained
/// it even after eviction or invalidate() drops the table.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace graphct {

namespace detail {

/// Default byte estimator for cached values: object size plus, for
/// vectors, the heap allocation behind them. Call sites with richer
/// layouts (structs of vectors) pass an explicit estimator.
struct DefaultCacheBytes {
  template <typename T>
  std::size_t operator()(const T&) const {
    return sizeof(T);
  }
  template <typename E, typename A>
  std::size_t operator()(const std::vector<E, A>& v) const {
    return sizeof(v) + v.capacity() * sizeof(E);
  }
};

}  // namespace detail

/// Thread-safe map from key to immutable, lazily computed value.
class ResultCache {
 public:
  /// Traffic counters since construction (invalidate() preserves them —
  /// they describe traffic, not contents) plus the live entry count and
  /// the byte-budget accounting.
  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t entries = 0;
    std::int64_t evictions = 0;       ///< entries dropped by the budget
    std::int64_t resident_bytes = 0;  ///< estimated bytes of live entries
    std::int64_t budget_bytes = 0;    ///< configured budget (0 = unbounded)
  };

  ResultCache() = default;
  ~ResultCache();
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Bound the cache to `bytes` of estimated resident value memory
  /// (0 = unbounded, the default). Shrinking below the current residency
  /// evicts immediately, LRU first.
  void set_budget_bytes(std::uint64_t bytes);

  /// Return the cached value for `key`, computing it with `fn` on first
  /// use. Concurrent callers with the same key block until the first
  /// caller's computation publishes; exactly one computation runs per key.
  /// If the computing caller throws, the entry is removed (waiters receive
  /// the error) and a later call recomputes. `size_of` estimates the bytes
  /// an entry pins for budget accounting (DefaultCacheBytes when omitted).
  template <typename T, typename Fn, typename SizeFn = detail::DefaultCacheBytes>
  std::shared_ptr<const T> get_or_compute(const std::string& key, Fn&& fn,
                                          SizeFn size_of = {}) {
    auto [entry, is_owner] = acquire(key);
    if (!is_owner) {
      auto value = std::static_pointer_cast<const T>(entry->value);
      if (bounded_.load(std::memory_order_relaxed)) pin_on_thread(value);
      return value;
    }
    try {
      std::shared_ptr<const T> value =
          std::make_shared<const T>(std::forward<Fn>(fn)());
      publish(key, entry, value, size_of(*value));
      if (bounded_.load(std::memory_order_relaxed)) pin_on_thread(value);
      return value;
    } catch (...) {
      abandon(key, entry);
      throw;
    }
  }

  /// Release this thread's pinned values (see pin_on_thread). The job
  /// queue calls this between jobs; embedders driving a *bounded* cache
  /// directly should call it once in-flight references are no longer used.
  static void release_thread_pins();

  /// True when `key` holds a published value (no blocking, no LRU touch).
  [[nodiscard]] bool contains(const std::string& key) const;

  /// Drop every entry. Outstanding shared_ptrs stay valid; in-flight
  /// computations publish into their (now detached) entries, which are
  /// simply discarded. Traffic counters are preserved; eviction counters
  /// are not advanced (invalidation is not eviction).
  void invalidate();

  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const void> value;
    bool ready = false;
    bool failed = false;
    std::size_t bytes = 0;
    bool in_lru = false;
    std::list<std::string>::iterator lru_it;
  };

  /// Look up or insert `key`. Returns the entry plus true when the caller
  /// must compute the value ("owner"); blocks when another thread owns an
  /// unpublished entry. Throws graphct::Error if the owning computation
  /// failed (waiters do not retry on the owner's behalf).
  std::pair<std::shared_ptr<Entry>, bool> acquire(const std::string& key);

  /// Publish an owned entry's value, charge the budget, evict LRU entries
  /// past it, and wake waiters.
  void publish(const std::string& key, const std::shared_ptr<Entry>& entry,
               std::shared_ptr<const void> value, std::size_t bytes);

  /// Remove a failed owned entry so a later call can retry.
  void abandon(const std::string& key, const std::shared_ptr<Entry>& entry);

  /// Keep `value` alive on the calling thread until release_thread_pins().
  /// Bounded caches hand out values that eviction may drop from the table
  /// at any moment, while Toolkit accessors return plain references; the
  /// per-thread pin keeps those references valid for the duration of the
  /// job/command that obtained them. Unbounded caches (the default) never
  /// pin — entries live until invalidate(), as before.
  static void pin_on_thread(std::shared_ptr<const void> value);

  /// Evict LRU entries until resident bytes fit the budget; mu_ held.
  void evict_to_budget_locked();

  /// Detach `entry` from the LRU list and budget accounting; mu_ held.
  void uncharge_locked(const std::shared_ptr<Entry>& entry);

  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> entries_;
  std::list<std::string> lru_;  ///< front = coldest, back = hottest
  std::uint64_t budget_bytes_ = 0;
  std::uint64_t resident_bytes_ = 0;
  std::atomic<bool> bounded_{false};  ///< budget_bytes_ != 0, lock-free read
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t evictions_ = 0;
};

}  // namespace graphct
