#pragma once

/// \file stats.hpp
/// Descriptive statistics used throughout GraphCT's characterization kernels
/// and benchmark harnesses: mean/variance summaries (the paper summarizes
/// degree statistics by mean and variance, §II-A), quantiles, confidence
/// intervals (the paper reports 90% confidence over 10 realizations, §III-E),
/// and a power-law exponent estimate for Fig. 2-style degree data.

#include <cstdint>
#include <span>
#include <vector>

namespace graphct {

/// Moment summary of a sample.
struct Summary {
  std::int64_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< Unbiased (n-1) sample variance; 0 when n < 2.
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Compute a Summary over integer or real data (parallel two-pass).
Summary summarize(std::span<const std::int64_t> data);
Summary summarize(std::span<const double> data);

/// q-quantile (0 <= q <= 1) by linear interpolation on a sorted copy.
double quantile(std::span<const double> data, double q);

/// Two-sided confidence half-width for the sample mean at the given level
/// (default 0.90, matching the paper) using Student's t critical values.
/// Returns 0 for n < 2.
double confidence_half_width(const Summary& s, double level = 0.90);

/// Maximum-likelihood power-law exponent for discrete data x >= xmin
/// (Clauset-Shalizi-Newman approximation:
///  alpha = 1 + n / sum(ln(x_i / (xmin - 0.5)))).
/// Values below xmin are ignored. Returns 0 when fewer than 2 usable points.
double power_law_alpha(std::span<const std::int64_t> data,
                       std::int64_t xmin = 1);

/// Pearson correlation of two equal-length samples; 0 if degenerate.
double pearson(std::span<const double> x, std::span<const double> y);

}  // namespace graphct
