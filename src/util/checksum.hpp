#pragma once

/// \file checksum.hpp
/// FNV-1a 64-bit checksum, shared by the binary graph format trailer
/// (graph/io_binary) and the packed storage format trailer
/// (storage/packed_format). Not cryptographic — it exists to catch
/// truncation, bit rot, and cross-format confusion, cheaply and with no
/// dependencies.

#include <cstddef>
#include <cstdint>

namespace graphct {

/// Incremental FNV-1a 64. Feed bytes in any chunking; digest() is the
/// checksum of everything fed so far.
class Fnv1a64 {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;

  void update(const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = hash_;
    for (std::size_t i = 0; i < bytes; ++i) {
      h ^= static_cast<std::uint64_t>(p[i]);
      h *= kPrime;
    }
    hash_ = h;
  }

  [[nodiscard]] std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = kOffsetBasis;
};

/// One-shot convenience over a single buffer.
inline std::uint64_t fnv1a64(const void* data, std::size_t bytes) {
  Fnv1a64 h;
  h.update(data, bytes);
  return h.digest();
}

}  // namespace graphct
