#include "util/framing.hpp"

#include <cstring>

#include "util/checksum.hpp"

namespace graphct::framing {

std::size_t count_lines(std::string_view payload) {
  std::size_t n = 0;
  for (const char c : payload) {
    if (c == '\n') ++n;
  }
  return n;
}

std::string render_text_reply(const TextReply& reply,
                              const std::string& request_id,
                              TextProtocol protocol) {
  const char* status = reply.status == TextReply::Status::kOk      ? "ok"
                       : reply.status == TextReply::Status::kError ? "error"
                                                                   : "busy";
  std::string payload = reply.payload;
  if (!payload.empty() && payload.back() != '\n') payload += '\n';

  if (protocol == TextProtocol::kCompat) {
    // Original framing: payload lines, then one terminator line starting
    // "ok" or "error". Shed requests render as errors so old clients keep
    // framing correctly; the "busy:" prefix is the machine-readable hint.
    std::string term;
    if (reply.status == TextReply::Status::kBusy) {
      term = "error";
      if (!request_id.empty()) term += " id=" + request_id;
      term += " busy: " + reply.message;
    } else if (reply.status == TextReply::Status::kError) {
      term = "error";
      if (!request_id.empty()) term += " id=" + request_id;
      term += " " + reply.message;
    } else {
      term = "ok";
      if (!request_id.empty()) term += " id=" + request_id;
      term += reply.accounting;
    }
    return payload + term + "\n";
  }

  // Framed v1: one header line with a payload line count, then exactly
  // that many lines. Errors carry the message as the last payload line;
  // busy responses carry the reason as their only payload line.
  if (reply.status != TextReply::Status::kOk && !reply.message.empty()) {
    payload += reply.message + "\n";
  }
  std::string header = "gct/1 ";
  header += status;
  header += " lines=" + std::to_string(count_lines(payload));
  if (!request_id.empty()) header += " id=" + request_id;
  if (reply.status == TextReply::Status::kOk) header += reply.accounting;
  return header + "\n" + payload;
}

bool parse_text_header(std::string_view line, TextHeader& out) {
  constexpr std::string_view kMagic = "gct/1 ";
  if (line.substr(0, kMagic.size()) != kMagic) return false;
  line.remove_prefix(kMagic.size());

  const std::size_t sp = line.find(' ');
  const std::string_view status =
      sp == std::string_view::npos ? line : line.substr(0, sp);
  if (status == "ok") {
    out.status = TextReply::Status::kOk;
  } else if (status == "error") {
    out.status = TextReply::Status::kError;
  } else if (status == "busy") {
    out.status = TextReply::Status::kBusy;
  } else {
    return false;
  }
  if (sp == std::string_view::npos) return false;
  line.remove_prefix(sp + 1);

  constexpr std::string_view kLines = "lines=";
  if (line.substr(0, kLines.size()) != kLines) return false;
  line.remove_prefix(kLines.size());
  std::size_t lines = 0;
  std::size_t digits = 0;
  while (digits < line.size() && line[digits] >= '0' && line[digits] <= '9') {
    lines = lines * 10 + static_cast<std::size_t>(line[digits] - '0');
    ++digits;
  }
  if (digits == 0) return false;
  out.lines = lines;
  line.remove_prefix(digits);

  out.request_id.clear();
  constexpr std::string_view kId = " id=";
  if (line.substr(0, kId.size()) == kId) {
    line.remove_prefix(kId.size());
    const std::size_t end = line.find(' ');
    out.request_id = std::string(
        end == std::string_view::npos ? line : line.substr(0, end));
  }
  return true;
}

namespace {

void put_u32(unsigned char* p, std::uint32_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
  p[2] = static_cast<unsigned char>(v >> 16);
  p[3] = static_cast<unsigned char>(v >> 24);
}

void put_u64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<unsigned char>(v >> (8 * i));
  }
}

std::uint32_t get_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

void encode_frame_header(const FrameHeader& h,
                         unsigned char out[kFrameHeaderBytes]) {
  put_u32(out, kFrameMagic);
  out[4] = h.version;
  out[5] = h.type;
  out[6] = 0;  // reserved
  out[7] = 0;
  put_u64(out + 8, h.payload_len);
  put_u64(out + 16, h.checksum);
}

HeaderStatus decode_frame_header(const unsigned char* in, FrameHeader& out) {
  if (get_u32(in) != kFrameMagic) return HeaderStatus::kBadMagic;
  out.version = in[4];
  out.type = in[5];
  out.payload_len = get_u64(in + 8);
  out.checksum = get_u64(in + 16);
  if (out.version != kFrameVersion) return HeaderStatus::kBadVersion;
  if (out.payload_len > kMaxFramePayload) return HeaderStatus::kOversized;
  return HeaderStatus::kOk;
}

std::string encode_frame(std::uint8_t type, std::string_view payload) {
  FrameHeader h;
  h.type = type;
  h.payload_len = payload.size();
  h.checksum = fnv1a64(payload.data(), payload.size());
  std::string out;
  out.resize(kFrameHeaderBytes + payload.size());
  encode_frame_header(h, reinterpret_cast<unsigned char*>(out.data()));
  if (!payload.empty()) {
    std::memcpy(out.data() + kFrameHeaderBytes, payload.data(),
                payload.size());
  }
  return out;
}

bool payload_matches(const FrameHeader& h, std::string_view payload) {
  return h.payload_len == payload.size() &&
         h.checksum == fnv1a64(payload.data(), payload.size());
}

}  // namespace graphct::framing
