#include "util/bitmap.hpp"

#include <bit>

#include "util/parallel.hpp"

namespace graphct {

namespace {

// Words per compaction block: 64 words = 4096 bits per block keeps the
// per-block counts array tiny while giving schedulers enough chunks.
constexpr std::int64_t kBlockWords = 64;

}  // namespace

void Bitmap::clear() {
  const std::int64_t nw = num_words();
#pragma omp parallel for schedule(static)
  for (std::int64_t w = 0; w < nw; ++w) {
    words_[static_cast<std::size_t>(w)] = 0;
  }
}

void Bitmap::assign_bits(const std::int64_t* ids, std::int64_t count) {
  clear();
  // Small frontiers skip the parallel region and the lock-prefixed ORs;
  // ascending-id level arrays make the serial path a near-sequential write.
  constexpr std::int64_t kSerialBelow = 4096;
  if (count < kSerialBelow) {
    for (std::int64_t i = 0; i < count; ++i) set(ids[i]);
    return;
  }
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < count; ++i) set_atomic(ids[i]);
}

std::int64_t Bitmap::count() const {
  const std::int64_t nw = num_words();
  std::int64_t total = 0;
#pragma omp parallel for schedule(static) reduction(+ : total)
  for (std::int64_t w = 0; w < nw; ++w) {
    total += std::popcount(words_[static_cast<std::size_t>(w)] & live_mask(w));
  }
  return total;
}

std::int64_t compact_set_bits(const Bitmap& bm, std::int64_t* out,
                              std::vector<std::int64_t>& block_counts) {
  const std::int64_t nw = bm.num_words();
  const std::int64_t nblocks = (nw + kBlockWords - 1) / kBlockWords;
  if (static_cast<std::int64_t>(block_counts.size()) < nblocks) {
    block_counts.resize(static_cast<std::size_t>(nblocks));
  }

#pragma omp parallel for schedule(static)
  for (std::int64_t b = 0; b < nblocks; ++b) {
    const std::int64_t wend = std::min(nw, (b + 1) * kBlockWords);
    std::int64_t c = 0;
    for (std::int64_t w = b * kBlockWords; w < wend; ++w) {
      c += std::popcount(bm.word(w) & bm.live_mask(w));
    }
    block_counts[static_cast<std::size_t>(b)] = c;
  }

  const std::int64_t total = exclusive_scan(
      std::span<const std::int64_t>(block_counts.data(),
                                    static_cast<std::size_t>(nblocks)),
      std::span<std::int64_t>(block_counts.data(),
                              static_cast<std::size_t>(nblocks)));

#pragma omp parallel for schedule(static)
  for (std::int64_t b = 0; b < nblocks; ++b) {
    std::int64_t pos = block_counts[static_cast<std::size_t>(b)];
    const std::int64_t wend = std::min(nw, (b + 1) * kBlockWords);
    for (std::int64_t w = b * kBlockWords; w < wend; ++w) {
      std::uint64_t bits = bm.word(w) & bm.live_mask(w);
      const std::int64_t base = w * Bitmap::kBitsPerWord;
      while (bits != 0) {
        out[pos++] = base + std::countr_zero(bits);
        bits &= bits - 1;
      }
    }
  }
  return total;
}

}  // namespace graphct
