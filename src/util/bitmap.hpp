#pragma once

/// \file bitmap.hpp
/// Word-packed bitmap for frontier membership and visited sets.
///
/// The BFS frontier engine keeps three of these per search (current frontier,
/// next frontier, visited). Packing 64 vertices per word turns the bottom-up
/// membership test into one load + mask, lets sweeps skip fully-visited
/// vertices 64 at a time, and shrinks the working set 8x versus the
/// std::vector<char> flags it replaces — the same reasons Beamer's
/// direction-optimizing BFS and the XMT full/empty-bit codes packed state
/// into words.
///
/// Concurrency contract: set_atomic() may race with other set_atomic() and
/// with test() on any bit. set() and set_in_word() require the caller to own
/// the word exclusively (the bottom-up sweep partitions vertices word-by-word
/// across threads for exactly this reason).

#include <cstdint>
#include <vector>

namespace graphct {

class Bitmap {
 public:
  static constexpr std::int64_t kBitsPerWord = 64;

  Bitmap() = default;
  explicit Bitmap(std::int64_t bits) { resize(bits); }

  /// Size to hold `bits` bits. Storage only grows (frontier scratch is
  /// reused across graphs of different sizes); content is unspecified
  /// afterwards — call clear().
  void resize(std::int64_t bits) {
    bits_ = bits;
    const auto words = static_cast<std::size_t>(word_count(bits));
    if (words_.size() < words) words_.resize(words);
  }

  /// Zero every word, in parallel. Replaces the serial O(n) std::fill the
  /// old engine paid per bottom-up level.
  void clear();

  [[nodiscard]] std::int64_t size() const { return bits_; }
  [[nodiscard]] std::int64_t num_words() const { return word_count(bits_); }

  [[nodiscard]] bool test(std::int64_t i) const {
    return (words_[static_cast<std::size_t>(i / kBitsPerWord)] >>
            (i % kBitsPerWord)) &
           1u;
  }

  /// Non-atomic set: caller owns the containing word.
  void set(std::int64_t i) {
    words_[static_cast<std::size_t>(i / kBitsPerWord)] |=
        std::uint64_t{1} << (i % kBitsPerWord);
  }

  /// Atomic set, safe from concurrent threads (relaxed fetch_or — BFS levels
  /// are separated by barriers, so no ordering beyond the region join is
  /// needed).
  void set_atomic(std::int64_t i) {
    __atomic_fetch_or(&words_[static_cast<std::size_t>(i / kBitsPerWord)],
                      std::uint64_t{1} << (i % kBitsPerWord),
                      __ATOMIC_RELAXED);
  }

  [[nodiscard]] std::uint64_t word(std::int64_t w) const {
    return words_[static_cast<std::size_t>(w)];
  }

  /// Non-atomic bit set within word `w`: caller owns the word.
  void set_in_word(std::int64_t w, int bit) {
    words_[static_cast<std::size_t>(w)] |= std::uint64_t{1} << bit;
  }

  /// Non-atomic whole-word store: caller owns the word.
  void store_word(std::int64_t w, std::uint64_t value) {
    words_[static_cast<std::size_t>(w)] = value;
  }

  /// Mask selecting the in-range bits of word `w` (all-ones except possibly
  /// the last word). Sweeps AND with this so padding bits never look like
  /// vertices.
  [[nodiscard]] std::uint64_t live_mask(std::int64_t w) const {
    const std::int64_t rem = bits_ - w * kBitsPerWord;
    if (rem >= kBitsPerWord) return ~std::uint64_t{0};
    if (rem <= 0) return 0;
    return (std::uint64_t{1} << rem) - 1;
  }

  /// Clear every bit, then set the bit for each of ids[0..count). Parallel
  /// atomic ORs for large id lists; plain serial writes below a threshold so
  /// tiny frontiers (high-diameter BFS levels) pay no atomics. Safe for
  /// duplicate ids.
  void assign_bits(const std::int64_t* ids, std::int64_t count);

  /// Population count over the whole bitmap (parallel).
  [[nodiscard]] std::int64_t count() const;

  static std::int64_t word_count(std::int64_t bits) {
    return (bits + kBitsPerWord - 1) / kBitsPerWord;
  }

 private:
  std::int64_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Write the indices of every set bit, in ascending order, to
/// out[0..count). Two-pass block compaction: per-block popcounts, an
/// exclusive prefix sum, then per-block emission — each pass parallel, and
/// the output deterministic regardless of thread count. `block_counts` is
/// caller-owned scratch (grown as needed) so repeated compactions allocate
/// nothing. Returns the number of indices written; `out` must have room for
/// every set bit.
std::int64_t compact_set_bits(const Bitmap& bm, std::int64_t* out,
                              std::vector<std::int64_t>& block_counts);

}  // namespace graphct
