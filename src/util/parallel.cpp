#include "util/parallel.hpp"

#include <omp.h>

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace graphct {

int num_threads() { return omp_get_max_threads(); }

int effective_num_threads() { return obs::effective_threads(); }

void set_num_threads(int n) {
  if (n <= 0) {
    omp_set_num_threads(omp_get_num_procs());
  } else {
    omp_set_num_threads(n);
  }
  obs::registry()
      .gauge("gct_omp_threads_requested")
      .set(static_cast<double>(num_threads()));
  obs::registry()
      .gauge("gct_omp_threads_effective")
      .set(static_cast<double>(effective_num_threads()));
}

std::int64_t fetch_add(std::int64_t& target, std::int64_t delta) {
  std::int64_t old;
#pragma omp atomic capture
  {
    old = target;
    target += delta;
  }
  return old;
}

double fetch_add(double& target, double delta) {
  double old;
#pragma omp atomic capture
  {
    old = target;
    target += delta;
  }
  return old;
}

bool compare_and_swap(std::int64_t& target, std::int64_t expected,
                      std::int64_t desired) {
  return __atomic_compare_exchange_n(&target, &expected, desired,
                                     /*weak=*/false, __ATOMIC_SEQ_CST,
                                     __ATOMIC_SEQ_CST);
}

bool atomic_min(std::int64_t& target, std::int64_t value) {
  std::int64_t cur = __atomic_load_n(&target, __ATOMIC_RELAXED);
  while (value < cur) {
    if (__atomic_compare_exchange_n(&target, &cur, value, /*weak=*/true,
                                    __ATOMIC_SEQ_CST, __ATOMIC_RELAXED)) {
      return true;
    }
  }
  return false;
}

std::int64_t exclusive_scan(std::span<const std::int64_t> in,
                            std::span<std::int64_t> out) {
  GCT_ASSERT(in.size() == out.size());
  const std::int64_t n = static_cast<std::int64_t>(in.size());
  if (n == 0) return 0;

  const int nt = num_threads();
  std::vector<std::int64_t> block_sum(static_cast<std::size_t>(nt) + 1, 0);

  // The region may get fewer threads than requested (most importantly when
  // the caller is already inside a parallel region and nesting is off, where
  // the team collapses to 1) — so the total lives at block_sum[actual team
  // size], not block_sum[nt]. Indexing by nt here returned a stale 0 for
  // nested callers, which silently emptied every compacted BFS level.
  int team = 1;
#pragma omp parallel num_threads(nt)
  {
    const int t = omp_get_thread_num();
    const int p = omp_get_num_threads();
    const std::int64_t lo = n * t / p;
    const std::int64_t hi = n * (t + 1) / p;
    std::int64_t s = 0;
    for (std::int64_t i = lo; i < hi; ++i) s += in[static_cast<std::size_t>(i)];
    block_sum[static_cast<std::size_t>(t) + 1] = s;
#pragma omp barrier
#pragma omp single
    {
      for (int b = 0; b < p; ++b) block_sum[b + 1] += block_sum[b];
      team = p;
    }
    std::int64_t run = block_sum[static_cast<std::size_t>(t)];
    for (std::int64_t i = lo; i < hi; ++i) {
      const std::int64_t v = in[static_cast<std::size_t>(i)];
      out[static_cast<std::size_t>(i)] = run;
      run += v;
    }
  }
  return block_sum[static_cast<std::size_t>(team)];
}

std::int64_t exclusive_scan_inplace(std::vector<std::int64_t>& v) {
  return exclusive_scan(std::span<const std::int64_t>(v.data(), v.size()),
                        std::span<std::int64_t>(v.data(), v.size()));
}

std::int64_t reduce_sum(std::span<const std::int64_t> v) {
  std::int64_t s = 0;
  const std::int64_t n = static_cast<std::int64_t>(v.size());
#pragma omp parallel for reduction(+ : s) schedule(static)
  for (std::int64_t i = 0; i < n; ++i) s += v[static_cast<std::size_t>(i)];
  return s;
}

double reduce_sum(std::span<const double> v) {
  double s = 0;
  const std::int64_t n = static_cast<std::int64_t>(v.size());
#pragma omp parallel for reduction(+ : s) schedule(static)
  for (std::int64_t i = 0; i < n; ++i) s += v[static_cast<std::size_t>(i)];
  return s;
}

std::int64_t reduce_max(std::span<const std::int64_t> v,
                        std::int64_t identity) {
  std::int64_t m = identity;
  const std::int64_t n = static_cast<std::int64_t>(v.size());
#pragma omp parallel for reduction(max : m) schedule(static)
  for (std::int64_t i = 0; i < n; ++i)
    m = std::max(m, v[static_cast<std::size_t>(i)]);
  return m;
}

void parallel_fill(std::span<std::int64_t> v, std::int64_t value) {
  const std::int64_t n = static_cast<std::int64_t>(v.size());
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = value;
}

void parallel_fill(std::span<double> v, double value) {
  const std::int64_t n = static_cast<std::int64_t>(v.size());
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = value;
}

void tree_reduce_buffers(std::vector<std::vector<double>>& buffers,
                         std::span<double> out, bool clear_buffers) {
  const auto nb = static_cast<std::int64_t>(buffers.size());
  const auto n = static_cast<std::int64_t>(out.size());
  if (nb == 0) return;
  for (const auto& b : buffers) {
    GCT_ASSERT(static_cast<std::int64_t>(b.size()) >= n);
  }
  // Pairwise combine: after the last stage buffers[0] holds the full sum.
  // Summation order is fixed by the tree shape, not the schedule, so results
  // are reproducible for a given buffer count.
  for (std::int64_t stride = 1; stride < nb; stride *= 2) {
#pragma omp parallel for schedule(static)
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t b = 0; b + stride < nb; b += 2 * stride) {
        buffers[static_cast<std::size_t>(b)][static_cast<std::size_t>(i)] +=
            buffers[static_cast<std::size_t>(b + stride)]
                   [static_cast<std::size_t>(i)];
      }
    }
  }
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)] +=
        buffers[0][static_cast<std::size_t>(i)];
    if (clear_buffers) {
      for (std::int64_t b = 0; b < nb; ++b) {
        buffers[static_cast<std::size_t>(b)][static_cast<std::size_t>(i)] = 0.0;
      }
    }
  }
}

}  // namespace graphct
