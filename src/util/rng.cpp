#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/error.hpp"

namespace graphct {

std::uint64_t mix64(std::uint64_t x) {
  SplitMix64 sm(x);
  return sm.next();
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  GCT_ASSERT(bound != 0);
  // Lemire's multiply-shift rejection method: unbiased, one division in the
  // rare rejection path only.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  GCT_ASSERT(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_normal() {
  // Box-Muller; discard the second variate for simplicity.
  double u1 = next_double();
  double u2 = next_double();
  while (u1 <= 1e-300) u1 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

Rng Rng::split() { return Rng(next_u64()); }

std::vector<std::int64_t> Rng::sample_without_replacement(std::int64_t n,
                                                          std::int64_t k) {
  GCT_CHECK(k >= 0 && k <= n, "sample_without_replacement: k must be in [0,n]");
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(k));
  if (k * 16 >= n) {
    // Dense sample: partial Fisher-Yates over an explicit index array, O(n).
    std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) idx[static_cast<std::size_t>(i)] = i;
    for (std::int64_t i = 0; i < k; ++i) {
      std::int64_t j = next_in(i, n - 1);
      std::swap(idx[static_cast<std::size_t>(i)],
                idx[static_cast<std::size_t>(j)]);
    }
    out.assign(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k));
  } else {
    // Sparse sample: Floyd's algorithm with a hash set, O(k) expected.
    std::unordered_set<std::int64_t> chosen;
    chosen.reserve(static_cast<std::size_t>(k) * 2);
    for (std::int64_t j = n - k; j < n; ++j) {
      std::int64_t t = next_in(0, j);
      std::int64_t pick = chosen.count(t) ? j : t;
      chosen.insert(pick);
      out.push_back(pick);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace graphct
