#include "util/table.hpp"

#include <cstdarg>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace graphct {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  GCT_CHECK(!header_.empty(), "TextTable: header must be non-empty");
}

void TextTable::add_row(std::vector<std::string> cells) {
  GCT_CHECK(cells.size() == header_.size(),
            "TextTable: row arity does not match header");
  rows_.push_back(std::move(cells));
}

void TextTable::add_separator() { rows_.emplace_back(); }

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == '-' || c == '+' || c == ',' || c == 'e' || c == 'E' ||
          c == '%' || c == 'x')) {
      return false;
    }
  }
  return true;
}
}  // namespace

std::string TextTable::render() const {
  std::vector<std::size_t> w(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) w[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      w[c] = std::max(w[c], r[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << "  ";
      const bool right = looks_numeric(r[c]);
      const std::size_t pad = w[c] - r[c].size();
      if (right) os << std::string(pad, ' ') << r[c];
      else os << r[c] << std::string(pad, ' ');
    }
    os << '\n';
  };
  auto rule = [&] {
    std::size_t total = 0;
    for (std::size_t c = 0; c < w.size(); ++c) total += w[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
  };
  emit(header_);
  rule();
  for (const auto& r : rows_) {
    if (r.empty()) rule();
    else emit(r);
  }
  return os.str();
}

std::string strf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  char buf[512];
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  return buf;
}

std::string with_commas(long long v) {
  const bool neg = v < 0;
  unsigned long long u = neg ? 0ULL - static_cast<unsigned long long>(v)
                             : static_cast<unsigned long long>(v);
  std::string digits = std::to_string(u);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return neg ? "-" + out : out;
}

}  // namespace graphct
