#pragma once

/// \file cli.hpp
/// Minimal command-line flag parser for examples and bench binaries.
///
/// Supports `--key value`, `--key=value`, and boolean `--flag` forms.
/// Unknown flags raise graphct::Error so typos fail loudly.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace graphct {

/// Parsed command line. Declare the accepted flags up front, then query.
class Cli {
 public:
  /// `spec` maps flag name (without --) to a help string. A trailing '!'
  /// in the help string is stripped and marks the flag as boolean.
  Cli(int argc, const char* const* argv,
      std::map<std::string, std::string> spec);

  /// True when --name was given (boolean flags or valued flags alike).
  [[nodiscard]] bool has(const std::string& name) const;

  /// String value of --name, or `def` when absent.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& def) const;
  [[nodiscard]] std::int64_t get(const std::string& name,
                                 std::int64_t def) const;
  [[nodiscard]] double get(const std::string& name, double def) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Render a usage block listing all declared flags.
  [[nodiscard]] std::string help(const std::string& program) const;

 private:
  std::map<std::string, std::string> spec_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace graphct
