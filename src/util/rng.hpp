#pragma once

/// \file rng.hpp
/// Deterministic pseudo-random number generation.
///
/// Every stochastic component of GraphCT (R-MAT generation, source sampling,
/// the synthetic tweet corpus) takes an explicit 64-bit seed and derives all
/// randomness from these generators, so every experiment is reproducible
/// bit-for-bit. In parallel regions each thread derives an independent
/// stream with `Rng::split()`, keeping results independent of the OpenMP
/// schedule.

#include <cstdint>
#include <vector>

namespace graphct {

/// SplitMix64: tiny, high-quality 64-bit mixer. Used to seed Xoshiro and to
/// hash small integers into well-distributed 64-bit values.
struct SplitMix64 {
  std::uint64_t state;

  explicit SplitMix64(std::uint64_t seed) : state(seed) {}

  /// Next 64-bit value.
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

/// Mix an arbitrary 64-bit value into a well-distributed one (stateless).
std::uint64_t mix64(std::uint64_t x);

/// Xoshiro256** — the library's workhorse generator. Fast, passes BigCrush,
/// 2^256-1 period, cheap to fork into independent streams.
class Rng {
 public:
  /// Construct from a seed; any value (including 0) is acceptable.
  explicit Rng(std::uint64_t seed = 0x6a09e667f3bcc908ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  /// bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 random bits.
  double next_double();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// Standard-normal variate (Box-Muller, one value per call).
  double next_normal();

  /// Fork an independent generator. Implemented as a SplitMix64 reseed of a
  /// fresh Xoshiro state from this stream, so parent and child sequences do
  /// not overlap in practice.
  Rng split();

  /// Sample `k` distinct values from [0, n) in increasing order
  /// (Floyd's algorithm; O(k) expected memory, deterministic given the seed).
  /// Requires k <= n.
  std::vector<std::int64_t> sample_without_replacement(std::int64_t n,
                                                       std::int64_t k);

  /// Fisher-Yates shuffle of `v` in place.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace graphct
