#include "util/cli.hpp"

#include <sstream>

#include "util/error.hpp"

namespace graphct {

Cli::Cli(int argc, const char* const* argv,
         std::map<std::string, std::string> spec)
    : spec_(std::move(spec)) {
  auto is_bool = [&](const std::string& name) {
    auto it = spec_.find(name);
    return it != spec_.end() && !it->second.empty() &&
           it->second.back() == '!';
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string name = arg, value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    GCT_CHECK(spec_.count(name), "unknown flag --" + name);
    if (!has_value && !is_bool(name)) {
      GCT_CHECK(i + 1 < argc, "flag --" + name + " expects a value");
      value = argv[++i];
      has_value = true;
    }
    values_[name] = has_value ? value : "true";
  }
}

bool Cli::has(const std::string& name) const {
  GCT_CHECK(spec_.count(name), "querying undeclared flag --" + name);
  return values_.count(name) != 0;
}

std::string Cli::get(const std::string& name, const std::string& def) const {
  GCT_CHECK(spec_.count(name), "querying undeclared flag --" + name);
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t Cli::get(const std::string& name, std::int64_t def) const {
  auto s = get(name, std::string());
  if (s.empty()) return def;
  try {
    return std::stoll(s);
  } catch (const std::exception&) {
    throw Error("flag --" + name + " expects an integer, got '" + s + "'");
  }
}

double Cli::get(const std::string& name, double def) const {
  auto s = get(name, std::string());
  if (s.empty()) return def;
  try {
    return std::stod(s);
  } catch (const std::exception&) {
    throw Error("flag --" + name + " expects a number, got '" + s + "'");
  }
}

std::string Cli::help(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, desc] : spec_) {
    std::string d = desc;
    bool boolean = !d.empty() && d.back() == '!';
    if (boolean) d.pop_back();
    os << "  --" << name << (boolean ? "" : " <value>") << "  " << d << '\n';
  }
  return os.str();
}

}  // namespace graphct
