#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace graphct {

namespace {
template <typename T>
Summary summarize_impl(std::span<const T> data) {
  Summary s;
  s.count = static_cast<std::int64_t>(data.size());
  if (s.count == 0) return s;

  double sum = 0.0, mn = static_cast<double>(data[0]),
         mx = static_cast<double>(data[0]);
  const std::int64_t n = s.count;
#pragma omp parallel for reduction(+ : sum) reduction(min : mn) \
    reduction(max : mx) schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    const double v = static_cast<double>(data[static_cast<std::size_t>(i)]);
    sum += v;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  s.mean = sum / static_cast<double>(n);
  s.min = mn;
  s.max = mx;

  double ss = 0.0;
  const double mean = s.mean;
#pragma omp parallel for reduction(+ : ss) schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    const double d =
        static_cast<double>(data[static_cast<std::size_t>(i)]) - mean;
    ss += d * d;
  }
  s.variance = n > 1 ? ss / static_cast<double>(n - 1) : 0.0;
  s.stddev = std::sqrt(s.variance);
  return s;
}
}  // namespace

Summary summarize(std::span<const std::int64_t> data) {
  return summarize_impl(data);
}
Summary summarize(std::span<const double> data) { return summarize_impl(data); }

double quantile(std::span<const double> data, double q) {
  GCT_CHECK(!data.empty(), "quantile: empty data");
  GCT_CHECK(q >= 0.0 && q <= 1.0, "quantile: q must be in [0,1]");
  std::vector<double> v(data.begin(), data.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

namespace {
// Two-sided Student t critical values at 90% confidence for df = 1..30;
// beyond 30 the normal approximation (1.6449) is within 1%.
constexpr double kT90[31] = {
    0.0,    6.3138, 2.9200, 2.3534, 2.1318, 2.0150, 1.9432, 1.8946,
    1.8595, 1.8331, 1.8125, 1.7959, 1.7823, 1.7709, 1.7613, 1.7531,
    1.7459, 1.7396, 1.7341, 1.7291, 1.7247, 1.7207, 1.7171, 1.7139,
    1.7109, 1.7081, 1.7056, 1.7033, 1.7011, 1.6991, 1.6973};
// 95% two-sided.
constexpr double kT95[31] = {
    0.0,    12.706, 4.3027, 3.1824, 2.7764, 2.5706, 2.4469, 2.3646,
    2.3060, 2.2622, 2.2281, 2.2010, 2.1788, 2.1604, 2.1448, 2.1314,
    2.1199, 2.1098, 2.1009, 2.0930, 2.0860, 2.0796, 2.0739, 2.0687,
    2.0639, 2.0595, 2.0555, 2.0518, 2.0484, 2.0452, 2.0423};
}  // namespace

double confidence_half_width(const Summary& s, double level) {
  if (s.count < 2) return 0.0;
  const std::int64_t df = s.count - 1;
  double t;
  const bool use95 = level > 0.925;
  if (df <= 30) {
    t = use95 ? kT95[df] : kT90[df];
  } else {
    t = use95 ? 1.9600 : 1.6449;
  }
  return t * s.stddev / std::sqrt(static_cast<double>(s.count));
}

double power_law_alpha(std::span<const std::int64_t> data, std::int64_t xmin) {
  GCT_CHECK(xmin >= 1, "power_law_alpha: xmin must be >= 1");
  double logsum = 0.0;
  std::int64_t n = 0;
  const double denom = static_cast<double>(xmin) - 0.5;
  for (std::int64_t x : data) {
    if (x >= xmin) {
      logsum += std::log(static_cast<double>(x) / denom);
      ++n;
    }
  }
  if (n < 2 || logsum <= 0.0) return 0.0;
  return 1.0 + static_cast<double>(n) / logsum;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  GCT_CHECK(x.size() == y.size(), "pearson: length mismatch");
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  const Summary sx = summarize(x), sy = summarize(y);
  if (sx.stddev == 0.0 || sy.stddev == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (x[i] - sx.mean) * (y[i] - sy.mean);
  }
  cov /= static_cast<double>(n - 1);
  return cov / (sx.stddev * sy.stddev);
}

}  // namespace graphct
