#pragma once

/// \file table.hpp
/// Plain-text table rendering for benchmark output. Every bench binary prints
/// paper-style tables/series with this so rows stay aligned and parseable.

#include <string>
#include <vector>

namespace graphct {

/// Column-aligned text table. Usage:
///   TextTable t({"data set", "vertices", "edges"});
///   t.add_row({"h1n1", "46457", "73000"});
///   std::cout << t.render();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Append a horizontal separator line.
  void add_separator();

  /// Render with 2-space column gaps; numeric-looking cells right-align.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector = separator
};

/// printf-style helper returning std::string.
std::string strf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Format an integer with thousands separators ("8,599,999").
std::string with_commas(long long v);

}  // namespace graphct
