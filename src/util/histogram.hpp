#pragma once

/// \file histogram.hpp
/// Linear and logarithmic (power-of-two) histograms.
///
/// GraphCT characterizes graphs by distributions — degree distributions,
/// component-size distributions, BFS level widths. Social-network data is
/// heavy-tailed, so the log-binned histogram is the workhorse for the
/// paper's Fig. 2-style plots.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace graphct {

/// One bin of a histogram: values in [lo, hi) with `count` occurrences.
struct HistogramBin {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  std::int64_t count = 0;
};

/// Fixed-width histogram over nonnegative integer data.
class LinearHistogram {
 public:
  /// Create with bins [0,w), [w,2w), ... covering [0, max_value].
  LinearHistogram(std::int64_t bin_width, std::int64_t max_value);

  /// Count one occurrence of `value` (values above max clamp to last bin,
  /// negative values are an error).
  void add(std::int64_t value);

  /// Bulk-add a span of values (parallel).
  void add_all(std::span<const std::int64_t> values);

  [[nodiscard]] const std::vector<HistogramBin>& bins() const { return bins_; }
  [[nodiscard]] std::int64_t total() const { return total_; }

 private:
  std::int64_t width_;
  std::vector<HistogramBin> bins_;
  std::int64_t total_ = 0;
};

/// Power-of-two binned histogram: bins {0}, {1}, [2,4), [4,8), ...
/// The natural presentation for scale-free degree data (paper Fig. 2).
class LogHistogram {
 public:
  LogHistogram();

  void add(std::int64_t value);
  void add_all(std::span<const std::int64_t> values);

  /// Bins up to and including the highest non-empty one.
  [[nodiscard]] std::vector<HistogramBin> bins() const;
  [[nodiscard]] std::int64_t total() const { return total_; }

  /// Render an ASCII log-log style chart (one row per bin with a bar scaled
  /// to log10 of the count) — used by benches to "draw" Fig. 2 in text.
  [[nodiscard]] std::string ascii_chart(int width = 50) const;

 private:
  std::vector<std::int64_t> counts_;  // counts_[i] covers [2^(i-1), 2^i), i>=2
  std::int64_t total_ = 0;
};

/// Exact frequency-of-frequencies: for data like degrees, returns pairs
/// (value, multiplicity) for every distinct value, sorted by value.
/// This is the raw series behind a log-log degree-distribution plot.
std::vector<std::pair<std::int64_t, std::int64_t>> frequency_table(
    std::span<const std::int64_t> values);

}  // namespace graphct
