#pragma once

/// \file error.hpp
/// Error handling for GraphCT: a library exception type plus check macros.
///
/// GraphCT reports recoverable errors (bad input files, malformed scripts,
/// out-of-range arguments) via graphct::Error. Internal invariant violations
/// use GCT_ASSERT, which is compiled in all build types: graph kernels are
/// memory-bound, so the predictable branch is effectively free and the
/// failure messages are worth far more than the cycle.

#include <stdexcept>
#include <string>

namespace graphct {

/// Exception thrown for all recoverable GraphCT errors (I/O, parse, usage).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_error(const char* file, int line,
                                     const std::string& msg) {
  throw Error(std::string(file) + ":" + std::to_string(line) + ": " + msg);
}
}  // namespace detail

/// Throw graphct::Error with file/line context when `cond` is false.
#define GCT_CHECK(cond, msg)                                       \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::graphct::detail::throw_error(__FILE__, __LINE__, (msg));   \
    }                                                              \
  } while (0)

/// Internal invariant check; active in release builds as well.
#define GCT_ASSERT(cond)                                                      \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::graphct::detail::throw_error(__FILE__, __LINE__,                      \
                                     "internal invariant violated: " #cond);  \
    }                                                                         \
  } while (0)

}  // namespace graphct
