#include "util/work_queue.hpp"

#include <omp.h>

#include <algorithm>
#include <mutex>
#include <vector>

#include "util/error.hpp"

namespace graphct {

/// One per-thread deque. Chunks are stored descending by begin, so the
/// owner's pop (back of the vector) walks its span in ascending index order
/// while thieves take from the front — the chunks farthest from where the
/// owner is currently working. The mutex is uncontended except during
/// steals; chunk granularity keeps lock traffic far off the per-item path.
struct alignas(64) WorkQueue::Deque {
  std::mutex m;
  std::vector<WorkChunk> q;
};

WorkQueue::WorkQueue() = default;
WorkQueue::~WorkQueue() = default;

WorkQueue::WorkQueue(WorkQueue&& other) noexcept
    : deques_(std::move(other.deques_)),
      count_(other.count_),
      steals_(other.steals_.load(std::memory_order_relaxed)) {
  other.count_ = 0;
}

WorkQueue& WorkQueue::operator=(WorkQueue&& other) noexcept {
  deques_ = std::move(other.deques_);
  count_ = other.count_;
  steals_.store(other.steals_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  other.count_ = 0;
  return *this;
}

void WorkQueue::reset(int num_queues) {
  GCT_CHECK(num_queues >= 1, "WorkQueue: need at least one queue");
  if (num_queues != count_) {
    deques_ = std::make_unique<Deque[]>(static_cast<std::size_t>(num_queues));
    count_ = num_queues;
  } else {
    for (int t = 0; t < count_; ++t) deques_[t].q.clear();
  }
}

void WorkQueue::fill(std::int64_t begin, std::int64_t end, std::int64_t chunk) {
  GCT_CHECK(count_ >= 1, "WorkQueue: fill before reset");
  GCT_CHECK(chunk >= 1, "WorkQueue: chunk must be positive");
  const std::int64_t total = end - begin;
  if (total <= 0) return;
  const std::int64_t per = (total + count_ - 1) / count_;
  for (int t = 0; t < count_; ++t) {
    const std::int64_t s = begin + static_cast<std::int64_t>(t) * per;
    const std::int64_t e = std::min(end, s + per);
    if (s >= e) break;
    const std::int64_t nchunks = (e - s + chunk - 1) / chunk;
    auto& d = deques_[t];
    std::lock_guard<std::mutex> lock(d.m);
    d.q.reserve(d.q.size() + static_cast<std::size_t>(nchunks));
    for (std::int64_t c = nchunks - 1; c >= 0; --c) {
      const std::int64_t cb = s + c * chunk;
      d.q.push_back({cb, std::min(e, cb + chunk)});
    }
  }
}

void WorkQueue::push(int t, WorkChunk c) {
  auto& d = deques_[t];
  std::lock_guard<std::mutex> lock(d.m);
  d.q.push_back(c);
}

bool WorkQueue::pop(int t, WorkChunk& out) {
  auto& d = deques_[t];
  std::lock_guard<std::mutex> lock(d.m);
  if (d.q.empty()) return false;
  out = d.q.back();
  d.q.pop_back();
  return true;
}

bool WorkQueue::steal(int t, WorkChunk& out) {
  for (int i = 1; i < count_; ++i) {
    const int v = (t + i) % count_;
    std::vector<WorkChunk> got;
    {
      auto& d = deques_[v];
      std::lock_guard<std::mutex> lock(d.m);
      const auto sz = static_cast<std::int64_t>(d.q.size());
      if (sz == 0) continue;
      const std::int64_t k = (sz + 1) / 2;  // steal-half, at least one
      got.assign(d.q.begin(), d.q.begin() + k);
      d.q.erase(d.q.begin(), d.q.begin() + k);
    }
    steals_.fetch_add(1, std::memory_order_relaxed);
    // got is descending by begin; keep the lowest chunk for immediate
    // execution and park the rest so subsequent pops ascend through them.
    if (got.size() > 1) {
      auto& mine = deques_[t];
      std::lock_guard<std::mutex> lock(mine.m);
      mine.q.reserve(mine.q.size() + got.size() - 1);
      for (std::size_t j = 0; j + 1 < got.size(); ++j) mine.q.push_back(got[j]);
    }
    out = got.back();
    return true;
  }
  return false;
}

std::int64_t WorkQueue::chunks_queued() const {
  std::int64_t total = 0;
  for (int t = 0; t < count_; ++t) {
    auto& d = deques_[t];
    std::lock_guard<std::mutex> lock(d.m);
    total += static_cast<std::int64_t>(d.q.size());
  }
  return total;
}

void stealing_for(WorkQueue& q, std::int64_t begin, std::int64_t end,
                  std::int64_t chunk, std::int64_t serial_below, int nthreads,
                  const std::function<void(std::int64_t, std::int64_t)>& body) {
  if (end <= begin) return;
  if (nthreads <= 1 || omp_in_parallel() || end - begin < serial_below) {
    body(begin, end);
    return;
  }
  q.reset(nthreads);
  q.fill(begin, end, chunk);
#pragma omp parallel num_threads(nthreads)
  {
    const int t = omp_get_thread_num();
    WorkChunk c;
    while (q.pop_or_steal(t, c)) body(c.begin, c.end);
  }
}

}  // namespace graphct
