#pragma once

/// \file work_queue.hpp
/// Chunked work-stealing frontier for level-synchronous sweeps.
///
/// The centrality kernels process one compacted level array at a time; a
/// `#pragma omp parallel for schedule(dynamic)` over the level serializes on
/// a central iteration counter and re-forks a team per level. This queue
/// replaces that: the level range is split into contiguous chunks dealt to
/// per-thread deques up front, owners drain their own deque in ascending
/// index order (sequential adjacency reads), and a thread that runs dry
/// steals half of a victim's remaining chunks — so one straggler chunk of
/// hub vertices cannot serialize the level on the slowest thread.
///
/// Concurrency contract: fill() is called by one thread between drains.
/// pop()/steal()/pop_or_steal() may race freely. No new chunks are created
/// while a drain is in flight, so pop_or_steal() returning false is a
/// correct per-thread exit condition: every remaining chunk is held in the
/// deque of some thread that is still draining, and the caller's level
/// barrier waits for those threads.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

namespace graphct {

/// Half-open index range: the unit of scheduling.
struct WorkChunk {
  std::int64_t begin = 0;
  std::int64_t end = 0;
};

class WorkQueue {
 public:
  WorkQueue();
  ~WorkQueue();
  WorkQueue(const WorkQueue&) = delete;
  WorkQueue& operator=(const WorkQueue&) = delete;

  /// Movable (so owners can live in vectors); must not race with a drain.
  WorkQueue(WorkQueue&& other) noexcept;
  WorkQueue& operator=(WorkQueue&& other) noexcept;

  /// Size to `num_queues` per-thread deques and drop any leftover chunks.
  /// Deque storage is reused when the count is unchanged.
  void reset(int num_queues);
  [[nodiscard]] int num_queues() const { return count_; }

  /// Split [begin, end) into per-owner contiguous spans, each chopped into
  /// chunks of `chunk` items, and deal span t to deque t. Owners then drain
  /// their span front to back, so unstolen work is processed in ascending
  /// index order.
  void fill(std::int64_t begin, std::int64_t end, std::int64_t chunk);

  /// Append one chunk to deque `t`.
  void push(int t, WorkChunk c);

  /// Pop the next chunk of thread t's own span. False when empty.
  bool pop(int t, WorkChunk& out);

  /// Scan the other deques from t+1 upward and steal half of the first
  /// non-empty victim's chunks (the half farthest from the victim's current
  /// position). One stolen chunk is returned; the rest move to deque t.
  /// False when every other deque is empty.
  bool steal(int t, WorkChunk& out);

  /// pop() then steal(). False = this thread is done with the drain.
  bool pop_or_steal(int t, WorkChunk& out) {
    return pop(t, out) || steal(t, out);
  }

  /// Chunks currently queued across all deques (tests/diagnostics; racy
  /// while a drain is in flight).
  [[nodiscard]] std::int64_t chunks_queued() const;

  /// Steal-half transfers since construction (tests/diagnostics).
  [[nodiscard]] std::int64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  struct Deque;
  std::unique_ptr<Deque[]> deques_;
  int count_ = 0;
  std::atomic<std::int64_t> steals_{0};
};

/// Work-stealing parallel for: run `body(b, e)` over disjoint subranges
/// covering [begin, end). Spawns its own parallel region of `nthreads`
/// threads; runs `body(begin, end)` inline instead when nthreads <= 1, when
/// already inside a parallel region (nested teams serialize anyway), or when
/// the range is shorter than `serial_below` — the tiny-frontier guard that
/// keeps high-diameter levels from paying a region fork per level.
void stealing_for(WorkQueue& q, std::int64_t begin, std::int64_t end,
                  std::int64_t chunk, std::int64_t serial_below, int nthreads,
                  const std::function<void(std::int64_t, std::int64_t)>& body);

}  // namespace graphct
