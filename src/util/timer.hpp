#pragma once

/// \file timer.hpp
/// Wall-clock timing utilities used by kernels and benchmark harnesses.

#include <chrono>
#include <cstdint>
#include <string>

namespace graphct {

/// Monotonic wall-clock timer with microsecond resolution.
///
/// A Timer starts running on construction; `seconds()` reports elapsed time
/// without stopping it, and `restart()` resets the origin.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Reset the timer origin to now.
  void restart() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last restart().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last restart().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates wall time across repeated start/stop intervals; used by the
/// toolkit to attribute time to individual kernels (load vs. compute).
class StopWatch {
 public:
  /// Begin an interval. Calling start() twice without stop() restarts it.
  void start() {
    running_ = true;
    timer_.restart();
  }

  /// End the current interval, folding it into the accumulated total.
  void stop() {
    if (running_) {
      total_ += timer_.seconds();
      running_ = false;
    }
  }

  /// Total accumulated seconds over all completed intervals (plus the live
  /// interval, if one is running).
  [[nodiscard]] double seconds() const {
    return total_ + (running_ ? timer_.seconds() : 0.0);
  }

  /// Discard all accumulated time.
  void reset() {
    total_ = 0.0;
    running_ = false;
  }

 private:
  Timer timer_;
  double total_ = 0.0;
  bool running_ = false;
};

/// Format a duration in seconds as a short human-readable string
/// ("339 ms", "4.9 s", "105 min") mirroring how the paper reports runtimes.
std::string format_duration(double seconds);

}  // namespace graphct
