#pragma once

/// \file timer.hpp
/// Raw wall-clock primitive. Phase/kernel timing belongs to obs/trace.hpp
/// (spans); Timer is for infrastructure that needs a bare stopwatch (queue
/// wait, deadlines) without profiler semantics.

#include <chrono>
#include <cstdint>
#include <string>

namespace graphct {

/// Monotonic wall-clock timer with microsecond resolution.
///
/// A Timer starts running on construction; `seconds()` reports elapsed time
/// without stopping it, and `restart()` resets the origin.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Reset the timer origin to now.
  void restart() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last restart().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last restart().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// Interval accumulation across start/stop pairs lives in obs/trace.hpp now
// (GCT_SPAN / KernelScope): spans accumulate per-phase wall time by (name,
// depth) and also feed the metrics registry, so there is exactly one timing
// mechanism. Timer remains the raw clock primitive obs builds on.

/// Format a duration in seconds as a short human-readable string
/// ("339 ms", "4.9 s", "105 min") mirroring how the paper reports runtimes.
std::string format_duration(double seconds);

}  // namespace graphct
