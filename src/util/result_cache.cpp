#include "util/result_cache.hpp"

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace graphct {

namespace {

// Process-wide cache traffic, queryable via the server's `metrics` verb
// without parsing per-job response trailers. Per-object counts stay in
// ResultCache::stats(). Resolved once; registry references are stable.
void record_hit() {
  static obs::Counter& c = obs::registry().counter("gct_result_cache_hits_total");
  c.add();
}

void record_miss() {
  static obs::Counter& c =
      obs::registry().counter("gct_result_cache_misses_total");
  c.add();
}

}  // namespace

std::pair<std::shared_ptr<ResultCache::Entry>, bool> ResultCache::acquire(
    const std::string& key) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      auto entry = std::make_shared<Entry>();
      entries_.emplace(key, entry);
      ++misses_;
      record_miss();
      return {entry, true};
    }
    std::shared_ptr<Entry> entry = it->second;
    if (entry->ready) {
      ++hits_;
      record_hit();
      return {entry, false};
    }
    // Another thread is computing this key; wait for it to publish or
    // abandon. Hold our own shared_ptr so invalidate() racing with the
    // computation cannot free the entry under us.
    ready_cv_.wait(lock, [&] { return entry->ready || entry->failed; });
    if (entry->failed) {
      throw Error("cached computation of '" + key +
                  "' failed in a concurrent caller");
    }
    // The entry may have been detached by invalidate() while we waited, in
    // which case the map now lacks (or re-bound) the key; loop to re-check
    // rather than serve a value that was invalidated mid-wait.
    auto again = entries_.find(key);
    if (again != entries_.end() && again->second == entry) {
      ++hits_;
      record_hit();
      return {entry, false};
    }
  }
}

void ResultCache::publish(const std::shared_ptr<Entry>& entry,
                          std::shared_ptr<const void> value) {
  std::lock_guard<std::mutex> lock(mu_);
  entry->value = std::move(value);
  entry->ready = true;
  ready_cv_.notify_all();
}

void ResultCache::abandon(const std::string& key,
                          const std::shared_ptr<Entry>& entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entry->failed = true;
  auto it = entries_.find(key);
  if (it != entries_.end() && it->second == entry) {
    entries_.erase(it);
  }
  ready_cv_.notify_all();
}

bool ResultCache::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  return it != entries_.end() && it->second->ready;
}

void ResultCache::invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.entries = static_cast<std::int64_t>(entries_.size());
  return s;
}

}  // namespace graphct
