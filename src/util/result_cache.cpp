#include "util/result_cache.hpp"

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace graphct {

namespace {

// Process-wide cache traffic, queryable via the server's `metrics` verb
// without parsing per-job response trailers. Per-object counts stay in
// ResultCache::stats(). Resolved once; registry references are stable.
void record_hit() {
  static obs::Counter& c = obs::registry().counter("gct_result_cache_hits_total");
  c.add();
}

void record_miss() {
  static obs::Counter& c =
      obs::registry().counter("gct_result_cache_misses_total");
  c.add();
}

void record_eviction() {
  static obs::Counter& c =
      obs::registry().counter("gct_result_cache_evictions_total");
  c.add();
}

// Estimated bytes pinned across every ResultCache in the process. Caches
// adjust by delta on publish/evict/invalidate/destruction, so the gauge
// tracks the sum of per-object resident_bytes.
void record_resident_delta(double delta) {
  static obs::Gauge& g =
      obs::registry().gauge("gct_result_cache_resident_bytes");
  g.add(delta);
}

// Values handed out by bounded caches on this thread, kept alive until the
// job/command that obtained them finishes (JobQueue releases between jobs).
thread_local std::vector<std::shared_ptr<const void>> t_pins;

}  // namespace

void ResultCache::pin_on_thread(std::shared_ptr<const void> value) {
  if (!t_pins.empty() && t_pins.back() == value) return;  // hot repeat
  t_pins.push_back(std::move(value));
}

void ResultCache::release_thread_pins() { t_pins.clear(); }

ResultCache::~ResultCache() {
  if (resident_bytes_ > 0) {
    record_resident_delta(-static_cast<double>(resident_bytes_));
  }
}

void ResultCache::set_budget_bytes(std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_bytes_ = bytes;
  bounded_.store(bytes != 0, std::memory_order_relaxed);
  evict_to_budget_locked();
}

std::pair<std::shared_ptr<ResultCache::Entry>, bool> ResultCache::acquire(
    const std::string& key) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      auto entry = std::make_shared<Entry>();
      entries_.emplace(key, entry);
      ++misses_;
      record_miss();
      return {entry, true};
    }
    std::shared_ptr<Entry> entry = it->second;
    if (entry->ready) {
      ++hits_;
      record_hit();
      if (entry->in_lru) {
        lru_.splice(lru_.end(), lru_, entry->lru_it);  // touch: now hottest
      }
      return {entry, false};
    }
    // Another thread is computing this key; wait for it to publish or
    // abandon. Hold our own shared_ptr so invalidate() racing with the
    // computation cannot free the entry under us.
    ready_cv_.wait(lock, [&] { return entry->ready || entry->failed; });
    if (entry->failed) {
      throw Error("cached computation of '" + key +
                  "' failed in a concurrent caller");
    }
    // The entry may have been detached by invalidate() or evicted while we
    // waited, in which case the map now lacks (or re-bound) the key; loop
    // to re-check rather than serve a value that was invalidated mid-wait.
    auto again = entries_.find(key);
    if (again != entries_.end() && again->second == entry) {
      ++hits_;
      record_hit();
      if (entry->in_lru) {
        lru_.splice(lru_.end(), lru_, entry->lru_it);
      }
      return {entry, false};
    }
  }
}

void ResultCache::publish(const std::string& key,
                          const std::shared_ptr<Entry>& entry,
                          std::shared_ptr<const void> value,
                          std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  entry->value = std::move(value);
  entry->ready = true;
  entry->bytes = bytes;
  // Charge the budget only while the entry is still reachable: an
  // invalidate() that raced with the computation already detached it, and
  // the waiters' re-check will recompute.
  auto it = entries_.find(key);
  if (it != entries_.end() && it->second == entry) {
    entry->lru_it = lru_.insert(lru_.end(), key);
    entry->in_lru = true;
    resident_bytes_ += bytes;
    record_resident_delta(static_cast<double>(bytes));
    evict_to_budget_locked();
  }
  ready_cv_.notify_all();
}

void ResultCache::evict_to_budget_locked() {
  if (budget_bytes_ == 0) return;
  while (resident_bytes_ > budget_bytes_ && !lru_.empty()) {
    const std::string victim = lru_.front();
    auto it = entries_.find(victim);
    // LRU members are always ready, reachable entries by construction.
    if (it != entries_.end() && it->second->in_lru) {
      uncharge_locked(it->second);
      entries_.erase(it);
      ++evictions_;
      record_eviction();
    } else {
      lru_.pop_front();  // defensive: stale key
    }
  }
}

void ResultCache::uncharge_locked(const std::shared_ptr<Entry>& entry) {
  if (!entry->in_lru) return;
  lru_.erase(entry->lru_it);
  entry->in_lru = false;
  resident_bytes_ -= entry->bytes;
  record_resident_delta(-static_cast<double>(entry->bytes));
}

void ResultCache::abandon(const std::string& key,
                          const std::shared_ptr<Entry>& entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entry->failed = true;
  auto it = entries_.find(key);
  if (it != entries_.end() && it->second == entry) {
    entries_.erase(it);
  }
  ready_cv_.notify_all();
}

bool ResultCache::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  return it != entries_.end() && it->second->ready;
}

void ResultCache::invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, entry] : entries_) {
    entry->in_lru = false;  // detach before the list dies
  }
  lru_.clear();
  if (resident_bytes_ > 0) {
    record_resident_delta(-static_cast<double>(resident_bytes_));
    resident_bytes_ = 0;
  }
  entries_.clear();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.entries = static_cast<std::int64_t>(entries_.size());
  s.evictions = evictions_;
  s.resident_bytes = static_cast<std::int64_t>(resident_bytes_);
  s.budget_bytes = static_cast<std::int64_t>(budget_bytes_);
  return s;
}

}  // namespace graphct
