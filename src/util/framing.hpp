#pragma once

/// \file framing.hpp
/// The two wire framings GraphCT speaks, in one place so there is exactly
/// one implementation to test and fuzz:
///
///  * **Text replies** — the graphctd session protocol's response framing
///    (docs/SERVER.md). Compat framing is payload lines followed by one
///    `ok`/`error` terminator line; framed v1 is a single
///    `gct/1 <status> lines=<n> [id=<rid>] [accounting]` header followed by
///    exactly n payload lines. Extracted from server::Session so the server
///    and any future client render/parse through the same code.
///
///  * **Binary frames** — the length-prefixed, FNV-1a-checksummed frames
///    the dist substrate (src/dist/, docs/DISTRIBUTED.md) exchanges between
///    the coordinator and worker processes. A frame is a fixed 24-byte
///    header (magic, version, message type, payload length, payload
///    checksum) followed by the payload bytes. The checksum reuses
///    util/checksum.hpp's FNV-1a-64 — the same primitive that guards the
///    binary graph and packed storage formats.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace graphct::framing {

// ---------------------------------------------------------------------------
// Text reply framing (graphctd session protocol).

/// Response framing spoken by a session (see file comment).
enum class TextProtocol { kCompat, kFramedV1 };

/// One logical response, independent of framing.
struct TextReply {
  enum class Status { kOk, kError, kBusy };
  Status status = Status::kOk;
  std::string payload;     ///< '\n'-terminated output lines (may be empty)
  std::string message;     ///< error/busy reason (single line, no '\n')
  std::string accounting;  ///< job trailer tokens, leading space
};

/// Number of '\n'-terminated lines in `payload`.
std::size_t count_lines(std::string_view payload);

/// Render `reply` in the requested framing, echoing `request_id` when
/// non-empty. The returned text always ends in '\n' and is the complete
/// response for one request.
std::string render_text_reply(const TextReply& reply,
                              const std::string& request_id,
                              TextProtocol protocol);

/// Parsed `gct/1` header line (client side of framed v1).
struct TextHeader {
  TextReply::Status status = TextReply::Status::kOk;
  std::size_t lines = 0;    ///< payload lines that follow the header
  std::string request_id;   ///< echoed id, "" when absent
};

/// Parse one framed-v1 header line (no trailing '\n'). Returns false when
/// `line` is not a well-formed `gct/1` header.
bool parse_text_header(std::string_view line, TextHeader& out);

// ---------------------------------------------------------------------------
// Binary frame codec (dist wire protocol).

inline constexpr std::uint32_t kFrameMagic = 0x46544347u;  // "GCTF", LE
inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 24;

/// Refuse absurd lengths before allocating: a corrupt header must not make
/// the receiver reserve petabytes. 1 GiB comfortably bounds every dist
/// message (the largest is a full rank/contrib vector).
inline constexpr std::uint64_t kMaxFramePayload = 1ull << 30;

/// Decoded frame header. `checksum` is FNV-1a-64 over the payload bytes.
struct FrameHeader {
  std::uint8_t version = kFrameVersion;
  std::uint8_t type = 0;
  std::uint64_t payload_len = 0;
  std::uint64_t checksum = 0;
};

/// Serialize `h` into `out` (little-endian, reserved bytes zeroed).
void encode_frame_header(const FrameHeader& h,
                         unsigned char out[kFrameHeaderBytes]);

enum class HeaderStatus { kOk, kBadMagic, kBadVersion, kOversized };

/// Decode kFrameHeaderBytes from `in`. On any status other than kOk the
/// contents of `out` are unspecified.
HeaderStatus decode_frame_header(const unsigned char* in, FrameHeader& out);

/// Encode one complete frame (header + payload) ready to write to a socket.
std::string encode_frame(std::uint8_t type, std::string_view payload);

/// True when `payload` matches the length and checksum `h` declares.
bool payload_matches(const FrameHeader& h, std::string_view payload);

}  // namespace graphct::framing
