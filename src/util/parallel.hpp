#pragma once

/// \file parallel.hpp
/// OpenMP-based parallel primitives shared by every GraphCT kernel.
///
/// The paper's algorithms need exactly one synchronization primitive — an
/// atomic fetch-and-add — plus parallel loops and prefix sums; this header
/// provides portable versions of those on top of OpenMP. On the Cray XMT the
/// same roles were played by hardware int_fetch_add and the Threadstorm
/// stream scheduler.

#include <cstdint>
#include <span>
#include <vector>

namespace graphct {

/// Number of OpenMP threads a parallel region will use. This is the
/// *requested* count (omp_get_max_threads); the runtime may deliver fewer.
int num_threads();

/// Number of threads a parallel region actually materializes right now —
/// measured, not requested (OMP_THREAD_LIMIT, nesting, or the runtime can
/// cap the request). Spawns a trivial parallel region, so don't call it on
/// a hot path; profiles and job records use this.
int effective_num_threads();

/// Override the number of threads for subsequent parallel regions
/// (0 restores the runtime default). Records the requested and effective
/// counts as gauges (gct_omp_threads_{requested,effective}).
void set_num_threads(int n);

/// Atomic fetch-and-add on a 64-bit integer; returns the previous value.
/// This is the paper's sole synchronization primitive (§II-B).
std::int64_t fetch_add(std::int64_t& target, std::int64_t delta);

/// Atomic fetch-and-add on a double (used by centrality accumulation).
double fetch_add(double& target, double delta);

/// Atomic compare-and-swap: if target == expected, store desired and return
/// true. Used by label-absorption in connected components.
bool compare_and_swap(std::int64_t& target, std::int64_t expected,
                      std::int64_t desired);

/// Atomic minimum: target = min(target, value); returns true when the stored
/// value changed. Lock-free CAS loop.
bool atomic_min(std::int64_t& target, std::int64_t value);

/// Exclusive prefix sum of `in`, written to `out` (out[0] = 0); returns the
/// total. `in` and `out` may alias. Parallel two-pass block algorithm.
std::int64_t exclusive_scan(std::span<const std::int64_t> in,
                            std::span<std::int64_t> out);

/// In-place exclusive prefix sum over a vector; returns the total.
std::int64_t exclusive_scan_inplace(std::vector<std::int64_t>& v);

/// Parallel sum reduction.
std::int64_t reduce_sum(std::span<const std::int64_t> v);
double reduce_sum(std::span<const double> v);

/// Parallel maximum; returns `identity` for an empty span.
std::int64_t reduce_max(std::span<const std::int64_t> v,
                        std::int64_t identity = 0);

/// Fill a span with a value in parallel.
void parallel_fill(std::span<std::int64_t> v, std::int64_t value);
void parallel_fill(std::span<double> v, double value);

/// Tree-combine equal-length per-thread accumulation buffers into `out`:
/// out[i] += Σ_b buffers[b][i]. Pairwise stages (log2 B of them), each a
/// parallel loop over the index range, replacing the sequential per-buffer
/// reduce that serialized the coarse centrality kernels. The buffers are
/// consumed: contents are unspecified afterwards unless `clear_buffers` is
/// set, which re-zeroes every buffer in the final pass so a batched
/// accumulator can reuse them without a separate fill sweep.
void tree_reduce_buffers(std::vector<std::vector<double>>& buffers,
                         std::span<double> out, bool clear_buffers = false);

}  // namespace graphct
