#include "gen/rmat.hpp"

#include <omp.h>

#include "graph/builder.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace graphct {

EdgeList rmat_edges(const RmatOptions& opts) {
  GCT_CHECK(opts.scale >= 1 && opts.scale <= 40, "rmat: scale out of range");
  GCT_CHECK(opts.edge_factor >= 1, "rmat: edge_factor must be >= 1");
  const double d = 1.0 - opts.a - opts.b - opts.c;
  GCT_CHECK(opts.a > 0 && opts.b >= 0 && opts.c >= 0 && d > 0,
            "rmat: probabilities must be positive and sum below 1");

  const vid n = vid{1} << opts.scale;
  const std::int64_t m = opts.edge_factor * n;

  EdgeList el(n);
  auto& edges = el.edges();
  edges.resize(static_cast<std::size_t>(m));

  // Each edge draws from an RNG seeded by (seed, edge index), so the result
  // is independent of thread count and schedule.
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < m; ++i) {
    Rng rng(mix64(opts.seed) ^ mix64(static_cast<std::uint64_t>(i) *
                                     0x9e3779b97f4a7c15ULL +
                                     0x2545f4914f6cdd1dULL));
    vid src = 0, dst = 0;
    double a = opts.a, b = opts.b, c = opts.c;
    for (std::int64_t level = 0; level < opts.scale; ++level) {
      double aa = a, bb = b, cc = c;
      if (opts.noise) {
        // +/-10% multiplicative noise, renormalized implicitly by comparing
        // against the running thresholds.
        aa *= 0.9 + 0.2 * rng.next_double();
        bb *= 0.9 + 0.2 * rng.next_double();
        cc *= 0.9 + 0.2 * rng.next_double();
        const double dd = (1.0 - a - b - c) * (0.9 + 0.2 * rng.next_double());
        const double norm = aa + bb + cc + dd;
        aa /= norm;
        bb /= norm;
        cc /= norm;
      }
      const double r = rng.next_double();
      src <<= 1;
      dst <<= 1;
      if (r < aa) {
        // top-left quadrant: no bits set
      } else if (r < aa + bb) {
        dst |= 1;
      } else if (r < aa + bb + cc) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    edges[static_cast<std::size_t>(i)] = {src, dst};
  }
  return el;
}

CsrGraph rmat_graph(const RmatOptions& opts) {
  const EdgeList el = rmat_edges(opts);
  BuildOptions b;
  b.symmetrize = true;
  b.dedup = true;
  b.remove_self_loops = false;
  b.sort_adjacency = true;
  return build_csr(el, b);
}

}  // namespace graphct
