#include "gen/random_graphs.hpp"

#include <cmath>
#include <vector>

#include "graph/builder.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace graphct {

CsrGraph erdos_renyi(vid n, std::int64_t m, std::uint64_t seed) {
  GCT_CHECK(n > 0, "erdos_renyi: n must be positive");
  EdgeList el(n);
  el.reserve(static_cast<std::size_t>(m));
  Rng rng(seed);
  for (std::int64_t i = 0; i < m; ++i) {
    const vid u = static_cast<vid>(rng.next_below(static_cast<std::uint64_t>(n)));
    const vid v = static_cast<vid>(rng.next_below(static_cast<std::uint64_t>(n)));
    el.add(u, v);
  }
  BuildOptions b;
  b.symmetrize = true;
  b.dedup = true;
  b.remove_self_loops = true;
  return build_csr(el, b);
}

CsrGraph chung_lu_power_law(vid n, std::int64_t m, double alpha,
                            std::uint64_t seed) {
  GCT_CHECK(n > 0, "chung_lu: n must be positive");
  GCT_CHECK(alpha > 2.0, "chung_lu: alpha must exceed 2 for finite mean");

  // Weights w_v = (v+1)^(-gamma) with gamma = 1/(alpha-1); vertex 0 is the
  // biggest hub. Edges are drawn by picking endpoints proportional to
  // weight via the cumulative distribution (binary search per draw).
  const double gamma = 1.0 / (alpha - 1.0);
  std::vector<double> cum(static_cast<std::size_t>(n) + 1, 0.0);
  for (vid v = 0; v < n; ++v) {
    cum[static_cast<std::size_t>(v) + 1] =
        cum[static_cast<std::size_t>(v)] +
        std::pow(static_cast<double>(v + 1), -gamma);
  }
  const double total = cum.back();

  Rng rng(seed);
  auto draw = [&]() -> vid {
    const double r = rng.next_double() * total;
    // Binary search for the first cum entry exceeding r.
    std::size_t lo = 0, hi = static_cast<std::size_t>(n) - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cum[mid + 1] <= r) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return static_cast<vid>(lo);
  };

  EdgeList el(n);
  el.reserve(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    el.add(draw(), draw());
  }
  BuildOptions b;
  b.symmetrize = true;
  b.dedup = true;
  b.remove_self_loops = true;
  return build_csr(el, b);
}

CsrGraph watts_strogatz(vid n, std::int64_t k, double p, std::uint64_t seed) {
  GCT_CHECK(n > 2 * k, "watts_strogatz: n must exceed 2k");
  GCT_CHECK(k >= 1, "watts_strogatz: k must be >= 1");
  GCT_CHECK(p >= 0.0 && p <= 1.0, "watts_strogatz: p must be in [0,1]");

  Rng rng(seed);
  EdgeList el(n);
  el.reserve(static_cast<std::size_t>(n * k));
  for (vid u = 0; u < n; ++u) {
    for (std::int64_t j = 1; j <= k; ++j) {
      vid v = (u + j) % n;
      if (rng.next_bool(p)) {
        // Rewire to a uniform random endpoint, avoiding a self-loop.
        vid w = u;
        while (w == u) {
          w = static_cast<vid>(rng.next_below(static_cast<std::uint64_t>(n)));
        }
        v = w;
      }
      el.add(u, v);
    }
  }
  BuildOptions b;
  b.symmetrize = true;
  b.dedup = true;
  b.remove_self_loops = true;
  return build_csr(el, b);
}

}  // namespace graphct
