#pragma once

/// \file random_graphs.hpp
/// Classic random-graph models used as baselines and test fixtures:
/// Erdős–Rényi G(n, m), Chung–Lu power-law graphs (degree shape comparable
/// to the scale-free mention graphs of §III-C), and Watts–Strogatz small
/// worlds (high clustering, for the clustering-coefficient kernel).

#include <cstdint>

#include "graph/csr_graph.hpp"
#include "graph/edge_list.hpp"

namespace graphct {

/// Erdős–Rényi G(n, m): m arcs drawn uniformly with replacement, then
/// deduplicated into an undirected graph.
CsrGraph erdos_renyi(vid n, std::int64_t m, std::uint64_t seed = 1);

/// Chung–Lu graph with a discrete power-law weight sequence
/// w_v ∝ (v+1)^(-1/(alpha-1)) scaled so the expected edge count is ~m.
/// alpha is the target degree exponent (2 < alpha <= 4 is realistic for
/// social data).
CsrGraph chung_lu_power_law(vid n, std::int64_t m, double alpha,
                            std::uint64_t seed = 1);

/// Watts–Strogatz small world: ring of n vertices, each joined to its
/// nearest 2*k neighbors, each edge rewired with probability p.
CsrGraph watts_strogatz(vid n, std::int64_t k, double p,
                        std::uint64_t seed = 1);

}  // namespace graphct
