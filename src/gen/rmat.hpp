#pragma once

/// \file rmat.hpp
/// R-MAT recursive-matrix graph generator (Chakrabarti, Zhan, Faloutsos,
/// SDM 2004) — the paper's synthetic workload. The headline experiment runs
/// betweenness on a scale-29, edge-factor-16 R-MAT graph with parameters
/// A = 0.55, B = C = 0.1, D = 0.25 (footnote 3), emulating a Facebook-size
/// social network. Generation is embarrassingly parallel: every edge is an
/// independent sequence of quadrant choices from its own RNG stream.

#include <cstdint>

#include "graph/csr_graph.hpp"
#include "graph/edge_list.hpp"

namespace graphct {

/// R-MAT parameters. Defaults are the paper's.
struct RmatOptions {
  std::int64_t scale = 16;       ///< n = 2^scale vertices
  std::int64_t edge_factor = 16; ///< m = edge_factor * n generated arcs
  double a = 0.55;
  double b = 0.10;
  double c = 0.10;
  // d = 1 - a - b - c (0.25 with the defaults)
  std::uint64_t seed = 1;

  /// Add +/-10% uniform noise to the quadrant probabilities at each level,
  /// as recommended by the R-MAT authors to avoid staircase artifacts.
  bool noise = true;
};

/// Generate the raw R-MAT arc list (duplicates and self-loops included, as
/// the generator naturally produces them; the CSR builder deduplicates).
EdgeList rmat_edges(const RmatOptions& opts);

/// Generate and build an undirected, deduplicated R-MAT graph — the form
/// every experiment consumes.
CsrGraph rmat_graph(const RmatOptions& opts);

}  // namespace graphct
