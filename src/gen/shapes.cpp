#include "gen/shapes.hpp"

#include "graph/builder.hpp"
#include "graph/edge_list.hpp"
#include "util/error.hpp"

namespace graphct {

namespace {
CsrGraph from_edges(EdgeList&& el) {
  BuildOptions b;
  b.symmetrize = true;
  b.dedup = true;
  b.sort_adjacency = true;
  return build_csr(el, b);
}
}  // namespace

CsrGraph path_graph(vid n) {
  GCT_CHECK(n >= 1, "path_graph: n must be >= 1");
  EdgeList el(n);
  for (vid v = 0; v + 1 < n; ++v) el.add(v, v + 1);
  return from_edges(std::move(el));
}

CsrGraph cycle_graph(vid n) {
  GCT_CHECK(n >= 3, "cycle_graph: n must be >= 3");
  EdgeList el(n);
  for (vid v = 0; v < n; ++v) el.add(v, (v + 1) % n);
  return from_edges(std::move(el));
}

CsrGraph star_graph(vid n) {
  GCT_CHECK(n >= 2, "star_graph: n must be >= 2");
  EdgeList el(n);
  for (vid v = 1; v < n; ++v) el.add(0, v);
  return from_edges(std::move(el));
}

CsrGraph complete_graph(vid n) {
  GCT_CHECK(n >= 1, "complete_graph: n must be >= 1");
  EdgeList el(n);
  for (vid u = 0; u < n; ++u) {
    for (vid v = u + 1; v < n; ++v) el.add(u, v);
  }
  return from_edges(std::move(el));
}

CsrGraph balanced_tree(vid branching, std::int64_t depth) {
  GCT_CHECK(branching >= 1, "balanced_tree: branching must be >= 1");
  GCT_CHECK(depth >= 0, "balanced_tree: depth must be >= 0");
  // Count vertices: 1 + b + b^2 + ... + b^depth.
  vid n = 1, level = 1;
  for (std::int64_t d = 0; d < depth; ++d) {
    level *= branching;
    n += level;
  }
  EdgeList el(n);
  // Children of vertex v (level by level numbering): the first child of the
  // i-th vertex overall is i*b + 1.
  for (vid v = 0; v < n; ++v) {
    for (vid c = 0; c < branching; ++c) {
      const vid child = v * branching + 1 + c;
      if (child < n) el.add(v, child);
    }
  }
  return from_edges(std::move(el));
}

CsrGraph grid_graph(vid rows, vid cols) {
  GCT_CHECK(rows >= 1 && cols >= 1, "grid_graph: dimensions must be >= 1");
  EdgeList el(rows * cols);
  for (vid r = 0; r < rows; ++r) {
    for (vid c = 0; c < cols; ++c) {
      const vid v = r * cols + c;
      if (c + 1 < cols) el.add(v, v + 1);
      if (r + 1 < rows) el.add(v, v + cols);
    }
  }
  return from_edges(std::move(el));
}

CsrGraph star_of_cliques(vid count, vid clique_size) {
  GCT_CHECK(count >= 1 && clique_size >= 2,
            "star_of_cliques: need >= 1 clique of size >= 2");
  const vid n = 1 + count * clique_size;
  EdgeList el(n);
  for (vid k = 0; k < count; ++k) {
    const vid base = 1 + k * clique_size;
    for (vid i = 0; i < clique_size; ++i) {
      for (vid j = i + 1; j < clique_size; ++j) {
        el.add(base + i, base + j);
      }
    }
    el.add(0, base);  // hub attaches to the first member
  }
  return from_edges(std::move(el));
}

CsrGraph barbell_graph(vid clique_size) {
  GCT_CHECK(clique_size >= 2, "barbell_graph: clique_size must be >= 2");
  const vid n = 2 * clique_size;
  EdgeList el(n);
  for (vid off : {vid{0}, clique_size}) {
    for (vid i = 0; i < clique_size; ++i) {
      for (vid j = i + 1; j < clique_size; ++j) {
        el.add(off + i, off + j);
      }
    }
  }
  el.add(clique_size - 1, clique_size);  // the bridge
  return from_edges(std::move(el));
}

}  // namespace graphct
