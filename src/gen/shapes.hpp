#pragma once

/// \file shapes.hpp
/// Deterministic structured graphs with analytically known properties —
/// the backbone of the test suite (paths, cycles, stars, complete graphs,
/// balanced trees, grids, and the star-of-cliques used to validate the
/// conversation-filter pipeline).

#include <cstdint>

#include "graph/csr_graph.hpp"

namespace graphct {

/// Path 0-1-2-...-(n-1). BC of an interior vertex v is 2*(v+1)*(n-v-1)-2
/// under the directed-pair (s,t) and (t,s) counting this library uses.
CsrGraph path_graph(vid n);

/// Cycle 0-1-...-(n-1)-0.
CsrGraph cycle_graph(vid n);

/// Star: hub 0 joined to spokes 1..n-1. Hub BC = (n-1)(n-2); spokes 0.
CsrGraph star_graph(vid n);

/// Complete graph K_n. All BC values are 0.
CsrGraph complete_graph(vid n);

/// Complete balanced tree with the given branching factor and depth
/// (depth 0 = single vertex). Vertices number level by level from the root.
CsrGraph balanced_tree(vid branching, std::int64_t depth);

/// rows x cols 4-neighbor grid; vertex (r, c) has id r*cols + c.
CsrGraph grid_graph(vid rows, vid cols);

/// `count` disjoint cliques of size `clique_size`, plus a hub vertex (id 0)
/// connected to one member of each clique — a toy model of conversation
/// clusters hanging off a broadcast hub.
CsrGraph star_of_cliques(vid count, vid clique_size);

/// Two cliques of size `clique_size` joined by a single bridge edge; the
/// bridge endpoints dominate betweenness (a classic BC sanity fixture).
CsrGraph barbell_graph(vid clique_size);

}  // namespace graphct
