#pragma once

/// \file datasets.hpp
/// Named dataset presets calibrated to the paper's corpora.
///
/// Each preset pairs a CorpusOptions configuration with the statistics the
/// paper reports for the corresponding real data set (Table III, Fig. 3),
/// so benches can print paper-vs-measured side by side. The `scale`
/// parameter shrinks user pool / tweet count / conversation count
/// proportionally for fast tests and 1-core benchmark runs.
///
/// Presets:
///  * "h1n1"     — influenza tweets, September 2009 (Table III row 1)
///  * "atlflood" — #atlflood tweets, 20-25 September 2009 (row 2)
///  * "sep1"     — all public tweets of 1 September 2009 (row 3)
///  * "sep1_9"   — tweets of 1-9 September 2009 (Fig. 6 point: 4.1M/7.1M)
///  * "sep_all"  — all September 2009 tweets (Fig. 6 point: 7.2M/18.2M)
///  * "tiny"     — miniature mixed corpus for unit tests

#include <string>
#include <string_view>

#include "twitter/corpus_gen.hpp"

namespace graphct::twitter {

/// Statistics the paper reports for a dataset (0 = not reported).
struct PaperTweetStats {
  std::int64_t users = 0;
  std::int64_t unique_interactions = 0;
  std::int64_t tweets_with_responses = 0;
  std::int64_t lwcc_users = 0;
  std::int64_t lwcc_interactions = 0;
  std::int64_t lwcc_responses = 0;
  std::int64_t fig3_largest_component = 0;  ///< Fig. 3 "original" LC size
  std::int64_t fig3_subcommunity = 0;       ///< Fig. 3 mutual-filtered size
};

/// A calibrated corpus configuration plus the paper's reference numbers.
struct DatasetPreset {
  std::string name;
  std::string description;
  CorpusOptions corpus;
  PaperTweetStats paper;
};

/// Look up a preset by name; `scale` in (0, 1] shrinks the corpus (the
/// paper numbers are left untouched — scaling is reported by the benches).
/// Throws graphct::Error for unknown names.
DatasetPreset dataset_preset(std::string_view name, double scale = 1.0);

/// Names of all presets, in the order above.
const std::vector<std::string>& dataset_preset_names();

}  // namespace graphct::twitter
