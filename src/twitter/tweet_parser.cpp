#include "twitter/tweet_parser.hpp"

#include <algorithm>
#include <cctype>
#include <unordered_set>

namespace graphct::twitter {

bool is_username_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string normalize_username(std::string_view name) {
  std::string out(name);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

ParsedTweet parse_tweet(const Tweet& tweet) {
  ParsedTweet p;
  p.id = tweet.id;
  p.author = normalize_username(tweet.author);
  p.timestamp = tweet.timestamp;

  const std::string_view text = tweet.text;
  std::unordered_set<std::string> seen_mentions;

  // Retweet marker: optional leading whitespace, then "RT @user".
  std::size_t start = 0;
  while (start < text.size() &&
         std::isspace(static_cast<unsigned char>(text[start]))) {
    ++start;
  }
  if (start + 4 <= text.size() && text[start] == 'R' &&
      text[start + 1] == 'T' && text[start + 2] == ' ' &&
      text[start + 3] == '@') {
    std::size_t q = start + 4;
    std::size_t b = q;
    while (q < text.size() && is_username_char(text[q])) ++q;
    if (q > b) {
      p.is_retweet = true;
      p.retweet_of = normalize_username(text.substr(b, q - b));
    }
  }

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c != '@' && c != '#') continue;
    // A symbol glued to the end of a word ("mail@example") is not a mention.
    if (i > 0 && is_username_char(text[i - 1])) continue;
    std::size_t q = i + 1;
    while (q < text.size() && is_username_char(text[q])) ++q;
    if (q == i + 1) continue;  // bare '@' or '#'
    std::string token = normalize_username(text.substr(i + 1, q - i - 1));
    if (c == '@') {
      if (seen_mentions.insert(token).second) {
        p.mentions.push_back(std::move(token));
      }
    } else {
      if (std::find(p.hashtags.begin(), p.hashtags.end(), token) ==
          p.hashtags.end()) {
        p.hashtags.push_back(std::move(token));
      }
    }
    i = q - 1;
  }
  return p;
}

}  // namespace graphct::twitter
