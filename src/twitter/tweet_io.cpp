#include "twitter/tweet_io.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace graphct::twitter {

std::string to_tsv(const std::vector<Tweet>& tweets) {
  std::ostringstream os;
  os << "# GraphCT tweet stream: id\ttimestamp\tauthor\ttext\n";
  for (const auto& t : tweets) {
    std::string text = t.text;
    for (char& c : text) {
      if (c == '\t' || c == '\n' || c == '\r') c = ' ';
    }
    os << t.id << '\t' << t.timestamp << '\t' << t.author << '\t' << text
       << '\n';
  }
  return os.str();
}

namespace {

std::int64_t parse_int_field(std::string_view field, int lineno,
                             const char* what) {
  GCT_CHECK(!field.empty(), "tweet TSV line " + std::to_string(lineno) +
                                ": empty " + what);
  std::int64_t v = 0;
  bool neg = false;
  std::size_t i = 0;
  if (field[0] == '-') {
    neg = true;
    i = 1;
  }
  GCT_CHECK(i < field.size(), "tweet TSV line " + std::to_string(lineno) +
                                  ": malformed " + what);
  for (; i < field.size(); ++i) {
    GCT_CHECK(std::isdigit(static_cast<unsigned char>(field[i])),
              "tweet TSV line " + std::to_string(lineno) + ": malformed " +
                  what);
    v = v * 10 + (field[i] - '0');
  }
  return neg ? -v : v;
}

}  // namespace

std::vector<Tweet> parse_tsv(std::string_view text) {
  std::vector<Tweet> out;
  std::size_t pos = 0;
  int lineno = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty() || line.front() == '#') continue;

    // Split into exactly 4 fields on the first three tabs (text may not
    // contain tabs by construction).
    std::string_view fields[4];
    std::size_t start = 0;
    for (int f = 0; f < 3; ++f) {
      const std::size_t tab = line.find('\t', start);
      GCT_CHECK(tab != std::string_view::npos,
                "tweet TSV line " + std::to_string(lineno) +
                    ": expected 4 tab-separated fields");
      fields[f] = line.substr(start, tab - start);
      start = tab + 1;
    }
    fields[3] = line.substr(start);

    Tweet t;
    t.id = parse_int_field(fields[0], lineno, "id");
    t.timestamp = parse_int_field(fields[1], lineno, "timestamp");
    GCT_CHECK(!fields[2].empty(), "tweet TSV line " + std::to_string(lineno) +
                                      ": empty author");
    t.author = std::string(fields[2]);
    t.text = std::string(fields[3]);
    out.push_back(std::move(t));
  }
  return out;
}

void write_tweets(const std::vector<Tweet>& tweets, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  GCT_CHECK(f.good(), "cannot open file for writing: " + path);
  f << to_tsv(tweets);
  GCT_CHECK(f.good(), "write failed: " + path);
}

std::vector<Tweet> read_tweets(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  GCT_CHECK(f.good(), "cannot open tweet stream file: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse_tsv(ss.str());
}

}  // namespace graphct::twitter
