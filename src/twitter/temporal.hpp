#pragma once

/// \file temporal.hpp
/// Temporal analysis of tweet streams.
///
/// The paper analyzes a single snapshot but flags the temporal dimension as
/// ongoing work (§I-B: "Characteristics change over time"). This module
/// provides the snapshot-series machinery: slice a timestamp-ordered tweet
/// stream into (possibly overlapping) time windows, build the mention graph
/// of each window, and track how the structural characteristics — users,
/// interactions, conversations, the broadcast hubs — evolve. Hub
/// persistence quantifies the paper's implicit claim that the same media
/// accounts dominate throughout an event.

#include <cstdint>
#include <string>
#include <vector>

#include "twitter/mention_graph.hpp"
#include "twitter/tweet.hpp"

namespace graphct::twitter {

/// Sliding-window slicing parameters.
struct WindowOptions {
  /// Window width in seconds.
  std::int64_t window_seconds = 3600;

  /// Stride between window starts; defaults to the width (tumbling
  /// windows). Smaller strides overlap.
  std::int64_t stride_seconds = 0;

  /// Windows with fewer tweets than this are dropped from the series.
  std::int64_t min_tweets = 1;
};

/// Structural characteristics of one window.
struct WindowStats {
  std::int64_t start = 0;  ///< window start timestamp (inclusive)
  std::int64_t end = 0;    ///< window end timestamp (exclusive)
  std::int64_t tweets = 0;
  std::int64_t users = 0;
  std::int64_t unique_interactions = 0;
  std::int64_t tweets_with_responses = 0;
  std::int64_t mutual_pairs = 0;    ///< reciprocated pairs inside the window
  std::int64_t lwcc_users = 0;      ///< largest component of the window graph
  std::string top_user;             ///< highest in-degree user (most cited)
  std::int64_t top_user_mentions = 0;
};

/// Slice `tweets` (must be sorted by timestamp ascending, as the corpus
/// generator and any harvested stream produce) into windows and
/// characterize each. Throws if the stream is unsorted.
std::vector<WindowStats> sliding_window_stats(const std::vector<Tweet>& tweets,
                                              const WindowOptions& opts = {});

/// Persistence of a hub account across windows.
struct HubPersistence {
  std::string name;
  double presence = 0.0;       ///< fraction of windows where the account is
                               ///< among that window's top_n by in-degree
  std::int64_t windows_present = 0;
};

/// For the `top_n` most-cited users of the whole stream, measure how often
/// each stays in the per-window top_n (uses the same windows as
/// sliding_window_stats). High presence = the paper's stable broadcast
/// hubs; low presence = bursty, event-local actors.
std::vector<HubPersistence> hub_persistence(const std::vector<Tweet>& tweets,
                                            const WindowOptions& opts,
                                            std::int64_t top_n);

}  // namespace graphct::twitter
