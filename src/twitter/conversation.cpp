#include "twitter/conversation.hpp"

#include <algorithm>
#include <unordered_map>

#include "algs/connected_components.hpp"
#include "algs/ranking.hpp"
#include "algs/scc.hpp"
#include "util/error.hpp"

namespace graphct::twitter {

SubcommunityResult subcommunity_filter(const MentionGraph& mg) {
  SubcommunityResult r;
  const CsrGraph und = mg.undirected();
  r.original_vertices = und.num_vertices();
  r.original_edges = und.num_edges();

  {
    graphct::Subgraph lwcc = graphct::largest_component(und);
    r.lwcc_vertices = lwcc.graph.num_vertices();
    r.lwcc_edges = lwcc.graph.num_edges();
  }

  // Mutual filter runs on the directed graph: u<->v only when both arcs
  // exist. Then drop everyone without a conversation partner.
  const CsrGraph mutual_full = graphct::mutual_subgraph(mg.directed);
  r.mutual = graphct::drop_isolated(mutual_full);
  r.mutual_vertices = r.mutual.graph.num_vertices();
  r.mutual_edges = r.mutual.graph.num_edges();

  if (r.mutual_vertices > 0) {
    graphct::Subgraph lwcc = graphct::largest_component(r.mutual.graph);
    // Compose relabelings so orig_ids point into the MentionGraph.
    for (auto& id : lwcc.orig_ids) {
      id = r.mutual.orig_ids[static_cast<std::size_t>(id)];
    }
    r.mutual_lwcc = std::move(lwcc);
    r.mutual_lwcc_vertices = r.mutual_lwcc.graph.num_vertices();
    r.mutual_lwcc_edges = r.mutual_lwcc.graph.num_edges();
  }

  r.reduction_factor =
      r.mutual_vertices > 0
          ? static_cast<double>(r.original_vertices) /
                static_cast<double>(r.mutual_vertices)
          : static_cast<double>(r.original_vertices);
  return r;
}

namespace {

std::vector<RankedUser> to_ranked(const MentionGraph& mg,
                                  const std::vector<double>& scores,
                                  std::int64_t count) {
  const auto top = graphct::top_k(
      std::span<const double>(scores.data(), scores.size()), count);
  std::vector<RankedUser> out;
  out.reserve(top.size());
  for (vid v : top) {
    RankedUser u;
    u.vertex = v;
    u.name = mg.users[static_cast<std::size_t>(v)];
    u.score = scores[static_cast<std::size_t>(v)];
    out.push_back(std::move(u));
  }
  return out;
}

}  // namespace

std::vector<graphct::Subgraph> scc_conversations(const MentionGraph& mg,
                                                 std::int64_t min_size) {
  GCT_CHECK(min_size >= 2, "scc_conversations: min_size must be >= 2");
  const auto labels = graphct::strongly_connected_components(mg.directed);
  std::unordered_map<vid, std::int64_t> counts;
  for (vid l : labels) ++counts[l];

  std::vector<std::pair<vid, std::int64_t>> big;
  for (const auto& [l, size] : counts) {
    if (size >= min_size) big.emplace_back(l, size);
  }
  std::sort(big.begin(), big.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });

  std::vector<graphct::Subgraph> out;
  out.reserve(big.size());
  for (const auto& [l, size] : big) {
    out.push_back(graphct::extract_by_label(
        mg.directed, std::span<const vid>(labels.data(), labels.size()), l));
  }
  return out;
}

std::vector<RankedUser> rank_users_by_betweenness(
    const MentionGraph& mg, std::int64_t count,
    const graphct::BetweennessOptions& opts) {
  const CsrGraph und = mg.undirected();
  const auto bc = graphct::betweenness_centrality(und, opts);
  return to_ranked(mg, bc.score, count);
}

std::vector<RankedUser> rank_users_by_directed_betweenness(
    const MentionGraph& mg, std::int64_t count,
    const graphct::BetweennessOptions& opts) {
  const auto bc = graphct::directed_betweenness_centrality(mg.directed, opts);
  return to_ranked(mg, bc.score, count);
}

}  // namespace graphct::twitter
