#pragma once

/// \file mention_graph.hpp
/// Building the user-to-user interaction graph from a tweet stream
/// (paper §III-B): "User interaction graphs are created by adding an edge
/// into the graph for every mention (denoted by the prefix @) of a user by
/// the tweet author. Duplicate user interactions are thrown out so that only
/// unique user-interactions are represented in the graph."

#include <string>
#include <unordered_map>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/edge_list.hpp"
#include "twitter/tweet.hpp"

namespace graphct::twitter {

using graphct::CsrGraph;
using graphct::vid;

/// The mention graph plus the user-name dictionary and corpus statistics.
struct MentionGraph {
  /// Directed graph: arc author -> mentioned user, duplicates removed.
  /// Self-references (an author mentioning themself) are self-loops.
  CsrGraph directed;

  /// users[v] is the (normalized) name of vertex v.
  std::vector<std::string> users;

  /// Reverse lookup: name -> vertex id.
  std::unordered_map<std::string, vid> user_ids;

  // --- Table III statistics ---
  std::int64_t num_tweets = 0;           ///< tweets ingested
  std::int64_t num_users = 0;            ///< distinct authors + mentionees
  std::int64_t unique_interactions = 0;  ///< distinct (author, mentionee)
                                         ///< pairs, author != mentionee
  std::int64_t tweets_with_mentions = 0; ///< tweets carrying >= 1 mention
  std::int64_t tweets_with_responses = 0;///< tweets mentioning a user who
                                         ///< mentions the author back
                                         ///< somewhere in the corpus
  std::int64_t self_references = 0;      ///< tweets whose author mentions
                                         ///< themself (§III-C "echo chamber")
  std::int64_t retweets = 0;             ///< tweets with the RT marker

  /// Undirected, deduplicated view — the form GraphCT's metrics consume.
  [[nodiscard]] CsrGraph undirected() const;

  /// Vertex id for a user name (kNoVertex when absent).
  [[nodiscard]] vid id_of(const std::string& normalized_name) const;
};

/// Incrementally ingest tweets and build the mention graph.
class MentionGraphBuilder {
 public:
  /// Ingest one raw tweet (parses the text).
  void add(const Tweet& tweet);

  /// Ingest an already-parsed tweet.
  void add(const ParsedTweet& tweet);

  /// Finish: deduplicate, build CSR, and compute the response statistics.
  /// The builder is consumed.
  MentionGraph build() &&;

 private:
  vid intern(const std::string& name);

  std::vector<std::string> users_;
  std::unordered_map<std::string, vid> ids_;
  std::vector<graphct::Edge> arcs_;  // author -> mentioned, per tweet mention
  // One record per tweet that has mentions: (author, first..last arc range)
  struct TweetArcs {
    vid author;
    std::size_t first;
    std::size_t last;
  };
  std::vector<TweetArcs> tweet_arcs_;
  std::int64_t num_tweets_ = 0;
  std::int64_t tweets_with_mentions_ = 0;
  std::int64_t self_references_ = 0;
  std::int64_t retweets_ = 0;
};

}  // namespace graphct::twitter
