#include "twitter/corpus_gen.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace graphct::twitter {

namespace {

using graphct::Rng;

/// Zipf-like sampler over [0, n): P(i) ∝ (i+1)^-s, via inverse-CDF on a
/// precomputed cumulative table (exact, O(log n) per draw).
class ZipfSampler {
 public:
  ZipfSampler(std::int64_t n, double s) : cum_(static_cast<std::size_t>(n)) {
    GCT_ASSERT(n > 0);
    double acc = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      acc += std::pow(static_cast<double>(i + 1), -s);
      cum_[static_cast<std::size_t>(i)] = acc;
    }
  }

  std::int64_t draw(Rng& rng) const {
    const double r = rng.next_double() * cum_.back();
    const auto it = std::lower_bound(cum_.begin(), cum_.end(), r);
    return static_cast<std::int64_t>(it - cum_.begin());
  }

 private:
  std::vector<double> cum_;
};

const char* kFiller[] = {
    "just",   "heard",  "about",   "the",    "latest", "news",  "today",
    "please", "stay",   "safe",    "out",    "there",  "this",  "is",
    "really", "wild",   "cannot",  "believe","it",     "check", "update",
    "from",   "watch",  "live",    "now",    "more",   "info",  "soon",
    "thanks", "for",    "sharing", "what",   "do",     "you",   "think",
    "hope",   "everyone","ok",     "big",    "story",  "breaking"};
constexpr std::size_t kNumFiller = sizeof(kFiller) / sizeof(kFiller[0]);

void append_filler(std::string& text, Rng& rng, int words) {
  for (int i = 0; i < words; ++i) {
    if (!text.empty()) text += ' ';
    text += kFiller[rng.next_below(kNumFiller)];
  }
}

void maybe_hashtag(std::string& text, Rng& rng, const CorpusOptions& o) {
  if (!o.hashtags.empty() && rng.next_bool(o.hashtag_prob)) {
    text += " #";
    text += o.hashtags[rng.next_below(o.hashtags.size())];
  }
}

}  // namespace

std::vector<Tweet> generate_corpus(const CorpusOptions& o) {
  GCT_CHECK(o.user_pool >= 2, "corpus: user_pool must be >= 2");
  GCT_CHECK(o.num_hubs >= 1 && o.num_hubs < o.user_pool,
            "corpus: num_hubs must be in [1, user_pool)");
  GCT_CHECK(o.max_conversation_size >= 2,
            "corpus: conversations need >= 2 members");

  Rng rng(o.seed);

  // --- Name the population: hubs first, then ordinary users. ---
  std::vector<std::string> names(static_cast<std::size_t>(o.user_pool));
  for (std::int64_t h = 0; h < o.num_hubs; ++h) {
    if (h < static_cast<std::int64_t>(o.hub_names.size())) {
      names[static_cast<std::size_t>(h)] = o.hub_names[static_cast<std::size_t>(h)];
    } else {
      names[static_cast<std::size_t>(h)] = "hub" + std::to_string(h);
    }
  }
  for (std::int64_t u = o.num_hubs; u < o.user_pool; ++u) {
    names[static_cast<std::size_t>(u)] = "u" + std::to_string(u);
  }

  // --- Conversation groups: small circles drawn from a shared
  // conversationalist sub-population. The pool is sized so each member
  // joins ~conversation_overlap circles on average; shared members connect
  // circles into the larger conversation clusters of Fig. 3. ---
  struct Group {
    std::vector<std::int64_t> members;
  };
  std::vector<Group> groups;
  groups.reserve(static_cast<std::size_t>(o.num_conversations));
  const double avg_size = (2.0 + static_cast<double>(o.max_conversation_size)) / 2.0;
  const double overlap = std::max(1.0, o.conversation_overlap);
  std::int64_t conversational_pool = static_cast<std::int64_t>(
      static_cast<double>(o.num_conversations) * avg_size / overlap);
  conversational_pool =
      std::clamp<std::int64_t>(conversational_pool, o.max_conversation_size,
                               o.user_pool - o.num_hubs);
  for (std::int64_t c = 0; c < o.num_conversations; ++c) {
    const std::int64_t size =
        std::min<std::int64_t>(rng.next_in(2, o.max_conversation_size),
                               conversational_pool);
    Group g;
    const auto picks = rng.sample_without_replacement(conversational_pool, size);
    for (auto p : picks) g.members.push_back(o.num_hubs + p);
    groups.push_back(std::move(g));
  }

  const ZipfSampler hub_pick(o.num_hubs, o.zipf_hubs);
  const ZipfSampler activity(o.user_pool - o.num_hubs, o.zipf_activity);
  auto pick_author = [&]() {
    return o.num_hubs + activity.draw(rng);
  };

  // Normalize the tweet-type mixture.
  const double psum = o.p_plain + o.p_broadcast + o.p_random_mention +
                      o.p_conversation + o.p_self;
  GCT_CHECK(psum > 0.0, "corpus: tweet-type mixture is all zero");

  std::vector<Tweet> tweets;
  tweets.reserve(static_cast<std::size_t>(o.num_tweets) * 5 / 4);
  std::int64_t next_id = 1;
  std::int64_t clock = 1251763200;  // 2009-09-01 00:00 UTC

  auto emit = [&](const std::string& author, std::string text) {
    clock += rng.next_in(1, 10);
    tweets.push_back({next_id++, author, std::move(text), clock});
  };

  for (std::int64_t i = 0; i < o.num_tweets; ++i) {
    double r = rng.next_double() * psum;
    std::string text;

    if ((r -= o.p_plain) < 0.0) {
      // Plain chatter: author only, no mentions.
      append_filler(text, rng, 4 + static_cast<int>(rng.next_below(6)));
      maybe_hashtag(text, rng, o);
      emit(names[static_cast<std::size_t>(pick_author())], std::move(text));
    } else if ((r -= o.p_broadcast) < 0.0) {
      // Broadcast: cite (or retweet) a hub.
      const std::int64_t hub = hub_pick.draw(rng);
      const std::string& hub_name = names[static_cast<std::size_t>(hub)];
      if (rng.next_bool(o.retweet_fraction)) {
        text = "RT @" + hub_name;
        append_filler(text, rng, 3 + static_cast<int>(rng.next_below(5)));
      } else {
        append_filler(text, rng, 1 + static_cast<int>(rng.next_below(3)));
        text += " @" + hub_name;
        append_filler(text, rng, 2 + static_cast<int>(rng.next_below(4)));
      }
      maybe_hashtag(text, rng, o);
      emit(names[static_cast<std::size_t>(pick_author())], std::move(text));
    } else if ((r -= o.p_random_mention) < 0.0) {
      // One-way mention of a random (activity-weighted) user.
      const std::int64_t author = pick_author();
      std::int64_t target = pick_author();
      if (target == author) target = o.num_hubs + (target + 1 - o.num_hubs) %
                                                      (o.user_pool - o.num_hubs);
      append_filler(text, rng, 2 + static_cast<int>(rng.next_below(3)));
      text += " @" + names[static_cast<std::size_t>(target)];
      append_filler(text, rng, 2 + static_cast<int>(rng.next_below(4)));
      maybe_hashtag(text, rng, o);
      emit(names[static_cast<std::size_t>(author)], std::move(text));
    } else if ((r -= o.p_conversation) < 0.0 && !groups.empty()) {
      // Conversation: a thread inside one group, alternating speakers while
      // replies keep coming. Every reply creates a reciprocated arc.
      const Group& g = groups[rng.next_below(groups.size())];
      std::int64_t a = g.members[rng.next_below(g.members.size())];
      std::int64_t b = g.members[rng.next_below(g.members.size())];
      if (a == b) b = g.members[(rng.next_below(g.members.size()) + 1) %
                                g.members.size()];
      if (a == b) {  // group of size >= 2 guarantees an alternative
        for (std::int64_t m : g.members) {
          if (m != a) {
            b = m;
            break;
          }
        }
      }
      int turns = 1;
      while (rng.next_bool(o.reply_prob) && turns < 6) ++turns;
      for (int t = 0; t < turns; ++t) {
        std::string msg = "@" + names[static_cast<std::size_t>(t % 2 == 0 ? b : a)];
        append_filler(msg, rng, 3 + static_cast<int>(rng.next_below(5)));
        maybe_hashtag(msg, rng, o);
        emit(names[static_cast<std::size_t>(t % 2 == 0 ? a : b)],
             std::move(msg));
      }
    } else {
      // Echo chamber: author references themself.
      const std::int64_t author = pick_author();
      append_filler(text, rng, 2 + static_cast<int>(rng.next_below(3)));
      text += " @" + names[static_cast<std::size_t>(author)];
      append_filler(text, rng, 1 + static_cast<int>(rng.next_below(3)));
      maybe_hashtag(text, rng, o);
      emit(names[static_cast<std::size_t>(author)], std::move(text));
    }
  }

  // Twitter's hard limit: truncate to 140 characters.
  for (auto& t : tweets) {
    if (t.text.size() > 140) t.text.resize(140);
  }
  return tweets;
}

std::vector<std::pair<std::int64_t, std::int64_t>> simulate_weekly_articles(
    const ArticleVolumeOptions& o) {
  Rng rng(o.seed);
  std::vector<std::pair<std::int64_t, std::int64_t>> rows;
  rows.reserve(static_cast<std::size_t>(o.num_weeks));
  for (std::int64_t w = 0; w < o.num_weeks; ++w) {
    const std::int64_t week = o.first_week + w;
    double intensity = o.baseline;
    if (w >= 1) {
      // Burst wave: onset the week after first_week, geometric decay.
      intensity += o.peak * std::pow(o.decay, static_cast<double>(w - 1));
    }
    if (week >= o.rebound_week) {
      intensity += o.peak * o.rebound *
                   std::pow(o.decay, static_cast<double>(week - o.rebound_week));
    }
    // Lognormal week-to-week attention noise.
    intensity *= std::exp(o.noise_sigma * rng.next_normal());
    // Poisson(intensity) via normal approximation (intensity >> 30 here).
    const double draw =
        intensity + std::sqrt(std::max(intensity, 1.0)) * rng.next_normal();
    rows.emplace_back(week,
                      std::max<std::int64_t>(0, std::llround(draw)));
  }
  return rows;
}

}  // namespace graphct::twitter
