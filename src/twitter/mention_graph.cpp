#include "twitter/mention_graph.hpp"

#include "graph/builder.hpp"
#include "graph/edge_list.hpp"
#include "graph/transforms.hpp"
#include "twitter/tweet_parser.hpp"
#include "util/error.hpp"

namespace graphct::twitter {

CsrGraph MentionGraph::undirected() const {
  return graphct::to_undirected(directed);
}

vid MentionGraph::id_of(const std::string& normalized_name) const {
  auto it = user_ids.find(normalized_name);
  return it == user_ids.end() ? graphct::kNoVertex : it->second;
}

vid MentionGraphBuilder::intern(const std::string& name) {
  auto [it, inserted] = ids_.try_emplace(name, static_cast<vid>(users_.size()));
  if (inserted) users_.push_back(name);
  return it->second;
}

void MentionGraphBuilder::add(const Tweet& tweet) {
  add(parse_tweet(tweet));
}

void MentionGraphBuilder::add(const ParsedTweet& tweet) {
  ++num_tweets_;
  if (tweet.is_retweet) ++retweets_;
  const vid author = intern(tweet.author);
  if (tweet.mentions.empty()) return;

  ++tweets_with_mentions_;
  const std::size_t first = arcs_.size();
  bool self = false;
  for (const auto& target : tweet.mentions) {
    const vid t = intern(target);
    if (t == author) {
      self = true;
    }
    arcs_.push_back({author, t});
  }
  if (self) ++self_references_;
  tweet_arcs_.push_back({author, first, arcs_.size()});
}

MentionGraph MentionGraphBuilder::build() && {
  MentionGraph g;
  g.num_tweets = num_tweets_;
  g.tweets_with_mentions = tweets_with_mentions_;
  g.self_references = self_references_;
  g.retweets = retweets_;
  g.num_users = static_cast<std::int64_t>(users_.size());

  graphct::EdgeList el(static_cast<vid>(users_.size()));
  el.edges() = arcs_;  // copy; arcs_ is still needed for response counting

  graphct::BuildOptions opts;
  opts.symmetrize = false;   // keep direction for the conversation filter
  opts.dedup = true;         // "duplicate user interactions are thrown out"
  opts.remove_self_loops = false;
  opts.sort_adjacency = true;
  g.directed = graphct::build_csr(el, opts);

  // Unique interactions exclude self-loops (an interaction needs two users).
  g.unique_interactions =
      g.directed.num_edges() - g.directed.num_self_loops();

  // A tweet "has a response" when it mentions at least one user who mentions
  // the author back somewhere in the corpus — i.e. it lies on a reciprocated
  // (conversation) arc.
  std::int64_t responses = 0;
  const std::int64_t nt = static_cast<std::int64_t>(tweet_arcs_.size());
#pragma omp parallel for reduction(+ : responses) schedule(dynamic, 256)
  for (std::int64_t i = 0; i < nt; ++i) {
    const auto& ta = tweet_arcs_[static_cast<std::size_t>(i)];
    for (std::size_t a = ta.first; a < ta.last; ++a) {
      const vid target = arcs_[a].dst;
      if (target != ta.author && g.directed.has_edge(target, ta.author)) {
        ++responses;
        break;
      }
    }
  }
  g.tweets_with_responses = responses;

  g.users = std::move(users_);
  g.user_ids = std::move(ids_);
  return g;
}

}  // namespace graphct::twitter
