#include "twitter/temporal.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "algs/connected_components.hpp"
#include "graph/transforms.hpp"
#include "twitter/tweet_parser.hpp"
#include "util/error.hpp"

namespace graphct::twitter {

namespace {

void check_sorted(const std::vector<Tweet>& tweets) {
  for (std::size_t i = 1; i < tweets.size(); ++i) {
    GCT_CHECK(tweets[i - 1].timestamp <= tweets[i].timestamp,
              "temporal: tweet stream must be sorted by timestamp");
  }
}

// Half-open [start, start + window) slices over the stream's time span.
struct WindowSlicer {
  std::int64_t width;
  std::int64_t stride;
  std::int64_t first_start;
  std::int64_t last_start;

  WindowSlicer(const std::vector<Tweet>& tweets, const WindowOptions& opts) {
    width = opts.window_seconds;
    stride = opts.stride_seconds > 0 ? opts.stride_seconds : width;
    GCT_CHECK(width > 0, "temporal: window_seconds must be positive");
    first_start = tweets.front().timestamp;
    last_start = tweets.back().timestamp;
  }
};

}  // namespace

std::vector<WindowStats> sliding_window_stats(const std::vector<Tweet>& tweets,
                                              const WindowOptions& opts) {
  std::vector<WindowStats> out;
  if (tweets.empty()) return out;
  check_sorted(tweets);
  const WindowSlicer slicer(tweets, opts);

  for (std::int64_t start = slicer.first_start; start <= slicer.last_start;
       start += slicer.stride) {
    const std::int64_t end = start + slicer.width;
    // The stream is sorted: binary-search the window's tweet range.
    const auto lo = std::lower_bound(
        tweets.begin(), tweets.end(), start,
        [](const Tweet& t, std::int64_t ts) { return t.timestamp < ts; });
    const auto hi = std::lower_bound(
        tweets.begin(), tweets.end(), end,
        [](const Tweet& t, std::int64_t ts) { return t.timestamp < ts; });
    const auto count = static_cast<std::int64_t>(hi - lo);
    if (count < opts.min_tweets) continue;

    MentionGraphBuilder builder;
    for (auto it = lo; it != hi; ++it) builder.add(*it);
    const MentionGraph mg = std::move(builder).build();

    WindowStats w;
    w.start = start;
    w.end = end;
    w.tweets = count;
    w.users = mg.num_users;
    w.unique_interactions = mg.unique_interactions;
    w.tweets_with_responses = mg.tweets_with_responses;

    if (mg.directed.num_vertices() > 0) {
      const CsrGraph mutual = mutual_subgraph(mg.directed);
      w.mutual_pairs = mutual.num_edges();

      const CsrGraph und = mg.undirected();
      const auto labels = connected_components(und);
      w.lwcc_users = component_stats(labels).largest_size();

      // Most-cited user = max in-degree in the directed mention graph.
      const CsrGraph rev = reverse(mg.directed);
      vid best = 0;
      for (vid v = 1; v < rev.num_vertices(); ++v) {
        if (rev.degree(v) > rev.degree(best)) best = v;
      }
      if (rev.degree(best) > 0) {
        w.top_user = mg.users[static_cast<std::size_t>(best)];
        w.top_user_mentions = rev.degree(best);
      }
    }
    out.push_back(std::move(w));
  }
  return out;
}

std::vector<HubPersistence> hub_persistence(const std::vector<Tweet>& tweets,
                                            const WindowOptions& opts,
                                            std::int64_t top_n) {
  GCT_CHECK(top_n >= 1, "hub_persistence: top_n must be >= 1");
  std::vector<HubPersistence> out;
  if (tweets.empty()) return out;
  check_sorted(tweets);

  // Global top-N most-cited accounts.
  std::unordered_map<std::string, std::int64_t> citations;
  for (const auto& t : tweets) {
    const auto p = parse_tweet(t);
    for (const auto& m : p.mentions) {
      if (m != p.author) ++citations[m];
    }
  }
  std::vector<std::pair<std::string, std::int64_t>> ranked(citations.begin(),
                                                           citations.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  const auto global_n =
      std::min<std::size_t>(static_cast<std::size_t>(top_n), ranked.size());
  ranked.resize(global_n);

  std::vector<HubPersistence> hubs;
  hubs.reserve(global_n);
  for (const auto& [name, cites] : ranked) {
    HubPersistence h;
    h.name = name;
    hubs.push_back(std::move(h));
  }

  // Per-window top-N by citation count.
  const WindowSlicer slicer(tweets, opts);
  std::int64_t windows = 0;
  for (std::int64_t start = slicer.first_start; start <= slicer.last_start;
       start += slicer.stride) {
    const std::int64_t end = start + slicer.width;
    const auto lo = std::lower_bound(
        tweets.begin(), tweets.end(), start,
        [](const Tweet& t, std::int64_t ts) { return t.timestamp < ts; });
    const auto hi = std::lower_bound(
        tweets.begin(), tweets.end(), end,
        [](const Tweet& t, std::int64_t ts) { return t.timestamp < ts; });
    if (hi - lo < opts.min_tweets) continue;
    ++windows;

    std::unordered_map<std::string, std::int64_t> local;
    for (auto it = lo; it != hi; ++it) {
      const auto p = parse_tweet(*it);
      for (const auto& m : p.mentions) {
        if (m != p.author) ++local[m];
      }
    }
    std::vector<std::pair<std::string, std::int64_t>> lranked(local.begin(),
                                                              local.end());
    std::sort(lranked.begin(), lranked.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    const auto ln =
        std::min<std::size_t>(static_cast<std::size_t>(top_n), lranked.size());
    for (auto& hub : hubs) {
      for (std::size_t i = 0; i < ln; ++i) {
        if (lranked[i].first == hub.name) {
          ++hub.windows_present;
          break;
        }
      }
    }
  }
  for (auto& hub : hubs) {
    hub.presence = windows > 0 ? static_cast<double>(hub.windows_present) /
                                     static_cast<double>(windows)
                               : 0.0;
  }
  return hubs;
}

}  // namespace graphct::twitter
