#pragma once

/// \file corpus_gen.hpp
/// Synthetic tweet-corpus generator.
///
/// The paper's Twitter data (Spinn3r harvests of H1N1 / #atlflood /
/// September 2009 streams) is proprietary and unavailable, so this module
/// synthesizes corpora with the structural properties the paper reports and
/// analyzes (DESIGN.md §2):
///
///  * broadcast dominance — most mentions point at a small set of hub
///    accounts (media/government), Zipf-weighted, producing the tree-like
///    news-dissemination shape of §III-C;
///  * heavy-tailed user activity — a few users author a large share of
///    tweets (power-law degree distributions, Fig. 2);
///  * embedded conversations — small groups exchanging reciprocated
///    mentions, the sub-communities the mutual filter isolates (Fig. 3);
///  * echo-chamber self-references, retweets, plain (mention-free) tweets,
///    and topical hashtags.
///
/// The generator emits real tweet *text* ("RT @cdcflu wash hands #h1n1 ...")
/// so the end-to-end pipeline — parser, interning, dedup, graph build — is
/// exercised exactly as it would be on harvested data.

#include <cstdint>
#include <string>
#include <vector>

#include "twitter/tweet.hpp"

namespace graphct::twitter {

/// Knobs controlling a synthetic corpus.
struct CorpusOptions {
  std::int64_t user_pool = 10000;  ///< candidate users ("u<i>" + hub names)
  std::int64_t num_tweets = 12000; ///< primary tweets (replies add more)
  std::int64_t num_hubs = 20;      ///< broadcast hubs (media/government)

  /// Named hub accounts; the first num_hubs entries are used, padded with
  /// generated "hub<i>" names when the list is shorter.
  std::vector<std::string> hub_names;

  /// Zipf exponent for hub popularity and user activity.
  double zipf_hubs = 1.1;
  double zipf_activity = 1.05;

  // Tweet-type mixture (normalized internally).
  double p_plain = 0.30;         ///< no mentions
  double p_broadcast = 0.35;     ///< mention (or RT) a hub
  double p_random_mention = 0.18;///< one-way mention of a random user
  double p_conversation = 0.15;  ///< talk within a conversation group
  double p_self = 0.02;          ///< self-reference

  /// Fraction of broadcast tweets that are retweets ("RT @hub ...").
  double retweet_fraction = 0.4;

  /// Conversation structure: groups of 2..max size drawn from a shared
  /// "conversationalist" sub-population; because groups overlap (one user
  /// joins several circles), reciprocated edges weave into larger
  /// conversation clusters — the connected sub-communities of Fig. 3.
  /// A conversational mention is answered with probability reply_prob
  /// (each answer is an extra tweet, creating mutual arcs).
  std::int64_t num_conversations = 400;
  std::int64_t max_conversation_size = 6;
  double reply_prob = 0.5;

  /// Average circles each conversationalist belongs to; higher = larger
  /// connected conversation clusters after mutual filtering.
  double conversation_overlap = 2.0;

  /// Topic hashtags sprinkled into tweet text.
  std::vector<std::string> hashtags = {"topic"};
  double hashtag_prob = 0.5;

  std::uint64_t seed = 1;
};

/// Generate a corpus. Deterministic for a fixed option set (including seed).
/// Tweets are returned in timestamp order.
std::vector<Tweet> generate_corpus(const CorpusOptions& opts);

/// Weekly article-volume model (Table II): simulates the count of English
/// non-spam articles mentioning a pandemic keyword per week, as an
/// attention burst — quiet baseline, an explosive onset week, geometric
/// decay of attention, a secondary rebound wave, and lognormal week-to-week
/// noise. Counts are Poisson draws from the weekly intensity.
struct ArticleVolumeOptions {
  std::int64_t first_week = 17;    ///< ISO week of the onset year
  std::int64_t num_weeks = 8;
  double baseline = 5500.0;        ///< pre-onset weekly volume
  double peak = 105000.0;          ///< onset-week burst intensity
  double decay = 0.45;             ///< week-over-week attention retention
  double rebound = 0.35;           ///< secondary wave amplitude (x peak)
  std::int64_t rebound_week = 22;  ///< when the second wave lands
  double noise_sigma = 0.15;       ///< lognormal week noise
  std::uint64_t seed = 1;
};

/// Simulated (week, article count) rows.
std::vector<std::pair<std::int64_t, std::int64_t>> simulate_weekly_articles(
    const ArticleVolumeOptions& opts);

}  // namespace graphct::twitter
