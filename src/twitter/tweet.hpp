#pragma once

/// \file tweet.hpp
/// The tweet record and its parsed form.
///
/// Twitter messages are "short 140-character messages ... transmitted via
/// cell phones and personal computers onto a central server" (§III-A). The
/// analytically relevant symbols are Table I's: `@foo` addresses user foo
/// and `#tag` marks a topic. GraphCT's ingest reduces each tweet to its
/// author, the set of users it mentions, its hashtags, and whether it is a
/// retweet (`RT @source ...`).

#include <cstdint>
#include <string>
#include <vector>

namespace graphct::twitter {

/// A raw tweet as it arrives from the (synthetic) stream.
struct Tweet {
  std::int64_t id = 0;
  std::string author;       ///< user name without the leading '@'
  std::string text;         ///< the 140-char message body
  std::int64_t timestamp = 0;  ///< seconds since epoch
};

/// A tweet after symbol extraction.
struct ParsedTweet {
  std::int64_t id = 0;
  std::string author;                 ///< normalized (lowercased)
  std::vector<std::string> mentions;  ///< normalized @-targets, in order,
                                      ///< duplicates within the tweet removed
  std::vector<std::string> hashtags;  ///< normalized #-topics
  bool is_retweet = false;            ///< text begins with "RT @..."
  std::string retweet_of;             ///< the retweeted user when is_retweet
  std::int64_t timestamp = 0;
};

}  // namespace graphct::twitter
