#pragma once

/// \file tweet_io.hpp
/// Tweet-stream files: tab-separated `id <TAB> timestamp <TAB> author <TAB>
/// text` records, one per line, `#` comments. This is the interchange
/// format between the corpus generator and the analysis pipeline — and the
/// adapter point for real harvested data: convert any archive to this TSV
/// and every example/bench consumes it unchanged.

#include <string>
#include <string_view>
#include <vector>

#include "twitter/tweet.hpp"

namespace graphct::twitter {

/// Serialize tweets as TSV. Tabs/newlines inside text are replaced with
/// spaces (tweet text is 140 chars of message body; control characters
/// carry no analytic meaning).
std::string to_tsv(const std::vector<Tweet>& tweets);

/// Parse a TSV tweet stream. Throws graphct::Error on malformed rows
/// (missing fields, non-numeric id/timestamp).
std::vector<Tweet> parse_tsv(std::string_view text);

/// Write a tweet stream to a file.
void write_tweets(const std::vector<Tweet>& tweets, const std::string& path);

/// Read a tweet stream from a file.
std::vector<Tweet> read_tweets(const std::string& path);

}  // namespace graphct::twitter
