#pragma once

/// \file tweet_parser.hpp
/// Extraction of @mentions, #hashtags, and retweet markers from tweet text
/// (the Table I symbols).

#include <string_view>

#include "twitter/tweet.hpp"

namespace graphct::twitter {

/// True for characters Twitter allows in a user name (letters, digits, '_').
bool is_username_char(char c);

/// Normalize a user name: lowercase (Twitter handles are case-insensitive).
std::string normalize_username(std::string_view name);

/// Parse one tweet: find every @mention and #hashtag, detect the `RT @user`
/// retweet prefix, normalize names, and drop duplicate mentions while
/// preserving first-occurrence order. Mentions of zero length (a bare '@')
/// are ignored.
ParsedTweet parse_tweet(const Tweet& tweet);

}  // namespace graphct::twitter
