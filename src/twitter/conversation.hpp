#pragma once

/// \file conversation.hpp
/// Conversation (sub-community) analysis — paper §III-C/D.
///
/// The mention graph is dominated by one-way broadcast links (users citing
/// media hubs). "We retained only pairs of vertices that referred to
/// one-another through @ tags" — the mutual-edge filter — "leading to
/// dramatic reductions in the size of the networks" (Fig. 3, up to two
/// orders of magnitude). Betweenness centrality then ranks the actors who
/// broker information within what remains (Table IV).

#include <string>
#include <vector>

#include "core/betweenness.hpp"
#include "graph/transforms.hpp"
#include "twitter/mention_graph.hpp"

namespace graphct::twitter {

/// Sizes along the filtering pipeline original -> LWCC -> mutual ->
/// mutual LWCC (the Fig. 3 quantities).
struct SubcommunityResult {
  std::int64_t original_vertices = 0;
  std::int64_t original_edges = 0;  ///< undirected unique interactions

  std::int64_t lwcc_vertices = 0;   ///< largest weakly connected component
  std::int64_t lwcc_edges = 0;

  std::int64_t mutual_vertices = 0; ///< non-isolated vertices of the mutual
                                    ///< (conversation) graph
  std::int64_t mutual_edges = 0;

  std::int64_t mutual_lwcc_vertices = 0;  ///< largest conversation cluster
  std::int64_t mutual_lwcc_edges = 0;

  /// original_vertices / mutual_vertices ("reduction factors ... as high as
  /// two orders of magnitude").
  double reduction_factor = 0.0;

  /// The conversation graph (isolated vertices dropped); orig_ids index the
  /// MentionGraph's vertex/user arrays.
  graphct::Subgraph mutual;

  /// Largest connected conversation cluster; orig_ids also index the
  /// MentionGraph's arrays (the chain of relabelings is composed).
  graphct::Subgraph mutual_lwcc;
};

/// Run the full §III-C filtering pipeline on a mention graph.
SubcommunityResult subcommunity_filter(const MentionGraph& mg);

/// Generalized conversation detection (extension): strongly connected
/// components of the *directed* mention graph. The paper's mutual filter
/// keeps 2-cycles; an SCC keeps any closed mention loop (A -> B -> C -> A
/// is a three-way conversation the mutual filter misses). Returns the
/// nontrivial clusters (size >= min_size), largest first, with orig_ids
/// indexing the MentionGraph.
std::vector<graphct::Subgraph> scc_conversations(const MentionGraph& mg,
                                                 std::int64_t min_size = 2);

/// One row of a Table IV-style ranking.
struct RankedUser {
  vid vertex = graphct::kNoVertex;  ///< vertex id in the mention graph
  std::string name;                 ///< user name
  double score = 0.0;               ///< betweenness centrality
};

/// Rank users of the (undirected view of the) mention graph by betweenness
/// centrality; returns the top `count` users, score descending with
/// deterministic tie-breaks.
std::vector<RankedUser> rank_users_by_betweenness(
    const MentionGraph& mg, std::int64_t count,
    const graphct::BetweennessOptions& opts = {});

/// Directed-flow variant (the paper's §I-A future-work model): shortest
/// paths follow mention direction, so scores measure brokerage along the
/// author -> mentionee information flow rather than mere association.
std::vector<RankedUser> rank_users_by_directed_betweenness(
    const MentionGraph& mg, std::int64_t count,
    const graphct::BetweennessOptions& opts = {});

}  // namespace graphct::twitter
