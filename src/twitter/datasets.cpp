#include "twitter/datasets.hpp"

#include <cmath>

#include "util/error.hpp"

namespace graphct::twitter {

namespace {

// Hub account names observed in the paper's Table IV (media/government for
// H1N1; Atlanta media and personalities for #atlflood). Used as the named
// broadcast hubs so Table IV-style output is directly comparable.
const std::vector<std::string> kH1n1Hubs = {
    "cdcflu",      "addthis",   "official_pax", "flugov",
    "nytimes",     "tweetmeme", "mercola",      "cnn",
    "backstreetboys", "elliesmith_x", "time",   "cdcemergency",
    "cdc_ehealth", "perezhilton", "billmaher"};

const std::vector<std::string> kAtlfloodHubs = {
    "ajc",        "driveafastercar", "atlcheap",      "twci",
    "hellonorthga", "11alivenews",   "wsb_tv",        "shaunking",
    "carl",       "spaceyg",         "atlintownpaper", "tjsdjs",
    "atlien",     "marshallramsey",  "kanye"};

DatasetPreset make_h1n1() {
  DatasetPreset p;
  p.name = "h1n1";
  p.description =
      "influenza H1N1 keyword tweets, September 2009 (synthetic stand-in "
      "for the Spinn3r harvest)";
  CorpusOptions& c = p.corpus;
  c.user_pool = 100000;
  c.num_tweets = 60000;
  c.num_hubs = 60;
  c.hub_names = kH1n1Hubs;
  c.zipf_hubs = 1.0;
  c.zipf_activity = 0.40;
  c.p_plain = 0.40;
  c.p_broadcast = 0.14;
  c.p_random_mention = 0.36;
  c.p_conversation = 0.035;
  c.p_self = 0.025;
  c.retweet_fraction = 0.45;
  c.num_conversations = 1400;
  c.max_conversation_size = 6;
  c.reply_prob = 0.35;
  c.hashtags = {"h1n1", "swineflu", "flu", "influenza"};
  c.hashtag_prob = 0.7;
  c.seed = 20090901;

  p.paper = {46457, 36886, 3444, 13200, 16541, 1772, 17000, 1184};
  return p;
}

DatasetPreset make_atlflood() {
  DatasetPreset p;
  p.name = "atlflood";
  p.description =
      "#atlflood tweets, 20-25 September 2009 (synthetic stand-in)";
  CorpusOptions& c = p.corpus;
  c.user_pool = 3400;
  c.num_tweets = 4100;
  c.num_hubs = 30;
  c.hub_names = kAtlfloodHubs;
  c.zipf_hubs = 0.9;
  c.zipf_activity = 0.45;
  c.p_plain = 0.30;
  c.p_broadcast = 0.38;
  c.p_random_mention = 0.20;
  c.p_conversation = 0.05;
  c.p_self = 0.03;
  c.retweet_fraction = 0.5;
  c.num_conversations = 110;
  c.max_conversation_size = 5;
  c.reply_prob = 0.35;
  c.hashtags = {"atlflood"};
  c.hashtag_prob = 0.95;
  c.seed = 20090920;

  p.paper = {2283, 2774, 279, 1488, 2267, 247, 1164, 37};
  return p;
}

DatasetPreset make_sep1() {
  DatasetPreset p;
  p.name = "sep1";
  p.description = "all public tweets, 1 September 2009 (synthetic stand-in)";
  CorpusOptions& c = p.corpus;
  c.user_pool = 1150000;
  c.num_tweets = 1150000;
  c.num_hubs = 3000;
  c.zipf_hubs = 1.05;
  c.zipf_activity = 0.45;
  c.p_plain = 0.13;
  c.p_broadcast = 0.30;
  c.p_random_mention = 0.40;
  c.p_conversation = 0.10;
  c.p_self = 0.02;
  c.retweet_fraction = 0.35;
  c.num_conversations = 45000;
  c.max_conversation_size = 6;
  c.reply_prob = 0.45;
  c.hashtags = {"news", "music", "jobs", "fun", "sports"};
  c.hashtag_prob = 0.3;
  c.seed = 20090801;

  p.paper = {735465, 1020671, 171512, 512010, 879621, 148708, 0, 0};
  return p;
}

DatasetPreset make_sep1_9() {
  DatasetPreset p = make_sep1();
  p.name = "sep1_9";
  p.description = "tweets of 1-9 September 2009 (Fig. 6 scaling point)";
  CorpusOptions& c = p.corpus;
  c.user_pool = 4500000;
  c.num_tweets = 6500000;
  c.num_hubs = 12000;
  c.num_conversations = 220000;
  c.seed = 20090809;
  // Fig. 6 caption: 4.1M vertices, 7.1M edges.
  p.paper = {4100000, 7100000, 0, 0, 0, 0, 0, 0};
  return p;
}

DatasetPreset make_sep_all() {
  DatasetPreset p = make_sep1();
  p.name = "sep_all";
  p.description = "all September 2009 tweets (Fig. 6 scaling point)";
  CorpusOptions& c = p.corpus;
  c.user_pool = 8000000;
  c.num_tweets = 16000000;
  c.num_hubs = 20000;
  c.num_conversations = 400000;
  c.seed = 20090930;
  // Fig. 6 caption: 7.2M vertices, 18.2M edges.
  p.paper = {7200000, 18200000, 0, 0, 0, 0, 0, 0};
  return p;
}

DatasetPreset make_tiny() {
  DatasetPreset p;
  p.name = "tiny";
  p.description = "miniature mixed corpus for unit tests";
  CorpusOptions& c = p.corpus;
  c.user_pool = 300;
  c.num_tweets = 900;
  c.num_hubs = 6;
  c.hub_names = {"newsdesk", "cityhall", "weather"};
  c.num_conversations = 25;
  c.max_conversation_size = 4;
  c.reply_prob = 0.5;
  c.hashtags = {"test"};
  c.seed = 42;
  return p;
}

}  // namespace

DatasetPreset dataset_preset(std::string_view name, double scale) {
  GCT_CHECK(scale > 0.0 && scale <= 1.0,
            "dataset_preset: scale must be in (0, 1]");
  DatasetPreset p;
  if (name == "h1n1") {
    p = make_h1n1();
  } else if (name == "atlflood") {
    p = make_atlflood();
  } else if (name == "sep1") {
    p = make_sep1();
  } else if (name == "sep1_9") {
    p = make_sep1_9();
  } else if (name == "sep_all") {
    p = make_sep_all();
  } else if (name == "tiny") {
    p = make_tiny();
  } else {
    throw graphct::Error("unknown dataset preset: " + std::string(name));
  }
  if (scale < 1.0) {
    auto shrink = [&](std::int64_t v, std::int64_t floor_v) {
      return std::max<std::int64_t>(
          floor_v, static_cast<std::int64_t>(std::llround(
                       static_cast<double>(v) * scale)));
    };
    CorpusOptions& c = p.corpus;
    c.user_pool = shrink(c.user_pool, 50);
    c.num_tweets = shrink(c.num_tweets, 100);
    c.num_hubs = shrink(c.num_hubs, 3);
    c.num_conversations = shrink(c.num_conversations, 5);
  }
  return p;
}

const std::vector<std::string>& dataset_preset_names() {
  static const std::vector<std::string> names = {
      "h1n1", "atlflood", "sep1", "sep1_9", "sep_all", "tiny"};
  return names;
}

}  // namespace graphct::twitter
