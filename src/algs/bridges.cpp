#include "algs/bridges.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace graphct {

CutStructure find_cut_structure(const CsrGraph& g) {
  GCT_CHECK(!g.directed(), "find_cut_structure: graph must be undirected");
  const vid n = g.num_vertices();
  obs::KernelScope scope("cut_structure");
  CutStructure out;
  out.is_articulation.assign(static_cast<std::size_t>(n), 0);

  std::vector<vid> disc(static_cast<std::size_t>(n), kNoVertex);
  std::vector<vid> low(static_cast<std::size_t>(n), 0);
  std::vector<vid> parent(static_cast<std::size_t>(n), kNoVertex);
  // One tree-edge-to-parent may be skipped per vertex; a second copy of the
  // same undirected edge (impossible after dedup) would count as a cycle.
  std::vector<char> skipped_parent_edge(static_cast<std::size_t>(n), 0);

  struct Frame {
    vid v;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;
  vid timer = 0;

  for (vid root = 0; root < n; ++root) {
    if (disc[static_cast<std::size_t>(root)] != kNoVertex) continue;
    vid root_children = 0;
    disc[static_cast<std::size_t>(root)] = low[static_cast<std::size_t>(root)] =
        timer++;
    stack.push_back({root, 0});
    while (!stack.empty()) {
      Frame& f = stack.back();
      const vid v = f.v;
      const auto nbrs = g.neighbors(v);
      if (f.next < nbrs.size()) {
        const vid u = nbrs[f.next++];
        if (u == v) continue;  // self-loop
        if (disc[static_cast<std::size_t>(u)] == kNoVertex) {
          parent[static_cast<std::size_t>(u)] = v;
          skipped_parent_edge[static_cast<std::size_t>(u)] = 0;
          disc[static_cast<std::size_t>(u)] =
              low[static_cast<std::size_t>(u)] = timer++;
          if (v == root) ++root_children;
          stack.push_back({u, 0});
        } else if (u == parent[static_cast<std::size_t>(v)] &&
                   !skipped_parent_edge[static_cast<std::size_t>(v)]) {
          // Skip the single tree edge back to the parent.
          skipped_parent_edge[static_cast<std::size_t>(v)] = 1;
        } else {
          // Back (or forward/cross within the DFS of an undirected graph:
          // always an ancestor) edge: update low-link.
          low[static_cast<std::size_t>(v)] =
              std::min(low[static_cast<std::size_t>(v)],
                       disc[static_cast<std::size_t>(u)]);
        }
      } else {
        stack.pop_back();
        const vid p = parent[static_cast<std::size_t>(v)];
        if (p != kNoVertex) {
          low[static_cast<std::size_t>(p)] =
              std::min(low[static_cast<std::size_t>(p)],
                       low[static_cast<std::size_t>(v)]);
          // low(v) > disc(p): no back edge escapes v's subtree above p,
          // so the tree edge (p, v) is a bridge.
          if (low[static_cast<std::size_t>(v)] >
              disc[static_cast<std::size_t>(p)]) {
            out.bridges.emplace_back(std::min(p, v), std::max(p, v));
          }
          if (p != root &&
              low[static_cast<std::size_t>(v)] >=
                  disc[static_cast<std::size_t>(p)]) {
            out.is_articulation[static_cast<std::size_t>(p)] = 1;
          }
        }
      }
    }
    if (root_children >= 2) {
      out.is_articulation[static_cast<std::size_t>(root)] = 1;
    }
  }
  std::sort(out.bridges.begin(), out.bridges.end());
  return out;
}

}  // namespace graphct
