#include "algs/degree.hpp"

#include "util/parallel.hpp"

namespace graphct {

std::vector<std::int64_t> degrees(const GraphView& g) {
  const vid n = g.num_vertices();
  std::vector<std::int64_t> d(static_cast<std::size_t>(n));
#pragma omp parallel for schedule(static)
  for (vid v = 0; v < n; ++v) d[static_cast<std::size_t>(v)] = g.degree(v);
  return d;
}

std::vector<std::int64_t> in_degrees(const GraphView& g) {
  const vid n = g.num_vertices();
  std::vector<std::int64_t> d(static_cast<std::size_t>(n), 0);
  if (!g.directed()) return degrees(g);
#pragma omp parallel for schedule(dynamic, 256)
  for (vid u = 0; u < n; ++u) {
    for (vid v : g.neighbors(u)) {
      fetch_add(d[static_cast<std::size_t>(v)], 1);
    }
  }
  return d;
}

Summary degree_summary(const GraphView& g) {
  const auto d = degrees(g);
  return summarize(std::span<const std::int64_t>(d.data(), d.size()));
}

LogHistogram degree_histogram(const GraphView& g) {
  LogHistogram h;
  const auto d = degrees(g);
  h.add_all(std::span<const std::int64_t>(d.data(), d.size()));
  return h;
}

std::vector<std::pair<std::int64_t, std::int64_t>> degree_frequency(
    const GraphView& g) {
  const auto d = degrees(g);
  return frequency_table(std::span<const std::int64_t>(d.data(), d.size()));
}

double degree_power_law_alpha(const GraphView& g, std::int64_t xmin) {
  const auto d = degrees(g);
  return power_law_alpha(std::span<const std::int64_t>(d.data(), d.size()),
                         xmin);
}

}  // namespace graphct
