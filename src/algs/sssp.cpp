#include "algs/sssp.hpp"

#include <omp.h>

#include <algorithm>
#include <cstring>

#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace graphct {

EdgeWeights random_weights(const CsrGraph& g, double lo, double hi,
                           std::uint64_t seed) {
  GCT_CHECK(lo >= 0.0 && hi > lo, "random_weights: need 0 <= lo < hi");
  EdgeWeights w;
  w.value.resize(static_cast<std::size_t>(g.num_adjacency_entries()));
  const vid n = g.num_vertices();
#pragma omp parallel for schedule(dynamic, 256)
  for (vid u = 0; u < n; ++u) {
    const auto nbrs = g.neighbors(u);
    const eid base = g.offsets()[static_cast<std::size_t>(u)];
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vid v = nbrs[i];
      // Hash the unordered pair so both stored copies of an undirected
      // edge draw the same weight.
      const std::uint64_t a = static_cast<std::uint64_t>(std::min(u, v));
      const std::uint64_t b = static_cast<std::uint64_t>(std::max(u, v));
      const std::uint64_t h = mix64(seed ^ mix64(a * 0x9e3779b97f4a7c15ULL + b));
      const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
      w.value[static_cast<std::size_t>(base) + i] = lo + unit * (hi - lo);
    }
  }
  return w;
}

EdgeWeights unit_weights(const CsrGraph& g) {
  EdgeWeights w;
  w.value.assign(static_cast<std::size_t>(g.num_adjacency_entries()), 1.0);
  return w;
}

namespace {

// Lock-free atomic min on a double through its bit pattern. Nonnegative
// IEEE doubles order identically to their bit patterns, so a CAS loop on
// the integer view is exact.
bool atomic_min_double(double& target, double value) {
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  auto* bits = reinterpret_cast<std::uint64_t*>(&target);
  std::uint64_t vbits;
  std::memcpy(&vbits, &value, sizeof value);
  std::uint64_t cur = __atomic_load_n(bits, __ATOMIC_RELAXED);
  double curd;
  std::memcpy(&curd, &cur, sizeof curd);
  while (value < curd) {
    if (__atomic_compare_exchange_n(bits, &cur, vbits, /*weak=*/true,
                                    __ATOMIC_SEQ_CST, __ATOMIC_RELAXED)) {
      return true;
    }
    std::memcpy(&curd, &cur, sizeof curd);
  }
  return false;
}

}  // namespace

SsspResult delta_stepping(const CsrGraph& g, const EdgeWeights& w, vid source,
                          double delta) {
  const vid n = g.num_vertices();
  GCT_CHECK(source >= 0 && source < n, "delta_stepping: source out of range");
  GCT_CHECK(delta > 0.0, "delta_stepping: delta must be positive");
  GCT_CHECK(static_cast<eid>(w.value.size()) == g.num_adjacency_entries(),
            "delta_stepping: weights must match adjacency size");
  const auto wn = static_cast<std::int64_t>(w.value.size());
  bool nonneg = true;
#pragma omp parallel for schedule(static) reduction(&& : nonneg)
  for (std::int64_t i = 0; i < wn; ++i) {
    nonneg = nonneg && w.value[static_cast<std::size_t>(i)] >= 0.0;
  }
  GCT_CHECK(nonneg, "delta_stepping: weights must be nonnegative");

  obs::KernelScope scope("sssp");
  SsspResult r;
  r.distance.assign(static_cast<std::size_t>(n), kInfDistance);
  r.distance[static_cast<std::size_t>(source)] = 0.0;

  // Buckets with lazy deletion: a vertex's authoritative bucket is
  // floor(dist/delta); stale entries are skipped on pop.
  std::vector<std::vector<vid>> buckets(4);
  auto bucket_of = [&](double d) {
    return static_cast<std::size_t>(d / delta);
  };
  auto push = [&](vid v, double d) {
    const std::size_t b = bucket_of(d);
    if (b >= buckets.size()) buckets.resize(b * 2 + 1);
    buckets[b].push_back(v);
  };
  push(source, 0.0);

  const int nt = num_threads();
  std::vector<std::vector<std::pair<vid, double>>> updated(
      static_cast<std::size_t>(nt));

  // Relax out-edges of `frontier` matching the predicate; collect vertices
  // whose distance improved.
  auto relax = [&](const std::vector<vid>& frontier, bool light) {
#pragma omp parallel num_threads(nt)
    {
      auto& mine = updated[static_cast<std::size_t>(omp_get_thread_num())];
#pragma omp for schedule(dynamic, 64)
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(frontier.size());
           ++i) {
        const vid u = frontier[static_cast<std::size_t>(i)];
        const double du = r.distance[static_cast<std::size_t>(u)];
        const auto nbrs = g.neighbors(u);
        const eid base = g.offsets()[static_cast<std::size_t>(u)];
        for (std::size_t j = 0; j < nbrs.size(); ++j) {
          const double wt = w[base + static_cast<eid>(j)];
          if (light ? wt > delta : wt <= delta) continue;
          const double cand = du + wt;
          const vid v = nbrs[j];
          if (atomic_min_double(r.distance[static_cast<std::size_t>(v)],
                                cand)) {
            mine.emplace_back(v, cand);
          }
        }
      }
    }
    for (auto& mine : updated) {
      for (const auto& [v, d] : mine) {
        // d may be stale (another thread improved further); push by the
        // current distance so the authoritative bucket gets the entry.
        push(v, r.distance[static_cast<std::size_t>(v)]);
      }
      mine.clear();
    }
  };

  std::vector<vid> settled;  // R: retired this bucket, for heavy relaxation
  std::vector<vid> current;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    settled.clear();
    while (b < buckets.size() && !buckets[b].empty()) {
      current.clear();
      current.swap(buckets[b]);
      // Drop stale entries (vertex since moved to a lower bucket).
      current.erase(
          std::remove_if(current.begin(), current.end(),
                         [&](vid v) {
                           const double d =
                               r.distance[static_cast<std::size_t>(v)];
                           return d == kInfDistance || bucket_of(d) != b;
                         }),
          current.end());
      if (current.empty()) continue;
      ++r.phases;
      settled.insert(settled.end(), current.begin(), current.end());
      relax(current, /*light=*/true);
    }
    if (!settled.empty()) {
      // Dedup: a vertex can re-enter the bucket several times.
      std::sort(settled.begin(), settled.end());
      settled.erase(std::unique(settled.begin(), settled.end()),
                    settled.end());
      relax(settled, /*light=*/false);
    }
  }
  return r;
}

SsspResult delta_stepping(const CsrGraph& g, const EdgeWeights& w,
                          vid source) {
  double mean = 1.0;
  if (!w.value.empty()) {
    mean = reduce_sum(std::span<const double>(w.value.data(), w.value.size())) /
           static_cast<double>(w.value.size());
  }
  return delta_stepping(g, w, source, std::max(mean, 1e-9));
}

}  // namespace graphct
