#pragma once

/// \file bridges.hpp
/// Bridges (cut edges) and articulation points (cut vertices) of an
/// undirected graph, via an iterative Hopcroft-Tarjan low-link DFS.
///
/// These are the *structural* brokers: removing a bridge disconnects its
/// endpoints' communities, and every bridge endpoint of consequence shows
/// up at the top of betweenness rankings (barbell graphs make this exact).
/// For the paper's analysis they answer "which single relationship, if it
/// lapsed, would sever a conversation cluster from the news flow?" —
/// a sharper question than centrality alone.

#include <vector>

#include "graph/csr_graph.hpp"

namespace graphct {

/// Result of the cut-structure analysis.
struct CutStructure {
  /// Bridge edges as (u, v) pairs with u < v, sorted.
  std::vector<std::pair<vid, vid>> bridges;

  /// is_articulation[v] != 0 when removing v disconnects its component.
  std::vector<char> is_articulation;

  [[nodiscard]] std::int64_t num_articulation_points() const {
    std::int64_t c = 0;
    for (char b : is_articulation) c += b ? 1 : 0;
    return c;
  }
};

/// Find all bridges and articulation points. Parallel edges cannot occur in
/// deduplicated graphs; self-loops are ignored. Undirected input only.
CutStructure find_cut_structure(const CsrGraph& g);

}  // namespace graphct
