#pragma once

/// \file closeness.hpp
/// Closeness centrality with the same source-sampling machinery as
/// betweenness: exact closeness costs one BFS per vertex, so massive graphs
/// use sampled pivots (Eppstein-Wang style estimation).
///
/// We use the harmonic variant, sum over t of 1/d(v,t), which is the
/// disconnected-graph-safe formulation — essential for mention graphs,
/// whose many components would zero out classic closeness.

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "storage/graph_view.hpp"

namespace graphct {

/// Options for closeness_centrality().
struct ClosenessOptions {
  /// Pivots to sample; kNoVertex = every vertex (exact).
  std::int64_t num_sources = kNoVertex;

  std::uint64_t seed = 1;

  /// Scale sampled sums by n/num_sources for magnitude-comparable scores.
  bool rescale = true;
};

/// Result of a closeness run.
struct ClosenessResult {
  /// Harmonic closeness per vertex: sum of 1/d(pivot, v) over pivots.
  std::vector<double> score;
  std::int64_t sources_used = 0;
  double seconds = 0.0;
};

/// Compute (approximate) harmonic closeness of an undirected graph.
ClosenessResult closeness_centrality(const GraphView& g,
                                     const ClosenessOptions& opts = {});

}  // namespace graphct
