#pragma once

/// \file connected_components.hpp
/// Parallel connected components via greedy label absorption.
///
/// GraphCT finds components "through a technique similar to Kahan's
/// algorithm" (§II-A): colors spread from every vertex simultaneously,
/// colliding colors absorb the higher label into the lower, and relabelling
/// repeats until no collisions remain. This implementation does the same
/// with atomic-min label propagation plus pointer-jumping compression
/// (Shiloach-Vishkin style); the fixed point labels every vertex with the
/// minimum vertex id in its component, which makes results canonical and
/// schedule-independent.

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/transforms.hpp"
#include "storage/graph_view.hpp"

namespace graphct {

/// Per-vertex component labels for an undirected graph: labels[v] is the
/// smallest vertex id in v's component. Throws for directed input (use
/// weak_components). Runs over DRAM CSR or a packed store via GraphView.
std::vector<vid> connected_components(const GraphView& g);

/// Weakly connected components: symmetrizes a directed graph first
/// (materializing a store-backed directed graph to do so), otherwise
/// identical to connected_components.
std::vector<vid> weak_components(const GraphView& g);

/// Aggregate component statistics.
struct ComponentStats {
  std::int64_t num_components = 0;

  /// Component labels paired with sizes, largest first (ties by label).
  std::vector<std::pair<vid, std::int64_t>> sizes;

  [[nodiscard]] vid largest_label() const {
    return sizes.empty() ? kNoVertex : sizes.front().first;
  }
  [[nodiscard]] std::int64_t largest_size() const {
    return sizes.empty() ? 0 : sizes.front().second;
  }
};

/// Summarize a label array from connected_components().
ComponentStats component_stats(std::span<const vid> labels);

/// Extract the largest (weakly) connected component as a subgraph — the
/// paper's LWCC used throughout Table III. For directed graphs membership is
/// decided on the symmetrized graph but the extracted subgraph keeps arcs.
Subgraph largest_component(const CsrGraph& g);

/// Extract the i-th largest component (0 = largest), as the scripting
/// interface's `extract component <i+1>`.
Subgraph nth_largest_component(const CsrGraph& g, std::int64_t i);

}  // namespace graphct
