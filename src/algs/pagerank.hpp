#pragma once

/// \file pagerank.hpp
/// PageRank — the canonical "influence" eigenvector metric, provided
/// alongside betweenness so analysts can cross-check rankings (the paper's
/// Table IV question — *who matters in this network?* — has several
/// defensible answers; `bench/ablation_rankings` measures how much they
/// agree on tweet graphs).
///
/// Parallel power iteration on the CSR graph. Undirected graphs treat each
/// edge as a pair of opposite arcs; directed graphs follow arc direction.
/// Dangling vertices (out-degree 0) redistribute uniformly, the standard
/// stochastic-matrix fix.

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "storage/graph_view.hpp"

namespace graphct {

/// Options for pagerank().
struct PageRankOptions {
  double damping = 0.85;
  double tolerance = 1e-9;     ///< L1 change per iteration to declare done
  std::int64_t max_iterations = 200;
};

/// Result of a PageRank run.
struct PageRankResult {
  std::vector<double> score;   ///< sums to 1 over all vertices
  std::int64_t iterations = 0;
  double residual = 0.0;       ///< final L1 change
  bool converged = false;
};

/// Compute PageRank. Works on directed and undirected graphs. Self-loops
/// participate like any other arc. Runs over DRAM CSR or a packed store via
/// GraphView (a store-backed *directed* graph materializes to build the
/// reverse; undirected pulls straight from the store).
PageRankResult pagerank(const GraphView& g, const PageRankOptions& opts = {});

}  // namespace graphct
