#include "algs/connected_components.hpp"

#include <algorithm>
#include <unordered_map>

#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace graphct {

std::vector<vid> connected_components(const GraphView& g) {
  GCT_CHECK(!g.directed(),
            "connected_components: input must be undirected "
            "(use weak_components for directed graphs)");
  obs::KernelScope scope("components");
  const vid n = g.num_vertices();
  std::vector<vid> label(static_cast<std::size_t>(n));
  {
    GCT_SPAN("cc.init");
#pragma omp parallel for schedule(static)
    for (vid v = 0; v < n; ++v) label[static_cast<std::size_t>(v)] = v;
  }

  // Alternate hooking (absorb the higher color into the lower across every
  // edge) with pointer-jumping compression until a fixed point. Each phase
  // is fully parallel; atomic_min is the only synchronization.
  bool changed = true;
  while (changed) {
    changed = false;
    bool local_changed = false;
    {
      GCT_SPAN("cc.hook");
#pragma omp parallel for reduction(|| : local_changed) schedule(dynamic, 256)
      for (vid u = 0; u < n; ++u) {
        const vid lu = label[static_cast<std::size_t>(u)];
        for (vid v : g.neighbors(u)) {
          const vid lv = label[static_cast<std::size_t>(v)];
          if (lu < lv) {
            if (atomic_min(label[static_cast<std::size_t>(lv)], lu)) {
              local_changed = true;
            }
          } else if (lv < lu) {
            if (atomic_min(label[static_cast<std::size_t>(lu)], lv)) {
              local_changed = true;
            }
          }
        }
      }
      // Every hooking round touches the full adjacency.
      obs::add_work(n, g.num_adjacency_entries());
    }
    changed = local_changed;

    // Compress: chase labels to their root (label[x] == x). Pointer-jumping
    // converges in O(log n) rounds; the serial-looking inner loop is fine
    // because chains are short after the first few iterations.
    GCT_SPAN("cc.compress");
#pragma omp parallel for schedule(static)
    for (vid v = 0; v < n; ++v) {
      vid l = label[static_cast<std::size_t>(v)];
      while (label[static_cast<std::size_t>(l)] != l) {
        l = label[static_cast<std::size_t>(l)];
      }
      label[static_cast<std::size_t>(v)] = l;
    }
  }
  return label;
}

std::vector<vid> weak_components(const GraphView& g) {
  if (!g.directed()) return connected_components(g);
  // Symmetrizing needs CSR surgery; a store-backed directed graph decodes
  // to DRAM first (weak components of a >DRAM directed graph would need an
  // out-of-core transpose — not provided).
  if (const CsrGraph* csr = g.as_csr()) {
    return connected_components(to_undirected(*csr));
  }
  return connected_components(to_undirected(g.materialize()));
}

ComponentStats component_stats(std::span<const vid> labels) {
  std::unordered_map<vid, std::int64_t> counts;
  for (vid l : labels) ++counts[l];
  ComponentStats s;
  s.num_components = static_cast<std::int64_t>(counts.size());
  s.sizes.assign(counts.begin(), counts.end());
  std::sort(s.sizes.begin(), s.sizes.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return s;
}

Subgraph largest_component(const CsrGraph& g) {
  return nth_largest_component(g, 0);
}

Subgraph nth_largest_component(const CsrGraph& g, std::int64_t i) {
  const auto labels = weak_components(g);
  const auto stats = component_stats(labels);
  GCT_CHECK(i >= 0 && i < stats.num_components,
            "nth_largest_component: component index out of range");
  return extract_by_label(g, labels, stats.sizes[static_cast<std::size_t>(i)].first);
}

}  // namespace graphct
