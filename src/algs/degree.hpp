#pragma once

/// \file degree.hpp
/// Degree-distribution characterization (paper §II-A): degrees are implicit
/// in CSR; statistics are summarized by mean and variance; a histogram gives
/// the general shape ("a few high degree vertices with many low degree
/// vertices indicates a similarity to scale-free social networks").

#include <vector>

#include "graph/csr_graph.hpp"
#include "storage/graph_view.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"

namespace graphct {

/// Out-degrees of every vertex (== degrees for undirected graphs).
std::vector<std::int64_t> degrees(const GraphView& g);

/// In-degrees of every vertex (== degrees for undirected graphs).
std::vector<std::int64_t> in_degrees(const GraphView& g);

/// Mean/variance/min/max of the degree sequence.
Summary degree_summary(const GraphView& g);

/// Power-of-two binned degree histogram (the Fig. 2 presentation).
LogHistogram degree_histogram(const GraphView& g);

/// Exact (degree, #vertices) frequency pairs — the raw log-log series.
std::vector<std::pair<std::int64_t, std::int64_t>> degree_frequency(
    const GraphView& g);

/// MLE power-law exponent of the degree sequence for degrees >= xmin.
double degree_power_law_alpha(const GraphView& g, std::int64_t xmin = 2);

}  // namespace graphct
