#pragma once

/// \file sssp.hpp
/// Weighted single-source shortest paths via delta-stepping.
///
/// GraphCT's DIMACS ingest reads "an edge list and an integer weight for
/// each edge" (§IV-C) but the paper's metrics are topological, so the
/// weights are dropped. This substrate puts them to work: delta-stepping
/// (Meyer & Sanders 1998) is the bucketed relaxation algorithm Madduri and
/// Bader made famous on the Cray MTA-2 — the same group's flagship
/// multithreaded SSSP — and the natural next kernel for an analyst whose
/// mention edges carry costs (latency, distrust, inverse frequency).
///
/// Light edges (weight <= delta) are relaxed repeatedly inside a bucket
/// until it settles; heavy edges once, when the bucket retires. With
/// delta = +infinity this degenerates to Bellman-Ford; with delta smaller
/// than every weight, to Dijkstra's bucket order.

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/csr_graph.hpp"

namespace graphct {

/// Edge weights parallel to a CsrGraph's adjacency array: weight(g, e) is
/// the weight of the arc stored at adjacency slot e. Symmetric undirected
/// graphs carry each edge's weight on both of its adjacency entries.
struct EdgeWeights {
  std::vector<double> value;  ///< size == g.num_adjacency_entries()

  [[nodiscard]] double operator[](eid e) const {
    return value[static_cast<std::size_t>(e)];
  }
};

/// Uniform-random weights in [lo, hi) — deterministic per (seed, slot) and
/// symmetric for undirected graphs (both copies of an edge get one weight).
EdgeWeights random_weights(const CsrGraph& g, double lo, double hi,
                           std::uint64_t seed = 1);

/// Unit weights (SSSP == BFS); for tests and sanity baselines.
EdgeWeights unit_weights(const CsrGraph& g);

/// Marks "unreachable" in distance results.
inline constexpr double kInfDistance = std::numeric_limits<double>::infinity();

/// Result of one SSSP run.
struct SsspResult {
  std::vector<double> distance;  ///< kInfDistance when unreachable
  std::int64_t phases = 0;       ///< bucket relaxation phases executed
};

/// Delta-stepping SSSP from `source`. Weights must be nonnegative; delta
/// must be positive (a good default is mean edge weight). Works on
/// directed and undirected graphs.
SsspResult delta_stepping(const CsrGraph& g, const EdgeWeights& w, vid source,
                          double delta);

/// Convenience overload picking delta = max(mean weight, epsilon).
SsspResult delta_stepping(const CsrGraph& g, const EdgeWeights& w, vid source);

}  // namespace graphct
