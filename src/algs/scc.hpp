#pragma once

/// \file scc.hpp
/// Strongly connected components of a directed graph (Kosaraju's two-pass
/// algorithm, iterative).
///
/// The companion of the directed-flow extension (paper §I-A): in a directed
/// mention graph, a strongly connected component is a set of users every
/// one of whom can reach every other along mention chains — a
/// generalization of the paper's mutual-pair conversation filter from
/// 2-cycles to arbitrary cycles. Nontrivial SCCs (size >= 2) are exactly
/// the "many-to-many communication patterns hidden in the data" the paper
/// goes looking for (§III-C).

#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/transforms.hpp"

namespace graphct {

/// Per-vertex SCC labels of a directed graph; labels[v] is the smallest
/// vertex id in v's component (canonical). Undirected input is rejected
/// (use connected_components).
std::vector<vid> strongly_connected_components(const CsrGraph& g);

/// Count SCCs of size >= min_size from a label array.
std::int64_t count_components(std::span<const vid> labels,
                              std::int64_t min_size = 1);

/// Extract the largest SCC as a subgraph (arcs preserved).
Subgraph largest_scc(const CsrGraph& g);

}  // namespace graphct
