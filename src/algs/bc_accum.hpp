#pragma once

/// \file bc_accum.hpp
/// The canonical 4-lane branchless accumulation rows shared by every sigma
/// / dependency sweep in the repo: the top-down pull and the fused
/// bottom-up sweep in algs/bfs.cpp, the coefficient-form backward pass in
/// core/betweenness.cpp, and the distributed betweenness worker in
/// dist/worker.cpp.
///
/// These helpers ARE the bit-identity contract. A per-vertex sum is: four
/// independent accumulator lanes assigned by neighbor index (j % 4), each
/// term `value * static_cast<double>(predicate)` (multiply-by-comparison —
/// exact, because the factor is exactly 0.0 or 1.0), a scalar remainder
/// into lane 0, and the final combine `(a0 + a1) + (a2 + a3)`. The lane
/// assignment depends only on the neighbor index, so for a fixed adjacency
/// row the sum is bitwise identical across thread counts, fine/coarse/auto
/// modes, both forward engines, and the single-process vs distributed
/// paths (dist_test and bench/dist_profile pin the last one). Change the
/// lane count, the combine order, or the prefetch distance here and every
/// parity gate in CI moves together — which is the point of sharing it.
///
/// Predicates take the neighbor id and return bool; values are looked up
/// by the same id. The prefetch functor is given ids ~16 neighbors ahead
/// (the adjacency stream provides them for free) and should touch whatever
/// array dominates the random traffic — sigma for the forward pulls, the
/// packed DistCoef line for the backward pass.

#include <cstdint>

namespace graphct {

/// Backward-sweep per-vertex state, packed so the per-edge random access
/// touches ONE cache line instead of two: the sweep reads a neighbor's
/// distance and, when it is one level deeper, its coefficient
/// (1 + delta) / sigma — keeping them in separate arrays doubles the random
/// line traffic that dominates the pass.
struct alignas(16) DistCoef {
  double coef;
  std::int64_t dist;
};

/// Sum `value_at(u) * pred_at(u)` over one adjacency row in the canonical
/// lane order. `nb[0..deg)` is the row (any integral id type — vid or the
/// narrowed int32 copy), `prefetch_at(u)` warms the value line.
template <typename Nbr, typename ValueAt, typename PredAt,
          typename PrefetchAt>
inline double bc_lane_sum(const Nbr* nb, std::int64_t deg,
                          const ValueAt& value_at, const PredAt& pred_at,
                          const PrefetchAt& prefetch_at) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::int64_t j = 0;
  for (; j + 4 <= deg; j += 4) {
    if (j + 20 <= deg) {
      // The value lines are random; the adjacency stream gives the
      // addresses ~4 iterations ahead for free.
      prefetch_at(nb[j + 16]);
      prefetch_at(nb[j + 17]);
      prefetch_at(nb[j + 18]);
      prefetch_at(nb[j + 19]);
    }
    a0 += value_at(nb[j]) * static_cast<double>(pred_at(nb[j]));
    a1 += value_at(nb[j + 1]) * static_cast<double>(pred_at(nb[j + 1]));
    a2 += value_at(nb[j + 2]) * static_cast<double>(pred_at(nb[j + 2]));
    a3 += value_at(nb[j + 3]) * static_cast<double>(pred_at(nb[j + 3]));
  }
  for (; j < deg; ++j) {
    a0 += value_at(nb[j]) * static_cast<double>(pred_at(nb[j]));
  }
  return (a0 + a1) + (a2 + a3);
}

/// Sigma pull over one row: sum sigma[u] over neighbors u satisfying
/// `pred_at(u)` (== "u is one level up" — as a distance compare top-down,
/// as a frontier-bitmap test bottom-up; same booleans, same sum). sigma of
/// a failing neighbor is stale but finite, so the unconditional load is
/// safe and the multiply-by-comparison keeps the loop branch-free.
template <typename Nbr, typename PredAt>
inline double bc_pull_sigma_row(const Nbr* nb, std::int64_t deg,
                                const double* sigma, const PredAt& pred_at) {
  return bc_lane_sum(
      nb, deg,
      [sigma](Nbr u) { return sigma[static_cast<std::size_t>(u)]; }, pred_at,
      [sigma](Nbr u) { __builtin_prefetch(&sigma[static_cast<std::size_t>(u)]); });
}

/// Coefficient pull over one row: sum coef[u] over neighbors u exactly one
/// level deeper, reading the packed DistCoef line once per neighbor.
template <typename Nbr>
inline double bc_pull_coef_row(const Nbr* nb, std::int64_t deg,
                               const DistCoef* dc, std::int64_t deeper) {
  return bc_lane_sum(
      nb, deg, [dc](Nbr u) { return dc[u].coef; },
      [dc, deeper](Nbr u) { return dc[u].dist == deeper; },
      [dc](Nbr u) { __builtin_prefetch(&dc[u]); });
}

}  // namespace graphct
