#pragma once

/// \file assortativity.hpp
/// Degree assortativity (Newman 2002) — the Pearson correlation of degrees
/// across edges. Social networks are famously assortative (hubs befriend
/// hubs) while broadcast media graphs are *dis*assortative: many low-degree
/// users all pointing at a few hubs, exactly the paper's tree-like news
/// dissemination structure (§III-C). A strongly negative coefficient on the
/// mention graphs is therefore a structural signature worth reporting
/// alongside the degree distribution.

#include "graph/csr_graph.hpp"

namespace graphct {

/// Degree assortativity coefficient in [-1, 1] of an undirected graph.
/// Self-loops are excluded. Returns 0 for degenerate graphs (fewer than 2
/// edges or zero degree variance across edge endpoints).
double degree_assortativity(const CsrGraph& g);

}  // namespace graphct
