#pragma once

/// \file ranking.hpp
/// Top-k actor ranking and rank-agreement metrics.
///
/// The paper evaluates approximate betweenness centrality by "the
/// identification of top ranked actors": it extracts the top N% of users by
/// score and compares approximate-vs-exact rankings with a normalized top-k
/// set Hamming distance (§III-D/E, Fig. 5). These utilities implement that
/// machinery: deterministic top-k selection (score descending, vertex id
/// ascending on ties) and the set-overlap / Hamming / Spearman metrics.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"

namespace graphct {

/// Indices of the k largest scores, ordered by (score desc, index asc).
/// k is clamped to scores.size().
std::vector<vid> top_k(std::span<const double> scores, std::int64_t k);

/// Top ceil(percent/100 * n) indices; percent in (0, 100].
std::vector<vid> top_percent(std::span<const double> scores, double percent);

/// |A ∩ B| for two index sets (orders ignored).
std::int64_t set_intersection_size(std::span<const vid> a,
                                   std::span<const vid> b);

/// Normalized set Hamming distance between two equal-size top-k sets:
/// |A Δ B| / (2k)  — 0 when identical, 1 when disjoint.
double normalized_set_hamming(std::span<const vid> a, std::span<const vid> b);

/// The paper's Fig. 5 y-axis: fraction of top-k actors present in both
/// rankings, |A ∩ B| / k (== 1 - normalized set Hamming for equal sizes).
double top_k_overlap(std::span<const double> exact_scores,
                     std::span<const double> approx_scores, double percent);

/// Spearman rank correlation between two score vectors (average ranks for
/// ties). Returns 0 for degenerate inputs.
double spearman_correlation(std::span<const double> a,
                            std::span<const double> b);

}  // namespace graphct
