#pragma once

/// \file kcore.hpp
/// k-core decomposition (a GraphCT top-level kernel: "extracting k-cores",
/// §IV-A). The k-core is the maximal subgraph in which every vertex has
/// degree >= k; the coreness of a vertex is the largest k whose k-core
/// contains it. Cores peel away the low-degree broadcast fringe of social
/// graphs and expose the densely connected conversational middle.

#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/transforms.hpp"

namespace graphct {

/// Coreness of every vertex, by parallel iterative peeling. Requires an
/// undirected graph; self-loops do not contribute to degree.
std::vector<std::int64_t> core_numbers(const CsrGraph& g);

/// Largest k with a non-empty k-core (the graph's degeneracy).
std::int64_t degeneracy(std::span<const std::int64_t> coreness);

/// Extract the k-core as a subgraph (vertices with coreness >= k).
Subgraph kcore_subgraph(const CsrGraph& g, std::int64_t k);

}  // namespace graphct
