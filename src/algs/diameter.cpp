#include "algs/diameter.hpp"

#include <algorithm>

#include "algs/bfs.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace graphct {

DiameterEstimate estimate_diameter(const GraphView& g,
                                   const DiameterOptions& opts) {
  DiameterEstimate est;
  const vid n = g.num_vertices();
  if (n == 0) return est;
  obs::KernelScope scope("diameter");

  Rng rng(opts.seed);
  const std::int64_t k = std::min<std::int64_t>(opts.num_samples, n);
  const auto sources = rng.sample_without_replacement(n, k);
  est.samples_used = k;

  vid longest = 0;
  // Coarse parallelism across sources mirrors the paper's betweenness
  // decomposition; each BFS also parallelizes internally, which is what
  // matters once graphs dwarf the sample count.
  BfsOptions bopts;
  bopts.deterministic_order = false;  // only the depth is consumed
  bopts.compute_parents = false;
  BfsResult buffer;
  for (vid s : sources) {
    GCT_SPAN("diameter.bfs");
    bfs_into(g, s, bopts, buffer);
    longest = std::max(longest, buffer.max_distance());
  }
  est.longest_distance = longest;
  est.estimate = longest * opts.multiplier;
  return est;
}

vid exact_diameter(const GraphView& g) {
  const vid n = g.num_vertices();
  vid diameter = 0;
  BfsOptions bopts;
  bopts.deterministic_order = false;
  bopts.compute_parents = false;
  BfsResult buffer;
  for (vid s = 0; s < n; ++s) {
    bfs_into(g, s, bopts, buffer);
    diameter = std::max(diameter, buffer.max_distance());
  }
  return diameter;
}

}  // namespace graphct
