#include "algs/community.hpp"

#include <algorithm>
#include <unordered_map>

#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace graphct {

CommunityResult label_propagation(const CsrGraph& g,
                                  const LabelPropagationOptions& opts) {
  GCT_CHECK(!g.directed(), "label_propagation: graph must be undirected");
  GCT_CHECK(opts.max_iterations >= 1, "label_propagation: need >= 1 iteration");
  const vid n = g.num_vertices();
  obs::KernelScope scope("communities");

  CommunityResult r;
  r.labels.resize(static_cast<std::size_t>(n));
#pragma omp parallel for schedule(static)
  for (vid v = 0; v < n; ++v) r.labels[static_cast<std::size_t>(v)] = v;
  if (n == 0) return r;

  // Random parity assignment: vertices update in two alternating
  // half-steps (red/black), which kills the two-coloring oscillation that
  // plagues fully synchronous label propagation while staying deterministic
  // and parallel.
  std::vector<char> parity(static_cast<std::size_t>(n));
  {
    GCT_SPAN("lp.init");
    Rng rng(opts.seed);
    for (vid v = 0; v < n; ++v) {
      parity[static_cast<std::size_t>(v)] = rng.next_bool(0.5) ? 1 : 0;
    }
  }

  std::vector<vid> next(r.labels);
  bool changed = true;
  for (std::int64_t it = 0; it < opts.max_iterations && changed; ++it) {
    changed = false;
    for (int phase = 0; phase < 2; ++phase) {
      bool phase_changed = false;
      {
      GCT_SPAN("lp.propagate");
#pragma omp parallel for reduction(|| : phase_changed) schedule(dynamic, 256)
      for (vid v = 0; v < n; ++v) {
        if (parity[static_cast<std::size_t>(v)] != phase) continue;
        const auto nbrs = g.neighbors(v);
        if (nbrs.empty()) continue;
        // Most frequent label among neighbors plus the vertex's own vote
        // (the self-vote breaks the synchronous-update label swap between
        // adjacent same-phase vertices); ties -> smallest label.
        std::unordered_map<vid, std::int64_t> freq;
        freq[r.labels[static_cast<std::size_t>(v)]] = 1;
        for (vid u : nbrs) {
          if (u == v) continue;  // self-loops don't add extra votes
          ++freq[r.labels[static_cast<std::size_t>(u)]];
        }
        vid best = r.labels[static_cast<std::size_t>(v)];
        std::int64_t best_count = 0;
        for (const auto& [label, count] : freq) {
          if (count > best_count ||
              (count == best_count && label < best)) {
            best = label;
            best_count = count;
          }
        }
        if (best != r.labels[static_cast<std::size_t>(v)]) {
          next[static_cast<std::size_t>(v)] = best;
          phase_changed = true;
        } else {
          next[static_cast<std::size_t>(v)] = best;
        }
      }
      // Each half-step reads roughly half the adjacency.
      obs::add_work(n / 2, g.num_adjacency_entries() / 2);
      }
      // Commit the half-step.
      {
        GCT_SPAN("lp.commit");
#pragma omp parallel for schedule(static)
        for (vid v = 0; v < n; ++v) {
          if (parity[static_cast<std::size_t>(v)] == phase) {
            r.labels[static_cast<std::size_t>(v)] =
                next[static_cast<std::size_t>(v)];
          }
        }
      }
      changed = changed || phase_changed;
    }
    r.iterations = it + 1;
  }
  r.converged = !changed;

  GCT_SPAN("lp.canonicalize");
  // Canonicalize: community id = min vertex id carrying that label.
  std::unordered_map<vid, vid> canon;
  for (vid v = 0; v < n; ++v) {
    const vid l = r.labels[static_cast<std::size_t>(v)];
    auto [it, inserted] = canon.try_emplace(l, v);
    if (!inserted) it->second = std::min(it->second, v);
  }
#pragma omp parallel for schedule(static)
  for (vid v = 0; v < n; ++v) {
    r.labels[static_cast<std::size_t>(v)] =
        canon.at(r.labels[static_cast<std::size_t>(v)]);
  }

  std::unordered_map<vid, std::int64_t> counts;
  for (vid l : r.labels) ++counts[l];
  r.num_communities = static_cast<std::int64_t>(counts.size());
  r.sizes.assign(counts.begin(), counts.end());
  std::sort(r.sizes.begin(), r.sizes.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return r;
}

double modularity(const CsrGraph& g, std::span<const vid> labels) {
  GCT_CHECK(!g.directed(), "modularity: graph must be undirected");
  const vid n = g.num_vertices();
  GCT_CHECK(static_cast<vid>(labels.size()) == n,
            "modularity: labels size must equal vertex count");

  // Effective degrees and edge count exclude self-loops.
  std::vector<std::int64_t> deg(static_cast<std::size_t>(n));
  std::int64_t two_m = 0;
#pragma omp parallel for reduction(+ : two_m) schedule(static)
  for (vid v = 0; v < n; ++v) {
    std::int64_t d = g.degree(v);
    if (g.has_edge(v, v)) --d;
    deg[static_cast<std::size_t>(v)] = d;
    two_m += d;
  }
  GCT_CHECK(two_m > 0, "modularity: graph has no (non-loop) edges");

  // Q = sum_c [ e_c/m - (sum_deg_c / 2m)^2 ] with e_c = intra-community
  // edge endpoints / 2.
  std::unordered_map<vid, std::int64_t> intra_endpoints;  // per community
  std::unordered_map<vid, std::int64_t> total_degree;
  for (vid v = 0; v < n; ++v) {
    const vid lv = labels[static_cast<std::size_t>(v)];
    total_degree[lv] += deg[static_cast<std::size_t>(v)];
    for (vid u : g.neighbors(v)) {
      if (u == v) continue;
      if (labels[static_cast<std::size_t>(u)] == lv) ++intra_endpoints[lv];
    }
  }
  double q = 0.0;
  const double m2 = static_cast<double>(two_m);
  for (const auto& [label, dsum] : total_degree) {
    const auto it = intra_endpoints.find(label);
    const double e = it == intra_endpoints.end()
                         ? 0.0
                         : static_cast<double>(it->second) / m2;
    const double a = static_cast<double>(dsum) / m2;
    q += e - a * a;
  }
  return q;
}

}  // namespace graphct
