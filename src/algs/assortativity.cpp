#include "algs/assortativity.hpp"

#include <cmath>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace graphct {

double degree_assortativity(const CsrGraph& g) {
  GCT_CHECK(!g.directed(), "degree_assortativity: graph must be undirected");
  const vid n = g.num_vertices();
  obs::KernelScope scope("assortativity");

  // Newman's formulation over edge endpoint pairs (j_i, k_i), both
  // directions of each edge included (equivalently, symmetric sums):
  //   r = [M^-1 sum j*k - (M^-1 sum (j+k)/2)^2] /
  //       [M^-1 sum (j^2+k^2)/2 - (M^-1 sum (j+k)/2)^2]
  double sum_jk = 0.0, sum_half = 0.0, sum_sq_half = 0.0;
  std::int64_t arcs = 0;

#pragma omp parallel for reduction(+ : sum_jk, sum_half, sum_sq_half, arcs) \
    schedule(dynamic, 256)
  for (vid v = 0; v < n; ++v) {
    // Effective degree excludes self-loops.
    double dv = static_cast<double>(g.degree(v));
    if (g.has_edge(v, v)) dv -= 1.0;
    for (vid u : g.neighbors(v)) {
      if (u == v) continue;
      double du = static_cast<double>(g.degree(u));
      if (g.has_edge(u, u)) du -= 1.0;
      sum_jk += dv * du;
      sum_half += 0.5 * (dv + du);
      sum_sq_half += 0.5 * (dv * dv + du * du);
      ++arcs;
    }
  }
  if (arcs < 2) return 0.0;
  const double inv_m = 1.0 / static_cast<double>(arcs);
  const double mean = sum_half * inv_m;
  const double num = sum_jk * inv_m - mean * mean;
  const double den = sum_sq_half * inv_m - mean * mean;
  if (std::abs(den) < 1e-15) return 0.0;
  return num / den;
}

}  // namespace graphct
