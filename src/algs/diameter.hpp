#pragma once

/// \file diameter.hpp
/// Graph diameter estimation, exactly as GraphCT does on graph load
/// (§IV-A): run BFS from a set of randomly selected source vertices, take
/// the longest distance found, and multiply by a safety factor (default 4).
/// The toolkit uses the estimate to size traversal queues; it "does not
/// affect accuracy of the kernels".

#include <cstdint>

#include "graph/csr_graph.hpp"
#include "storage/graph_view.hpp"

namespace graphct {

/// Diameter estimation parameters (paper defaults: 256 samples, 4x).
struct DiameterOptions {
  std::int64_t num_samples = 256;
  std::int64_t multiplier = 4;
  std::uint64_t seed = 1;
};

/// Result of a diameter estimation pass.
struct DiameterEstimate {
  /// Longest BFS distance observed from any sampled source — a lower bound
  /// on the true diameter of the (reachable parts of the) graph.
  vid longest_distance = 0;

  /// longest_distance * multiplier — the queue-sizing estimate.
  vid estimate = 0;

  /// Number of sources actually sampled (min(num_samples, n)).
  std::int64_t samples_used = 0;
};

/// Estimate the diameter by sampled BFS sweeps.
DiameterEstimate estimate_diameter(const GraphView& g,
                                   const DiameterOptions& opts = {});

/// Exact diameter: max eccentricity over all vertices, ignoring unreachable
/// pairs (0 for an empty or edgeless graph). O(n·m) — tests and small graphs
/// only.
vid exact_diameter(const GraphView& g);

}  // namespace graphct
