#include "algs/pagerank.hpp"

#include <cmath>

#include "graph/transforms.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace graphct {

PageRankResult pagerank(const GraphView& g, const PageRankOptions& opts) {
  GCT_CHECK(opts.damping > 0.0 && opts.damping < 1.0,
            "pagerank: damping must be in (0,1)");
  GCT_CHECK(opts.max_iterations >= 1, "pagerank: need >= 1 iteration");
  const vid n = g.num_vertices();
  PageRankResult r;
  if (n == 0) return r;
  obs::KernelScope scope("pagerank");

  // Pull formulation needs in-neighbors; for directed graphs build the
  // reverse once (decoding a store-backed graph to DRAM first — an
  // out-of-core transpose is not provided). Undirected adjacency is its own
  // reverse, so the undirected path pulls straight through the view.
  CsrGraph rev_storage;
  if (g.directed()) {
    GCT_SPAN("pagerank.reverse");
    rev_storage = g.as_csr() ? reverse(*g.as_csr()) : reverse(g.materialize());
  }
  const GraphView in = g.directed() ? GraphView(rev_storage) : g;

  const double inv_n = 1.0 / static_cast<double>(n);
  std::vector<double> rank(static_cast<std::size_t>(n), inv_n);
  std::vector<double> next(static_cast<std::size_t>(n), 0.0);
  std::vector<double> contrib(static_cast<std::size_t>(n), 0.0);

  for (std::int64_t it = 0; it < opts.max_iterations; ++it) {
    // Per-vertex outgoing contribution, and the dangling mass.
    double dangling = 0.0;
    {
      GCT_SPAN("pagerank.contrib");
#pragma omp parallel for reduction(+ : dangling) schedule(static)
      for (vid v = 0; v < n; ++v) {
        const vid d = g.degree(v);
        if (d == 0) {
          dangling += rank[static_cast<std::size_t>(v)];
          contrib[static_cast<std::size_t>(v)] = 0.0;
        } else {
          contrib[static_cast<std::size_t>(v)] =
              rank[static_cast<std::size_t>(v)] / static_cast<double>(d);
        }
      }
    }

    const double base =
        (1.0 - opts.damping) * inv_n + opts.damping * dangling * inv_n;
    double delta = 0.0;
    {
      GCT_SPAN("pagerank.pull");
#pragma omp parallel for reduction(+ : delta) schedule(dynamic, 256)
      for (vid v = 0; v < n; ++v) {
        double acc = 0.0;
        for (vid u : in.neighbors(v)) {
          acc += contrib[static_cast<std::size_t>(u)];
        }
        const double nv = base + opts.damping * acc;
        next[static_cast<std::size_t>(v)] = nv;
        delta += std::abs(nv - rank[static_cast<std::size_t>(v)]);
      }
      // Each pull iteration reads every in-edge once.
      obs::add_work(n, in.num_adjacency_entries());
    }
    rank.swap(next);
    r.iterations = it + 1;
    r.residual = delta;
    if (delta < opts.tolerance) {
      r.converged = true;
      break;
    }
  }
  r.score = std::move(rank);
  return r;
}

}  // namespace graphct
