#pragma once

/// \file community.hpp
/// Community detection by parallel label propagation, plus modularity.
///
/// The paper observes that in social networks "natural clusters form, but
/// the clusters do not partition the graph" (§I-B) and uses mutual-edge
/// filtering to expose conversational clusters. Label propagation is the
/// scalable complement: every vertex repeatedly adopts the most frequent
/// label among its neighbors until a fixed point, yielding the dense
/// sub-communities without a target count. Modularity scores a labeling so
/// different clusterings (label propagation vs connected components vs the
/// mutual-filter clusters) can be compared quantitatively.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"

namespace graphct {

/// Options for label_propagation().
struct LabelPropagationOptions {
  std::int64_t max_iterations = 100;
  std::uint64_t seed = 1;  ///< breaks ties among equally frequent labels
};

/// Result of a label-propagation run.
struct CommunityResult {
  /// labels[v] = community id (the minimum vertex id in the community,
  /// canonicalized after convergence).
  std::vector<vid> labels;

  std::int64_t num_communities = 0;
  std::int64_t iterations = 0;
  bool converged = false;

  /// Community sizes, largest first (ties by label).
  std::vector<std::pair<vid, std::int64_t>> sizes;
};

/// Run label propagation on an undirected graph. Deterministic for a fixed
/// seed (vertices update synchronously in two alternating half-steps to
/// avoid label oscillation).
CommunityResult label_propagation(const CsrGraph& g,
                                  const LabelPropagationOptions& opts = {});

/// Newman modularity of a labeling: Q = (1/2m) * sum over vertex pairs in
/// the same community of (A_uv - deg(u)*deg(v)/(2m)). Q in [-0.5, 1];
/// higher = denser communities than chance. Requires an undirected graph
/// with at least one edge; self-loops are ignored.
double modularity(const CsrGraph& g, std::span<const vid> labels);

}  // namespace graphct
