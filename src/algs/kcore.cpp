#include "algs/kcore.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace graphct {

std::vector<std::int64_t> core_numbers(const CsrGraph& g) {
  GCT_CHECK(!g.directed(), "core_numbers: graph must be undirected");
  const vid n = g.num_vertices();
  obs::KernelScope scope("kcore");

  // Effective degree ignores self-loops (one slot each in the adjacency).
  std::vector<std::int64_t> deg(static_cast<std::size_t>(n));
  {
    GCT_SPAN("kcore.init");
#pragma omp parallel for schedule(static)
    for (vid v = 0; v < n; ++v) {
      std::int64_t d = g.degree(v);
      if (g.has_edge(v, v)) --d;
      deg[static_cast<std::size_t>(v)] = d;
    }
  }

  std::vector<std::int64_t> core(static_cast<std::size_t>(n), 0);
  std::vector<char> removed(static_cast<std::size_t>(n), 0);
  std::vector<vid> frontier;
  frontier.reserve(static_cast<std::size_t>(n));
  std::vector<vid> next(static_cast<std::size_t>(n));

  // Compact list of not-yet-removed vertices, in ascending id order. The
  // seed swept all n vertices once per k (56 full kcore.scan sweeps at
  // scale 16); each level now sweeps only the survivors, compacting peeled
  // vertices out in the same pass, so total scan work is sum_k |alive_k|
  // instead of levels * n and stays a sequential streaming read. (An
  // explicit bucket queue per degree was tried and lost: one random-access
  // pending-list append per degree decrement costs more than these shrinking
  // sweeps save at this scale.)
  std::vector<vid> alive(static_cast<std::size_t>(n));
  for (vid v = 0; v < n; ++v) alive[static_cast<std::size_t>(v)] = v;

  std::int64_t remaining = n;
  std::int64_t k = 0;
  while (remaining > 0) {
    // Peel everything of degree <= k, cascading, then increment k.
    {
      GCT_SPAN("kcore.scan");
      frontier.clear();
      std::size_t tail = 0;
      for (const vid v : alive) {
        if (removed[static_cast<std::size_t>(v)]) continue;
        alive[tail++] = v;
        if (deg[static_cast<std::size_t>(v)] <= k) frontier.push_back(v);
      }
      alive.resize(tail);
      obs::add_work(static_cast<std::int64_t>(tail), 0);
    }
    while (!frontier.empty()) {
      GCT_SPAN("kcore.peel");
      std::int64_t next_tail = 0;
      const std::int64_t fsz = static_cast<std::int64_t>(frontier.size());
      // Serial threshold: most peel waves hold a handful of vertices, and a
      // team fork plus lock-prefixed degree decrements per tiny wave is pure
      // overhead (it showed up as threads=8 run-to-run noise at scale 16).
      constexpr std::int64_t kPeelSerialBelow = 256;
#pragma omp parallel for schedule(dynamic, 64) if (fsz >= kPeelSerialBelow)
      for (std::int64_t i = 0; i < fsz; ++i) {
        const vid v = frontier[static_cast<std::size_t>(i)];
        removed[static_cast<std::size_t>(v)] = 1;
        core[static_cast<std::size_t>(v)] = k;
        for (vid u : g.neighbors(v)) {
          if (u == v) continue;
          if (removed[static_cast<std::size_t>(u)]) continue;
          const std::int64_t before =
              fetch_add(deg[static_cast<std::size_t>(u)], -1);
          // The thread that moves u's degree from k+1 to k enqueues it; the
          // fetch-and-add return value makes exactly one thread responsible,
          // and a vertex's degree crosses k+1 -> k at most once, so `next`
          // never holds more than n entries.
          if (before == k + 1) {
            const std::int64_t slot = fetch_add(next_tail, 1);
            next[static_cast<std::size_t>(slot)] = u;
          }
        }
      }
      remaining -= fsz;
      if (obs::profile_active()) {
        std::int64_t scanned = 0;
#pragma omp parallel for reduction(+ : scanned) schedule(static)
        for (std::int64_t i = 0; i < fsz; ++i) {
          scanned += g.degree(frontier[static_cast<std::size_t>(i)]);
        }
        obs::add_work(fsz, scanned);
      }
      // A vertex can be enqueued by the fetch-add rule even though a thread
      // in the same wave also peels it (it was in `frontier` already with a
      // stale degree); filter those, then sort for determinism.
      frontier.assign(next.begin(),
                      next.begin() + static_cast<std::ptrdiff_t>(next_tail));
      frontier.erase(std::remove_if(frontier.begin(), frontier.end(),
                                    [&](vid u) {
                                      return removed[static_cast<std::size_t>(
                                                 u)] != 0;
                                    }),
                     frontier.end());
      std::sort(frontier.begin(), frontier.end());
      frontier.erase(std::unique(frontier.begin(), frontier.end()),
                     frontier.end());
    }
    ++k;
  }
  return core;
}

std::int64_t degeneracy(std::span<const std::int64_t> coreness) {
  std::int64_t d = 0;
  for (std::int64_t c : coreness) d = std::max(d, c);
  return d;
}

Subgraph kcore_subgraph(const CsrGraph& g, std::int64_t k) {
  const auto core = core_numbers(g);
  const vid n = g.num_vertices();
  std::vector<char> mask(static_cast<std::size_t>(n), 0);
#pragma omp parallel for schedule(static)
  for (vid v = 0; v < n; ++v) {
    mask[static_cast<std::size_t>(v)] =
        core[static_cast<std::size_t>(v)] >= k ? 1 : 0;
  }
  return induced_subgraph(g, mask);
}

}  // namespace graphct
