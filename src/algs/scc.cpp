#include "algs/scc.hpp"

#include <algorithm>
#include <unordered_map>

#include "algs/connected_components.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace graphct {

std::vector<vid> strongly_connected_components(const CsrGraph& g) {
  GCT_CHECK(g.directed(),
            "strongly_connected_components: graph must be directed");
  const vid n = g.num_vertices();
  std::vector<vid> labels(static_cast<std::size_t>(n), kNoVertex);
  if (n == 0) return labels;
  obs::KernelScope scope("scc");

  // Pass 1: iterative DFS over g recording finish order.
  std::vector<vid> finish_order;
  finish_order.reserve(static_cast<std::size_t>(n));
  {
    std::vector<char> visited(static_cast<std::size_t>(n), 0);
    // Frame: vertex + index of the next neighbor to explore.
    std::vector<std::pair<vid, std::size_t>> stack;
    for (vid root = 0; root < n; ++root) {
      if (visited[static_cast<std::size_t>(root)]) continue;
      visited[static_cast<std::size_t>(root)] = 1;
      stack.emplace_back(root, 0);
      while (!stack.empty()) {
        auto& [v, next] = stack.back();
        const auto nbrs = g.neighbors(v);
        bool descended = false;
        while (next < nbrs.size()) {
          const vid u = nbrs[next++];
          if (!visited[static_cast<std::size_t>(u)]) {
            visited[static_cast<std::size_t>(u)] = 1;
            stack.emplace_back(u, 0);
            descended = true;
            break;
          }
        }
        if (!descended) {
          finish_order.push_back(v);
          stack.pop_back();
        }
      }
    }
  }

  // Pass 2: DFS over the reversed graph in decreasing finish order; each
  // tree is one SCC.
  const CsrGraph rev = reverse(g);
  std::vector<vid> dfs_stack;
  for (auto it = finish_order.rbegin(); it != finish_order.rend(); ++it) {
    const vid root = *it;
    if (labels[static_cast<std::size_t>(root)] != kNoVertex) continue;
    vid min_id = root;
    std::vector<vid> members;
    dfs_stack.push_back(root);
    labels[static_cast<std::size_t>(root)] = root;  // provisional
    while (!dfs_stack.empty()) {
      const vid v = dfs_stack.back();
      dfs_stack.pop_back();
      members.push_back(v);
      min_id = std::min(min_id, v);
      for (vid u : rev.neighbors(v)) {
        if (labels[static_cast<std::size_t>(u)] == kNoVertex) {
          labels[static_cast<std::size_t>(u)] = root;  // provisional
          dfs_stack.push_back(u);
        }
      }
    }
    // Canonicalize to the smallest member id.
    for (vid v : members) {
      labels[static_cast<std::size_t>(v)] = min_id;
    }
  }
  return labels;
}

std::int64_t count_components(std::span<const vid> labels,
                              std::int64_t min_size) {
  std::unordered_map<vid, std::int64_t> counts;
  for (vid l : labels) ++counts[l];
  std::int64_t total = 0;
  for (const auto& [l, size] : counts) {
    if (size >= min_size) ++total;
  }
  return total;
}

Subgraph largest_scc(const CsrGraph& g) {
  const auto labels = strongly_connected_components(g);
  std::unordered_map<vid, std::int64_t> counts;
  for (vid l : labels) ++counts[l];
  vid best = kNoVertex;
  std::int64_t best_size = 0;
  for (const auto& [l, size] : counts) {
    if (size > best_size || (size == best_size && l < best)) {
      best = l;
      best_size = size;
    }
  }
  return extract_by_label(g, labels, best);
}

}  // namespace graphct
