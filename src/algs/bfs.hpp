#pragma once

/// \file bfs.hpp
/// Parallel level-synchronous breadth-first search.
///
/// BFS is the traversal engine under most of GraphCT: connected components,
/// diameter estimation (§IV-A), and the (k-)betweenness forward pass all run
/// level-synchronous searches. The implementation exposes the fine-grained
/// parallelism the paper describes (§II-B), but frontier slots are assigned
/// by prefix-sum compaction instead of a contended fetch-and-add tail:
/// top-down expansions collect discoveries in per-thread queues (or a
/// word-packed bitmap when deterministic order is requested) and one
/// exclusive scan assigns disjoint output ranges; bottom-up sweeps test
/// membership against a bitmap frontier, skip fully-visited vertices 64 at
/// a time, and write owner-exclusive words with no atomics at all. The only
/// remaining per-vertex synchronization is the CAS that claims the distance
/// word.
///
/// Two strategies are provided:
///  * kTopDown — the classic frontier-expansion search (what GraphCT ran on
///    the XMT).
///  * kDirectionOptimizing — switches to bottom-up sweeps when the frontier
///    is a large fraction of the graph (Beamer-style); an ablation in this
///    reproduction, undirected graphs only.

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/transforms.hpp"
#include "storage/graph_view.hpp"

namespace graphct {

/// BFS traversal strategy.
enum class BfsStrategy {
  kTopDown,
  kDirectionOptimizing,
};

/// BFS tuning knobs.
struct BfsOptions {
  BfsStrategy strategy = BfsStrategy::kTopDown;

  /// Stop after this many levels (kNoVertex = unbounded). Implements the
  /// paper's "breadth-first search from a given vertex of a given length"
  /// kernel.
  vid max_depth = kNoVertex;

  /// Direction-optimizing heuristic: go bottom-up when the frontier's edge
  /// count exceeds (unexplored edges)/alpha; return top-down when the
  /// frontier shrinks below n/beta vertices.
  double alpha = 14.0;
  double beta = 24.0;

  /// Emit each BFS level in ascending vertex id so `order` is
  /// schedule-independent. This costs no sort: deterministic levels are
  /// produced by bitmap compaction, which is ordered by construction for any
  /// thread count. Centrality kernels still disable it — their per-vertex
  /// accumulations are order-invariant, and the per-thread discovery queues
  /// skip the bitmap's O(n/64) per-level scan on high-diameter graphs.
  bool deterministic_order = true;

  /// Record shortest-path parents. Centrality kernels disable this — they
  /// recover predecessors from distances — saving one n-sized array per
  /// search. When false, BfsResult::parent is left empty.
  bool compute_parents = true;
};

/// Result of one BFS.
struct BfsResult {
  /// distance[v] = hop count from the source, or kNoVertex if unreached.
  std::vector<vid> distance;

  /// parent[v] = predecessor on one shortest path (source's parent is
  /// itself); kNoVertex if unreached. Which predecessor wins between ties is
  /// schedule-dependent; distances and level structure are deterministic.
  std::vector<vid> parent;

  /// Vertices in discovery order, grouped by level:
  /// order[level_offsets[d] .. level_offsets[d+1]) is level d.
  std::vector<vid> order;

  /// Level boundaries into `order`; size = (#levels + 1).
  std::vector<eid> level_offsets;

  /// Number of vertices reached, including the source.
  [[nodiscard]] vid num_reached() const {
    return static_cast<vid>(order.size());
  }

  /// Eccentricity of the source within its component (deepest level).
  [[nodiscard]] vid max_distance() const {
    return static_cast<vid>(level_offsets.size()) - 2;
  }

  /// Rewrite each level's slice of `order` into ascending vertex id.
  /// Callers whose per-level sweeps are order-invariant (the centrality
  /// kernels — see BfsOptions::deterministic_order) use this to make
  /// their adjacency reads sequential: over a packed GraphStore,
  /// discovery-order iteration touches blocks near-randomly and thrashes
  /// the decode cache, turning each sweep into hundreds of full-graph
  /// decodes.
  void sort_levels();
};

/// Run BFS from `source`. Throws if source is out of range. Takes a
/// GraphView, so it traverses DRAM CSR and packed mmap stores alike;
/// passing a CsrGraph converts implicitly.
BfsResult bfs(const GraphView& g, vid source, const BfsOptions& opts = {});

/// As bfs(), but reuses `result`'s buffers — no allocations when the same
/// BfsResult is passed across many searches of one graph. This is the inner
/// loop of every sampled kernel (diameter estimation runs 256 of these,
/// betweenness one per source).
void bfs_into(const GraphView& g, vid source, const BfsOptions& opts,
              BfsResult& result);

/// Options for the Brandes forward sweep (bc_forward_sweep).
struct BcSweepOptions {
  /// Direction-optimizing sweep: switch to fused bottom-up levels when the
  /// frontier's edge count exceeds (unexplored edges)/alpha, back to
  /// top-down below n/beta frontier vertices. Undirected graphs only (the
  /// bottom-up pull reads out-neighbors as in-neighbors); callers with a
  /// directed graph must pass hybrid = false.
  bool hybrid = true;

  /// Hybrid switch thresholds. The defaults are deliberately more
  /// conservative than plain BFS's 14/24: a bottom-up sigma level cannot
  /// stop at the first discovered parent — every shortest-path predecessor
  /// must be summed — so bottom-up pays full degree per undiscovered vertex
  /// and only wins on the fattest levels.
  double alpha = 28.0;
  double beta = 24.0;
};

/// Brandes forward sweep: BFS levels and shortest-path counts (sigma) in a
/// single direction-optimizing pass. This is the front half of betweenness's
/// accumulate_source, fused so the adjacency is streamed once per level
/// instead of once for discovery and again for the sigma sweep:
///
///  * top-down levels discover via the bitmap engine (CAS on distance, bit
///    order = vertex order), then pull sigma into the newly compacted level
///    — each new vertex sums sigma over its depth-1 neighbors in adjacency
///    order, so no atomics and no schedule dependence;
///  * bottom-up levels fuse discovery and sigma: every undiscovered vertex
///    scans its full neighbor list summing sigma over frontier members; a
///    non-zero sum IS discovery (word-partitioned, owner-exclusive bit and
///    sigma writes, no atomics at all).
///
/// Both directions sum sigma in adjacency order over the same predecessor
/// sets, so sigma — and everything derived from it — is bit-identical for
/// any thread count and any hybrid/top-down switch schedule. Levels are
/// emitted in ascending vertex id by bitmap compaction (no post-sort).
///
/// `sigma` must have room for n entries; only entries of reached vertices
/// are written (each exactly once — no pre-clearing needed). `r.parent` is
/// left empty (Brandes recovers predecessors from distances).
void bc_forward_sweep(const GraphView& g, vid source,
                      const BcSweepOptions& opts, BfsResult& r,
                      std::vector<double>& sigma);

/// Ego network: the subgraph induced by every vertex within `radius` hops
/// of `center` (radius 1 = the classic ego net of center + its neighbors).
/// The analyst drill-down after a ranking: "show me @ajc's neighborhood."
/// orig_ids maps back to the input graph; the center is always included.
Subgraph ego_network(const CsrGraph& g, vid center, vid radius);

}  // namespace graphct
