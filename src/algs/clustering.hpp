#pragma once

/// \file clustering.hpp
/// Per-vertex clustering coefficients (a GraphCT top-level kernel, §IV-A)
/// via parallel triangle counting on sorted adjacency lists.

#include <vector>

#include "graph/csr_graph.hpp"

namespace graphct {

/// Triangle/clustering results.
struct ClusteringResult {
  /// triangles[v] = number of triangles through v.
  std::vector<std::int64_t> triangles;

  /// coefficient[v] = 2*triangles[v] / (deg(v)*(deg(v)-1)), self-loops and
  /// multi-edges excluded; 0 when deg(v) < 2.
  std::vector<double> coefficient;

  /// Total distinct triangles in the graph.
  std::int64_t total_triangles = 0;

  /// Global transitivity: 3 * triangles / wedges (0 if no wedges).
  double global_clustering = 0.0;

  /// Mean of the per-vertex coefficients over vertices with deg >= 2.
  double mean_local_clustering = 0.0;
};

/// Count triangles and clustering coefficients. Requires an undirected graph
/// with sorted adjacency. Self-loops are ignored.
ClusteringResult clustering_coefficients(const CsrGraph& g);

}  // namespace graphct
