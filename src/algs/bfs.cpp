#include "algs/bfs.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace graphct {

namespace {

// One top-down expansion of order[lo,hi) writing newly discovered vertices
// at order[tail...]; returns the new tail.
eid expand_top_down(const CsrGraph& g, std::vector<vid>& distance,
                    std::vector<vid>& parent, std::vector<vid>& order, eid lo,
                    eid hi, eid tail, vid depth, bool compute_parents) {
  std::int64_t t = tail;
#pragma omp parallel for schedule(dynamic, 64)
  for (eid i = lo; i < hi; ++i) {
    const vid u = order[static_cast<std::size_t>(i)];
    for (vid v : g.neighbors(u)) {
      if (distance[static_cast<std::size_t>(v)] != kNoVertex) continue;
      if (compare_and_swap(distance[static_cast<std::size_t>(v)], kNoVertex,
                           depth)) {
        if (compute_parents) parent[static_cast<std::size_t>(v)] = u;
        const eid slot = fetch_add(t, 1);
        order[static_cast<std::size_t>(slot)] = v;
      }
    }
  }
  return t;
}

// One bottom-up sweep: every undiscovered vertex scans its neighbors for a
// member of the current frontier (marked in `in_frontier`). Returns new tail.
eid expand_bottom_up(const CsrGraph& g, std::vector<vid>& distance,
                     std::vector<vid>& parent, std::vector<vid>& order,
                     const std::vector<char>& in_frontier, eid tail, vid depth,
                     bool compute_parents) {
  const vid n = g.num_vertices();
  std::int64_t t = tail;
#pragma omp parallel for schedule(dynamic, 256)
  for (vid v = 0; v < n; ++v) {
    if (distance[static_cast<std::size_t>(v)] != kNoVertex) continue;
    for (vid u : g.neighbors(v)) {
      if (in_frontier[static_cast<std::size_t>(u)]) {
        distance[static_cast<std::size_t>(v)] = depth;
        if (compute_parents) parent[static_cast<std::size_t>(v)] = u;
        const eid slot = fetch_add(t, 1);
        order[static_cast<std::size_t>(slot)] = v;
        break;
      }
    }
  }
  return t;
}

}  // namespace

BfsResult bfs(const CsrGraph& g, vid source, const BfsOptions& opts) {
  // Kernel root lives on the wrapper, not bfs_into(): kernels that run one
  // search per source (bc, closeness, diameter) call bfs_into() directly and
  // attribute it to their own phases instead of logging thousands of runs.
  obs::KernelScope scope("bfs");
  BfsResult r;
  bfs_into(g, source, opts, r);
  return r;
}

void bfs_into(const CsrGraph& g, vid source, const BfsOptions& opts,
              BfsResult& r) {
  const vid n = g.num_vertices();
  GCT_CHECK(source >= 0 && source < n, "bfs: source out of range");
  if (opts.strategy == BfsStrategy::kDirectionOptimizing) {
    GCT_CHECK(!g.directed(),
              "bfs: direction-optimizing strategy requires an undirected "
              "graph (bottom-up sweeps use out-neighbors as in-neighbors)");
  }

  {
    GCT_SPAN("bfs.init");
    r.distance.assign(static_cast<std::size_t>(n), kNoVertex);
    if (opts.compute_parents) {
      r.parent.assign(static_cast<std::size_t>(n), kNoVertex);
    } else {
      r.parent.clear();
    }
    r.order.resize(static_cast<std::size_t>(n));
    r.level_offsets.assign({0, 1});
  }

  r.distance[static_cast<std::size_t>(source)] = 0;
  if (opts.compute_parents) {
    r.parent[static_cast<std::size_t>(source)] = source;
  }
  r.order[0] = source;

  const eid total_entries = g.num_adjacency_entries();
  std::vector<char> in_frontier;  // allocated lazily for bottom-up sweeps
  bool bottom_up = false;

  eid lo = 0, hi = 1;
  vid depth = 0;
  eid frontier_edges = g.degree(source);
  while (hi > lo) {
    if (opts.max_depth != kNoVertex && depth >= opts.max_depth) break;
    ++depth;

    if (opts.strategy == BfsStrategy::kDirectionOptimizing) {
      const eid explored = hi;
      const eid remaining_edges = total_entries - frontier_edges;
      if (!bottom_up &&
          static_cast<double>(frontier_edges) >
              static_cast<double>(remaining_edges) / opts.alpha) {
        bottom_up = true;
      } else if (bottom_up && static_cast<double>(hi - lo) <
                                  static_cast<double>(n) / opts.beta) {
        bottom_up = false;
      }
      (void)explored;
    }

    eid tail;
    if (bottom_up) {
      GCT_SPAN("bfs.bottom_up");
      if (in_frontier.empty()) {
        in_frontier.assign(static_cast<std::size_t>(n), 0);
      } else {
        std::fill(in_frontier.begin(), in_frontier.end(), 0);
      }
#pragma omp parallel for schedule(static)
      for (eid i = lo; i < hi; ++i) {
        in_frontier[static_cast<std::size_t>(
            r.order[static_cast<std::size_t>(i)])] = 1;
      }
      tail = expand_bottom_up(g, r.distance, r.parent, r.order, in_frontier,
                              hi, depth, opts.compute_parents);
    } else {
      GCT_SPAN("bfs.top_down");
      tail = expand_top_down(g, r.distance, r.parent, r.order, lo, hi, hi,
                             depth, opts.compute_parents);
    }

    lo = hi;
    hi = tail;
    if (hi > lo) r.level_offsets.push_back(hi);

    if (opts.strategy == BfsStrategy::kDirectionOptimizing) {
      std::int64_t fe = 0;
#pragma omp parallel for reduction(+ : fe) schedule(static)
      for (eid i = lo; i < hi; ++i) {
        fe += g.degree(r.order[static_cast<std::size_t>(i)]);
      }
      frontier_edges = fe;
    }
  }

  r.order.resize(static_cast<std::size_t>(hi));
  // Sort each level by vertex id so `order` is deterministic regardless of
  // the OpenMP schedule; kernels that sweep levels rely on reproducibility.
  if (opts.deterministic_order) {
    GCT_SPAN("bfs.sort_levels");
    for (std::size_t d = 0; d + 1 < r.level_offsets.size(); ++d) {
      std::sort(
          r.order.begin() + static_cast<std::ptrdiff_t>(r.level_offsets[d]),
          r.order.begin() +
              static_cast<std::ptrdiff_t>(r.level_offsets[d + 1]));
    }
  }

  if (obs::profile_active()) {
    // Graph500-style work count: edges traversed = Σ deg(v) over reached
    // vertices. Only computed while profiling — it is an O(reached) sweep.
    std::int64_t traversed = 0;
#pragma omp parallel for reduction(+ : traversed) schedule(static)
    for (eid i = 0; i < hi; ++i) {
      traversed += g.degree(r.order[static_cast<std::size_t>(i)]);
    }
    obs::add_work(static_cast<std::int64_t>(hi), traversed);
  }
}

Subgraph ego_network(const CsrGraph& g, vid center, vid radius) {
  GCT_CHECK(radius >= 0, "ego_network: radius must be >= 0");
  BfsOptions opts;
  opts.max_depth = radius;
  opts.compute_parents = false;
  const BfsResult r = bfs(g, center, opts);
  std::vector<char> mask(static_cast<std::size_t>(g.num_vertices()), 0);
  for (vid v : r.order) mask[static_cast<std::size_t>(v)] = 1;
  return induced_subgraph(g, mask);
}

}  // namespace graphct
