#include "algs/bfs.hpp"

#include <omp.h>

#include <algorithm>
#include <bit>

#include "algs/bc_accum.hpp"
#include "obs/trace.hpp"
#include "util/bitmap.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/work_queue.hpp"

namespace graphct {

namespace {

/// Per-search scratch, thread_local so the sampled kernels (bc, closeness,
/// diameter — thousands of bfs_into() calls per run) never reallocate
/// frontier state. Bitmap storage grows monotonically; ensure() only touches
/// sizes.
struct BfsScratch {
  Bitmap frontier;  // membership of the current level (bottom-up tests)
  Bitmap next;      // vertices discovered this level
  Bitmap visited;   // distance != kNoVertex; maintained across bottom-up runs
  std::vector<std::int64_t> block_counts;   // bitmap compaction scratch
  std::vector<std::int64_t> queue_offsets;  // per-thread queue prefix sums
  WorkQueue queue;                          // work-stealing level scheduler

  void ensure_bitmaps(vid n) {
    frontier.resize(n);
    next.resize(n);
    visited.resize(n);
  }

  void ensure_offsets(int maxt) {
    if (static_cast<int>(queue_offsets.size()) < maxt + 1) {
      queue_offsets.resize(static_cast<std::size_t>(maxt) + 1);
    }
  }
};

BfsScratch& scratch() {
  static thread_local BfsScratch s;
  return s;
}

// Non-deterministic top-down expansion of order[lo,hi): each thread collects
// its discoveries in a private queue, then one exclusive prefix sum over the
// per-thread counts assigns disjoint output ranges — no per-vertex fetch_add
// on a shared tail. One parallel region end to end, so thread ids are stable
// and each thread copies its own queue. Returns the new tail.
eid expand_top_down_queued(const GraphView& g, std::vector<vid>& distance,
                           std::vector<vid>& parent, std::vector<vid>& order,
                           eid lo, eid hi, vid depth, bool compute_parents,
                           std::vector<std::int64_t>& offsets) {
  std::int64_t total = 0;
#pragma omp parallel
  {
    const int t = omp_get_thread_num();
    const int p = omp_get_num_threads();
    static thread_local std::vector<vid> q;  // persists across searches
    q.clear();
#pragma omp for schedule(dynamic, 64) nowait
    for (eid i = lo; i < hi; ++i) {
      const vid u = order[static_cast<std::size_t>(i)];
      for (vid v : g.neighbors(u)) {
        if (distance[static_cast<std::size_t>(v)] != kNoVertex) continue;
        if (compare_and_swap(distance[static_cast<std::size_t>(v)], kNoVertex,
                             depth)) {
          if (compute_parents) parent[static_cast<std::size_t>(v)] = u;
          q.push_back(v);
        }
      }
    }
    offsets[static_cast<std::size_t>(t)] = static_cast<std::int64_t>(q.size());
#pragma omp barrier
#pragma omp single
    {
      std::int64_t run = 0;
      for (int b = 0; b < p; ++b) {
        const std::int64_t c = offsets[static_cast<std::size_t>(b)];
        offsets[static_cast<std::size_t>(b)] = run;
        run += c;
      }
      total = run;
    }
    // Implicit barrier after `single`: offsets are final for every thread.
    std::copy(q.begin(), q.end(),
              order.begin() + static_cast<std::ptrdiff_t>(
                                  hi + offsets[static_cast<std::size_t>(t)]));
  }
  return hi + total;
}

// Deterministic top-down expansion: discoveries are marked in the `next`
// bitmap instead of queued, and the caller compacts the bitmap into `order`.
// Bit order is vertex order, so each level comes out ascending by
// construction — no post-sort, and the result is identical for any thread
// count.
void expand_top_down_bitmap(const GraphView& g, std::vector<vid>& distance,
                            std::vector<vid>& parent, const std::vector<vid>& order,
                            eid lo, eid hi, vid depth, bool compute_parents,
                            Bitmap& next) {
#pragma omp parallel for schedule(dynamic, 64)
  for (eid i = lo; i < hi; ++i) {
    const vid u = order[static_cast<std::size_t>(i)];
    for (vid v : g.neighbors(u)) {
      if (distance[static_cast<std::size_t>(v)] != kNoVertex) continue;
      if (compare_and_swap(distance[static_cast<std::size_t>(v)], kNoVertex,
                           depth)) {
        if (compute_parents) parent[static_cast<std::size_t>(v)] = u;
        next.set_atomic(v);
      }
    }
  }
}

// Rebuild the visited bitmap from distances. Paid once per top-down →
// bottom-up switch; consecutive bottom-up levels keep it incrementally.
void rebuild_visited(Bitmap& visited, const std::vector<vid>& distance) {
  const auto n = static_cast<std::int64_t>(distance.size());
  const std::int64_t nw = visited.num_words();
#pragma omp parallel for schedule(static)
  for (std::int64_t w = 0; w < nw; ++w) {
    const std::int64_t base = w * Bitmap::kBitsPerWord;
    const std::int64_t end = std::min(base + Bitmap::kBitsPerWord, n);
    std::uint64_t bits = 0;
    for (std::int64_t i = base; i < end; ++i) {
      if (distance[static_cast<std::size_t>(i)] != kNoVertex) {
        bits |= std::uint64_t{1} << (i - base);
      }
    }
    visited.store_word(w, bits);
  }
}

// One bottom-up sweep. Work is partitioned word-by-word, so every bit write
// (visited and next) is owner-exclusive and needs no atomics, and a word
// whose vertices are all visited is skipped with one load. Each undiscovered
// vertex scans its neighbors for a frontier member (bitmap test) and stops at
// the first hit.
void expand_bottom_up(const GraphView& g, std::vector<vid>& distance,
                      std::vector<vid>& parent, vid depth,
                      bool compute_parents, const Bitmap& frontier,
                      Bitmap& visited, Bitmap& next) {
  const std::int64_t nw = visited.num_words();
#pragma omp parallel for schedule(dynamic, 16)
  for (std::int64_t w = 0; w < nw; ++w) {
    std::uint64_t todo = ~visited.word(w) & visited.live_mask(w);
    while (todo != 0) {
      const int bit = std::countr_zero(todo);
      todo &= todo - 1;
      const vid v = w * Bitmap::kBitsPerWord + bit;
      for (vid u : g.neighbors(v)) {
        if (frontier.test(u)) {
          distance[static_cast<std::size_t>(v)] = depth;
          if (compute_parents) parent[static_cast<std::size_t>(v)] = u;
          visited.set_in_word(w, bit);
          next.set_in_word(w, bit);
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Brandes forward-sweep steps (bc_forward_sweep). Level ranges are scheduled
// through the work-stealing queue instead of per-level `omp parallel for`
// barriers; tiny levels run inline (see stealing_for).

// Vertices per work chunk, and the level size below which a level runs
// serially inside the calling thread (no region fork, no atomics).
constexpr std::int64_t kLevelChunk = 64;
constexpr std::int64_t kLevelSerialBelow = 512;
// Bottom-up sweeps are scheduled in words (64 vertices each).
constexpr std::int64_t kWordChunk = 16;
constexpr std::int64_t kWordSerialBelow = 256;

// Top-down discovery for the sigma sweep. Parallel chunks claim distances by
// CAS and mark `next` with atomic ORs; a single thread (or a tiny level)
// takes the plain-write path — same discoveries, no lock-prefixed
// instructions on the t=1 hot path.
void expand_top_down_sigma(const GraphView& g, std::vector<vid>& distance,
                           const std::vector<vid>& order, eid lo, eid hi,
                           vid depth, Bitmap& next, WorkQueue& wq,
                           int nthreads) {
  if (nthreads <= 1 || omp_in_parallel() || hi - lo < kLevelSerialBelow) {
    for (eid i = lo; i < hi; ++i) {
      const vid u = order[static_cast<std::size_t>(i)];
      for (vid v : g.neighbors(u)) {
        if (distance[static_cast<std::size_t>(v)] == kNoVertex) {
          distance[static_cast<std::size_t>(v)] = depth;
          next.set(v);
        }
      }
    }
    return;
  }
  stealing_for(wq, lo, hi, kLevelChunk, kLevelSerialBelow, nthreads,
               [&](std::int64_t b, std::int64_t e) {
                 for (std::int64_t i = b; i < e; ++i) {
                   const vid u = order[static_cast<std::size_t>(i)];
                   for (vid v : g.neighbors(u)) {
                     if (distance[static_cast<std::size_t>(v)] != kNoVertex) {
                       continue;
                     }
                     if (compare_and_swap(distance[static_cast<std::size_t>(v)],
                                          kNoVertex, depth)) {
                       next.set_atomic(v);
                     }
                   }
                 }
               });
}

// Pull shortest-path counts into the freshly discovered level order[lo,hi):
// each new vertex sums sigma over its depth-1 neighbors in adjacency order.
// Writes are per-vertex exclusive and reads are one level back, so there are
// no atomics and the sums — being fixed-order — are bit-identical for any
// thread count.
void pull_sigma_level(const GraphView& g, const std::vector<vid>& distance,
                      const std::vector<vid>& order, eid lo, eid hi, vid depth,
                      std::vector<double>& sigma, WorkQueue& wq,
                      int nthreads) {
  const vid prev = depth - 1;
  stealing_for(wq, lo, hi, kLevelChunk, kLevelSerialBelow, nthreads,
               [&](std::int64_t b, std::int64_t e) {
                 for (std::int64_t i = b; i < e; ++i) {
                   const vid v = order[static_cast<std::size_t>(i)];
                   // Multiply-by-comparison instead of a guarded load: the
                   // depth test flips unpredictably along the adjacency
                   // list, and sigma[u] is always a finite double even for
                   // undiscovered u (stale from a prior source), so the
                   // unconditional load times an exact 0.0/1.0 is safe.
                   // bc_pull_sigma_row (algs/bc_accum.hpp) is the canonical
                   // 4-lane row: lane assignment depends only on the
                   // neighbor index, so the sum is bit-identical to the
                   // bottom-up sweep's and to the dist worker's for the
                   // same vertex (engine- and dist-parity tests pin this).
                   const auto nbrs = g.neighbors(v);
                   const double* sg = sigma.data();
                   sigma[static_cast<std::size_t>(v)] = bc_pull_sigma_row(
                       nbrs.data(), static_cast<std::int64_t>(nbrs.size()), sg,
                       [&distance, prev](vid u) {
                         return distance[static_cast<std::size_t>(u)] == prev;
                       });
                 }
               });
}

// Fused bottom-up level: discovery and sigma in one adjacency scan. Each
// undiscovered vertex sums sigma over frontier neighbors; unlike the plain
// BFS sweep it cannot break at the first hit — every shortest-path
// predecessor must be counted — and the non-zero sum IS the discovery test
// (path counts are >= 1). Word-partitioned, so the bit writes and the sigma
// write are owner-exclusive: no atomics at all. The frontier test and the
// pull both read sigma of frontier members only, which no thread writes this
// level. Summation order is adjacency order, identical to the top-down pull.
void expand_bottom_up_sigma(const GraphView& g, std::vector<vid>& distance,
                            vid depth, const Bitmap& frontier, Bitmap& visited,
                            Bitmap& next, std::vector<double>& sigma,
                            WorkQueue& wq, int nthreads) {
  const std::int64_t nw = visited.num_words();
  stealing_for(
      wq, 0, nw, kWordChunk, kWordSerialBelow, nthreads,
      [&](std::int64_t wb, std::int64_t we) {
        for (std::int64_t w = wb; w < we; ++w) {
          std::uint64_t todo = ~visited.word(w) & visited.live_mask(w);
          while (todo != 0) {
            const int bit = std::countr_zero(todo);
            todo &= todo - 1;
            const vid v = w * Bitmap::kBitsPerWord + bit;
            // Same multiply-select/4-lane row as pull_sigma_level
            // (bc_pull_sigma_row, algs/bc_accum.hpp) — frontier membership
            // at this level IS distance == depth-1, so sharing the lane
            // structure keeps the sums bit-identical between the two
            // sweeps (sigma[u] of a non-frontier vertex is stale but
            // finite, so the unconditional load is safe). The frontier
            // bitmap is small enough to live in L1; only sigma is worth
            // prefetching.
            const auto nbrs = g.neighbors(v);
            const double acc = bc_pull_sigma_row(
                nbrs.data(), static_cast<std::int64_t>(nbrs.size()),
                sigma.data(),
                [&frontier](vid u) { return frontier.test(u); });
            if (acc != 0.0) {
              distance[static_cast<std::size_t>(v)] = depth;
              sigma[static_cast<std::size_t>(v)] = acc;
              visited.set_in_word(w, bit);
              next.set_in_word(w, bit);
            }
          }
        }
      });
}

}  // namespace

void BfsResult::sort_levels() {
  const auto num_levels =
      static_cast<std::int64_t>(level_offsets.size()) - 1;
  for (std::int64_t d = 0; d < num_levels; ++d) {
    std::sort(
        order.begin() + static_cast<std::ptrdiff_t>(
                            level_offsets[static_cast<std::size_t>(d)]),
        order.begin() + static_cast<std::ptrdiff_t>(
                            level_offsets[static_cast<std::size_t>(d) + 1]));
  }
}

BfsResult bfs(const GraphView& g, vid source, const BfsOptions& opts) {
  // Kernel root lives on the wrapper, not bfs_into(): kernels that run one
  // search per source (bc, closeness, diameter) call bfs_into() directly and
  // attribute it to their own phases instead of logging thousands of runs.
  obs::KernelScope scope("bfs");
  BfsResult r;
  bfs_into(g, source, opts, r);
  return r;
}

void bfs_into(const GraphView& g, vid source, const BfsOptions& opts,
              BfsResult& r) {
  const vid n = g.num_vertices();
  GCT_CHECK(source >= 0 && source < n, "bfs: source out of range");
  if (opts.strategy == BfsStrategy::kDirectionOptimizing) {
    GCT_CHECK(!g.directed(),
              "bfs: direction-optimizing strategy requires an undirected "
              "graph (bottom-up sweeps use out-neighbors as in-neighbors)");
  }

  {
    GCT_SPAN("bfs.init");
    r.distance.assign(static_cast<std::size_t>(n), kNoVertex);
    if (opts.compute_parents) {
      r.parent.assign(static_cast<std::size_t>(n), kNoVertex);
    } else {
      r.parent.clear();
    }
    r.order.resize(static_cast<std::size_t>(n));
    r.level_offsets.assign({0, 1});
  }

  r.distance[static_cast<std::size_t>(source)] = 0;
  if (opts.compute_parents) {
    r.parent[static_cast<std::size_t>(source)] = source;
  }
  r.order[0] = source;

  const bool dir_opt = opts.strategy == BfsStrategy::kDirectionOptimizing;
  BfsScratch& sc = scratch();
  if (dir_opt || opts.deterministic_order) sc.ensure_bitmaps(n);
  if (!opts.deterministic_order) sc.ensure_offsets(num_threads());

  const eid total_entries = g.num_adjacency_entries();
  // Per-level work counters keep the Graph500 convention (edges traversed
  // from level d = Σ deg(v) over level d) while attributing the work to the
  // bfs.top_down / bfs.bottom_up span that actually expanded the level, so
  // kernel_profile phase rows stop reporting 0/0. Summed over all expanded
  // levels this equals the old end-of-search bulk count for an unbounded
  // search; max_depth-bounded runs now count only expanded levels.
  const bool profiling = obs::profile_active();
  bool bottom_up = false;
  bool frontier_bitmap_valid = false;  // sc.frontier holds level [lo,hi)
  bool visited_valid = false;          // sc.visited matches r.distance

  eid lo = 0, hi = 1;
  vid depth = 0;
  eid frontier_edges = g.degree(source);
  while (hi > lo) {
    if (opts.max_depth != kNoVertex && depth >= opts.max_depth) break;
    ++depth;

    if (dir_opt) {
      const eid remaining_edges = total_entries - frontier_edges;
      if (!bottom_up &&
          static_cast<double>(frontier_edges) >
              static_cast<double>(remaining_edges) / opts.alpha) {
        bottom_up = true;
      } else if (bottom_up && static_cast<double>(hi - lo) <
                                  static_cast<double>(n) / opts.beta) {
        bottom_up = false;
      }
    }

    eid tail;
    if (bottom_up) {
      GCT_SPAN("bfs.bottom_up");
      if (profiling) obs::add_work(hi - lo, frontier_edges);
      if (!visited_valid) {
        rebuild_visited(sc.visited, r.distance);
        visited_valid = true;
      }
      if (!frontier_bitmap_valid) {
        sc.frontier.assign_bits(r.order.data() + static_cast<std::ptrdiff_t>(lo),
                                hi - lo);
      }
      sc.next.clear();
      expand_bottom_up(g, r.distance, r.parent, depth, opts.compute_parents,
                       sc.frontier, sc.visited, sc.next);
      {
        GCT_SPAN("bfs.compact");
        tail = hi + compact_set_bits(
                        sc.next,
                        r.order.data() + static_cast<std::ptrdiff_t>(hi),
                        sc.block_counts);
      }
      // This level's bits are the next level's frontier; swap instead of
      // rebuilding from `order`.
      std::swap(sc.frontier, sc.next);
      frontier_bitmap_valid = true;
    } else {
      GCT_SPAN("bfs.top_down");
      if (profiling) obs::add_work(hi - lo, frontier_edges);
      if (opts.deterministic_order) {
        sc.next.clear();
        expand_top_down_bitmap(g, r.distance, r.parent, r.order, lo, hi, depth,
                               opts.compute_parents, sc.next);
        {
          GCT_SPAN("bfs.compact");
          tail = hi + compact_set_bits(
                          sc.next,
                          r.order.data() + static_cast<std::ptrdiff_t>(hi),
                          sc.block_counts);
        }
        if (dir_opt) {
          std::swap(sc.frontier, sc.next);
          frontier_bitmap_valid = true;
        } else {
          frontier_bitmap_valid = false;
        }
      } else {
        tail = expand_top_down_queued(g, r.distance, r.parent, r.order, lo, hi,
                                      depth, opts.compute_parents,
                                      sc.queue_offsets);
        frontier_bitmap_valid = false;
      }
      visited_valid = false;
    }

    lo = hi;
    hi = tail;
    if (hi > lo) r.level_offsets.push_back(hi);

    // Refresh the frontier edge count only when the heuristic or the work
    // counters will read it again — the final (empty) level skips the sweep.
    if ((dir_opt || profiling) && hi > lo) {
      std::int64_t fe = 0;
#pragma omp parallel for reduction(+ : fe) schedule(static)
      for (eid i = lo; i < hi; ++i) {
        fe += g.degree(r.order[static_cast<std::size_t>(i)]);
      }
      frontier_edges = fe;
    }
  }

  r.order.resize(static_cast<std::size_t>(hi));
  // deterministic_order needs no post-sort: every level is emitted by bitmap
  // compaction, which yields ascending vertex ids for any thread count.
}

void bc_forward_sweep(const GraphView& g, vid source,
                      const BcSweepOptions& opts, BfsResult& r,
                      std::vector<double>& sigma) {
  const vid n = g.num_vertices();
  GCT_CHECK(source >= 0 && source < n, "bc_forward_sweep: source out of range");
  GCT_CHECK(!(opts.hybrid && g.directed()),
            "bc_forward_sweep: hybrid sweep requires an undirected graph "
            "(bottom-up pulls use out-neighbors as in-neighbors)");
  GCT_CHECK(static_cast<vid>(sigma.size()) >= n,
            "bc_forward_sweep: sigma buffer too small");

  r.distance.assign(static_cast<std::size_t>(n), kNoVertex);
  r.parent.clear();
  r.order.resize(static_cast<std::size_t>(n));
  r.level_offsets.assign({0, 1});
  r.distance[static_cast<std::size_t>(source)] = 0;
  r.order[0] = source;
  sigma[static_cast<std::size_t>(source)] = 1.0;

  BfsScratch& sc = scratch();
  sc.ensure_bitmaps(n);
  const int nthreads = num_threads();

  const eid total_entries = g.num_adjacency_entries();
  const bool profiling = obs::profile_active();
  bool bottom_up = false;
  bool frontier_bitmap_valid = false;  // sc.frontier holds level [lo,hi)
  bool visited_valid = false;          // sc.visited matches r.distance

  eid lo = 0, hi = 1;
  vid depth = 0;
  eid frontier_edges = g.degree(source);
  while (hi > lo) {
    ++depth;

    if (opts.hybrid) {
      const eid remaining_edges = total_entries - frontier_edges;
      if (!bottom_up &&
          static_cast<double>(frontier_edges) >
              static_cast<double>(remaining_edges) / opts.alpha) {
        bottom_up = true;
      } else if (bottom_up && static_cast<double>(hi - lo) <
                                  static_cast<double>(n) / opts.beta) {
        bottom_up = false;
      }
    }

    eid tail;
    if (bottom_up) {
      GCT_SPAN("bc.forward_bu");
      if (profiling) obs::add_work(hi - lo, frontier_edges);
      if (!visited_valid) {
        rebuild_visited(sc.visited, r.distance);
        visited_valid = true;
      }
      if (!frontier_bitmap_valid) {
        sc.frontier.assign_bits(r.order.data() + static_cast<std::ptrdiff_t>(lo),
                                hi - lo);
      }
      sc.next.clear();
      expand_bottom_up_sigma(g, r.distance, depth, sc.frontier, sc.visited,
                             sc.next, sigma, sc.queue, nthreads);
      tail = hi + compact_set_bits(
                      sc.next, r.order.data() + static_cast<std::ptrdiff_t>(hi),
                      sc.block_counts);
      std::swap(sc.frontier, sc.next);
      frontier_bitmap_valid = true;
    } else {
      GCT_SPAN("bc.forward_td");
      if (profiling) obs::add_work(hi - lo, frontier_edges);
      sc.next.clear();
      expand_top_down_sigma(g, r.distance, r.order, lo, hi, depth, sc.next,
                            sc.queue, nthreads);
      tail = hi + compact_set_bits(
                      sc.next, r.order.data() + static_cast<std::ptrdiff_t>(hi),
                      sc.block_counts);
      pull_sigma_level(g, r.distance, r.order, hi, tail, depth, sigma,
                       sc.queue, nthreads);
      if (opts.hybrid) {
        std::swap(sc.frontier, sc.next);
        frontier_bitmap_valid = true;
      }
      visited_valid = false;
    }

    lo = hi;
    hi = tail;
    if (hi > lo) r.level_offsets.push_back(hi);

    if ((opts.hybrid || profiling) && hi > lo) {
      std::int64_t fe = 0;
#pragma omp parallel for reduction(+ : fe) schedule(static)
      for (eid i = lo; i < hi; ++i) {
        fe += g.degree(r.order[static_cast<std::size_t>(i)]);
      }
      frontier_edges = fe;
    }
  }

  r.order.resize(static_cast<std::size_t>(hi));
}

Subgraph ego_network(const CsrGraph& g, vid center, vid radius) {
  GCT_CHECK(radius >= 0, "ego_network: radius must be >= 0");
  BfsOptions opts;
  opts.max_depth = radius;
  opts.compute_parents = false;
  const BfsResult r = bfs(g, center, opts);
  std::vector<char> mask(static_cast<std::size_t>(g.num_vertices()), 0);
  for (vid v : r.order) mask[static_cast<std::size_t>(v)] = 1;
  return induced_subgraph(g, mask);
}

}  // namespace graphct
