#include "algs/ranking.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace graphct {

std::vector<vid> top_k(std::span<const double> scores, std::int64_t k) {
  const std::int64_t n = static_cast<std::int64_t>(scores.size());
  k = std::clamp<std::int64_t>(k, 0, n);
  std::vector<vid> idx(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) idx[static_cast<std::size_t>(i)] = i;
  auto better = [&](vid a, vid b) {
    const double sa = scores[static_cast<std::size_t>(a)];
    const double sb = scores[static_cast<std::size_t>(b)];
    if (sa != sb) return sa > sb;
    return a < b;  // deterministic tie-break
  };
  if (k < n) {
    std::nth_element(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                     idx.end(), better);
    idx.resize(static_cast<std::size_t>(k));
  }
  std::sort(idx.begin(), idx.end(), better);
  return idx;
}

std::vector<vid> top_percent(std::span<const double> scores, double percent) {
  GCT_CHECK(percent > 0.0 && percent <= 100.0,
            "top_percent: percent must be in (0, 100]");
  const auto n = static_cast<double>(scores.size());
  const std::int64_t k =
      static_cast<std::int64_t>(std::ceil(n * percent / 100.0));
  return top_k(scores, std::max<std::int64_t>(k, 1));
}

std::int64_t set_intersection_size(std::span<const vid> a,
                                   std::span<const vid> b) {
  std::unordered_set<vid> sa(a.begin(), a.end());
  std::int64_t common = 0;
  std::unordered_set<vid> seen;
  for (vid v : b) {
    if (sa.count(v) && seen.insert(v).second) ++common;
  }
  return common;
}

double normalized_set_hamming(std::span<const vid> a, std::span<const vid> b) {
  if (a.empty() && b.empty()) return 0.0;
  const std::int64_t common = set_intersection_size(a, b);
  const std::int64_t sym_diff = static_cast<std::int64_t>(a.size()) +
                                static_cast<std::int64_t>(b.size()) -
                                2 * common;
  return static_cast<double>(sym_diff) /
         static_cast<double>(a.size() + b.size());
}

double top_k_overlap(std::span<const double> exact_scores,
                     std::span<const double> approx_scores, double percent) {
  GCT_CHECK(exact_scores.size() == approx_scores.size(),
            "top_k_overlap: score vectors must have equal length");
  const auto a = top_percent(exact_scores, percent);
  const auto b = top_percent(approx_scores, percent);
  if (a.empty()) return 1.0;
  return static_cast<double>(set_intersection_size(a, b)) /
         static_cast<double>(a.size());
}

namespace {
// Average ranks (1-based) with ties sharing the mean rank.
std::vector<double> average_ranks(std::span<const double> x) {
  const std::size_t n = x.size();
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return x[a] < x[b]; });
  std::vector<double> rank(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && x[idx[j + 1]] == x[idx[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 +
                       1.0;
    for (std::size_t t = i; t <= j; ++t) rank[idx[t]] = avg;
    i = j + 1;
  }
  return rank;
}
}  // namespace

double spearman_correlation(std::span<const double> a,
                            std::span<const double> b) {
  GCT_CHECK(a.size() == b.size(), "spearman: length mismatch");
  if (a.size() < 2) return 0.0;
  const auto ra = average_ranks(a);
  const auto rb = average_ranks(b);
  return pearson(std::span<const double>(ra.data(), ra.size()),
                 std::span<const double>(rb.data(), rb.size()));
}

}  // namespace graphct
