#include "algs/clustering.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace graphct {

ClusteringResult clustering_coefficients(const CsrGraph& g) {
  GCT_CHECK(!g.directed(), "clustering_coefficients: graph must be undirected");
  GCT_CHECK(g.sorted_adjacency(),
            "clustering_coefficients: adjacency must be sorted");
  const vid n = g.num_vertices();
  obs::KernelScope scope("clustering");

  ClusteringResult r;
  r.triangles.assign(static_cast<std::size_t>(n), 0);
  r.coefficient.assign(static_cast<std::size_t>(n), 0.0);

  {
    GCT_SPAN("clustering.triangles");
    // Enumerate each triangle once as u < v < w: for every edge (u,v) with
    // u < v, merge-intersect N(u) and N(v) keeping only common neighbors
    // w > v. Credit all three corners with atomic adds.
#pragma omp parallel for schedule(dynamic, 64)
    for (vid u = 0; u < n; ++u) {
      const auto nu = g.neighbors(u);
      for (vid v : nu) {
        if (v <= u) continue;
        const auto nv = g.neighbors(v);
        // Advance both sorted lists; only w > v can close a canonical
        // triangle.
        auto iu = std::lower_bound(nu.begin(), nu.end(), v + 1);
        auto iv = std::lower_bound(nv.begin(), nv.end(), v + 1);
        while (iu != nu.end() && iv != nv.end()) {
          if (*iu < *iv) {
            ++iu;
          } else if (*iv < *iu) {
            ++iv;
          } else {
            const vid w = *iu;
            fetch_add(r.triangles[static_cast<std::size_t>(u)], 1);
            fetch_add(r.triangles[static_cast<std::size_t>(v)], 1);
            fetch_add(r.triangles[static_cast<std::size_t>(w)], 1);
            ++iu;
            ++iv;
          }
        }
      }
    }
    // Intersection scans touch every adjacency entry at least once.
    obs::add_work(n, g.num_adjacency_entries());
  }

  GCT_SPAN("clustering.stats");
  std::int64_t total = 0;
  std::int64_t wedges = 0;
  double coeff_sum = 0.0;
  std::int64_t coeff_count = 0;
#pragma omp parallel for reduction(+ : total, wedges, coeff_sum, coeff_count) \
    schedule(static)
  for (vid v = 0; v < n; ++v) {
    // Effective degree excludes a self-loop if present.
    vid d = g.degree(v);
    if (g.has_edge(v, v)) --d;
    const std::int64_t t = r.triangles[static_cast<std::size_t>(v)];
    total += t;
    const std::int64_t w = static_cast<std::int64_t>(d) * (d - 1) / 2;
    wedges += w;
    if (d >= 2) {
      const double c = static_cast<double>(t) / static_cast<double>(w);
      r.coefficient[static_cast<std::size_t>(v)] = c;
      coeff_sum += c;
      ++coeff_count;
    }
  }
  r.total_triangles = total / 3;
  r.global_clustering =
      wedges > 0 ? static_cast<double>(total) / static_cast<double>(wedges)
                 : 0.0;
  r.mean_local_clustering =
      coeff_count > 0 ? coeff_sum / static_cast<double>(coeff_count) : 0.0;
  return r;
}

}  // namespace graphct
