#include "algs/clustering.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace graphct {

ClusteringResult clustering_coefficients(const CsrGraph& g) {
  GCT_CHECK(!g.directed(), "clustering_coefficients: graph must be undirected");
  GCT_CHECK(g.sorted_adjacency(),
            "clustering_coefficients: adjacency must be sorted");
  const vid n = g.num_vertices();
  obs::KernelScope scope("clustering");

  ClusteringResult r;
  r.triangles.assign(static_cast<std::size_t>(n), 0);
  r.coefficient.assign(static_cast<std::size_t>(n), 0.0);

  // Degree-ordered direction: orient every edge from lower to higher
  // (degree, id) rank and keep only the forward half of each adjacency list.
  // Every triangle is enumerated exactly once at its lowest-rank corner, and
  // hub vertices — whose full neighbor lists dominate intersection cost on
  // power-law graphs — keep only their few higher-degree neighbors, so the
  // wedge work a scan does is bounded by the forward degrees (~sqrt(m)
  // amortized) instead of the raw degrees.
  const auto rank_above = [&g](vid w, vid v) {
    const vid dw = g.degree(w);
    const vid dv = g.degree(v);
    return dw > dv || (dw == dv && w > v);
  };
  std::vector<eid> foff(static_cast<std::size_t>(n) + 1, 0);
  std::vector<vid> fadj;
  {
    GCT_SPAN("clustering.orient");
#pragma omp parallel for schedule(static)
    for (vid v = 0; v < n; ++v) {
      eid c = 0;
      for (vid w : g.neighbors(v)) {
        if (rank_above(w, v)) ++c;
      }
      foff[static_cast<std::size_t>(v)] = c;
    }
    const std::int64_t total_fwd = exclusive_scan(
        std::span<const std::int64_t>(foff.data(), static_cast<std::size_t>(n)),
        std::span<std::int64_t>(foff.data(), static_cast<std::size_t>(n)));
    foff[static_cast<std::size_t>(n)] = total_fwd;
    fadj.resize(static_cast<std::size_t>(total_fwd));
#pragma omp parallel for schedule(static)
    for (vid v = 0; v < n; ++v) {
      eid pos = foff[static_cast<std::size_t>(v)];
      // Neighbors are id-sorted, so each forward list (a filtered
      // subsequence) stays id-sorted and merge intersection applies.
      for (vid w : g.neighbors(v)) {
        if (rank_above(w, v)) fadj[static_cast<std::size_t>(pos++)] = w;
      }
    }
    // Work is accounted once for the whole kernel, in the triangles phase,
    // to keep the one-traversal TEPS convention comparable with the seed.
  }

  {
    GCT_SPAN("clustering.triangles");
    // For every forward edge (u,v), merge-intersect fwd(u) and fwd(v): each
    // common w closes the triangle u-v-w with rank(u) < rank(v) < rank(w).
    // Credit all three corners with atomic adds.
#pragma omp parallel for schedule(dynamic, 64)
    for (vid u = 0; u < n; ++u) {
      const auto fu_lo = static_cast<std::size_t>(foff[static_cast<std::size_t>(u)]);
      const auto fu_hi =
          static_cast<std::size_t>(foff[static_cast<std::size_t>(u) + 1]);
      for (std::size_t i = fu_lo; i < fu_hi; ++i) {
        const vid v = fadj[i];
        std::size_t iu = fu_lo;
        std::size_t iv = static_cast<std::size_t>(foff[static_cast<std::size_t>(v)]);
        const auto iv_hi =
            static_cast<std::size_t>(foff[static_cast<std::size_t>(v) + 1]);
        while (iu < fu_hi && iv < iv_hi) {
          if (fadj[iu] < fadj[iv]) {
            ++iu;
          } else if (fadj[iv] < fadj[iu]) {
            ++iv;
          } else {
            const vid w = fadj[iu];
            fetch_add(r.triangles[static_cast<std::size_t>(u)], 1);
            fetch_add(r.triangles[static_cast<std::size_t>(v)], 1);
            fetch_add(r.triangles[static_cast<std::size_t>(w)], 1);
            ++iu;
            ++iv;
          }
        }
      }
    }
    // Intersection scans touch every forward adjacency entry at least once.
    obs::add_work(n, g.num_adjacency_entries());
  }

  GCT_SPAN("clustering.stats");
  std::int64_t total = 0;
  std::int64_t wedges = 0;
  double coeff_sum = 0.0;
  std::int64_t coeff_count = 0;
#pragma omp parallel for reduction(+ : total, wedges, coeff_sum, coeff_count) \
    schedule(static)
  for (vid v = 0; v < n; ++v) {
    // Effective degree excludes a self-loop if present.
    vid d = g.degree(v);
    if (g.has_edge(v, v)) --d;
    const std::int64_t t = r.triangles[static_cast<std::size_t>(v)];
    total += t;
    const std::int64_t w = static_cast<std::int64_t>(d) * (d - 1) / 2;
    wedges += w;
    if (d >= 2) {
      const double c = static_cast<double>(t) / static_cast<double>(w);
      r.coefficient[static_cast<std::size_t>(v)] = c;
      coeff_sum += c;
      ++coeff_count;
    }
  }
  r.total_triangles = total / 3;
  r.global_clustering =
      wedges > 0 ? static_cast<double>(total) / static_cast<double>(wedges)
                 : 0.0;
  r.mean_local_clustering =
      coeff_count > 0 ? coeff_sum / static_cast<double>(coeff_count) : 0.0;
  return r;
}

}  // namespace graphct
