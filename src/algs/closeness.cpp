#include "algs/closeness.hpp"

#include <omp.h>

#include "algs/bfs.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace graphct {

ClosenessResult closeness_centrality(const GraphView& g,
                                     const ClosenessOptions& opts) {
  GCT_CHECK(!g.directed(), "closeness_centrality: graph must be undirected");
  const vid n = g.num_vertices();
  obs::KernelScope scope("closeness");
  ClosenessResult result;
  result.score.assign(static_cast<std::size_t>(n), 0.0);
  if (n == 0) return result;

  std::vector<vid> sources;
  {
    GCT_SPAN("closeness.sources");
    if (opts.num_sources == kNoVertex || opts.num_sources >= n) {
      sources.resize(static_cast<std::size_t>(n));
      for (vid v = 0; v < n; ++v) sources[static_cast<std::size_t>(v)] = v;
    } else {
      GCT_CHECK(opts.num_sources > 0,
                "closeness_centrality: num_sources must be positive");
      Rng rng(opts.seed);
      sources = rng.sample_without_replacement(n, opts.num_sources);
    }
  }
  result.sources_used = static_cast<std::int64_t>(sources.size());

  const int nt = num_threads();
  std::vector<std::vector<double>> buffers(
      static_cast<std::size_t>(nt),
      std::vector<double>(static_cast<std::size_t>(n), 0.0));
  {
    GCT_SPAN("closeness.bfs");
    {
    obs::SuspendCollection pause;  // region work is accounted in bulk below
#pragma omp parallel num_threads(nt)
    {
      const int t = omp_get_thread_num();
      auto& mine = buffers[static_cast<std::size_t>(t)];
      BfsOptions bopts;
      // Direction-optimizing searches (closeness is undirected-only): the
      // low-diameter graphs this kernel samples spend most levels in the
      // fat middle, exactly where bottom-up wins. Harmonic sums are
      // per-vertex adds of 1/d, so level order does not affect scores —
      // they stay bit-identical to the top-down engine.
      bopts.strategy = BfsStrategy::kDirectionOptimizing;
      bopts.deterministic_order = false;
      bopts.compute_parents = false;
      BfsResult b;
#pragma omp for schedule(dynamic, 1)
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(sources.size());
           ++i) {
        bfs_into(g, sources[static_cast<std::size_t>(i)], bopts, b);
        // Harmonic contribution of this pivot to every reached vertex;
        // level_offsets give the distance without a per-vertex lookup.
        for (std::size_t d = 1; d + 1 < b.level_offsets.size(); ++d) {
          const double w = 1.0 / static_cast<double>(d);
          const auto lo = static_cast<std::size_t>(b.level_offsets[d]);
          const auto hi = static_cast<std::size_t>(b.level_offsets[d + 1]);
          for (std::size_t j = lo; j < hi; ++j) {
            mine[static_cast<std::size_t>(b.order[j])] += w;
          }
        }
      }
    }
    }
    // Per-source BFS work inside the region is invisible to the profile
    // (collection is suspended; worker threads have no sink anyway), so
    // account for the sampled searches in bulk: one full-adjacency traversal
    // per source, the same BFS-equivalent convention the paper's TEPS
    // numbers use.
    obs::add_work(result.sources_used * static_cast<std::int64_t>(n),
                  result.sources_used * g.num_adjacency_entries());
  }
  {
    GCT_SPAN("closeness.reduce_tree");
    tree_reduce_buffers(
        buffers, std::span<double>(result.score.data(), result.score.size()));
  }

  if (opts.rescale && result.sources_used < n) {
    GCT_SPAN("closeness.rescale");
    const double scale =
        static_cast<double>(n) / static_cast<double>(result.sources_used);
#pragma omp parallel for schedule(static)
    for (vid v = 0; v < n; ++v) {
      result.score[static_cast<std::size_t>(v)] *= scale;
    }
  }
  result.seconds = scope.seconds();
  return result;
}

}  // namespace graphct
