#pragma once

/// \file bc_confidence.hpp
/// Confidence estimation for sampled betweenness centrality.
///
/// The paper closes by noting that "more work on sampling is needed" and
/// poses "quantifying significance and confidence of approximations over
/// noisy graph data" as an open problem (§V). This module answers the
/// practical form of that question: run R independent source samples,
/// rescale each to the exact-magnitude estimator (n/S · sum), and report
/// per-vertex means with Student-t confidence intervals plus the
/// *stability* of top-k membership — the quantity an analyst ranking
/// actors actually relies on.

#include <cstdint>
#include <vector>

#include "core/betweenness.hpp"
#include "graph/csr_graph.hpp"

namespace graphct {

/// Options for bc_confidence().
struct BcConfidenceOptions {
  /// Sources per replicate (the paper's regimes: 256, or a fraction).
  std::int64_t num_sources = 256;

  /// Independent replicates (the paper averages 10 realizations).
  std::int64_t replicates = 10;

  /// Two-sided confidence level for the per-vertex intervals.
  double level = 0.90;

  /// Top-percent list whose membership stability is reported.
  double top_percent = 1.0;

  std::uint64_t seed = 1;
  BcSampling sampling = BcSampling::kUniform;
};

/// Result of a confidence run.
struct BcConfidenceResult {
  /// Per-vertex mean of the rescaled estimator across replicates.
  std::vector<double> mean;

  /// Per-vertex confidence half-width at the requested level.
  std::vector<double> half_width;

  /// Per-vertex fraction of replicates in which the vertex appeared in the
  /// top `top_percent`% — 1.0 means every sample agrees the vertex is a
  /// top actor.
  std::vector<double> top_membership;

  /// Mean pairwise top-k overlap between replicates (rank stability in
  /// [0, 1]; 1.0 = all replicates produce the same top list).
  double top_list_stability = 0.0;

  std::int64_t replicates = 0;
  std::int64_t sources_per_replicate = 0;
};

/// Estimate sampled-BC confidence on an undirected graph. Runs
/// `replicates` independent sampled-BC evaluations (seeds derived from
/// opts.seed), so cost is replicates * num_sources * O(m+n).
BcConfidenceResult bc_confidence(const CsrGraph& g,
                                 const BcConfidenceOptions& opts = {});

}  // namespace graphct
