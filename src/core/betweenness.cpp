#include "core/betweenness.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <unordered_map>

#include "algs/bc_accum.hpp"
#include "algs/bfs.hpp"
#include "algs/connected_components.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/work_queue.hpp"

namespace graphct {

namespace {

// Level chunking for the work-stealing backward sweep (matches the forward
// sweep's granularity in bfs.cpp).
constexpr std::int64_t kBcLevelChunk = 64;
constexpr std::int64_t kBcLevelSerialBelow = 512;

// Per-vertex backward-sweep state (DistCoef) and the canonical 4-lane
// accumulation rows live in algs/bc_accum.hpp, shared with the forward
// pulls in algs/bfs.cpp and the distributed worker in dist/worker.cpp.

/// Per-source scratch reused across sources by one thread.
struct BcWorkspace {
  std::vector<double> sigma;
  std::vector<DistCoef> dc;  // backward sweep state, see DistCoef
  BfsResult bfs_buffer;      // reused so the hot loop never allocates
  WorkQueue queue;           // level scheduler for the backward sweep

  explicit BcWorkspace(vid n)
      : sigma(static_cast<std::size_t>(n)),
        dc(static_cast<std::size_t>(n), DistCoef{0.0, 0}) {}
};

/// Directed forward pass: the push baseline. Directed CSR stores
/// out-neighbors only, so the pull engine (which reads a vertex's neighbor
/// list as its in-edges) cannot run; sigma flows by fetch-and-add pushes
/// along arcs instead. Levels come out ascending (deterministic bitmap path
/// for packed stores, post-sort otherwise) so the backward sweep's reads
/// stay sequential and scores stay bitwise equal across storage backends.
void forward_push_directed(const GraphView& g, vid s, BfsResult& b,
                           std::vector<double>& sigma) {
  BfsOptions bopts;
  bopts.deterministic_order = g.store_backed();
  bopts.compute_parents = false;  // predecessors come from distances
  {
    // Spans here record only in fine mode, where this runs on the
    // orchestrating thread; coarse-mode workers have no sink.
    GCT_SPAN("bc.bfs");
    bfs_into(g, s, bopts, b);
    b.sort_levels();
  }
  const auto& dist = b.distance;
  const vid reached = b.num_reached();
  // Pushes accumulate, so reached entries must start at zero (the pull
  // engine skips this: it assigns each sigma exactly once).
  for (eid i = 0; i < reached; ++i) {
    sigma[static_cast<std::size_t>(b.order[static_cast<std::size_t>(i)])] = 0.0;
  }
  sigma[static_cast<std::size_t>(s)] = 1.0;

  GCT_SPAN("bc.forward");
  const std::int64_t num_levels =
      static_cast<std::int64_t>(b.level_offsets.size()) - 1;
  for (std::int64_t d = 0; d + 1 < num_levels; ++d) {
    const eid lo = b.level_offsets[static_cast<std::size_t>(d)];
    const eid hi = b.level_offsets[static_cast<std::size_t>(d) + 1];
#pragma omp parallel for schedule(dynamic, 64) if (hi - lo >= kBcLevelSerialBelow)
    for (eid i = lo; i < hi; ++i) {
      const vid u = b.order[static_cast<std::size_t>(i)];
      const double su = sigma[static_cast<std::size_t>(u)];
      for (vid v : g.neighbors(u)) {
        if (dist[static_cast<std::size_t>(v)] ==
            dist[static_cast<std::size_t>(u)] + 1) {
          fetch_add(sigma[static_cast<std::size_t>(v)], su);
        }
      }
    }
  }
}

/// Narrowed adjacency shared by every source of one betweenness run: vid is
/// 8 bytes, but the backward sweep streams the whole adjacency array once
/// per source, so on graphs whose ids fit 32 bits a one-time narrowed copy
/// halves the dominant stream (and halves the cache pollution that evicts
/// the per-vertex state between random accesses). Built once per
/// betweenness call, read-only afterwards; empty when ids would not fit or
/// the copy would not be worth the memory (see betweenness_impl).
struct NarrowAdjacency {
  std::vector<eid> offsets;
  std::vector<std::int32_t> adj;

  [[nodiscard]] bool active() const { return !offsets.empty(); }
};

/// One backward dependency sweep, deepest level first, over the packed
/// distance+coefficient array (already loaded with this source's
/// distances). `nbrs_of(v)` yields v's neighbor span — int32 from the
/// narrowed copy or vid from the GraphView — hence the template.
template <typename NbrFn>
void backward_sweep_impl(const GraphView& g, vid s, const BfsResult& b,
                         BcWorkspace& ws, std::vector<double>& score,
                         const NbrFn& nbrs_of, int nthreads, bool profiling) {
  const auto& sigma = ws.sigma;
  DistCoef* dc = ws.dc.data();
  const std::int64_t num_levels =
      static_cast<std::int64_t>(b.level_offsets.size()) - 1;
  {
    // The deepest level has no deeper neighbors: its dependency sum is
    // exactly zero, so the scan collapses to the closed form
    // coef = 1/sigma (and no score contribution).
    const eid lo = b.level_offsets[static_cast<std::size_t>(num_levels - 1)];
    const eid hi = b.level_offsets[static_cast<std::size_t>(num_levels)];
    if (profiling) obs::add_work(hi - lo, 0);
    for (eid i = lo; i < hi; ++i) {
      const vid v = b.order[static_cast<std::size_t>(i)];
      dc[v].coef = 1.0 / sigma[static_cast<std::size_t>(v)];
    }
  }
  for (std::int64_t d = num_levels - 2; d >= 0; --d) {
    const eid lo = b.level_offsets[static_cast<std::size_t>(d)];
    const eid hi = b.level_offsets[static_cast<std::size_t>(d) + 1];
    if (profiling) {
      std::int64_t fe = 0;
      for (eid i = lo; i < hi; ++i) {
        fe += g.degree(b.order[static_cast<std::size_t>(i)]);
      }
      obs::add_work(hi - lo, fe);
    }
    const std::int64_t deeper = d + 1;
    stealing_for(
        ws.queue, lo, hi, kBcLevelChunk, kBcLevelSerialBelow, nthreads,
        [&](std::int64_t i0, std::int64_t i1) {
          for (std::int64_t i = i0; i < i1; ++i) {
            const vid v = b.order[static_cast<std::size_t>(i)];
            // Branchless accumulation: levels interleave unpredictably in
            // adjacency order, so `if (dist == deeper)` mispredicts often
            // as a branch. bc_pull_coef_row multiplies by the comparison
            // instead (coef * 1.0 or coef * 0.0 — exact either way, coef
            // is always finite) with the canonical 4-lane layout from
            // algs/bc_accum.hpp, so the summation order is fixed for any
            // thread count, mode, forward engine, or (dist path) worker
            // count.
            const auto nbrs = nbrs_of(v);
            const double acc =
                bc_pull_coef_row(nbrs.data(),
                                 static_cast<std::int64_t>(nbrs.size()), dc,
                                 deeper);
            const double sv = sigma[static_cast<std::size_t>(v)];
            const double dv = sv * acc;
            dc[v].coef = (1.0 + dv) / sv;
            if (v != s) score[static_cast<std::size_t>(v)] += dv;
          }
        });
  }
}

void backward_sweep(const GraphView& g, vid s, const BfsResult& b,
                    BcWorkspace& ws, std::vector<double>& score,
                    const NarrowAdjacency& na, int nthreads, bool profiling) {
  if (na.active()) {
    const eid* off = na.offsets.data();
    const std::int32_t* adj = na.adj.data();
    backward_sweep_impl(
        g, s, b, ws, score,
        [off, adj](vid v) {
          return std::span<const std::int32_t>(
              adj + off[v], static_cast<std::size_t>(off[v + 1] - off[v]));
        },
        nthreads, profiling);
  } else {
    backward_sweep_impl(
        g, s, b, ws, score, [&g](vid v) { return g.neighbors(v); }, nthreads,
        profiling);
  }
}

/// Brandes accumulation from one source into `score`.
///
/// Forward: undirected graphs run bc_forward_sweep (fused direction-
/// optimizing BFS + pull sigma; `sweep.hybrid` false = pure top-down, the
/// ablation baseline — bit-identical scores either way). Directed graphs
/// take the push baseline above.
///
/// Backward: coefficient form. Instead of delta we keep
/// coef[v] = (1 + delta[v]) / sigma[v], so each vertex does ONE division and
/// the per-edge work is a plain add: delta[v] = sigma[v] * sum of coef[w]
/// over neighbors one level deeper. The sum runs in adjacency order and
/// every write (coef, score) is per-vertex exclusive — no atomics in any
/// mode, and bit-identical results for any thread count. Levels are
/// scheduled through the work-stealing queue; under coarse mode
/// stealing_for detects the enclosing parallel region and runs inline.
void accumulate_source(const GraphView& g, vid s, BcWorkspace& ws,
                       std::vector<double>& score,
                       const BcSweepOptions& sweep,
                       const NarrowAdjacency& na) {
  BfsResult& b = ws.bfs_buffer;
  auto& sigma = ws.sigma;
  if (g.directed()) {
    forward_push_directed(g, s, b, sigma);
  } else {
    bc_forward_sweep(g, s, sweep, b, sigma);
  }

  const int nthreads = num_threads();
  const bool profiling = obs::profile_active();

  GCT_SPAN("bc.backward");
  // Load this source's distances into the packed per-vertex state (one
  // sequential O(n) pass, cheap next to the O(m) sweep; the coef halves
  // keep whatever the previous source left — finite, and rewritten before
  // any vertex reads them because coef[w] is only read from one level up).
  {
    const vid n = g.num_vertices();
    const auto& dist = b.distance;
    DistCoef* dc = ws.dc.data();
    for (vid v = 0; v < n; ++v) {
      dc[v].dist = dist[static_cast<std::size_t>(v)];
    }
  }
  backward_sweep(g, s, b, ws, score, na, nthreads, profiling);
}

std::vector<vid> sample_component_aware(const GraphView& g, std::int64_t k,
                                        Rng& rng) {
  const auto labels = connected_components(g);
  const auto stats = component_stats(labels);
  const vid n = g.num_vertices();

  // Bucket vertices by component, largest component first.
  std::vector<std::vector<vid>> buckets;
  std::unordered_map<vid, std::size_t> slot;
  buckets.reserve(stats.sizes.size());
  for (const auto& [label, size] : stats.sizes) {
    slot[label] = buckets.size();
    buckets.emplace_back();
    buckets.back().reserve(static_cast<std::size_t>(size));
  }
  for (vid v = 0; v < n; ++v) {
    buckets[slot[labels[static_cast<std::size_t>(v)]]].push_back(v);
  }

  // Proportional allocation with a floor of one source per component (while
  // budget lasts, biggest first), so no component is left unsampled — the
  // failure mode the paper conjectures for unguided sampling (§V).
  std::vector<std::int64_t> quota(buckets.size(), 0);
  std::int64_t assigned = 0;
  for (std::size_t i = 0; i < buckets.size() && assigned < k; ++i) {
    quota[i] = 1;
    ++assigned;
  }
  while (assigned < k) {
    // Distribute the remainder proportionally to residual capacity.
    bool progressed = false;
    for (std::size_t i = 0; i < buckets.size() && assigned < k; ++i) {
      const auto cap = static_cast<std::int64_t>(buckets[i].size());
      if (quota[i] < cap) {
        const double share = static_cast<double>(cap) /
                             static_cast<double>(n) *
                             static_cast<double>(k);
        if (static_cast<double>(quota[i]) < share || !progressed) {
          ++quota[i];
          ++assigned;
          progressed = true;
        }
      }
    }
    if (!progressed) break;  // every component saturated
  }

  std::vector<vid> sources;
  sources.reserve(static_cast<std::size_t>(k));
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const auto cap = static_cast<std::int64_t>(buckets[i].size());
    const std::int64_t q = std::min(quota[i], cap);
    auto picks = rng.sample_without_replacement(cap, q);
    for (auto p : picks) {
      sources.push_back(buckets[i][static_cast<std::size_t>(p)]);
    }
  }
  std::sort(sources.begin(), sources.end());
  return sources;
}

// Sources per buffer-team slot in one auto-mode batch: large enough that
// each tree reduction amortizes over several sources, small enough that a
// tiny budget still exercises multi-batch execution.
constexpr std::int64_t kBcSourcesPerSlot = 8;

}  // namespace

BcPlan plan_betweenness(vid n, std::int64_t num_sources, int threads,
                        const BetweennessOptions& opts, bool directed) {
  BcPlan p;
  if (threads < 1) threads = 1;
  if (num_sources < 1) num_sources = 1;

  GCT_CHECK(!(directed && opts.forward == BcForwardEngine::kHybrid),
            "betweenness: the hybrid forward sweep requires an undirected "
            "graph (bottom-up pulls use out-neighbors as in-neighbors)");
  p.forward = opts.forward == BcForwardEngine::kAuto
                  ? (directed ? BcForwardEngine::kTopDown
                              : BcForwardEngine::kHybrid)
                  : opts.forward;
  const std::uint64_t per_buffer =
      static_cast<std::uint64_t>(n) * sizeof(double);

  if (opts.parallelism == BcParallelism::kFine) {
    p.mode = BcParallelism::kFine;
    return p;
  }
  if (opts.parallelism == BcParallelism::kCoarse) {
    // Legacy coarse: one buffer per thread, all sources in a single batch,
    // budget ignored.
    p.mode = BcParallelism::kCoarse;
    p.team = threads;
    p.batch_sources = num_sources;
    p.num_batches = 1;
    p.buffer_bytes = static_cast<std::uint64_t>(threads) * per_buffer;
    return p;
  }

  // kAuto: fit the buffer team inside the budget. Fine mode keeps threads
  // busy on level-parallel sweeps with O(1) score buffers, so it is the
  // right fallback when n is large relative to threads x budget.
  const std::int64_t affordable =
      per_buffer == 0 ? threads
                      : static_cast<std::int64_t>(
                            opts.score_memory_budget_bytes / per_buffer);
  if (affordable < 1 || (threads > 1 && affordable < 2)) {
    p.mode = BcParallelism::kFine;
    return p;
  }
  p.mode = BcParallelism::kCoarse;
  p.team = static_cast<int>(std::min<std::int64_t>(
      {threads, affordable, num_sources}));
  p.batch_sources = std::min(num_sources, p.team * kBcSourcesPerSlot);
  p.num_batches = (num_sources + p.batch_sources - 1) / p.batch_sources;
  p.buffer_bytes = static_cast<std::uint64_t>(p.team) * per_buffer;
  return p;
}

std::vector<vid> choose_sources(const GraphView& g,
                                const BetweennessOptions& opts) {
  const vid n = g.num_vertices();
  std::int64_t k = opts.num_sources;
  if (opts.sample_fraction > 0.0) {
    GCT_CHECK(opts.sample_fraction <= 1.0,
              "betweenness: sample_fraction must be in (0, 1]");
    k = static_cast<std::int64_t>(
        std::ceil(static_cast<double>(n) * opts.sample_fraction));
  }
  if (k == kNoVertex || k >= n) {
    std::vector<vid> all(static_cast<std::size_t>(n));
    for (vid v = 0; v < n; ++v) all[static_cast<std::size_t>(v)] = v;
    return all;
  }
  GCT_CHECK(k > 0, "betweenness: num_sources must be positive");
  Rng rng(opts.seed);
  if (opts.sampling == BcSampling::kComponentAware) {
    return sample_component_aware(g, k, rng);
  }
  return rng.sample_without_replacement(n, k);
}

namespace {

// Shared implementation. Brandes' forward/backward sweeps read only
// out-neighbors with dist == dist(v) + 1, which is correct for directed
// and undirected CSR alike; only the pair-counting interpretation differs.
BetweennessResult betweenness_impl(const GraphView& g,
                                   const BetweennessOptions& opts) {
  const vid n = g.num_vertices();
  BetweennessResult result;
  result.score.assign(static_cast<std::size_t>(n), 0.0);
  if (n == 0) return result;
  obs::KernelScope scope("bc");

  std::vector<vid> sources;
  {
    GCT_SPAN("bc.choose_sources");
    sources = choose_sources(g, opts);
  }
  result.sources_used = static_cast<std::int64_t>(sources.size());

  const BcPlan plan = plan_betweenness(n, result.sources_used, num_threads(),
                                       opts, g.directed());
  result.parallelism_used = plan.mode;
  result.forward_used = plan.forward;

  BcSweepOptions sweep;
  sweep.hybrid = plan.forward == BcForwardEngine::kHybrid;
  if (opts.sweep_alpha > 0.0) sweep.alpha = opts.sweep_alpha;
  if (opts.sweep_beta > 0.0) sweep.beta = opts.sweep_beta;

  // Narrow the adjacency to 32-bit ids once for the whole run when ids fit
  // and the copy fits the score-memory budget: the backward sweep streams
  // the full adjacency array per source, so halving its width halves the
  // dominant memory traffic of the kernel (and the cache pollution that
  // keeps evicting the per-vertex state). Skipped for graphs too large to
  // narrow — the sweep then reads the GraphView directly.
  NarrowAdjacency na;
  if (n <= std::numeric_limits<std::int32_t>::max() &&
      static_cast<std::uint64_t>(g.num_adjacency_entries()) *
              sizeof(std::int32_t) <=
          opts.score_memory_budget_bytes) {
    GCT_SPAN("bc.narrow_adjacency");
    na.offsets.resize(static_cast<std::size_t>(n) + 1);
    na.adj.resize(static_cast<std::size_t>(g.num_adjacency_entries()));
    eid pos = 0;
    for (vid v = 0; v < n; ++v) {
      na.offsets[static_cast<std::size_t>(v)] = pos;
      for (vid u : g.neighbors(v)) {
        na.adj[static_cast<std::size_t>(pos++)] =
            static_cast<std::int32_t>(u);
      }
    }
    na.offsets[static_cast<std::size_t>(n)] = pos;
  }

  if (plan.mode == BcParallelism::kFine) {
    // Sources serial; each sweep is level-parallel (work-stealing chunks,
    // no atomics — every write is per-vertex exclusive). The per-source
    // sweeps record exact work counters into the bc.forward_td /
    // bc.forward_bu / bc.backward phases (fine mode runs on the profiling
    // thread).
    GCT_SPAN("bc.accumulate");
    BcWorkspace ws(n);
    for (vid s : sources) {
      accumulate_source(g, s, ws, result.score, sweep, na);
    }
  } else {
    // Coarse: sources in parallel across a buffer team, batch by batch; each
    // batch ends with a parallel tree reduction that folds the buffers into
    // the global scores and re-zeroes them for the next batch, so peak
    // score-buffer memory stays at plan.buffer_bytes for the whole run.
    result.batches = plan.num_batches;
    result.peak_buffer_bytes = plan.buffer_bytes;
    const int team = plan.team;
    std::vector<std::vector<double>> buffers(
        static_cast<std::size_t>(team),
        std::vector<double>(static_cast<std::size_t>(n), 0.0));
    std::vector<BcWorkspace> workspaces;
    workspaces.reserve(static_cast<std::size_t>(team));
    for (int t = 0; t < team; ++t) workspaces.emplace_back(n);

    const auto num_sources = static_cast<std::int64_t>(sources.size());
    for (std::int64_t b0 = 0; b0 < num_sources; b0 += plan.batch_sources) {
      const std::int64_t b1 = std::min(num_sources, b0 + plan.batch_sources);
      {
        GCT_SPAN("bc.accumulate");
        {
          obs::SuspendCollection pause;  // accounted in bulk below
#pragma omp parallel num_threads(team)
          {
            const int t = omp_get_thread_num();
#pragma omp for schedule(dynamic, 1)
            for (std::int64_t i = b0; i < b1; ++i) {
              accumulate_source(g, sources[static_cast<std::size_t>(i)],
                                workspaces[static_cast<std::size_t>(t)],
                                buffers[static_cast<std::size_t>(t)], sweep,
                                na);
            }
          }
        }
        // BFS-equivalent convention: one full-adjacency traversal per source
        // (see docs/OBSERVABILITY.md on TEPS for sampled kernels).
        obs::add_work((b1 - b0) * static_cast<std::int64_t>(n),
                      (b1 - b0) * g.num_adjacency_entries());
      }
      GCT_SPAN("bc.reduce_tree");
      tree_reduce_buffers(buffers,
                          std::span<double>(result.score.data(),
                                            result.score.size()),
                          /*clear_buffers=*/b1 < num_sources);
    }
  }

  if (opts.rescale && result.sources_used > 0 &&
      result.sources_used < n) {
    GCT_SPAN("bc.rescale");
    const double scale = static_cast<double>(n) /
                         static_cast<double>(result.sources_used);
#pragma omp parallel for schedule(static)
    for (vid v = 0; v < n; ++v) {
      result.score[static_cast<std::size_t>(v)] *= scale;
    }
  }
  result.seconds = scope.seconds();
  return result;
}

}  // namespace

BetweennessResult betweenness_centrality(const GraphView& g,
                                         const BetweennessOptions& opts) {
  GCT_CHECK(!g.directed(),
            "betweenness_centrality: graph must be undirected (the paper "
            "treats mention graphs as undirected, §I-A); use "
            "directed_betweenness_centrality for the directed flow model");
  return betweenness_impl(g, opts);
}

BetweennessResult directed_betweenness_centrality(
    const GraphView& g, const BetweennessOptions& opts) {
  GCT_CHECK(g.directed(),
            "directed_betweenness_centrality: graph must be directed");
  BetweennessOptions o = opts;
  // Weak components say nothing about directed reachability; stratifying
  // by them would be misleading, so fall back to uniform sampling.
  o.sampling = BcSampling::kUniform;
  return betweenness_impl(g, o);
}

}  // namespace graphct
