#include "core/betweenness.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "algs/bfs.hpp"
#include "algs/connected_components.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace graphct {

namespace {

/// Per-source scratch reused across sources by one thread.
struct BcWorkspace {
  std::vector<double> sigma;
  std::vector<double> delta;
  BfsResult bfs_buffer;  // reused so the hot loop never allocates

  explicit BcWorkspace(vid n)
      : sigma(static_cast<std::size_t>(n)), delta(static_cast<std::size_t>(n)) {}
};

/// Brandes accumulation from one source into `score`.
/// `atomic_scores` selects atomic adds (fine mode shares one score array
/// between concurrently-running level loops; coarse mode owns its buffer).
/// The inner loops carry OpenMP pragmas; under coarse mode they execute
/// serially because the caller is already inside a parallel region and
/// nested parallelism is disabled.
void accumulate_source(const GraphView& g, vid s, BcWorkspace& ws,
                       std::vector<double>& score, bool atomic_scores) {
  BfsOptions bopts;
  // sigma/delta sums are order-invariant, so DRAM graphs take the queued
  // top-down path (no per-level bitmap scan). Packed stores take the
  // deterministic bitmap path instead: its compaction emits levels in
  // ascending vertex order, so the expansion's adjacency reads stream
  // through blocks instead of thrashing the per-thread decode cache.
  bopts.deterministic_order = g.store_backed();
  bopts.compute_parents = false;  // predecessors come from distances
  BfsResult& b = ws.bfs_buffer;
  {
    // Spans here record only in fine mode, where this runs on the
    // orchestrating thread; coarse-mode workers have no sink.
    GCT_SPAN("bc.bfs");
    bfs_into(g, s, bopts, b);
    // Ascending order within levels makes the sweeps' adjacency reads
    // sequential (decisive on packed stores) and, because both backends
    // end up with the identical order, keeps results bitwise equal
    // across them. No-op for levels the bitmap path already sorted.
    b.sort_levels();
  }
  const auto& dist = b.distance;
  auto& sigma = ws.sigma;
  auto& delta = ws.delta;
  const vid reached = b.num_reached();
  // Only touch reached vertices, so sparse components stay cheap.
  for (eid i = 0; i < reached; ++i) {
    const vid v = b.order[static_cast<std::size_t>(i)];
    sigma[static_cast<std::size_t>(v)] = 0.0;
    delta[static_cast<std::size_t>(v)] = 0.0;
  }
  sigma[static_cast<std::size_t>(s)] = 1.0;

  const std::int64_t num_levels =
      static_cast<std::int64_t>(b.level_offsets.size()) - 1;

  {
    GCT_SPAN("bc.forward");
    // Forward sweep: shortest-path counts, level by level. sigma of level
    // d+1 vertices accumulates from level-d neighbors; vertices within a
    // level are independent, so each level is a parallel loop.
    for (std::int64_t d = 0; d + 1 < num_levels; ++d) {
      const eid lo = b.level_offsets[static_cast<std::size_t>(d)];
      const eid hi = b.level_offsets[static_cast<std::size_t>(d) + 1];
#pragma omp parallel for schedule(dynamic, 64)
      for (eid i = lo; i < hi; ++i) {
        const vid u = b.order[static_cast<std::size_t>(i)];
        const double su = sigma[static_cast<std::size_t>(u)];
        for (vid v : g.neighbors(u)) {
          if (dist[static_cast<std::size_t>(v)] ==
              dist[static_cast<std::size_t>(u)] + 1) {
            fetch_add(sigma[static_cast<std::size_t>(v)], su);
          }
        }
      }
    }
  }

  GCT_SPAN("bc.backward");
  // Backward sweep: dependencies, deepest level first. delta[v] reads only
  // values one level deeper, so again each level is parallel.
  for (std::int64_t d = num_levels - 1; d >= 0; --d) {
    const eid lo = b.level_offsets[static_cast<std::size_t>(d)];
    const eid hi = b.level_offsets[static_cast<std::size_t>(d) + 1];
#pragma omp parallel for schedule(dynamic, 64)
    for (eid i = lo; i < hi; ++i) {
      const vid v = b.order[static_cast<std::size_t>(i)];
      double acc = 0.0;
      const double sv = sigma[static_cast<std::size_t>(v)];
      for (vid w : g.neighbors(v)) {
        if (dist[static_cast<std::size_t>(w)] ==
            dist[static_cast<std::size_t>(v)] + 1) {
          acc += sv / sigma[static_cast<std::size_t>(w)] *
                 (1.0 + delta[static_cast<std::size_t>(w)]);
        }
      }
      delta[static_cast<std::size_t>(v)] = acc;
      if (v != s) {
        if (atomic_scores) {
          fetch_add(score[static_cast<std::size_t>(v)], acc);
        } else {
          score[static_cast<std::size_t>(v)] += acc;
        }
      }
    }
  }
}

std::vector<vid> sample_component_aware(const GraphView& g, std::int64_t k,
                                        Rng& rng) {
  const auto labels = connected_components(g);
  const auto stats = component_stats(labels);
  const vid n = g.num_vertices();

  // Bucket vertices by component, largest component first.
  std::vector<std::vector<vid>> buckets;
  std::unordered_map<vid, std::size_t> slot;
  buckets.reserve(stats.sizes.size());
  for (const auto& [label, size] : stats.sizes) {
    slot[label] = buckets.size();
    buckets.emplace_back();
    buckets.back().reserve(static_cast<std::size_t>(size));
  }
  for (vid v = 0; v < n; ++v) {
    buckets[slot[labels[static_cast<std::size_t>(v)]]].push_back(v);
  }

  // Proportional allocation with a floor of one source per component (while
  // budget lasts, biggest first), so no component is left unsampled — the
  // failure mode the paper conjectures for unguided sampling (§V).
  std::vector<std::int64_t> quota(buckets.size(), 0);
  std::int64_t assigned = 0;
  for (std::size_t i = 0; i < buckets.size() && assigned < k; ++i) {
    quota[i] = 1;
    ++assigned;
  }
  while (assigned < k) {
    // Distribute the remainder proportionally to residual capacity.
    bool progressed = false;
    for (std::size_t i = 0; i < buckets.size() && assigned < k; ++i) {
      const auto cap = static_cast<std::int64_t>(buckets[i].size());
      if (quota[i] < cap) {
        const double share = static_cast<double>(cap) /
                             static_cast<double>(n) *
                             static_cast<double>(k);
        if (static_cast<double>(quota[i]) < share || !progressed) {
          ++quota[i];
          ++assigned;
          progressed = true;
        }
      }
    }
    if (!progressed) break;  // every component saturated
  }

  std::vector<vid> sources;
  sources.reserve(static_cast<std::size_t>(k));
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const auto cap = static_cast<std::int64_t>(buckets[i].size());
    const std::int64_t q = std::min(quota[i], cap);
    auto picks = rng.sample_without_replacement(cap, q);
    for (auto p : picks) {
      sources.push_back(buckets[i][static_cast<std::size_t>(p)]);
    }
  }
  std::sort(sources.begin(), sources.end());
  return sources;
}

// Sources per buffer-team slot in one auto-mode batch: large enough that
// each tree reduction amortizes over several sources, small enough that a
// tiny budget still exercises multi-batch execution.
constexpr std::int64_t kBcSourcesPerSlot = 8;

}  // namespace

BcPlan plan_betweenness(vid n, std::int64_t num_sources, int threads,
                        const BetweennessOptions& opts) {
  BcPlan p;
  if (threads < 1) threads = 1;
  if (num_sources < 1) num_sources = 1;
  const std::uint64_t per_buffer =
      static_cast<std::uint64_t>(n) * sizeof(double);

  if (opts.parallelism == BcParallelism::kFine) {
    p.mode = BcParallelism::kFine;
    return p;
  }
  if (opts.parallelism == BcParallelism::kCoarse) {
    // Legacy coarse: one buffer per thread, all sources in a single batch,
    // budget ignored.
    p.mode = BcParallelism::kCoarse;
    p.team = threads;
    p.batch_sources = num_sources;
    p.num_batches = 1;
    p.buffer_bytes = static_cast<std::uint64_t>(threads) * per_buffer;
    return p;
  }

  // kAuto: fit the buffer team inside the budget. Fine mode keeps threads
  // busy on level-parallel sweeps with O(1) score buffers, so it is the
  // right fallback when n is large relative to threads x budget.
  const std::int64_t affordable =
      per_buffer == 0 ? threads
                      : static_cast<std::int64_t>(
                            opts.score_memory_budget_bytes / per_buffer);
  if (affordable < 1 || (threads > 1 && affordable < 2)) {
    p.mode = BcParallelism::kFine;
    return p;
  }
  p.mode = BcParallelism::kCoarse;
  p.team = static_cast<int>(std::min<std::int64_t>(
      {threads, affordable, num_sources}));
  p.batch_sources = std::min(num_sources, p.team * kBcSourcesPerSlot);
  p.num_batches = (num_sources + p.batch_sources - 1) / p.batch_sources;
  p.buffer_bytes = static_cast<std::uint64_t>(p.team) * per_buffer;
  return p;
}

std::vector<vid> choose_sources(const GraphView& g,
                                const BetweennessOptions& opts) {
  const vid n = g.num_vertices();
  std::int64_t k = opts.num_sources;
  if (opts.sample_fraction > 0.0) {
    GCT_CHECK(opts.sample_fraction <= 1.0,
              "betweenness: sample_fraction must be in (0, 1]");
    k = static_cast<std::int64_t>(
        std::ceil(static_cast<double>(n) * opts.sample_fraction));
  }
  if (k == kNoVertex || k >= n) {
    std::vector<vid> all(static_cast<std::size_t>(n));
    for (vid v = 0; v < n; ++v) all[static_cast<std::size_t>(v)] = v;
    return all;
  }
  GCT_CHECK(k > 0, "betweenness: num_sources must be positive");
  Rng rng(opts.seed);
  if (opts.sampling == BcSampling::kComponentAware) {
    return sample_component_aware(g, k, rng);
  }
  return rng.sample_without_replacement(n, k);
}

namespace {

// Shared implementation. Brandes' forward/backward sweeps read only
// out-neighbors with dist == dist(v) + 1, which is correct for directed
// and undirected CSR alike; only the pair-counting interpretation differs.
BetweennessResult betweenness_impl(const GraphView& g,
                                   const BetweennessOptions& opts) {
  const vid n = g.num_vertices();
  BetweennessResult result;
  result.score.assign(static_cast<std::size_t>(n), 0.0);
  if (n == 0) return result;
  obs::KernelScope scope("bc");

  std::vector<vid> sources;
  {
    GCT_SPAN("bc.choose_sources");
    sources = choose_sources(g, opts);
  }
  result.sources_used = static_cast<std::int64_t>(sources.size());

  const BcPlan plan =
      plan_betweenness(n, result.sources_used, num_threads(), opts);
  result.parallelism_used = plan.mode;

  if (plan.mode == BcParallelism::kFine) {
    // Sources serial; each sweep is level-parallel with atomic adds. The
    // per-source BFS records exact work counters into bc.bfs (fine mode
    // runs on the profiling thread).
    GCT_SPAN("bc.accumulate");
    BcWorkspace ws(n);
    for (vid s : sources) {
      accumulate_source(g, s, ws, result.score, /*atomic_scores=*/true);
    }
  } else {
    // Coarse: sources in parallel across a buffer team, batch by batch; each
    // batch ends with a parallel tree reduction that folds the buffers into
    // the global scores and re-zeroes them for the next batch, so peak
    // score-buffer memory stays at plan.buffer_bytes for the whole run.
    result.batches = plan.num_batches;
    result.peak_buffer_bytes = plan.buffer_bytes;
    const int team = plan.team;
    std::vector<std::vector<double>> buffers(
        static_cast<std::size_t>(team),
        std::vector<double>(static_cast<std::size_t>(n), 0.0));
    std::vector<BcWorkspace> workspaces;
    workspaces.reserve(static_cast<std::size_t>(team));
    for (int t = 0; t < team; ++t) workspaces.emplace_back(n);

    const auto num_sources = static_cast<std::int64_t>(sources.size());
    for (std::int64_t b0 = 0; b0 < num_sources; b0 += plan.batch_sources) {
      const std::int64_t b1 = std::min(num_sources, b0 + plan.batch_sources);
      {
        GCT_SPAN("bc.accumulate");
        {
          obs::SuspendCollection pause;  // accounted in bulk below
#pragma omp parallel num_threads(team)
          {
            const int t = omp_get_thread_num();
#pragma omp for schedule(dynamic, 1)
            for (std::int64_t i = b0; i < b1; ++i) {
              accumulate_source(g, sources[static_cast<std::size_t>(i)],
                                workspaces[static_cast<std::size_t>(t)],
                                buffers[static_cast<std::size_t>(t)],
                                /*atomic_scores=*/false);
            }
          }
        }
        // BFS-equivalent convention: one full-adjacency traversal per source
        // (see docs/OBSERVABILITY.md on TEPS for sampled kernels).
        obs::add_work((b1 - b0) * static_cast<std::int64_t>(n),
                      (b1 - b0) * g.num_adjacency_entries());
      }
      GCT_SPAN("bc.reduce_tree");
      tree_reduce_buffers(buffers,
                          std::span<double>(result.score.data(),
                                            result.score.size()),
                          /*clear_buffers=*/b1 < num_sources);
    }
  }

  if (opts.rescale && result.sources_used > 0 &&
      result.sources_used < n) {
    GCT_SPAN("bc.rescale");
    const double scale = static_cast<double>(n) /
                         static_cast<double>(result.sources_used);
#pragma omp parallel for schedule(static)
    for (vid v = 0; v < n; ++v) {
      result.score[static_cast<std::size_t>(v)] *= scale;
    }
  }
  result.seconds = scope.seconds();
  return result;
}

}  // namespace

BetweennessResult betweenness_centrality(const GraphView& g,
                                         const BetweennessOptions& opts) {
  GCT_CHECK(!g.directed(),
            "betweenness_centrality: graph must be undirected (the paper "
            "treats mention graphs as undirected, §I-A); use "
            "directed_betweenness_centrality for the directed flow model");
  return betweenness_impl(g, opts);
}

BetweennessResult directed_betweenness_centrality(
    const GraphView& g, const BetweennessOptions& opts) {
  GCT_CHECK(g.directed(),
            "directed_betweenness_centrality: graph must be directed");
  BetweennessOptions o = opts;
  // Weak components say nothing about directed reachability; stratifying
  // by them would be misleading, so fall back to uniform sampling.
  o.sampling = BcSampling::kUniform;
  return betweenness_impl(g, o);
}

}  // namespace graphct
