#pragma once

/// \file toolkit.hpp
/// The GraphCT facade: one in-memory graph, many kernels, accumulated
/// results.
///
/// Mirrors the paper's §IV-A workflow: after loading the graph into memory
/// and before running any kernel, the diameter is estimated by BFS from 256
/// randomly selected sources (estimate = 4 x the longest distance found) and
/// stored for sizing traversal queues; users may override the multiplier or
/// sample count. "Graph kernels accumulate results in structures accessible
/// by later kernel functions" — here, kernels cache their outputs so a
/// script like components -> extract -> degrees -> kcentrality never
/// recomputes shared state.
///
/// Results live in a thread-safe ResultCache keyed by (kernel, params), so
/// one Toolkit can be shared read-only by many concurrent analyst sessions
/// (the graphctd server's registry does exactly this): concurrent requests
/// for the same kernel compute it once and share the result. The only
/// mutating operations are replace_graph() and invalidate(); both are the
/// caller's responsibility to serialize against in-flight kernels (the
/// server never mutates registry-shared graphs).

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "algs/closeness.hpp"
#include "algs/clustering.hpp"
#include "algs/community.hpp"
#include "algs/connected_components.hpp"
#include "algs/diameter.hpp"
#include "algs/kcore.hpp"
#include "algs/pagerank.hpp"
#include "core/betweenness.hpp"
#include "core/kbetweenness.hpp"
#include "graph/csr_graph.hpp"
#include "storage/graph_store.hpp"
#include "storage/graph_view.hpp"
#include "util/histogram.hpp"
#include "util/result_cache.hpp"
#include "util/stats.hpp"

namespace graphct {

namespace dist {
class Coordinator;
}

/// Toolkit configuration.
struct ToolkitOptions {
  /// Diameter estimation on load (paper defaults: 256 sources, 4x).
  std::int64_t diameter_samples = 256;
  std::int64_t diameter_multiplier = 4;
  std::uint64_t seed = 1;

  /// Skip the load-time diameter pass (it is O(samples * (m+n))).
  bool estimate_diameter_on_load = true;

  /// Byte budget for the kernel-result cache (0 = unbounded). When set,
  /// the cache evicts least-recently-used results so its estimated
  /// resident bytes never exceed the budget — what a long-running server
  /// needs so distinct-parameter queries cannot grow memory without limit.
  std::uint64_t cache_budget_bytes = 0;
};

/// One loaded graph plus cached kernel results.
class Toolkit {
 public:
  explicit Toolkit(CsrGraph graph, const ToolkitOptions& opts = {});

  /// Store-backed Toolkit: kernels traverse the packed mmap store through
  /// view(); only kernels converted to GraphView are available (graph()
  /// throws). The store is shared_ptr-held so extract/ego surgery can swap
  /// the backend to in-memory without invalidating other references.
  explicit Toolkit(std::shared_ptr<const storage::GraphStore> store,
                   const ToolkitOptions& opts = {});

  Toolkit(Toolkit&&) = default;
  Toolkit& operator=(Toolkit&&) = default;

  /// Load a DIMACS text file (parsed in parallel, §IV-C), building an
  /// undirected deduplicated graph per GraphCT's defaults.
  static Toolkit load_dimacs(const std::string& path,
                             const ToolkitOptions& opts = {});

  /// Load a GraphCT binary graph.
  static Toolkit load_binary(const std::string& path,
                             const ToolkitOptions& opts = {});

  /// Open a packed graph file (see docs/STORAGE.md) as a store-backed
  /// Toolkit. The graph stays on disk; adjacency decodes per block under
  /// store_opts.cache_budget_bytes per thread.
  static Toolkit load_packed(const std::string& path,
                             const ToolkitOptions& opts = {},
                             const storage::StoreOptions& store_opts = {});

  /// The in-memory graph. Throws when store-backed — callers that can
  /// traverse either representation should use view() instead.
  [[nodiscard]] const CsrGraph& graph() const;

  /// Uniform traversal view over whichever backend this Toolkit holds.
  [[nodiscard]] GraphView view() const {
    return store_ ? GraphView(*store_) : GraphView(graph_);
  }

  /// The packed store behind this Toolkit, or nullptr if in-memory.
  [[nodiscard]] const storage::GraphStore* store() const {
    return store_.get();
  }

  /// Shared ownership of the packed store (null when in-memory) — lets
  /// callers duplicate a store-backed Toolkit without reopening the file.
  [[nodiscard]] std::shared_ptr<const storage::GraphStore> shared_store()
      const {
    return store_;
  }

  [[nodiscard]] bool store_backed() const { return store_ != nullptr; }

  /// The load-time diameter estimate (computed lazily if load skipped it).
  const DiameterEstimate& diameter();

  /// Re-estimate the diameter with explicit parameters and update the
  /// stored value (the script's `print diameter <percent>` path). Repeating
  /// the same parameters is served from cache.
  const DiameterEstimate& estimate_diameter(std::int64_t num_samples,
                                            std::int64_t multiplier);

  /// Component labels (cached).
  const std::vector<vid>& components();

  /// Component statistics (cached; computes components() if needed).
  const ComponentStats& components_stats();

  /// Degree summary statistics (cached).
  const Summary& degree_stats();

  /// Log-binned degree histogram (cached).
  const LogHistogram& degree_histogram();

  /// Per-vertex clustering coefficients (cached).
  const ClusteringResult& clustering();

  /// Coreness values (cached).
  const std::vector<std::int64_t>& core_numbers();

  /// Betweenness centrality, cached per distinct option set — centrality
  /// runs dominate cost, so a server session repeating an earlier query's
  /// parameters is served the resident result.
  const BetweennessResult& betweenness(const BetweennessOptions& opts = {});

  /// k-betweenness centrality (cached per option set, as above).
  const KBetweennessResult& k_betweenness(const KBetweennessOptions& opts = {});

  /// PageRank (cached per option set).
  const PageRankResult& pagerank(const PageRankOptions& opts = {});

  /// Distributed variants: run the kernel on `coord`'s workers (loading
  /// this Toolkit's graph into them first if needed) and cache under a key
  /// carrying a `workers=N` dimension — the results are defined to match
  /// the single-process kernels, but they are distinct computations and a
  /// degraded run must never poison the single-process entry (or vice
  /// versa). The caller owns the coordinator's lifecycle and must bind it
  /// to this Toolkit's current graph (the script layer rebinds on every
  /// graph change).
  const std::vector<vid>& components_dist(dist::Coordinator& coord);
  const PageRankResult& pagerank_dist(dist::Coordinator& coord,
                                      const PageRankOptions& opts = {});
  const std::vector<vid>& bfs_distances_dist(dist::Coordinator& coord,
                                             vid source,
                                             vid max_depth = kNoVertex);

  /// Distributed betweenness: sources are chosen single-process
  /// (choose_sources, so the sample is identical to the single-process
  /// kernel's) and gather batching reuses the BcPlan memory-budget
  /// arithmetic at one thread. Scores are bit-identical to the fine-mode
  /// single-process kernel over the same sources.
  const BetweennessResult& betweenness_dist(dist::Coordinator& coord,
                                            const BetweennessOptions& opts = {});

  /// Harmonic closeness (cached per option set).
  const ClosenessResult& closeness(const ClosenessOptions& opts = {});

  /// Label-propagation communities (cached).
  const CommunityResult& communities();

  /// Modularity of the cached community labeling.
  double community_modularity();

  /// The i-th largest weakly connected component (0 = largest) as a
  /// reindexed graph, reusing cached component labels.
  CsrGraph component_graph(std::int64_t i);

  /// Extract the i-th largest component as a new Toolkit.
  Toolkit extract_component(std::int64_t i);

  /// Swap in a new graph and invalidate every cached result. This is the
  /// single invalidation path for all graph surgery (extract component,
  /// extract kcore, ego drill-down): results computed for the old graph can
  /// never be served against the new one. Replacing an in-memory graph on a
  /// store-backed Toolkit drops the store (and vice versa below), so
  /// backend swaps ride the same path.
  void replace_graph(CsrGraph g);

  /// As replace_graph(CsrGraph), but swapping in a packed store backend.
  void replace_graph(std::shared_ptr<const storage::GraphStore> store);

  /// Invalidate every cached result (after external graph surgery).
  void invalidate();

  /// Cache traffic counters; the server's per-job accounting reports the
  /// delta across each command.
  [[nodiscard]] ResultCache::Stats cache_stats() const {
    return cache_->stats();
  }

 private:
  CsrGraph graph_;  ///< empty when store-backed
  std::shared_ptr<const storage::GraphStore> store_;  ///< null when in-memory
  ToolkitOptions opts_;
  /// Kernel results keyed by (kernel, params); behind unique_ptr so the
  /// Toolkit stays movable.
  std::unique_ptr<ResultCache> cache_;
  /// The most recent diameter estimate (default- or explicitly-
  /// parameterized); the mutex makes the "latest estimate wins" update safe
  /// under concurrent sessions.
  std::unique_ptr<std::mutex> diameter_mu_;
  std::shared_ptr<const DiameterEstimate> current_diameter_;
};

}  // namespace graphct
