#pragma once

/// \file toolkit.hpp
/// The GraphCT facade: one in-memory graph, many kernels, accumulated
/// results.
///
/// Mirrors the paper's §IV-A workflow: after loading the graph into memory
/// and before running any kernel, the diameter is estimated by BFS from 256
/// randomly selected sources (estimate = 4 x the longest distance found) and
/// stored for sizing traversal queues; users may override the multiplier or
/// sample count. "Graph kernels accumulate results in structures accessible
/// by later kernel functions" — here, kernels cache their outputs so a
/// script like components -> extract -> degrees -> kcentrality never
/// recomputes shared state.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algs/closeness.hpp"
#include "algs/clustering.hpp"
#include "algs/community.hpp"
#include "algs/connected_components.hpp"
#include "algs/diameter.hpp"
#include "algs/kcore.hpp"
#include "algs/pagerank.hpp"
#include "core/betweenness.hpp"
#include "core/kbetweenness.hpp"
#include "graph/csr_graph.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"

namespace graphct {

/// Toolkit configuration.
struct ToolkitOptions {
  /// Diameter estimation on load (paper defaults: 256 sources, 4x).
  std::int64_t diameter_samples = 256;
  std::int64_t diameter_multiplier = 4;
  std::uint64_t seed = 1;

  /// Skip the load-time diameter pass (it is O(samples * (m+n))).
  bool estimate_diameter_on_load = true;
};

/// One loaded graph plus cached kernel results.
class Toolkit {
 public:
  explicit Toolkit(CsrGraph graph, const ToolkitOptions& opts = {});

  /// Load a DIMACS text file (parsed in parallel, §IV-C), building an
  /// undirected deduplicated graph per GraphCT's defaults.
  static Toolkit load_dimacs(const std::string& path,
                             const ToolkitOptions& opts = {});

  /// Load a GraphCT binary graph.
  static Toolkit load_binary(const std::string& path,
                             const ToolkitOptions& opts = {});

  [[nodiscard]] const CsrGraph& graph() const { return graph_; }

  /// The load-time diameter estimate (computed lazily if load skipped it).
  const DiameterEstimate& diameter();

  /// Re-estimate the diameter with explicit parameters and update the
  /// stored value (the script's `print diameter <percent>` path).
  const DiameterEstimate& estimate_diameter(std::int64_t num_samples,
                                            std::int64_t multiplier);

  /// Component labels (cached).
  const std::vector<vid>& components();

  /// Component statistics (cached; computes components() if needed).
  const ComponentStats& components_stats();

  /// Degree summary statistics (cached).
  const Summary& degree_stats();

  /// Log-binned degree histogram (cached).
  const LogHistogram& degree_histogram();

  /// Per-vertex clustering coefficients (cached).
  const ClusteringResult& clustering();

  /// Coreness values (cached).
  const std::vector<std::int64_t>& core_numbers();

  /// Betweenness centrality. Results are cached per distinct option set is
  /// NOT attempted — centrality runs dominate cost and callers vary options
  /// deliberately, so each call computes fresh.
  BetweennessResult betweenness(const BetweennessOptions& opts = {});

  /// k-betweenness centrality (uncached, as above).
  KBetweennessResult k_betweenness(const KBetweennessOptions& opts = {});

  /// PageRank (uncached: parameterized kernel).
  PageRankResult pagerank(const PageRankOptions& opts = {});

  /// Harmonic closeness (uncached: parameterized kernel).
  ClosenessResult closeness(const ClosenessOptions& opts = {});

  /// Label-propagation communities (cached).
  const CommunityResult& communities();

  /// Modularity of the cached community labeling.
  double community_modularity();

  /// Extract the i-th largest weakly connected component (0 = largest) as a
  /// new Toolkit, reusing this one's cached component labels.
  Toolkit extract_component(std::int64_t i);

  /// Invalidate every cached result (after external graph surgery).
  void invalidate();

 private:
  CsrGraph graph_;
  ToolkitOptions opts_;
  std::optional<DiameterEstimate> diameter_;
  std::optional<std::vector<vid>> components_;
  std::optional<ComponentStats> component_stats_;
  std::optional<Summary> degree_stats_;
  std::optional<LogHistogram> degree_histogram_;
  std::optional<ClusteringResult> clustering_;
  std::optional<std::vector<std::int64_t>> core_numbers_;
  std::optional<CommunityResult> communities_;
};

}  // namespace graphct
