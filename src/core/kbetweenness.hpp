#pragma once

/// \file kbetweenness.hpp
/// k-betweenness centrality (Jiang, Ediger, Bader — ICPP 2009; paper §II-A).
///
/// Betweenness centrality is brittle: removing one edge can reroute many
/// shortest paths. k-betweenness also credits paths up to k longer than the
/// shortest, "paths that may become important should the shortest path
/// change". k = 0 is exactly Brandes betweenness.
///
/// ## Algorithm (level/slack recurrences)
///
/// Fix a source s and let d(v) be BFS distance. Define the *slack* of a walk
/// s~>v of length L as j = L - d(v) (slack never decreases along a walk).
/// The forward pass counts walks per slack:
///
///   sigma_j(v) = #walks s~>v of length d(v)+j
///              = sum over neighbors u of sigma_{j-1+d(v)-d(u)}(u)
///
/// i.e. a forward edge (d(u)=d(v)-1) contributes at slack j, a same-level
/// edge at j-1, a backward edge at j-2. For each slack j = 0..k a single
/// ascending sweep over BFS levels resolves all dependencies, and vertices
/// within one level are independent — the fine-grained parallelism of §II-B.
///
/// The backward pass accumulates, per vertex, the weighted count of walk
/// *suffixes* ending at any target t (T(t) = sum_j sigma_j(t) total walks):
///
///   rho_m(v) = [v != s]·[m == 0]/T(v)
///            + sum over neighbors u of rho_{m-1+d(u)-d(v)}(u)
///
/// resolved by descending level sweeps for m = 0..k. Splitting every walk
/// s~>t at each occurrence of v gives the dependency
///
///   delta(v) = sum_{j=0..k} sigma_j(v) · sum_{m=0..k-j} rho_m(v)  -  1
///
/// (the -1 removes the walk endpoints t = v; targets t = s are excluded by
/// the rho base case). BC_k(v) accumulates delta(v) over sources. For k = 0
/// this is algebraically Brandes' recurrence; property tests check k >= 1
/// against brute-force walk enumeration.
///
/// Counting note (documented substitution): like the GraphCT recurrence,
/// for k >= 2 these are level-constrained *walks*; a non-simple walk within
/// slack k (a shortest path plus a back-and-forth detour) is counted, and a
/// vertex visited twice is credited twice. For k <= 1 every counted walk is
/// provably a simple path.

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "storage/graph_view.hpp"

namespace graphct {

/// Options for k_betweenness_centrality().
struct KBetweennessOptions {
  /// Path slack: count paths up to k longer than shortest. k=0 == Brandes.
  std::int64_t k = 1;

  /// Sampled sources (kNoVertex = all sources, exact). The scripting
  /// interface's `kcentrality <k> <num sources>` maps straight onto this.
  std::int64_t num_sources = kNoVertex;

  std::uint64_t seed = 1;

  /// Cap on the total bytes of per-thread accumulation state (score buffer
  /// plus the (k+1) x n sigma/rho slack tables) held live at once, default
  /// 1 GiB. The worker team is sized to fit and sources run in batches, each
  /// ending with a parallel tree reduction — the same memory-bounded engine
  /// as BcParallelism::kAuto. The team never drops below one worker, so the
  /// floor is one workspace regardless of budget.
  std::uint64_t score_memory_budget_bytes = std::uint64_t{1} << 30;
};

/// Result of a k-betweenness run.
struct KBetweennessResult {
  std::vector<double> score;
  std::int64_t sources_used = 0;
  double seconds = 0.0;
  std::int64_t batches = 0;             ///< source batches executed
  std::uint64_t peak_buffer_bytes = 0;  ///< high-water accumulation memory
};

/// Compute k-betweenness centrality of an undirected graph.
KBetweennessResult k_betweenness_centrality(
    const GraphView& g, const KBetweennessOptions& opts = {});

}  // namespace graphct
